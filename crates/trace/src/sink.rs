//! Tracer trait and sinks.
//!
//! The contract that keeps tracing zero-cost and deterministic:
//!
//! * every emit site is guarded by `if tracer.enabled()`, so with a
//!   [`NullTracer`] no event value is ever constructed — the only residue
//!   in the hot loop is one virtual call returning a constant `false`;
//! * a tracer is a pure observer: `emit` receives copies of simulator
//!   state and has no channel back into timing, so enabling tracing can
//!   never change a `SimReport`.

use crate::event::{TimedEvent, TraceEvent};

/// A consumer of trace events. Object-safe so the simulator can thread
/// `&mut dyn Tracer` through its layers without generics.
pub trait Tracer {
    /// Global gate. Emit sites skip event construction entirely when this
    /// is `false`.
    fn enabled(&self) -> bool;

    /// Record one event at `cycle`. Only called when [`Tracer::enabled`]
    /// returned `true` (callers guard), but implementations must tolerate
    /// unconditional calls.
    fn emit(&mut self, cycle: u64, event: TraceEvent);
}

/// The disabled tracer: `enabled()` is `false`, `emit` is a no-op. Every
/// untraced entry point in the stack delegates to its traced twin with one
/// of these.
#[derive(Debug, Default, Clone, Copy)]
pub struct NullTracer;

impl Tracer for NullTracer {
    fn enabled(&self) -> bool {
        false
    }

    fn emit(&mut self, _cycle: u64, _event: TraceEvent) {}
}

/// A bounded in-memory ring of timed events. When full, the *oldest*
/// events are evicted, so the tail of a long run — usually where the
/// interesting behaviour is — survives. `dropped()` reports how many
/// events were evicted so exporters can flag truncation.
#[derive(Debug)]
pub struct RingSink {
    capacity: usize,
    buf: std::collections::VecDeque<TimedEvent>,
    emitted: u64,
    dropped: u64,
}

impl RingSink {
    /// A ring holding at most `capacity` events. Capacity 0 is legal: the
    /// sink counts events but retains none (useful as a pure event
    /// counter).
    pub fn new(capacity: usize) -> RingSink {
        RingSink {
            capacity,
            // Cap the eager allocation; a huge ring grows on demand.
            buf: std::collections::VecDeque::with_capacity(capacity.min(1 << 16)),
            emitted: 0,
            dropped: 0,
        }
    }

    /// Total events ever emitted into the sink (retained + dropped).
    pub fn emitted(&self) -> u64 {
        self.emitted
    }

    /// Events evicted (or rejected by a capacity-0 ring).
    pub fn dropped(&self) -> u64 {
        self.dropped
    }

    /// Retained events, oldest first.
    pub fn events(&self) -> impl Iterator<Item = &TimedEvent> {
        self.buf.iter()
    }

    /// Number of retained events.
    pub fn len(&self) -> usize {
        self.buf.len()
    }

    /// Whether the ring holds no events.
    pub fn is_empty(&self) -> bool {
        self.buf.is_empty()
    }
}

impl Tracer for RingSink {
    fn enabled(&self) -> bool {
        true
    }

    fn emit(&mut self, cycle: u64, event: TraceEvent) {
        self.emitted += 1;
        if self.capacity == 0 {
            self.dropped += 1;
            return;
        }
        if self.buf.len() == self.capacity {
            self.buf.pop_front();
            self.dropped += 1;
        }
        self.buf.push_back(TimedEvent { cycle, event });
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn ev(n: u64) -> TraceEvent {
        TraceEvent::Fill { sm: 0, line: n }
    }

    #[test]
    fn ring_retains_in_order() {
        let mut s = RingSink::new(8);
        for i in 0..5 {
            s.emit(i, ev(i));
        }
        assert_eq!(s.len(), 5);
        assert_eq!(s.emitted(), 5);
        assert_eq!(s.dropped(), 0);
        let cycles: Vec<u64> = s.events().map(|e| e.cycle).collect();
        assert_eq!(cycles, vec![0, 1, 2, 3, 4]);
    }

    #[test]
    fn ring_wraparound_keeps_newest() {
        let mut s = RingSink::new(3);
        for i in 0..10 {
            s.emit(i, ev(i));
        }
        assert_eq!(s.len(), 3);
        assert_eq!(s.emitted(), 10);
        assert_eq!(s.dropped(), 7);
        let cycles: Vec<u64> = s.events().map(|e| e.cycle).collect();
        assert_eq!(cycles, vec![7, 8, 9], "oldest events must be evicted");
        // Events carry their payloads through the wrap.
        let lines: Vec<u64> = s
            .events()
            .map(|e| match e.event {
                TraceEvent::Fill { line, .. } => line,
                _ => unreachable!(),
            })
            .collect();
        assert_eq!(lines, vec![7, 8, 9]);
    }

    #[test]
    fn capacity_zero_counts_but_retains_nothing() {
        let mut s = RingSink::new(0);
        for i in 0..100 {
            s.emit(i, ev(i));
        }
        assert!(s.is_empty());
        assert_eq!(s.emitted(), 100);
        assert_eq!(s.dropped(), 100);
        assert_eq!(s.events().count(), 0);
    }

    #[test]
    fn null_tracer_is_disabled() {
        let t = NullTracer;
        assert!(!t.enabled());
        // emit must be callable and harmless.
        let mut t = t;
        t.emit(42, ev(1));
    }
}

//! `simt-harness` — parallel experiment orchestration for the DAC
//! reproduction.
//!
//! The paper's evaluation is 29 workloads × 4 designs (plus a
//! perfect-memory run per workload for the §5.1.2 classification) — over a
//! hundred independent cycle-level simulations. This crate owns running
//! them at scale:
//!
//! * [`Job`] — one simulation: `workload × design × config overrides`;
//! * [`pool`] — a channel-based thread pool over `std::thread` with
//!   deterministic, index-ordered result aggregation (`--jobs N` output is
//!   bit-identical to a serial run);
//! * [`ResultCache`] — a content-addressed on-disk cache keyed by a stable
//!   hash of the job, so repeated invocations skip unchanged simulations;
//! * [`artifact`] — machine-readable JSONL records (hand-rolled
//!   serializer; the build environment is offline, so no serde) written
//!   under `results/runs/`.
//!
//! ```no_run
//! use simt_harness::{DesignPoint, Harness, Overrides, ResultCache};
//!
//! let benches = gpu_workloads::all_benchmarks(1);
//! let jobs = simt_harness::suite_jobs(
//!     benches, 1, &DesignPoint::HW_ALL, &Overrides::default());
//! let harness = Harness::new(4)
//!     .with_cache(ResultCache::new("results/cache"))
//!     .with_artifacts("results/runs");
//! let out = harness.run(&jobs);
//! for (job, result) in jobs.iter().zip(&out.results) {
//!     println!("{} {} cycles", job.label(), result.report.cycles);
//! }
//! ```

pub mod artifact;
pub mod cache;
pub mod job;
pub mod json;
pub mod pool;

pub use cache::{fnv1a64, ResultCache};
pub use gpu_workloads::Design;
pub use job::{DesignPoint, Job, JobResult, Overrides, Payload, CACHE_VERSION};
pub use pool::WorkerPool;

use gpu_workloads::{Scenario, Workload};
use std::fs;
use std::io::Write as _;
use std::path::PathBuf;
use std::sync::Arc;
use std::time::{SystemTime, UNIX_EPOCH};

/// The cross product `workloads × points`, all at the same overrides —
/// the shape of every figure and sweep in the paper.
pub fn suite_jobs(
    workloads: Vec<Workload>,
    scale: u32,
    points: &[DesignPoint],
    overrides: &Overrides,
) -> Vec<Job> {
    workloads
        .into_iter()
        .flat_map(|w| {
            let w = Arc::new(w);
            points
                .iter()
                .map(|&point| Job {
                    payload: Payload::Bench(w.clone()),
                    scale,
                    point,
                    overrides: overrides.clone(),
                })
                .collect::<Vec<_>>()
        })
        .collect()
}

/// The cross product `scenarios × points` for multi-kernel stream runs,
/// all at the same overrides (which carry the CTA placement policy).
pub fn scenario_jobs(
    scenarios: Vec<Scenario>,
    scale: u32,
    points: &[DesignPoint],
    overrides: &Overrides,
) -> Vec<Job> {
    scenarios
        .into_iter()
        .flat_map(|sc| {
            let sc = Arc::new(sc);
            points
                .iter()
                .map(|&point| Job {
                    payload: Payload::Scenario(sc.clone()),
                    scale,
                    point,
                    overrides: overrides.clone(),
                })
                .collect::<Vec<_>>()
        })
        .collect()
}

/// What one [`Harness::run`] invocation did.
#[derive(Debug)]
pub struct RunOutput {
    /// One result per job, in job order — independent of worker count.
    pub results: Vec<JobResult>,
    /// The JSONL artifact written for this run, when artifacts are on.
    pub artifact_path: Option<PathBuf>,
    /// Jobs served from the cache.
    pub cache_hits: usize,
    /// Jobs actually simulated.
    pub executed: usize,
    /// Trace events evicted from ring buffers across all traced jobs
    /// (0 when tracing is off). Non-zero means exported timelines are
    /// truncated to the newest events; CLIs surface this as a warning.
    pub trace_drops: u64,
    /// Number of traced jobs that dropped at least one event.
    pub trace_dropped_jobs: usize,
}

/// Where and how much to trace when the harness runs with tracing on.
#[derive(Debug, Clone)]
pub struct TraceSpec {
    /// Directory receiving one Chrome-JSON + one JSONL file per job.
    pub dir: PathBuf,
    /// Ring-buffer capacity: the newest `events` events are kept.
    pub events: usize,
}

/// The experiment orchestrator: a worker count plus optional cache,
/// artifact, and trace sinks.
#[derive(Debug, Clone)]
pub struct Harness {
    workers: usize,
    cache: Option<ResultCache>,
    artifact_dir: Option<PathBuf>,
    trace: Option<TraceSpec>,
    verbose: bool,
}

impl Harness {
    /// A harness running `workers` simulations concurrently, with caching
    /// and artifacts off (CLIs opt in; library callers stay side-effect
    /// free by default).
    pub fn new(workers: usize) -> Self {
        Harness {
            workers: workers.max(1),
            cache: None,
            artifact_dir: None,
            trace: None,
            verbose: false,
        }
    }

    /// A single-threaded harness — the reference ordering.
    pub fn serial() -> Self {
        Harness::new(1)
    }

    /// Attach a result cache.
    pub fn with_cache(mut self, cache: ResultCache) -> Self {
        self.cache = Some(cache);
        self
    }

    /// Write a JSONL artifact per `run` call into `dir`.
    pub fn with_artifacts(mut self, dir: impl Into<PathBuf>) -> Self {
        self.artifact_dir = Some(dir.into());
        self
    }

    /// Trace every job into `dir` (one Chrome-JSON + one JSONL file per
    /// job, keeping the newest `events` events). Tracing forces execution:
    /// cache reads are skipped so each job actually simulates and emits its
    /// timeline — results are still stored back, and stay byte-identical to
    /// untraced runs.
    pub fn with_trace(mut self, dir: impl Into<PathBuf>, events: usize) -> Self {
        self.trace = Some(TraceSpec {
            dir: dir.into(),
            events,
        });
        self
    }

    /// Print per-job progress to stderr.
    pub fn verbose(mut self, on: bool) -> Self {
        self.verbose = on;
        self
    }

    /// The worker count.
    pub fn workers(&self) -> usize {
        self.workers
    }

    /// Run every job: serve cache hits, simulate misses on the pool, store
    /// fresh results, and append one artifact line per job (in job order).
    ///
    /// # Panics
    ///
    /// Propagates simulator panics (correctness violations, deadlock
    /// guard) from worker threads.
    pub fn run(&self, jobs: &[Job]) -> RunOutput {
        let mut results: Vec<Option<JobResult>> = vec![None; jobs.len()];
        let mut misses: Vec<(usize, Job)> = Vec::new();
        for (i, job) in jobs.iter().enumerate() {
            // Tracing forces execution: a cache hit has no timeline.
            let hit = if self.trace.is_some() {
                None
            } else {
                self.cache.as_ref().and_then(|c| c.load(job))
            };
            match hit {
                Some(hit) => {
                    if self.verbose {
                        eprintln!("  {:<20} cached", job.label());
                    }
                    results[i] = Some(hit);
                }
                None => misses.push((i, job.clone())),
            }
        }
        let cache_hits = jobs.len() - misses.len();
        let executed = misses.len();

        let verbose = self.verbose;
        let trace = self.trace.clone();
        let fresh = pool::run_indexed(self.workers, misses, move |_, (i, job)| {
            let (result, dropped) = match &trace {
                None => (job.execute(), 0),
                Some(spec) => {
                    let mut sink = simt_trace::RingSink::new(spec.events);
                    let result = job.execute_traced(&mut sink);
                    if let Err(e) = write_trace(spec, &job, &sink) {
                        simt_obs::warn!("harness.run", "trace write failed";
                            job = job.label(), error = e.to_string());
                    }
                    (result, sink.dropped())
                }
            };
            if verbose {
                eprintln!("  {:<20} ok ({:.1}s)", job.label(), result.wall_ms / 1e3);
            }
            (i, job, result, dropped)
        });
        let mut trace_drops = 0u64;
        let mut trace_dropped_jobs = 0usize;
        for (i, job, result, dropped) in fresh {
            if let Some(cache) = &self.cache {
                cache.store(&job, &result);
            }
            trace_drops += dropped;
            trace_dropped_jobs += usize::from(dropped > 0);
            results[i] = Some(result);
        }
        let results: Vec<JobResult> = results
            .into_iter()
            .map(|r| r.expect("job neither cached nor executed"))
            .collect();

        let artifact_path = self
            .artifact_dir
            .as_ref()
            .map(|dir| write_artifact(dir, jobs, &results))
            .transpose()
            .unwrap_or_else(|e| {
                simt_obs::warn!("harness.run", "artifact write failed"; error = e.to_string());
                None
            });

        RunOutput {
            results,
            artifact_path,
            cache_hits,
            executed,
            trace_drops,
            trace_dropped_jobs,
        }
    }
}

/// Write one Chrome-JSON and one `dac-trace/v1` JSONL file for a traced
/// job. File names fold in workload, scale, and design so a sweep's traces
/// land side by side without clobbering each other.
fn write_trace(spec: &TraceSpec, job: &Job, sink: &simt_trace::RingSink) -> std::io::Result<()> {
    fs::create_dir_all(&spec.dir)?;
    let stem = format!(
        "{}-s{}-{}",
        job.bench().to_ascii_lowercase(),
        job.scale,
        job.point.name()
    );
    let chrome = simt_trace::chrome::export(sink.events(), sink.dropped());
    fs::write(spec.dir.join(format!("{stem}.trace.json")), chrome)?;
    let scale = job.scale.to_string();
    let meta = [
        ("bench", job.bench()),
        ("scale", scale.as_str()),
        ("design", job.point.name()),
    ];
    let jsonl = simt_trace::jsonl::export(sink.events(), &meta, sink.dropped());
    fs::write(spec.dir.join(format!("{stem}.trace.jsonl")), jsonl)?;
    Ok(())
}

/// Write one JSONL line per job into a fresh file under `dir`.
fn write_artifact(dir: &PathBuf, jobs: &[Job], results: &[JobResult]) -> std::io::Result<PathBuf> {
    fs::create_dir_all(dir)?;
    let now = SystemTime::now()
        .duration_since(UNIX_EPOCH)
        .unwrap_or_default();
    let path = dir.join(format!(
        "run-{}-{:03}-{}.jsonl",
        now.as_secs(),
        now.subsec_millis(),
        std::process::id()
    ));
    let mut file = fs::File::create(&path)?;
    for (i, (job, result)) in jobs.iter().zip(results).enumerate() {
        let line = artifact::to_json(job, result, Some(i), None).to_json();
        writeln!(file, "{line}")?;
    }
    Ok(path)
}

#[cfg(test)]
mod tests {
    use super::*;
    use gpu_workloads::benchmark;

    fn small_overrides() -> Overrides {
        Overrides {
            num_sms: Some(2),
            max_warps_per_sm: Some(16),
            ..Overrides::default()
        }
    }

    fn small_suite() -> Vec<Job> {
        let benches = vec![benchmark("LIB", 1).unwrap(), benchmark("MQ", 1).unwrap()];
        suite_jobs(benches, 1, &DesignPoint::HW_ALL, &small_overrides())
    }

    #[test]
    fn run_without_sinks_is_pure() {
        let jobs = small_suite();
        let out = Harness::new(2).run(&jobs);
        assert_eq!(out.results.len(), 8);
        assert_eq!(out.cache_hits, 0);
        assert_eq!(out.executed, 8);
        assert!(out.artifact_path.is_none());
        for r in &out.results {
            assert!(r.report.cycles > 0);
            assert!(!r.cached);
        }
    }

    #[test]
    fn cache_serves_second_invocation() {
        let dir = std::env::temp_dir().join(format!("dac-harness-test-{}", std::process::id()));
        let _ = fs::remove_dir_all(&dir);
        let jobs = small_suite();
        let h = Harness::new(4).with_cache(ResultCache::new(dir.join("cache")));
        let first = h.run(&jobs);
        assert_eq!(first.executed, jobs.len());
        let second = h.run(&jobs);
        assert_eq!(second.cache_hits, jobs.len());
        assert_eq!(second.executed, 0);
        for (a, b) in first.results.iter().zip(&second.results) {
            assert_eq!(a.report.cycles, b.report.cycles);
            assert_eq!(a.report.stats, b.report.stats);
            assert_eq!(a.report.mem, b.report.mem);
            assert_eq!(a.output_digest, b.output_digest);
            assert!(b.cached);
        }
        let _ = fs::remove_dir_all(&dir);
    }

    #[test]
    fn artifacts_have_one_line_per_job() {
        let dir = std::env::temp_dir().join(format!("dac-artifacts-test-{}", std::process::id()));
        let _ = fs::remove_dir_all(&dir);
        let jobs = small_suite();
        let out = Harness::new(2).with_artifacts(dir.join("runs")).run(&jobs);
        let path = out.artifact_path.expect("artifact written");
        let text = fs::read_to_string(&path).unwrap();
        let lines: Vec<&str> = text.lines().collect();
        assert_eq!(lines.len(), jobs.len());
        for (i, line) in lines.iter().enumerate() {
            let v = json::parse(line).expect("line parses");
            let (_, loaded) = artifact::from_json(&v).expect("line loads");
            assert_eq!(v.get("job").and_then(json::Value::as_u64), Some(i as u64));
            assert_eq!(loaded.report.cycles, out.results[i].report.cycles);
        }
        let _ = fs::remove_dir_all(&dir);
    }

    #[test]
    fn suite_jobs_is_the_cross_product() {
        let jobs = small_suite();
        assert_eq!(jobs.len(), 8);
        assert_eq!(jobs[0].bench(), "LIB");
        assert_eq!(jobs[0].point, DesignPoint::Hw(Design::Baseline));
        assert_eq!(jobs[3].point, DesignPoint::Hw(Design::Dac));
        assert_eq!(jobs[4].bench(), "MQ");
    }
}

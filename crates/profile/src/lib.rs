//! `simt-profile`: a metrics layer on top of the simulator's counters and
//! the `simt-trace` event stream.
//!
//! Three pieces:
//!
//! * [`Histogram`] — fixed-bucket, allocation-free latency/occupancy
//!   histograms with p50/p90/p99;
//! * [`ProfileSink`] — a [`simt_trace::Tracer`] that aggregates events
//!   online (no retained event buffer, so it never drops anything);
//! * [`CpiStack`] — the top-down issue-slot accounting view of
//!   [`simt_sim::SimStats`], with the checked invariant that every
//!   scheduler slot of every cycle lands in exactly one bucket;
//! * [`report`] — deterministic markdown + JSON bottleneck reports
//!   comparing designs side by side.

mod cpi;
mod hist;
pub mod report;
mod sink;

pub use cpi::CpiStack;
pub use hist::Histogram;
pub use report::{DesignProfile, WorkloadProfile};
pub use sink::ProfileSink;

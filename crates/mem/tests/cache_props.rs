//! Property-based tests on the cache tag array and MSHR invariants.

use proptest::prelude::*;
use simt_mem::{Cache, MshrTable};

#[derive(Debug, Clone, Copy)]
enum CacheOp {
    Access(u64),
    Fill(u64),
    FillLocked(u64),
    Unlock(u64),
}

fn arb_ops() -> impl Strategy<Value = Vec<CacheOp>> {
    prop::collection::vec(
        (0u64..64, 0u8..4).prop_map(|(slot, kind)| {
            let line = slot * 128;
            match kind {
                0 => CacheOp::Access(line),
                1 => CacheOp::Fill(line),
                2 => CacheOp::FillLocked(line),
                _ => CacheOp::Unlock(line),
            }
        }),
        0..200,
    )
}

proptest! {
    /// Locked lines are never evicted, whatever the interleaving.
    #[test]
    fn locked_lines_survive_any_interleaving(ops in arb_ops()) {
        let mut c = Cache::new(1024, 4, 128); // 2 sets × 4 ways
        let mut locked: std::collections::HashMap<u64, u32> =
            std::collections::HashMap::new();
        for op in ops {
            match op {
                CacheOp::Access(l) => {
                    let _ = c.access(l, false);
                }
                CacheOp::Fill(l) => {
                    let _ = c.fill(l, 0);
                }
                CacheOp::FillLocked(l) => {
                    // Respect the ways-1 budget like the AEU does.
                    if c.can_reserve_lock(l) {
                        c.reserve_pending_lock(l);
                        let n = c.pending_locks_for(l);
                        let _ = c.fill(l, n);
                        *locked.entry(l).or_insert(0) += n;
                    }
                }
                CacheOp::Unlock(l) => {
                    c.unlock(l);
                    if let Some(n) = locked.get_mut(&l) {
                        *n = n.saturating_sub(1);
                        if *n == 0 {
                            locked.remove(&l);
                        }
                    }
                }
            }
            // Every line with a positive lock count must be resident.
            for (&l, &n) in &locked {
                if n > 0 {
                    prop_assert!(c.probe(l), "locked line {l:#x} was evicted");
                }
            }
        }
    }

    /// The lock budget keeps at least one way per set unlocked.
    #[test]
    fn lock_budget_leaves_a_free_way(lines in prop::collection::vec(0u64..32, 1..64)) {
        let mut c = Cache::new(1024, 4, 128);
        for slot in lines {
            let line = slot * 128;
            if c.can_reserve_lock(line) {
                c.reserve_pending_lock(line);
                let n = c.pending_locks_for(line);
                let _ = c.fill(line, n);
            }
            // A fill of a brand-new unlocked line must always succeed
            // somewhere in the set (the deadlock-freedom invariant, §4.2).
            let probeline = (slot % 2) * 128 + 0xF000_0000;
            let _ = c.fill(probeline, 0);
            prop_assert!(c.probe(probeline), "no evictable way left");
        }
    }

    /// MSHR: releases return exactly the targets allocated, once.
    #[test]
    fn mshr_targets_conserved(reqs in prop::collection::vec((0u64..16, 0u64..1000), 1..100)) {
        let mut m = MshrTable::new(8, 4);
        let mut expect: std::collections::HashMap<u64, usize> =
            std::collections::HashMap::new();
        for (slot, token) in reqs {
            let line = slot * 128;
            if m.can_accept(line) {
                m.allocate(line, simt_mem::mshr::MshrTarget { client: 0, token });
                *expect.entry(line).or_insert(0) += 1;
            }
        }
        let lines: Vec<u64> = expect.keys().copied().collect();
        for line in lines {
            let t = m.release(line);
            prop_assert_eq!(t.len(), expect[&line]);
            prop_assert!(m.release(line).is_empty(), "double release returned targets");
        }
        prop_assert_eq!(m.outstanding(), 0);
    }
}

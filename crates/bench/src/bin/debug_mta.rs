//! Diagnostic dump of MTA behaviour.
use gpu_workloads::{benchmark, gpu_for, run_design, Design};
use simt_sim::GpuSim;

fn main() {
    for abbr in std::env::args().skip(1) {
        let w = benchmark(&abbr, 1).unwrap();
        let base = run_design(
            &w,
            Design::Baseline,
            &GpuSim::new(gpu_for(Design::Baseline)),
        );
        let mta = run_design(&w, Design::Mta, &GpuSim::new(gpu_for(Design::Mta)));
        let (b, m) = (&base.report, &mta.report);
        println!(
            "== {abbr} == base {} mta {} speedup {:.3}",
            b.cycles,
            m.cycles,
            b.cycles as f64 / m.cycles as f64
        );
        println!(
            "  prefetches issued {} pbuf_hits {} pbuf_fills {} unused_evic {} redundant {}",
            m.stats.prefetches_issued,
            m.mem.pbuf_hits,
            m.mem.pbuf_fills,
            m.mem.pbuf_unused_evictions,
            m.mem.redundant_prefetches
        );
        println!("  dram: base {} mta {}; l1miss base {} mta {}; qfull base {} mta {}; mshr base {} mta {}",
            b.mem.dram_serviced, m.mem.dram_serviced, b.mem.l1_misses, m.mem.l1_misses,
            b.mem.queue_full_stalls, m.mem.queue_full_stalls, b.mem.mshr_full_stalls, m.mem.mshr_full_stalls);
    }
}

//! The 29 benchmark kernels, plus shared construction helpers.

pub mod compute;
pub mod memory;

use crate::Workload;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use simt_ir::{KernelBuilder, Op, Operand, RegId};
use simt_mem::SparseMemory;

/// Standard array base addresses, 16 MiB apart.
pub const ARR_A: u64 = 0x0100_0000;
/// Second array.
pub const ARR_B: u64 = 0x0200_0000;
/// Third array.
pub const ARR_C: u64 = 0x0300_0000;
/// Fourth array.
pub const ARR_D: u64 = 0x0400_0000;

/// Build every benchmark at `scale`.
pub fn all(scale: u32) -> Vec<Workload> {
    vec![
        compute::cp(scale),
        compute::sto(scale),
        compute::aes(scale),
        compute::mq(scale),
        compute::tp(scale),
        compute::fft(scale),
        compute::bp(scale),
        compute::sr1(scale),
        compute::hs(scale),
        compute::pf(scale),
        compute::bs(scale),
        memory::lib(scale),
        memory::sg(scale),
        memory::st(scale),
        memory::img(scale),
        memory::hi(scale),
        memory::lbm(scale),
        memory::spv(scale),
        memory::bt(scale),
        memory::lud(scale),
        memory::sr2(scale),
        memory::sc(scale),
        memory::km(scale),
        memory::bfs(scale),
        memory::cfd(scale),
        memory::mc(scale),
        memory::mt(scale),
        memory::sp(scale),
        memory::cs(scale),
    ]
}

/// Emit `tid = ctaid.x * ntid.x + tid.x` plus the guarded byte address
/// `base_param + (tid << shift)`.
pub(crate) fn tid_elem_addr(b: &mut KernelBuilder, param: u16, shift: i64) -> (RegId, RegId) {
    let tid = b.tid_linear_x();
    let off = b.alu2(Op::Shl, Operand::Reg(tid), Operand::Imm(shift));
    let addr = b.alu2(Op::Add, Operand::Param(param), Operand::Reg(off));
    (tid, addr)
}

/// Deterministic pseudo-random `f32` inputs in (lo, hi).
pub(crate) fn init_f32(mem: &mut SparseMemory, base: u64, n: usize, seed: u64, lo: f32, hi: f32) {
    let mut rng = StdRng::seed_from_u64(seed);
    let data: Vec<f32> = (0..n).map(|_| rng.gen_range(lo..hi)).collect();
    mem.write_f32_slice(base, &data);
}

/// Deterministic pseudo-random `u32` inputs in `[0, modulo)`.
pub(crate) fn init_u32(mem: &mut SparseMemory, base: u64, n: usize, seed: u64, modulo: u32) {
    let mut rng = StdRng::seed_from_u64(seed);
    let data: Vec<u32> = (0..n).map(|_| rng.gen_range(0..modulo)).collect();
    mem.write_u32_slice(base, &data);
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn init_helpers_are_deterministic() {
        let mut m1 = SparseMemory::new();
        let mut m2 = SparseMemory::new();
        init_f32(&mut m1, 0x1000, 64, 42, -1.0, 1.0);
        init_f32(&mut m2, 0x1000, 64, 42, -1.0, 1.0);
        assert_eq!(m1.read_u32_vec(0x1000, 64), m2.read_u32_vec(0x1000, 64));
        init_u32(&mut m1, 0x9000, 16, 7, 100);
        for v in m1.read_u32_vec(0x9000, 16) {
            assert!(v < 100);
        }
    }
}

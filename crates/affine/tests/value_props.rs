//! Randomized tests (deterministic, std-only) on divergent affine values
//! (§4.6). A seeded SplitMix64 stream replaces proptest so the suite runs
//! in the offline build environment with reproducible cases.

use affine::value::DivergentVal;
use affine::{AffineTuple, AffineVal};

/// Deterministic SplitMix64 generator (duplicated locally to keep this
/// crate's dev-dependency graph empty).
struct Rng(u64);

impl Rng {
    fn next_u64(&mut self) -> u64 {
        self.0 = self.0.wrapping_add(0x9E37_79B9_7F4A_7C15);
        let mut z = self.0;
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
        z ^ (z >> 31)
    }

    fn next_u32(&mut self) -> u32 {
        (self.next_u64() >> 32) as u32
    }

    fn range_i64(&mut self, lo: i64, hi: i64) -> i64 {
        lo + (self.next_u64() % (hi - lo) as u64) as i64
    }
}

fn tup(base: i64, off: i64) -> AffineTuple {
    AffineTuple {
        base,
        off: [off, 0, 0],
        mod_ext: None,
    }
}

/// Merging a sequence of masked writes gives each lane the value of the
/// last write whose mask covered it (register semantics under divergence).
#[test]
fn merge_masked_is_last_writer_wins() {
    let mut rng = Rng(0xD1_0E56);
    for _ in 0..512 {
        let writes: Vec<(u32, i64, i64)> = (0..1 + rng.next_u64() % 3)
            .map(|_| {
                (
                    rng.next_u32(),
                    rng.range_i64(-100, 100),
                    rng.range_i64(-8, 8),
                )
            })
            .collect();
        let nw = 2usize;
        let mut val: Option<AffineVal> = None;
        // Reference: per-lane last writer.
        let mut last: Vec<Option<(i64, i64)>> = vec![None; nw * 32];
        let mut ok = true;
        for (mask, base, off) in &writes {
            let masks = [*mask, mask.rotate_left(7)];
            match AffineVal::merge_masked(
                val.as_ref(),
                tup(*base, *off),
                &masks,
                &[u32::MAX; 2],
                nw,
            ) {
                Some(v) => {
                    val = Some(v);
                    for w in 0..nw {
                        for lane in 0..32 {
                            if masks[w] & (1 << lane) != 0 {
                                last[w * 32 + lane] = Some((*base, *off));
                            }
                        }
                    }
                }
                None => {
                    // Exceeded the divergent-tuple budget; the compiler
                    // prevents this, stop the scenario here.
                    ok = false;
                    break;
                }
            }
        }
        if !ok {
            continue;
        }
        if let Some(v) = val {
            for w in 0..nw {
                for lane in 0..32 {
                    if let Some((base, off)) = last[w * 32 + lane] {
                        let tid = (w * 32 + lane) as u32;
                        let got = v.eval(w, lane, (tid, 0, 0));
                        let expect = tup(base, off).eval((tid, 0, 0));
                        assert_eq!(got, expect, "warp {w} lane {lane}");
                    }
                }
            }
        }
    }
}

/// A divergent value never carries more than four tuples, and every
/// selector points inside the tuple vector.
#[test]
fn divergent_invariants() {
    let mut rng = Rng(0xD1_BAD6E);
    for _ in 0..512 {
        let writes: Vec<(u32, i64, i64)> = (0..1 + rng.next_u64() % 5)
            .map(|_| (rng.next_u32(), rng.range_i64(-4, 4), rng.range_i64(-2, 2)))
            .collect();
        let mut val: Option<AffineVal> = None;
        for (mask, base, off) in &writes {
            if let Some(v) =
                AffineVal::merge_masked(val.as_ref(), tup(*base, *off), &[*mask], &[u32::MAX], 1)
            {
                val = Some(v);
            }
        }
        if let Some(AffineVal::Divergent(DivergentVal { tuples, select })) = val {
            assert!(tuples.len() <= affine::value::MAX_DIVERGENT_TUPLES);
            assert!(tuples.len() >= 2, "single-tuple value must collapse");
            for row in &select {
                for &s in row.iter() {
                    assert!((s as usize) < tuples.len());
                }
            }
        }
    }
}

//! Issue-slot accounting invariant, checked across the full benchmark
//! suite: every scheduler issue slot of every cycle must land in exactly
//! one top-down bucket, so the buckets sum to `cycles × schedulers × SMs`
//! for all 29 workloads under all four designs.
//!
//! The simulator asserts the same identity internally at the end of every
//! run; this test additionally re-derives it from the reported counters
//! through [`CpiStack`], so a silent change to either side (the bucket
//! attribution in the scheduler, or the reporting view) fails loudly.

use gpu_workloads::{gpu_for, Design, ALL_ABBRS};
use simt_harness::{suite_jobs, DesignPoint, Harness, Overrides};
use simt_profile::CpiStack;

/// Run the full suite × all designs with the given overrides and assert
/// the issue-slot identity on every result.
fn check_invariant(overrides: &Overrides) {
    let benches = ALL_ABBRS
        .iter()
        .map(|a| gpu_workloads::benchmark(a, 1).expect("known benchmark"))
        .collect();
    let jobs = suite_jobs(benches, 1, &DesignPoint::HW_ALL, overrides);
    assert_eq!(jobs.len(), ALL_ABBRS.len() * Design::ALL.len());
    let workers = std::thread::available_parallelism().map_or(4, |n| n.get());
    let out = Harness::new(workers).run(&jobs);

    let num_sms = overrides.num_sms.unwrap() as u64;
    for (job, result) in jobs.iter().zip(&out.results) {
        let design = match job.point {
            DesignPoint::Hw(d) => d,
            DesignPoint::PerfectMem => unreachable!("HW_ALL only"),
        };
        let schedulers = gpu_for(design).schedulers as u64;
        let cpi = CpiStack::from_stats(&result.report.stats);
        let expected = result.report.cycles * schedulers * num_sms;
        assert_eq!(
            cpi.total(),
            expected,
            "{}: buckets {:?} do not sum to cycles({}) x schedulers({}) x SMs({})",
            job.label(),
            cpi.buckets(),
            result.report.cycles,
            schedulers,
            num_sms
        );
        // Every design issues something; only DAC may wait on its queues.
        assert!(cpi.get("issued") > 0, "{}: no issued slots", job.label());
        if design != Design::Dac {
            assert_eq!(
                cpi.get("deq_empty") + cpi.get("deq_data") + cpi.get("enq_full"),
                0,
                "{}: DAC-only buckets must be empty",
                job.label()
            );
        }
    }
}

/// The default configuration: idle-cycle fast-forward is *on*, so this
/// exercises the bulk-crediting path — every skipped cycle's issue slots
/// must still land in exactly one bucket for the identity to hold.
#[test]
fn slot_buckets_sum_to_issue_slots_on_all_workloads_and_designs() {
    check_invariant(&Overrides {
        num_sms: Some(2),
        max_warps_per_sm: Some(16),
        ..Overrides::default()
    });
}

/// Same identity with fast-forward disabled (`--no-fast-forward`): the
/// cycle-by-cycle reference the bulk crediting must agree with.
#[test]
fn slot_buckets_sum_without_fast_forward() {
    check_invariant(&Overrides {
        num_sms: Some(2),
        max_warps_per_sm: Some(16),
        no_fast_forward: true,
        ..Overrides::default()
    });
}

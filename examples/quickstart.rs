//! Quickstart: write a kernel in the paper's pseudo-assembly, decouple it
//! with the DAC compiler, and race DAC against the baseline GPU.
//!
//! ```sh
//! cargo run --release --example quickstart
//! ```

use dac_gpu::affine::{decouple, AffineAnalysis};
use dac_gpu::dac::{Dac, DacConfig};
use dac_gpu::ir::{asm, LaunchConfig, Program};
use dac_gpu::mem::SparseMemory;
use dac_gpu::sim::{GpuConfig, GpuSim};

fn main() {
    // The kernel from the paper's Figure 4: B[i*num+tid] = A[i*num+tid] + 1.
    let kernel = asm::parse_kernel(
        r#"
.kernel example
.params 4
    mul r0, %ctaid.x, %ntid.x;
    add r1, r0, %tid.x;
    shl r2, r1, 2;
    add r3, %p0, r2;        // addrA
    add r4, %p1, r2;        // addrB
    mov r5, 0;              // i
LOOP:
    ld.global r6, [r3];
    add r7, r6, 1;
    st.global [r4], r7;
    add r5, r5, 1;
    mul r8, %p3, 4;
    add r3, r8, r3;
    add r4, r8, r4;
    setp.ne p0, %p2, r5;
    @p0 bra LOOP;
    exit;
"#,
    )
    .expect("kernel parses");

    let (dim, num) = (12u64, 3840u64);
    let (a, b) = (0x100_0000u64, 0x200_0000u64);
    let launch = LaunchConfig::linear(30, 128, vec![a, b, dim, num]);
    let n = (dim * num) as usize;
    let input: Vec<u32> = (0..n as u32).collect();

    // Baseline GTX 480.
    let gpu = GpuSim::new(GpuConfig::gtx480());
    let program = Program::new(kernel.clone(), launch.clone()).unwrap();
    let mut mem = SparseMemory::new();
    mem.write_u32_slice(a, &input);
    let base = gpu.run(&program, &mut mem);
    println!("baseline: {} cycles", base.cycles);

    // Compile: classify operands, find candidates, split the streams.
    let analysis = AffineAnalysis::run(&kernel);
    let dk = decouple(&kernel, &analysis);
    println!("\naffine stream (runs once per CTA on the affine warp):");
    println!("{}", dk.affine.disassemble());
    println!("non-affine stream (what the SIMT warps now execute):");
    println!("{}", dk.non_affine.disassemble());

    // Run with the DAC hardware attached.
    let dac_prog = Program::new(dk.non_affine.clone(), launch).unwrap();
    let mut dac = Dac::new(DacConfig::paper(), dk);
    let mut mem2 = SparseMemory::new();
    mem2.write_u32_slice(a, &input);
    let rep = gpu.run_with(&dac_prog, &mut mem2, &mut dac);

    assert_eq!(
        mem.read_u32_vec(b, n),
        mem2.read_u32_vec(b, n),
        "DAC must preserve program semantics"
    );
    println!(
        "DAC:      {} cycles  ({:.2}x speedup)",
        rep.cycles,
        base.cycles as f64 / rep.cycles as f64
    );
    println!(
        "          {:.1}% of loads decoupled, warp instructions {:.2}x of baseline",
        100.0 * rep.stats.decoupled_load_fraction(),
        rep.stats.warp_instructions as f64 / base.stats.warp_instructions as f64,
    );
    println!("          outputs verified bit-identical");
}

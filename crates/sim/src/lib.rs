//! `simt-sim` — a cycle-level SIMT GPU simulator.
//!
//! This is the reproduction's stand-in for GPGPU-sim 3.2.2: an execution-
//! driven, single-clock model of a Fermi-class GPU (GTX 480 by default):
//!
//! * 15 SMs, each with 32 SIMT lanes split across two schedulers that issue
//!   one warp instruction per scheduler with an initiation interval of two
//!   cycles (32 threads over 16 lanes);
//! * per-warp SIMT reconvergence stacks using immediate-post-dominator
//!   reconvergence;
//! * a per-warp scoreboard blocking RAW/WAW hazards, with variable-latency
//!   writeback;
//! * a two-level warp scheduler (active pool + pending pool, after
//!   Narasiman et al. — Table 1's "Two Level Active");
//! * a memory coalescer generating one transaction per unique 128 B line;
//! * CTA launch/retire management and `bar.sync` barriers;
//! * a [`CoProcessor`] hook through which the DAC hardware, the CAE affine
//!   units, and the MTA prefetcher attach to the pipeline without the core
//!   simulator knowing about any of them.
//!
//! Functional execution happens at instruction issue (as in GPGPU-sim's
//! PTX mode); timing unfolds separately through the scoreboard and the
//! memory fabric.

pub mod cmdproc;
pub mod coalesce;
pub mod config;
pub mod coproc;
pub mod gpu;
pub mod par;
pub mod sm;
pub mod stack;
pub mod stats;
pub mod stream;
pub mod warp;

pub use cmdproc::{CommandProcessor, LaunchState, MultiCoProcessor, PlacementPolicy};
pub use config::GpuConfig;
pub use coproc::{AddrRecord, CoCtx, CoProcessor, IssueCost, NullCoProcessor, RecordKind};
pub use gpu::{GpuSim, KernelReport, SimReport, StreamReport};
pub use stack::SimtStack;
pub use stats::SimStats;
pub use stream::{Stream, StreamLaunch};

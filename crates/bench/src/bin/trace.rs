//! Trace one `workload × design` run and export its timeline.
//!
//! The observability front end: runs a single cycle-level simulation with
//! the event tracer attached, writes a Chrome `trace_event` JSON (load it
//! in `chrome://tracing` or Perfetto) plus a `dac-trace/v1` JSONL, then
//! validates the written JSON by re-parsing it and prints derived
//! time-series summaries (IPC windows, queue occupancy, run-ahead
//! histogram).

use dac_bench::cli::{CommonArgs, COMMON_USAGE};
use simt_harness::{json, DesignPoint, Job};
use simt_trace::{chrome, jsonl, series, RingSink, TraceEvent};
use std::path::PathBuf;
use std::sync::Arc;

const USAGE: &str = "\
usage: trace BENCH [options]

Runs one benchmark under one design (--designs, default dac) with the
event tracer attached, writes BENCH-sN-DESIGN.trace.json (Chrome
trace_event format) and .trace.jsonl (dac-trace/v1) to --trace-dir
(default results/traces), validates the written JSON, and prints derived
time-series summaries. Never cached: a trace run always simulates.";

fn usage_exit(error: &str) -> ! {
    if error == "help" {
        println!("{USAGE}\n\n{COMMON_USAGE}");
        std::process::exit(0);
    }
    eprintln!("trace: {error}\n\n{USAGE}\n\n{COMMON_USAGE}");
    std::process::exit(2);
}

fn main() {
    simt_obs::log::init_from_env();
    let raw: Vec<String> = std::env::args().skip(1).collect();
    let args = CommonArgs::parse(&raw).unwrap_or_else(|e| usage_exit(&e));
    let abbr = match args.positional.as_slice() {
        [one] => one.clone(),
        [] => usage_exit("expected a benchmark abbreviation"),
        more => usage_exit(&format!("expected one benchmark, got {more:?}")),
    };
    let point = match args.designs.as_deref() {
        None => DesignPoint::Hw(gpu_workloads::Design::Dac),
        Some([one]) => *one,
        Some(more) => usage_exit(&format!(
            "trace runs one design at a time, got {} via --designs",
            more.len()
        )),
    };
    let workload = gpu_workloads::benchmark(&abbr, args.scale)
        .unwrap_or_else(|| usage_exit(&format!("unknown benchmark {abbr:?}")));
    let dir = args
        .trace_dir
        .clone()
        .unwrap_or_else(|| PathBuf::from("results/traces"));

    let mut job = Job::new(Arc::new(workload), args.scale, point);
    job.overrides = args.overrides.clone();
    eprintln!(
        "trace: {} (scale {}, ring capacity {})",
        job.label(),
        args.scale,
        args.trace_events
    );
    let mut sink = RingSink::new(args.trace_events);
    let result = job.execute_traced(&mut sink);
    eprintln!(
        "trace: {} cycles, {} events emitted, {} dropped ({:.1}s)",
        result.report.cycles,
        sink.emitted(),
        sink.dropped(),
        result.wall_ms / 1e3
    );

    // Export both formats.
    if let Err(e) = std::fs::create_dir_all(&dir) {
        eprintln!("trace: cannot create {}: {e}", dir.display());
        std::process::exit(1);
    }
    let stem = format!(
        "{}-s{}-{}",
        job.bench().to_ascii_lowercase(),
        job.scale,
        point.name()
    );
    let chrome_path = dir.join(format!("{stem}.trace.json"));
    let jsonl_path = dir.join(format!("{stem}.trace.jsonl"));
    let chrome_text = chrome::export(sink.events(), sink.dropped());
    let scale = args.scale.to_string();
    let meta = [
        ("bench", job.bench()),
        ("scale", scale.as_str()),
        ("design", point.name()),
    ];
    let jsonl_text = jsonl::export(sink.events(), &meta, sink.dropped());
    for (path, text) in [(&chrome_path, &chrome_text), (&jsonl_path, &jsonl_text)] {
        if let Err(e) = std::fs::write(path, text) {
            eprintln!("trace: cannot write {}: {e}", path.display());
            std::process::exit(1);
        }
    }

    // Validate what was written: the Chrome file must parse as JSON and
    // carry every retained event; every JSONL line must parse too.
    let parsed = json::parse(&chrome_text)
        .unwrap_or_else(|e| panic!("exported Chrome trace is invalid JSON: {e}"));
    let n = parsed
        .get("traceEvents")
        .and_then(json::Value::as_arr)
        .map_or(0, |a| a.len());
    for (i, line) in jsonl_text.lines().enumerate() {
        json::parse(line)
            .unwrap_or_else(|e| panic!("exported JSONL line {} is invalid: {e}", i + 1));
    }
    println!("trace: {n} events (validated) -> {}", chrome_path.display());
    println!(
        "trace: {} JSONL lines (validated) -> {}",
        jsonl_text.lines().count(),
        jsonl_path.display()
    );

    summarize(&sink, result.report.cycles);

    if sink.dropped() > 0 {
        simt_obs::warn!("bench.trace",
            "ring buffer dropped events; the exported timeline keeps only \
             the newest (raise --trace-events)";
            dropped = sink.dropped(),
            total = sink.emitted(),
            kept = sink.len(),
            capacity = args.trace_events);
    }
}

/// Print derived time-series: issue-rate windows, queue occupancy, and the
/// affine run-ahead histogram.
fn summarize(sink: &RingSink, cycles: u64) {
    let events: Vec<_> = sink.events().copied().collect();

    let window = 1000;
    let ipc = series::ipc_windows(events.iter(), window);
    if !ipc.is_empty() {
        let peak = ipc.iter().map(|w| w.issued).max().unwrap_or(0);
        let total: u64 = ipc.iter().map(|w| w.issued).sum();
        println!(
            "issue rate: {} windows of {window} cycles, mean {:.1} peak {} issues/window",
            ipc.len(),
            total as f64 / ipc.len() as f64,
            peak
        );
    }

    let queues = series::queue_series(events.iter());
    if !queues.is_empty() {
        let max_atq = queues.iter().map(|p| p.atq).max().unwrap_or(0);
        let max_pwaq = queues.iter().map(|p| p.pwaq).max().unwrap_or(0);
        let max_pwpq = queues.iter().map(|p| p.pwpq).max().unwrap_or(0);
        let mean_atq: f64 = queues.iter().map(|p| p.atq as f64).sum::<f64>() / queues.len() as f64;
        println!(
            "queues: atq mean {mean_atq:.1} max {max_atq}, pwaq max {max_pwaq}, \
             pwpq max {max_pwpq} (summed over SMs, {} samples)",
            queues.len()
        );
    }

    let hist = series::runahead_histogram(events.iter(), 8, 8);
    if hist.iter().any(|&c| c > 0) {
        let cells: Vec<String> = hist
            .iter()
            .enumerate()
            .map(|(i, c)| {
                if i + 1 == hist.len() {
                    format!("{}+={c}", i * 8)
                } else {
                    format!("{}-{}={c}", i * 8, i * 8 + 7)
                }
            })
            .collect();
        println!("run-ahead histogram (records): {}", cells.join(" "));
    }

    let mem_events = events
        .iter()
        .filter(|e| matches!(e.event, TraceEvent::MemResp { .. }))
        .count();
    println!(
        "memory: {} completed request lifecycles traced over {cycles} cycles",
        mem_events
    );
}

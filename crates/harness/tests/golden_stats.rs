//! Golden-stats regression test: pins headline counters for three small
//! workloads under each design, on a reduced 2-SM machine. Any change to
//! these numbers means simulator behaviour shifted — if the shift is
//! intentional, update the table AND bump `CACHE_VERSION` in
//! `simt_harness::job` so stale cache entries are not read as current.

use gpu_workloads::benchmark;
use simt_harness::{suite_jobs, DesignPoint, Harness, Overrides};

/// (bench, design, cycles, warp_instructions, decoupled_loads) at scale 1
/// with num_sms=2, max_warps_per_sm=16.
// All cycle counts moved +1 when `SimStats::cycles` switched to counting
// executed cycles (the main loop runs cycles 0..=now inclusive); the
// off-by-one was found by the issue-slot accounting invariant, which needs
// `cycles × schedulers × SMs` to equal the attributed slot total.
const GOLDEN: &[(&str, &str, u64, u64, u64)] = &[
    ("MQ", "baseline", 66064, 131040, 0),
    ("MQ", "cae", 58076, 131040, 0),
    ("MQ", "mta", 66064, 131040, 0),
    ("MQ", "dac", 60183, 94560, 23040),
    ("LIB", "baseline", 21295, 18000, 0),
    ("LIB", "cae", 21009, 18000, 0),
    // LIB/mta moved 21899 -> 22287 when the MTA pump latch landed: a
    // predicted prefetch now pops off the queue into a one-entry port
    // latch before the fabric admission attempt, so the queue slot frees
    // (and the duplicate check forgets the line) one cycle earlier. This
    // makes enqueue decisions independent of fabric admission timing,
    // which the deterministic intra-run parallel schedule requires.
    ("LIB", "mta", 22287, 18000, 0),
    ("LIB", "dac", 18186, 8520, 3360),
    ("BFS", "baseline", 12635, 6600, 0),
    ("BFS", "cae", 12491, 6600, 0),
    // BFS/mta moved 12696 -> 12670 when MTA's inter-warp prefetches were
    // line-aligned before issue (previously a mid-line address could be
    // requested as if it were a distinct line).
    ("BFS", "mta", 12671, 6600, 0),
    ("BFS", "dac", 12234, 6360, 120),
];

#[test]
fn headline_counters_match_golden_values() {
    let overrides = Overrides {
        num_sms: Some(2),
        max_warps_per_sm: Some(16),
        ..Overrides::default()
    };
    let benches = ["MQ", "LIB", "BFS"]
        .iter()
        .map(|a| benchmark(a, 1).expect("known benchmark"))
        .collect();
    let jobs = suite_jobs(benches, 1, &DesignPoint::HW_ALL, &overrides);
    let out = Harness::serial().run(&jobs);
    assert_eq!(jobs.len(), GOLDEN.len());
    for ((job, result), &(bench, design, cycles, warp_instructions, decoupled_loads)) in
        jobs.iter().zip(&out.results).zip(GOLDEN)
    {
        assert_eq!(job.bench(), bench);
        assert_eq!(job.point.name(), design);
        let s = &result.report.stats;
        assert_eq!(
            (result.report.cycles, s.warp_instructions, s.decoupled_loads),
            (cycles, warp_instructions, decoupled_loads),
            "{bench}/{design}: counters drifted from golden values"
        );
    }
}

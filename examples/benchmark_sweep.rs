//! Run a subset of the paper's 29-benchmark suite under all four designs
//! (baseline / CAE / MTA / DAC) and print a Figure-16-style comparison.
//!
//! ```sh
//! cargo run --release --example benchmark_sweep [ABBR ...]
//! ```
//!
//! With no arguments, runs a representative mix: one streaming kernel
//! (LIB), one stencil (ST), one indirect graph kernel (BFS — DAC's worst
//! case), and one compute kernel (MQ).

use dac_gpu::workloads::{benchmark, gpu_for, run_design, Design};
use dac_gpu::sim::GpuSim;

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let abbrs: Vec<String> = if args.is_empty() {
        ["LIB", "ST", "BFS", "MQ"].iter().map(|s| s.to_string()).collect()
    } else {
        args
    };

    println!(
        "{:<6} {:>10} {:>8} {:>8} {:>8}  {:>8}",
        "bench", "base(cyc)", "CAE", "MTA", "DAC", "decoup%"
    );
    for abbr in &abbrs {
        let Some(w) = benchmark(abbr, 1) else {
            eprintln!("unknown benchmark {abbr} (see Table 2 for abbreviations)");
            continue;
        };
        let base = run_design(&w, Design::Baseline, &GpuSim::new(gpu_for(Design::Baseline)));
        let golden = base.memory.read_u32_vec(w.output.0, w.output.1);
        let mut cells = Vec::new();
        let mut decoup = 0.0;
        for d in [Design::Cae, Design::Mta, Design::Dac] {
            let run = run_design(&w, d, &GpuSim::new(gpu_for(d)));
            assert_eq!(
                run.memory.read_u32_vec(w.output.0, w.output.1),
                golden,
                "{abbr}: {d:?} changed outputs"
            );
            cells.push(base.report.cycles as f64 / run.report.cycles as f64);
            if d == Design::Dac {
                decoup = run.report.stats.decoupled_load_fraction();
            }
        }
        println!(
            "{:<6} {:>10} {:>7.2}x {:>7.2}x {:>7.2}x  {:>7.1}%",
            w.abbr,
            base.report.cycles,
            cells[0],
            cells[1],
            cells[2],
            100.0 * decoup
        );
    }
    println!("\n(all outputs verified bit-identical across designs)");
}

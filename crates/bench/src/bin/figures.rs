//! Regenerate every table and figure of the paper.

use dac_bench::cli::{CommonArgs, COMMON_USAGE};
use dac_bench::{evaluate_all, geomean, FullRow};
use dac_core::DacConfig;
use gpu_energy::EnergyModel;
use gpu_workloads::{gpu_for, Design, Workload};
use simt_harness::{DesignPoint, Harness, Job};
use simt_sim::GpuConfig;
use std::sync::Arc;

const USAGE: &str = "\
usage: figures <experiment> [options]

experiments:
  table1   simulator configuration
  table2   benchmark list + measured compute/memory classification
  fig6     % static instructions that are potentially affine
  fig16    speedups of CAE / MTA / DAC over baseline
  fig17    DAC warp-instruction count normalized to baseline
  fig18    affine coverage, DAC vs CAE (compute-intensive set)
  fig19    % of loads issued by the affine warp (memory-intensive set)
  fig20    MTA prefetcher coverage (memory-intensive set)
  fig21    energy normalized to baseline
  mem      L1 / L2 / DRAM row-buffer hit rates per design
  area     DAC area overhead (§4.8)
  ablate   queue-size / locking / divergence ablations (beyond paper)
  all      everything above";

fn usage_exit(error: &str) -> ! {
    if error == "help" {
        println!("{USAGE}\n\n{COMMON_USAGE}");
        std::process::exit(0);
    }
    eprintln!("figures: {error}\n\n{USAGE}\n\n{COMMON_USAGE}");
    std::process::exit(2);
}

fn main() {
    simt_obs::log::init_from_env();
    let raw: Vec<String> = std::env::args().skip(1).collect();
    let args = CommonArgs::parse(&raw).unwrap_or_else(|e| usage_exit(&e));
    if args.positional.len() > 1 {
        usage_exit(&format!(
            "expected one experiment, got {:?}",
            args.positional
        ));
    }
    let cmd = args
        .positional
        .first()
        .map_or("all".to_string(), Clone::clone);

    match cmd.as_str() {
        "table1" => table1(),
        "area" => area(),
        _ => {
            let benches = args.benchmarks().unwrap_or_else(|e| usage_exit(&e));
            // Figures cache by default (results/cache) so re-running an
            // experiment only simulates what changed; artifacts are
            // opt-in via --out.
            let harness = args.harness(None);
            let run_rows = |benches: Vec<Workload>| -> Vec<FullRow> {
                eprintln!(
                    "running {} benchmarks at scale {} on {} workers...",
                    benches.len(),
                    args.scale,
                    harness.workers()
                );
                evaluate_all(&harness, benches, args.scale, &args.overrides)
            };
            match cmd.as_str() {
                "table2" => table2(&run_rows(benches)),
                "fig6" => fig6(&run_rows(benches)),
                "fig16" => fig16(&run_rows(benches)),
                "fig17" => fig17(&run_rows(benches)),
                "fig18" => fig18(&run_rows(benches)),
                "fig19" => fig19(&run_rows(benches)),
                "fig20" => fig20(&run_rows(benches)),
                "fig21" => fig21(&run_rows(benches)),
                "mem" => mem_rates(&run_rows(benches)),
                "ablate" => ablate(&harness, &args, benches),
                "all" => {
                    let rows = run_rows(benches.clone());
                    table1();
                    table2(&rows);
                    fig6(&rows);
                    fig16(&rows);
                    fig17(&rows);
                    fig18(&rows);
                    fig19(&rows);
                    fig20(&rows);
                    fig21(&rows);
                    mem_rates(&rows);
                    area();
                    ablate(&harness, &args, benches);
                }
                other => usage_exit(&format!("unknown experiment {other:?}")),
            }
        }
    }
}

fn hdr(title: &str) {
    println!("\n=== {title} ===");
}

fn table1() {
    hdr("Table 1: Simulation Parameters");
    let g = GpuConfig::gtx480();
    println!("Baseline GPU");
    println!(
        "  GPU        Fermi (GTX480), {} SMs, {} warps/SM",
        g.num_sms, g.max_warps_per_sm
    );
    println!(
        "  SM         {} SIMT lanes, {} schedulers (two-level active)",
        g.lanes, g.schedulers
    );
    println!(
        "  L1         {} KB/SM, {} ways, {} MSHRs",
        g.mem.l1_size / 1024,
        g.mem.l1_ways,
        g.mem.mshr_entries
    );
    println!(
        "  L2         {} KB total, {} partitions, {} ways",
        g.mem.l2_size_per_partition * g.mem.num_partitions as u64 / 1024,
        g.mem.num_partitions,
        g.mem.l2_ways
    );
    println!("GPU Prefetcher (MTA)");
    println!(
        "  Buffer     {} KB/SM (in addition to L1)",
        gpu_for(Design::Mta).mem.prefetch_buffer_size / 1024
    );
    println!("Compact Affine Execution (CAE)");
    println!("  Units      2 affine units per SM (one per scheduler)");
    let d = DacConfig::paper();
    println!("Decoupled Affine Computation (DAC)");
    println!("  ATQ        {} entries/SM", d.atq_entries);
    println!(
        "  PWAQ       {} entries/SM, partitioned among resident warps ({}/warp at max occupancy)",
        d.pwaq_total,
        d.pwaq_total / g.max_warps_per_sm
    );
    println!(
        "  PWPQ       {} entries/SM, partitioned among resident warps ({}/warp at max occupancy)",
        d.pwpq_total,
        d.pwpq_total / g.max_warps_per_sm
    );
}

fn table2(rows: &[FullRow]) {
    hdr("Table 2: Benchmarks and measured classification (perfect-mem speedup ≥ 1.5 ⇒ memory-intensive)");
    println!(
        "{:<6} {:<18} {:<6} {:>9} {:<10}",
        "Abbr", "Name", "Suite", "PerfSpd", "Class"
    );
    for r in rows {
        println!(
            "{:<6} {:<18} {:<6} {:>8.2}x {:<10}",
            r.abbr,
            r.name,
            r.suite,
            r.perfect_speedup,
            if r.memory_intensive {
                "memory"
            } else {
                "compute"
            }
        );
    }
    let mem = rows.iter().filter(|r| r.memory_intensive).count();
    println!(
        "-> {} memory-intensive, {} compute-intensive (paper: 18 / 11)",
        mem,
        rows.len() - mem
    );
}

fn fig6(rows: &[FullRow]) {
    hdr("Figure 6: % of static instructions that are potentially affine");
    println!(
        "{:<6} {:>7} {:>7} {:>7} {:>8}",
        "Bench", "Arith", "Mem", "Branch", "Total%"
    );
    let mut fracs = Vec::new();
    for r in rows {
        let t = r.mix.total as f64;
        println!(
            "{:<6} {:>6.1}% {:>6.1}% {:>6.1}% {:>7.1}%",
            r.abbr,
            100.0 * r.mix.affine_arithmetic as f64 / t,
            100.0 * r.mix.affine_memory as f64 / t,
            100.0 * r.mix.affine_branch as f64 / t,
            100.0 * r.mix.potential_affine_fraction()
        );
        fracs.push(r.mix.potential_affine_fraction());
    }
    let mean = fracs.iter().sum::<f64>() / fracs.len().max(1) as f64;
    println!(
        "MEAN   potential affine = {:.1}% (paper: ~50%)",
        100.0 * mean
    );
}

fn fig16(rows: &[FullRow]) {
    hdr("Figure 16: Speedup of CAE, MTA, and DAC over the baseline GTX 480");
    println!(
        "{:<6} {:<8} {:>7} {:>7} {:>7}",
        "Bench", "Class", "CAE", "MTA", "DAC"
    );
    let (mut mem_rows, mut cmp_rows) = (Vec::new(), Vec::new());
    for r in rows {
        println!(
            "{:<6} {:<8} {:>6.2}x {:>6.2}x {:>6.2}x",
            r.abbr,
            if r.memory_intensive {
                "memory"
            } else {
                "compute"
            },
            r.speedup(Design::Cae),
            r.speedup(Design::Mta),
            r.speedup(Design::Dac)
        );
        if r.memory_intensive {
            mem_rows.push(r);
        } else {
            cmp_rows.push(r);
        }
    }
    for (label, set, paper) in [
        ("memory-intensive", &mem_rows, "MTA 1.16x / DAC 1.44x"),
        ("compute-intensive", &cmp_rows, "CAE 1.15x / DAC 1.34x"),
    ] {
        if set.is_empty() {
            continue;
        }
        println!(
            "GEOMEAN {label:<18} CAE {:.2}x  MTA {:.2}x  DAC {:.2}x   (paper: {paper})",
            geomean(set.iter().map(|r| r.speedup(Design::Cae))),
            geomean(set.iter().map(|r| r.speedup(Design::Mta))),
            geomean(set.iter().map(|r| r.speedup(Design::Dac))),
        );
    }
    println!(
        "GEOMEAN all                DAC {:.2}x   (paper: 1.40x)",
        geomean(rows.iter().map(|r| r.speedup(Design::Dac)))
    );
}

fn fig17(rows: &[FullRow]) {
    hdr("Figure 17: DAC warp instructions normalized to baseline (non-affine + affine streams)");
    println!(
        "{:<6} {:>10} {:>9} {:>8}",
        "Bench", "NonAffine", "Affine", "Total"
    );
    let mut totals = Vec::new();
    let mut aff_fracs = Vec::new();
    for r in rows {
        let (na, aff) = r.instr_ratio();
        println!("{:<6} {:>9.3} {:>9.3} {:>8.3}", r.abbr, na, aff, na + aff);
        totals.push(na + aff);
        let s = &r.report(Design::Dac).stats;
        aff_fracs.push(s.affine_instruction_fraction());
    }
    let mean = totals.iter().sum::<f64>() / totals.len().max(1) as f64;
    let afrac = aff_fracs.iter().sum::<f64>() / aff_fracs.len().max(1) as f64;
    println!(
        "MEAN   total ratio = {mean:.3} (paper: 0.74), affine share = {:.1}% (paper: 4.6%)",
        100.0 * afrac
    );
}

fn fig18(rows: &[FullRow]) {
    hdr("Figure 18: Affine instruction coverage, DAC vs CAE (compute-intensive set)");
    println!("{:<6} {:>7} {:>7}", "Bench", "CAE", "DAC");
    let set: Vec<&FullRow> = rows.iter().filter(|r| !r.memory_intensive).collect();
    for r in &set {
        println!(
            "{:<6} {:>6.1}% {:>6.1}%",
            r.abbr,
            100.0 * r.cae_coverage(),
            100.0 * r.dac_coverage()
        );
    }
    if !set.is_empty() {
        println!(
            "GEOMEAN  CAE {:.1}%  DAC {:.1}%   (paper: CAE 25% / DAC 34%)",
            100.0 * geomean(set.iter().map(|r| r.cae_coverage().max(1e-6))),
            100.0 * geomean(set.iter().map(|r| r.dac_coverage().max(1e-6)))
        );
    }
}

fn fig19(rows: &[FullRow]) {
    hdr("Figure 19: % of global/local load requests issued by the affine warp (memory-intensive set)");
    println!("{:<6} {:>8}", "Bench", "Affine%");
    let set: Vec<&FullRow> = rows.iter().filter(|r| r.memory_intensive).collect();
    let mut fr = Vec::new();
    for r in &set {
        println!(
            "{:<6} {:>7.1}%",
            r.abbr,
            100.0 * r.decoupled_load_fraction()
        );
        fr.push(r.decoupled_load_fraction());
    }
    let mean = fr.iter().sum::<f64>() / fr.len().max(1) as f64;
    println!("MEAN   {:.1}% (paper: 79.8%)", 100.0 * mean);
}

fn fig20(rows: &[FullRow]) {
    hdr("Figure 20: MTA prefetcher coverage (memory-intensive set)");
    println!("{:<6} {:>9}", "Bench", "Coverage");
    let set: Vec<&FullRow> = rows.iter().filter(|r| r.memory_intensive).collect();
    let mut cov = Vec::new();
    for r in &set {
        println!("{:<6} {:>8.1}%", r.abbr, 100.0 * r.mta_coverage());
        cov.push(r.mta_coverage());
    }
    let mean = cov.iter().sum::<f64>() / cov.len().max(1) as f64;
    println!("MEAN   {:.1}%", 100.0 * mean);
}

fn fig21(rows: &[FullRow]) {
    hdr("Figure 21: DAC energy normalized to baseline");
    let model = EnergyModel::gtx480();
    println!(
        "{:<6} {:>7} {:>7} {:>7} {:>9} {:>8} {:>7}",
        "Bench", "ALU", "RF", "OtherD", "DACovhd", "Static", "Total"
    );
    let mut totals = Vec::new();
    for r in rows {
        let base = r.energy(Design::Baseline, &model);
        let dac = r.energy(Design::Dac, &model);
        let bt = base.total();
        println!(
            "{:<6} {:>7.3} {:>7.3} {:>7.3} {:>9.4} {:>8.3} {:>7.3}",
            r.abbr,
            dac.alu / bt,
            dac.regfile / bt,
            dac.other_dynamic / bt,
            dac.dac_overhead / bt,
            dac.static_ / bt,
            dac.total() / bt
        );
        totals.push(dac.total() / bt);
    }
    println!(
        "GEOMEAN total = {:.3} (paper: 0.798)",
        geomean(totals.iter().copied())
    );
}

/// Memory-system hit rates per design — the quantitative backdrop for the
/// Figure 16 speedups (e.g. why MTA under-delivers when its prefetches
/// miss L2, or how DAC's line locking holds L1 hits up).
fn mem_rates(rows: &[FullRow]) {
    hdr("Memory hit rates per design (L1 / L2 / DRAM row-buffer)");
    println!(
        "{:<6} {:<9} {:>6} {:>6} {:>6}",
        "Bench", "Design", "L1", "L2", "Row"
    );
    for r in rows {
        for d in Design::ALL {
            let m = &r.report(d).mem;
            println!(
                "{:<6} {:<9} {:>5.1}% {:>5.1}% {:>5.1}%",
                r.abbr,
                d.name(),
                100.0 * m.l1_hit_rate(),
                100.0 * m.l2_hit_rate(),
                100.0 * m.row_hit_rate()
            );
        }
    }
}

fn area() {
    hdr("Section 4.8: DAC area overhead");
    let sms = GpuConfig::gtx480().num_sms;
    println!(
        "SRAM {} B/SM ≈ {:.2} mm²/SM; 2 ALUs ≈ {:.2} mm²/SM",
        gpu_energy::area::SRAM_BYTES_PER_SM,
        gpu_energy::area::SRAM_MM2_PER_SM,
        gpu_energy::area::ALU_MM2_PER_SM
    );
    println!(
        "total {:.2} mm² on a {:.0} mm² die = {:.2}% (paper: 1.06%)",
        gpu_energy::area::dac_area_mm2(sms),
        gpu_energy::area::GTX480_DIE_MM2,
        100.0 * gpu_energy::area::dac_area_overhead(sms)
    );
}

/// Design-space ablations beyond the paper: queue depth, line locking,
/// divergent-tuple support. Every configuration is an [`Overrides`] delta,
/// so the whole sweep is one harness batch and the baseline runs (which no
/// DAC knob affects) are shared through the cache.
fn ablate(harness: &Harness, args: &CommonArgs, benches: Vec<Workload>) {
    hdr("Ablations (beyond the paper): DAC speedup vs design knobs");
    // A representative memory-bound subset keeps this affordable.
    let subset: Vec<Arc<Workload>> = benches
        .into_iter()
        .filter(|w| ["LIB", "ST", "CS", "SR2", "LBM"].contains(&w.abbr))
        .map(Arc::new)
        .collect();
    if subset.is_empty() {
        println!("(no matching benchmarks in filter)");
        return;
    }
    let cfg = |label: &'static str, set: &[(&str, &str)]| {
        let mut o = args.overrides.clone();
        for (k, v) in set {
            o.set(k, v).expect("ablation knobs are well-formed");
        }
        (label, o)
    };
    let configs = [
        cfg("paper (ATQ24, PWQ192, lock)", &[]),
        cfg(
            "shallow queues (PWQ48)",
            &[("pwaq_total", "48"), ("pwpq_total", "48")],
        ),
        cfg(
            "deep queues (PWQ768)",
            &[("pwaq_total", "768"), ("pwpq_total", "768")],
        ),
        cfg("no line locking", &[("lock_lines", "off")]),
        cfg("tiny ATQ (4)", &[("atq_entries", "4")]),
    ];

    // One batch: a baseline job per benchmark, then each DAC variant.
    let mut jobs: Vec<Job> = subset
        .iter()
        .map(|w| Job {
            payload: simt_harness::Payload::Bench(w.clone()),
            scale: args.scale,
            point: DesignPoint::Hw(Design::Baseline),
            overrides: args.overrides.clone(),
        })
        .collect();
    for (_, overrides) in &configs {
        for w in &subset {
            jobs.push(Job {
                payload: simt_harness::Payload::Bench(w.clone()),
                scale: args.scale,
                point: DesignPoint::Hw(Design::Dac),
                overrides: overrides.clone(),
            });
        }
    }
    let out = harness.run(&jobs);

    let base_cycles: Vec<f64> = out.results[..subset.len()]
        .iter()
        .map(|r| r.report.cycles as f64)
        .collect();
    println!("{:<28} geomean speedup over baseline", "config");
    for (c, (label, _)) in configs.iter().enumerate() {
        let start = subset.len() * (c + 1);
        let speedups = out.results[start..start + subset.len()]
            .iter()
            .zip(&base_cycles)
            .map(|(r, bc)| bc / r.report.cycles as f64);
        println!("{:<28} {:.3}x", label, geomean(speedups));
    }
}

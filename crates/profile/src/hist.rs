//! Fixed-bucket histograms: all storage is allocated at construction, so
//! recording a sample on the simulator's hot path costs one add and one
//! bounds-clamped index — no allocation, no sorting.

/// A histogram over `u64` samples with uniform bucket width; the last
/// bucket absorbs the overflow tail. Percentiles are answered from the
/// bucket boundaries (upper edge of the bucket holding the rank), which is
/// exact to within one bucket width.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Histogram {
    width: u64,
    counts: Vec<u64>,
    count: u64,
    sum: u64,
    min: u64,
    max: u64,
}

impl Histogram {
    /// A histogram with `num_buckets` buckets of `width` each.
    pub fn new(width: u64, num_buckets: usize) -> Self {
        Histogram {
            width: width.max(1),
            counts: vec![0; num_buckets.max(1)],
            count: 0,
            sum: 0,
            min: u64::MAX,
            max: 0,
        }
    }

    /// Record one sample.
    pub fn record(&mut self, v: u64) {
        let idx = ((v / self.width) as usize).min(self.counts.len() - 1);
        self.counts[idx] += 1;
        self.count += 1;
        self.sum += v;
        self.min = self.min.min(v);
        self.max = self.max.max(v);
    }

    /// Number of samples recorded.
    pub fn count(&self) -> u64 {
        self.count
    }

    /// Sum of all samples.
    pub fn sum(&self) -> u64 {
        self.sum
    }

    /// Mean sample value (0 when empty).
    pub fn mean(&self) -> f64 {
        if self.count == 0 {
            0.0
        } else {
            self.sum as f64 / self.count as f64
        }
    }

    /// Smallest sample (0 when empty).
    pub fn min(&self) -> u64 {
        if self.count == 0 {
            0
        } else {
            self.min
        }
    }

    /// Largest sample (0 when empty).
    pub fn max(&self) -> u64 {
        self.max
    }

    /// Raw bucket counts (`buckets()[i]` covers `[i*width, (i+1)*width)`;
    /// the last bucket is the overflow tail).
    pub fn buckets(&self) -> &[u64] {
        &self.counts
    }

    /// The `p`-th percentile (`p` in [0, 1]): the upper edge of the bucket
    /// containing that rank, clamped to the observed maximum. 0 when empty.
    pub fn percentile(&self, p: f64) -> u64 {
        if self.count == 0 {
            return 0;
        }
        let rank = ((p.clamp(0.0, 1.0) * self.count as f64).ceil() as u64).max(1);
        let mut seen = 0u64;
        for (i, &c) in self.counts.iter().enumerate() {
            seen += c;
            if seen >= rank {
                if i == self.counts.len() - 1 {
                    // Overflow tail: the nominal upper edge understates.
                    return self.max;
                }
                return ((i as u64 + 1) * self.width).min(self.max);
            }
        }
        self.max
    }

    /// Median (see [`Histogram::percentile`]).
    pub fn p50(&self) -> u64 {
        self.percentile(0.50)
    }

    /// 90th percentile.
    pub fn p90(&self) -> u64 {
        self.percentile(0.90)
    }

    /// 99th percentile.
    pub fn p99(&self) -> u64 {
        self.percentile(0.99)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn empty_is_zeroed() {
        let h = Histogram::new(10, 8);
        assert_eq!(h.count(), 0);
        assert_eq!(h.mean(), 0.0);
        assert_eq!(h.p50(), 0);
        assert_eq!(h.min(), 0);
        assert_eq!(h.max(), 0);
    }

    #[test]
    fn percentiles_land_on_bucket_edges() {
        let mut h = Histogram::new(10, 10);
        for v in 0..100 {
            h.record(v);
        }
        // 100 uniform samples over [0, 100): p50 in bucket [40,50).
        assert_eq!(h.p50(), 50);
        assert_eq!(h.p90(), 90);
        assert_eq!(h.p99(), 99); // clamped to observed max
        assert_eq!(h.count(), 100);
        assert!((h.mean() - 49.5).abs() < 1e-12);
    }

    #[test]
    fn tail_bucket_absorbs_overflow() {
        let mut h = Histogram::new(10, 4);
        h.record(5);
        h.record(1_000_000);
        assert_eq!(h.buckets(), &[1, 0, 0, 1]);
        assert_eq!(h.max(), 1_000_000);
        assert_eq!(h.p99(), 1_000_000);
    }

    #[test]
    fn single_sample() {
        let mut h = Histogram::new(8, 8);
        h.record(42);
        assert_eq!(h.p50(), 42);
        assert_eq!(h.min(), 42);
        assert_eq!(h.max(), 42);
    }
}

//! The fuzzer's kernel grammar and its lowering onto the `simt-ir` builder.
//!
//! A [`KernelSpec`] is a tree of [`Stmt`]s over *value references*
//! ([`Vref`]), which resolve modulo the lowering-time value pool. That
//! indirection is what makes the greedy reducer safe: deleting or unwrapping
//! any statement still yields a spec whose remaining references resolve to
//! *some* live value, so every shrink candidate lowers to a valid kernel.
//!
//! The grammar is constrained so that final memory is independent of thread
//! scheduling order (the oracle contract, see `oracle.rs`):
//!
//! * loads only read the read-only input arrays `A`/`B`;
//! * plain stores only write the thread's private output word `C[tid]`;
//! * atomics are commutative (`add`/`min`/`max`, never `exch`) with operands
//!   masked non-negative and well below 2³¹ (the simulator's atomic unit is
//!   32-bit, so signed `min`/`max` on unmasked values would not commute
//!   after truncation), and the old-value destination register is never
//!   reused;
//! * no barriers, no shared or local memory, all memory ops are 32-bit.

use gpu_workloads::kernels::{SplitMix64, ARR_A, ARR_B, ARR_C};
use gpu_workloads::{PaperClass, Suite, Workload};
use simt_ir::instr::Guard;
use simt_ir::{
    AtomOp, CmpOp, Kernel, KernelBuilder, LaunchConfig, Op, Operand, PredId, RegId, Space,
    SpecialReg, Width,
};
use simt_mem::SparseMemory;

/// Bump when the grammar or lowering changes observable behaviour: the
/// version is baked into generated workload abbreviations so stale harness
/// cache entries can never alias fresh ones.
pub const GEN_VERSION: u32 = 1;

/// Words in each read-only input array (`A` and `B`).
pub const A_WORDS: u64 = 4096;

/// Index mask applied to data-dependent (gather) loads.
pub const IDX_MASK: i64 = A_WORDS as i64 - 1;

/// Mask applied to atomic operands: non-negative, far below 2³¹, so
/// `add`/`min`/`max` commute under the simulator's 32-bit RMW.
pub const VAL_MASK: i64 = 0xFFFF;

/// A reference into the lowering-time value pool, resolved modulo the pool's
/// current length.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Vref(pub u32);

/// A divergence condition: `((value & mask) cmp imm)`.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Cond {
    pub a: Vref,
    pub mask: i64,
    pub cmp: CmpOp,
    pub imm: i64,
}

/// Loop trip count: a small constant, or data-dependent (`value & mask`),
/// which gives per-lane loop divergence.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Trip {
    Const(u8),
    Data(Vref, u8),
}

/// One statement of the generated kernel body.
#[derive(Debug, Clone, PartialEq)]
pub enum Stmt {
    /// `v' = op(v, imm)` — affine chains when `op ∈ {add, sub, mul, shl}`.
    AluImm { op: Op, a: Vref, imm: i64 },
    /// `v' = op(a, b)`.
    Alu2 { op: Op, a: Vref, b: Vref },
    /// `v' = a * b + c`.
    Mad { a: Vref, b: Vref, c: Vref },
    /// `dst = op(dst, src)` on a previously produced value — loop-carried
    /// accumulation. Loop induction variables and the tid seeds are not
    /// accumulation targets, so loops always terminate.
    Accum { dst: Vref, op: Op, src: Vref },
    /// `v' = arr[tid·scale + offset]` — in-bounds by construction, no mask,
    /// so the affine analysis can decouple it.
    LoadAffine { arr: u8, scale: i64, offset: i64 },
    /// `v' = arr[(a·scale + offset) & IDX_MASK]` — gather / data-dependent.
    LoadIndirect {
        arr: u8,
        a: Vref,
        scale: i64,
        offset: i64,
        guard: Option<Cond>,
    },
    /// `v' = cond ? t : f` (setp + sel).
    Select { cond: Cond, t: Vref, f: Vref },
    /// `v' = f2i(i2f(a & 0xff) · factor + bias)` — a bounded float detour
    /// (finite, positive, so cross-design bit-identity is exact).
    Float { a: Vref, factor: f32, bias: f32 },
    /// `if cond { then } else { els }`.
    If {
        cond: Cond,
        then: Vec<Stmt>,
        els: Vec<Stmt>,
    },
    /// `for i in 0..trip { body }`; `i` joins the value pool.
    Loop { trip: Trip, body: Vec<Stmt> },
    /// `switch (a & (arms.len()-1))` — `arms.len()` is a power of two.
    Switch { a: Vref, arms: Vec<Vec<Stmt>> },
    /// `C[tid] = val` (32-bit), optionally guarded.
    Store { val: Vref, guard: Option<Cond> },
    /// `atom.op D[slot & (slots-1)], val & VAL_MASK` — commutative, bounded,
    /// old value discarded.
    Atomic { op: AtomOp, slot: Vref, val: Vref },
}

/// A complete generated test case: launch geometry, memory-init seed, and
/// the statement tree.
#[derive(Debug, Clone, PartialEq)]
pub struct KernelSpec {
    /// Seed for the input-array image (and part of the workload identity).
    pub seed: u64,
    /// Generator index within the seed's stream.
    pub index: u64,
    /// CTAs (x only).
    pub grid: u32,
    /// Threads per CTA (may be a non-multiple of 32: partial warps).
    pub block: u32,
    /// Atomic slots in the `D` region (power of two).
    pub slots: u32,
    /// The kernel body.
    pub body: Vec<Stmt>,
}

impl KernelSpec {
    /// Total threads launched.
    pub fn threads(&self) -> u64 {
        self.grid as u64 * self.block as u64
    }

    /// Base address of the atomic-slot region (directly after the per-thread
    /// output words, so one contiguous output region covers both).
    pub fn d_base(&self) -> u64 {
        ARR_C + self.threads() * 4
    }

    /// Lower the spec to an IR kernel. Always valid: the body is followed by
    /// an unconditional `C[tid] = last-value` store and `exit`.
    pub fn build_kernel(&self) -> Kernel {
        let mut b = KernelBuilder::new(format!("fz{}", self.index), 4);
        let tid = b.tid_linear_x();
        let lane = b.alu2(
            Op::And,
            Operand::Special(SpecialReg::TidX),
            Operand::Imm(31),
        );
        let wid = b.alu2(Op::Shr, Operand::Reg(tid), Operand::Imm(5));
        let mut lw = Lowerer {
            b,
            pool: vec![tid, lane, wid],
            muts: Vec::new(),
            labels: 0,
            tid,
            slot_mask: self.slots as i64 - 1,
        };
        lw.block(&self.body);
        let last = *lw.pool.last().expect("pool starts non-empty");
        lw.store_c(last, None);
        lw.b.exit();
        lw.b.build()
    }

    /// Build the full workload: kernel, launch, deterministic memory image,
    /// and a content-addressed abbreviation (sound as a harness cache key).
    pub fn build_workload(&self) -> Workload {
        let kernel = self.build_kernel();
        let threads = self.threads();
        let d_base = self.d_base();
        let launch = LaunchConfig::linear(self.grid, self.block, vec![ARR_A, ARR_B, ARR_C, d_base]);

        let mut memory = SparseMemory::new();
        let mut rng = SplitMix64::new(self.seed ^ 0x5EED_F00D_D00F_DEE5);
        for i in 0..A_WORDS {
            memory.write_u32(ARR_A + i * 4, rng.next_u64() as u32);
        }
        for i in 0..A_WORDS {
            memory.write_u32(ARR_B + i * 4, rng.next_u64() as u32);
        }
        // Atomic slots start high enough that min/max both have work to do.
        for s in 0..self.slots as u64 {
            memory.write_u32(d_base + s * 4, (rng.next_u64() & 0x3FFF_FFFF) as u32);
        }

        let hash = content_hash(self, &kernel);
        Workload {
            name: leak(format!(
                "fuzz kernel {} (seed {:#x})",
                self.index, self.seed
            )),
            abbr: leak(format!(
                "FZ{}-{:x}-{}-{:016x}",
                GEN_VERSION, self.seed, self.index, hash
            )),
            suite: Suite::GpgpuSim,
            paper_class: PaperClass::Compute,
            kernel,
            launch,
            memory,
            output: (ARR_C, (threads + self.slots as u64) as usize),
        }
    }
}

/// FNV-1a over everything that determines behaviour: the lowered kernel
/// text, launch geometry, and the memory-init seed.
fn content_hash(spec: &KernelSpec, kernel: &Kernel) -> u64 {
    let mut buf = simt_ir::disasm::to_asm(kernel).into_bytes();
    buf.extend_from_slice(&spec.grid.to_le_bytes());
    buf.extend_from_slice(&spec.block.to_le_bytes());
    buf.extend_from_slice(&spec.slots.to_le_bytes());
    buf.extend_from_slice(&spec.seed.to_le_bytes());
    simt_harness::fnv1a64(&buf)
}

fn leak(s: String) -> &'static str {
    Box::leak(s.into_boxed_str())
}

struct Lowerer {
    b: KernelBuilder,
    /// Readable values, in definition order. Never shrinks.
    pool: Vec<RegId>,
    /// Writable values (produced by value statements; excludes the tid seeds
    /// and loop induction variables, so accumulation can't break loops).
    muts: Vec<RegId>,
    labels: u32,
    tid: RegId,
    slot_mask: i64,
}

impl Lowerer {
    fn r(&self, v: Vref) -> RegId {
        self.pool[v.0 as usize % self.pool.len()]
    }

    fn fresh(&mut self, prefix: &str) -> String {
        self.labels += 1;
        format!("{prefix}{}", self.labels)
    }

    fn push_val(&mut self, r: RegId) {
        self.pool.push(r);
        self.muts.push(r);
    }

    /// Lower `cond` to a predicate: `t = a & mask; setp.cmp p, t, imm`.
    fn cond(&mut self, c: &Cond) -> PredId {
        let t = self
            .b
            .alu2(Op::And, Operand::Reg(self.r(c.a)), Operand::Imm(c.mask));
        self.b.setp(c.cmp, Operand::Reg(t), Operand::Imm(c.imm))
    }

    /// `C[tid] = val` (32-bit), optionally guarded.
    fn store_c(&mut self, val: RegId, guard: Option<PredId>) {
        let addr = self.b.alu3(
            Op::Mad,
            Operand::Reg(self.tid),
            Operand::Imm(4),
            Operand::Param(2),
        );
        match guard {
            None => {
                self.b
                    .st(Space::Global, addr, 0, Operand::Reg(val), Width::W32);
            }
            Some(p) => {
                self.b.st_guard(
                    Space::Global,
                    addr,
                    0,
                    Operand::Reg(val),
                    Width::W32,
                    Guard::pos(p),
                );
            }
        }
    }

    fn block(&mut self, body: &[Stmt]) {
        for s in body {
            self.stmt(s);
        }
    }

    fn stmt(&mut self, s: &Stmt) {
        match s {
            Stmt::AluImm { op, a, imm } => {
                let r = self
                    .b
                    .alu2(*op, Operand::Reg(self.r(*a)), Operand::Imm(*imm));
                self.push_val(r);
            }
            Stmt::Alu2 { op, a, b } => {
                let r = self
                    .b
                    .alu2(*op, Operand::Reg(self.r(*a)), Operand::Reg(self.r(*b)));
                self.push_val(r);
            }
            Stmt::Mad { a, b, c } => {
                let r = self.b.alu3(
                    Op::Mad,
                    Operand::Reg(self.r(*a)),
                    Operand::Reg(self.r(*b)),
                    Operand::Reg(self.r(*c)),
                );
                self.push_val(r);
            }
            Stmt::Accum { dst, op, src } => {
                if self.muts.is_empty() {
                    // Nothing writable yet: degrade to a fresh value.
                    let r = self
                        .b
                        .alu2(*op, Operand::Reg(self.r(*src)), Operand::Imm(1));
                    self.push_val(r);
                } else {
                    let d = self.muts[dst.0 as usize % self.muts.len()];
                    let srcs = [Operand::Reg(d), Operand::Reg(self.r(*src))];
                    self.b.alu_into(d, *op, &srcs);
                }
            }
            Stmt::LoadAffine { arr, scale, offset } => {
                let idx = if *scale == 1 && *offset == 0 {
                    self.tid
                } else {
                    self.b.alu3(
                        Op::Mad,
                        Operand::Reg(self.tid),
                        Operand::Imm(*scale),
                        Operand::Imm(*offset),
                    )
                };
                let addr = self.b.alu3(
                    Op::Mad,
                    Operand::Reg(idx),
                    Operand::Imm(4),
                    Operand::Param((*arr & 1) as u16),
                );
                let dst = self.b.ld(Space::Global, addr, 0, Width::W32);
                self.push_val(dst);
            }
            Stmt::LoadIndirect {
                arr,
                a,
                scale,
                offset,
                guard,
            } => {
                let i0 = self.b.alu3(
                    Op::Mad,
                    Operand::Reg(self.r(*a)),
                    Operand::Imm(*scale),
                    Operand::Imm(*offset),
                );
                let i1 = self
                    .b
                    .alu2(Op::And, Operand::Reg(i0), Operand::Imm(IDX_MASK));
                let addr = self.b.alu3(
                    Op::Mad,
                    Operand::Reg(i1),
                    Operand::Imm(4),
                    Operand::Param((*arr & 1) as u16),
                );
                let dst = match guard {
                    None => self.b.ld(Space::Global, addr, 0, Width::W32),
                    Some(c) => {
                        let p = self.cond(c);
                        self.b
                            .ld_guard(Space::Global, addr, 0, Width::W32, Guard::pos(p))
                    }
                };
                self.push_val(dst);
            }
            Stmt::Select { cond, t, f } => {
                let p = self.cond(cond);
                let (a, b) = (self.r(*t), self.r(*f));
                let r = self.b.sel(p, Operand::Reg(a), Operand::Reg(b));
                self.push_val(r);
            }
            Stmt::Float { a, factor, bias } => {
                let m = self
                    .b
                    .alu2(Op::And, Operand::Reg(self.r(*a)), Operand::Imm(0xFF));
                let f = self.b.alu1(Op::I2F, Operand::Reg(m));
                let g = self.b.alu3(
                    Op::FMad,
                    Operand::Reg(f),
                    Operand::Imm(factor.to_bits() as i64),
                    Operand::Imm(bias.to_bits() as i64),
                );
                let r = self.b.alu1(Op::F2I, Operand::Reg(g));
                self.push_val(r);
            }
            Stmt::If { cond, then, els } => {
                let p = self.cond(cond);
                let l_else = self.fresh("E");
                let l_end = self.fresh("X");
                self.b.bra_ifnot(p, &l_else);
                self.block(then);
                self.b.bra(&l_end);
                self.b.label(&l_else);
                self.block(els);
                self.b.label(&l_end);
            }
            Stmt::Loop { trip, body } => {
                let n = match trip {
                    Trip::Const(k) => self.b.mov(Operand::Imm(*k as i64)),
                    Trip::Data(v, m) => {
                        self.b
                            .alu2(Op::And, Operand::Reg(self.r(*v)), Operand::Imm(*m as i64))
                    }
                };
                let i = self.b.mov(Operand::Imm(0));
                // Readable (divergent data source) but not writable.
                self.pool.push(i);
                let l_top = self.fresh("L");
                let l_done = self.fresh("D");
                self.b.label(&l_top);
                let p = self.b.setp(CmpOp::Ge, Operand::Reg(i), Operand::Reg(n));
                self.b.bra_if(p, &l_done);
                self.block(body);
                let srcs = [Operand::Reg(i), Operand::Imm(1)];
                self.b.alu_into(i, Op::Add, &srcs);
                self.b.bra(&l_top);
                self.b.label(&l_done);
            }
            Stmt::Switch { a, arms } => {
                if arms.is_empty() {
                    return;
                }
                let ways = arms.len();
                let s = self.b.alu2(
                    Op::And,
                    Operand::Reg(self.r(*a)),
                    Operand::Imm(ways as i64 - 1),
                );
                let l_end = self.fresh("SX");
                let arm_labels: Vec<String> = (1..ways).map(|_| self.fresh("SA")).collect();
                for (k, l) in arm_labels.iter().enumerate() {
                    let p = self
                        .b
                        .setp(CmpOp::Eq, Operand::Reg(s), Operand::Imm(k as i64 + 1));
                    self.b.bra_if(p, l);
                }
                self.block(&arms[0]);
                self.b.bra(&l_end);
                for (k, l) in arm_labels.iter().enumerate() {
                    self.b.label(l);
                    self.block(&arms[k + 1]);
                    self.b.bra(&l_end);
                }
                self.b.label(&l_end);
            }
            Stmt::Store { val, guard } => {
                let v = self.r(*val);
                let p = guard.as_ref().map(|c| self.cond(c));
                self.store_c(v, p);
            }
            Stmt::Atomic { op, slot, val } => {
                let sl = self.b.alu2(
                    Op::And,
                    Operand::Reg(self.r(*slot)),
                    Operand::Imm(self.slot_mask),
                );
                let addr = self.b.alu3(
                    Op::Mad,
                    Operand::Reg(sl),
                    Operand::Imm(4),
                    Operand::Param(3),
                );
                let v = self
                    .b
                    .alu2(Op::And, Operand::Reg(self.r(*val)), Operand::Imm(VAL_MASK));
                // Old value intentionally dropped: reusing it would make the
                // output depend on atomic serialization order.
                let _old = self.b.atom(*op, addr, 0, Operand::Reg(v));
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn tiny_spec() -> KernelSpec {
        KernelSpec {
            seed: 7,
            index: 0,
            grid: 2,
            block: 48,
            slots: 8,
            body: vec![
                Stmt::LoadAffine {
                    arr: 0,
                    scale: 1,
                    offset: 0,
                },
                Stmt::If {
                    cond: Cond {
                        a: Vref(1),
                        mask: 7,
                        cmp: CmpOp::Lt,
                        imm: 3,
                    },
                    then: vec![Stmt::AluImm {
                        op: Op::Add,
                        a: Vref(3),
                        imm: 5,
                    }],
                    els: vec![],
                },
                Stmt::Atomic {
                    op: AtomOp::Add,
                    slot: Vref(1),
                    val: Vref(3),
                },
            ],
        }
    }

    #[test]
    fn lowering_always_validates() {
        let w = tiny_spec().build_workload();
        w.kernel.validate().unwrap();
        assert_eq!(w.launch.params.len(), 4);
        assert_eq!(w.output.0, ARR_C);
        assert_eq!(w.output.1, 96 + 8);
    }

    #[test]
    fn abbr_is_content_addressed() {
        let a = tiny_spec().build_workload();
        let b = tiny_spec().build_workload();
        assert_eq!(a.abbr, b.abbr);
        let mut changed = tiny_spec();
        changed.seed = 8;
        assert_ne!(a.abbr, changed.build_workload().abbr);
    }
}

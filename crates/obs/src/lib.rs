//! `simt-obs` — structured telemetry for the system *around* the
//! simulator.
//!
//! The simulator tier is deeply observable (`simt-trace` cycle events,
//! `simt-profile` issue-slot accounting); this crate gives the service
//! tier — harness pool, result cache, sweep daemon — the same discipline:
//!
//! * [`log`] — a leveled, structured event log. Every event carries a
//!   timestamp, level, target, message, and typed `key=value` fields, and
//!   serializes either as a human line or as a `dac-log/v1` JSONL record.
//!   Level filtering is one relaxed atomic load; a disabled event costs
//!   nothing (its message and field expressions are never evaluated).
//! * [`metrics`] — a process-wide registry of counters, gauges, and
//!   fixed-bucket histograms (reusing `simt-profile`'s allocation-free
//!   [`Histogram`](simt_profile::Histogram)), snapshottable for JSON
//!   documents.
//! * [`prom`] — Prometheus text exposition (deterministic ordering,
//!   spec-conformant escaping) plus a scrape parser used by the round-trip
//!   tests and CI smoke.
//!
//! The crate is std-only and dependency-free beyond the workspace, like
//! everything else in this repo.
//!
//! ```
//! simt_obs::log::set_level(simt_obs::log::Level::Info);
//! simt_obs::warn!("doc.example", "cache entry evicted"; hash = 0xdeadbeefu64, count = 3u64);
//! simt_obs::metrics::global().counter_add(
//!     "simt_doc_examples_total", "Doc-test executions.", &[], 1);
//! ```

pub mod log;
pub mod metrics;
pub mod prom;

/// Log an event at an explicit level with an optional span id.
///
/// `$span` is an `Option<u64>`; `$msg` is any `Display` expression (it is
/// only evaluated — and only allocates — when the level is enabled);
/// fields follow after `;` as `name = value` pairs, where values convert
/// via [`log::FieldValue::from`].
#[macro_export]
macro_rules! log_at {
    ($lvl:expr, $span:expr, $target:expr, $msg:expr $(; $($k:ident = $v:expr),* $(,)?)?) => {{
        if $crate::log::enabled($lvl) {
            $crate::log::write_event(
                $lvl,
                $target,
                &($msg),
                $span,
                &[$($((stringify!($k), $crate::log::FieldValue::from($v))),*)?],
            );
        }
    }};
}

/// Log an error-level event: `error!(target, msg; k = v, ...)`.
#[macro_export]
macro_rules! error {
    ($target:expr, $msg:expr $(; $($k:ident = $v:expr),* $(,)?)?) => {
        $crate::log_at!($crate::log::Level::Error, None, $target, $msg $(; $($k = $v),*)?)
    };
}

/// Log a warn-level event: `warn!(target, msg; k = v, ...)`.
#[macro_export]
macro_rules! warn {
    ($target:expr, $msg:expr $(; $($k:ident = $v:expr),* $(,)?)?) => {
        $crate::log_at!($crate::log::Level::Warn, None, $target, $msg $(; $($k = $v),*)?)
    };
}

/// Log an info-level event: `info!(target, msg; k = v, ...)`.
#[macro_export]
macro_rules! info {
    ($target:expr, $msg:expr $(; $($k:ident = $v:expr),* $(,)?)?) => {
        $crate::log_at!($crate::log::Level::Info, None, $target, $msg $(; $($k = $v),*)?)
    };
}

/// Log a debug-level event: `debug!(target, msg; k = v, ...)`.
#[macro_export]
macro_rules! debug {
    ($target:expr, $msg:expr $(; $($k:ident = $v:expr),* $(,)?)?) => {
        $crate::log_at!($crate::log::Level::Debug, None, $target, $msg $(; $($k = $v),*)?)
    };
}

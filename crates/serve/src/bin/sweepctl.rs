//! `sweepctl` — client for the sweep daemon (`serve`).
//!
//! Submits design-space grids, watches them to completion, fetches raw
//! `dac-run/v1` artifacts out of the shared store, and runs the serving
//! benchmark that produces `BENCH_pr7.json`. Machine-readable output (JSON
//! documents) goes to stdout; progress lines go to stderr.

use simt_harness::json::{self, Value};
use simt_serve::client::Client;
use std::path::Path;
use std::time::{Duration, Instant};

const USAGE: &str = "\
usage: sweepctl <command> [options]

commands:
  submit       submit a grid (--bench A,B --scenarios S --designs D --scale N
               --set k=v ...); add --watch to block until it completes
  watch ID     poll a sweep until it completes, printing a one-line
               progress summary (done/executed/hits/shared) as it moves
  tail ID      stream the sweep's event journal live (point started /
               finished / failed, resolution, wall time); --json prints
               the raw event documents instead of human lines
  fetch KEY    print the raw dac-run/v1 artifact for a 16-hex run key
               (--out FILE writes it to disk instead)
  status       print the service overview
  metrics      print service counters and p50/p90/p99 endpoint latency;
               --prom prints the Prometheus text exposition instead
  shutdown     stop the daemon
  bench        run the cold/overlap/warm serving benchmark and write
               BENCH_pr7.json (--out FILE, --benches A,B,C,D, --designs D,
               --scale N)
  check-bench FILE
               validate FILE against the bench schema it declares
               (dac-bench-pr7/v1 or dac-bench-pr8/v1)
  check-log FILE
               validate every dac-log/v1 line in FILE against
               schemas/log_v1.schema.json

connection options (all commands):
  --addr HOST:PORT   daemon address (default 127.0.0.1:7878)
  --port-file PATH   read the port from PATH (as written by serve
                     --port-file), host 127.0.0.1
  --timeout SECS     watch/bench completion timeout (default 600)";

fn usage_exit(error: &str) -> ! {
    if error == "help" {
        println!("{USAGE}");
        std::process::exit(0);
    }
    eprintln!("sweepctl: {error} (run `sweepctl --help` for usage)");
    std::process::exit(2);
}

fn fail(error: &str) -> ! {
    eprintln!("sweepctl: {error}");
    std::process::exit(1);
}

/// Flags shared by every command, split away from command-specific ones.
struct Common {
    addr: String,
    timeout: Duration,
    rest: Vec<String>,
}

fn parse_common(raw: &[String]) -> Common {
    let mut addr: Option<String> = None;
    let mut port_file: Option<String> = None;
    let mut timeout = Duration::from_secs(600);
    let mut rest = Vec::new();
    let mut it = raw.iter();
    while let Some(arg) = it.next() {
        let mut value = |name: &str| {
            it.next()
                .cloned()
                .unwrap_or_else(|| usage_exit(&format!("{name} needs a value")))
        };
        match arg.as_str() {
            "--addr" => addr = Some(value("--addr")),
            "--port-file" => port_file = Some(value("--port-file")),
            "--timeout" => {
                timeout = Duration::from_secs(
                    value("--timeout")
                        .parse()
                        .unwrap_or_else(|_| usage_exit("--timeout: expected seconds")),
                )
            }
            "-h" | "--help" => usage_exit("help"),
            other => rest.push(other.to_string()),
        }
    }
    let addr = match (addr, port_file) {
        (Some(a), _) => a,
        (None, Some(path)) => {
            let port = std::fs::read_to_string(&path)
                .unwrap_or_else(|e| fail(&format!("cannot read port file {path}: {e}")));
            format!("127.0.0.1:{}", port.trim())
        }
        (None, None) => "127.0.0.1:7878".into(),
    };
    Common {
        addr,
        timeout,
        rest,
    }
}

fn main() {
    simt_obs::log::init_from_env();
    let raw: Vec<String> = std::env::args().skip(1).collect();
    if raw.is_empty() {
        usage_exit("missing command");
    }
    let command = raw[0].clone();
    if command == "-h" || command == "--help" {
        usage_exit("help");
    }
    let common = parse_common(&raw[1..]);
    let client = Client::new(common.addr.clone());
    match command.as_str() {
        "submit" => submit(&client, &common),
        "watch" => {
            let id = common
                .rest
                .first()
                .unwrap_or_else(|| usage_exit("watch needs a sweep id"));
            let status = watch(&client, id, common.timeout);
            println!("{}", status.to_json());
        }
        "tail" => {
            let id = common
                .rest
                .iter()
                .find(|a| !a.starts_with("--"))
                .unwrap_or_else(|| usage_exit("tail needs a sweep id"));
            let json_mode = common.rest.iter().any(|a| a == "--json");
            tail(&client, id, common.timeout, json_mode);
        }
        "fetch" => fetch(&client, &common),
        "status" => print_endpoint(&client, "/status"),
        "metrics" => {
            if common.rest.iter().any(|a| a == "--prom") {
                let (status, text) = client
                    .get_text("/metrics?format=prom")
                    .unwrap_or_else(|e| fail(&e));
                if status != 200 {
                    fail(&format!("HTTP {status} from /metrics?format=prom"));
                }
                print!("{text}");
            } else {
                print_endpoint(&client, "/metrics");
            }
        }
        "shutdown" => {
            let v = client
                .post("/shutdown", None)
                .and_then(|r| r.ok())
                .unwrap_or_else(|e| fail(&e));
            println!("{}", v.to_json());
        }
        "bench" => bench(&client, &common),
        "check-bench" => {
            let path = common
                .rest
                .first()
                .unwrap_or_else(|| usage_exit("check-bench needs a file"));
            std::process::exit(check_bench_file(Path::new(path)));
        }
        "check-log" => {
            let path = common
                .rest
                .first()
                .unwrap_or_else(|| usage_exit("check-log needs a file"));
            std::process::exit(check_log_file(Path::new(path)));
        }
        other => usage_exit(&format!("unknown command {other:?}")),
    }
}

fn print_endpoint(client: &Client, path: &str) {
    let v = client
        .get(path)
        .and_then(|r| r.ok())
        .unwrap_or_else(|e| fail(&e));
    println!("{}", v.to_json());
}

/// Build a grid-request JSON document from `submit`/`bench` style flags.
fn grid_json(
    benches: &[String],
    scenarios: &[String],
    designs: &[String],
    scale: u64,
    sets: &[(String, String)],
) -> Value {
    let strs = |items: &[String]| Value::Arr(items.iter().map(|s| Value::Str(s.clone())).collect());
    let mut fields = Vec::new();
    if !benches.is_empty() {
        fields.push(("benches".into(), strs(benches)));
    }
    if !scenarios.is_empty() {
        fields.push(("scenarios".into(), strs(scenarios)));
    }
    if !designs.is_empty() {
        fields.push(("designs".into(), strs(designs)));
    }
    fields.push(("scale".into(), Value::Int(scale)));
    if !sets.is_empty() {
        fields.push((
            "overrides".into(),
            Value::Obj(
                sets.iter()
                    .map(|(k, v)| (k.clone(), Value::Str(v.clone())))
                    .collect(),
            ),
        ));
    }
    Value::Obj(fields)
}

fn split_list(text: &str) -> Vec<String> {
    text.split(',')
        .map(str::trim)
        .filter(|s| !s.is_empty())
        .map(str::to_string)
        .collect()
}

fn submit(client: &Client, common: &Common) {
    let mut benches = Vec::new();
    let mut scenarios = Vec::new();
    let mut designs = Vec::new();
    let mut scale = 1u64;
    let mut sets = Vec::new();
    let mut watch_it = false;
    let mut it = common.rest.iter();
    while let Some(arg) = it.next() {
        let mut value = |name: &str| {
            it.next()
                .cloned()
                .unwrap_or_else(|| usage_exit(&format!("{name} needs a value")))
        };
        match arg.as_str() {
            "--bench" | "--benches" => benches = split_list(&value("--bench")),
            "--scenarios" => scenarios = split_list(&value("--scenarios")),
            "--designs" => designs = split_list(&value("--designs")),
            "--scale" => {
                scale = value("--scale")
                    .parse()
                    .unwrap_or_else(|_| usage_exit("--scale: expected an integer"))
            }
            "--set" => {
                let pair = value("--set");
                let (k, v) = pair
                    .split_once('=')
                    .unwrap_or_else(|| usage_exit("--set: expected key=value"));
                sets.push((k.to_string(), v.to_string()));
            }
            "--watch" => watch_it = true,
            other => usage_exit(&format!("unknown submit option {other:?}")),
        }
    }
    let request = grid_json(&benches, &scenarios, &designs, scale, &sets);
    let receipt = client
        .post("/sweeps", Some(&request))
        .and_then(|r| r.ok())
        .unwrap_or_else(|e| fail(&e));
    let id = receipt
        .get("id")
        .and_then(Value::as_str)
        .unwrap_or_else(|| fail("receipt has no id"))
        .to_string();
    eprintln!(
        "sweepctl: {id}: {} point(s), {} new, {} already done, {} in flight",
        receipt.get("total").and_then(Value::as_u64).unwrap_or(0),
        receipt.get("new").and_then(Value::as_u64).unwrap_or(0),
        receipt
            .get("already_done")
            .and_then(Value::as_u64)
            .unwrap_or(0),
        receipt
            .get("inflight_shared")
            .and_then(Value::as_u64)
            .unwrap_or(0),
    );
    if watch_it {
        let status = watch(client, &id, common.timeout);
        println!("{}", status.to_json());
    } else {
        println!("{}", receipt.to_json());
    }
}

/// Poll a sweep until it completes, printing a one-line progress summary
/// whenever it changes; exits the process on timeout or if any point
/// failed. Returns the final status document.
fn watch(client: &Client, id: &str, timeout: Duration) -> Value {
    let deadline = Instant::now() + timeout;
    let mut last_line = String::new();
    loop {
        let status = client
            .get(&format!("/sweeps/{id}"))
            .and_then(|r| r.ok())
            .unwrap_or_else(|e| fail(&e));
        let field = |name: &str| status.get(name).and_then(Value::as_u64).unwrap_or(0);
        let (done, failed, total) = (field("done"), field("failed"), field("total"));
        let line = format!(
            "{done}/{total} done ({} executed, {} from cache, {} shared), \
             {} running, {failed} failed",
            field("executed"),
            field("cache_hits"),
            field("shared"),
            field("running"),
        );
        if line != last_line {
            eprintln!("sweepctl: {id}: {line}");
            last_line = line;
        }
        if status.get("complete").and_then(Value::as_bool) == Some(true) {
            if failed > 0 {
                fail(&format!("{id}: {failed} point(s) failed"));
            }
            return status;
        }
        if Instant::now() >= deadline {
            fail(&format!("{id}: timed out after {}s", timeout.as_secs()));
        }
        std::thread::sleep(Duration::from_millis(200));
    }
}

/// Follow a sweep's event journal live: long-poll `/sweeps/:id/events`
/// with a `since` cursor, printing each event as it arrives, until the
/// sweep completes. Exits 1 if any point failed.
fn tail(client: &Client, id: &str, timeout: Duration, json_mode: bool) {
    let deadline = Instant::now() + timeout;
    let mut since = 0u64;
    let mut failures = 0u64;
    loop {
        let reply = client
            .get(&format!(
                "/sweeps/{id}/events?since={since}&timeout_ms=10000"
            ))
            .and_then(|r| r.ok())
            .unwrap_or_else(|e| fail(&e));
        let dropped = reply.get("dropped").and_then(Value::as_u64).unwrap_or(0);
        if dropped > since {
            eprintln!(
                "sweepctl: {id}: journal overflowed; {} event(s) before this cursor were dropped",
                dropped - since
            );
        }
        let events = reply
            .get("events")
            .and_then(Value::as_arr)
            .map(<[Value]>::to_vec)
            .unwrap_or_default();
        for event in &events {
            if json_mode {
                println!("{}", event.to_json());
            } else {
                print_event(id, event);
            }
            if event.get("kind").and_then(Value::as_str) == Some("failed") {
                failures += 1;
            }
        }
        since = reply
            .get("next")
            .and_then(Value::as_u64)
            .unwrap_or_else(|| fail("events reply has no next cursor"));
        if reply.get("complete").and_then(Value::as_bool) == Some(true) {
            if failures > 0 {
                fail(&format!("{id}: {failures} point(s) failed"));
            }
            return;
        }
        if Instant::now() >= deadline {
            fail(&format!("{id}: timed out after {}s", timeout.as_secs()));
        }
    }
}

/// One human-readable line per journal event.
fn print_event(id: &str, event: &Value) {
    let s = |name: &str| event.get(name).and_then(Value::as_str).unwrap_or("");
    let wall_s = event.get("wall_us").and_then(Value::as_u64).unwrap_or(0) as f64 / 1e6;
    match s("kind") {
        "started" => println!("{} started", s("label")),
        "finished" => {
            let cycles = event.get("cycles").and_then(Value::as_u64).unwrap_or(0);
            println!(
                "{} finished ({}, {wall_s:.3}s, {cycles} cycles)",
                s("label"),
                s("resolution"),
            );
        }
        "failed" => println!("{} FAILED: {}", s("label"), s("error")),
        "complete" => println!("{id} complete ({wall_s:.3}s)"),
        other => println!("{} {other}", s("label")),
    }
}

fn fetch(client: &Client, common: &Common) {
    let mut key: Option<String> = None;
    let mut out: Option<String> = None;
    let mut it = common.rest.iter();
    while let Some(arg) = it.next() {
        match arg.as_str() {
            "--out" => {
                out = Some(
                    it.next()
                        .cloned()
                        .unwrap_or_else(|| usage_exit("--out needs a path")),
                )
            }
            k if key.is_none() => key = Some(k.to_string()),
            other => usage_exit(&format!("unknown fetch option {other:?}")),
        }
    }
    let key = key.unwrap_or_else(|| usage_exit("fetch needs a 16-hex run key"));
    let response = client
        .get(&format!("/runs/{key}"))
        .unwrap_or_else(|e| fail(&e));
    if response.status != 200 {
        let _ = response.ok().map_err(|e| fail(&e));
        return;
    }
    // The raw body, not a re-serialization: fetched artifacts must be
    // byte-identical to what the store holds.
    match out {
        Some(path) => std::fs::write(&path, &response.raw)
            .unwrap_or_else(|e| fail(&format!("cannot write {path}: {e}"))),
        None => println!("{}", response.raw),
    }
}

/// One measured phase of the serving benchmark.
struct Phase {
    points: u64,
    executed: u64,
    wall_s: f64,
}

impl Phase {
    fn to_json(&self) -> Value {
        let hits = self.points - self.executed;
        let rate = if self.points > 0 {
            hits as f64 / self.points as f64
        } else {
            0.0
        };
        Value::Obj(vec![
            ("points".into(), Value::Int(self.points)),
            ("executed".into(), Value::Int(self.executed)),
            ("hits".into(), Value::Int(hits)),
            ("cache_hit_rate".into(), Value::Float(rate)),
            ("wall_s".into(), Value::Float(self.wall_s)),
            (
                "points_per_sec".into(),
                Value::Float(if self.wall_s > 0.0 {
                    self.points as f64 / self.wall_s
                } else {
                    0.0
                }),
            ),
        ])
    }
}

/// Fresh-execution counter from `/metrics` — phase deltas of this counter
/// are what "point served without simulating" is measured against.
fn executed_counter(client: &Client) -> u64 {
    client
        .get("/metrics")
        .and_then(|r| r.ok())
        .unwrap_or_else(|e| fail(&e))
        .get("executed")
        .and_then(Value::as_u64)
        .unwrap_or_else(|| fail("metrics has no executed counter"))
}

/// Submit one grid, block until it completes, and measure how many of its
/// points needed a fresh simulation (daemon-wide counter delta — run the
/// benchmark against an otherwise idle daemon).
fn run_phase(
    client: &Client,
    benches: &[String],
    designs: &[String],
    scale: u64,
    timeout: Duration,
) -> Phase {
    let before = executed_counter(client);
    let t0 = Instant::now();
    let receipt = client
        .post(
            "/sweeps",
            Some(&grid_json(benches, &[], designs, scale, &[])),
        )
        .and_then(|r| r.ok())
        .unwrap_or_else(|e| fail(&e));
    let id = receipt
        .get("id")
        .and_then(Value::as_str)
        .unwrap_or_else(|| fail("receipt has no id"))
        .to_string();
    let status = watch(client, &id, timeout);
    let wall_s = t0.elapsed().as_secs_f64();
    let after = executed_counter(client);
    Phase {
        points: status.get("total").and_then(Value::as_u64).unwrap_or(0),
        executed: after - before,
        wall_s,
    }
}

/// The serving benchmark behind `BENCH_pr7.json`: a cold grid, an
/// overlapping grid (sharing all but one benchmark), and an identical
/// re-submission. Warm must execute nothing — the schema pins it.
fn bench(client: &Client, common: &Common) {
    let mut out = "BENCH_pr7.json".to_string();
    let mut benches = split_list("BFS,LIB,MQ,SPV");
    let mut designs = split_list("baseline,dac");
    let mut scale = 1u64;
    let mut it = common.rest.iter();
    while let Some(arg) = it.next() {
        let mut value = |name: &str| {
            it.next()
                .cloned()
                .unwrap_or_else(|| usage_exit(&format!("{name} needs a value")))
        };
        match arg.as_str() {
            "--out" => out = value("--out"),
            "--benches" => benches = split_list(&value("--benches")),
            "--designs" => designs = split_list(&value("--designs")),
            "--scale" => {
                scale = value("--scale")
                    .parse()
                    .unwrap_or_else(|_| usage_exit("--scale: expected an integer"))
            }
            other => usage_exit(&format!("unknown bench option {other:?}")),
        }
    }
    if benches.len() < 2 {
        usage_exit("bench needs at least two benchmarks to overlap");
    }
    // Cold grid = all but the last benchmark; overlapping grid = all but
    // the first. They share benches[1..n-1] — those points must be served,
    // not re-simulated.
    let cold = &benches[..benches.len() - 1];
    let overlap = &benches[1..];

    eprintln!("sweepctl: bench phase 1/3: cold {}", cold.join(","));
    let cold_phase = run_phase(client, cold, &designs, scale, common.timeout);
    eprintln!("sweepctl: bench phase 2/3: overlap {}", overlap.join(","));
    let overlap_phase = run_phase(client, overlap, &designs, scale, common.timeout);
    eprintln!("sweepctl: bench phase 3/3: warm {}", cold.join(","));
    let warm_phase = run_phase(client, cold, &designs, scale, common.timeout);
    if warm_phase.executed != 0 {
        fail(&format!(
            "warm phase re-executed {} point(s); the store is not serving",
            warm_phase.executed
        ));
    }

    let workers = client
        .get("/status")
        .and_then(|r| r.ok())
        .unwrap_or_else(|e| fail(&e))
        .get("workers")
        .and_then(Value::as_u64)
        .unwrap_or(0);
    let total_points = cold_phase.points + overlap_phase.points + warm_phase.points;
    let total_executed = cold_phase.executed + overlap_phase.executed;
    let total_wall = cold_phase.wall_s + overlap_phase.wall_s + warm_phase.wall_s;
    let strs = |items: &[String]| Value::Arr(items.iter().map(|s| Value::Str(s.clone())).collect());
    let record = Value::Obj(vec![
        ("schema".into(), Value::Str("dac-bench-pr7/v1".into())),
        ("workers".into(), Value::Int(workers)),
        ("scale".into(), Value::Int(scale)),
        ("benches".into(), strs(&benches)),
        ("designs".into(), strs(&designs)),
        (
            "phases".into(),
            Value::Obj(vec![
                ("cold".into(), cold_phase.to_json()),
                ("overlap".into(), overlap_phase.to_json()),
                ("warm".into(), warm_phase.to_json()),
            ]),
        ),
        (
            "totals".into(),
            Phase {
                points: total_points,
                executed: total_executed,
                wall_s: total_wall,
            }
            .to_json(),
        ),
    ]);
    let text = record.to_json();
    std::fs::write(&out, format!("{text}\n"))
        .unwrap_or_else(|e| fail(&format!("cannot write {out}: {e}")));
    eprintln!("sweepctl: bench record -> {out}");
    println!("{text}");
}

/// Load and parse a checked-in schema file; `Err` is the process exit code.
fn load_schema(schema_path: &Path) -> Result<Value, i32> {
    let schema_text = match std::fs::read_to_string(schema_path) {
        Ok(t) => t,
        Err(e) => {
            eprintln!("sweepctl: cannot read {}: {e}", schema_path.display());
            return Err(2);
        }
    };
    match json::parse(&schema_text) {
        Ok(v) => Ok(v),
        Err(e) => {
            eprintln!("sweepctl: {} is invalid JSON: {e}", schema_path.display());
            Err(1)
        }
    }
}

/// Validate a bench record against the schema it declares (`dac-bench-pr7/v1`
/// or `dac-bench-pr8/v1`). Returns the process exit code (0 = valid).
fn check_bench_file(path: &Path) -> i32 {
    let text = match std::fs::read_to_string(path) {
        Ok(t) => t,
        Err(e) => {
            eprintln!("sweepctl: cannot read {}: {e}", path.display());
            return 2;
        }
    };
    let value = match json::parse(&text) {
        Ok(v) => v,
        Err(e) => {
            eprintln!("sweepctl: {} is invalid JSON: {e}", path.display());
            return 1;
        }
    };
    let declared = value.get("schema").and_then(Value::as_str);
    let (name, schema_path) = match declared {
        Some("dac-bench-pr7/v1") => ("dac-bench-pr7/v1", "schemas/bench_pr7.schema.json"),
        Some("dac-bench-pr8/v1") => ("dac-bench-pr8/v1", "schemas/bench_pr8.schema.json"),
        _ => {
            eprintln!(
                "sweepctl: {} declares unknown schema {declared:?}",
                path.display()
            );
            return 1;
        }
    };
    let schema = match load_schema(Path::new(schema_path)) {
        Ok(s) => s,
        Err(code) => return code,
    };
    let mut errors = Vec::new();
    json::validate(&value, &schema, "$", &mut errors);
    if errors.is_empty() {
        println!("sweepctl: {} is a valid {name} record", path.display());
        0
    } else {
        for e in &errors {
            eprintln!("sweepctl: {}: {e}", path.display());
        }
        1
    }
}

/// Validate every `dac-log/v1` line in a log file against
/// `schemas/log_v1.schema.json`. Non-JSON lines (CLI progress output mixed
/// into the same stream) are skipped; a JSON line claiming the dac-log/v1
/// schema must validate. Returns the process exit code (0 = valid, and at
/// least one dac-log/v1 line was found).
fn check_log_file(path: &Path) -> i32 {
    let text = match std::fs::read_to_string(path) {
        Ok(t) => t,
        Err(e) => {
            eprintln!("sweepctl: cannot read {}: {e}", path.display());
            return 2;
        }
    };
    let schema = match load_schema(Path::new("schemas/log_v1.schema.json")) {
        Ok(s) => s,
        Err(code) => return code,
    };
    let mut checked = 0usize;
    let mut bad = 0usize;
    for (lineno, line) in text.lines().enumerate() {
        let line = line.trim();
        if !line.starts_with('{') {
            continue; // progress output, not a structured event
        }
        let value = match json::parse(line) {
            Ok(v) => v,
            Err(e) => {
                eprintln!(
                    "sweepctl: {}:{}: invalid JSON: {e}",
                    path.display(),
                    lineno + 1
                );
                bad += 1;
                continue;
            }
        };
        if value.get("schema").and_then(Value::as_str) != Some("dac-log/v1") {
            continue; // some other JSON document in the stream
        }
        checked += 1;
        let mut errors = Vec::new();
        json::validate(&value, &schema, "$", &mut errors);
        for e in &errors {
            eprintln!("sweepctl: {}:{}: {e}", path.display(), lineno + 1);
        }
        bad += usize::from(!errors.is_empty());
    }
    if checked == 0 {
        eprintln!("sweepctl: {}: no dac-log/v1 lines found", path.display());
        return 1;
    }
    if bad > 0 {
        eprintln!(
            "sweepctl: {}: {bad} invalid line(s) out of {checked} checked",
            path.display()
        );
        return 1;
    }
    println!(
        "sweepctl: {}: {checked} dac-log/v1 line(s), all valid",
        path.display()
    );
    0
}

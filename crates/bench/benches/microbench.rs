//! Criterion micro-benchmarks: the cost of the reproduction's own moving
//! parts (tuple algebra, analysis, decoupling, and per-figure mini-runs).
//!
//! Each paper table/figure has a corresponding group so `cargo bench`
//! exercises the full harness path end to end on reduced inputs; the real
//! numbers come from `cargo run -p dac-bench --bin figures --release`.

use affine::{decouple, tuple::tuple_op, AffineAnalysis, AffineTuple};
use criterion::{criterion_group, criterion_main, BatchSize, Criterion};
use gpu_workloads::{benchmark, gpu_for, run_design, Design};
use simt_ir::Op;
use simt_sim::{GpuConfig, GpuSim};

fn bench_tuple_ops(c: &mut Criterion) {
    let a = AffineTuple::tid(0);
    let s = AffineTuple::scalar(4);
    c.bench_function("tuple/mad", |b| {
        b.iter(|| {
            std::hint::black_box(tuple_op(
                Op::Mad,
                &[std::hint::black_box(a), s, AffineTuple::scalar(0x1000)],
            ))
        })
    });
    let m = tuple_op(Op::Rem, &[a, AffineTuple::scalar(64)]).unwrap();
    c.bench_function("tuple/mod_eval_warp", |b| {
        b.iter(|| {
            let mut acc = 0u64;
            for lane in 0..32u32 {
                acc = acc.wrapping_add(m.eval((lane, 0, 0)));
            }
            std::hint::black_box(acc)
        })
    });
}

fn bench_compiler(c: &mut Criterion) {
    let w = benchmark("LIB", 1).unwrap();
    c.bench_function("compiler/analysis", |b| {
        b.iter(|| std::hint::black_box(AffineAnalysis::run(&w.kernel)))
    });
    let analysis = AffineAnalysis::run(&w.kernel);
    c.bench_function("compiler/decouple", |b| {
        b.iter(|| std::hint::black_box(decouple(&w.kernel, &analysis)))
    });
}

/// One mini-run per figure family: fig16-style timing comparisons on a
/// single benchmark with a small GPU.
fn bench_simulation(c: &mut Criterion) {
    let mut group = c.benchmark_group("sim");
    group.sample_size(10);
    for (label, design) in [
        ("fig16/baseline", Design::Baseline),
        ("fig16/cae", Design::Cae),
        ("fig16/mta", Design::Mta),
        ("fig16/dac", Design::Dac),
    ] {
        group.bench_function(label, |b| {
            let w = benchmark("SR2", 1).unwrap();
            let gpu = GpuSim::new(GpuConfig {
                mem: gpu_for(design).mem,
                ..GpuConfig::test_small()
            });
            b.iter_batched(
                || (),
                |_| std::hint::black_box(run_design(&w, design, &gpu).report.cycles),
                BatchSize::SmallInput,
            )
        });
    }
    group.finish();
}

criterion_group!(benches, bench_tuple_ops, bench_compiler, bench_simulation);
criterion_main!(benches);

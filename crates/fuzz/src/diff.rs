//! The differential driver: one generated kernel through the oracle and all
//! hardware designs, with every invariant the paper's transparency claim
//! rests on checked in one place.
//!
//! Checks per design:
//! 1. final memory bit-identical to the oracle — the whole output region
//!    (per-thread words + atomic slots) *and* the read-only input arrays;
//! 2. the issue-slot bucket-sum invariant from `simt-profile`
//!    (`Σ buckets == cycles × schedulers × SMs`);
//! 3. DAC-only stall buckets are exactly zero on non-DAC designs;
//! 4. fast-forward on/off produces byte-identical reports and outputs
//!    (for the designs listed in [`DiffConfig::ff_designs`]).
//!
//! A design panic (simulator assertion, decoupler bug, deadlock guard) is
//! caught and reported as a failure rather than tearing down the driver, so
//! the reducer can minimize crashing kernels too.

use crate::oracle::{run_oracle, OracleError};
use crate::spec::{A_WORDS, GEN_VERSION};
use dac_core::DacConfig;
use gpu_workloads::kernels::{ARR_A, ARR_B};
use gpu_workloads::{gpu_for, run_dac, run_design, BenchRun, Design, Workload};
use simt_harness::Overrides;
use simt_profile::CpiStack;
use simt_sim::{GpuSim, SimReport};
use std::panic::{catch_unwind, AssertUnwindSafe};

/// What the driver checks and on which machine shape.
#[derive(Debug, Clone)]
pub struct DiffConfig {
    /// Designs to run (default: all four).
    pub designs: Vec<Design>,
    /// Machine shape (default: 2 SMs × 16 warps — small enough for
    /// thousands of kernels, big enough for inter-SM and occupancy effects).
    pub overrides: Overrides,
    /// Designs additionally re-run with fast-forward disabled and compared
    /// byte-for-byte. DAC by default: its queue machinery interacts with
    /// idle-cycle skipping the most.
    pub ff_designs: Vec<Design>,
    /// Intra-run thread counts every design is re-run with and compared
    /// byte-for-byte against the base run (report, stats, and output) —
    /// the fuzzing arm of the intra-run determinism guarantee. `[2]` by
    /// default (the fuzzing machine has 2 SMs, so higher counts clamp).
    pub mt_threads: Vec<usize>,
}

impl Default for DiffConfig {
    fn default() -> Self {
        DiffConfig {
            designs: Design::ALL.to_vec(),
            overrides: small_overrides(),
            ff_designs: vec![Design::Dac],
            mt_threads: vec![2],
        }
    }
}

/// The standard fuzzing machine shape.
pub fn small_overrides() -> Overrides {
    Overrides {
        num_sms: Some(2),
        max_warps_per_sm: Some(16),
        ..Overrides::default()
    }
}

/// One design's surviving result.
#[derive(Debug, Clone)]
pub struct DesignRun {
    pub design: Design,
    pub report: SimReport,
    /// Output-region words (`C` + atomic slots), equal to the oracle's.
    pub output: Vec<u32>,
}

/// A check that failed. `std::mem::discriminant` of this value is the
/// "failure class" the reducer preserves while shrinking.
#[derive(Debug, Clone, PartialEq)]
pub enum DiffFailure {
    /// The kernel itself is malformed (generator bug).
    Invalid(String),
    /// The oracle refused or aborted.
    Oracle(OracleError),
    /// A design's memory differs from the oracle.
    MemoryMismatch {
        design: Design,
        region: &'static str,
        word: usize,
        got: u32,
        want: u32,
    },
    /// Issue-slot buckets do not sum to `cycles × schedulers × SMs`.
    BucketSum {
        design: Design,
        total: u64,
        want: u64,
    },
    /// A DAC-only bucket was non-zero on a non-DAC design.
    ForeignBucket {
        design: Design,
        bucket: &'static str,
        slots: u64,
    },
    /// Fast-forward on/off changed the result.
    FastForward { design: Design, what: String },
    /// Running with intra-run worker threads changed the result.
    Threaded {
        design: Design,
        threads: usize,
        what: String,
    },
    /// A cached harness result's output digest disagrees with the oracle.
    DigestMismatch { design: Design, got: u64, want: u64 },
    /// The simulator (or decoupler) panicked.
    Panic { design: Design, msg: String },
}

impl std::fmt::Display for DiffFailure {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            DiffFailure::Invalid(e) => write!(f, "invalid kernel: {e}"),
            DiffFailure::Oracle(e) => write!(f, "{e}"),
            DiffFailure::MemoryMismatch {
                design,
                region,
                word,
                got,
                want,
            } => write!(
                f,
                "{}: {region}[{word}] = {got:#010x}, oracle says {want:#010x}",
                design.name()
            ),
            DiffFailure::BucketSum {
                design,
                total,
                want,
            } => write!(
                f,
                "{}: issue-slot buckets sum to {total}, want {want}",
                design.name()
            ),
            DiffFailure::ForeignBucket {
                design,
                bucket,
                slots,
            } => write!(
                f,
                "{}: DAC-only bucket {bucket} has {slots} slots",
                design.name()
            ),
            DiffFailure::FastForward { design, what } => {
                write!(f, "{}: fast-forward changed {what}", design.name())
            }
            DiffFailure::Threaded {
                design,
                threads,
                what,
            } => {
                write!(f, "{}: --threads {threads} changed {what}", design.name())
            }
            DiffFailure::DigestMismatch { design, got, want } => write!(
                f,
                "{}: cached output digest {got:#018x}, oracle says {want:#018x}",
                design.name()
            ),
            DiffFailure::Panic { design, msg } => {
                write!(f, "{}: panic: {msg}", design.name())
            }
        }
    }
}

/// Execute `w` on `design` exactly the way `Job::execute` would (same
/// config derivation), returning the full [`BenchRun`].
pub fn run_one(w: &Workload, design: Design, ov: &Overrides) -> BenchRun {
    let gpu = GpuSim::new(ov.apply_gpu(gpu_for(design)));
    match design {
        Design::Dac => run_dac(w, &gpu, ov.apply_dac(DacConfig::paper())),
        d => run_design(w, d, &gpu),
    }
}

fn run_caught(w: &Workload, design: Design, ov: &Overrides) -> Result<BenchRun, DiffFailure> {
    catch_unwind(AssertUnwindSafe(|| run_one(w, design, ov))).map_err(|p| {
        let msg = p
            .downcast_ref::<&str>()
            .map(|s| s.to_string())
            .or_else(|| p.downcast_ref::<String>().cloned())
            .unwrap_or_else(|| "non-string panic payload".into());
        DiffFailure::Panic { design, msg }
    })
}

/// Run the full differential check. Returns the per-design runs on success
/// (their `output` vectors are all equal to the oracle's) or the first
/// failure encountered.
pub fn check_workload(w: &Workload, cfg: &DiffConfig) -> Result<Vec<DesignRun>, DiffFailure> {
    if let Err(e) = w.kernel.validate() {
        return Err(DiffFailure::Invalid(format!("{e:?}")));
    }
    let mut omem = w.fresh_memory();
    run_oracle(&w.kernel, &w.launch, &mut omem).map_err(DiffFailure::Oracle)?;
    let want_out = omem.read_u32_vec(w.output.0, w.output.1);
    let want_a = omem.read_u32_vec(ARR_A, A_WORDS as usize);
    let want_b = omem.read_u32_vec(ARR_B, A_WORDS as usize);

    let mut runs = Vec::with_capacity(cfg.designs.len());
    for &design in &cfg.designs {
        let run = run_caught(w, design, &cfg.overrides)?;

        let regions: [(&'static str, u64, &[u32]); 3] = [
            ("output", w.output.0, &want_out),
            ("A", ARR_A, &want_a),
            ("B", ARR_B, &want_b),
        ];
        for (region, base, want) in regions {
            let got = run.memory.read_u32_vec(base, want.len());
            if let Some(word) = (0..want.len()).find(|&i| got[i] != want[i]) {
                return Err(DiffFailure::MemoryMismatch {
                    design,
                    region,
                    word,
                    got: got[word],
                    want: want[word],
                });
            }
        }

        let gcfg = cfg.overrides.apply_gpu(gpu_for(design));
        let stats = &run.report.stats;
        let cpi = CpiStack::from_stats(stats);
        if !cpi.check(stats.cycles, gcfg.schedulers, gcfg.num_sms) {
            return Err(DiffFailure::BucketSum {
                design,
                total: cpi.total(),
                want: stats.cycles * (gcfg.schedulers * gcfg.num_sms) as u64,
            });
        }
        if design != Design::Dac {
            for bucket in ["deq_empty", "deq_data", "enq_full"] {
                let slots = cpi.get(bucket);
                if slots != 0 {
                    return Err(DiffFailure::ForeignBucket {
                        design,
                        bucket,
                        slots,
                    });
                }
            }
        }

        if cfg.ff_designs.contains(&design) {
            let mut slow = cfg.overrides.clone();
            slow.no_fast_forward = true;
            let rerun = run_caught(w, design, &slow)?;
            if rerun.report.cycles != run.report.cycles {
                return Err(DiffFailure::FastForward {
                    design,
                    what: format!("cycles: {} vs {}", run.report.cycles, rerun.report.cycles),
                });
            }
            if rerun.report.stats != run.report.stats {
                return Err(DiffFailure::FastForward {
                    design,
                    what: "stats".into(),
                });
            }
            let rw = rerun.memory.read_u32_vec(w.output.0, w.output.1);
            let gw = run.memory.read_u32_vec(w.output.0, w.output.1);
            if rw != gw {
                return Err(DiffFailure::FastForward {
                    design,
                    what: "output words".into(),
                });
            }
        }

        for &threads in &cfg.mt_threads {
            let mut par = cfg.overrides.clone();
            par.threads = Some(threads);
            let rerun = run_caught(w, design, &par)?;
            if rerun.report.cycles != run.report.cycles {
                return Err(DiffFailure::Threaded {
                    design,
                    threads,
                    what: format!("cycles: {} vs {}", run.report.cycles, rerun.report.cycles),
                });
            }
            if rerun.report.stats != run.report.stats {
                return Err(DiffFailure::Threaded {
                    design,
                    threads,
                    what: "stats".into(),
                });
            }
            let rw = rerun.memory.read_u32_vec(w.output.0, w.output.1);
            let gw = run.memory.read_u32_vec(w.output.0, w.output.1);
            if rw != gw {
                return Err(DiffFailure::Threaded {
                    design,
                    threads,
                    what: "output words".into(),
                });
            }
        }

        runs.push(DesignRun {
            design,
            report: run.report,
            output: run.memory.read_u32_vec(w.output.0, w.output.1),
        });
    }
    Ok(runs)
}

/// FNV-1a digest of a word vector, little-endian — byte-compatible with the
/// harness's `JobResult::output_digest`, so oracle output can be checked
/// against cached results without re-simulating.
pub fn digest_words(words: &[u32]) -> u64 {
    let mut bytes = Vec::with_capacity(words.len() * 4);
    for word in words {
        bytes.extend_from_slice(&word.to_le_bytes());
    }
    simt_harness::fnv1a64(&bytes)
}

/// Human-readable one-line id for a generated kernel, used in logs and
/// repro file names.
pub fn case_id(seed: u64, index: u64) -> String {
    format!("v{GEN_VERSION}-s{seed:x}-i{index}")
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::gen::gen_spec;

    /// A handful of generated kernels through the full 4-design check.
    /// (The broad sweep lives in `tests/differential.rs` and the CI smoke
    /// step; this is the fast in-crate canary.)
    #[test]
    fn small_window_passes_all_designs() {
        for i in 0..6 {
            let w = gen_spec(0xD1FF, i).build_workload();
            let runs = check_workload(&w, &DiffConfig::default())
                .unwrap_or_else(|f| panic!("kernel {}: {f}", case_id(0xD1FF, i)));
            assert_eq!(runs.len(), 4);
            let first = &runs[0].output;
            assert!(runs.iter().all(|r| &r.output == first));
        }
    }

    /// A kernel that violates the oracle contract (two warps race on one
    /// word, with the *earlier* threads delayed by a loop) must be caught
    /// as a memory mismatch: the oracle's sequential order says the second
    /// warp wins, the SIMT schedule says the first does.
    #[test]
    fn catches_an_order_dependent_kernel() {
        use gpu_workloads::kernels::ARR_C;
        use gpu_workloads::{PaperClass, Suite};
        use simt_ir::{CmpOp, KernelBuilder, LaunchConfig, Op, Operand, Space, Width};
        use simt_mem::SparseMemory;

        let mut b = KernelBuilder::new("race", 4);
        let tid = b.tid_linear_x();
        let addr = b.mov(Operand::Param(2));
        let p = b.setp(CmpOp::Lt, Operand::Reg(tid), Operand::Imm(32));
        b.bra_ifnot(p, "else");
        let i = b.mov(Operand::Imm(0));
        b.label("top");
        b.alu_into(i, Op::Add, &[Operand::Reg(i), Operand::Imm(1)]);
        let q = b.setp(CmpOp::Lt, Operand::Reg(i), Operand::Imm(100));
        b.bra_if(q, "top");
        b.st(Space::Global, addr, 0, Operand::Imm(1111), Width::W32);
        b.bra("end");
        b.label("else");
        b.st(Space::Global, addr, 0, Operand::Imm(2222), Width::W32);
        b.label("end");
        b.exit();

        let w = Workload {
            name: "order-dependent race",
            abbr: "FZRACE",
            suite: Suite::GpgpuSim,
            paper_class: PaperClass::Compute,
            kernel: b.build(),
            launch: LaunchConfig::linear(1, 64, vec![0, 0, ARR_C, ARR_C]),
            memory: SparseMemory::new(),
            output: (ARR_C, 1),
        };
        let got = check_workload(&w, &DiffConfig::default());
        assert!(
            matches!(got, Err(DiffFailure::MemoryMismatch { .. })),
            "expected a memory mismatch, got {got:?}"
        );
    }
}

//! Greedy test-case reduction.
//!
//! Shrinks at the *spec* level, not the instruction level: because value
//! references resolve modulo the live pool (`spec.rs`), every edit below
//! yields a well-formed kernel, so the reducer never has to repair dataflow.
//!
//! Edits, tried cheapest-win first, repeated until a fixpoint:
//! * shrink the launch (`grid → 1`, `block → 32`);
//! * delete any single statement (preorder index);
//! * unwrap a structural statement into one of its blocks
//!   (`if → then`, `if → else`, `loop → body`, `switch → arm k`);
//! * simplify in place (trip count → 1, drop guards).
//!
//! An edit is kept only if the candidate still fails with the *same failure
//! class* (`std::mem::discriminant` of [`DiffFailure`]) — shrinking must not
//! wander onto a different bug.

use crate::diff::{check_workload, DiffConfig, DiffFailure};
use crate::spec::{KernelSpec, Stmt, Trip};

/// One shrink edit against a spec.
#[derive(Debug, Clone, Copy)]
enum Edit {
    Grid1,
    Block32,
    Remove(usize),
    /// Replace structural stmt at preorder index with one of its blocks:
    /// variant 0 = then/body/arm0, 1 = else/arm1, 2/3 = arm2/arm3.
    Unwrap(usize, u8),
    Simplify(usize),
}

/// Total number of statements, recursively.
fn stmt_count(body: &[Stmt]) -> usize {
    body.iter()
        .map(|s| {
            1 + match s {
                Stmt::If { then, els, .. } => stmt_count(then) + stmt_count(els),
                Stmt::Loop { body, .. } => stmt_count(body),
                Stmt::Switch { arms, .. } => arms.iter().map(|a| stmt_count(a)).sum(),
                _ => 0,
            }
        })
        .sum()
}

/// Walk `body` in preorder; apply `f` to the statement at `*idx` (counting
/// down). Returns true once applied. `f` returns the replacement statements.
fn edit_at(
    body: &mut Vec<Stmt>,
    idx: &mut usize,
    f: &mut dyn FnMut(&mut Stmt) -> Option<Vec<Stmt>>,
) -> bool {
    let mut i = 0;
    while i < body.len() {
        if *idx == 0 {
            return match f(&mut body[i]) {
                Some(repl) => {
                    body.splice(i..=i, repl);
                    true
                }
                // Edit doesn't apply here; signal completion with failure by
                // leaving idx at usize::MAX.
                None => {
                    *idx = usize::MAX;
                    true
                }
            };
        }
        *idx -= 1;
        let done = match &mut body[i] {
            Stmt::If { then, els, .. } => edit_at(then, idx, f) || edit_at(els, idx, f),
            Stmt::Loop { body, .. } => edit_at(body, idx, f),
            Stmt::Switch { arms, .. } => {
                let mut done = false;
                for a in arms {
                    if edit_at(a, idx, f) {
                        done = true;
                        break;
                    }
                }
                done
            }
            _ => false,
        };
        if done {
            return true;
        }
        i += 1;
    }
    false
}

fn apply(spec: &KernelSpec, e: Edit) -> Option<KernelSpec> {
    let mut c = spec.clone();
    match e {
        Edit::Grid1 => {
            if c.grid == 1 {
                return None;
            }
            c.grid = 1;
        }
        Edit::Block32 => {
            if c.block <= 32 {
                return None;
            }
            c.block = 32;
        }
        Edit::Remove(i) => {
            let mut idx = i;
            if !edit_at(&mut c.body, &mut idx, &mut |_| Some(Vec::new())) || idx == usize::MAX {
                return None;
            }
        }
        Edit::Unwrap(i, variant) => {
            let mut idx = i;
            let mut f = |s: &mut Stmt| -> Option<Vec<Stmt>> {
                match (s, variant) {
                    (Stmt::If { then, .. }, 0) if !then.is_empty() => Some(std::mem::take(then)),
                    (Stmt::If { els, .. }, 1) if !els.is_empty() => Some(std::mem::take(els)),
                    (Stmt::Loop { body, .. }, 0) if !body.is_empty() => Some(std::mem::take(body)),
                    (Stmt::Switch { arms, .. }, v) if (v as usize) < arms.len() => {
                        Some(std::mem::take(&mut arms[v as usize]))
                    }
                    _ => None,
                }
            };
            if !edit_at(&mut c.body, &mut idx, &mut f) || idx == usize::MAX {
                return None;
            }
        }
        Edit::Simplify(i) => {
            let mut idx = i;
            let mut f = |s: &mut Stmt| -> Option<Vec<Stmt>> {
                let simplified = match s {
                    Stmt::Loop { trip, .. } if *trip != Trip::Const(1) => {
                        *trip = Trip::Const(1);
                        true
                    }
                    Stmt::LoadIndirect { guard, .. } if guard.is_some() => {
                        *guard = None;
                        true
                    }
                    Stmt::Store { guard, .. } if guard.is_some() => {
                        *guard = None;
                        true
                    }
                    _ => false,
                };
                simplified.then(|| vec![s.clone()])
            };
            if !edit_at(&mut c.body, &mut idx, &mut f) || idx == usize::MAX {
                return None;
            }
        }
    }
    Some(c)
}

/// All edits worth trying against the current spec, cheapest-win first.
fn candidates(spec: &KernelSpec) -> Vec<Edit> {
    let mut out = vec![Edit::Grid1, Edit::Block32];
    let n = stmt_count(&spec.body);
    for i in 0..n {
        out.push(Edit::Remove(i));
    }
    for i in 0..n {
        for v in 0..4 {
            out.push(Edit::Unwrap(i, v));
        }
        out.push(Edit::Simplify(i));
    }
    out
}

/// Greedy reduction against an arbitrary predicate: keep any edit after
/// which `fails` still returns true, until no edit helps. Returns the
/// reduced spec and the number of accepted edits.
pub fn reduce_with(spec: &KernelSpec, fails: impl Fn(&KernelSpec) -> bool) -> (KernelSpec, usize) {
    let mut cur = spec.clone();
    let mut accepted = 0;
    loop {
        let mut progressed = false;
        for e in candidates(&cur) {
            if let Some(cand) = apply(&cur, e) {
                if fails(&cand) {
                    cur = cand;
                    accepted += 1;
                    progressed = true;
                    // Restart: indices shifted.
                    break;
                }
            }
        }
        if !progressed {
            return (cur, accepted);
        }
    }
}

/// Reduce a failing spec while preserving the failure *class* observed on
/// the original (same [`DiffFailure`] variant). Returns the reduced spec,
/// its failure, and the number of accepted edits.
pub fn reduce(spec: &KernelSpec, cfg: &DiffConfig) -> Option<(KernelSpec, DiffFailure, usize)> {
    let original = check_workload(&spec.build_workload(), cfg).err()?;
    let class = std::mem::discriminant(&original);
    let (reduced, accepted) = reduce_with(spec, |cand| {
        matches!(
            check_workload(&cand.build_workload(), cfg),
            Err(f) if std::mem::discriminant(&f) == class
        )
    });
    let failure = check_workload(&reduced.build_workload(), cfg)
        .err()
        .unwrap_or(original);
    Some((reduced, failure, accepted))
}

/// Render a repro file: the minimized kernel as re-parseable `.asm`, with a
/// comment header carrying everything needed to rebuild the workload.
pub fn repro_asm(spec: &KernelSpec, failure: &DiffFailure) -> String {
    let w = spec.build_workload();
    let mut out = String::new();
    out.push_str("// simt-fuzz minimized repro\n");
    out.push_str(&format!(
        "// seed={:#x} index={} grid={} block={} slots={}\n",
        spec.seed, spec.index, spec.grid, spec.block, spec.slots
    ));
    out.push_str(&format!("// workload abbr: {}\n", w.abbr));
    out.push_str(&format!("// failure: {failure}\n"));
    out.push_str(&simt_ir::disasm::to_asm(&w.kernel));
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::gen::gen_spec;
    use crate::spec::{Cond, Vref};
    use simt_ir::{AtomOp, CmpOp};

    fn has_atomic(body: &[Stmt]) -> bool {
        body.iter().any(|s| match s {
            Stmt::Atomic { .. } => true,
            Stmt::If { then, els, .. } => has_atomic(then) || has_atomic(els),
            Stmt::Loop { body, .. } => has_atomic(body),
            Stmt::Switch { arms, .. } => arms.iter().any(|a| has_atomic(a)),
            _ => false,
        })
    }

    /// Reducing "contains an atomic" against a busy generated spec should
    /// shrink to (near) a single statement and minimal launch.
    #[test]
    fn shrinks_to_minimal_witness() {
        // A deep hand-made spec so the structural edits all get exercised.
        let spec = KernelSpec {
            seed: 1,
            index: 0,
            grid: 3,
            block: 96,
            slots: 8,
            body: vec![
                Stmt::AluImm {
                    op: simt_ir::Op::Add,
                    a: Vref(0),
                    imm: 3,
                },
                Stmt::If {
                    cond: Cond {
                        a: Vref(0),
                        mask: 7,
                        cmp: CmpOp::Lt,
                        imm: 4,
                    },
                    then: vec![Stmt::Loop {
                        trip: Trip::Data(Vref(1), 7),
                        body: vec![Stmt::Atomic {
                            op: AtomOp::Add,
                            slot: Vref(2),
                            val: Vref(3),
                        }],
                    }],
                    els: vec![Stmt::Store {
                        val: Vref(1),
                        guard: Some(Cond {
                            a: Vref(0),
                            mask: 3,
                            cmp: CmpOp::Eq,
                            imm: 1,
                        }),
                    }],
                },
            ],
        };
        assert!(has_atomic(&spec.body));
        let (red, accepted) = reduce_with(&spec, |s| has_atomic(&s.body));
        assert!(accepted > 0);
        assert!(has_atomic(&red.body));
        assert_eq!(red.grid, 1);
        assert_eq!(red.block, 32);
        assert_eq!(stmt_count(&red.body), 1, "reduced body: {:?}", red.body);
        // And the witness still lowers to a valid kernel.
        red.build_workload().kernel.validate().unwrap();
    }

    /// Reduced generated specs always stay lowerable (reducer-safety of the
    /// Vref indirection): shrink a few generated kernels against an
    /// arbitrary structural predicate and validate every survivor.
    #[test]
    fn reduction_preserves_validity() {
        for i in 0..8 {
            let spec = gen_spec(0xBEEF, i);
            let (red, _) = reduce_with(&spec, |s| stmt_count(&s.body) >= 2);
            red.build_workload().kernel.validate().unwrap();
        }
    }

    #[test]
    fn repro_asm_reparses() {
        let spec = gen_spec(0x1234, 5);
        let text = repro_asm(&spec, &DiffFailure::Invalid("demo".into()));
        let k = simt_ir::asm::parse_kernel(&text).unwrap();
        assert_eq!(k.instrs, spec.build_kernel().instrs);
    }
}

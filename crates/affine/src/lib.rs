//! `affine` — affine-tuple algebra and the DAC decoupling compiler.
//!
//! This crate is the *compiler half* of the paper: it classifies every
//! operand of a kernel as scalar / affine / non-affine via reaching-definition
//! dataflow (paper §4.7), identifies the memory-address and predicate
//! computations eligible for decoupling — including after limited control
//! flow divergence (§4.6) — and splits the kernel into the affine and
//! non-affine instruction streams of Figure 7.
//!
//! It also defines the runtime representation of affine values
//! ([`AffineTuple`], [`AffineVal`]) used by the DAC hardware model in
//! `dac-core`: a base plus one offset per thread dimension, an optional
//! modulo extension (§4.4), and divergent tuple sets of up to four tuples
//! (§4.6). Tuple arithmetic is bit-exact with the SIMT data path —
//! decoupling is an optimization, never an approximation.

pub mod analysis;
pub mod class;
pub mod decouple;
pub mod tuple;
pub mod value;

pub use analysis::{AffineAnalysis, Candidate, CandidateKind, StaticMix};
pub use class::AffClass;
pub use decouple::{decouple, DecoupleStats, DecoupledKernel};
pub use tuple::{AffineTuple, ModExt};
pub use value::{AffineVal, PredVal};

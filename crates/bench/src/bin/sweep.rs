//! Run the benchmark × design matrix and emit machine-readable artifacts.
//!
//! The workhorse for bulk experiments: every (workload, design) pair
//! becomes one harness job, results stream into `results/cache/` (so a
//! second identical invocation simulates nothing) and one JSONL record per
//! job lands under `results/runs/`. The printed table and the artifact are
//! byte-identical for any `--jobs N` — results are aggregated by job
//! index, not completion order.

use dac_bench::cli::{CommonArgs, COMMON_USAGE};
use dac_bench::geomean;
use gpu_workloads::Design;
use simt_harness::{scenario_jobs, suite_jobs, DesignPoint};

const USAGE: &str = "\
usage: sweep [options]

Runs every selected benchmark under every selected design (default:
baseline, cae, mta, dac) and writes one JSONL record per simulation to
--out (default results/runs). Fully cached: rerunning an identical sweep
hits results/cache and simulates nothing.

With --set streams=NAME the sweep instead runs that multi-kernel stream
scenario under every selected design (concurrent kernel streams dispatched
by the command processor; --set cta_policy=greedy|rr picks the placement
policy) and prints chip-wide plus per-kernel cycle counts.";

fn usage_exit(error: &str) -> ! {
    if error == "help" {
        println!("{USAGE}\n\n{COMMON_USAGE}");
        std::process::exit(0);
    }
    // One line, not the usage dump: parse errors already name the valid
    // choices, and burying them under 40 lines of usage hides the message.
    eprintln!("sweep: {error} (run `sweep --help` for usage)");
    std::process::exit(2);
}

fn main() {
    simt_obs::log::init_from_env();
    let raw: Vec<String> = std::env::args().skip(1).collect();
    let args = CommonArgs::parse(&raw).unwrap_or_else(|e| usage_exit(&e));
    if let Some(stray) = args.positional.first() {
        usage_exit(&format!("unexpected argument {stray:?}"));
    }
    let points = args
        .designs
        .clone()
        .unwrap_or_else(|| DesignPoint::HW_ALL.to_vec());
    if let Some(name) = args.overrides.streams.clone() {
        scenario_sweep(&args, &name, &points);
        return;
    }
    let benches = args.benchmarks().unwrap_or_else(|e| usage_exit(&e));

    let harness = args.harness(Some("results/runs"));
    let jobs = suite_jobs(benches, args.scale, &points, &args.overrides);
    eprintln!(
        "sweep: {} jobs ({} benchmarks x {} designs) on {} workers",
        jobs.len(),
        jobs.len() / points.len(),
        points.len(),
        harness.workers()
    );
    let t0 = std::time::Instant::now();
    let out = harness.run(&jobs);
    let wall = t0.elapsed();

    // One row per benchmark, one column per design; speedups are relative
    // to the baseline column when it is part of the sweep.
    let base_col = points
        .iter()
        .position(|&p| p == DesignPoint::Hw(Design::Baseline));
    print!("{:<6} {:>12}", "bench", "design:cycles");
    println!();
    let mut dac_speedups = Vec::new();
    for (row, chunk) in out.results.chunks(points.len()).enumerate() {
        let mut line = format!("{:<6}", jobs[row * points.len()].bench());
        for (col, r) in chunk.iter().enumerate() {
            let mut cell = format!("{}={}", points[col].name(), r.report.cycles);
            if let Some(b) = base_col {
                if col != b {
                    let speedup = chunk[b].report.cycles as f64 / r.report.cycles as f64;
                    cell.push_str(&format!(" ({speedup:.2}x)"));
                    if points[col] == DesignPoint::Hw(Design::Dac) {
                        dac_speedups.push(speedup);
                    }
                }
            }
            line.push_str(&format!(" {cell:>24}"));
        }
        println!("{line}");
    }
    if !dac_speedups.is_empty() {
        println!(
            "GEOMEAN dac speedup over baseline: {:.3}x",
            geomean(dac_speedups)
        );
    }
    eprintln!(
        "sweep: {} simulated, {} from cache in {:.1}s",
        out.executed,
        out.cache_hits,
        wall.as_secs_f64()
    );
    if let Some(path) = &out.artifact_path {
        eprintln!("sweep: artifacts -> {}", path.display());
    }
    if let Some(dir) = &args.trace_dir {
        eprintln!("sweep: traces -> {}", dir.display());
    }
    if out.trace_drops > 0 {
        simt_obs::warn!("bench.sweep",
            "trace events dropped; exported timelines keep only the newest \
             events (raise --trace-events)";
            dropped = out.trace_drops,
            jobs = out.trace_dropped_jobs,
            capacity = args.trace_events);
    }
}

/// Run one multi-kernel stream scenario under every selected design and
/// print chip-wide plus per-kernel cycle counts.
fn scenario_sweep(args: &CommonArgs, name: &str, points: &[DesignPoint]) {
    let sc = gpu_workloads::scenario(name, args.scale).unwrap_or_else(|| {
        usage_exit(&format!(
            "unknown scenario {name:?} (expected one of: {})",
            gpu_workloads::ALL_SCENARIOS.join(", ")
        ))
    });
    let harness = args.harness(Some("results/runs"));
    let jobs = scenario_jobs(vec![sc], args.scale, points, &args.overrides);
    eprintln!(
        "sweep: scenario {name} ({} policy), {} designs on {} workers",
        jobs[0].policy().name(),
        points.len(),
        harness.workers()
    );
    let t0 = std::time::Instant::now();
    let out = harness.run(&jobs);
    let wall = t0.elapsed();

    let base_col = points
        .iter()
        .position(|&p| p == DesignPoint::Hw(Design::Baseline));
    for (col, (job, r)) in jobs.iter().zip(&out.results).enumerate() {
        let mut head = format!("{:<10} {:>10} cycles", job.label(), r.report.cycles);
        if let Some(b) = base_col {
            if col != b {
                head.push_str(&format!(
                    " ({:.2}x)",
                    out.results[b].report.cycles as f64 / r.report.cycles as f64
                ));
            }
        }
        println!("{head}");
        for k in &r.per_kernel {
            println!(
                "  s{}.{} {:<10} {:>10} cycles ({}..{}), {} ctas, {} instrs",
                k.stream,
                k.seq,
                k.label,
                k.stats.cycles,
                k.first_cycle,
                k.done_cycle,
                k.ctas,
                k.stats.total_instructions()
            );
        }
    }
    eprintln!(
        "sweep: {} simulated, {} from cache in {:.1}s",
        out.executed,
        out.cache_hits,
        wall.as_secs_f64()
    );
    if let Some(path) = &out.artifact_path {
        eprintln!("sweep: artifacts -> {}", path.display());
    }
}

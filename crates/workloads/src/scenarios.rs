//! Multi-kernel scenarios: hand-authored stream workloads for the command
//! processor (occupancy-limited CTA scheduling, concurrent kernel
//! streams).
//!
//! Unlike the 29 single-kernel benchmarks, a scenario describes **several
//! kernels sharing one GPU**: an ordered queue of launches per stream
//! (CUDA stream semantics — launch `i + 1` waits for launch `i`), with
//! distinct streams competing for SMs concurrently. Scenarios are
//! hand-authored rather than composed from arbitrary benchmarks because
//! all kernels of a run share one flat address space — every scenario
//! assigns each kernel a **disjoint address map**, and each kernel carries
//! its own output region so the cross-design correctness checks still
//! hold per kernel.
//!
//! The three stress patterns mirror the occupancy terms the command
//! processor arbitrates:
//!
//! * [`smem_pressure`] — a 20 KB-per-CTA shared-memory hog co-runs with a
//!   lean streaming kernel (shared-memory term);
//! * [`reg_pressure`] — a kernel declaring a fat register footprint via
//!   `.regs` co-runs with a lean one (register-file term);
//! * [`pipeline`] — a producer→consumer pair on one in-order stream plus
//!   an independent bystander stream (stream ordering + concurrency).

use crate::kernels::{init_u32, tid_elem_addr};
use simt_ir::{CmpOp, Kernel, KernelBuilder, LaunchConfig, Op, Operand, Space, SpecialReg, Width};
use simt_mem::SparseMemory;

/// One kernel launch inside a scenario.
#[derive(Clone)]
pub struct ScenarioKernel {
    /// Attribution label (unique within the scenario); flows into
    /// per-kernel stats, trace events, and artifacts.
    pub label: &'static str,
    /// The kernel.
    pub kernel: Kernel,
    /// Launch geometry and parameters.
    pub launch: LaunchConfig,
    /// Output region `(base, words)` compared across designs.
    pub output: (u64, usize),
}

impl ScenarioKernel {
    /// The program (validated kernel + launch).
    ///
    /// # Panics
    ///
    /// Panics if the kernel is malformed — scenario constructors are
    /// tested.
    pub fn program(&self) -> simt_ir::Program {
        simt_ir::Program::new(self.kernel.clone(), self.launch.clone())
            .expect("invalid scenario kernel")
    }
}

/// A multi-kernel workload: streams of kernels over one shared (but
/// disjointly partitioned) memory image.
#[derive(Clone)]
pub struct Scenario {
    /// Stable name (CLI `--set streams=<name>`, cache keys, artifacts).
    pub name: &'static str,
    /// One-line description for listings.
    pub description: &'static str,
    /// Streams in declaration order; kernels within a stream run in
    /// order, streams run concurrently.
    pub streams: Vec<Vec<ScenarioKernel>>,
    /// Combined initial memory image (disjoint regions per kernel).
    pub memory: SparseMemory,
}

impl Scenario {
    /// A fresh copy of the initial memory image.
    pub fn fresh_memory(&self) -> SparseMemory {
        self.memory.clone()
    }

    /// All kernels flattened stream-major (the launch-id order the
    /// simulator reports in).
    pub fn kernels(&self) -> Vec<&ScenarioKernel> {
        self.streams.iter().flatten().collect()
    }

    /// Concatenated output words of every kernel, stream-major — the
    /// scenario-wide correctness signature compared across designs.
    pub fn output_words(&self, memory: &SparseMemory) -> Vec<u32> {
        let mut out = Vec::new();
        for k in self.kernels() {
            out.extend(memory.read_u32_vec(k.output.0, k.output.1));
        }
        out
    }
}

/// Names of all scenarios, in registry order.
pub const ALL_SCENARIOS: [&str; 3] = ["smem_pressure", "reg_pressure", "pipeline"];

/// Look up a scenario by name (case-insensitive).
pub fn scenario(name: &str, scale: u32) -> Option<Scenario> {
    let n = name.to_ascii_lowercase();
    match n.as_str() {
        "smem_pressure" => Some(smem_pressure(scale)),
        "reg_pressure" => Some(reg_pressure(scale)),
        "pipeline" => Some(pipeline(scale)),
        _ => None,
    }
}

/// Build every scenario at `scale`.
pub fn all_scenarios(scale: u32) -> Vec<Scenario> {
    ALL_SCENARIOS
        .iter()
        .map(|n| scenario(n, scale).unwrap())
        .collect()
}

// Scenario address maps: 16 MiB-aligned regions well away from the
// single-benchmark bases, two per kernel (input, output).
const SC_A_IN: u64 = 0x1000_0000;
const SC_A_OUT: u64 = 0x1100_0000;
const SC_B_IN: u64 = 0x1200_0000;
const SC_B_OUT: u64 = 0x1300_0000;
const SC_C_IN: u64 = 0x1400_0000;
const SC_C_MID: u64 = 0x1500_0000;
const SC_C_OUT: u64 = 0x1600_0000;

/// `out[i] = 3*in[i] + 7` — one element per thread, pure affine
/// streaming. The lean co-runner of the pressure scenarios.
fn streaming_kernel(name: &'static str) -> Kernel {
    let mut b = KernelBuilder::new(name, 2);
    let (_tid, addr) = tid_elem_addr(&mut b, 0, 2);
    let v = b.ld(Space::Global, addr, 0, Width::W32);
    let r = b.alu3(Op::Mad, Operand::Reg(v), Operand::Imm(3), Operand::Imm(7));
    let tid2 = b.tid_linear_x();
    let off = b.alu2(Op::Shl, Operand::Reg(tid2), Operand::Imm(2));
    let out = b.alu2(Op::Add, Operand::Param(1), Operand::Reg(off));
    b.st(Space::Global, out, 0, Operand::Reg(r), Width::W32);
    b.exit();
    b.build()
}

/// Cooperative shared-memory staging with a fat per-CTA footprint:
/// each thread loads `words_per_thread` words into shared memory, then
/// after a barrier reads its neighbour's slot and stores a combination.
fn staging_kernel(name: &'static str, block: u32, words_per_thread: u32) -> Kernel {
    let total_words = block * words_per_thread;
    let mut b = KernelBuilder::new(name, 2);
    b.shared(total_words * 4);
    let tx = b.mov(Operand::Special(SpecialReg::TidX));
    let (_tid, gaddr) = tid_elem_addr(&mut b, 0, 2);
    let v = b.ld(Space::Global, gaddr, 0, Width::W32);
    // shared[tid.x * words_per_thread + j] = v + j for each slot.
    let sbase = b.alu2(
        Op::Mul,
        Operand::Reg(tx),
        Operand::Imm(words_per_thread as i64 * 4),
    );
    let j = b.mov(Operand::Imm(0));
    let saddr = b.mov(Operand::Reg(sbase));
    b.label("fill");
    let vj = b.alu2(Op::Add, Operand::Reg(v), Operand::Reg(j));
    b.st(Space::Shared, saddr, 0, Operand::Reg(vj), Width::W32);
    b.alu_into(saddr, Op::Add, &[Operand::Reg(saddr), Operand::Imm(4)]);
    b.alu_into(j, Op::Add, &[Operand::Reg(j), Operand::Imm(1)]);
    let p = b.setp(
        CmpOp::Lt,
        Operand::Reg(j),
        Operand::Imm(words_per_thread as i64),
    );
    b.bra_if(p, "fill");
    b.bar();
    // Read the next thread's first slot (wrapping within the block).
    let succ = b.alu2(Op::Add, Operand::Reg(tx), Operand::Imm(1));
    let wrapped = b.alu2(Op::Rem, Operand::Reg(succ), Operand::Imm(block as i64));
    let naddr = b.alu2(
        Op::Mul,
        Operand::Reg(wrapped),
        Operand::Imm(words_per_thread as i64 * 4),
    );
    let nv = b.ld(Space::Shared, naddr, 0, Width::W32);
    let mixed = b.alu2(Op::Add, Operand::Reg(nv), Operand::Reg(v));
    let tid2 = b.tid_linear_x();
    let off = b.alu2(Op::Shl, Operand::Reg(tid2), Operand::Imm(2));
    let out = b.alu2(Op::Add, Operand::Param(1), Operand::Reg(off));
    b.st(Space::Global, out, 0, Operand::Reg(mixed), Width::W32);
    b.exit();
    b.build()
}

/// An integer-mixing loop that *declares* a fat architectural register
/// footprint via `.regs` (modelling register pressure the synthetic body
/// does not literally spell out).
fn fat_reg_kernel(name: &'static str, regs_per_thread: u16, rounds: i64) -> Kernel {
    let mut b = KernelBuilder::new(name, 2);
    b.regs_per_thread(regs_per_thread);
    let (_tid, addr) = tid_elem_addr(&mut b, 0, 2);
    let v = b.ld(Space::Global, addr, 0, Width::W32);
    let h = b.mov(Operand::Reg(v));
    let r = b.mov(Operand::Imm(0));
    b.label("mix");
    let t1 = b.alu2(Op::Shl, Operand::Reg(h), Operand::Imm(3));
    let t2 = b.alu2(Op::Xor, Operand::Reg(t1), Operand::Reg(h));
    b.alu_into(
        h,
        Op::Mad,
        &[Operand::Reg(t2), Operand::Imm(17), Operand::Imm(29)],
    );
    b.alu_into(r, Op::Add, &[Operand::Reg(r), Operand::Imm(1)]);
    let p = b.setp(CmpOp::Lt, Operand::Reg(r), Operand::Imm(rounds));
    b.bra_if(p, "mix");
    let tid2 = b.tid_linear_x();
    let off = b.alu2(Op::Shl, Operand::Reg(tid2), Operand::Imm(2));
    let out = b.alu2(Op::Add, Operand::Param(1), Operand::Reg(off));
    b.st(Space::Global, out, 0, Operand::Reg(h), Width::W32);
    b.exit();
    b.build()
}

/// `mid[i] = in[i]*5 + 1` — the producer half of the pipeline.
fn producer_kernel(name: &'static str) -> Kernel {
    let mut b = KernelBuilder::new(name, 2);
    let (_tid, addr) = tid_elem_addr(&mut b, 0, 2);
    let v = b.ld(Space::Global, addr, 0, Width::W32);
    let r = b.alu3(Op::Mad, Operand::Reg(v), Operand::Imm(5), Operand::Imm(1));
    let tid2 = b.tid_linear_x();
    let off = b.alu2(Op::Shl, Operand::Reg(tid2), Operand::Imm(2));
    let out = b.alu2(Op::Add, Operand::Param(1), Operand::Reg(off));
    b.st(Space::Global, out, 0, Operand::Reg(r), Width::W32);
    b.exit();
    b.build()
}

/// `out[i] = mid[i] + mid[(i+1) mod n]` — the consumer reads what the
/// producer wrote (stream ordering is what makes this correct).
fn consumer_kernel(name: &'static str) -> Kernel {
    let mut b = KernelBuilder::new(name, 3);
    let tid = b.tid_linear_x();
    let off = b.alu2(Op::Shl, Operand::Reg(tid), Operand::Imm(2));
    let a0 = b.alu2(Op::Add, Operand::Param(0), Operand::Reg(off));
    let v0 = b.ld(Space::Global, a0, 0, Width::W32);
    let succ = b.alu2(Op::Add, Operand::Reg(tid), Operand::Imm(1));
    let wrapped = b.alu2(Op::Rem, Operand::Reg(succ), Operand::Param(2));
    let off1 = b.alu2(Op::Shl, Operand::Reg(wrapped), Operand::Imm(2));
    let a1 = b.alu2(Op::Add, Operand::Param(0), Operand::Reg(off1));
    let v1 = b.ld(Space::Global, a1, 0, Width::W32);
    let sum = b.alu2(Op::Add, Operand::Reg(v0), Operand::Reg(v1));
    let out = b.alu2(Op::Add, Operand::Param(1), Operand::Reg(off));
    b.st(Space::Global, out, 0, Operand::Reg(sum), Width::W32);
    b.exit();
    b.build()
}

/// Shared-memory pressure: a 20 KB-per-CTA staging kernel (2 CTAs/SM on
/// the GTX 480's 48 KB) co-runs with a lean streaming kernel on its own
/// stream. The command processor must partition SMs between them — the
/// staging kernel cannot fill an SM's warp slots, so giving it every SM
/// wastes throughput the lean kernel could use.
pub fn smem_pressure(scale: u32) -> Scenario {
    let block = 64u32;
    let words_per_thread = 80u32; // 64 × 80 × 4 B = 20 KB of shared per CTA
    let ctas_a = 12 * scale;
    let ctas_b = 24 * scale;
    let na = (ctas_a * block) as usize;
    let nb = (ctas_b * block) as usize;
    let mut memory = SparseMemory::new();
    init_u32(&mut memory, SC_A_IN, na, 301, u32::MAX);
    init_u32(&mut memory, SC_B_IN, nb, 302, u32::MAX);
    Scenario {
        name: "smem_pressure",
        description: "20 KB/CTA shared-memory hog + lean streaming kernel on 2 streams",
        streams: vec![
            vec![ScenarioKernel {
                label: "stage",
                kernel: staging_kernel("stage", block, words_per_thread),
                launch: LaunchConfig::linear(ctas_a, block, vec![SC_A_IN, SC_A_OUT]),
                output: (SC_A_OUT, na),
            }],
            vec![ScenarioKernel {
                label: "stream",
                kernel: streaming_kernel("stream"),
                launch: LaunchConfig::linear(ctas_b, block, vec![SC_B_IN, SC_B_OUT]),
                output: (SC_B_OUT, nb),
            }],
        ],
        memory,
    }
}

/// Register-file pressure: a kernel declaring 40 architectural registers
/// per thread (256-thread CTAs → 10 240 registers per CTA, 3 CTAs/SM on
/// the GTX 480's 32 K file) co-runs with a lean streaming kernel. Before
/// the register-file occupancy term existed, the fat kernel would
/// oversubscribe every SM it landed on.
pub fn reg_pressure(scale: u32) -> Scenario {
    let fat_block = 256u32;
    let lean_block = 128u32;
    let ctas_a = 8 * scale;
    let ctas_b = 16 * scale;
    let na = (ctas_a * fat_block) as usize;
    let nb = (ctas_b * lean_block) as usize;
    let mut memory = SparseMemory::new();
    init_u32(&mut memory, SC_A_IN, na, 311, u32::MAX);
    init_u32(&mut memory, SC_B_IN, nb, 312, u32::MAX);
    Scenario {
        name: "reg_pressure",
        description: "40-regs/thread kernel (3 CTAs/SM by regfile) + lean streaming kernel",
        streams: vec![
            vec![ScenarioKernel {
                label: "fat",
                kernel: fat_reg_kernel("fat", 40, 24),
                launch: LaunchConfig::linear(ctas_a, fat_block, vec![SC_A_IN, SC_A_OUT]),
                output: (SC_A_OUT, na),
            }],
            vec![ScenarioKernel {
                label: "lean",
                kernel: streaming_kernel("lean"),
                launch: LaunchConfig::linear(ctas_b, lean_block, vec![SC_B_IN, SC_B_OUT]),
                output: (SC_B_OUT, nb),
            }],
        ],
        memory,
    }
}

/// Stream ordering: stream 0 queues a producer followed by a consumer
/// that reads the producer's output (the consumer must not start until
/// every producer CTA retired); stream 1 runs an independent bystander
/// concurrently with both.
pub fn pipeline(scale: u32) -> Scenario {
    let block = 128u32;
    let ctas = 16 * scale;
    let n = (ctas * block) as usize;
    let ctas_b = 12 * scale;
    let nb = (ctas_b * block) as usize;
    let mut memory = SparseMemory::new();
    init_u32(&mut memory, SC_C_IN, n, 321, u32::MAX);
    init_u32(&mut memory, SC_B_IN, nb, 322, u32::MAX);
    Scenario {
        name: "pipeline",
        description: "producer -> consumer on one in-order stream + concurrent bystander",
        streams: vec![
            vec![
                ScenarioKernel {
                    label: "produce",
                    kernel: producer_kernel("produce"),
                    launch: LaunchConfig::linear(ctas, block, vec![SC_C_IN, SC_C_MID]),
                    output: (SC_C_MID, n),
                },
                ScenarioKernel {
                    label: "consume",
                    kernel: consumer_kernel("consume"),
                    launch: LaunchConfig::linear(ctas, block, vec![SC_C_MID, SC_C_OUT, n as u64]),
                    output: (SC_C_OUT, n),
                },
            ],
            vec![ScenarioKernel {
                label: "bystander",
                kernel: streaming_kernel("bystander"),
                launch: LaunchConfig::linear(ctas_b, block, vec![SC_B_IN, SC_B_OUT]),
                output: (SC_B_OUT, nb),
            }],
        ],
        memory,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn registry_is_complete_and_valid() {
        let all = all_scenarios(1);
        assert_eq!(all.len(), ALL_SCENARIOS.len());
        for sc in &all {
            assert!(sc.streams.len() >= 2, "{}: needs >= 2 streams", sc.name);
            let kernels = sc.kernels();
            assert!(kernels.len() >= 2, "{}: needs >= 2 kernels", sc.name);
            for k in &kernels {
                k.kernel
                    .validate()
                    .unwrap_or_else(|e| panic!("{}/{}: {e}", sc.name, k.label));
                assert_eq!(
                    k.launch.params.len(),
                    k.kernel.num_params as usize,
                    "{}/{}: param count",
                    sc.name,
                    k.label
                );
                assert!(k.output.1 > 0, "{}/{}: empty output", sc.name, k.label);
            }
            // Labels unique within a scenario (they key per-kernel stats).
            let mut labels: Vec<&str> = kernels.iter().map(|k| k.label).collect();
            labels.sort_unstable();
            labels.dedup();
            assert_eq!(labels.len(), kernels.len(), "{}: duplicate labels", sc.name);
        }
    }

    #[test]
    fn lookup_is_case_insensitive() {
        assert!(scenario("SMEM_PRESSURE", 1).is_some());
        assert!(scenario("pipeline", 1).is_some());
        assert!(scenario("nope", 1).is_none());
    }

    #[test]
    fn output_regions_are_disjoint() {
        for sc in all_scenarios(1) {
            let kernels = sc.kernels();
            for (i, a) in kernels.iter().enumerate() {
                for b in &kernels[i + 1..] {
                    let (a0, a1) = (a.output.0, a.output.0 + a.output.1 as u64 * 4);
                    let (b0, b1) = (b.output.0, b.output.0 + b.output.1 as u64 * 4);
                    assert!(
                        a1 <= b0 || b1 <= a0,
                        "{}: outputs of {} and {} overlap",
                        sc.name,
                        a.label,
                        b.label
                    );
                }
            }
        }
    }

    #[test]
    fn reg_pressure_declares_fat_registers() {
        let sc = reg_pressure(1);
        let fat = &sc.streams[0][0];
        assert_eq!(fat.kernel.regs_per_thread, 40);
        // 256 threads × 40 regs = 10 240 per CTA → 3 CTAs in a 32 K file.
        assert_eq!(32 * 1024 / (256 * 40), 3);
    }

    #[test]
    fn smem_pressure_declares_fat_shared() {
        let sc = smem_pressure(1);
        assert_eq!(sc.streams[0][0].kernel.shared_bytes, 20 * 1024);
    }
}

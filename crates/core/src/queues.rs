//! DAC's queues: the Affine Tuple Queue and the per-warp address and
//! predicate queues (paper Figure 9, Table 1).

use simt_ir::{QueueKind, Space, Width};
use simt_mem::FxHashMap;
use simt_sim::AddrRecord;
use std::collections::VecDeque;

/// The concrete expansion of one enqueue for one non-affine warp,
/// precomputed by the affine engine (the AEU/PEU charge the timing).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct WarpExpansion {
    /// SM warp slot the expansion is destined for.
    pub warp_global: usize,
    /// Per-lane addresses (Data/Addr kinds); `None` = inactive lane.
    pub addrs: Vec<Option<u64>>,
    /// Predicate bits (Pred kind).
    pub bits: u32,
    /// Lanes active at the enqueue (drives PEU cost classification).
    pub active: u32,
}

/// One Affine Tuple Queue entry: an enqueued tuple awaiting expansion.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct AtqEntry {
    /// CTA slot the tuple belongs to.
    pub slot: usize,
    /// Which queue family it expands into.
    pub kind: QueueKind,
    /// Access granularity (Data/Addr).
    pub width: Width,
    /// Memory space of the original access.
    pub space: Space,
    /// Per-warp expansions, in warp order.
    pub per_warp: Vec<WarpExpansion>,
    /// Expansion progress: next warp index to process.
    pub next: usize,
    /// Barrier epoch at enqueue (§4.2: the AEU only expands for CTAs that
    /// have passed the matching barrier).
    pub epoch: u32,
}

/// A produced address record waiting in a PWAQ, plus its readiness.
#[derive(Debug, Clone)]
pub struct RecordState {
    /// The record handed to the non-affine warp at dequeue.
    pub record: AddrRecord,
    /// Early line requests still in flight (Data kind).
    pub pending: usize,
}

impl RecordState {
    /// Data present (or no early request was needed)?
    pub fn ready(&self) -> bool {
        self.pending == 0
    }
}

/// All DAC queues of one SM.
#[derive(Debug)]
pub struct DacQueues {
    /// The shared Affine Tuple Queue.
    pub atq: VecDeque<AtqEntry>,
    /// Per-warp address queues (record ids).
    pub pwaq: Vec<VecDeque<u64>>,
    /// Per-warp predicate queues (bit vectors).
    pub pwpq: Vec<VecDeque<u32>>,
    /// Record store. Fx-hashed: lookups/inserts/removes only — the one
    /// place keys are enumerated collects them into a membership set, so
    /// iteration order never reaches a simulation result.
    pub records: FxHashMap<u64, RecordState>,
    atq_cap: usize,
    pwaq_cap: usize,
    pwpq_cap: usize,
    next_rec: u64,
}

impl DacQueues {
    /// Queues for an SM with `warps` warp slots.
    pub fn new(warps: usize, atq_cap: usize, pwaq_cap: usize, pwpq_cap: usize) -> Self {
        DacQueues {
            atq: VecDeque::new(),
            pwaq: vec![VecDeque::new(); warps],
            pwpq: vec![VecDeque::new(); warps],
            records: FxHashMap::default(),
            atq_cap,
            pwaq_cap,
            pwpq_cap,
            next_rec: 0,
        }
    }

    /// Grow the per-warp queues to cover at least `warps` warp slots.
    pub fn ensure_warps(&mut self, warps: usize) {
        if self.pwaq.len() < warps {
            self.pwaq.resize_with(warps, VecDeque::new);
            self.pwpq.resize_with(warps, VecDeque::new);
        }
    }

    /// Repartition the per-warp capacities (occupancy changed). Entries
    /// already queued beyond a shrunken cap stay and drain naturally.
    pub fn set_per_warp_caps(&mut self, pwaq: usize, pwpq: usize) {
        self.pwaq_cap = pwaq;
        self.pwpq_cap = pwpq;
    }

    /// Kind and readiness of the head record in `warp`'s PWAQ.
    pub fn pwaq_front_kind(&self, warp: usize) -> Option<(simt_sim::RecordKind, bool)> {
        let id = self.pwaq.get(warp)?.front()?;
        let r = self.records.get(id)?;
        Some((r.record.kind, r.ready()))
    }

    /// Is a predicate bit vector queued for `warp`?
    pub fn pred_available(&self, warp: usize) -> bool {
        self.pwpq.get(warp).map(|q| !q.is_empty()).unwrap_or(false)
    }

    /// Can the affine warp enqueue another tuple?
    pub fn atq_has_space(&self) -> bool {
        self.atq.len() < self.atq_cap
    }

    /// Push a tuple (checked by the enq scoreboard gate).
    ///
    /// # Panics
    ///
    /// Panics if the ATQ is full.
    pub fn push_atq(&mut self, e: AtqEntry) {
        assert!(self.atq_has_space(), "ATQ overflow");
        self.atq.push_back(e);
    }

    /// Room in `warp`'s address queue?
    pub fn pwaq_has_space(&self, warp: usize) -> bool {
        self.pwaq[warp].len() < self.pwaq_cap
    }

    /// Room in `warp`'s predicate queue?
    pub fn pwpq_has_space(&self, warp: usize) -> bool {
        self.pwpq[warp].len() < self.pwpq_cap
    }

    /// Store a new record and queue it for `warp`. Returns the record id.
    pub fn push_record(&mut self, warp: usize, record: AddrRecord, pending: usize) -> u64 {
        debug_assert!(self.pwaq_has_space(warp));
        let id = self.next_rec;
        self.next_rec += 1;
        self.records.insert(id, RecordState { record, pending });
        self.pwaq[warp].push_back(id);
        id
    }

    /// Is the head record of `warp`'s PWAQ present and ready?
    pub fn front_ready(&self, warp: usize) -> bool {
        match self.pwaq[warp].front() {
            Some(id) => self.records.get(id).map(|r| r.ready()).unwrap_or(false),
            None => false,
        }
    }

    /// Pop the head record for `warp`.
    pub fn pop_record(&mut self, warp: usize) -> Option<AddrRecord> {
        let id = self.pwaq[warp].pop_front()?;
        self.records.remove(&id).map(|r| r.record)
    }

    /// A fill response arrived for record `id`.
    pub fn record_response(&mut self, id: u64) {
        if let Some(r) = self.records.get_mut(&id) {
            r.pending = r.pending.saturating_sub(1);
        }
    }

    /// Push predicate bits for `warp`.
    pub fn push_pred(&mut self, warp: usize, bits: u32) {
        debug_assert!(self.pwpq_has_space(warp));
        self.pwpq[warp].push_back(bits);
    }

    /// Pop predicate bits for `warp`.
    pub fn pop_pred(&mut self, warp: usize) -> Option<u32> {
        self.pwpq[warp].pop_front()
    }

    /// Any queued work left anywhere?
    pub fn empty(&self) -> bool {
        self.atq.is_empty()
            && self.records.is_empty()
            && self.pwaq.iter().all(|q| q.is_empty())
            && self.pwpq.iter().all(|q| q.is_empty())
    }

    /// Drop queued state belonging to `warps` (defensive cleanup at CTA
    /// retire; matched streams leave nothing behind). Returns how many
    /// items were discarded.
    pub fn drop_warps(&mut self, slot: usize, warps: &[usize]) -> usize {
        let mut dropped = 0;
        let before = self.atq.len();
        self.atq.retain(|e| e.slot != slot);
        dropped += before - self.atq.len();
        for &w in warps {
            dropped += self.pwaq[w].len() + self.pwpq[w].len();
            for id in self.pwaq[w].drain(..) {
                self.records.remove(&id);
            }
            self.pwpq[w].clear();
        }
        dropped
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use simt_sim::RecordKind;

    fn rec() -> AddrRecord {
        AddrRecord {
            kind: RecordKind::Data,
            thread_addrs: vec![Some(0); 32],
            lines: vec![0],
            space: Space::Global,
            width: Width::W32,
        }
    }

    fn queues() -> DacQueues {
        DacQueues::new(4, 2, 2, 2)
    }

    #[test]
    fn atq_capacity() {
        let mut q = queues();
        assert!(q.atq_has_space());
        for _ in 0..2 {
            q.push_atq(AtqEntry {
                slot: 0,
                kind: simt_ir::QueueKind::Data,
                width: Width::W32,
                space: Space::Global,
                per_warp: vec![],
                next: 0,
                epoch: 0,
            });
        }
        assert!(!q.atq_has_space());
    }

    #[test]
    fn record_lifecycle() {
        let mut q = queues();
        let id = q.push_record(1, rec(), 2);
        assert!(!q.front_ready(1));
        q.record_response(id);
        assert!(!q.front_ready(1));
        q.record_response(id);
        assert!(q.front_ready(1));
        let r = q.pop_record(1).unwrap();
        assert_eq!(r.kind, RecordKind::Data);
        assert!(q.pop_record(1).is_none());
        assert!(q.empty());
    }

    #[test]
    fn per_warp_isolation() {
        let mut q = queues();
        q.push_record(0, rec(), 0);
        assert!(q.front_ready(0));
        assert!(!q.front_ready(1));
        assert!(q.pwaq_has_space(1));
    }

    #[test]
    fn pred_queue_fifo() {
        let mut q = queues();
        q.push_pred(2, 0xF);
        q.push_pred(2, 0x3);
        assert_eq!(q.pop_pred(2), Some(0xF));
        assert_eq!(q.pop_pred(2), Some(0x3));
        assert_eq!(q.pop_pred(2), None);
    }

    #[test]
    fn drop_warps_cleans_up() {
        let mut q = queues();
        q.push_atq(AtqEntry {
            slot: 3,
            kind: simt_ir::QueueKind::Data,
            width: Width::W32,
            space: Space::Global,
            per_warp: vec![],
            next: 0,
            epoch: 0,
        });
        q.push_record(0, rec(), 1);
        q.push_pred(0, 1);
        let dropped = q.drop_warps(3, &[0]);
        assert_eq!(dropped, 3);
        assert!(q.empty());
    }
}

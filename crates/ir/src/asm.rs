//! A textual assembler for the IR, in the style of the paper's
//! pseudo-assembly (Figure 4b).
//!
//! # Syntax
//!
//! ```text
//! .kernel example
//! .params 4
//! .shared 1024
//!     mul r0, %ctaid.x, %ntid.x;
//!     add r1, r0, %tid.x;      // linear thread id
//!     shl r2, r1, 2;
//!     add r3, %p0, r2;         // %pN = kernel parameter N
//! LOOP:
//!     ld.global r4, [r3];
//!     st.global [r3+4], r4;
//!     setp.lt p0, r1, %p1;     // pN = predicate register N
//!     @p0 bra LOOP;
//!     exit;
//! ```
//!
//! Registers are `rN`, predicates `pN`, parameters `%pN`, special registers
//! `%tid.x`, `%ctaid.x`, `%ntid.x`, `%nctaid.x` (plus `.y`/`.z`). Memory
//! widths default to `.b32` and may be overridden (`ld.global.b8`). The
//! decoupled-stream forms `deq.data`, `deq.addr`, `@deq.pred`, and the
//! `enq.*` opcodes are accepted so compiler output can be round-tripped.

use crate::instr::{AddrMode, AtomOp, CmpOp, Guard, Instr, Op, PredSrc, QueueKind};
use crate::kernel::Kernel;
use crate::types::{Operand, Space, SpecialReg, Width};
use std::collections::HashMap;
use std::fmt;

/// An assembler diagnostic with the 1-based source line.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ParseAsmError {
    /// 1-based line number of the offending line.
    pub line: usize,
    /// Human-readable description.
    pub msg: String,
}

impl fmt::Display for ParseAsmError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "line {}: {}", self.line, self.msg)
    }
}

impl std::error::Error for ParseAsmError {}

/// Parse a full kernel from assembly text.
///
/// # Errors
///
/// Returns a [`ParseAsmError`] pointing at the first malformed line, or at
/// the end of input for undefined labels.
pub fn parse_kernel(text: &str) -> Result<Kernel, ParseAsmError> {
    let mut name = String::from("kernel");
    let mut num_params = 0u16;
    let mut shared_bytes = 0u32;
    let mut regs_per_thread = 0u16;
    let mut instrs: Vec<Instr> = Vec::new();
    let mut labels: HashMap<String, usize> = HashMap::new();
    let mut fixups: Vec<(usize, String, usize)> = Vec::new(); // (pc, label, line)
    let mut max_reg = 0u16;
    let mut max_pred = 0u16;

    for (ln0, raw) in text.lines().enumerate() {
        let line = ln0 + 1;
        let mut s = raw;
        if let Some(i) = s.find("//") {
            s = &s[..i];
        }
        if let Some(i) = s.find('#') {
            s = &s[..i];
        }
        let s = s.trim().trim_end_matches(';').trim();
        if s.is_empty() {
            continue;
        }

        // Directives.
        if let Some(rest) = s.strip_prefix(".kernel") {
            name = rest.trim().to_string();
            continue;
        }
        if let Some(rest) = s.strip_prefix(".params") {
            num_params = rest.trim().parse().map_err(|_| err(line, "bad .params"))?;
            continue;
        }
        if let Some(rest) = s.strip_prefix(".shared") {
            shared_bytes = rest.trim().parse().map_err(|_| err(line, "bad .shared"))?;
            continue;
        }
        if let Some(rest) = s.strip_prefix(".regs") {
            regs_per_thread = rest.trim().parse().map_err(|_| err(line, "bad .regs"))?;
            continue;
        }

        // Label (possibly followed by an instruction on the same line).
        let mut s = s;
        while let Some(colon) = s.find(':') {
            let (lbl, rest) = s.split_at(colon);
            let lbl = lbl.trim();
            if lbl.contains(char::is_whitespace) || lbl.contains('.') || lbl.contains(',') {
                break; // not a label, e.g. inside an operand
            }
            labels.insert(lbl.to_string(), instrs.len());
            s = rest[1..].trim();
            if s.is_empty() {
                break;
            }
        }
        if s.is_empty() {
            continue;
        }

        let instr = parse_instr(s, line, &mut fixups, instrs.len())?;
        track_regs(&instr, &mut max_reg, &mut max_pred);
        instrs.push(instr);
    }

    for (pc, label, line) in fixups {
        let target = *labels
            .get(&label)
            .ok_or_else(|| err(line, &format!("undefined label {label}")))?;
        if let Instr::Bra { target: t, .. } = &mut instrs[pc] {
            *t = target;
        }
    }

    Ok(Kernel {
        name,
        instrs,
        num_regs: max_reg,
        num_preds: max_pred,
        num_params,
        shared_bytes,
        regs_per_thread: regs_per_thread.max(max_reg),
    })
}

fn err(line: usize, msg: &str) -> ParseAsmError {
    ParseAsmError {
        line,
        msg: msg.to_string(),
    }
}

fn track_regs(i: &Instr, max_reg: &mut u16, max_pred: &mut u16) {
    let bump_r = |r: u16, m: &mut u16| *m = (*m).max(r + 1);
    if let Some(d) = i.def_reg() {
        bump_r(d, max_reg);
    }
    for r in i.src_regs() {
        bump_r(r, max_reg);
    }
    if let Some(p) = i.def_pred() {
        bump_r(p, max_pred);
    }
    for p in i.src_preds() {
        bump_r(p, max_pred);
    }
}

fn parse_instr(
    s: &str,
    line: usize,
    fixups: &mut Vec<(usize, String, usize)>,
    pc: usize,
) -> Result<Instr, ParseAsmError> {
    // Guard prefix.
    let (guard, pred_src_deq, s) = if let Some(rest) = s.strip_prefix("@deq.pred") {
        (None, Some(false), rest.trim())
    } else if let Some(rest) = s.strip_prefix("@!deq.pred") {
        (None, Some(true), rest.trim())
    } else if let Some(rest) = s.strip_prefix("@!") {
        let (p, rest) = take_pred(rest, line)?;
        (Some(Guard::neg(p)), None, rest.trim())
    } else if let Some(rest) = s.strip_prefix('@') {
        let (p, rest) = take_pred(rest, line)?;
        (Some(Guard::pos(p)), None, rest.trim())
    } else {
        (None, None, s)
    };

    let (mnemonic, rest) = match s.find(char::is_whitespace) {
        Some(i) => (&s[..i], s[i..].trim()),
        None => (s, ""),
    };
    let parts: Vec<&str> = mnemonic.split('.').collect();
    let ops: Vec<String> = split_operands(rest);

    let get = |i: usize| -> Result<&str, ParseAsmError> {
        ops.get(i)
            .map(|s| s.as_str())
            .ok_or_else(|| err(line, &format!("{mnemonic}: missing operand {i}")))
    };

    match parts[0] {
        "bra" => {
            let label = get(0)?.to_string();
            let pred = match (guard, pred_src_deq) {
                (Some(g), None) => Some(PredSrc::Reg(g)),
                (None, Some(negate)) => Some(PredSrc::Deq { negate }),
                (None, None) => None,
                _ => return Err(err(line, "bra: conflicting predicates")),
            };
            fixups.push((pc, label, line));
            Ok(Instr::Bra {
                target: usize::MAX,
                pred,
            })
        }
        "bar" => Ok(Instr::Bar),
        "exit" => Ok(Instr::Exit),
        "setp" => {
            let cmp = parse_cmp(parts.get(1).copied().unwrap_or(""), line)?;
            let float = parts.get(2) == Some(&"f32");
            let dst = parse_pred_name(get(0)?, line)?;
            let a = parse_operand(get(1)?, line)?;
            let b = parse_operand(get(2)?, line)?;
            Ok(Instr::SetP {
                dst,
                cmp,
                a,
                b,
                float,
                guard,
            })
        }
        "sel" => {
            let dst = parse_reg_name(get(0)?, line)?;
            let a = parse_operand(get(1)?, line)?;
            let b = parse_operand(get(2)?, line)?;
            let ps = get(3)?;
            let (negate, ps) = match ps.strip_prefix('!') {
                Some(rest) => (true, rest),
                None => (false, ps),
            };
            let p = parse_pred_name(ps, line)?;
            Ok(Instr::Sel {
                dst,
                pred: if negate { Guard::neg(p) } else { Guard::pos(p) },
                a,
                b,
            })
        }
        "ld" => {
            let space = parse_space(parts.get(1).copied().unwrap_or(""), line)?;
            let width = parse_width(parts.get(2).copied(), line)?;
            let dst = parse_reg_name(get(0)?, line)?;
            let addr = parse_addr(get(1)?, line)?;
            Ok(Instr::Ld {
                dst,
                space,
                addr,
                width,
                guard,
            })
        }
        "st" => {
            let space = parse_space(parts.get(1).copied().unwrap_or(""), line)?;
            let width = parse_width(parts.get(2).copied(), line)?;
            let addr = parse_addr(get(0)?, line)?;
            let src = parse_operand(get(1)?, line)?;
            Ok(Instr::St {
                space,
                addr,
                src,
                width,
                guard,
            })
        }
        "atom" => {
            let op = match parts.get(1).copied().unwrap_or("") {
                "add" => AtomOp::Add,
                "min" => AtomOp::Min,
                "max" => AtomOp::Max,
                "exch" => AtomOp::Exch,
                o => return Err(err(line, &format!("unknown atomic op {o}"))),
            };
            let dst = parse_reg_name(get(0)?, line)?;
            let addr = parse_addr(get(1)?, line)?;
            let src = parse_operand(get(2)?, line)?;
            Ok(Instr::Atom {
                op,
                dst,
                addr,
                src,
                guard,
            })
        }
        "enq" => {
            let kind = match parts.get(1).copied().unwrap_or("") {
                "data" => QueueKind::Data,
                "addr" => QueueKind::Addr,
                "pred" => QueueKind::Pred,
                k => return Err(err(line, &format!("unknown queue {k}"))),
            };
            if kind == QueueKind::Pred {
                let p = parse_pred_name(get(0)?, line)?;
                Ok(Instr::Enq {
                    kind,
                    src: None,
                    pred: Some(p),
                    width: Width::W32,
                    space: Space::Global,
                    guard,
                })
            } else {
                // Optional `.local` then optional `.bNN`.
                let mut idx = 2;
                let space = if parts.get(idx) == Some(&"local") {
                    idx += 1;
                    Space::Local
                } else {
                    Space::Global
                };
                let width = parse_width(parts.get(idx).copied(), line)?;
                let r = parse_reg_name(get(0)?, line)?;
                Ok(Instr::Enq {
                    kind,
                    src: Some(r),
                    pred: None,
                    width,
                    space,
                    guard,
                })
            }
        }
        _ => {
            let op = parse_alu_op(mnemonic)
                .ok_or_else(|| err(line, &format!("unknown instruction {mnemonic}")))?;
            let dst = parse_reg_name(get(0)?, line)?;
            let mut srcs = [Operand::Imm(0); 3];
            for (i, slot) in srcs.iter_mut().enumerate().take(op.arity()) {
                *slot = parse_operand(get(i + 1)?, line)?;
            }
            Ok(Instr::Alu {
                op,
                dst,
                srcs,
                guard,
            })
        }
    }
}

fn split_operands(s: &str) -> Vec<String> {
    // Split on commas not inside brackets.
    let mut out = Vec::new();
    let mut depth = 0;
    let mut cur = String::new();
    for c in s.chars() {
        match c {
            '[' => {
                depth += 1;
                cur.push(c);
            }
            ']' => {
                depth -= 1;
                cur.push(c);
            }
            ',' if depth == 0 => {
                out.push(cur.trim().to_string());
                cur.clear();
            }
            _ => cur.push(c),
        }
    }
    if !cur.trim().is_empty() {
        out.push(cur.trim().to_string());
    }
    out
}

fn take_pred(s: &str, line: usize) -> Result<(u16, &str), ParseAsmError> {
    let end = s
        .find(char::is_whitespace)
        .ok_or_else(|| err(line, "guard with no instruction"))?;
    let p = parse_pred_name(&s[..end], line)?;
    Ok((p, &s[end..]))
}

fn parse_reg_name(s: &str, line: usize) -> Result<u16, ParseAsmError> {
    s.strip_prefix('r')
        .and_then(|n| n.parse().ok())
        .ok_or_else(|| err(line, &format!("expected register, got {s}")))
}

fn parse_pred_name(s: &str, line: usize) -> Result<u16, ParseAsmError> {
    s.strip_prefix('p')
        .and_then(|n| n.parse().ok())
        .ok_or_else(|| err(line, &format!("expected predicate, got {s}")))
}

fn parse_operand(s: &str, line: usize) -> Result<Operand, ParseAsmError> {
    if let Some(rest) = s.strip_prefix("%p") {
        let p = rest
            .parse()
            .map_err(|_| err(line, &format!("bad param {s}")))?;
        return Ok(Operand::Param(p));
    }
    if let Some(rest) = s.strip_prefix('%') {
        let sr = match rest {
            "tid.x" => SpecialReg::TidX,
            "tid.y" => SpecialReg::TidY,
            "tid.z" => SpecialReg::TidZ,
            "ctaid.x" => SpecialReg::CtaIdX,
            "ctaid.y" => SpecialReg::CtaIdY,
            "ctaid.z" => SpecialReg::CtaIdZ,
            "ntid.x" => SpecialReg::NTidX,
            "ntid.y" => SpecialReg::NTidY,
            "ntid.z" => SpecialReg::NTidZ,
            "nctaid.x" => SpecialReg::NCtaIdX,
            "nctaid.y" => SpecialReg::NCtaIdY,
            "nctaid.z" => SpecialReg::NCtaIdZ,
            _ => return Err(err(line, &format!("unknown special {s}"))),
        };
        return Ok(Operand::Special(sr));
    }
    if s.starts_with('r') && s[1..].chars().all(|c| c.is_ascii_digit()) && s.len() > 1 {
        return Ok(Operand::Reg(parse_reg_name(s, line)?));
    }
    if let Some(hex) = s.strip_prefix("0x") {
        return i64::from_str_radix(hex, 16)
            .map(Operand::Imm)
            .map_err(|_| err(line, &format!("bad immediate {s}")));
    }
    if let Ok(f) = s.parse::<i64>() {
        return Ok(Operand::Imm(f));
    }
    if let Some(fl) = s.strip_suffix('f') {
        if let Ok(v) = fl.parse::<f32>() {
            return Ok(Operand::Imm(v.to_bits() as i64));
        }
    }
    Err(err(line, &format!("cannot parse operand {s}")))
}

fn parse_addr(s: &str, line: usize) -> Result<AddrMode, ParseAsmError> {
    if s == "deq.data" || s == "[deq.data]" {
        return Ok(AddrMode::DeqData);
    }
    if s == "deq.addr" || s == "[deq.addr]" {
        return Ok(AddrMode::DeqAddr);
    }
    let inner = s
        .strip_prefix('[')
        .and_then(|x| x.strip_suffix(']'))
        .ok_or_else(|| err(line, &format!("expected [addr], got {s}")))?;
    let (reg_s, disp) = if let Some(i) = inner.find('+') {
        (
            &inner[..i],
            inner[i + 1..]
                .trim()
                .parse::<i64>()
                .map_err(|_| err(line, "bad displacement"))?,
        )
    } else if let Some(i) = inner.rfind('-') {
        if i == 0 {
            return Err(err(line, "bad address"));
        }
        (
            &inner[..i],
            -inner[i + 1..]
                .trim()
                .parse::<i64>()
                .map_err(|_| err(line, "bad displacement"))?,
        )
    } else {
        (inner, 0)
    };
    Ok(AddrMode::Reg(parse_reg_name(reg_s.trim(), line)?, disp))
}

fn parse_cmp(s: &str, line: usize) -> Result<CmpOp, ParseAsmError> {
    match s {
        "eq" => Ok(CmpOp::Eq),
        "ne" => Ok(CmpOp::Ne),
        "lt" => Ok(CmpOp::Lt),
        "le" => Ok(CmpOp::Le),
        "gt" => Ok(CmpOp::Gt),
        "ge" => Ok(CmpOp::Ge),
        _ => Err(err(line, &format!("unknown comparison {s}"))),
    }
}

fn parse_space(s: &str, line: usize) -> Result<Space, ParseAsmError> {
    match s {
        "global" => Ok(Space::Global),
        "shared" => Ok(Space::Shared),
        "local" => Ok(Space::Local),
        _ => Err(err(line, &format!("unknown space {s}"))),
    }
}

fn parse_width(s: Option<&str>, line: usize) -> Result<Width, ParseAsmError> {
    match s {
        None => Ok(Width::W32),
        Some("b8") => Ok(Width::W8),
        Some("b16") => Ok(Width::W16),
        Some("b32") => Ok(Width::W32),
        Some("b64") => Ok(Width::W64),
        Some(w) => Err(err(line, &format!("unknown width {w}"))),
    }
}

fn parse_alu_op(m: &str) -> Option<Op> {
    Some(match m {
        "add" => Op::Add,
        "sub" => Op::Sub,
        "mul" => Op::Mul,
        "mad" => Op::Mad,
        "div" => Op::Div,
        "rem" | "mod" => Op::Rem,
        "min" => Op::Min,
        "max" => Op::Max,
        "abs" => Op::Abs,
        "neg" => Op::Neg,
        "and" => Op::And,
        "or" => Op::Or,
        "xor" => Op::Xor,
        "not" => Op::Not,
        "shl" => Op::Shl,
        "shr" => Op::Shr,
        "sar" => Op::Sar,
        "mov" => Op::Mov,
        "add.f32" => Op::FAdd,
        "sub.f32" => Op::FSub,
        "mul.f32" => Op::FMul,
        "mad.f32" => Op::FMad,
        "div.f32" => Op::FDiv,
        "min.f32" => Op::FMin,
        "max.f32" => Op::FMax,
        "abs.f32" => Op::FAbs,
        "neg.f32" => Op::FNeg,
        "sqrt.f32" => Op::FSqrt,
        "rcp.f32" => Op::FRcp,
        "ex2.f32" => Op::FExp2,
        "lg2.f32" => Op::FLog2,
        "sin.f32" => Op::FSin,
        "cos.f32" => Op::FCos,
        "cvt.f32.s64" => Op::I2F,
        "cvt.s64.f32" => Op::F2I,
        _ => return None,
    })
}

#[cfg(test)]
mod tests {
    use super::*;

    const EXAMPLE: &str = r#"
.kernel example
.params 4
    mul r0, %ctaid.x, %ntid.x;
    add r1, r0, %tid.x;       // tid
    shl r2, r1, 2;
    add r3, %p0, r2;          // addrA
    add r4, %p1, r2;          // addrB
    mov r5, 0;                // i
LOOP:
    ld.global r6, [r3];
    add r7, r6, 1;
    st.global [r4], r7;
    add r5, r5, 1;
    mul r8, %p3, 4;
    add r3, r8, r3;
    add r4, r8, r4;
    setp.ne p0, %p2, r5;
    @p0 bra LOOP;
    exit;
"#;

    #[test]
    fn parses_paper_example() {
        let k = parse_kernel(EXAMPLE).unwrap();
        assert_eq!(k.name, "example");
        assert_eq!(k.num_params, 4);
        assert_eq!(k.instrs.len(), 16);
        k.validate().unwrap();
        // The loop branch targets the ld at pc 6.
        match k.instrs[14] {
            Instr::Bra {
                target,
                pred: Some(PredSrc::Reg(g)),
            } => {
                assert_eq!(target, 6);
                assert!(!g.negate);
            }
            ref i => panic!("unexpected {i:?}"),
        }
    }

    #[test]
    fn parses_widths_and_spaces() {
        let k =
            parse_kernel(".kernel w\n ld.shared.b8 r0, [r1+4];\n st.local.b16 [r2-2], r0;\n exit;")
                .unwrap();
        match &k.instrs[0] {
            Instr::Ld {
                space, addr, width, ..
            } => {
                assert_eq!(*space, Space::Shared);
                assert_eq!(*addr, AddrMode::Reg(1, 4));
                assert_eq!(*width, Width::W8);
            }
            i => panic!("unexpected {i}"),
        }
        match &k.instrs[1] {
            Instr::St {
                space, addr, width, ..
            } => {
                assert_eq!(*space, Space::Local);
                assert_eq!(*addr, AddrMode::Reg(2, -2));
                assert_eq!(*width, Width::W16);
            }
            i => panic!("unexpected {i}"),
        }
    }

    #[test]
    fn parses_decoupled_forms() {
        let k = parse_kernel(
            ".kernel d\nL:\n ld.global r0, deq.data;\n add r1, r0, 1;\n st.global [deq.addr], r1;\n @deq.pred bra L;\n exit;",
        )
        .unwrap();
        assert!(matches!(
            k.instrs[0],
            Instr::Ld {
                addr: AddrMode::DeqData,
                ..
            }
        ));
        assert!(matches!(
            k.instrs[2],
            Instr::St {
                addr: AddrMode::DeqAddr,
                ..
            }
        ));
        assert!(matches!(
            k.instrs[3],
            Instr::Bra {
                pred: Some(PredSrc::Deq { negate: false }),
                ..
            }
        ));
    }

    #[test]
    fn parses_enq_forms() {
        let k =
            parse_kernel(".kernel a\n enq.data r3;\n enq.addr r4;\n enq.pred p0;\n exit;").unwrap();
        assert!(matches!(
            k.instrs[0],
            Instr::Enq {
                kind: QueueKind::Data,
                src: Some(3),
                ..
            }
        ));
        assert!(matches!(
            k.instrs[2],
            Instr::Enq {
                kind: QueueKind::Pred,
                pred: Some(0),
                ..
            }
        ));
    }

    #[test]
    fn undefined_label_reports_line() {
        let e = parse_kernel(".kernel x\n bra NOWHERE;\n exit;").unwrap_err();
        assert!(e.msg.contains("NOWHERE"));
        assert_eq!(e.line, 2);
    }

    #[test]
    fn float_immediates() {
        let k = parse_kernel(".kernel f\n mov r0, 1.5f;\n exit;").unwrap();
        match k.instrs[0] {
            Instr::Alu { srcs, .. } => {
                assert_eq!(srcs[0], Operand::Imm(1.5f32.to_bits() as i64));
            }
            ref i => panic!("unexpected {i:?}"),
        }
    }

    #[test]
    fn guards_parse() {
        let k = parse_kernel(".kernel g\n @!p1 add r0, r0, 1;\n exit;").unwrap();
        match k.instrs[0] {
            Instr::Alu { guard: Some(g), .. } => {
                assert_eq!(g.pred, 1);
                assert!(g.negate);
            }
            ref i => panic!("unexpected {i:?}"),
        }
    }
}

//! `dac-bench` — the evaluation front end: turns benchmarks into
//! [`simt_harness`] jobs, runs them (in parallel, cached), and derives each
//! table and figure of the paper from the results (see EXPERIMENTS.md for
//! the index).

pub mod cli;

use affine::AffineAnalysis;
use gpu_energy::{energy_of, EnergyBreakdown, EnergyModel};
use gpu_workloads::{Design, Workload};
use simt_harness::{DesignPoint, Harness, Job, JobResult, Overrides};
use simt_sim::SimReport;
use std::sync::Arc;

/// Perfect-memory speedup at or above which a benchmark counts as
/// memory-intensive (§5.1.2).
pub const MEMORY_INTENSIVE_THRESHOLD: f64 = 1.5;

/// Everything measured for one benchmark: the four hardware designs plus
/// the perfect-memory classification run.
pub struct FullRow {
    /// Benchmark abbreviation.
    pub abbr: &'static str,
    /// Full name.
    pub name: &'static str,
    /// Suite tag (Table 2).
    pub suite: char,
    /// Measured: memory-intensive under the perfect-memory test (§5.1.2).
    pub memory_intensive: bool,
    /// Perfect-memory speedup used for the classification.
    pub perfect_speedup: f64,
    /// Static instruction mix (Figure 6).
    pub mix: affine::StaticMix,
    /// Results per hardware design, in [`Design::ALL`] order.
    pub results: Vec<JobResult>,
}

impl FullRow {
    /// The report for design `d`.
    pub fn report(&self, d: Design) -> &SimReport {
        let idx = Design::ALL.iter().position(|&x| x == d).unwrap();
        &self.results[idx].report
    }

    /// Speedup of `d` over the baseline.
    pub fn speedup(&self, d: Design) -> f64 {
        self.report(Design::Baseline).cycles as f64 / self.report(d).cycles as f64
    }

    /// DAC's warp-instruction count normalized to baseline, split into
    /// (non-affine, affine) components (Figure 17).
    pub fn instr_ratio(&self) -> (f64, f64) {
        let base = self.report(Design::Baseline).stats.warp_instructions as f64;
        let dac = &self.report(Design::Dac).stats;
        (
            dac.warp_instructions as f64 / base,
            dac.affine_instructions as f64 / base,
        )
    }

    /// DAC's dynamic affine coverage: the fraction of baseline warp
    /// instructions eliminated by decoupling (Figure 18).
    pub fn dac_coverage(&self) -> f64 {
        let base = self.report(Design::Baseline).stats.warp_instructions as f64;
        let dac = self.report(Design::Dac).stats.warp_instructions as f64;
        ((base - dac) / base).max(0.0)
    }

    /// CAE's dynamic affine coverage: instructions executed on the affine
    /// units as a fraction of all warp instructions (Figure 18).
    pub fn cae_coverage(&self) -> f64 {
        let s = &self.report(Design::Cae).stats;
        if s.warp_instructions == 0 {
            0.0
        } else {
            s.cae_affine_instructions as f64 / s.warp_instructions as f64
        }
    }

    /// Fraction of global/local loads issued by the affine warp (Fig. 19).
    pub fn decoupled_load_fraction(&self) -> f64 {
        self.report(Design::Dac).stats.decoupled_load_fraction()
    }

    /// MTA prefetcher coverage: demand accesses served by the prefetch
    /// buffer or merged with an in-flight prefetch, over all demand
    /// traffic that would otherwise have gone below L1 (Figure 20).
    pub fn mta_coverage(&self) -> f64 {
        let m = &self.report(Design::Mta).mem;
        let covered = (m.pbuf_hits + m.prefetch_merged) as f64;
        let denom = covered + m.l1_misses as f64;
        if denom == 0.0 {
            0.0
        } else {
            covered / denom
        }
    }

    /// Energy of `d` relative to baseline (Figure 21).
    pub fn energy(&self, d: Design, model: &EnergyModel) -> EnergyBreakdown {
        energy_of(self.report(d), model)
    }

    /// Normalized total energy of DAC vs baseline.
    pub fn dac_energy_ratio(&self, model: &EnergyModel) -> f64 {
        self.energy(Design::Dac, model)
            .normalized_to(&self.energy(Design::Baseline, model))
    }
}

/// The five design points behind a [`FullRow`]: the four hardware designs
/// plus the perfect-memory classification machine.
pub const ROW_POINTS: [DesignPoint; 5] = [
    DesignPoint::Hw(Design::Baseline),
    DesignPoint::Hw(Design::Cae),
    DesignPoint::Hw(Design::Mta),
    DesignPoint::Hw(Design::Dac),
    DesignPoint::PerfectMem,
];

/// Evaluate every workload under all four designs plus perfect memory on
/// `harness`, verifying that every hardware design produces bit-identical
/// outputs. The whole `workloads × designs` matrix is submitted as one
/// batch, so parallelism spans benchmarks as well as designs.
///
/// # Panics
///
/// Panics if any design changes a program's output (a correctness bug).
pub fn evaluate_all(
    harness: &Harness,
    workloads: Vec<Workload>,
    scale: u32,
    overrides: &Overrides,
) -> Vec<FullRow> {
    let jobs = simt_harness::suite_jobs(workloads, scale, &ROW_POINTS, overrides);
    let out = harness.run(&jobs);
    jobs.chunks(ROW_POINTS.len())
        .zip(out.results.chunks(ROW_POINTS.len()))
        .map(|(jobs, results)| {
            let w = jobs[0].workload().expect("suite_jobs builds bench jobs");
            assemble_row(w, jobs, results)
        })
        .collect()
}

fn assemble_row(w: &Arc<Workload>, jobs: &[Job], results: &[JobResult]) -> FullRow {
    let analysis = AffineAnalysis::run(&w.kernel);
    let mix = analysis.static_mix(&w.kernel);
    let golden = results[0].output_digest;
    for (job, r) in jobs.iter().zip(results) {
        if matches!(job.point, DesignPoint::Hw(_)) {
            assert_eq!(
                r.output_digest,
                golden,
                "{}: design {} changed program output",
                w.abbr,
                job.point.name()
            );
        }
    }
    let perfect = &results[ROW_POINTS.len() - 1];
    let perfect_speedup = results[0].report.cycles as f64 / perfect.report.cycles as f64;
    FullRow {
        abbr: w.abbr,
        name: w.name,
        suite: w.suite.tag(),
        memory_intensive: perfect_speedup >= MEMORY_INTENSIVE_THRESHOLD,
        perfect_speedup,
        mix,
        results: results[..Design::ALL.len()].to_vec(),
    }
}

/// Evaluate one benchmark serially at paper defaults — the single-workload
/// convenience wrapper over [`evaluate_all`].
pub fn evaluate(w: &Workload) -> FullRow {
    evaluate_all(
        &Harness::serial(),
        vec![w.clone()],
        1,
        &Overrides::default(),
    )
    .pop()
    .expect("one workload in, one row out")
}

/// Geometric mean.
pub fn geomean(xs: impl IntoIterator<Item = f64>) -> f64 {
    let v: Vec<f64> = xs.into_iter().collect();
    if v.is_empty() {
        return 0.0;
    }
    let s: f64 = v.iter().map(|x| x.ln()).sum();
    (s / v.len() as f64).exp()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn geomean_basics() {
        assert!((geomean([1.0, 4.0]) - 2.0).abs() < 1e-12);
        assert!((geomean([2.0, 2.0, 2.0]) - 2.0).abs() < 1e-12);
        assert_eq!(geomean([]), 0.0);
    }

    /// The headline experiment on one memory-bound benchmark: DAC must
    /// beat baseline and decouple most loads, with all designs correct.
    #[test]
    fn evaluate_lib_end_to_end() {
        let w = gpu_workloads::benchmark("LIB", 1).unwrap();
        let row = evaluate(&w);
        assert!(row.memory_intensive, "LIB must be memory-intensive");
        assert!(
            row.speedup(Design::Dac) > 1.05,
            "DAC speedup {}",
            row.speedup(Design::Dac)
        );
        assert!(row.decoupled_load_fraction() > 0.8);
        let (na, aff) = row.instr_ratio();
        assert!(na < 1.0, "non-affine ratio {na}");
        assert!(aff > 0.0 && aff < 0.5);
    }

    /// The parallel path gives bit-identical rows to the serial path.
    #[test]
    fn evaluate_all_matches_serial() {
        let small = Overrides {
            num_sms: Some(2),
            max_warps_per_sm: Some(16),
            ..Overrides::default()
        };
        let benches = || {
            vec![
                gpu_workloads::benchmark("LIB", 1).unwrap(),
                gpu_workloads::benchmark("MQ", 1).unwrap(),
            ]
        };
        let serial = evaluate_all(&Harness::serial(), benches(), 1, &small);
        let parallel = evaluate_all(&Harness::new(4), benches(), 1, &small);
        for (a, b) in serial.iter().zip(&parallel) {
            assert_eq!(a.abbr, b.abbr);
            assert_eq!(a.memory_intensive, b.memory_intensive);
            for d in Design::ALL {
                assert_eq!(a.report(d).cycles, b.report(d).cycles);
                assert_eq!(a.report(d).stats, b.report(d).stats);
                assert_eq!(a.report(d).mem, b.report(d).mem);
            }
        }
    }
}

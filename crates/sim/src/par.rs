//! Intra-run worker pool: shard SMs and L2 partitions across threads.
//!
//! One simulated cycle is split into barrier-separated phases so that
//! between any two barriers each worker owns a disjoint set of units
//! (partitions in phase A, SM ports in phase B, SM cores in phase C) and
//! therefore never races another worker. Because every phase processes
//! its units independently and all cross-unit communication happens at
//! the barriers through index-ordered merges ([`simt_mem::FabricGrid`]),
//! the result is *byte-identical* to the serial schedule regardless of
//! thread count — parallelism here is purely a wall-clock optimisation,
//! never an approximation. The memory-coupled parts of an SM tick
//! (functional memory, fabric submission, retire) are replayed serially
//! by the coordinator in SM-index order after phase C; see
//! DESIGN.md "Intra-run parallelism" for the full determinism argument.
//!
//! The pool is persistent: `threads - 1` workers are spawned once per run
//! and parked in a spin barrier between cycles, so a cycle costs four to
//! five barrier crossings and no syscalls. The coordinator (the thread
//! driving [`crate::gpu`]'s run loop) participates as shard 0.

use std::cell::UnsafeCell;
use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::Arc;

use simt_mem::{FabricGrid, MemoryFabric};
use simt_trace::NullTracer;

use crate::config::GpuConfig;
use crate::coproc::CoProcessor;
use crate::sm::{KernelCtx, Sm};
use crate::stats::SimStats;

/// A counting spin barrier with a generation word, sized for sub-
/// microsecond cycles where parking threads in the kernel would dominate
/// the simulated work.
///
/// After [`SPINS_BEFORE_YIELD`] unproductive spins a waiter starts
/// yielding its timeslice: on a machine with fewer free cores than
/// participants, pure spinning would make every barrier crossing cost a
/// scheduler quantum per stranded thread (an effective livelock on one
/// core). Yielding keeps oversubscribed runs merely slow — and still
/// byte-identical, since the barrier protocol does not depend on timing.
struct SpinBarrier {
    count: AtomicUsize,
    generation: AtomicUsize,
    total: usize,
}

/// Spin iterations before a barrier waiter starts yielding. A phase is
/// microseconds of work, so a same-speed peer arrives within a few dozen
/// PAUSE iterations; anything longer means the peer lost its core and
/// spinning just steals the time it needs. Keep this small: at 2^14
/// PAUSEs (~1 ms) a single-core host pays milliseconds per barrier
/// crossing and a 10k-cycle run stretches into minutes.
const SPINS_BEFORE_YIELD: u32 = 128;

impl SpinBarrier {
    fn new(total: usize) -> Self {
        SpinBarrier {
            count: AtomicUsize::new(0),
            generation: AtomicUsize::new(0),
            total,
        }
    }

    /// Block (spinning) until all `total` participants have arrived.
    /// The last arrival resets the count and releases the rest; the
    /// acquire/release pairing on `generation` makes every write before
    /// any participant's arrival visible to every participant after.
    fn wait(&self) {
        let gen = self.generation.load(Ordering::Acquire);
        if self.count.fetch_add(1, Ordering::AcqRel) == self.total - 1 {
            self.count.store(0, Ordering::Relaxed);
            self.generation
                .store(gen.wrapping_add(1), Ordering::Release);
        } else {
            let mut spins = 0u32;
            while self.generation.load(Ordering::Acquire) == gen {
                if spins < SPINS_BEFORE_YIELD {
                    spins += 1;
                    std::hint::spin_loop();
                } else {
                    std::thread::yield_now();
                }
            }
        }
    }
}

/// One cycle's worth of raw pointers into the run-loop state, published
/// by the coordinator before the start barrier and read by workers after
/// it. All pointees outlive the `WorkerPool::cycle` call that publishes
/// them, and the phase protocol guarantees disjoint access.
struct Job {
    now: u64,
    need_pbuf: bool,
    sms: *mut Sm,
    num_sms: usize,
    rows: *mut Vec<SimStats>,
    bins_of: *const usize,
    kctx_of: *const usize,
    kctxs: *const KernelCtx<'static>,
    grid: FabricGrid,
    num_parts: usize,
    /// Shared mutable across workers. Sound only because every coprocessor
    /// keeps its mutable per-SM state in per-SM shards and phase C hands
    /// each SM index to exactly one worker; cross-SM state is only read
    /// (configs) or updated outside phase C (retire, pump — coordinator).
    coproc: *mut (dyn CoProcessor + 'static),
    cfg: *const GpuConfig,
}

enum Cmd {
    Cycle(Job),
    Exit,
}

/// State shared between the coordinator and the workers.
struct Shared {
    barrier: SpinBarrier,
    /// Written by the coordinator strictly before the start barrier of a
    /// cycle (or the exit handshake); read by workers strictly between
    /// that barrier and the cycle's final barrier.
    cmd: UnsafeCell<Cmd>,
    /// Port-buffer counter snapshot for the MTA throttle, written by
    /// shard 0 between the phase-B barrier and the pbuf barrier, read by
    /// everyone after the pbuf barrier.
    pbuf: UnsafeCell<Option<(u64, u64)>>,
}

// Safety: all access to the UnsafeCells follows the barrier-separated
// write/read protocol documented on the fields; the raw pointers inside
// `Job` are dereferenced only under the phase ownership discipline.
unsafe impl Send for Shared {}
unsafe impl Sync for Shared {}

/// The contiguous unit range owned by shard `t` of `total` over `n` units.
fn chunk(t: usize, total: usize, n: usize) -> std::ops::Range<usize> {
    (t * n / total)..((t + 1) * n / total)
}

/// Run this shard's slice of one cycle. Called by workers (t ≥ 1) and the
/// coordinator (t = 0) alike; every participant passes the same barrier
/// sequence: A-done, B-done, [pbuf-done], C-done.
///
/// # Safety
/// Must be entered by all `total` participants with the same `job`
/// between the same pair of start/end barriers.
unsafe fn run_shard(t: usize, total: usize, job: &Job, shared: &Shared) {
    // Phase A: advance this shard's L2/DRAM partitions.
    for p in chunk(t, total, job.num_parts) {
        job.grid.partition_cycle(p, job.now);
    }
    shared.barrier.wait();

    // Phase B: merge partition outboxes into this shard's SM ports (in
    // partition-index order — the same order the serial fabric cycle
    // uses) and process matured port events.
    for sm in chunk(t, total, job.num_sms) {
        job.grid.port_cycle(sm, job.now);
    }
    shared.barrier.wait();

    // Optional pbuf snapshot: the counters it reads move only during
    // phase B, so a post-barrier snapshot equals serial direct reads.
    let pbuf = if job.need_pbuf {
        if t == 0 {
            *shared.pbuf.get() = Some(job.grid.pbuf_stats());
        }
        shared.barrier.wait();
        *shared.pbuf.get()
    } else {
        None
    };

    // Phase C: the compute half of this shard's SM ticks. Memory-coupled
    // work (functional loads/stores, fabric submission, retire) was split
    // out into `cycle_replay`, which the coordinator runs serially in
    // SM-index order after the end barrier.
    for sm in chunk(t, total, job.num_sms) {
        let mut port = job.grid.port_view(sm);
        let kctx = &*job.kctxs.add(*job.kctx_of.add(sm));
        let bin = *job.bins_of.add(sm);
        let row = &mut *job.rows.add(sm);
        let sm_ref = &mut *job.sms.add(sm);
        sm_ref.cycle_compute(
            job.now,
            &*job.cfg,
            kctx,
            &mut port,
            &mut *job.coproc,
            &mut row[bin],
            pbuf,
            &mut NullTracer,
        );
    }
    shared.barrier.wait();
}

/// A persistent pool of `threads - 1` workers plus the calling thread,
/// advancing all SMs and L2 partitions one barrier-phased cycle per
/// [`WorkerPool::cycle`] call.
pub struct WorkerPool {
    shared: Arc<Shared>,
    total: usize,
    handles: Vec<std::thread::JoinHandle<()>>,
}

impl WorkerPool {
    /// Spawn `threads - 1` workers (the caller is shard 0).
    pub fn new(threads: usize) -> Self {
        let total = threads.max(1);
        let shared = Arc::new(Shared {
            barrier: SpinBarrier::new(total),
            cmd: UnsafeCell::new(Cmd::Exit),
            pbuf: UnsafeCell::new(None),
        });
        let handles = (1..total)
            .map(|t| {
                let shared = Arc::clone(&shared);
                std::thread::Builder::new()
                    .name(format!("simt-worker-{t}"))
                    .spawn(move || loop {
                        shared.barrier.wait();
                        // Safety: the coordinator wrote `cmd` before the
                        // start barrier and will not touch it again until
                        // after the end barrier we hit in `run_shard`.
                        match unsafe { &*shared.cmd.get() } {
                            Cmd::Exit => break,
                            Cmd::Cycle(job) => unsafe { run_shard(t, total, job, &shared) },
                        }
                    })
                    .expect("spawn simt worker")
            })
            .collect();
        WorkerPool {
            shared,
            total,
            handles,
        }
    }

    /// Advance every partition, port, and SM one cycle (phases A/B/C of
    /// the parallel schedule). On return all compute halves are done and
    /// the caller runs the serial replay. Byte-identical to the serial
    /// path for any thread count.
    #[allow(clippy::too_many_arguments)]
    pub fn cycle(
        &mut self,
        now: u64,
        need_pbuf: bool,
        cfg: &GpuConfig,
        sms: &mut [Sm],
        rows: &mut [Vec<SimStats>],
        bins_of: &[usize],
        kctx_of: &[usize],
        kctxs: &[KernelCtx<'_>],
        fabric: &mut MemoryFabric,
        coproc: &mut dyn CoProcessor,
    ) {
        debug_assert_eq!(sms.len(), rows.len());
        debug_assert_eq!(sms.len(), bins_of.len());
        debug_assert_eq!(sms.len(), kctx_of.len());
        let job = Job {
            now,
            need_pbuf,
            sms: sms.as_mut_ptr(),
            num_sms: sms.len(),
            rows: rows.as_mut_ptr(),
            bins_of: bins_of.as_ptr(),
            kctx_of: kctx_of.as_ptr(),
            // Safety (lifetime erasure): the pointees outlive this call,
            // and no pointer escapes it — workers drop their `Job`
            // reference at the end barrier inside `run_shard`.
            kctxs: kctxs.as_ptr().cast::<KernelCtx<'static>>(),
            grid: fabric.grid(),
            num_parts: fabric.num_partitions(),
            coproc: unsafe {
                std::mem::transmute::<*mut (dyn CoProcessor + '_), *mut (dyn CoProcessor + 'static)>(
                    coproc,
                )
            },
            cfg,
        };
        // Safety: workers are parked at the start barrier; `cmd` is ours
        // until we arrive there too.
        unsafe {
            *self.shared.cmd.get() = Cmd::Cycle(job);
        }
        self.shared.barrier.wait(); // start
        let job = unsafe { &*self.shared.cmd.get() };
        let Cmd::Cycle(job) = job else { unreachable!() };
        // Safety: same job, same barrier window as every worker.
        unsafe { run_shard(0, self.total, job, &self.shared) };
    }
}

impl Drop for WorkerPool {
    fn drop(&mut self) {
        // If we are unwinding out of the middle of a cycle the workers
        // may be parked at an *internal* phase barrier, where the exit
        // handshake below would be misread as a phase transition. The
        // process is going down anyway — leak the workers instead.
        if std::thread::panicking() {
            return;
        }
        // Safety: workers are parked at the start barrier between cycles.
        unsafe {
            *self.shared.cmd.get() = Cmd::Exit;
        }
        self.shared.barrier.wait();
        for h in self.handles.drain(..) {
            let _ = h.join();
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn chunks_cover_and_partition() {
        for total in 1..6 {
            for n in 0..20 {
                let mut covered = vec![false; n];
                for t in 0..total {
                    for i in chunk(t, total, n) {
                        assert!(!covered[i], "unit {i} owned twice");
                        covered[i] = true;
                    }
                }
                assert!(covered.iter().all(|&c| c), "n={n} total={total}");
            }
        }
    }

    #[test]
    fn pool_spawns_and_exits_cleanly() {
        for threads in 1..5 {
            let pool = WorkerPool::new(threads);
            assert_eq!(pool.handles.len(), threads.saturating_sub(1));
            drop(pool);
        }
    }
}

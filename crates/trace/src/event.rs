//! The trace event taxonomy.
//!
//! Events mirror the simulator's own enums (`Client`, `ReqKind`,
//! `StallReason`) with self-contained copies so `simt-trace` sits *below*
//! `simt-mem`/`simt-sim` in the dependency graph: every crate in the stack
//! can emit events without creating a cycle. All variants are `Copy` and
//! fixed-size, so the ring sink stores them without allocation.

/// Which unit owns a memory request (mirror of `simt_mem::Client`).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum TraceClient {
    /// The SM's load/store unit (demand traffic).
    Lsu,
    /// The DAC coprocessor (decoupled prefetch-lock traffic).
    Dac,
    /// The MTA prefetcher baseline.
    Mta,
}

impl TraceClient {
    /// Short lowercase name used by both exporters.
    pub fn name(self) -> &'static str {
        match self {
            TraceClient::Lsu => "lsu",
            TraceClient::Dac => "dac",
            TraceClient::Mta => "mta",
        }
    }
}

/// Memory request kind (mirror of `simt_mem::ReqKind`).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum TraceReqKind {
    /// Demand load.
    Load,
    /// Store (write-through; no response).
    Store,
    /// Atomic read-modify-write.
    Atomic,
    /// DAC early request that locks the L1 line until consumed.
    PrefetchLock,
    /// Plain prefetch into the prefetch buffer (MTA; no response).
    Prefetch,
}

impl TraceReqKind {
    /// Short lowercase name used by both exporters.
    pub fn name(self) -> &'static str {
        match self {
            TraceReqKind::Load => "load",
            TraceReqKind::Store => "store",
            TraceReqKind::Atomic => "atomic",
            TraceReqKind::PrefetchLock => "prefetch_lock",
            TraceReqKind::Prefetch => "prefetch",
        }
    }

    /// Whether the fabric sends a response back for this kind (only those
    /// requests get latency measured by the request/response pairing).
    pub fn has_response(self) -> bool {
        matches!(
            self,
            TraceReqKind::Load | TraceReqKind::Atomic | TraceReqKind::PrefetchLock
        )
    }
}

/// Why a warp (or a memory request) could not make progress this cycle.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum StallCause {
    /// A source or destination register is still pending in the scoreboard.
    Scoreboard,
    /// The instruction is a memory op but the LSU queue is full.
    LsuFull,
    /// The warp is parked at a CTA barrier.
    Barrier,
    /// The coprocessor gated issue (DAC: decoupled record not ready).
    CoprocGate,
    /// Fabric port: no free MSHR for a new miss.
    MshrFull,
    /// Fabric port: an interconnect/partition queue is full.
    QueueFull,
    /// Fabric port: the DAC line-lock budget is exhausted.
    LockBudget,
}

impl StallCause {
    /// Short lowercase name used by both exporters.
    pub fn name(self) -> &'static str {
        match self {
            StallCause::Scoreboard => "scoreboard",
            StallCause::LsuFull => "lsu_full",
            StallCause::Barrier => "barrier",
            StallCause::CoprocGate => "coproc_gate",
            StallCause::MshrFull => "mshr_full",
            StallCause::QueueFull => "queue_full",
            StallCause::LockBudget => "lock_budget",
        }
    }
}

/// One structured trace event. The cycle number is attached by the sink
/// (every `Tracer::emit` call passes it alongside), keeping the event
/// itself context-free.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum TraceEvent {
    /// A warp issued an instruction from a scheduler slot.
    WarpIssue {
        /// SM index.
        sm: u32,
        /// Warp slot within the SM.
        warp: u32,
        /// Program counter of the issued instruction.
        pc: u32,
        /// Number of active lanes under the current SIMT mask.
        active: u32,
    },
    /// A scheduler considered a warp and found it blocked.
    WarpStall {
        /// SM index.
        sm: u32,
        /// Warp slot within the SM.
        warp: u32,
        /// Program counter the warp is stuck at.
        pc: u32,
        /// Why it could not issue.
        cause: StallCause,
    },
    /// The SIMT reconvergence stack changed depth (push at a divergent
    /// branch, pop at reconvergence or return).
    StackDepth {
        /// SM index.
        sm: u32,
        /// Warp slot within the SM.
        warp: u32,
        /// Program counter of the instruction that moved the stack.
        pc: u32,
        /// Stack depth after the change.
        depth: u32,
        /// `true` for a push (divergence), `false` for a pop (reconvergence).
        push: bool,
    },
    /// The coalescer collapsed a warp memory access into line transactions.
    Coalesce {
        /// SM index.
        sm: u32,
        /// Warp slot within the SM.
        warp: u32,
        /// Program counter of the memory instruction.
        pc: u32,
        /// Active lanes that contributed addresses.
        lanes: u32,
        /// Distinct 128 B line transactions produced.
        txns: u32,
        /// `true` for stores, `false` for loads/atomics.
        store: bool,
    },
    /// The memory fabric accepted a request at an SM port.
    MemReq {
        /// Requesting SM.
        sm: u32,
        /// Line address (byte address of the line base).
        line: u64,
        /// Request kind.
        kind: TraceReqKind,
        /// Owning unit.
        client: TraceClient,
        /// Client-chosen token echoed in the response.
        token: u64,
    },
    /// The memory fabric rejected a request this cycle (the client retries).
    MemStall {
        /// Requesting SM.
        sm: u32,
        /// Line address.
        line: u64,
        /// Owning unit.
        client: TraceClient,
        /// Port-level reason.
        cause: StallCause,
    },
    /// An L2 partition serviced a line out of its input queue.
    L2Access {
        /// L2 partition index.
        partition: u32,
        /// Line address.
        line: u64,
        /// `true` if the line hit in L2, `false` if it went to DRAM.
        hit: bool,
        /// Unit that issued the original request (demand vs prefetch
        /// traffic — lets profiles compute per-client L2 hit rates).
        client: TraceClient,
    },
    /// A DRAM bank scheduled one command (FR-FCFS decision).
    DramAccess {
        /// DRAM/L2 partition index.
        partition: u32,
        /// Line address.
        line: u64,
        /// `true` if the access hit the bank's open row buffer.
        row_hit: bool,
        /// `true` for write-back traffic.
        write: bool,
    },
    /// A fill (line of data) arrived back at an SM port and was installed.
    Fill {
        /// Receiving SM.
        sm: u32,
        /// Line address.
        line: u64,
    },
    /// A response was delivered to its client, closing a request lifecycle.
    MemResp {
        /// Receiving SM.
        sm: u32,
        /// Line address.
        line: u64,
        /// Owning unit.
        client: TraceClient,
        /// Token from the original request.
        token: u64,
        /// Cycles between fabric acceptance and delivery.
        latency: u64,
    },
    /// Per-cycle sample of DAC queue occupancy on one SM.
    QueueSample {
        /// SM index.
        sm: u32,
        /// Affine tuple queue entries.
        atq: u32,
        /// Expanded per-warp address records outstanding.
        pwaq: u32,
        /// Per-warp predicate bit-vectors outstanding.
        pwpq: u32,
        /// Affine-warp run-ahead distance (decoupled work items queued
        /// ahead of the main pipeline: ATQ entries + expanded records).
        runahead: u32,
    },
    /// The DAC affine warp executed one instruction of the affine stream.
    AffineIssue {
        /// SM index.
        sm: u32,
        /// CTA slot the affine context belongs to.
        slot: u32,
        /// Affine-stream program counter.
        pc: u32,
    },
    /// An AEU/PEU expansion produced one per-warp record.
    Expand {
        /// SM index.
        sm: u32,
        /// Destination warp slot.
        warp: u32,
        /// `true` for a PEU predicate expansion, `false` for an AEU
        /// address expansion.
        pred: bool,
    },
    /// The command processor placed a CTA on an SM.
    CtaLaunch {
        /// SM index.
        sm: u32,
        /// CTA slot the block occupies.
        slot: u32,
        /// Owning kernel (flattened stream-major launch index; 0 for
        /// single-kernel runs).
        kernel: u32,
        /// Linear CTA index within the owning kernel's grid.
        cta: u64,
    },
    /// A CTA finished and freed its SM resources (warps, registers,
    /// shared memory).
    CtaRetire {
        /// SM index.
        sm: u32,
        /// CTA slot freed.
        slot: u32,
        /// Owning kernel (flattened stream-major launch index).
        kernel: u32,
    },
}

impl TraceEvent {
    /// Short snake_case event-type name used by both exporters.
    pub fn kind_name(&self) -> &'static str {
        match self {
            TraceEvent::WarpIssue { .. } => "warp_issue",
            TraceEvent::WarpStall { .. } => "warp_stall",
            TraceEvent::StackDepth { .. } => "stack_depth",
            TraceEvent::Coalesce { .. } => "coalesce",
            TraceEvent::MemReq { .. } => "mem_req",
            TraceEvent::MemStall { .. } => "mem_stall",
            TraceEvent::L2Access { .. } => "l2_access",
            TraceEvent::DramAccess { .. } => "dram_access",
            TraceEvent::Fill { .. } => "fill",
            TraceEvent::MemResp { .. } => "mem_resp",
            TraceEvent::QueueSample { .. } => "queue_sample",
            TraceEvent::AffineIssue { .. } => "affine_issue",
            TraceEvent::Expand { .. } => "expand",
            TraceEvent::CtaLaunch { .. } => "cta_launch",
            TraceEvent::CtaRetire { .. } => "cta_retire",
        }
    }
}

/// An event stamped with the cycle it occurred on — the unit the sink
/// stores and the exporters consume.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct TimedEvent {
    /// Simulation cycle.
    pub cycle: u64,
    /// The event.
    pub event: TraceEvent,
}

//! Simulation-throughput benchmarking (wall-clock, min-of-N).
//!
//! Runs each selected benchmark under each selected design `--repeat N`
//! times with *no* tracer or profiling sink attached — the configuration a
//! large sweep actually runs — and records the **minimum** wall time per
//! run. Min-of-N is the standard defense against timer noise and scheduler
//! jitter: the shortest observed time is the closest estimate of the true
//! cost (BENCH_pr3.json carried single-shot `wall_s` values as low as
//! 0.07 s, which are noise-dominated).
//!
//! Emits `BENCH_pr5.json` (`dac-bench-pr5/v1`, schema-checked by
//! `--check-bench`, used by CI) and, when a baseline record is available,
//! prints the geomean cycles/sec speedup against it. With `--full-chip`
//! the machine is the full 15-SM GTX 480 and the record is
//! `BENCH_pr6.json` (`dac-bench-pr6/v1`): same row shape, machine size
//! pinned by the schema.

use dac_bench::cli::{CommonArgs, COMMON_USAGE};
use simt_harness::{json, DesignPoint, Job};
use std::path::{Path, PathBuf};
use std::sync::Arc;

const USAGE: &str = "\
usage: perf [options]
       perf --check-bench FILE

Times every selected benchmark (default: BFS,LIB,MQ,SPV) under every
selected design (default: baseline,cae,mta,dac) with no tracer attached,
taking the minimum wall time over --repeat N runs, and writes a throughput
record to --bench-json (default BENCH_pr5.json, or BENCH_pr6.json with
--full-chip). Timed runs always simulate; the result cache is not
consulted. If --baseline FILE exists it also prints the geomean
cycles/sec speedup against it.

With --pr8 the run is the telemetry-overhead check: full-chip machine,
record written to BENCH_pr8.json (dac-bench-pr8/v1), compared against the
PR 7 era BENCH_pr6.json baseline, and the record carries the measured
throughput_ratio — the schema requires it to stay >= 0.97 (within 3%).

With --pr10 the run is the intra-run parallelism scaling check: full-chip
machine timed at --threads 1, 2, 4, and 8 (asserting byte-identical
results across thread counts), written to BENCH_pr10.json
(dac-bench-pr10/v1) with the PR 8 era serial baseline embedded; on hosts
with >= 4 CPUs the schema requires the 4-thread geomean speedup >= 1.5x.

perf options:
  --repeat N         timed iterations per run; min wall time kept (default 3)
  --bench-json FILE  where to write the throughput record
  --baseline FILE    prior record to compare against (default BENCH_pr3.json,
                     BENCH_pr6.json with --full-chip / --pr8, or
                     BENCH_pr8.json with --pr10)
  --pr8              telemetry-overhead mode: implies --full-chip, writes
                     BENCH_pr8.json with a pinned baseline ratio
  --pr10             thread-scaling mode: implies --full-chip, times
                     --threads 1/2/4/8 and writes BENCH_pr10.json
  --check-bench FILE validate FILE against the bench schema matching its
                     \"schema\" field (pr5, pr6, pr8, or pr10) and exit
                     (0 = valid)";

/// Same suite as the profile binary, so BENCH_pr5.json rows are directly
/// comparable to BENCH_pr3.json rows.
const DEFAULT_BENCHES: &str = "BFS,LIB,MQ,SPV";

fn usage_exit(error: &str) -> ! {
    if error == "help" {
        println!("{USAGE}\n\n{COMMON_USAGE}");
        std::process::exit(0);
    }
    eprintln!("perf: {error}\n\n{USAGE}\n\n{COMMON_USAGE}");
    std::process::exit(2);
}

fn main() {
    simt_obs::log::init_from_env();
    let raw: Vec<String> = std::env::args().skip(1).collect();

    // Strip perf-only flags before handing the rest to CommonArgs.
    let mut repeat: usize = 3;
    let mut bench_json: Option<PathBuf> = None;
    let mut baseline: Option<PathBuf> = None;
    let mut check_bench: Option<PathBuf> = None;
    let mut pr8 = false;
    let mut pr10 = false;
    let mut rest: Vec<String> = Vec::new();
    let mut it = raw.into_iter();
    while let Some(arg) = it.next() {
        match arg.as_str() {
            "--repeat" => match it.next().and_then(|v| v.parse::<usize>().ok()) {
                Some(n) if n >= 1 => repeat = n,
                _ => usage_exit("--repeat requires a positive number"),
            },
            "--pr8" => pr8 = true,
            "--pr10" => pr10 = true,
            "--bench-json" => match it.next() {
                Some(v) => bench_json = Some(PathBuf::from(v)),
                None => usage_exit("--bench-json requires a path"),
            },
            "--baseline" => match it.next() {
                Some(v) => baseline = Some(PathBuf::from(v)),
                None => usage_exit("--baseline requires a path"),
            },
            "--check-bench" => match it.next() {
                Some(v) => check_bench = Some(PathBuf::from(v)),
                None => usage_exit("--check-bench requires a path"),
            },
            _ => rest.push(arg),
        }
    }
    if pr8 && pr10 {
        usage_exit("--pr8 and --pr10 are mutually exclusive");
    }
    // --pr8 measures the telemetry-overhead config: the same full-chip
    // machine BENCH_pr6.json was recorded on. --pr10 scales the same
    // machine across intra-run thread counts.
    if (pr8 || pr10) && !rest.iter().any(|a| a == "--full-chip") {
        rest.push("--full-chip".into());
    }
    if pr10 && rest.iter().any(|a| a == "--threads") {
        usage_exit("--pr10 times --threads 1/2/4/8 itself; drop --threads");
    }
    let mut args = CommonArgs::parse(&rest).unwrap_or_else(|e| usage_exit(&e));
    if let Some(stray) = args.positional.first() {
        usage_exit(&format!("unexpected argument {stray:?}"));
    }

    if let Some(path) = check_bench {
        std::process::exit(check_bench_file(&path));
    }

    // --full-chip times the full 15-SM machine and records a pr6 file;
    // a full-chip record only compares sensibly against another one.
    // --pr8 is the same machine but records the telemetry-overhead ratio
    // against the PR 7 era baseline.
    let schema = if pr10 {
        "dac-bench-pr10/v1"
    } else if pr8 {
        "dac-bench-pr8/v1"
    } else if args.full_chip {
        "dac-bench-pr6/v1"
    } else {
        "dac-bench-pr5/v1"
    };
    let default_json = if pr10 {
        "BENCH_pr10.json"
    } else if pr8 {
        "BENCH_pr8.json"
    } else if args.full_chip {
        "BENCH_pr6.json"
    } else {
        "BENCH_pr5.json"
    };
    let bench_json = bench_json.unwrap_or_else(|| PathBuf::from(default_json));
    let baseline = baseline.unwrap_or_else(|| {
        PathBuf::from(if pr10 {
            "BENCH_pr8.json"
        } else if args.full_chip {
            "BENCH_pr6.json"
        } else {
            "BENCH_pr3.json"
        })
    });

    if args.bench_filter.is_none() {
        args.bench_filter = Some(DEFAULT_BENCHES.split(',').map(|s| s.to_string()).collect());
    }
    let benches = args.benchmarks().unwrap_or_else(|e| usage_exit(&e));
    let points: Vec<DesignPoint> = args
        .designs
        .clone()
        .unwrap_or_else(|| DesignPoint::HW_ALL.to_vec());

    if pr10 {
        run_pr10(&args, repeat, &bench_json, &baseline, &benches, &points);
        return;
    }

    eprintln!(
        "perf: {} benchmarks x {} designs, repeat {} (scale {})",
        benches.len(),
        points.len(),
        repeat,
        args.scale
    );

    // (bench, design, cycles, warp_instructions, min wall_s) per run.
    let mut timings: Vec<(String, String, u64, u64, f64)> = Vec::new();
    for w in &benches {
        for &point in &points {
            let workload = Arc::new(
                gpu_workloads::benchmark(w.abbr, args.scale)
                    .unwrap_or_else(|| usage_exit(&format!("unknown benchmark {:?}", w.abbr))),
            );
            let mut job = Job::new(workload, args.scale, point);
            job.overrides = args.overrides.clone();
            let mut min_wall_s = f64::INFINITY;
            let mut pinned: Option<(u64, u64, u64)> = None;
            for _ in 0..repeat {
                let result = job.execute();
                let sig = (
                    result.report.cycles,
                    result.report.stats.warp_instructions,
                    result.output_digest,
                );
                // Repeats double as a determinism smoke: a hot-path change
                // that perturbs results shows up here before it reaches CI.
                match pinned {
                    None => pinned = Some(sig),
                    Some(p) => assert_eq!(p, sig, "{} nondeterministic", job.label()),
                }
                min_wall_s = min_wall_s.min(result.wall_ms / 1e3);
            }
            let (cycles, instrs, _) = pinned.unwrap();
            if !args.quiet {
                eprintln!(
                    "  {}/{}: {} cycles in {:.4}s ({:.0} cycles/sec)",
                    w.abbr,
                    point.name(),
                    cycles,
                    min_wall_s,
                    if min_wall_s > 0.0 {
                        cycles as f64 / min_wall_s
                    } else {
                        0.0
                    }
                );
            }
            timings.push((
                w.abbr.to_string(),
                point.name().to_string(),
                cycles,
                instrs,
                min_wall_s,
            ));
        }
    }

    // --pr8 pins the telemetry-overhead ratio into the record itself: the
    // schema rejects a record more than 3% below the PR 7 era baseline.
    let pr8_baseline = if pr8 {
        match baseline_ratio(&baseline, &timings) {
            Some(info) => Some(info),
            None => {
                eprintln!(
                    "perf: --pr8 needs a baseline with matching rows ({})",
                    baseline.display()
                );
                std::process::exit(1);
            }
        }
    } else {
        None
    };
    let text = bench_record_json(schema, &args, repeat, &timings, pr8_baseline.as_ref());
    if let Err(e) = json::parse(&text) {
        panic!(
            "{}: generated record is invalid JSON: {e}",
            bench_json.display()
        );
    }
    if let Err(e) = std::fs::write(&bench_json, &text) {
        eprintln!("perf: cannot write {}: {e}", bench_json.display());
        std::process::exit(1);
    }

    let geo = geomean_cycles_per_sec(&timings);
    println!(
        "perf: {} runs -> {} (geomean {:.0} cycles/sec)",
        timings.len(),
        bench_json.display(),
        geo
    );
    compare_baseline(&baseline, &timings);
}

/// Geomean of per-run cycles/sec over the timing rows.
fn geomean_cycles_per_sec(timings: &[(String, String, u64, u64, f64)]) -> f64 {
    dac_bench::geomean(
        timings
            .iter()
            .filter(|t| t.4 > 0.0)
            .map(|t| t.2 as f64 / t.4),
    )
}

/// The measured relationship to a prior throughput record: matched rows,
/// the geomean new/old cycles-per-sec ratio, and the baseline's own
/// geomean (for the record).
struct BaselineRatio {
    file: String,
    matched: usize,
    ratio: f64,
    baseline_geomean: f64,
}

/// Compare against a prior throughput record, matching rows by
/// `(bench, design)`. `None` when the file is unreadable or no rows match.
fn baseline_ratio(
    path: &Path,
    timings: &[(String, String, u64, u64, f64)],
) -> Option<BaselineRatio> {
    let text = std::fs::read_to_string(path).ok()?;
    let value = json::parse(&text).ok()?;
    let runs = value.get("runs").and_then(|v| v.as_arr())?;
    let mut ratios = Vec::new();
    for (bench, design, cycles, _, wall_s) in timings {
        if *wall_s <= 0.0 {
            continue;
        }
        let new_rate = *cycles as f64 / wall_s;
        let old_rate = runs.iter().find_map(|r| {
            let b = r.get("bench").and_then(json::Value::as_str)?;
            let d = r.get("design").and_then(json::Value::as_str)?;
            (b == bench && d == design)
                .then(|| r.get("cycles_per_sec").and_then(json::Value::as_f64))
                .flatten()
        });
        if let Some(old_rate) = old_rate {
            if old_rate > 0.0 {
                ratios.push(new_rate / old_rate);
            }
        }
    }
    if ratios.is_empty() {
        return None;
    }
    Some(BaselineRatio {
        file: path.display().to_string(),
        matched: ratios.len(),
        ratio: dac_bench::geomean(ratios),
        baseline_geomean: value
            .get("totals")
            .and_then(|t| t.get("geomean_cycles_per_sec"))
            .and_then(json::Value::as_f64)
            .unwrap_or(0.0),
    })
}

/// Print the geomean cycles/sec speedup against a prior throughput record
/// (BENCH_pr3.json or an earlier BENCH_pr5.json), matching rows by
/// `(bench, design)`. Silent when the baseline file does not exist.
fn compare_baseline(path: &Path, timings: &[(String, String, u64, u64, f64)]) {
    if !path.exists() {
        return;
    }
    let Some(r) = baseline_ratio(path, timings) else {
        eprintln!(
            "perf: no matching (bench, design) rows in {}; skipping compare",
            path.display()
        );
        return;
    };
    println!(
        "perf: geomean cycles/sec speedup vs {}: {:.2}x over {} matched runs",
        path.display(),
        r.ratio,
        r.matched
    );
}

/// Render a throughput record (`dac-bench-pr5/v1`, `dac-bench-pr6/v1`, or
/// `dac-bench-pr8/v1`). Same row shape as `dac-bench-pr3/v1` plus a
/// top-level `repeat`, so rows stay directly comparable across schemas;
/// pr8 records additionally pin the measured `throughput_ratio` against
/// their baseline.
fn bench_record_json(
    schema: &str,
    args: &CommonArgs,
    repeat: usize,
    timings: &[(String, String, u64, u64, f64)],
    baseline: Option<&BaselineRatio>,
) -> String {
    use std::fmt::Write as _;
    let mut out = format!("{{\"schema\": \"{schema}\"");
    let _ = write!(out, ", \"scale\": {}", args.scale);
    let _ = write!(out, ", \"repeat\": {repeat}");
    out.push_str(", \"overrides\": {");
    let mut first = true;
    for (k, v) in args
        .overrides
        .relevant(DesignPoint::Hw(gpu_workloads::Design::Dac))
    {
        if !first {
            out.push_str(", ");
        }
        first = false;
        let _ = write!(out, "\"{k}\": {v}");
    }
    out.push_str("}, \"runs\": [");
    let mut total_wall = 0.0;
    let mut total_instr = 0u64;
    for (i, (bench, design, cycles, instrs, wall_s)) in timings.iter().enumerate() {
        if i > 0 {
            out.push_str(", ");
        }
        total_wall += wall_s;
        total_instr += instrs;
        let rate = |n: u64| {
            if *wall_s > 0.0 {
                n as f64 / wall_s
            } else {
                0.0
            }
        };
        let _ = write!(
            out,
            "{{\"bench\": \"{bench}\", \"design\": \"{design}\", \"cycles\": {cycles}, \
             \"warp_instructions\": {instrs}, \"wall_s\": {wall_s:.4}, \
             \"warp_instr_per_sec\": {:.1}, \"cycles_per_sec\": {:.1}}}",
            rate(*instrs),
            rate(*cycles)
        );
    }
    let _ = write!(
        out,
        "], \"totals\": {{\"runs\": {}, \"wall_s\": {:.4}, \"warp_instr_per_sec\": {:.1}, \
         \"geomean_cycles_per_sec\": {:.1}}}",
        timings.len(),
        total_wall,
        if total_wall > 0.0 {
            total_instr as f64 / total_wall
        } else {
            0.0
        },
        geomean_cycles_per_sec(timings)
    );
    if let Some(b) = baseline {
        let _ = write!(
            out,
            ", \"baseline\": {{\"file\": \"{}\", \"matched_runs\": {}, \
             \"geomean_cycles_per_sec\": {:.1}}}, \"throughput_ratio\": {:.4}",
            b.file, b.matched, b.baseline_geomean, b.ratio
        );
    }
    out.push_str("}\n");
    out
}

/// The intra-run thread counts `--pr10` times, in run order. The serial
/// pass (1) pins the result signature every threaded pass must reproduce;
/// 8 needs no special care on the 15-SM machine (the pool clamps to
/// `num_sms` anyway).
const PR10_THREADS: [usize; 4] = [1, 2, 4, 8];

/// `--pr10`: time the full-chip machine at each intra-run thread count,
/// asserting byte-identical results across counts, and write the
/// `dac-bench-pr10/v1` scaling record with the PR 8 era serial baseline
/// embedded.
fn run_pr10(
    args: &CommonArgs,
    repeat: usize,
    bench_json: &Path,
    baseline: &Path,
    benches: &[gpu_workloads::Workload],
    points: &[DesignPoint],
) {
    let host_cpus = std::thread::available_parallelism().map_or(1, |n| n.get());
    eprintln!(
        "perf: {} benchmarks x {} designs x threads {:?}, repeat {} ({} host cpus)",
        benches.len(),
        points.len(),
        PR10_THREADS,
        repeat,
        host_cpus
    );
    // (bench, design, threads, cycles, warp_instructions, min wall_s).
    let mut rows: Vec<(String, String, usize, u64, u64, f64)> = Vec::new();
    // (cycles, warp_instructions, output digest) pinned by the serial
    // pass; every threaded pass must reproduce it exactly — --pr10
    // doubles as a full-chip determinism check.
    let mut pinned: Vec<(u64, u64, u64)> = Vec::new();
    for (ti, &threads) in PR10_THREADS.iter().enumerate() {
        let mut slot = 0;
        for w in benches {
            for &point in points {
                let workload = Arc::new(
                    gpu_workloads::benchmark(w.abbr, args.scale)
                        .unwrap_or_else(|| usage_exit(&format!("unknown benchmark {:?}", w.abbr))),
                );
                let mut job = Job::new(workload, args.scale, point);
                job.overrides = args.overrides.clone();
                job.overrides.threads = Some(threads);
                let mut min_wall_s = f64::INFINITY;
                let mut sig: Option<(u64, u64, u64)> = None;
                for _ in 0..repeat {
                    let result = job.execute();
                    let s = (
                        result.report.cycles,
                        result.report.stats.warp_instructions,
                        result.output_digest,
                    );
                    match sig {
                        None => sig = Some(s),
                        Some(p) => assert_eq!(p, s, "{} nondeterministic", job.label()),
                    }
                    min_wall_s = min_wall_s.min(result.wall_ms / 1e3);
                }
                let sig = sig.unwrap();
                if ti == 0 {
                    pinned.push(sig);
                } else {
                    assert_eq!(
                        pinned[slot],
                        sig,
                        "{}: --threads {threads} changed the result",
                        job.label()
                    );
                }
                if !args.quiet {
                    eprintln!(
                        "  {}/{} threads={threads}: {} cycles in {min_wall_s:.4}s",
                        w.abbr,
                        point.name(),
                        sig.0
                    );
                }
                rows.push((
                    w.abbr.to_string(),
                    point.name().to_string(),
                    threads,
                    sig.0,
                    sig.1,
                    min_wall_s,
                ));
                slot += 1;
            }
        }
    }

    // Per-thread-count geomean cycles/sec and its speedup over serial.
    let geo_at = |threads: usize| {
        dac_bench::geomean(
            rows.iter()
                .filter(|r| r.2 == threads && r.5 > 0.0)
                .map(|r| r.3 as f64 / r.5),
        )
    };
    let serial_geo = geo_at(PR10_THREADS[0]);
    let scaling: Vec<(usize, f64, f64)> = PR10_THREADS
        .iter()
        .map(|&t| {
            let g = geo_at(t);
            (
                t,
                g,
                if serial_geo > 0.0 {
                    g / serial_geo
                } else {
                    0.0
                },
            )
        })
        .collect();
    let speedup_4t = scaling.iter().find(|s| s.0 == 4).map_or(0.0, |s| s.2);

    // The embedded baseline compares this record's *serial* rows to the
    // PR 8 era record: thread scaling must not have taxed the serial path.
    let serial_rows: Vec<(String, String, u64, u64, f64)> = rows
        .iter()
        .filter(|r| r.2 == PR10_THREADS[0])
        .map(|r| (r.0.clone(), r.1.clone(), r.3, r.4, r.5))
        .collect();
    let Some(base) = baseline_ratio(baseline, &serial_rows) else {
        eprintln!(
            "perf: --pr10 needs a baseline with matching rows ({})",
            baseline.display()
        );
        std::process::exit(1);
    };

    let text = pr10_record_json(args, repeat, host_cpus, &rows, &scaling, &base, speedup_4t);
    if let Err(e) = json::parse(&text) {
        panic!(
            "{}: generated record is invalid JSON: {e}",
            bench_json.display()
        );
    }
    if let Err(e) = std::fs::write(bench_json, &text) {
        eprintln!("perf: cannot write {}: {e}", bench_json.display());
        std::process::exit(1);
    }

    println!(
        "perf: {} runs -> {} (serial geomean {serial_geo:.0} cycles/sec)",
        rows.len(),
        bench_json.display()
    );
    for (t, g, s) in &scaling {
        println!("perf: --threads {t}: geomean {g:.0} cycles/sec ({s:.2}x vs serial)");
    }
    println!(
        "perf: serial geomean cycles/sec ratio vs {}: {:.2}x over {} matched runs",
        base.file, base.ratio, base.matched
    );
    if host_cpus < 4 {
        eprintln!(
            "perf: note: {host_cpus} host cpu(s) cannot express 4-thread parallelism; \
             the schema's >= 1.5x floor binds only on hosts with >= 4 cpus"
        );
    }
}

/// Render a `dac-bench-pr10/v1` thread-scaling record.
fn pr10_record_json(
    args: &CommonArgs,
    repeat: usize,
    host_cpus: usize,
    rows: &[(String, String, usize, u64, u64, f64)],
    scaling: &[(usize, f64, f64)],
    baseline: &BaselineRatio,
    speedup_4t: f64,
) -> String {
    use std::fmt::Write as _;
    let mut out = String::from("{\"schema\": \"dac-bench-pr10/v1\"");
    let _ = write!(out, ", \"scale\": {}", args.scale);
    let _ = write!(out, ", \"repeat\": {repeat}");
    out.push_str(", \"overrides\": {");
    let mut first = true;
    for (k, v) in args
        .overrides
        .relevant(DesignPoint::Hw(gpu_workloads::Design::Dac))
    {
        if !first {
            out.push_str(", ");
        }
        first = false;
        let _ = write!(out, "\"{k}\": {v}");
    }
    let _ = write!(out, "}}, \"host_cpus\": {host_cpus}, \"thread_counts\": [");
    for (i, t) in PR10_THREADS.iter().enumerate() {
        if i > 0 {
            out.push_str(", ");
        }
        let _ = write!(out, "{t}");
    }
    out.push_str("], \"runs\": [");
    for (i, (bench, design, threads, cycles, instrs, wall_s)) in rows.iter().enumerate() {
        if i > 0 {
            out.push_str(", ");
        }
        let rate = |n: u64| {
            if *wall_s > 0.0 {
                n as f64 / wall_s
            } else {
                0.0
            }
        };
        let _ = write!(
            out,
            "{{\"bench\": \"{bench}\", \"design\": \"{design}\", \"threads\": {threads}, \
             \"cycles\": {cycles}, \"warp_instructions\": {instrs}, \"wall_s\": {wall_s:.4}, \
             \"warp_instr_per_sec\": {:.1}, \"cycles_per_sec\": {:.1}}}",
            rate(*instrs),
            rate(*cycles)
        );
    }
    out.push_str("], \"scaling\": [");
    for (i, (t, g, s)) in scaling.iter().enumerate() {
        if i > 0 {
            out.push_str(", ");
        }
        let _ = write!(
            out,
            "{{\"threads\": {t}, \"geomean_cycles_per_sec\": {g:.1}, \
             \"speedup_vs_serial\": {s:.4}}}"
        );
    }
    let _ = writeln!(
        out,
        "], \"baseline\": {{\"file\": \"{}\", \"matched_runs\": {}, \
         \"geomean_cycles_per_sec\": {:.1}}}, \"serial_throughput_ratio\": {:.4}, \
         \"speedup_4t\": {speedup_4t:.4}}}",
        baseline.file, baseline.matched, baseline.baseline_geomean, baseline.ratio
    );
    out
}

/// `--check-bench FILE`: validate a throughput record against the
/// checked-in schema matching its `"schema"` field
/// (`schemas/bench_pr5.schema.json` or `schemas/bench_pr6.schema.json`).
/// Returns the process exit code.
fn check_bench_file(path: &Path) -> i32 {
    let text = match std::fs::read_to_string(path) {
        Ok(t) => t,
        Err(e) => {
            eprintln!("perf: cannot read {}: {e}", path.display());
            return 2;
        }
    };
    let value = match json::parse(&text) {
        Ok(v) => v,
        Err(e) => {
            eprintln!("perf: {} is invalid JSON: {e}", path.display());
            return 1;
        }
    };
    let declared = value.get("schema").and_then(json::Value::as_str);
    let schema_path = match declared {
        Some("dac-bench-pr5/v1") => Path::new("schemas/bench_pr5.schema.json"),
        Some("dac-bench-pr6/v1") => Path::new("schemas/bench_pr6.schema.json"),
        Some("dac-bench-pr8/v1") => Path::new("schemas/bench_pr8.schema.json"),
        Some("dac-bench-pr10/v1") => Path::new("schemas/bench_pr10.schema.json"),
        other => {
            eprintln!("perf: {} declares unknown schema {other:?}", path.display());
            return 1;
        }
    };
    let schema_text = match std::fs::read_to_string(schema_path) {
        Ok(t) => t,
        Err(e) => {
            eprintln!("perf: cannot read {}: {e}", schema_path.display());
            return 2;
        }
    };
    let schema = match json::parse(&schema_text) {
        Ok(v) => v,
        Err(e) => {
            eprintln!("perf: schema is invalid JSON: {e}");
            return 2;
        }
    };
    let mut errors = Vec::new();
    json::validate(&value, &schema, "$", &mut errors);
    if errors.is_empty() {
        println!(
            "perf: {} conforms to {}",
            path.display(),
            declared.unwrap_or("?")
        );
        0
    } else {
        for e in &errors {
            eprintln!("perf: {e}");
        }
        eprintln!(
            "perf: {} FAILED validation ({} errors)",
            path.display(),
            errors.len()
        );
        1
    }
}

//! Run the benchmark × design matrix and emit machine-readable artifacts.
//!
//! The workhorse for bulk experiments: every (workload, design) pair
//! becomes one harness job, results stream into `results/cache/` (so a
//! second identical invocation simulates nothing) and one JSONL record per
//! job lands under `results/runs/`. The printed table and the artifact are
//! byte-identical for any `--jobs N` — results are aggregated by job
//! index, not completion order.

use dac_bench::cli::{CommonArgs, COMMON_USAGE};
use dac_bench::geomean;
use gpu_workloads::Design;
use simt_harness::{suite_jobs, DesignPoint};

const USAGE: &str = "\
usage: sweep [options]

Runs every selected benchmark under every selected design (default:
baseline, cae, mta, dac) and writes one JSONL record per simulation to
--out (default results/runs). Fully cached: rerunning an identical sweep
hits results/cache and simulates nothing.";

fn usage_exit(error: &str) -> ! {
    if error == "help" {
        println!("{USAGE}\n\n{COMMON_USAGE}");
        std::process::exit(0);
    }
    eprintln!("sweep: {error}\n\n{USAGE}\n\n{COMMON_USAGE}");
    std::process::exit(2);
}

fn main() {
    let raw: Vec<String> = std::env::args().skip(1).collect();
    let args = CommonArgs::parse(&raw).unwrap_or_else(|e| usage_exit(&e));
    if let Some(stray) = args.positional.first() {
        usage_exit(&format!("unexpected argument {stray:?}"));
    }
    let benches = args.benchmarks().unwrap_or_else(|e| usage_exit(&e));
    let points = args
        .designs
        .clone()
        .unwrap_or_else(|| DesignPoint::HW_ALL.to_vec());

    let harness = args.harness(Some("results/runs"));
    let jobs = suite_jobs(benches, args.scale, &points, &args.overrides);
    eprintln!(
        "sweep: {} jobs ({} benchmarks x {} designs) on {} workers",
        jobs.len(),
        jobs.len() / points.len(),
        points.len(),
        harness.workers()
    );
    let t0 = std::time::Instant::now();
    let out = harness.run(&jobs);
    let wall = t0.elapsed();

    // One row per benchmark, one column per design; speedups are relative
    // to the baseline column when it is part of the sweep.
    let base_col = points
        .iter()
        .position(|&p| p == DesignPoint::Hw(Design::Baseline));
    print!("{:<6} {:>12}", "bench", "design:cycles");
    println!();
    let mut dac_speedups = Vec::new();
    for (row, chunk) in out.results.chunks(points.len()).enumerate() {
        let bench = &jobs[row * points.len()].workload;
        let mut line = format!("{:<6}", bench.abbr);
        for (col, r) in chunk.iter().enumerate() {
            let mut cell = format!("{}={}", points[col].name(), r.report.cycles);
            if let Some(b) = base_col {
                if col != b {
                    let speedup = chunk[b].report.cycles as f64 / r.report.cycles as f64;
                    cell.push_str(&format!(" ({speedup:.2}x)"));
                    if points[col] == DesignPoint::Hw(Design::Dac) {
                        dac_speedups.push(speedup);
                    }
                }
            }
            line.push_str(&format!(" {cell:>24}"));
        }
        println!("{line}");
    }
    if !dac_speedups.is_empty() {
        println!(
            "GEOMEAN dac speedup over baseline: {:.3}x",
            geomean(dac_speedups)
        );
    }
    eprintln!(
        "sweep: {} simulated, {} from cache in {:.1}s",
        out.executed,
        out.cache_hits,
        wall.as_secs_f64()
    );
    if let Some(path) = &out.artifact_path {
        eprintln!("sweep: artifacts -> {}", path.display());
    }
    if let Some(dir) = &args.trace_dir {
        eprintln!("sweep: traces -> {}", dir.display());
    }
    if out.trace_drops > 0 {
        eprintln!(
            "sweep: WARNING: {} trace events dropped across {} job(s); \
             exported timelines keep only the newest events \
             (raise --trace-events, currently {})",
            out.trace_drops, out.trace_dropped_jobs, args.trace_events
        );
    }
}

//! Derived time-series: aggregate views computed from a retained event
//! stream. These are the Fig. 7/8-style explanations — how far the affine
//! warp runs ahead, how queue back-pressure evolves, where IPC dips.

use crate::event::{TimedEvent, TraceEvent};

/// One IPC window: instructions issued (warp + affine) in
/// `[start, start + window)` cycles.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct IpcWindow {
    /// Window start cycle.
    pub start: u64,
    /// Instructions issued in the window.
    pub issued: u64,
}

/// Instructions-per-window over the traced interval. Windows with no
/// issue events between the first and last observed window are included
/// with `issued == 0`, so gaps (pipeline drains) are visible.
pub fn ipc_windows<'a>(
    events: impl Iterator<Item = &'a TimedEvent>,
    window: u64,
) -> Vec<IpcWindow> {
    let window = window.max(1);
    let mut counts: std::collections::BTreeMap<u64, u64> = std::collections::BTreeMap::new();
    for te in events {
        if matches!(
            te.event,
            TraceEvent::WarpIssue { .. } | TraceEvent::AffineIssue { .. }
        ) {
            *counts.entry(te.cycle / window).or_insert(0) += 1;
        }
    }
    let (Some((&lo, _)), Some((&hi, _))) = (counts.first_key_value(), counts.last_key_value())
    else {
        return Vec::new();
    };
    (lo..=hi)
        .map(|w| IpcWindow {
            start: w * window,
            issued: counts.get(&w).copied().unwrap_or(0),
        })
        .collect()
}

/// One queue-occupancy sample (averaged across SMs when several sample in
/// the same cycle).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct QueuePoint {
    /// Sample cycle.
    pub cycle: u64,
    /// Summed ATQ entries across sampled SMs.
    pub atq: u64,
    /// Summed expanded address records.
    pub pwaq: u64,
    /// Summed predicate bit-vectors.
    pub pwpq: u64,
}

/// DAC queue occupancy over time, one point per cycle that carried at
/// least one [`TraceEvent::QueueSample`] (multiple SMs in the same cycle
/// sum into one point).
pub fn queue_series<'a>(events: impl Iterator<Item = &'a TimedEvent>) -> Vec<QueuePoint> {
    let mut points: std::collections::BTreeMap<u64, (u64, u64, u64)> =
        std::collections::BTreeMap::new();
    for te in events {
        if let TraceEvent::QueueSample {
            atq, pwaq, pwpq, ..
        } = te.event
        {
            let p = points.entry(te.cycle).or_insert((0, 0, 0));
            p.0 += atq as u64;
            p.1 += pwaq as u64;
            p.2 += pwpq as u64;
        }
    }
    points
        .into_iter()
        .map(|(cycle, (atq, pwaq, pwpq))| QueuePoint {
            cycle,
            atq,
            pwaq,
            pwpq,
        })
        .collect()
}

/// Histogram of affine-warp run-ahead distance. `buckets[i]` counts
/// samples with `runahead` in `[i * bucket, (i + 1) * bucket)`; the last
/// bucket absorbs the overflow tail.
pub fn runahead_histogram<'a>(
    events: impl Iterator<Item = &'a TimedEvent>,
    bucket: u32,
    num_buckets: usize,
) -> Vec<u64> {
    let bucket = bucket.max(1);
    let num_buckets = num_buckets.max(1);
    let mut hist = vec![0u64; num_buckets];
    for te in events {
        if let TraceEvent::QueueSample { runahead, .. } = te.event {
            let idx = ((runahead / bucket) as usize).min(num_buckets - 1);
            hist[idx] += 1;
        }
    }
    hist
}

#[cfg(test)]
mod tests {
    use super::*;

    fn issue(cycle: u64) -> TimedEvent {
        TimedEvent {
            cycle,
            event: TraceEvent::WarpIssue {
                sm: 0,
                warp: 0,
                pc: 0,
                active: 32,
            },
        }
    }

    fn sample(cycle: u64, sm: u32, runahead: u32) -> TimedEvent {
        TimedEvent {
            cycle,
            event: TraceEvent::QueueSample {
                sm,
                atq: 1,
                pwaq: 2,
                pwpq: 3,
                runahead,
            },
        }
    }

    #[test]
    fn ipc_windows_include_gaps() {
        let events = [issue(10), issue(15), issue(3500)];
        let w = ipc_windows(events.iter(), 1000);
        assert_eq!(
            w,
            vec![
                IpcWindow {
                    start: 0,
                    issued: 2
                },
                IpcWindow {
                    start: 1000,
                    issued: 0
                },
                IpcWindow {
                    start: 2000,
                    issued: 0
                },
                IpcWindow {
                    start: 3000,
                    issued: 1
                },
            ]
        );
        assert!(ipc_windows([].iter(), 1000).is_empty());
    }

    #[test]
    fn queue_series_sums_sms_per_cycle() {
        let events = [sample(7, 0, 4), sample(7, 1, 9), sample(9, 0, 1)];
        let s = queue_series(events.iter());
        assert_eq!(
            s,
            vec![
                QueuePoint {
                    cycle: 7,
                    atq: 2,
                    pwaq: 4,
                    pwpq: 6
                },
                QueuePoint {
                    cycle: 9,
                    atq: 1,
                    pwaq: 2,
                    pwpq: 3
                },
            ]
        );
    }

    #[test]
    fn runahead_histogram_clamps_tail() {
        let events = [sample(1, 0, 0), sample(2, 0, 5), sample(3, 0, 99)];
        let h = runahead_histogram(events.iter(), 4, 3);
        assert_eq!(h, vec![1, 1, 1]); // 0 → [0,4), 5 → [4,8), 99 → tail
    }
}

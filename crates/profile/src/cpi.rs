//! Top-down CPI stack: the issue-slot bucket view of a run's `SimStats`.

use simt_sim::SimStats;

/// The top-down issue-slot accounting for one run (or one SM): every
/// scheduler issue slot of every cycle is attributed to exactly one
/// bucket. The invariant `total() == cycles × schedulers × SMs` is
/// asserted by the simulator itself at the end of every run; this type is
/// the reporting view.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct CpiStack {
    buckets: Vec<(&'static str, u64)>,
}

impl CpiStack {
    /// Build the stack from a run's statistics.
    pub fn from_stats(stats: &SimStats) -> Self {
        CpiStack {
            buckets: stats.issue_slot_buckets(),
        }
    }

    /// The buckets as `(name, slots)` pairs in reporting order.
    pub fn buckets(&self) -> &[(&'static str, u64)] {
        &self.buckets
    }

    /// Total issue slots across all buckets.
    pub fn total(&self) -> u64 {
        self.buckets.iter().map(|&(_, v)| v).sum()
    }

    /// One bucket's slot count by name (0 for an unknown name).
    pub fn get(&self, name: &str) -> u64 {
        self.buckets
            .iter()
            .find(|&&(n, _)| n == name)
            .map_or(0, |&(_, v)| v)
    }

    /// One bucket's share of all issue slots, in [0, 1].
    pub fn fraction(&self, name: &str) -> f64 {
        let total = self.total();
        if total == 0 {
            0.0
        } else {
            self.get(name) as f64 / total as f64
        }
    }

    /// Does the accounting invariant hold for this geometry?
    pub fn check(&self, cycles: u64, schedulers: usize, num_sms: usize) -> bool {
        self.total() == cycles * schedulers as u64 * num_sms as u64
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn stack_reflects_stats() {
        let stats = SimStats {
            cycles: 10,
            slot_issued: 12,
            affine_issue_slots: 3,
            slot_busy: 2,
            slot_scoreboard: 2,
            slot_idle: 1,
            ..Default::default()
        };
        let cpi = CpiStack::from_stats(&stats);
        assert_eq!(cpi.total(), 20);
        assert_eq!(cpi.get("issued"), 12);
        assert_eq!(cpi.get("affine"), 3);
        assert!((cpi.fraction("issued") - 0.6).abs() < 1e-12);
        assert!(cpi.check(10, 2, 1));
        assert!(!cpi.check(10, 2, 2));
        assert_eq!(cpi.get("nonsense"), 0);
    }
}

//! The coprocessor hook: how DAC, CAE, and MTA attach to the SM pipeline.
//!
//! The core simulator stays agnostic of any accelerator; instead it calls
//! into a [`CoProcessor`] at well-defined points:
//!
//! * **issue gating** — [`CoProcessor::can_issue`] lets DAC hold back a warp
//!   whose `deq.*` operand is not ready (empty per-warp queue or data still
//!   in flight);
//! * **issue cost** — [`CoProcessor::issue_cost`] lets CAE issue
//!   affine-eligible instructions at initiation interval 1 on its affine
//!   units instead of 2 on the SIMT lanes;
//! * **dequeue supply** — [`CoProcessor::deq_record`] /
//!   [`CoProcessor::deq_pred_bits`] hand the non-affine stream its expanded
//!   addresses and predicate bit vectors;
//! * **observation** — [`CoProcessor::observe_mem`] feeds MTA's stride
//!   tables; [`CoProcessor::on_response`] routes fabric responses addressed
//!   to [`simt_mem::Client::Dac`] / [`simt_mem::Client::Mta`];
//! * **execution** — [`CoProcessor::step`] runs once per SM per cycle with
//!   mutable access to the fabric and the SM's issue slot, which is where
//!   DAC's affine warp and expansion units live.

use crate::stats::SimStats;
use simt_ir::{Instr, Program, Space, Width};
use simt_mem::{MemResponse, MemoryFabric};
use simt_trace::Tracer;

/// Whether a decoupled address record carries prefetched data or a bare
/// address (paper: `enq.data` vs `enq.addr`).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum RecordKind {
    /// Load addresses; the AEU already requested and L1-locked the lines.
    Data,
    /// Store (or non-prefetched load) addresses.
    Addr,
}

/// A warp address record: the compact per-warp product of the Address
/// Expansion Unit, dequeued by `ld/st [deq.*]` in the non-affine stream.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct AddrRecord {
    /// Data (pre-requested, L1-locked) or bare address.
    pub kind: RecordKind,
    /// Per-lane effective byte addresses; `None` = lane inactive.
    pub thread_addrs: Vec<Option<u64>>,
    /// Unique cache lines covered (for unlocking and statistics).
    pub lines: Vec<u64>,
    /// Memory space of the original access.
    pub space: Space,
    /// Access granularity.
    pub width: Width,
}

/// Relative cost of issuing one warp instruction.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum IssueCost {
    /// Normal SIMT-lane issue: scheduler busy for `issue_interval` cycles.
    Normal,
    /// Issued to a dedicated affine unit (CAE): scheduler busy 1 cycle and
    /// the SIMT lanes stay free.
    Fast,
}

/// Mutable per-SM, per-cycle context handed to [`CoProcessor::step`].
///
/// Deliberately fabric-free: `step` runs inside the (potentially
/// multi-threaded) SM-compute phase, so fabric traffic is deferred to
/// [`CoProcessor::pump`], which the run loop replays in SM-index order.
pub struct CoCtx<'a> {
    /// Current cycle.
    pub now: u64,
    /// SM index.
    pub sm: usize,
    /// Cache-line size (the only fabric geometry coprocessors need).
    pub line_bytes: u64,
    /// `(pbuf_unused_evictions, pbuf_fills)` snapshot taken after the
    /// fabric cycle, present only on cycles where
    /// [`CoProcessor::wants_pbuf_stats`] asked for it (MTA's periodic
    /// throttle re-evaluation).
    pub pbuf_stats: Option<(u64, u64)>,
    /// True while this SM still has an unconsumed issue slot this cycle;
    /// set it to `false` to model the affine warp occupying the slot.
    pub issue_slot: &'a mut bool,
    /// Shared statistics sink.
    pub stats: &'a mut SimStats,
    /// Event tracer (a `NullTracer` outside traced runs). Coprocessors
    /// guard emission with `tracer.enabled()`.
    pub tracer: &'a mut dyn Tracer,
}

/// Hooks implemented by DAC, CAE, and MTA. All methods default to no-ops so
/// implementations override only what they need.
pub trait CoProcessor {
    /// Identifying name for reports.
    fn name(&self) -> &'static str;

    /// A kernel is about to run on `num_sms` SMs.
    fn on_kernel_launch(&mut self, program: &Program, num_sms: usize) {
        let _ = (program, num_sms);
    }

    /// The command processor bound `sm` to kernel `kernel` (`None` =
    /// unbound). Single-kernel coprocessors ignore this; the multi-kernel
    /// router (`MultiCoProcessor`) re-targets the SM's hooks at the owning
    /// kernel's coprocessor.
    fn on_sm_bound(&mut self, sm: usize, kernel: Option<usize>) {
        let _ = (sm, kernel);
    }

    /// Is the coprocessor drained *as far as `sm` is concerned* — no
    /// per-SM queue entries and no in-flight fabric requests that will
    /// come back to this SM? The command processor only re-binds an SM to
    /// a different kernel when this holds, so responses never route to a
    /// stale owner. The default conservatively reuses the global
    /// [`CoProcessor::quiescent`].
    fn sm_quiescent(&self, sm: usize) -> bool {
        let _ = sm;
        self.quiescent()
    }

    /// CTA `cta_linear` occupied `slot` on `sm`, owning warp ids `warps`.
    fn on_cta_launch(&mut self, sm: usize, slot: usize, cta_linear: u64, warps: &[usize]) {
        let _ = (sm, slot, cta_linear, warps);
    }

    /// The CTA in `slot` on `sm` finished and its resources were freed.
    fn on_cta_retire(&mut self, sm: usize, slot: usize) {
        let _ = (sm, slot);
    }

    /// All warps of the CTA in `slot` passed a `bar.sync`.
    fn on_barrier_release(&mut self, sm: usize, slot: usize) {
        let _ = (sm, slot);
    }

    /// May `warp` issue `instr` this cycle? DAC returns false when a
    /// dequeue operand is not ready.
    fn can_issue(&mut self, sm: usize, warp: usize, instr: &Instr, stats: &mut SimStats) -> bool {
        let _ = (sm, warp, instr, stats);
        true
    }

    /// Issue cost of `instr` on `warp` (CAE redirects affine-eligible
    /// instructions to its affine units). Called exactly once per issued
    /// instruction, in issue order — implementations may update internal
    /// state (e.g. CAE's register affinity tags). `active` is the warp's
    /// current active-lane mask (CAE loses affine tracking under
    /// divergence).
    fn issue_cost(
        &mut self,
        sm: usize,
        warp: usize,
        instr: &Instr,
        active: u32,
        stats: &mut SimStats,
    ) -> IssueCost {
        let _ = (sm, warp, instr, active, stats);
        IssueCost::Normal
    }

    /// Pop the next address record for `warp` (issue of `ld/st [deq.*]`).
    fn deq_record(&mut self, sm: usize, warp: usize) -> Option<AddrRecord> {
        let _ = (sm, warp);
        None
    }

    /// Pop the next predicate bit vector for `warp` (`@deq.pred bra`).
    fn deq_pred_bits(&mut self, sm: usize, warp: usize) -> Option<u32> {
        let _ = (sm, warp);
        None
    }

    /// A warp memory instruction issued `lines` (after coalescing).
    fn observe_mem(
        &mut self,
        sm: usize,
        warp: usize,
        pc: usize,
        space: Space,
        is_store: bool,
        lines: &[u64],
    ) {
        let _ = (sm, warp, pc, space, is_store, lines);
    }

    /// A fabric response addressed to this coprocessor's client id.
    fn on_response(&mut self, resp: &MemResponse) {
        let _ = resp;
    }

    /// Per-SM, per-cycle execution (affine warp, expansion units,
    /// prefetch bookkeeping). No fabric access: requests captured here are
    /// submitted by [`CoProcessor::pump`] in the replay phase, preserving
    /// the serial SM-index submission order under the threaded runner.
    fn step(&mut self, ctx: &mut CoCtx<'_>) {
        let _ = ctx;
    }

    /// Submit this SM's fabric traffic for the cycle (AEU early requests,
    /// MTA prefetches). Runs after every SM's [`CoProcessor::step`] and
    /// issue phase, invoked in SM-index order by both the serial and
    /// threaded runners — the single point where coprocessors touch shared
    /// fabric state.
    fn pump(
        &mut self,
        sm: usize,
        now: u64,
        fabric: &mut MemoryFabric,
        stats: &mut SimStats,
        tracer: &mut dyn Tracer,
    ) {
        let _ = (sm, now, fabric, stats, tracer);
    }

    /// Does [`CoProcessor::step`] need the prefetch-buffer counter
    /// snapshot (`CoCtx::pbuf_stats`) this cycle? Computing it walks every
    /// port, so the run loop only takes the snapshot when some coprocessor
    /// asks (MTA, on throttle-evaluation deadlines).
    fn wants_pbuf_stats(&self, now: u64) -> bool {
        let _ = now;
        false
    }

    /// Is the coprocessor fully drained (no queued work that should keep
    /// the simulation alive)?
    fn quiescent(&self) -> bool {
        true
    }

    /// Earliest future cycle at which [`CoProcessor::step`] could behave
    /// differently from how it behaved at `now`, assuming no SM or fabric
    /// event occurs in between. Used by the idle-cycle fast-forward: when a
    /// whole cycle makes no progress, the GPU loop jumps to the minimum of
    /// this and the SM/fabric wake times instead of stepping one cycle at a
    /// time. Implementations with purely event-driven state (DAC, CAE) keep
    /// the default `u64::MAX`; time-driven state (MTA's periodic throttle
    /// re-evaluation) must report its next deadline.
    fn ff_wake(&self, now: u64) -> u64 {
        let _ = now;
        u64::MAX
    }
}

/// The baseline GPU: no coprocessor at all.
#[derive(Debug, Default, Clone, Copy)]
pub struct NullCoProcessor;

impl CoProcessor for NullCoProcessor {
    fn name(&self) -> &'static str {
        "baseline"
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn null_coproc_defaults() {
        let mut c = NullCoProcessor;
        let mut stats = SimStats::default();
        assert_eq!(c.name(), "baseline");
        assert!(c.can_issue(0, 0, &Instr::Exit, &mut stats));
        assert_eq!(
            c.issue_cost(0, 0, &Instr::Exit, u32::MAX, &mut stats),
            IssueCost::Normal
        );
        assert!(c.deq_record(0, 0).is_none());
        assert!(c.deq_pred_bits(0, 0).is_none());
        assert!(c.quiescent());
    }
}

//! The two-level Affine SIMT Stack (paper §4.5).
//!
//! The affine warp "executes" all threads of a CTA in lock-step, so its
//! reconvergence stack carries one lane mask *per non-affine warp*. The
//! Warp Level Stack (WLS) encodes each warp's mask in two bits — `11` (all
//! active), `00` (none), `10` (mixed) — and only mixed warps touch their
//! Per Warp Stack (PWS). We track full masks for correctness and count the
//! WLS/PWS update split for the energy model.

/// One affine-stack entry: a path with per-warp lane masks.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct AffineStackEntry {
    /// Current PC of this path (indices into the affine stream).
    pub pc: usize,
    /// Reconvergence PC (`usize::MAX` = exit).
    pub rpc: usize,
    /// Active lanes per warp of the CTA.
    pub masks: Vec<u32>,
}

impl AffineStackEntry {
    fn live(&self, exited: &[u32]) -> bool {
        self.masks.iter().zip(exited).any(|(m, e)| m & !e != 0)
    }
}

/// The affine warp's SIMT stack for one CTA.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct AffineStack {
    entries: Vec<AffineStackEntry>,
    exited: Vec<u32>,
    /// Warp-level (2-bit) mask updates — cheap WLS traffic.
    pub wls_updates: u64,
    /// Per-thread mask updates (mixed warps) — PWS traffic.
    pub pws_updates: u64,
}

impl AffineStack {
    /// Start at PC 0 with the CTA's launch masks.
    pub fn new(launch_masks: Vec<u32>) -> Self {
        let n = launch_masks.len();
        AffineStack {
            entries: vec![AffineStackEntry {
                pc: 0,
                rpc: usize::MAX,
                masks: launch_masks,
            }],
            exited: vec![0; n],
            wls_updates: 0,
            pws_updates: 0,
        }
    }

    /// Current PC.
    ///
    /// # Panics
    ///
    /// Panics if the affine warp already finished.
    pub fn pc(&self) -> usize {
        self.entries.last().expect("affine stack empty").pc
    }

    /// Active lanes of `warp` on the current path.
    pub fn active(&self, warp: usize) -> u32 {
        let top = self.entries.last().expect("affine stack empty");
        top.masks[warp] & !self.exited[warp]
    }

    /// All warps' active masks on the current path.
    pub fn active_masks(&self) -> Vec<u32> {
        let top = self.entries.last().expect("affine stack empty");
        top.masks
            .iter()
            .zip(&self.exited)
            .map(|(m, e)| m & !e)
            .collect()
    }

    /// Finished?
    pub fn done(&self) -> bool {
        self.entries.is_empty()
    }

    /// Current depth (hardware budget: 8 entries, §4.8).
    pub fn depth(&self) -> usize {
        self.entries.len()
    }

    fn count_updates(&mut self, masks: &[u32]) {
        for &m in masks {
            self.wls_updates += 1;
            if m != 0 && m != u32::MAX {
                self.pws_updates += 1;
            }
        }
    }

    fn settle(&mut self) {
        loop {
            let Some(top) = self.entries.last() else {
                return;
            };
            if !top.live(&self.exited) {
                self.entries.pop();
                continue;
            }
            if self.entries.len() > 1 && top.pc == top.rpc {
                self.entries.pop();
                continue;
            }
            return;
        }
    }

    /// Advance past a non-control instruction.
    pub fn advance(&mut self) {
        self.entries.last_mut().expect("affine stack empty").pc += 1;
        self.settle();
    }

    /// Jump the current path to an arbitrary PC (barrier bookkeeping never
    /// needs this; kept for engine-level control).
    pub fn set_pc(&mut self, pc: usize) {
        self.entries.last_mut().expect("affine stack empty").pc = pc;
        self.settle();
    }

    /// Execute a branch with per-warp taken masks. Semantics mirror the
    /// per-warp [`simt_sim::SimtStack`] exactly (taken path runs first), so
    /// the affine and non-affine streams visit paths in the same order —
    /// that ordering is what keeps enq/deq FIFOs aligned.
    pub fn branch(&mut self, taken: &[u32], target: usize, rpc: usize) -> bool {
        let active = self.active_masks();
        let taken: Vec<u32> = taken.iter().zip(&active).map(|(t, a)| t & a).collect();
        let not_taken: Vec<u32> = active.iter().zip(&taken).map(|(a, t)| a & !t).collect();
        let fallthrough = self.pc() + 1;
        let any_taken = taken.iter().any(|&m| m != 0);
        let any_nt = not_taken.iter().any(|&m| m != 0);
        self.count_updates(&taken);
        if !any_nt {
            self.entries.last_mut().unwrap().pc = target;
            self.settle();
            false
        } else if !any_taken {
            self.entries.last_mut().unwrap().pc = fallthrough;
            self.settle();
            false
        } else {
            self.entries.last_mut().unwrap().pc = rpc;
            self.entries.push(AffineStackEntry {
                pc: fallthrough,
                rpc,
                masks: not_taken,
            });
            self.entries.push(AffineStackEntry {
                pc: target,
                rpc,
                masks: taken,
            });
            self.settle();
            true
        }
    }

    /// Currently active threads exit.
    pub fn exit(&mut self) {
        let active = self.active_masks();
        for (e, a) in self.exited.iter_mut().zip(&active) {
            *e |= a;
        }
        self.settle();
        if self.entries.iter().all(|en| !en.live(&self.exited)) {
            self.entries.clear();
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn uniform_flow_two_warps() {
        let mut s = AffineStack::new(vec![u32::MAX, u32::MAX]);
        s.advance();
        assert_eq!(s.pc(), 1);
        assert!(!s.branch(&[u32::MAX, u32::MAX], 5, 9));
        assert_eq!(s.pc(), 5);
        s.exit();
        assert!(s.done());
    }

    #[test]
    fn warp_level_divergence() {
        // Warp 0 takes, warp 1 falls through — whole-warp granularity.
        let mut s = AffineStack::new(vec![u32::MAX, u32::MAX]);
        assert!(s.branch(&[u32::MAX, 0], 10, 20));
        assert_eq!(s.pc(), 10);
        assert_eq!(s.active(0), u32::MAX);
        assert_eq!(s.active(1), 0);
        // Walk taken path to rpc.
        for _ in 10..20 {
            s.advance();
        }
        // Now the not-taken path (warp 1) at the fallthrough.
        assert_eq!(s.pc(), 1);
        assert_eq!(s.active(0), 0);
        assert_eq!(s.active(1), u32::MAX);
        for _ in 1..20 {
            s.advance();
        }
        assert_eq!(s.pc(), 20);
        assert_eq!(s.active(0), u32::MAX);
        assert_eq!(s.active(1), u32::MAX);
    }

    #[test]
    fn intra_warp_divergence_counts_pws() {
        let mut s = AffineStack::new(vec![u32::MAX]);
        s.branch(&[0x0000_FFFF], 4, 8);
        assert!(s.pws_updates > 0, "mixed warp must touch the PWS");
        assert_eq!(s.active(0), 0x0000_FFFF);
    }

    #[test]
    fn uniform_warps_avoid_pws() {
        let mut s = AffineStack::new(vec![u32::MAX, u32::MAX]);
        s.branch(&[u32::MAX, 0], 4, 8);
        assert_eq!(s.pws_updates, 0, "all-or-nothing warps are WLS-only");
        assert!(s.wls_updates > 0);
    }

    #[test]
    fn partial_launch_mask() {
        // Last warp has 8 live threads.
        let mut s = AffineStack::new(vec![u32::MAX, 0xFF]);
        assert_eq!(s.active(1), 0xFF);
        s.exit();
        assert!(s.done());
    }

    #[test]
    fn matches_simt_stack_path_order() {
        // The affine stack must visit taken-then-fallthrough like the
        // per-warp stack, or enq/deq order would skew.
        let mut a = AffineStack::new(vec![u32::MAX]);
        let mut w = simt_sim::SimtStack::new(u32::MAX);
        a.branch(&[0xF0F0_F0F0], 7, 12);
        w.branch(0xF0F0_F0F0, 7, 12);
        assert_eq!(a.pc(), w.pc());
        for _ in 0..5 {
            a.advance();
            w.advance();
            assert_eq!(a.pc(), w.pc());
            assert_eq!(a.active(0), w.active_mask());
        }
    }
}

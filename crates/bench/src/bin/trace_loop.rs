//! Minimal timing probe: one warp, N-iteration streaming loop.
use simt_ir::{CmpOp, KernelBuilder, LaunchConfig, Op, Operand, Program, Space, Width};
use simt_mem::SparseMemory;
use simt_sim::{GpuConfig, GpuSim};

fn main() {
    let mut b = KernelBuilder::new("probe", 3);
    let tid = b.tid_linear_x();
    let off = b.alu2(Op::Shl, Operand::Reg(tid), Operand::Imm(2));
    let a0 = b.alu2(Op::Add, Operand::Param(0), Operand::Reg(off));
    let o0 = b.alu2(Op::Add, Operand::Param(1), Operand::Reg(off));
    let i = b.mov(Operand::Imm(0));
    b.label("loop");
    let v = b.ld(Space::Global, a0, 0, Width::W32);
    let r = b.alu2(Op::Add, Operand::Reg(v), Operand::Imm(1));
    b.st(Space::Global, o0, 0, Operand::Reg(r), Width::W32);
    b.alu_into(a0, Op::Add, &[Operand::Reg(a0), Operand::Imm(4096)]);
    b.alu_into(o0, Op::Add, &[Operand::Reg(o0), Operand::Imm(4096)]);
    b.alu_into(i, Op::Add, &[Operand::Reg(i), Operand::Imm(1)]);
    let p = b.setp(CmpOp::Lt, Operand::Reg(i), Operand::Param(2));
    b.bra_if(p, "loop");
    b.exit();
    let kernel = b.build();
    for (ctas, num_sms, iters) in [
        (15u32, 15usize, 6u64),
        (30, 15, 6),
        (60, 15, 6),
        (120, 15, 6),
    ] {
        let warps = 4u32;
        let launch = LaunchConfig::linear(ctas, warps * 32, vec![0x100_0000, 0x200_0000, iters]);
        let prog = Program::new(kernel.clone(), launch.clone()).unwrap();
        let mut mem = SparseMemory::new();
        let gpu = GpuSim::new(GpuConfig {
            num_sms,
            ..GpuConfig::gtx480()
        });
        let rep = gpu.run(&prog, &mut mem);
        println!("BASE ctas {ctas:3} sms {num_sms:2}: cycles {}", rep.cycles);

        let analysis = affine::AffineAnalysis::run(&kernel);
        let dk = affine::decouple(&kernel, &analysis);
        let dprog = Program::new(dk.non_affine.clone(), launch.clone()).unwrap();
        let mut dac = dac_core::Dac::new(dac_core::DacConfig::paper(), dk);
        let mut mem2 = SparseMemory::new();
        let rep2 = gpu.run_with(&dprog, &mut mem2, &mut dac);
        println!(
            "DAC  ctas {ctas:3} sms {num_sms:2}: cycles {} (speedup {:.2}) deq_data {} deq_empty {} aeu {} enq_full {}",
            rep2.cycles,
            rep.cycles as f64 / rep2.cycles as f64,
            rep2.stats.deq_data_stalls,
            rep2.stats.deq_empty_stalls,
            rep2.stats.aeu_records,
            rep2.stats.enq_full_stalls
        );
    }
}

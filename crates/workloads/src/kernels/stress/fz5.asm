.kernel fz5
.params 4
    mad r0, %ctaid.x, %ntid.x, %tid.x;
    and r1, %tid.x, 31;
    shr r2, r0, 5;
    mad r3, r0, 4, %p2;
    st.global.b32 [r3], r0;
    and r4, r2, 1;
    setp.eq p0, r4, 1;
    sel r5, r0, r2, p0;
    and r6, r1, 31;
    setp.ge p1, r6, 30;
    @!p1 bra L0;
    and r7, r2, 3;
    setp.le p2, r7, 3;
    sel r8, r5, r2, p2;
    and r9, r5, 3;
    setp.eq p3, r9, 1;
    @p3 bra L1;
    setp.eq p4, r9, 2;
    @p4 bra L2;
    setp.eq p5, r9, 3;
    @p5 bra L3;
    and r10, r8, 7;
    mad r11, r10, 4, %p3;
    and r12, r2, 65535;
    atom.max r13, [r11+0], r12;
    bra L4;
L1:
    and r14, r0, 1;
    setp.eq p6, r14, 1;
    @p6 bra L5;
    shr r15, r0, 3;
    sub r16, r0, 0;
    bra L6;
L5:
    shr r17, r15, 1;
    bra L6;
L6:
    bra L4;
L2:
    xor r8, r8, r16;
    and r18, r1, 7;
    setp.le p7, r18, 7;
    mad r19, r0, 4, %p2;
    @p7 st.global.b32 [r19], r2;
    bra L4;
L3:
    and r20, r16, 1;
    setp.ne p8, r20, 1;
    mad r21, r0, 4, %p2;
    @p8 st.global.b32 [r21], r2;
    and r22, r17, 31;
    setp.ge p9, r22, 30;
    sel r23, r17, r2, p9;
    bra L4;
L4:
    and r24, r8, 3;
    setp.ne p10, r24, 3;
    @!p10 bra L7;
    and r25, r23, 3;
    setp.eq p11, r25, 1;
    @p11 bra L8;
    setp.eq p12, r25, 2;
    @p12 bra L9;
    setp.eq p13, r25, 3;
    @p13 bra L10;
    add r26, r2, 20;
    or r27, r26, r17;
    bra L11;
L8:
    and r28, r2, 3;
    setp.eq p14, r28, 2;
    mad r29, r0, 4, %p2;
    @p14 st.global.b32 [r29], r26;
    add r30, r17, 5;
    bra L11;
L9:
    min r31, r5, r1;
    add r32, r17, 14;
    bra L11;
L10:
    mul r33, r0, r15;
    rem r34, r27, 6;
    bra L11;
L11:
    xor r35, r8, r1;
    bra L7;
L7:
    bra L12;
L0:
    and r36, r33, 7;
    mad r37, r36, 4, %p3;
    and r38, r26, 65535;
    atom.max r39, [r37+0], r38;
    mad r40, r0, 4, %p2;
    st.global.b32 [r40], r31;
L12:
    max r41, r33, r16;
    and r42, r32, 7;
    mov r43, 0;
L16:
    setp.ge p15, r43, r42;
    @p15 bra L13;
    and r44, r30, 1;
    setp.eq p16, r44, 1;
    @p16 bra L14;
    and r45, r27, 63;
    add r15, r15, r33;
    bra L15;
L14:
    add r46, r1, 59;
    and r47, r1, 255;
    cvt.f32.s64 r48, r47;
    mad.f32 r49, r48, 1088421888, 1088421888;
    cvt.s64.f32 r50, r49;
    bra L15;
L15:
    add r43, r43, 1;
    bra L16;
L13:
    and r51, r2, 3;
    setp.eq p17, r51, 1;
    @p17 bra L17;
    setp.eq p18, r51, 2;
    @p18 bra L18;
    setp.eq p19, r51, 3;
    @p19 bra L19;
    mad r52, r0, 1, 62;
    mad r53, r52, 4, %p1;
    ld.global.b32 r54, [r53];
    bra L20;
L17:
    mad r55, r45, r17, r54;
    mad r56, r0, 4, %p2;
    st.global.b32 [r56], r46;
    bra L20;
L18:
    and r57, r2, 31;
    setp.gt p20, r57, 31;
    sel r58, r8, r16, p20;
    bra L20;
L19:
    sub r59, r2, 2;
    bra L20;
L20:
    mad r60, r0, 4, 45;
    mad r61, r60, 4, %p1;
    ld.global.b32 r62, [r61];
    max r58, r58, r59;
    and r63, r32, 7;
    mov r64, 0;
L38:
    setp.ge p21, r64, r63;
    @p21 bra L21;
    and r65, r8, 3;
    setp.eq p22, r65, 1;
    @p22 bra L22;
    setp.eq p23, r65, 2;
    @p23 bra L23;
    setp.eq p24, r65, 3;
    @p24 bra L24;
    and r66, r23, 7;
    mad r67, r66, 4, %p3;
    and r68, r15, 65535;
    atom.max r69, [r67+0], r68;
    and r70, r33, 63;
    setp.le p25, r70, 41;
    mad r71, r0, 4, %p2;
    @p25 st.global.b32 [r71], r41;
    bra L25;
L22:
    and r72, r62, 3;
    setp.gt p26, r72, 1;
    @!p26 bra L26;
    add r73, r16, 38;
    bra L27;
L26:
    mad r74, r0, 4, 32;
    mad r75, r74, 4, %p1;
    ld.global.b32 r76, [r75];
    rem r77, r17, 4;
L27:
    mad r78, r0, 1, 56;
    mad r79, r78, 4, %p0;
    ld.global.b32 r80, [r79];
    bra L25;
L23:
    and r81, r76, 1;
    setp.eq p27, r81, 1;
    @p27 bra L28;
    mad r82, r0, 1, 13;
    mad r83, r82, 4, %p1;
    ld.global.b32 r84, [r83];
    mad r85, r0, 4, 50;
    mad r86, r85, 4, %p0;
    ld.global.b32 r87, [r86];
    bra L29;
L28:
    shl r88, r54, 3;
    bra L29;
L29:
    sub r89, r8, 20;
    bra L25;
L24:
    mad r90, r80, 4, 47;
    and r91, r90, 4095;
    mad r92, r91, 4, %p0;
    ld.global.b32 r93, [r92];
    bra L25;
L25:
    and r94, r16, 1;
    setp.eq p28, r94, 1;
    @p28 bra L30;
    and r95, r43, 3;
    setp.eq p29, r95, 1;
    @p29 bra L31;
    setp.eq p30, r95, 2;
    @p30 bra L32;
    setp.eq p31, r95, 3;
    @p31 bra L33;
    and r96, r33, 3;
    setp.ne p32, r96, 2;
    sel r97, r89, r50, p32;
    bra L34;
L31:
    mad r98, r0, 4, 10;
    mad r99, r98, 4, %p0;
    ld.global.b32 r100, [r99];
    mad r101, r0, 4, %p2;
    st.global.b32 [r101], r80;
    bra L34;
L32:
    mad r102, r0, 1, 37;
    mad r103, r102, 4, %p1;
    ld.global.b32 r104, [r103];
    bra L34;
L33:
    mad r105, r0, 4, %p2;
    st.global.b32 [r105], r88;
    bra L34;
L34:
    bra L35;
L30:
    mov r106, 3;
    mov r107, 0;
L37:
    setp.ge p33, r107, r106;
    @p33 bra L36;
    add r108, r5, r77;
    add r107, r107, 1;
    bra L37;
L36:
    add r109, r55, 17;
    bra L35;
L35:
    add r64, r64, 1;
    bra L38;
L21:
    mad r110, r0, 4, %p2;
    st.global.b32 [r110], r109;
    exit;

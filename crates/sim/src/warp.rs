//! Per-warp architectural state: registers, predicates, scoreboard, status.

use crate::stack::SimtStack;
use simt_ir::{Dim3, LaunchConfig, Operand, PredId, RegId, SpecialReg, Value};
use std::collections::HashMap;

/// Full architectural + pipeline state of one resident warp.
#[derive(Debug, Clone)]
pub struct WarpState {
    /// Warp index within its SM.
    pub id: usize,
    /// CTA slot the warp belongs to.
    pub cta_slot: usize,
    /// Linearized CTA index within the grid.
    pub cta_linear: u64,
    /// Warp index within the CTA.
    pub warp_in_cta: usize,
    /// SIMT reconvergence stack (holds the PC).
    pub stack: SimtStack,
    /// General registers: `num_regs × 32` lanes.
    regs: Vec<Value>,
    /// Predicate registers, one 32-bit lane mask each.
    preds: Vec<u32>,
    /// Outstanding writes per register (scoreboard); a register with a
    /// nonzero count blocks dependent issue.
    pending_regs: HashMap<RegId, u32>,
    /// Outstanding predicate writes.
    pending_preds: HashMap<PredId, u32>,
    /// Waiting at a `bar.sync`.
    pub at_barrier: bool,
    /// Lanes that were live at launch (partial last warp of a CTA).
    pub launch_mask: u32,
    /// Cycle of the last issued instruction (scheduler bookkeeping).
    pub last_issue: u64,
}

impl WarpState {
    /// Create a warp with `num_regs`/`num_preds` storage and `mask` live
    /// lanes.
    pub fn new(
        id: usize,
        cta_slot: usize,
        cta_linear: u64,
        warp_in_cta: usize,
        num_regs: u16,
        num_preds: u16,
        mask: u32,
    ) -> Self {
        WarpState {
            id,
            cta_slot,
            cta_linear,
            warp_in_cta,
            stack: SimtStack::new(mask),
            regs: vec![0; num_regs as usize * 32],
            preds: vec![0; num_preds as usize],
            pending_regs: HashMap::new(),
            pending_preds: HashMap::new(),
            at_barrier: false,
            launch_mask: mask,
            last_issue: 0,
        }
    }

    /// Warp finished (all lanes exited)?
    pub fn done(&self) -> bool {
        self.stack.done()
    }

    /// Read register `r` of `lane`.
    #[inline]
    pub fn reg(&self, r: RegId, lane: usize) -> Value {
        self.regs[r as usize * 32 + lane]
    }

    /// Write register `r` of `lane`.
    #[inline]
    pub fn set_reg(&mut self, r: RegId, lane: usize, v: Value) {
        self.regs[r as usize * 32 + lane] = v;
    }

    /// Read predicate `p` as a lane mask.
    #[inline]
    pub fn pred(&self, p: PredId) -> u32 {
        self.preds[p as usize]
    }

    /// Overwrite predicate `p` on `mask` lanes with per-lane `bits`.
    #[inline]
    pub fn set_pred_masked(&mut self, p: PredId, bits: u32, mask: u32) {
        let cur = self.preds[p as usize];
        self.preds[p as usize] = (cur & !mask) | (bits & mask);
    }

    /// Evaluate an operand for `lane` given the launch geometry and this
    /// warp's CTA coordinates.
    pub fn operand(
        &self,
        op: Operand,
        lane: usize,
        launch: &LaunchConfig,
        cta_coords: (u32, u32, u32),
    ) -> Value {
        match op {
            Operand::Reg(r) => self.reg(r, lane),
            Operand::Imm(i) => i as Value,
            Operand::Param(p) => launch.params[p as usize],
            Operand::Special(s) => {
                let (tx, ty, tz) = self.thread_coords(lane, launch.block);
                let v = match s {
                    SpecialReg::TidX => tx,
                    SpecialReg::TidY => ty,
                    SpecialReg::TidZ => tz,
                    SpecialReg::CtaIdX => cta_coords.0,
                    SpecialReg::CtaIdY => cta_coords.1,
                    SpecialReg::CtaIdZ => cta_coords.2,
                    SpecialReg::NTidX => launch.block.x,
                    SpecialReg::NTidY => launch.block.y,
                    SpecialReg::NTidZ => launch.block.z,
                    SpecialReg::NCtaIdX => launch.grid.x,
                    SpecialReg::NCtaIdY => launch.grid.y,
                    SpecialReg::NCtaIdZ => launch.grid.z,
                };
                v as Value
            }
        }
    }

    /// `(tid.x, tid.y, tid.z)` of `lane` in this warp.
    pub fn thread_coords(&self, lane: usize, block: Dim3) -> (u32, u32, u32) {
        let linear = self.warp_in_cta as u64 * 32 + lane as u64;
        block.unflatten(linear)
    }

    /// Linear thread index within the CTA for `lane`.
    pub fn thread_linear(&self, lane: usize) -> u64 {
        self.warp_in_cta as u64 * 32 + lane as u64
    }

    // ----- scoreboard -----

    /// Is register `r` awaiting a writeback?
    pub fn reg_pending(&self, r: RegId) -> bool {
        self.pending_regs.get(&r).copied().unwrap_or(0) > 0
    }

    /// Is predicate `p` awaiting a writeback?
    pub fn pred_pending(&self, p: PredId) -> bool {
        self.pending_preds.get(&p).copied().unwrap_or(0) > 0
    }

    /// Mark one outstanding write to register `r`.
    pub fn mark_reg_pending(&mut self, r: RegId) {
        *self.pending_regs.entry(r).or_insert(0) += 1;
    }

    /// Mark one outstanding write to predicate `p`.
    pub fn mark_pred_pending(&mut self, p: PredId) {
        *self.pending_preds.entry(p).or_insert(0) += 1;
    }

    /// Retire one outstanding write to register `r`.
    pub fn release_reg(&mut self, r: RegId) {
        if let Some(c) = self.pending_regs.get_mut(&r) {
            *c = c.saturating_sub(1);
        }
    }

    /// Retire one outstanding write to predicate `p`.
    pub fn release_pred(&mut self, p: PredId) {
        if let Some(c) = self.pending_preds.get_mut(&p) {
            *c = c.saturating_sub(1);
        }
    }

    /// Any writeback still outstanding? (used for drain checks)
    pub fn scoreboard_clear(&self) -> bool {
        self.pending_regs.values().all(|&c| c == 0) && self.pending_preds.values().all(|&c| c == 0)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn launch() -> LaunchConfig {
        LaunchConfig {
            grid: Dim3::xy(4, 2),
            block: Dim3::xy(16, 4), // 64 threads → 2 warps
            params: vec![0xAA, 0xBB],
        }
    }

    #[test]
    fn reg_and_pred_storage() {
        let mut w = WarpState::new(0, 0, 0, 0, 4, 2, u32::MAX);
        w.set_reg(3, 31, 99);
        assert_eq!(w.reg(3, 31), 99);
        assert_eq!(w.reg(3, 0), 0);
        w.set_pred_masked(1, 0b1010, 0b1111);
        assert_eq!(w.pred(1), 0b1010);
        w.set_pred_masked(1, 0b0101, 0b0011);
        assert_eq!(w.pred(1), 0b1001);
    }

    #[test]
    fn thread_coords_in_2d_block() {
        let l = launch();
        // Warp 1 of the CTA covers linear threads 32..64.
        let w = WarpState::new(1, 0, 5, 1, 1, 1, u32::MAX);
        // Linear 32 → (tid.x=0, tid.y=2) in a 16×4 block.
        assert_eq!(w.thread_coords(0, l.block), (0, 2, 0));
        assert_eq!(w.thread_coords(17, l.block), (1, 3, 0));
    }

    #[test]
    fn operand_specials_and_params() {
        let l = launch();
        let w = WarpState::new(0, 0, 6, 0, 1, 1, u32::MAX);
        let cta = l.grid.unflatten(6); // (2, 1, 0)
        assert_eq!(
            w.operand(Operand::Special(SpecialReg::CtaIdX), 0, &l, cta),
            2
        );
        assert_eq!(
            w.operand(Operand::Special(SpecialReg::CtaIdY), 0, &l, cta),
            1
        );
        assert_eq!(
            w.operand(Operand::Special(SpecialReg::NTidX), 0, &l, cta),
            16
        );
        assert_eq!(w.operand(Operand::Param(1), 0, &l, cta), 0xBB);
        assert_eq!(w.operand(Operand::Imm(-1), 0, &l, cta), u64::MAX);
    }

    #[test]
    fn scoreboard_counts() {
        let mut w = WarpState::new(0, 0, 0, 0, 2, 1, u32::MAX);
        assert!(!w.reg_pending(0));
        w.mark_reg_pending(0);
        w.mark_reg_pending(0);
        assert!(w.reg_pending(0));
        w.release_reg(0);
        assert!(w.reg_pending(0));
        w.release_reg(0);
        assert!(!w.reg_pending(0));
        assert!(w.scoreboard_clear());
    }
}

//! The 11 compute-intensive benchmarks (paper Table 2, left column).
//!
//! Each synthetic kernel reproduces the address structure and arithmetic
//! flavour of its namesake: scalar parameter loops with SFU-heavy bodies
//! (CP/MQ/TP/BS), mod-addressed butterflies (FFT), 2-D blocks with an
//! innermost dimension below the warp width (BP — the case where CAE
//! degrades to scalar-only, §5.4), clamped stencils exercising divergent
//! affine tuples via `min`/`max` (SR1/HS), shared-memory tables (AES) and
//! dynamic-programming sweeps (PF).

use super::{init_f32, init_u32, tid_elem_addr, ARR_A, ARR_B, ARR_C};
use crate::{PaperClass, Suite, Workload};
use simt_ir::{CmpOp, Dim3, KernelBuilder, LaunchConfig, Op, Operand, Space, SpecialReg, Width};
use simt_mem::SparseMemory;

fn f32imm(v: f32) -> Operand {
    Operand::Imm(v.to_bits() as i64)
}

/// CP — coulombic potential: per grid point, accumulate `q_j / dist_j`
/// over a scalar loop of atoms (GPGPU-sim distribution).
pub fn cp(scale: u32) -> Workload {
    let ctas = 120 * scale;
    let block = 128u32;
    let natoms = 24u64;
    let n = (ctas * block) as usize;
    let mut b = KernelBuilder::new("cp", 4);
    let (tid, out_addr) = tid_elem_addr(&mut b, 1, 2);
    // Grid-point coordinate from tid.
    let gx = b.alu1(Op::I2F, Operand::Reg(tid));
    let acc = b.mov(f32imm(0.0));
    let i = b.mov(Operand::Imm(0));
    let atom_addr = b.mov(Operand::Param(0));
    b.label("atoms");
    // Atom data: (x, q) pairs — scalar loads (same address for all threads).
    let ax = b.ld(Space::Global, atom_addr, 0, Width::W32);
    let aq = b.ld(Space::Global, atom_addr, 4, Width::W32);
    let dx = b.alu2(Op::FSub, Operand::Reg(gx), Operand::Reg(ax));
    let d2 = b.alu3(Op::FMad, Operand::Reg(dx), Operand::Reg(dx), f32imm(0.05));
    let dist = b.alu1(Op::FSqrt, Operand::Reg(d2));
    let inv = b.alu1(Op::FRcp, Operand::Reg(dist));
    b.alu_into(
        acc,
        Op::FMad,
        &[Operand::Reg(aq), Operand::Reg(inv), Operand::Reg(acc)],
    );
    b.alu_into(
        atom_addr,
        Op::Add,
        &[Operand::Reg(atom_addr), Operand::Imm(8)],
    );
    b.alu_into(i, Op::Add, &[Operand::Reg(i), Operand::Imm(1)]);
    let p = b.setp(CmpOp::Lt, Operand::Reg(i), Operand::Param(2));
    b.bra_if(p, "atoms");
    b.st(Space::Global, out_addr, 0, Operand::Reg(acc), Width::W32);
    b.exit();
    let mut memory = SparseMemory::new();
    init_f32(&mut memory, ARR_A, natoms as usize * 2, 101, 0.1, 50.0);
    Workload {
        name: "CP",
        abbr: "CP",
        suite: Suite::GpgpuSim,
        paper_class: PaperClass::Compute,
        kernel: b.build(),
        launch: LaunchConfig::linear(ctas, block, vec![ARR_A, ARR_B, natoms, n as u64]),
        memory,
        output: (ARR_B, n),
    }
}

/// STO — storeGPU: load a block of words and run many mixing rounds of
/// integer arithmetic before storing a digest.
pub fn sto(scale: u32) -> Workload {
    let ctas = 120 * scale;
    let block = 128u32;
    let n = (ctas * block) as usize;
    let mut b = KernelBuilder::new("sto", 2);
    let (_tid, addr) = tid_elem_addr(&mut b, 0, 3);
    let v0 = b.ld(Space::Global, addr, 0, Width::W32);
    let v1 = b.ld(Space::Global, addr, 4, Width::W32);
    let h = b.mov(Operand::Imm(0x9e37_79b9));
    let r = b.mov(Operand::Imm(0));
    b.label("mix");
    // A round of data mixing (non-affine by design: it computes on data).
    let t1 = b.alu2(Op::Xor, Operand::Reg(h), Operand::Reg(v0));
    let t2 = b.alu2(Op::Shl, Operand::Reg(t1), Operand::Imm(5));
    let t3 = b.alu2(Op::Shr, Operand::Reg(t1), Operand::Imm(7));
    let t4 = b.alu2(Op::Add, Operand::Reg(t2), Operand::Reg(t3));
    let t5 = b.alu2(Op::Xor, Operand::Reg(t4), Operand::Reg(v1));
    let t6 = b.alu3(Op::Mad, Operand::Reg(t5), Operand::Imm(33), Operand::Reg(h));
    b.alu_into(h, Op::Add, &[Operand::Reg(t6), Operand::Imm(0x85eb)]);
    b.alu_into(r, Op::Add, &[Operand::Reg(r), Operand::Imm(1)]);
    let p = b.setp(CmpOp::Lt, Operand::Reg(r), Operand::Imm(20));
    b.bra_if(p, "mix");
    let (_t2, out) = {
        let tid = b.tid_linear_x();
        let off = b.alu2(Op::Shl, Operand::Reg(tid), Operand::Imm(2));
        let a = b.alu2(Op::Add, Operand::Param(1), Operand::Reg(off));
        (tid, a)
    };
    b.st(Space::Global, out, 0, Operand::Reg(h), Width::W32);
    b.exit();
    let mut memory = SparseMemory::new();
    init_u32(&mut memory, ARR_A, n * 2, 102, u32::MAX);
    Workload {
        name: "storeGPU",
        abbr: "STO",
        suite: Suite::GpgpuSim,
        paper_class: PaperClass::Compute,
        kernel: b.build(),
        launch: LaunchConfig::linear(ctas, block, vec![ARR_A, ARR_B]),
        memory,
        output: (ARR_B, n),
    }
}

/// AES — table-based rounds: cooperative load of an S-box into shared
/// memory, then xor/lookup rounds on affine-loaded state.
pub fn aes(scale: u32) -> Workload {
    let ctas = 120 * scale;
    let block = 256u32;
    let n = (ctas * block) as usize;
    let mut b = KernelBuilder::new("aes", 3);
    b.shared(256 * 4);
    // Cooperative S-box load: shared[tid.x] = sbox[tid.x] (one word each).
    let tx = b.mov(Operand::Special(SpecialReg::TidX));
    let soff = b.alu2(Op::Shl, Operand::Reg(tx), Operand::Imm(2));
    let sbox_addr = b.alu2(Op::Add, Operand::Param(2), Operand::Reg(soff));
    let sval = b.ld(Space::Global, sbox_addr, 0, Width::W32);
    b.st(Space::Shared, soff, 0, Operand::Reg(sval), Width::W32);
    b.bar();
    let (_tid, addr) = tid_elem_addr(&mut b, 0, 2);
    let state = b.ld(Space::Global, addr, 0, Width::W32);
    let s = b.mov(Operand::Reg(state));
    let round = b.mov(Operand::Imm(0));
    b.label("round");
    // Byte-extract lookup (data-dependent shared access).
    let byte = b.alu2(Op::And, Operand::Reg(s), Operand::Imm(0xFF));
    let boff = b.alu2(Op::Shl, Operand::Reg(byte), Operand::Imm(2));
    let sub = b.ld(Space::Shared, boff, 0, Width::W32);
    let rot = b.alu2(Op::Shr, Operand::Reg(s), Operand::Imm(8));
    let mix = b.alu2(Op::Xor, Operand::Reg(rot), Operand::Reg(sub));
    let key = b.alu3(
        Op::Mad,
        Operand::Reg(round),
        Operand::Imm(0x0101_0101),
        Operand::Imm(0x5A5A),
    );
    b.alu_into(s, Op::Xor, &[Operand::Reg(mix), Operand::Reg(key)]);
    b.alu_into(round, Op::Add, &[Operand::Reg(round), Operand::Imm(1)]);
    let p = b.setp(CmpOp::Lt, Operand::Reg(round), Operand::Imm(10));
    b.bra_if(p, "round");
    let tid2 = b.tid_linear_x();
    let ooff = b.alu2(Op::Shl, Operand::Reg(tid2), Operand::Imm(2));
    let out = b.alu2(Op::Add, Operand::Param(1), Operand::Reg(ooff));
    b.st(Space::Global, out, 0, Operand::Reg(s), Width::W32);
    b.exit();
    let mut memory = SparseMemory::new();
    init_u32(&mut memory, ARR_A, n, 103, u32::MAX);
    init_u32(&mut memory, ARR_C, 256, 104, u32::MAX);
    Workload {
        name: "AES",
        abbr: "AES",
        suite: Suite::GpgpuSim,
        paper_class: PaperClass::Compute,
        kernel: b.build(),
        launch: LaunchConfig::linear(ctas, block, vec![ARR_A, ARR_B, ARR_C]),
        memory,
        output: (ARR_B, n),
    }
}

/// MQ — mri-q: scalar k-space loop with sin/cos accumulation.
pub fn mq(scale: u32) -> Workload {
    let ctas = 120 * scale;
    let block = 128u32;
    let kvals = 24u64;
    let n = (ctas * block) as usize;
    let mut b = KernelBuilder::new("mq", 4);
    let (tid, out_addr) = tid_elem_addr(&mut b, 1, 2);
    let x = b.alu1(Op::I2F, Operand::Reg(tid));
    let acc = b.mov(f32imm(0.0));
    let i = b.mov(Operand::Imm(0));
    let ka = b.mov(Operand::Param(0));
    b.label("kloop");
    let kx = b.ld(Space::Global, ka, 0, Width::W32);
    let phi = b.ld(Space::Global, ka, 4, Width::W32);
    let arg = b.alu2(Op::FMul, Operand::Reg(kx), Operand::Reg(x));
    let sn = b.alu1(Op::FSin, Operand::Reg(arg));
    let cs = b.alu1(Op::FCos, Operand::Reg(arg));
    let sum = b.alu2(Op::FAdd, Operand::Reg(sn), Operand::Reg(cs));
    b.alu_into(
        acc,
        Op::FMad,
        &[Operand::Reg(phi), Operand::Reg(sum), Operand::Reg(acc)],
    );
    b.alu_into(ka, Op::Add, &[Operand::Reg(ka), Operand::Imm(8)]);
    b.alu_into(i, Op::Add, &[Operand::Reg(i), Operand::Imm(1)]);
    let p = b.setp(CmpOp::Lt, Operand::Reg(i), Operand::Param(2));
    b.bra_if(p, "kloop");
    b.st(Space::Global, out_addr, 0, Operand::Reg(acc), Width::W32);
    b.exit();
    let mut memory = SparseMemory::new();
    init_f32(&mut memory, ARR_A, kvals as usize * 2, 105, -1.0, 1.0);
    Workload {
        name: "mri_q",
        abbr: "MQ",
        suite: Suite::GpgpuSim,
        paper_class: PaperClass::Compute,
        kernel: b.build(),
        launch: LaunchConfig::linear(ctas, block, vec![ARR_A, ARR_B, kvals, 0]),
        memory,
        output: (ARR_B, n),
    }
}

/// TP — tpacf: angular-correlation style scalar loop with log binning.
pub fn tp(scale: u32) -> Workload {
    let ctas = 120 * scale;
    let block = 128u32;
    let points = 20u64;
    let n = (ctas * block) as usize;
    let mut b = KernelBuilder::new("tp", 4);
    let (tid, my_addr) = tid_elem_addr(&mut b, 0, 2);
    let mine = b.ld(Space::Global, my_addr, 0, Width::W32);
    let acc = b.mov(Operand::Imm(0));
    let i = b.mov(Operand::Imm(0));
    let pa = b.mov(Operand::Param(1));
    b.label("pts");
    let other = b.ld(Space::Global, pa, 0, Width::W32);
    let dot = b.alu2(Op::FMul, Operand::Reg(mine), Operand::Reg(other));
    let ad = b.alu1(Op::FAbs, Operand::Reg(dot));
    let biased = b.alu2(Op::FAdd, Operand::Reg(ad), f32imm(1.0001));
    let lg = b.alu1(Op::FLog2, Operand::Reg(biased));
    let scaled = b.alu2(Op::FMul, Operand::Reg(lg), f32imm(8.0));
    let bin = b.alu1(Op::F2I, Operand::Reg(scaled));
    b.alu_into(acc, Op::Add, &[Operand::Reg(acc), Operand::Reg(bin)]);
    b.alu_into(pa, Op::Add, &[Operand::Reg(pa), Operand::Imm(4)]);
    b.alu_into(i, Op::Add, &[Operand::Reg(i), Operand::Imm(1)]);
    let p = b.setp(CmpOp::Lt, Operand::Reg(i), Operand::Param(3));
    b.bra_if(p, "pts");
    let off = b.alu2(Op::Shl, Operand::Reg(tid), Operand::Imm(2));
    let out = b.alu2(Op::Add, Operand::Param(2), Operand::Reg(off));
    b.st(Space::Global, out, 0, Operand::Reg(acc), Width::W32);
    b.exit();
    let mut memory = SparseMemory::new();
    init_f32(&mut memory, ARR_A, n, 106, -1.0, 1.0);
    init_f32(&mut memory, ARR_B, points as usize, 107, -1.0, 1.0);
    Workload {
        name: "tpacf",
        abbr: "TP",
        suite: Suite::GpgpuSim,
        paper_class: PaperClass::Compute,
        kernel: b.build(),
        launch: LaunchConfig::linear(ctas, block, vec![ARR_A, ARR_B, ARR_C, points]),
        memory,
        output: (ARR_C, n),
    }
}

/// FFT — one butterfly stage with modulo-mapped addresses (the paper's
/// `mod`-type affine tuples, §4.4) and twiddle computation.
pub fn fft(scale: u32) -> Workload {
    let ctas = 120 * scale;
    let block = 128u32;
    let span = 16i64; // butterfly span (elements)
    let n2 = (ctas * block) as usize * 2;
    let mut b = KernelBuilder::new("fft", 3);
    let tid = b.tid_linear_x();
    // j = tid mod span; idx = (tid - j) * 2 + j  — classic butterfly map.
    let j = b.alu2(Op::Rem, Operand::Reg(tid), Operand::Imm(span));
    let tmj = b.alu2(Op::Sub, Operand::Reg(tid), Operand::Reg(j));
    let twice = b.alu2(Op::Shl, Operand::Reg(tmj), Operand::Imm(1));
    let idx = b.alu2(Op::Add, Operand::Reg(twice), Operand::Reg(j));
    let off = b.alu2(Op::Shl, Operand::Reg(idx), Operand::Imm(2));
    let a_lo = b.alu2(Op::Add, Operand::Param(0), Operand::Reg(off));
    let lo = b.ld(Space::Global, a_lo, 0, Width::W32);
    let hi = b.ld(Space::Global, a_lo, span * 4, Width::W32);
    // Twiddle = cos(j·θ) computed per thread; the twiddle chain is
    // iteratively refined (compute-heavy, like multi-stage butterflies).
    let jf = b.alu1(Op::I2F, Operand::Reg(j));
    let ang = b.alu2(Op::FMul, Operand::Reg(jf), f32imm(0.19634954)); // π/16
    let c = b.alu1(Op::FCos, Operand::Reg(ang));
    let s = b.alu1(Op::FSin, Operand::Reg(ang));
    let rr = b.mov(Operand::Imm(0));
    b.label("refine");
    let c2 = b.alu2(Op::FMul, Operand::Reg(c), Operand::Reg(c));
    let s2 = b.alu2(Op::FMul, Operand::Reg(s), Operand::Reg(s));
    let nc = b.alu2(Op::FSub, Operand::Reg(c2), Operand::Reg(s2));
    let cs = b.alu2(Op::FMul, Operand::Reg(c), Operand::Reg(s));
    let ns = b.alu2(Op::FMul, Operand::Reg(cs), f32imm(2.0));
    let mag = b.alu3(Op::FMad, Operand::Reg(nc), Operand::Reg(nc), f32imm(1e-9));
    let m2 = b.alu3(
        Op::FMad,
        Operand::Reg(ns),
        Operand::Reg(ns),
        Operand::Reg(mag),
    );
    let inv = b.alu1(Op::FRcp, Operand::Reg(m2));
    let sc = b.alu1(Op::FSqrt, Operand::Reg(inv));
    b.alu_into(c, Op::FMul, &[Operand::Reg(nc), Operand::Reg(sc)]);
    b.alu_into(s, Op::FMul, &[Operand::Reg(ns), Operand::Reg(sc)]);
    b.alu_into(rr, Op::Add, &[Operand::Reg(rr), Operand::Imm(1)]);
    let pr = b.setp(CmpOp::Lt, Operand::Reg(rr), Operand::Imm(20));
    b.bra_if(pr, "refine");
    let hit = b.alu2(Op::FMul, Operand::Reg(hi), Operand::Reg(c));
    let hit2 = b.alu3(
        Op::FMad,
        Operand::Reg(hi),
        Operand::Reg(s),
        Operand::Reg(hit),
    );
    let sum = b.alu2(Op::FAdd, Operand::Reg(lo), Operand::Reg(hit2));
    let dif = b.alu2(Op::FSub, Operand::Reg(lo), Operand::Reg(hit2));
    let o_lo = b.alu2(Op::Add, Operand::Param(1), Operand::Reg(off));
    b.st(Space::Global, o_lo, 0, Operand::Reg(sum), Width::W32);
    b.st(Space::Global, o_lo, span * 4, Operand::Reg(dif), Width::W32);
    b.exit();
    let mut memory = SparseMemory::new();
    init_f32(&mut memory, ARR_A, n2, 108, -1.0, 1.0);
    Workload {
        name: "FFT",
        abbr: "FFT",
        suite: Suite::GpgpuSim,
        paper_class: PaperClass::Compute,
        kernel: b.build(),
        launch: LaunchConfig::linear(ctas, block, vec![ARR_A, ARR_B, span as u64]),
        memory,
        output: (ARR_B, n2),
    }
}

/// BP — backprop layer: 16×16 blocks (innermost dimension below warp
/// width — CAE's weak spot, §5.4) with a weighted-sum loop and sigmoid.
pub fn bp(scale: u32) -> Workload {
    let ctas = 120 * scale;
    let bx = 16u32;
    let by = 16u32;
    let n = (ctas * bx * by) as usize;
    let mut b = KernelBuilder::new("bp", 3);
    // Linear id from 2-D block.
    let row = b.alu3(
        Op::Mad,
        Operand::Special(SpecialReg::CtaIdX),
        Operand::Special(SpecialReg::NTidY),
        Operand::Special(SpecialReg::TidY),
    );
    let lin = b.alu3(
        Op::Mad,
        Operand::Reg(row),
        Operand::Special(SpecialReg::NTidX),
        Operand::Special(SpecialReg::TidX),
    );
    let woff = b.alu2(Op::Shl, Operand::Reg(lin), Operand::Imm(2));
    let wadr = b.alu2(Op::Add, Operand::Param(0), Operand::Reg(woff));
    let w = b.ld(Space::Global, wadr, 0, Width::W32);
    let acc = b.mov(f32imm(0.0));
    let i = b.mov(Operand::Imm(0));
    let ia = b.mov(Operand::Param(2));
    b.label("sum");
    let inv = b.ld(Space::Global, ia, 0, Width::W32);
    b.alu_into(
        acc,
        Op::FMad,
        &[Operand::Reg(w), Operand::Reg(inv), Operand::Reg(acc)],
    );
    let sq = b.alu2(Op::FMul, Operand::Reg(acc), Operand::Reg(acc));
    let damp = b.alu2(Op::FMul, Operand::Reg(sq), f32imm(0.01));
    b.alu_into(acc, Op::FSub, &[Operand::Reg(acc), Operand::Reg(damp)]);
    b.alu_into(ia, Op::Add, &[Operand::Reg(ia), Operand::Imm(4)]);
    b.alu_into(i, Op::Add, &[Operand::Reg(i), Operand::Imm(1)]);
    let p = b.setp(CmpOp::Lt, Operand::Reg(i), Operand::Imm(16));
    b.bra_if(p, "sum");
    // Sigmoid-ish: 1 / (1 + 2^-acc).
    let neg = b.alu1(Op::FNeg, Operand::Reg(acc));
    let e = b.alu1(Op::FExp2, Operand::Reg(neg));
    let d = b.alu2(Op::FAdd, Operand::Reg(e), f32imm(1.0));
    let sig = b.alu1(Op::FRcp, Operand::Reg(d));
    let out = b.alu2(Op::Add, Operand::Param(1), Operand::Reg(woff));
    b.st(Space::Global, out, 0, Operand::Reg(sig), Width::W32);
    b.exit();
    let mut memory = SparseMemory::new();
    init_f32(&mut memory, ARR_A, n, 109, -0.5, 0.5);
    init_f32(&mut memory, ARR_C, 16, 110, -1.0, 1.0);
    Workload {
        name: "backprop",
        abbr: "BP",
        suite: Suite::Rodinia,
        paper_class: PaperClass::Compute,
        kernel: b.build(),
        launch: LaunchConfig {
            grid: Dim3::x(ctas),
            block: Dim3::xy(bx, by),
            params: vec![ARR_A, ARR_B, ARR_C],
        },
        memory,
        output: (ARR_B, n),
    }
}

/// SR1 — srad v1: clamped-neighbour diffusion with `max`/`min` on affine
/// indices (divergent affine tuples, §4.6) and a compute-heavy body.
pub fn sr1(scale: u32) -> Workload {
    let ctas = 120 * scale;
    let block = 128u32;
    let n = (ctas * block) as usize;
    let mut b = KernelBuilder::new("sr1", 3);
    let tid = b.tid_linear_x();
    // Clamped neighbours: left = max(tid-1, 0), right = min(tid+1, n-1).
    let tm1 = b.alu2(Op::Sub, Operand::Reg(tid), Operand::Imm(1));
    let left = b.alu2(Op::Max, Operand::Reg(tm1), Operand::Imm(0));
    let tp1 = b.alu2(Op::Add, Operand::Reg(tid), Operand::Imm(1));
    let nm1 = b.alu2(Op::Sub, Operand::Param(2), Operand::Imm(1));
    let right = b.alu2(Op::Min, Operand::Reg(tp1), Operand::Reg(nm1));
    let co = b.alu2(Op::Shl, Operand::Reg(tid), Operand::Imm(2));
    let lo = b.alu2(Op::Shl, Operand::Reg(left), Operand::Imm(2));
    let ro = b.alu2(Op::Shl, Operand::Reg(right), Operand::Imm(2));
    let ca = b.alu2(Op::Add, Operand::Param(0), Operand::Reg(co));
    let la = b.alu2(Op::Add, Operand::Param(0), Operand::Reg(lo));
    let ra = b.alu2(Op::Add, Operand::Param(0), Operand::Reg(ro));
    let c = b.ld(Space::Global, ca, 0, Width::W32);
    let l = b.ld(Space::Global, la, 0, Width::W32);
    let r = b.ld(Space::Global, ra, 0, Width::W32);
    // Diffusion coefficient: heavy fp.
    let dl = b.alu2(Op::FSub, Operand::Reg(l), Operand::Reg(c));
    let dr = b.alu2(Op::FSub, Operand::Reg(r), Operand::Reg(c));
    let g2 = b.alu3(Op::FMad, Operand::Reg(dl), Operand::Reg(dl), f32imm(1e-6));
    let g2b = b.alu3(
        Op::FMad,
        Operand::Reg(dr),
        Operand::Reg(dr),
        Operand::Reg(g2),
    );
    let den = b.alu2(Op::FAdd, Operand::Reg(g2b), f32imm(1.0));
    let q = b.alu1(Op::FRcp, Operand::Reg(den));
    let sq = b.alu1(Op::FSqrt, Operand::Reg(q));
    let lgq = b.alu1(Op::FLog2, Operand::Reg(den));
    let coef = b.alu2(Op::FMul, Operand::Reg(sq), Operand::Reg(lgq));
    let upd = b.alu3(
        Op::FMad,
        Operand::Reg(coef),
        Operand::Reg(g2b),
        Operand::Reg(c),
    );
    // Iterate the diffusion update in registers (srad runs many sweeps).
    let cur = b.mov(Operand::Reg(upd));
    let it = b.mov(Operand::Imm(0));
    b.label("sweep");
    let dl2 = b.alu2(Op::FSub, Operand::Reg(l), Operand::Reg(cur));
    let dr2 = b.alu2(Op::FSub, Operand::Reg(r), Operand::Reg(cur));
    let g = b.alu3(Op::FMad, Operand::Reg(dl2), Operand::Reg(dl2), f32imm(1e-6));
    let gb = b.alu3(
        Op::FMad,
        Operand::Reg(dr2),
        Operand::Reg(dr2),
        Operand::Reg(g),
    );
    let dn = b.alu2(Op::FAdd, Operand::Reg(gb), f32imm(1.0));
    let qq = b.alu1(Op::FRcp, Operand::Reg(dn));
    let sq2 = b.alu1(Op::FSqrt, Operand::Reg(qq));
    b.alu_into(
        cur,
        Op::FMad,
        &[Operand::Reg(sq2), Operand::Reg(gb), Operand::Reg(cur)],
    );
    b.alu_into(it, Op::Add, &[Operand::Reg(it), Operand::Imm(1)]);
    let ps = b.setp(CmpOp::Lt, Operand::Reg(it), Operand::Imm(5));
    b.bra_if(ps, "sweep");
    let out = b.alu2(Op::Add, Operand::Param(1), Operand::Reg(co));
    b.st(Space::Global, out, 0, Operand::Reg(cur), Width::W32);
    b.exit();
    let mut memory = SparseMemory::new();
    init_f32(&mut memory, ARR_A, n, 111, 0.1, 2.0);
    Workload {
        name: "sradv1",
        abbr: "SR1",
        suite: Suite::Rodinia,
        paper_class: PaperClass::Compute,
        kernel: b.build(),
        launch: LaunchConfig::linear(ctas, block, vec![ARR_A, ARR_B, (ctas * block) as u64]),
        memory,
        output: (ARR_B, n),
    }
}

/// HS — hotspot: iterated 3-point clamped stencil with the thermal-update
/// arithmetic, re-reading through registers each iteration.
pub fn hs(scale: u32) -> Workload {
    let ctas = 120 * scale;
    let block = 128u32;
    let n = (ctas * block) as usize;
    let mut b = KernelBuilder::new("hs", 4);
    let tid = b.tid_linear_x();
    let tm1 = b.alu2(Op::Sub, Operand::Reg(tid), Operand::Imm(1));
    let left = b.alu2(Op::Max, Operand::Reg(tm1), Operand::Imm(0));
    let tp1 = b.alu2(Op::Add, Operand::Reg(tid), Operand::Imm(1));
    let nm1 = b.alu2(Op::Sub, Operand::Param(3), Operand::Imm(1));
    let right = b.alu2(Op::Min, Operand::Reg(tp1), Operand::Reg(nm1));
    let co = b.alu2(Op::Shl, Operand::Reg(tid), Operand::Imm(2));
    let lo = b.alu2(Op::Shl, Operand::Reg(left), Operand::Imm(2));
    let ro = b.alu2(Op::Shl, Operand::Reg(right), Operand::Imm(2));
    let ta = b.alu2(Op::Add, Operand::Param(0), Operand::Reg(co));
    let la = b.alu2(Op::Add, Operand::Param(0), Operand::Reg(lo));
    let ra = b.alu2(Op::Add, Operand::Param(0), Operand::Reg(ro));
    let pa = b.alu2(Op::Add, Operand::Param(2), Operand::Reg(co));
    let t = b.ld(Space::Global, ta, 0, Width::W32);
    let l = b.ld(Space::Global, la, 0, Width::W32);
    let r = b.ld(Space::Global, ra, 0, Width::W32);
    let pw = b.ld(Space::Global, pa, 0, Width::W32);
    let cur = b.mov(Operand::Reg(t));
    let it = b.mov(Operand::Imm(0));
    b.label("steps");
    let lat = b.alu2(Op::FAdd, Operand::Reg(l), Operand::Reg(r));
    let twice = b.alu2(Op::FMul, Operand::Reg(cur), f32imm(2.0));
    let lap = b.alu2(Op::FSub, Operand::Reg(lat), Operand::Reg(twice));
    let flux = b.alu3(Op::FMad, Operand::Reg(lap), f32imm(0.2), Operand::Reg(pw));
    let damp = b.alu2(Op::FMul, Operand::Reg(flux), f32imm(0.8));
    let e = b.alu1(Op::FExp2, Operand::Reg(damp));
    let norm = b.alu2(Op::FAdd, Operand::Reg(e), f32imm(1.0));
    let rc = b.alu1(Op::FRcp, Operand::Reg(norm));
    b.alu_into(
        cur,
        Op::FMad,
        &[Operand::Reg(flux), Operand::Reg(rc), Operand::Reg(cur)],
    );
    b.alu_into(it, Op::Add, &[Operand::Reg(it), Operand::Imm(1)]);
    let p = b.setp(CmpOp::Lt, Operand::Reg(it), Operand::Imm(6));
    b.bra_if(p, "steps");
    let out = b.alu2(Op::Add, Operand::Param(1), Operand::Reg(co));
    b.st(Space::Global, out, 0, Operand::Reg(cur), Width::W32);
    b.exit();
    let mut memory = SparseMemory::new();
    init_f32(&mut memory, ARR_A, n, 112, 20.0, 90.0);
    init_f32(&mut memory, ARR_C, n, 113, 0.0, 1.0);
    Workload {
        name: "hotspot",
        abbr: "HS",
        suite: Suite::Rodinia,
        paper_class: PaperClass::Compute,
        kernel: b.build(),
        launch: LaunchConfig::linear(
            ctas,
            block,
            vec![ARR_A, ARR_B, ARR_C, (ctas * block) as u64],
        ),
        memory,
        output: (ARR_B, n),
    }
}

/// PF — pathfinder: shared-memory dynamic-programming sweep with barriers
/// and data `min`s.
pub fn pf(scale: u32) -> Workload {
    let ctas = 120 * scale;
    let block = 128u32;
    let rows = 8u64;
    let n = (ctas * block) as usize;
    let mut b = KernelBuilder::new("pf", 4);
    b.shared(block * 4);
    let tid = b.tid_linear_x();
    let tx = b.mov(Operand::Special(SpecialReg::TidX));
    let soff = b.alu2(Op::Shl, Operand::Reg(tx), Operand::Imm(2));
    // cost[tid] = wall[0][tid]
    let goff = b.alu2(Op::Shl, Operand::Reg(tid), Operand::Imm(2));
    let wadr = b.alu2(Op::Add, Operand::Param(0), Operand::Reg(goff));
    let first = b.ld(Space::Global, wadr, 0, Width::W32);
    b.st(Space::Shared, soff, 0, Operand::Reg(first), Width::W32);
    let row = b.mov(Operand::Imm(1));
    let stride = b.alu2(Op::Shl, Operand::Param(3), Operand::Imm(2));
    let rowa = b.alu2(Op::Add, Operand::Reg(wadr), Operand::Reg(stride));
    b.label("rows");
    b.bar();
    // Clamped shared-memory neighbours (affine indices with min/max).
    let txm = b.alu2(Op::Sub, Operand::Reg(tx), Operand::Imm(1));
    let lcl = b.alu2(Op::Max, Operand::Reg(txm), Operand::Imm(0));
    let txp = b.alu2(Op::Add, Operand::Reg(tx), Operand::Imm(1));
    let rcl = b.alu2(Op::Min, Operand::Reg(txp), Operand::Imm(block as i64 - 1));
    let loff = b.alu2(Op::Shl, Operand::Reg(lcl), Operand::Imm(2));
    let roff = b.alu2(Op::Shl, Operand::Reg(rcl), Operand::Imm(2));
    let c0 = b.ld(Space::Shared, soff, 0, Width::W32);
    let c1 = b.ld(Space::Shared, loff, 0, Width::W32);
    let c2 = b.ld(Space::Shared, roff, 0, Width::W32);
    let m01 = b.alu2(Op::Min, Operand::Reg(c0), Operand::Reg(c1));
    let m = b.alu2(Op::Min, Operand::Reg(m01), Operand::Reg(c2));
    let w = b.ld(Space::Global, rowa, 0, Width::W32);
    let nc = b.alu2(Op::Add, Operand::Reg(m), Operand::Reg(w));
    b.bar();
    b.st(Space::Shared, soff, 0, Operand::Reg(nc), Width::W32);
    b.alu_into(rowa, Op::Add, &[Operand::Reg(rowa), Operand::Reg(stride)]);
    b.alu_into(row, Op::Add, &[Operand::Reg(row), Operand::Imm(1)]);
    let p = b.setp(CmpOp::Lt, Operand::Reg(row), Operand::Param(2));
    b.bra_if(p, "rows");
    b.bar();
    let fin = b.ld(Space::Shared, soff, 0, Width::W32);
    let out = b.alu2(Op::Add, Operand::Param(1), Operand::Reg(goff));
    b.st(Space::Global, out, 0, Operand::Reg(fin), Width::W32);
    b.exit();
    let mut memory = SparseMemory::new();
    init_u32(&mut memory, ARR_A, n * rows as usize, 114, 10);
    Workload {
        name: "pathfinder",
        abbr: "PF",
        suite: Suite::Rodinia,
        paper_class: PaperClass::Compute,
        kernel: b.build(),
        launch: LaunchConfig::linear(ctas, block, vec![ARR_A, ARR_B, rows, (ctas * block) as u64]),
        memory,
        output: (ARR_B, n),
    }
}

/// BS — Black-Scholes: pure streaming compute with a deep SFU pipeline per
/// element.
pub fn bs(scale: u32) -> Workload {
    let ctas = 120 * scale;
    let block = 128u32;
    let n = (ctas * block) as usize;
    let mut b = KernelBuilder::new("bs", 4);
    let (_tid, sa) = tid_elem_addr(&mut b, 0, 2);
    let tid2 = b.tid_linear_x();
    let off = b.alu2(Op::Shl, Operand::Reg(tid2), Operand::Imm(2));
    let xa = b.alu2(Op::Add, Operand::Param(1), Operand::Reg(off));
    let s = b.ld(Space::Global, sa, 0, Width::W32);
    let x = b.ld(Space::Global, xa, 0, Width::W32);
    // d1 = (log2(S/X) + 0.5) * rsqrt-ish chain; CND via exp2 polynomial.
    let ratio = b.alu2(Op::FDiv, Operand::Reg(s), Operand::Reg(x));
    let lg = b.alu1(Op::FLog2, Operand::Reg(ratio));
    let d1 = b.alu3(Op::FMad, Operand::Reg(lg), f32imm(0.7), f32imm(0.25));
    let d2 = b.alu2(Op::FSub, Operand::Reg(d1), f32imm(0.3));
    let cnd = |b: &mut KernelBuilder, d: simt_ir::RegId| {
        let nd = b.alu1(Op::FNeg, Operand::Reg(d));
        let sq = b.alu2(Op::FMul, Operand::Reg(nd), Operand::Reg(nd));
        let half = b.alu2(Op::FMul, Operand::Reg(sq), f32imm(-0.5));
        let e = b.alu1(Op::FExp2, Operand::Reg(half));
        let den = b.alu2(Op::FAdd, Operand::Reg(e), f32imm(1.0));
        b.alu1(Op::FRcp, Operand::Reg(den))
    };
    let c1 = cnd(&mut b, d1);
    let c2 = cnd(&mut b, d2);
    // Iterative refinement (Newton-style polish) for compute weight.
    let it = b.mov(Operand::Imm(0));
    b.label("polish");
    let q = b.alu2(Op::FMul, Operand::Reg(c1), Operand::Reg(c2));
    let e = b.alu1(Op::FExp2, Operand::Reg(q));
    let l = b.alu1(Op::FLog2, Operand::Reg(e));
    let adj = b.alu2(Op::FSub, Operand::Reg(l), Operand::Reg(q));
    b.alu_into(
        c1,
        Op::FMad,
        &[Operand::Reg(adj), f32imm(0.001), Operand::Reg(c1)],
    );
    b.alu_into(
        c2,
        Op::FMad,
        &[Operand::Reg(adj), f32imm(-0.001), Operand::Reg(c2)],
    );
    b.alu_into(it, Op::Add, &[Operand::Reg(it), Operand::Imm(1)]);
    let pp = b.setp(CmpOp::Lt, Operand::Reg(it), Operand::Imm(16));
    b.bra_if(pp, "polish");
    let disc = b.alu2(Op::FMul, Operand::Reg(x), f32imm(0.95));
    let term1 = b.alu2(Op::FMul, Operand::Reg(s), Operand::Reg(c1));
    let term2 = b.alu2(Op::FMul, Operand::Reg(disc), Operand::Reg(c2));
    let call = b.alu2(Op::FSub, Operand::Reg(term1), Operand::Reg(term2));
    let put = b.alu2(Op::FSub, Operand::Reg(call), Operand::Reg(s));
    let oc = b.alu2(Op::Add, Operand::Param(2), Operand::Reg(off));
    let op = b.alu2(Op::Add, Operand::Param(3), Operand::Reg(off));
    b.st(Space::Global, oc, 0, Operand::Reg(call), Width::W32);
    b.st(Space::Global, op, 0, Operand::Reg(put), Width::W32);
    b.exit();
    let mut memory = SparseMemory::new();
    init_f32(&mut memory, ARR_A, n, 115, 10.0, 100.0);
    init_f32(&mut memory, ARR_B, n, 116, 10.0, 100.0);
    Workload {
        name: "blackscholes",
        abbr: "BS",
        suite: Suite::Parboil,
        paper_class: PaperClass::Compute,
        kernel: b.build(),
        launch: LaunchConfig::linear(ctas, block, vec![ARR_A, ARR_B, ARR_C, super::ARR_D]),
        memory,
        output: (ARR_C, n),
    }
}

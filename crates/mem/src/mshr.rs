//! Miss Status Holding Registers with same-line request merging.

use crate::fxhash::FxHashMap;

/// A target waiting on an in-flight line: who to notify when it fills.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct MshrTarget {
    /// Client id (LSU / DAC / MTA — see [`crate::fabric::Client`]).
    pub client: u8,
    /// Client-defined token returned in the response.
    pub token: u64,
}

#[derive(Debug, Clone)]
struct Entry {
    targets: Vec<MshrTarget>,
}

/// An MSHR table: bounds the number of distinct outstanding miss lines and
/// the number of merged requests per line.
#[derive(Debug, Clone)]
pub struct MshrTable {
    // FxHashMap, not the default SipHash map: this table sits on the
    // per-access hot path and is never iterated, so the hasher swap cannot
    // perturb results.
    entries: FxHashMap<u64, Entry>,
    capacity: usize,
    merge_capacity: usize,
    /// Allocation failures due to a full table (structural stall events).
    pub full_stalls: u64,
    /// Requests merged into an existing entry.
    pub merges: u64,
}

impl MshrTable {
    /// A table with `capacity` entries and `merge_capacity` targets each.
    pub fn new(capacity: usize, merge_capacity: usize) -> Self {
        MshrTable {
            entries: FxHashMap::default(),
            capacity,
            merge_capacity,
            full_stalls: 0,
            merges: 0,
        }
    }

    /// Is a miss for `line` already outstanding?
    pub fn contains(&self, line: u64) -> bool {
        self.entries.contains_key(&line)
    }

    /// Can a request for `line` be accepted right now (allocate or merge)?
    pub fn can_accept(&self, line: u64) -> bool {
        match self.entries.get(&line) {
            Some(e) => e.targets.len() < self.merge_capacity,
            None => self.entries.len() < self.capacity,
        }
    }

    /// Register a miss. Returns `true` if this allocated a **new** entry
    /// (i.e. a request must be forwarded down the hierarchy); `false` if it
    /// merged into an in-flight one.
    ///
    /// # Panics
    ///
    /// Panics when called while [`MshrTable::can_accept`] is false; callers
    /// must check first (that is the structural stall).
    pub fn allocate(&mut self, line: u64, target: MshrTarget) -> bool {
        assert!(
            self.can_accept(line),
            "MSHR overflow — check can_accept first"
        );
        match self.entries.get_mut(&line) {
            Some(e) => {
                e.targets.push(target);
                self.merges += 1;
                false
            }
            None => {
                self.entries.insert(
                    line,
                    Entry {
                        targets: vec![target],
                    },
                );
                true
            }
        }
    }

    /// Record a structural stall (table full) for statistics.
    pub fn note_full_stall(&mut self) {
        self.full_stalls += 1;
    }

    /// The fill for `line` arrived: release the entry and return everyone
    /// waiting on it.
    pub fn release(&mut self, line: u64) -> Vec<MshrTarget> {
        self.entries
            .remove(&line)
            .map(|e| e.targets)
            .unwrap_or_default()
    }

    /// Client id of the first (originating) requester of an in-flight line.
    pub fn first_client(&self, line: u64) -> Option<u8> {
        self.entries
            .get(&line)
            .and_then(|e| e.targets.first())
            .map(|t| t.client)
    }

    /// Outstanding distinct miss lines.
    pub fn outstanding(&self) -> usize {
        self.entries.len()
    }

    /// Drop all state (between kernels).
    pub fn flush(&mut self) {
        self.entries.clear();
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn t(token: u64) -> MshrTarget {
        MshrTarget { client: 0, token }
    }

    #[test]
    fn allocate_then_merge() {
        let mut m = MshrTable::new(2, 4);
        assert!(m.allocate(0x100, t(1))); // new entry → forward
        assert!(!m.allocate(0x100, t(2))); // merge → no forward
        assert_eq!(m.merges, 1);
        assert_eq!(m.outstanding(), 1);
        let targets = m.release(0x100);
        assert_eq!(targets.len(), 2);
        assert_eq!(m.outstanding(), 0);
    }

    #[test]
    fn capacity_limits() {
        let mut m = MshrTable::new(1, 2);
        m.allocate(0x100, t(1));
        assert!(!m.can_accept(0x200)); // table full
        assert!(m.can_accept(0x100)); // merge ok
        m.allocate(0x100, t(2));
        assert!(!m.can_accept(0x100)); // merge list full
    }

    #[test]
    #[should_panic(expected = "MSHR overflow")]
    fn overflow_panics() {
        let mut m = MshrTable::new(1, 1);
        m.allocate(0x100, t(1));
        m.allocate(0x200, t(2));
    }

    #[test]
    fn release_unknown_is_empty() {
        let mut m = MshrTable::new(1, 1);
        assert!(m.release(0xABC).is_empty());
    }
}

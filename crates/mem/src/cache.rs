//! Set-associative tag-array cache with LRU replacement and DAC lock
//! counters.
//!
//! The cache is *timing-only*: it tracks which lines are resident, not their
//! contents (values live in [`crate::sparse::SparseMemory`]). DAC's Address
//! Expansion Unit locks lines it requested early so they cannot be evicted
//! before the non-affine warp's demand access (paper §4.2); locks are
//! counted, and a set never holds more than `ways - 1` locked lines, which
//! is what makes the locking deadlock-free.

use std::collections::HashMap;

/// Result of a cache lookup.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum CacheOutcome {
    /// Line resident.
    Hit,
    /// Line absent; caller should fetch it.
    Miss,
}

#[derive(Debug, Clone, Copy)]
struct LineState {
    tag: u64,
    valid: bool,
    dirty: bool,
    last_use: u64,
    /// DAC lock counter: number of outstanding early requests pinning the
    /// line. A locked line is never chosen as an eviction victim.
    locks: u32,
    /// Set on any demand hit; lines evicted with `used == false` count as
    /// wasted fills (used for MTA prefetch-buffer throttling).
    used: bool,
}

impl LineState {
    fn empty() -> Self {
        LineState {
            tag: 0,
            valid: false,
            dirty: false,
            last_use: 0,
            locks: 0,
            used: false,
        }
    }
}

/// A set-associative cache tag array.
#[derive(Debug, Clone)]
pub struct Cache {
    sets: Vec<Vec<LineState>>,
    ways: usize,
    line_bytes: u64,
    tick: u64,
    /// Locks reserved for lines still in flight (missed, fill pending),
    /// keyed by line address. Counted against the per-set lock budget so
    /// the AEU's `ways - 1` invariant holds across outstanding fills.
    pending_locks: HashMap<u64, u32>,
    // Statistics.
    /// Demand hits.
    pub hits: u64,
    /// Demand misses.
    pub misses: u64,
    /// Lines evicted before any demand hit (prefetched-but-unused).
    pub unused_evictions: u64,
    /// Total evictions.
    pub evictions: u64,
}

impl Cache {
    /// Create a cache of `size` bytes with `ways` ways and `line_bytes`
    /// lines.
    ///
    /// # Panics
    ///
    /// Panics if the geometry does not divide evenly.
    pub fn new(size: u64, ways: usize, line_bytes: u64) -> Self {
        assert!(ways >= 1 && line_bytes.is_power_of_two());
        let lines = size / line_bytes;
        assert_eq!(lines % ways as u64, 0, "cache geometry mismatch");
        let num_sets = (lines / ways as u64) as usize;
        assert!(num_sets >= 1);
        Cache {
            sets: vec![vec![LineState::empty(); ways]; num_sets],
            ways,
            line_bytes,
            tick: 0,
            pending_locks: HashMap::new(),
            hits: 0,
            misses: 0,
            unused_evictions: 0,
            evictions: 0,
        }
    }

    /// Number of sets.
    pub fn num_sets(&self) -> usize {
        self.sets.len()
    }

    /// Associativity.
    pub fn ways(&self) -> usize {
        self.ways
    }

    fn set_index(&self, line: u64) -> usize {
        ((line / self.line_bytes) % self.sets.len() as u64) as usize
    }

    fn find(&self, line: u64) -> Option<(usize, usize)> {
        let s = self.set_index(line);
        self.sets[s]
            .iter()
            .position(|l| l.valid && l.tag == line)
            .map(|w| (s, w))
    }

    /// Is the line resident?
    pub fn probe(&self, line: u64) -> bool {
        self.find(line).is_some()
    }

    /// Demand access. Updates LRU and hit/miss statistics; on a hit to a
    /// line with `write == true`, marks it dirty.
    pub fn access(&mut self, line: u64, write: bool) -> CacheOutcome {
        self.tick += 1;
        match self.find(line) {
            Some((s, w)) => {
                let l = &mut self.sets[s][w];
                l.last_use = self.tick;
                l.used = true;
                if write {
                    l.dirty = true;
                }
                self.hits += 1;
                CacheOutcome::Hit
            }
            None => {
                self.misses += 1;
                CacheOutcome::Miss
            }
        }
    }

    /// Install a line, evicting the LRU *unlocked* way if needed.
    ///
    /// Returns the evicted line's address if a dirty line was displaced
    /// (for write-back traffic accounting). If every way of the set is
    /// locked (possible only through misuse of the lock budget), the fill
    /// is dropped — callers uphold the `ways - 1` invariant via
    /// [`Cache::can_reserve_lock`].
    pub fn fill(&mut self, line: u64, locks: u32) -> Option<u64> {
        self.tick += 1;
        self.pending_locks.remove(&line);
        if let Some((s, w)) = self.find(line) {
            // Already resident (e.g. raced with another fill): merge locks.
            self.sets[s][w].locks += locks;
            return None;
        }
        let s = self.set_index(line);
        let victim = self.sets[s]
            .iter()
            .enumerate()
            .filter(|(_, l)| l.locks == 0)
            .min_by_key(|(_, l)| if l.valid { l.last_use } else { 0 })
            .map(|(w, _)| w);
        let Some(w) = victim else {
            return None; // all ways locked — drop fill (see doc comment)
        };
        let old = self.sets[s][w];
        let mut dirty_evict = None;
        if old.valid {
            self.evictions += 1;
            if !old.used {
                self.unused_evictions += 1;
            }
            if old.dirty {
                dirty_evict = Some(old.tag);
            }
        }
        self.sets[s][w] = LineState {
            tag: line,
            valid: true,
            dirty: false,
            last_use: self.tick,
            locks,
            used: false,
        };
        dirty_evict
    }

    /// Would reserving one more lock for `line` keep the set within the
    /// `ways - 1` locked-lines budget (counting in-flight locked fills)?
    pub fn can_reserve_lock(&self, line: u64) -> bool {
        let s = self.set_index(line);
        // A lock on an already-locked (or already-pending) line never
        // increases the number of distinct locked lines.
        if let Some((s_, w)) = self.find(line) {
            if self.sets[s_][w].locks > 0 {
                return true;
            }
        }
        if self.pending_locks.contains_key(&line) {
            return true;
        }
        let resident_locked = self.sets[s]
            .iter()
            .filter(|l| l.valid && l.locks > 0)
            .count();
        let pending_locked = self
            .pending_locks
            .keys()
            .filter(|&&l| self.set_index(l) == s)
            .count();
        resident_locked + pending_locked < self.ways - 1
    }

    /// Reserve a lock for an in-flight fill of `line`.
    pub fn reserve_pending_lock(&mut self, line: u64) {
        *self.pending_locks.entry(line).or_insert(0) += 1;
    }

    /// Pending lock count for `line` (consumed by [`Cache::fill`]).
    pub fn pending_locks_for(&self, line: u64) -> u32 {
        self.pending_locks.get(&line).copied().unwrap_or(0)
    }

    /// Increment the lock counter of a resident line (AEU early request hit
    /// in cache).
    pub fn lock_resident(&mut self, line: u64) -> bool {
        if let Some((s, w)) = self.find(line) {
            self.sets[s][w].locks += 1;
            true
        } else {
            false
        }
    }

    /// Decrement a line's lock counter (non-affine warp demand access).
    /// Missing lines are ignored (the lock may have been dropped with the
    /// line in an all-locked-set corner case).
    pub fn unlock(&mut self, line: u64) {
        if let Some((s, w)) = self.find(line) {
            let l = &mut self.sets[s][w];
            l.locks = l.locks.saturating_sub(1);
        }
    }

    /// Number of resident locked lines (observability).
    pub fn locked_lines(&self) -> usize {
        self.sets
            .iter()
            .flat_map(|s| s.iter())
            .filter(|l| l.valid && l.locks > 0)
            .count()
    }

    /// Invalidate everything (between kernel launches).
    pub fn flush(&mut self) {
        for s in &mut self.sets {
            for l in s {
                *l = LineState::empty();
            }
        }
        self.pending_locks.clear();
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn small() -> Cache {
        // 4 sets × 2 ways × 128 B.
        Cache::new(1024, 2, 128)
    }

    #[test]
    fn geometry() {
        let c = small();
        assert_eq!(c.num_sets(), 4);
        assert_eq!(c.ways(), 2);
    }

    #[test]
    fn hit_after_fill() {
        let mut c = small();
        assert_eq!(c.access(0, false), CacheOutcome::Miss);
        c.fill(0, 0);
        assert_eq!(c.access(0, false), CacheOutcome::Hit);
        assert_eq!(c.hits, 1);
        assert_eq!(c.misses, 1);
    }

    #[test]
    fn lru_eviction() {
        let mut c = small();
        // Three lines mapping to set 0: line/128 % 4 == 0 → 0, 512, 1024.
        c.fill(0, 0);
        c.fill(512, 0);
        c.access(0, false); // 0 more recent than 512
        c.fill(1024, 0); // evicts 512
        assert!(c.probe(0));
        assert!(!c.probe(512));
        assert!(c.probe(1024));
    }

    #[test]
    fn dirty_eviction_reported() {
        let mut c = small();
        c.fill(0, 0);
        c.access(0, true); // dirty
        c.fill(512, 0);
        let evicted = c.fill(1024, 0);
        assert_eq!(evicted, Some(0));
    }

    #[test]
    fn locked_lines_survive_eviction() {
        let mut c = small();
        c.fill(0, 1); // locked
        c.fill(512, 0);
        c.fill(1024, 0); // must evict 512, not locked 0
        assert!(c.probe(0));
        assert!(!c.probe(512));
        c.unlock(0);
        c.fill(1536, 0); // now 0 is evictable (LRU)
        assert!(!c.probe(0));
    }

    #[test]
    fn lock_budget_is_ways_minus_one() {
        let mut c = small(); // 2 ways → at most 1 locked line per set
        assert!(c.can_reserve_lock(0));
        c.reserve_pending_lock(0);
        // A second distinct line in the same set cannot be locked...
        assert!(!c.can_reserve_lock(512));
        // ...but re-locking the same in-flight line is fine.
        assert!(c.can_reserve_lock(0));
        // Other sets are unaffected.
        assert!(c.can_reserve_lock(128));
    }

    #[test]
    fn pending_locks_transfer_to_fill() {
        let mut c = small();
        c.reserve_pending_lock(0);
        c.reserve_pending_lock(0);
        assert_eq!(c.pending_locks_for(0), 2);
        let locks = c.pending_locks_for(0);
        c.fill(0, locks);
        assert_eq!(c.locked_lines(), 1);
        c.unlock(0);
        assert_eq!(c.locked_lines(), 1); // counter 2 → 1, still locked
        c.unlock(0);
        assert_eq!(c.locked_lines(), 0);
    }

    #[test]
    fn unused_eviction_counted() {
        let mut c = small();
        c.fill(0, 0); // never touched
        c.fill(512, 0);
        c.fill(1024, 0); // evicts LRU = 0 (unused)
        assert_eq!(c.unused_evictions, 1);
        assert_eq!(c.evictions, 1);
    }

    #[test]
    fn flush_clears() {
        let mut c = small();
        c.fill(0, 1);
        c.flush();
        assert!(!c.probe(0));
        assert_eq!(c.locked_lines(), 0);
    }
}

//! Micro-benchmarks: the cost of the reproduction's own moving parts
//! (tuple algebra, analysis, decoupling, and per-figure mini-runs).
//!
//! Hand-rolled timing loop (`harness = false`) because the offline build
//! environment has no criterion; each case reports the best-of-runs mean so
//! numbers are comparable across invocations. The real evaluation numbers
//! come from `cargo run -p dac-bench --bin sweep --release`.

use affine::{decouple, tuple::tuple_op, AffineAnalysis, AffineTuple};
use gpu_workloads::{benchmark, gpu_for, run_design, Design};
use simt_ir::Op;
use simt_sim::{GpuConfig, GpuSim};
use std::time::Instant;

/// Time `f` adaptively: enough iterations to pass ~50 ms, best of 3 passes.
fn bench(name: &str, mut f: impl FnMut()) {
    // Warm-up + calibration.
    let mut iters = 1u64;
    loop {
        let t = Instant::now();
        for _ in 0..iters {
            f();
        }
        let dt = t.elapsed();
        if dt.as_millis() >= 50 || iters >= 1 << 24 {
            break;
        }
        iters *= 4;
    }
    let mut best = f64::INFINITY;
    for _ in 0..3 {
        let t = Instant::now();
        for _ in 0..iters {
            f();
        }
        let per = t.elapsed().as_secs_f64() / iters as f64;
        best = best.min(per);
    }
    let (val, unit) = if best >= 1e-3 {
        (best * 1e3, "ms")
    } else if best >= 1e-6 {
        (best * 1e6, "µs")
    } else {
        (best * 1e9, "ns")
    };
    println!("{name:<28} {val:>10.3} {unit}/iter  ({iters} iters)");
}

fn bench_tuple_ops() {
    let a = AffineTuple::tid(0);
    let s = AffineTuple::scalar(4);
    bench("tuple/mad", || {
        std::hint::black_box(tuple_op(
            Op::Mad,
            &[std::hint::black_box(a), s, AffineTuple::scalar(0x1000)],
        ));
    });
    let m = tuple_op(Op::Rem, &[a, AffineTuple::scalar(64)]).unwrap();
    bench("tuple/mod_eval_warp", || {
        let mut acc = 0u64;
        for lane in 0..32u32 {
            acc = acc.wrapping_add(m.eval((lane, 0, 0)));
        }
        std::hint::black_box(acc);
    });
}

fn bench_compiler() {
    let w = benchmark("LIB", 1).unwrap();
    bench("compiler/analysis", || {
        std::hint::black_box(AffineAnalysis::run(&w.kernel));
    });
    let analysis = AffineAnalysis::run(&w.kernel);
    bench("compiler/decouple", || {
        std::hint::black_box(decouple(&w.kernel, &analysis));
    });
}

/// One mini-run per figure family: fig16-style timing comparisons on a
/// single benchmark with a small GPU.
fn bench_simulation() {
    for (label, design) in [
        ("sim/fig16/baseline", Design::Baseline),
        ("sim/fig16/cae", Design::Cae),
        ("sim/fig16/mta", Design::Mta),
        ("sim/fig16/dac", Design::Dac),
    ] {
        let w = benchmark("SR2", 1).unwrap();
        let gpu = GpuSim::new(GpuConfig {
            mem: gpu_for(design).mem,
            ..GpuConfig::test_small()
        });
        bench(label, || {
            std::hint::black_box(run_design(&w, design, &gpu).report.cycles);
        });
    }
}

fn main() {
    // `cargo bench` passes harness flags like `--bench`; ignore them.
    bench_tuple_ops();
    bench_compiler();
    bench_simulation();
}

.kernel fz22
.params 4
    mad r0, %ctaid.x, %ntid.x, %tid.x;
    and r1, %tid.x, 31;
    shr r2, r0, 5;
    mad r3, r0, 4, %p2;
    st.global.b32 [r3], r2;
    mad r4, r0, 1, 45;
    mad r5, r4, 4, %p1;
    ld.global.b32 r6, [r5];
    xor r7, r1, 27;
    mad r8, r0, 4, %p2;
    st.global.b32 [r8], r1;
    rem r9, r2, r7;
    mad r10, r0, 1, 46;
    mad r11, r10, 4, %p0;
    ld.global.b32 r12, [r11];
    mad r13, r7, r7, r7;
    mad r14, r0, 1, 54;
    mad r15, r14, 4, %p1;
    ld.global.b32 r16, [r15];
    mad r17, r0, 4, %p2;
    st.global.b32 [r17], r2;
    mad r18, r0, 4, %p2;
    st.global.b32 [r18], r16;
    exit;

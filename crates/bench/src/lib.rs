//! `dac-bench` — the evaluation harness: runs every benchmark under every
//! design and regenerates each table and figure of the paper (see
//! EXPERIMENTS.md for the index).

use affine::AffineAnalysis;
use gpu_energy::{energy_of, EnergyBreakdown, EnergyModel};
use gpu_workloads::{classify, gpu_for, run_design, BenchRun, Design, Workload};
use simt_sim::GpuSim;

/// Everything measured for one benchmark.
pub struct FullRow {
    /// Benchmark abbreviation.
    pub abbr: &'static str,
    /// Full name.
    pub name: &'static str,
    /// Suite tag (Table 2).
    pub suite: char,
    /// Measured: memory-intensive under the perfect-memory test (§5.1.2).
    pub memory_intensive: bool,
    /// Perfect-memory speedup used for the classification.
    pub perfect_speedup: f64,
    /// Static instruction mix (Figure 6).
    pub mix: affine::StaticMix,
    /// Runs per design, in [`Design::ALL`] order.
    pub runs: Vec<BenchRun>,
}

impl FullRow {
    fn run(&self, d: Design) -> &BenchRun {
        let idx = Design::ALL.iter().position(|&x| x == d).unwrap();
        &self.runs[idx]
    }

    /// Speedup of `d` over the baseline.
    pub fn speedup(&self, d: Design) -> f64 {
        self.run(Design::Baseline).report.cycles as f64 / self.run(d).report.cycles as f64
    }

    /// DAC's warp-instruction count normalized to baseline, split into
    /// (non-affine, affine) components (Figure 17).
    pub fn instr_ratio(&self) -> (f64, f64) {
        let base = self.run(Design::Baseline).report.stats.warp_instructions as f64;
        let dac = &self.run(Design::Dac).report.stats;
        (
            dac.warp_instructions as f64 / base,
            dac.affine_instructions as f64 / base,
        )
    }

    /// DAC's dynamic affine coverage: the fraction of baseline warp
    /// instructions eliminated by decoupling (Figure 18).
    pub fn dac_coverage(&self) -> f64 {
        let base = self.run(Design::Baseline).report.stats.warp_instructions as f64;
        let dac = self.run(Design::Dac).report.stats.warp_instructions as f64;
        ((base - dac) / base).max(0.0)
    }

    /// CAE's dynamic affine coverage: instructions executed on the affine
    /// units as a fraction of all warp instructions (Figure 18).
    pub fn cae_coverage(&self) -> f64 {
        let s = &self.run(Design::Cae).report.stats;
        if s.warp_instructions == 0 {
            0.0
        } else {
            s.cae_affine_instructions as f64 / s.warp_instructions as f64
        }
    }

    /// Fraction of global/local loads issued by the affine warp (Fig. 19).
    pub fn decoupled_load_fraction(&self) -> f64 {
        self.run(Design::Dac).report.stats.decoupled_load_fraction()
    }

    /// MTA prefetcher coverage: demand accesses served by the prefetch
    /// buffer or merged with an in-flight prefetch, over all demand
    /// traffic that would otherwise have gone below L1 (Figure 20).
    pub fn mta_coverage(&self) -> f64 {
        let m = &self.run(Design::Mta).report.mem;
        let covered = (m.pbuf_hits + m.prefetch_merged) as f64;
        let denom = covered + m.l1_misses as f64;
        if denom == 0.0 {
            0.0
        } else {
            covered / denom
        }
    }

    /// Energy of `d` relative to baseline (Figure 21).
    pub fn energy(&self, d: Design, model: &EnergyModel) -> EnergyBreakdown {
        energy_of(&self.run(d).report, model)
    }

    /// Normalized total energy of DAC vs baseline.
    pub fn dac_energy_ratio(&self, model: &EnergyModel) -> f64 {
        self.energy(Design::Dac, model)
            .normalized_to(&self.energy(Design::Baseline, model))
    }
}

/// Evaluate one benchmark under all four designs, verifying that every
/// design produces bit-identical outputs.
///
/// # Panics
///
/// Panics if any design changes the program's output (a correctness bug).
pub fn evaluate(w: &Workload) -> FullRow {
    let analysis = AffineAnalysis::run(&w.kernel);
    let mix = analysis.static_mix(&w.kernel);
    let (memory_intensive, perfect_speedup) = classify(w);
    let runs: Vec<BenchRun> = Design::ALL
        .iter()
        .map(|&d| run_design(w, d, &GpuSim::new(gpu_for(d))))
        .collect();
    let golden = runs[0].memory.read_u32_vec(w.output.0, w.output.1);
    for (i, r) in runs.iter().enumerate().skip(1) {
        let out = r.memory.read_u32_vec(w.output.0, w.output.1);
        assert_eq!(
            out, golden,
            "{}: design {} changed program output",
            w.abbr,
            Design::ALL[i].name()
        );
    }
    FullRow {
        abbr: w.abbr,
        name: w.name,
        suite: w.suite.tag(),
        memory_intensive,
        perfect_speedup,
        mix,
        runs,
    }
}

/// Geometric mean.
pub fn geomean(xs: impl IntoIterator<Item = f64>) -> f64 {
    let v: Vec<f64> = xs.into_iter().collect();
    if v.is_empty() {
        return 0.0;
    }
    let s: f64 = v.iter().map(|x| x.ln()).sum();
    (s / v.len() as f64).exp()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn geomean_basics() {
        assert!((geomean([1.0, 4.0]) - 2.0).abs() < 1e-12);
        assert!((geomean([2.0, 2.0, 2.0]) - 2.0).abs() < 1e-12);
        assert_eq!(geomean([]), 0.0);
    }

    /// The headline experiment on one memory-bound benchmark: DAC must
    /// beat baseline and decouple most loads, with all designs correct.
    #[test]
    fn evaluate_lib_end_to_end() {
        let w = gpu_workloads::benchmark("LIB", 1).unwrap();
        let row = evaluate(&w);
        assert!(row.memory_intensive, "LIB must be memory-intensive");
        assert!(
            row.speedup(Design::Dac) > 1.05,
            "DAC speedup {}",
            row.speedup(Design::Dac)
        );
        assert!(row.decoupled_load_fraction() > 0.8);
        let (na, aff) = row.instr_ratio();
        assert!(na < 1.0, "non-affine ratio {na}");
        assert!(aff > 0.0 && aff < 0.5);
    }
}

//! Differential kernel fuzzing CLI.
//!
//! Generates `--count` kernels from `--seed`, runs each through the oracle
//! and every selected design, and exits non-zero if any check fails. Fully
//! deterministic: the same seed/count/designs produce the same kernels, the
//! same verdicts, and a byte-identical summary file for any `--jobs N`.
//!
//! Wired into the harness result cache: each (kernel, design) pair is a
//! regular cache entry keyed by a content-addressed workload abbreviation,
//! so re-running a seed window verifies cached digests/statistics against
//! the oracle without re-simulating.

use simt_fuzz::diff::{check_workload, digest_words, DiffConfig, DiffFailure};
use simt_fuzz::gen::gen_spec;
use simt_fuzz::oracle::run_oracle;
use simt_fuzz::reduce::{reduce, repro_asm};
use simt_harness::json::Value;
use simt_harness::{pool, DesignPoint, Job, JobResult, ResultCache};
use simt_profile::CpiStack;
use std::path::PathBuf;
use std::sync::Arc;

use gpu_workloads::{gpu_for, Design};

const USAGE: &str = "\
usage: fuzz [options]

Differential kernel fuzzing: seeded random kernels through a functional
oracle and all four designs (baseline/cae/mta/dac), checking bit-identical
memory, issue-slot bucket sums, and fast-forward invariance.

options:
  --seed N          generator seed (default 1)
  --count N         kernels to generate (default 100)
  --designs LIST    comma-separated subset of baseline,cae,mta,dac
  --jobs N          worker threads, one kernel each (default 1; verdicts
                    are order-stable)
  --threads N       intra-run worker threads *inside* every simulation
                    (default 1; results byte-identical — each kernel is
                    additionally cross-checked threaded vs serial)
  --reduce          shrink failing kernels to minimal repros
  --ff MODE         fast-forward cross-check: dac (default), all, none
  --cache-dir DIR   harness result cache (default results/cache)
  --no-cache        disable the result cache
  --out DIR         repro + summary directory (default results/fuzz)";

fn fail_usage(msg: &str) -> ! {
    eprintln!("fuzz: {msg} (run `fuzz --help` for usage)");
    std::process::exit(2);
}

struct Args {
    seed: u64,
    count: u64,
    designs: Vec<Design>,
    jobs: usize,
    threads: Option<usize>,
    reduce: bool,
    ff: String,
    cache_dir: Option<PathBuf>,
    out: PathBuf,
}

fn parse_args() -> Args {
    let mut args = Args {
        seed: 1,
        count: 100,
        designs: Design::ALL.to_vec(),
        jobs: 1,
        threads: None,
        reduce: false,
        ff: "dac".into(),
        cache_dir: Some(PathBuf::from("results/cache")),
        out: PathBuf::from("results/fuzz"),
    };
    let raw: Vec<String> = std::env::args().skip(1).collect();
    let mut i = 0;
    let value = |i: &mut usize| -> String {
        *i += 1;
        raw.get(*i)
            .unwrap_or_else(|| fail_usage(&format!("{} needs a value", raw[*i - 1])))
            .clone()
    };
    while i < raw.len() {
        match raw[i].as_str() {
            "--help" | "-h" => {
                println!("{USAGE}");
                std::process::exit(0);
            }
            "--seed" => {
                args.seed = parse_u64(&value(&mut i), "--seed");
            }
            "--count" => {
                args.count = parse_u64(&value(&mut i), "--count");
            }
            "--designs" => {
                let v = value(&mut i);
                args.designs = v
                    .split(',')
                    .map(|d| match d.trim().to_ascii_lowercase().as_str() {
                        "baseline" => Design::Baseline,
                        "cae" => Design::Cae,
                        "mta" => Design::Mta,
                        "dac" => Design::Dac,
                        other => fail_usage(&format!("unknown design {other:?}")),
                    })
                    .collect();
                if args.designs.is_empty() {
                    fail_usage("--designs: empty list");
                }
            }
            "--jobs" => {
                args.jobs = parse_u64(&value(&mut i), "--jobs").max(1) as usize;
            }
            "--threads" => {
                let t = parse_u64(&value(&mut i), "--threads") as usize;
                if t == 0 {
                    fail_usage("--threads must be at least 1");
                }
                args.threads = Some(t);
            }
            "--reduce" => args.reduce = true,
            "--ff" => {
                let v = value(&mut i);
                match v.as_str() {
                    "dac" | "all" | "none" => args.ff = v,
                    other => fail_usage(&format!("--ff: expected dac/all/none, got {other:?}")),
                }
            }
            "--cache-dir" => args.cache_dir = Some(PathBuf::from(value(&mut i))),
            "--no-cache" => args.cache_dir = None,
            "--out" => args.out = PathBuf::from(value(&mut i)),
            other => fail_usage(&format!("unexpected argument {other:?}")),
        }
        i += 1;
    }
    args
}

fn parse_u64(v: &str, flag: &str) -> u64 {
    v.parse()
        .unwrap_or_else(|_| fail_usage(&format!("{flag}: expected a number, got {v:?}")))
}

/// One kernel's verdict, in generation order.
struct Outcome {
    index: u64,
    abbr: String,
    /// (design name, cycles) for every design that ran or was cached.
    cycles: Vec<(&'static str, u64)>,
    oracle_digest: u64,
    failure: Option<DiffFailure>,
}

fn main() {
    let args = parse_args();
    let mut overrides = simt_fuzz::diff::small_overrides();
    overrides.threads = args.threads;
    let diff_cfg = DiffConfig {
        designs: args.designs.clone(),
        overrides,
        ff_designs: match args.ff.as_str() {
            "all" => args.designs.clone(),
            "none" => Vec::new(),
            _ => vec![Design::Dac],
        },
        ..DiffConfig::default()
    };
    let cache = args.cache_dir.as_ref().map(|d| ResultCache::new(d.clone()));

    eprintln!(
        "fuzz: seed {:#x}, {} kernels x {} designs on {} workers{}",
        args.seed,
        args.count,
        args.designs.len(),
        args.jobs,
        if cache.is_some() { " (cached)" } else { "" }
    );
    let t0 = std::time::Instant::now();

    let indices: Vec<u64> = (0..args.count).collect();
    let outcomes: Vec<Outcome> = pool::run_indexed(args.jobs, indices, |_, index| {
        run_case(args.seed, index, &diff_cfg, cache.as_ref())
    });

    // Deterministic summary: one JSONL line per kernel, index order, no
    // wall-clock — byte-identical across --jobs and cache temperature.
    std::fs::create_dir_all(&args.out).ok();
    let summary_path = args.out.join(format!("summary-{:x}.jsonl", args.seed));
    let mut summary = String::new();
    for o in &outcomes {
        let mut fields = vec![
            ("index".to_string(), Value::Int(o.index)),
            ("abbr".to_string(), Value::Str(o.abbr.clone())),
            (
                "verdict".to_string(),
                Value::Str(if o.failure.is_none() { "pass" } else { "fail" }.into()),
            ),
            (
                "oracle_digest".to_string(),
                Value::Str(format!("{:016x}", o.oracle_digest)),
            ),
            (
                "cycles".to_string(),
                Value::Obj(
                    o.cycles
                        .iter()
                        .map(|&(d, c)| (d.to_string(), Value::Int(c)))
                        .collect(),
                ),
            ),
        ];
        if let Some(f) = &o.failure {
            fields.push(("failure".to_string(), Value::Str(f.to_string())));
        }
        summary.push_str(&Value::Obj(fields).to_json());
        summary.push('\n');
    }
    if let Err(e) = std::fs::write(&summary_path, &summary) {
        eprintln!("fuzz: cannot write {}: {e}", summary_path.display());
    }

    let failures: Vec<&Outcome> = outcomes.iter().filter(|o| o.failure.is_some()).collect();
    for o in &failures {
        let failure = o.failure.as_ref().unwrap();
        eprintln!("fuzz: FAIL kernel {} ({}): {failure}", o.index, o.abbr);
        let spec = gen_spec(args.seed, o.index);
        let (repro, note) = if args.reduce {
            match reduce(&spec, &diff_cfg) {
                Some((red, red_failure, edits)) => (
                    repro_asm(&red, &red_failure),
                    format!("minimized ({edits} edits)"),
                ),
                None => (repro_asm(&spec, failure), "unminimized".to_string()),
            }
        } else {
            (repro_asm(&spec, failure), "unminimized".to_string())
        };
        let path = args
            .out
            .join(format!("repro-{:x}-{}.asm", args.seed, o.index));
        match std::fs::write(&path, repro) {
            Ok(()) => eprintln!("fuzz: {note} repro -> {}", path.display()),
            Err(e) => eprintln!("fuzz: cannot write {}: {e}", path.display()),
        }
    }

    eprintln!(
        "fuzz: {}/{} kernels passed in {:.1}s; summary -> {}",
        outcomes.len() - failures.len(),
        outcomes.len(),
        t0.elapsed().as_secs_f64(),
        summary_path.display()
    );
    if !failures.is_empty() {
        std::process::exit(1);
    }
}

/// Generate, check, and (if caching) verify-or-populate one kernel.
fn run_case(seed: u64, index: u64, cfg: &DiffConfig, cache: Option<&ResultCache>) -> Outcome {
    let spec = gen_spec(seed, index);
    let workload = Arc::new(spec.build_workload());
    let abbr = workload.abbr.to_string();

    // The oracle is cheap (one pass per thread) and is the ground truth for
    // both the fresh and the cached path.
    let mut omem = workload.fresh_memory();
    if let Err(e) = run_oracle(&workload.kernel, &workload.launch, &mut omem) {
        return Outcome {
            index,
            abbr,
            cycles: Vec::new(),
            oracle_digest: 0,
            failure: Some(DiffFailure::Oracle(e)),
        };
    }
    let oracle_digest = digest_words(&omem.read_u32_vec(workload.output.0, workload.output.1));

    let jobs: Vec<Job> = cfg
        .designs
        .iter()
        .map(|&d| {
            let mut j = Job::new(workload.clone(), 1, DesignPoint::Hw(d));
            j.overrides = cfg.overrides.clone();
            j
        })
        .collect();

    // Cached fast path: if every design is cached, verify digests and the
    // bucket-sum invariant against the stored reports without simulating.
    if let Some(cache) = cache {
        let hits: Vec<Option<JobResult>> = jobs.iter().map(|j| cache.load(j)).collect();
        if hits.iter().all(|h| h.is_some()) {
            let mut cycles = Vec::new();
            for (&design, hit) in cfg.designs.iter().zip(&hits) {
                let r = hit.as_ref().unwrap();
                if r.output_digest != oracle_digest {
                    return Outcome {
                        index,
                        abbr,
                        cycles,
                        oracle_digest,
                        failure: Some(DiffFailure::DigestMismatch {
                            design,
                            got: r.output_digest,
                            want: oracle_digest,
                        }),
                    };
                }
                let gcfg = cfg.overrides.apply_gpu(gpu_for(design));
                let cpi = CpiStack::from_stats(&r.report.stats);
                if !cpi.check(r.report.stats.cycles, gcfg.schedulers, gcfg.num_sms) {
                    return Outcome {
                        index,
                        abbr,
                        cycles,
                        oracle_digest,
                        failure: Some(DiffFailure::BucketSum {
                            design,
                            total: cpi.total(),
                            want: r.report.stats.cycles * (gcfg.schedulers * gcfg.num_sms) as u64,
                        }),
                    };
                }
                cycles.push((design.name(), r.report.cycles));
            }
            return Outcome {
                index,
                abbr,
                cycles,
                oracle_digest,
                failure: None,
            };
        }
    }

    match check_workload(&workload, cfg) {
        Ok(runs) => {
            let cycles = runs
                .iter()
                .map(|r| (r.design.name(), r.report.cycles))
                .collect();
            if let Some(cache) = cache {
                for (job, run) in jobs.iter().zip(&runs) {
                    let result = JobResult {
                        report: run.report.clone(),
                        per_kernel: Vec::new(),
                        output_digest: digest_words(&run.output),
                        wall_ms: 0.0,
                        cached: false,
                    };
                    cache.store(job, &result);
                }
            }
            Outcome {
                index,
                abbr,
                cycles,
                oracle_digest,
                failure: None,
            }
        }
        Err(f) => Outcome {
            index,
            abbr,
            cycles: Vec::new(),
            oracle_digest,
            failure: Some(f),
        },
    }
}

//! `simt-serve`: a persistent design-space sweep service over the shared
//! result store.
//!
//! The CLI tools (`sweep`, `perf`) are one-shot: they run a grid, write
//! artifacts, and exit. This crate adds the long-running counterpart the
//! roadmap calls for — a daemon that owns `results/` and turns design-space
//! exploration into a service:
//!
//! * [`grid`] — grid requests (`workloads × designs × config`), validated
//!   and lowered to ordinary harness jobs with the **same cache keys** the
//!   CLI computes;
//! * [`service`] — the job-queue core: single-flight dedup across
//!   overlapping sweeps, a non-blocking worker pool, budget/stop handling,
//!   and the status/metrics documents;
//! * [`manifest`] — durable `dac-sweep/v1` manifests that make sweeps
//!   resumable across daemon restarts (the cache itself is the progress
//!   record);
//! * [`http`] — a dependency-free HTTP/1.1 front end exposing
//!   `POST /sweeps`, `GET /sweeps/:id`, `GET /sweeps/:id/events`
//!   (long-poll), `GET /runs/:key`, `GET /status`, `GET /metrics`
//!   (JSON or Prometheus text), and `GET /dashboard`;
//! * [`dashboard`] — the read-only HTML overview rendered from the same
//!   status/metrics documents the JSON endpoints serve;
//! * [`client`] — the tiny blocking HTTP client behind `sweepctl` and the
//!   end-to-end tests.
//!
//! Telemetry (structured logs, the metric registries, Prometheus
//! exposition) comes from `simt-obs`; the daemon initializes the logger
//! and every warning in this crate is a structured `dac-log/v1` event.
//!
//! Binaries: `serve` (the daemon) and `sweepctl` (submit / watch / tail /
//! fetch).

pub mod client;
pub mod dashboard;
pub mod grid;
pub mod http;
pub mod manifest;
pub mod service;

pub use grid::GridRequest;
pub use manifest::Manifest;
pub use service::{Receipt, ServeConfig, SweepService};

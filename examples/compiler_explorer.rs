//! Compiler explorer: feed any kernel (a file in the pseudo-assembly
//! syntax, or the built-in demos) through the affine analysis and print the
//! classification, the decoupling candidates, and both output streams.
//!
//! ```sh
//! cargo run --release --example compiler_explorer             # demos
//! cargo run --release --example compiler_explorer my.asm     # your kernel
//! ```

use dac_gpu::affine::{decouple, AffClass, AffineAnalysis, CandidateKind};
use dac_gpu::ir::asm;

const DEMOS: [(&str, &str); 3] = [
    (
        "boundary-guarded load (divergent affine, §4.6)",
        r#"
.kernel boundary
.params 3
    mul r0, %ctaid.x, %ntid.x;
    add r1, r0, %tid.x;
    setp.ge p0, r1, %p2;
    @p0 bra DONE;
    shl r2, r1, 2;
    add r3, %p0, r2;
    ld.global r4, [r3];
    add r5, r4, 10;
    add r6, %p1, r2;
    st.global [r6], r5;
DONE:
    exit;
"#,
    ),
    (
        "modulo-mapped butterfly (mod-type tuples, §4.4)",
        r#"
.kernel butterfly
.params 2
    mul r0, %ctaid.x, %ntid.x;
    add r1, r0, %tid.x;
    rem r2, r1, 16;
    sub r3, r1, r2;
    shl r4, r3, 1;
    add r5, r4, r2;
    shl r6, r5, 2;
    add r7, %p0, r6;
    ld.global r8, [r7];
    add r9, r8, 1;
    add r10, %p1, r6;
    st.global [r10], r9;
    exit;
"#,
    ),
    (
        "indirect access (not decoupleable — BFS-like)",
        r#"
.kernel indirect
.params 2
    mul r0, %ctaid.x, %ntid.x;
    add r1, r0, %tid.x;
    shl r2, r1, 2;
    add r3, %p0, r2;
    ld.global r4, [r3];
    shl r5, r4, 2;
    add r6, %p1, r5;
    ld.global r7, [r6];
    exit;
"#,
    ),
];

fn explore(title: &str, text: &str) {
    println!("==================== {title} ====================");
    let kernel = match asm::parse_kernel(text) {
        Ok(k) => k,
        Err(e) => {
            eprintln!("parse error: {e}");
            return;
        }
    };
    let a = AffineAnalysis::run(&kernel);

    println!("\nper-instruction classification:");
    for (pc, i) in kernel.instrs.iter().enumerate() {
        let class = match a.def_class[pc] {
            AffClass::Scalar => "scalar",
            AffClass::Affine => "affine",
            AffClass::AffineMod => "affine+mod",
            AffClass::NonAffine => "-",
        };
        let taint = if a.tainted[pc] {
            "  [data-dependent CF]"
        } else {
            ""
        };
        println!("  {pc:3}: {:<38} {class}{taint}", i.to_string());
    }

    println!("\ndecoupling candidates:");
    if a.candidates.is_empty() {
        println!("  (none — DAC leaves this kernel untouched)");
    }
    for c in &a.candidates {
        let kind = match c.kind {
            CandidateKind::LoadData => "load  → enq.data",
            CandidateKind::StoreAddr => "store → enq.addr",
            CandidateKind::Pred => "pred  → enq.pred",
        };
        println!(
            "  pc {:3}: {kind}  (slice {:?}, {} divergent condition(s))",
            c.pc, c.slice, c.div_conditions
        );
    }

    let mix = a.static_mix(&kernel);
    println!(
        "\nFigure-6 mix: {:.0}% of {} static instructions potentially affine",
        100.0 * mix.potential_affine_fraction(),
        mix.total
    );

    let dk = decouple(&kernel, &a);
    if dk.any_decoupled {
        println!("\naffine stream:\n{}", dk.affine.disassemble());
        println!("non-affine stream:\n{}", dk.non_affine.disassemble());
    } else {
        println!("\n(nothing decoupled)");
    }
    println!();
}

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    if args.is_empty() {
        for (title, text) in DEMOS {
            explore(title, text);
        }
    } else {
        for path in args {
            match std::fs::read_to_string(&path) {
                Ok(text) => explore(&path, &text),
                Err(e) => eprintln!("{path}: {e}"),
            }
        }
    }
}

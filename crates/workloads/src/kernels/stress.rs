//! Divergence-stress workloads promoted from the `simt-fuzz` corpus.
//!
//! Each kernel was found by the differential fuzzer (seed 1 of generator
//! version 1) and frozen here as `.asm` text so the stress suite does not
//! depend on the generator staying bit-stable. The eight cover the axes the
//! fuzzer is biased toward — affine streaming, nested/irregular divergence,
//! switch-heavy control flow, partial warps, atomic pressure — and were
//! picked so the four designs react *differently*: two are strong DAC wins,
//! two are DAC degradations, and the rest are neutral stress.
//!
//! They deliberately live outside [`crate::kernels::all`]: the 29-benchmark
//! registry reproduces the paper's Table 2, while this set exists for
//! validation (golden pins in `simt-harness` and the affine-coverage table
//! in EXPERIMENTS.md).

use super::{SplitMix64, ARR_A, ARR_B, ARR_C};
use crate::{PaperClass, Suite, Workload};
use simt_ir::LaunchConfig;
use simt_mem::SparseMemory;

/// Words in each read-only input array — matches the fuzzer's `A_WORDS`.
const A_WORDS: u64 = 4096;
/// Atomic slots after the per-thread output words.
const SLOTS: u64 = 8;
/// The fuzzer seeds its memory image from `seed ^ MEM_SEED_XOR`; the frozen
/// kernels all come from seed 1, so the image replicates exactly.
const MEM_SEED: u64 = 1 ^ 0x5EED_F00D_D00F_DEE5;

struct Frozen {
    name: &'static str,
    abbr: &'static str,
    asm: &'static str,
    grid: u32,
    block: u32,
}

/// The frozen corpus: (generator index, launch geometry, character).
const FROZEN: [Frozen; 8] = [
    Frozen {
        name: "stress: switch-heavy decoupled streams (fz5)",
        abbr: "FZS05",
        asm: include_str!("stress/fz5.asm"),
        grid: 2,
        block: 64,
    },
    Frozen {
        name: "stress: affine loop, strong DAC win (fz7)",
        abbr: "FZS07",
        asm: include_str!("stress/fz7.asm"),
        grid: 2,
        block: 32,
    },
    Frozen {
        name: "stress: switch-dense, DAC degradation (fz11)",
        abbr: "FZS11",
        asm: include_str!("stress/fz11.asm"),
        grid: 3,
        block: 32,
    },
    Frozen {
        name: "stress: deeply nested divergence, affine-free (fz12)",
        abbr: "FZS12",
        asm: include_str!("stress/fz12.asm"),
        grid: 2,
        block: 64,
    },
    Frozen {
        name: "stress: ragged partial warp, pure affine (fz22)",
        abbr: "FZS22",
        asm: include_str!("stress/fz22.asm"),
        grid: 1,
        block: 11,
    },
    Frozen {
        name: "stress: irregular loop nest, long-running (fz66)",
        abbr: "FZS66",
        asm: include_str!("stress/fz66.asm"),
        grid: 1,
        block: 82,
    },
    Frozen {
        name: "stress: atomic chain, DAC degradation (fz77)",
        abbr: "FZS77",
        asm: include_str!("stress/fz77.asm"),
        grid: 1,
        block: 64,
    },
    Frozen {
        name: "stress: mixed atomics/switch/if, partial warps (fz85)",
        abbr: "FZS85",
        asm: include_str!("stress/fz85.asm"),
        grid: 3,
        block: 48,
    },
];

/// Build the eight divergence-stress workloads (fixed-size repros; no scale
/// knob — the geometry is part of each kernel's identity).
pub fn divergence_stress() -> Vec<Workload> {
    // One shared memory image: all frozen kernels come from the same
    // generator seed, so their input arrays and atomic-slot inits agree.
    FROZEN
        .iter()
        .map(|f| {
            let kernel = simt_ir::asm::parse_kernel(f.asm)
                .unwrap_or_else(|e| panic!("{}: frozen asm failed to parse: {e}", f.abbr));
            let threads = f.grid as u64 * f.block as u64;
            let d_base = ARR_C + threads * 4;
            let mut memory = SparseMemory::new();
            let mut rng = SplitMix64::new(MEM_SEED);
            for i in 0..A_WORDS {
                memory.write_u32(ARR_A + i * 4, rng.next_u64() as u32);
            }
            for i in 0..A_WORDS {
                memory.write_u32(ARR_B + i * 4, rng.next_u64() as u32);
            }
            for s in 0..SLOTS {
                memory.write_u32(d_base + s * 4, (rng.next_u64() & 0x3FFF_FFFF) as u32);
            }
            Workload {
                name: f.name,
                abbr: f.abbr,
                suite: Suite::GpgpuSim,
                paper_class: PaperClass::Compute,
                kernel,
                launch: LaunchConfig::linear(f.grid, f.block, vec![ARR_A, ARR_B, ARR_C, d_base]),
                memory,
                output: (ARR_C, (threads + SLOTS) as usize),
            }
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn frozen_corpus_parses_and_validates() {
        let all = divergence_stress();
        assert_eq!(all.len(), 8);
        for w in &all {
            w.kernel
                .validate()
                .unwrap_or_else(|e| panic!("{}: {e}", w.abbr));
            assert_eq!(w.launch.params.len(), w.kernel.num_params as usize);
            assert!(w.output.1 > 0);
        }
        // Abbreviations are unique and disjoint from the Table 2 registry.
        for w in &all {
            assert!(crate::benchmark(w.abbr, 1).is_none(), "{} collides", w.abbr);
        }
    }
}

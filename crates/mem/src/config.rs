//! Memory-system configuration.

/// Geometry and timing of the whole memory hierarchy (core-clock cycles).
///
/// Defaults model the paper's baseline GTX 480 (Table 1): 48 KB 4-way L1
/// per SM with 32 MSHRs, a 768 KB 8-way L2 in 6 partitions, and GDDR5-class
/// DRAM behind each partition. `gtx480(num_sms)` is the canonical
/// constructor.
#[derive(Debug, Clone, PartialEq)]
pub struct MemConfig {
    /// Cache line size in bytes (128 on Fermi).
    pub line_bytes: u64,
    /// L1 data cache size per SM.
    pub l1_size: u64,
    /// L1 associativity.
    pub l1_ways: usize,
    /// L1 hit latency (cycles from issue to data).
    pub l1_hit_latency: u64,
    /// MSHR entries per L1.
    pub mshr_entries: usize,
    /// Merged requests per MSHR entry.
    pub mshr_merge: usize,
    /// Number of L2 partitions (address-interleaved by line).
    pub num_partitions: usize,
    /// L2 size per partition.
    pub l2_size_per_partition: u64,
    /// L2 associativity.
    pub l2_ways: usize,
    /// One-way interconnect latency SM → partition.
    pub icnt_latency: u64,
    /// L2 lookup latency.
    pub l2_latency: u64,
    /// Request-queue capacity at each partition.
    pub l2_queue: usize,
    /// DRAM banks per partition.
    pub dram_banks: usize,
    /// Row-buffer reach in bytes (per bank).
    pub dram_row_bytes: u64,
    /// Latency of a row-buffer hit.
    pub dram_row_hit_latency: u64,
    /// Latency of a row-buffer miss (precharge + activate + CAS).
    pub dram_row_miss_latency: u64,
    /// Bank occupancy of a row hit (tCCD-class).
    pub dram_row_hit_busy: u64,
    /// Bank occupancy of a row miss (tRC-class).
    pub dram_row_miss_busy: u64,
    /// Data-bus occupancy per request (bandwidth cap: one 128 B line per
    /// `dram_burst_cycles` per partition).
    pub dram_burst_cycles: u64,
    /// DRAM command-queue capacity per partition.
    pub dram_queue: usize,
    /// Per-SM MTA prefetch buffer size (0 = none). The paper grants MTA a
    /// dedicated 16 KB buffer per SM in addition to the L1.
    pub prefetch_buffer_size: u64,
    /// Prefetch-buffer hit latency.
    pub prefetch_buffer_latency: u64,
    /// Perfect-memory mode: every access completes in
    /// `perfect_latency` cycles with no bandwidth limits (used for the
    /// Table 2 compute/memory classification).
    pub perfect: bool,
    /// Latency used in perfect mode.
    pub perfect_latency: u64,
}

impl MemConfig {
    /// The baseline GTX 480 memory system from Table 1.
    pub fn gtx480() -> Self {
        MemConfig {
            line_bytes: 128,
            l1_size: 48 * 1024,
            l1_ways: 4,
            l1_hit_latency: 28,
            mshr_entries: 32,
            mshr_merge: 8,
            num_partitions: 6,
            l2_size_per_partition: 128 * 1024,
            l2_ways: 8,
            icnt_latency: 60,
            l2_latency: 50,
            l2_queue: 16,
            dram_banks: 8,
            dram_row_bytes: 2048,
            dram_row_hit_latency: 60,
            dram_row_miss_latency: 130,
            dram_row_hit_busy: 12,
            dram_row_miss_busy: 56,
            dram_burst_cycles: 4,
            dram_queue: 32,
            prefetch_buffer_size: 0,
            prefetch_buffer_latency: 28,
            perfect: false,
            perfect_latency: 1,
        }
    }

    /// Baseline plus the MTA prefetch buffer (16 KB/SM, Table 1).
    pub fn gtx480_with_prefetch_buffer() -> Self {
        MemConfig {
            prefetch_buffer_size: 16 * 1024,
            ..Self::gtx480()
        }
    }

    /// Perfect memory (no latency, unlimited bandwidth) — used to classify
    /// benchmarks as compute- vs memory-intensive (paper §5.1.2).
    pub fn perfect() -> Self {
        MemConfig {
            perfect: true,
            ..Self::gtx480()
        }
    }

    /// Align an address down to its cache line.
    #[inline]
    pub fn line_of(&self, addr: u64) -> u64 {
        addr & !(self.line_bytes - 1)
    }

    /// The L2 partition servicing `line` (interleaved by line address).
    #[inline]
    pub fn partition_of(&self, line: u64) -> usize {
        ((line / self.line_bytes) % self.num_partitions as u64) as usize
    }
}

impl Default for MemConfig {
    fn default() -> Self {
        Self::gtx480()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn gtx480_geometry() {
        let c = MemConfig::gtx480();
        assert_eq!(c.l1_size / c.line_bytes / c.l1_ways as u64, 96); // 96 sets
        assert_eq!(
            c.num_partitions as u64 * c.l2_size_per_partition,
            768 * 1024
        );
    }

    #[test]
    fn line_and_partition_mapping() {
        let c = MemConfig::gtx480();
        assert_eq!(c.line_of(0x1234), 0x1200);
        assert_eq!(c.partition_of(0), 0);
        assert_eq!(c.partition_of(128), 1);
        assert_eq!(c.partition_of(128 * 6), 0);
    }

    #[test]
    fn perfect_flag() {
        assert!(MemConfig::perfect().perfect);
        assert!(!MemConfig::gtx480().perfect);
    }
}

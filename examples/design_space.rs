//! Design-space exploration beyond the paper: sweep DAC's hardware budget
//! (queue sizes, line locking, expansion behaviour) on a streaming workload
//! and print speedup per configuration.
//!
//! ```sh
//! cargo run --release --example design_space [ABBR]
//! ```

use dac_gpu::dac::DacConfig;
use dac_gpu::sim::GpuSim;
use dac_gpu::workloads::{benchmark, gpu_for, run_dac, run_design, Design};

fn main() {
    let abbr = std::env::args().nth(1).unwrap_or_else(|| "SR2".to_string());
    let w = benchmark(&abbr, 1).unwrap_or_else(|| {
        eprintln!("unknown benchmark {abbr}");
        std::process::exit(1);
    });
    let gpu = GpuSim::new(gpu_for(Design::Dac));
    let base = run_design(&w, Design::Baseline, &GpuSim::new(gpu_for(Design::Baseline)));
    println!("{}: baseline {} cycles\n", w.abbr, base.report.cycles);
    println!("{:<34} {:>9} {:>9}", "configuration", "cycles", "speedup");

    let sweep: Vec<(String, DacConfig)> = vec![
        ("paper (ATQ 24, PWQ 192, lock)".into(), DacConfig::paper()),
        (
            "ATQ 4".into(),
            DacConfig {
                atq_entries: 4,
                ..DacConfig::paper()
            },
        ),
        (
            "ATQ 96".into(),
            DacConfig {
                atq_entries: 96,
                ..DacConfig::paper()
            },
        ),
        (
            "PWQ 48 (shallow run-ahead)".into(),
            DacConfig {
                pwaq_total: 48,
                pwpq_total: 48,
                ..DacConfig::paper()
            },
        ),
        (
            "PWQ 768 (deep run-ahead)".into(),
            DacConfig {
                pwaq_total: 768,
                pwpq_total: 768,
                ..DacConfig::paper()
            },
        ),
        (
            "no L1 line locking".into(),
            DacConfig {
                lock_lines: false,
                ..DacConfig::paper()
            },
        ),
    ];

    for (label, cfg) in sweep {
        let run = run_dac(&w, &gpu, cfg);
        // Outputs must match the baseline regardless of configuration.
        assert_eq!(
            run.memory.read_u32_vec(w.output.0, w.output.1),
            base.memory.read_u32_vec(w.output.0, w.output.1),
            "{label}: outputs diverged"
        );
        println!(
            "{:<34} {:>9} {:>8.2}x",
            label,
            run.report.cycles,
            base.report.cycles as f64 / run.report.cycles as f64
        );
    }
}

//! Core-side simulation statistics.
//!
//! These counters feed the paper's figures directly: warp-instruction counts
//! (Fig. 17), decoupled-load percentages (Fig. 19), and the event counts the
//! energy model converts into Joules (Fig. 21).

/// Counters accumulated over a kernel run.
#[derive(Debug, Clone, Default, PartialEq)]
pub struct SimStats {
    /// Total elapsed cycles.
    pub cycles: u64,
    /// Warp instructions issued by ordinary (non-affine) warps.
    pub warp_instructions: u64,
    /// Warp instructions issued by the DAC affine warp (via coprocessor).
    pub affine_instructions: u64,
    /// Instructions CAE executed on its affine units instead of SIMT lanes.
    pub cae_affine_instructions: u64,
    /// Per-lane ALU operations (active lanes × ALU instructions).
    pub alu_lane_ops: u64,
    /// Per-lane SFU operations.
    pub sfu_lane_ops: u64,
    /// Register-file accesses (operand reads + writebacks, per lane).
    pub regfile_accesses: u64,
    /// Global/local load warp instructions issued.
    pub global_loads: u64,
    /// Global/local load warp instructions whose addresses came from a
    /// dequeued DAC record (the decoupled loads of Fig. 19).
    pub decoupled_loads: u64,
    /// Global/local store warp instructions.
    pub global_stores: u64,
    /// Shared-memory warp instructions.
    pub shared_accesses: u64,
    /// Atomic warp instructions.
    pub atomic_instructions: u64,
    /// Branch warp instructions.
    pub branches: u64,
    /// Barrier warp instructions.
    pub barriers: u64,
    /// Cycles in which no scheduler on an SM could issue (per-SM summed).
    pub idle_scheduler_cycles: u64,
    /// Issue slots consumed by the DAC affine engine.
    pub affine_issue_slots: u64,
    /// Warp-issue attempts blocked by an empty dequeue (DAC back-pressure).
    pub deq_empty_stalls: u64,
    /// Warp-issue attempts blocked waiting for decoupled data to arrive.
    pub deq_data_stalls: u64,
    /// enq instructions blocked on a full Affine Tuple Queue.
    pub enq_full_stalls: u64,
    /// DAC expansion-unit events: warp address records produced.
    pub aeu_records: u64,
    /// DAC expansion-unit events: predicate bit vectors produced.
    pub peu_records: u64,
    /// CTAs launched.
    pub ctas_launched: u64,
    /// Threads launched.
    pub threads_launched: u64,
    /// MTA prefetch requests issued.
    pub prefetches_issued: u64,
    /// Warp-issue attempts blocked by a scoreboard hazard.
    pub stall_scoreboard: u64,
    /// Warp-issue attempts blocked by a full LSU queue.
    pub stall_lsu_full: u64,
    /// Warp-issue attempts blocked at a CTA barrier.
    pub stall_barrier: u64,
    /// Sum over (cycle, SM) of ATQ occupancy while DAC is active; divide
    /// by `cycles` for mean occupancy.
    pub atq_occupancy_sum: u64,
    /// Sum over (cycle, SM) of expanded address records outstanding.
    pub pwaq_occupancy_sum: u64,
    /// Sum over (cycle, SM) of predicate bit-vectors outstanding.
    pub pwpq_occupancy_sum: u64,
    /// Sum over (cycle, SM) of affine-warp run-ahead distance (queued
    /// decoupled work: ATQ entries + expanded records).
    pub affine_runahead_sum: u64,
    /// Issue slots that issued a warp instruction (top-down bucket).
    pub slot_issued: u64,
    /// Issue slots unavailable because a prior multi-cycle issue still
    /// occupies the scheduler (top-down bucket).
    pub slot_busy: u64,
    /// Empty issue slots attributed to scoreboard hazards (top-down bucket).
    pub slot_scoreboard: u64,
    /// Empty issue slots attributed to a full LSU queue (top-down bucket).
    pub slot_lsu_full: u64,
    /// Empty issue slots attributed to warps parked at a CTA barrier
    /// (top-down bucket).
    pub slot_barrier: u64,
    /// Empty issue slots attributed to an empty DAC dequeue (top-down
    /// bucket).
    pub slot_deq_empty: u64,
    /// Empty issue slots attributed to decoupled data not yet arrived
    /// (top-down bucket).
    pub slot_deq_data: u64,
    /// Empty issue slots where only the affine engine wanted the slot but
    /// was blocked on a full ATQ (top-down bucket).
    pub slot_enq_full: u64,
    /// Empty issue slots with no schedulable warp resident at all
    /// (top-down bucket).
    pub slot_idle: u64,
}

/// Generates the by-name field table used by the experiment harness to
/// serialize and re-hydrate counter structs without an external serde.
macro_rules! stat_fields {
    ($($field:ident),* $(,)?) => {
        /// All counters as `(name, value)` pairs, in declaration order.
        /// The harness serializes these into JSONL artifacts and cache
        /// entries; names are part of the artifact schema.
        pub fn fields(&self) -> Vec<(&'static str, u64)> {
            vec![$((stringify!($field), self.$field)),*]
        }

        /// Set one counter by its serialized name. Returns `false` for an
        /// unknown name so loaders can reject stale cache entries.
        #[must_use]
        pub fn set_field(&mut self, name: &str, value: u64) -> bool {
            match name {
                $(stringify!($field) => self.$field = value,)*
                _ => return false,
            }
            true
        }
    };
}

impl SimStats {
    stat_fields!(
        cycles,
        warp_instructions,
        affine_instructions,
        cae_affine_instructions,
        alu_lane_ops,
        sfu_lane_ops,
        regfile_accesses,
        global_loads,
        decoupled_loads,
        global_stores,
        shared_accesses,
        atomic_instructions,
        branches,
        barriers,
        idle_scheduler_cycles,
        affine_issue_slots,
        deq_empty_stalls,
        deq_data_stalls,
        enq_full_stalls,
        aeu_records,
        peu_records,
        ctas_launched,
        threads_launched,
        prefetches_issued,
        stall_scoreboard,
        stall_lsu_full,
        stall_barrier,
        atq_occupancy_sum,
        pwaq_occupancy_sum,
        pwpq_occupancy_sum,
        affine_runahead_sum,
        slot_issued,
        slot_busy,
        slot_scoreboard,
        slot_lsu_full,
        slot_barrier,
        slot_deq_empty,
        slot_deq_data,
        slot_enq_full,
        slot_idle,
    );

    /// Field-wise sum: fold `other` into `self`. Exact — every counter is
    /// a `u64` total, so summing per-kernel bins reproduces the counters a
    /// single shared sink would have collected. Used by multi-stream runs
    /// to aggregate per-kernel attribution bins into the chip-wide report.
    pub fn accumulate(&mut self, other: &SimStats) {
        for ((name, a), (_, b)) in self.fields().into_iter().zip(other.fields()) {
            if b != 0 {
                let ok = self.set_field(name, a + b);
                debug_assert!(ok, "unknown SimStats field {name}");
            }
        }
    }

    /// Credit `k` skipped idle cycles to every counter: add
    /// `k × (self − before)`, field by field. Used by the fast-forward in
    /// the GPU loop — `before` is a snapshot taken just before a probe
    /// cycle that made no progress, so the delta is exactly what each of
    /// the `k` skipped cycles would also have accumulated (per-slot stall
    /// buckets, occupancy sums, idle-cycle counters). Because every cycle's
    /// bucket delta sums to `schedulers × SMs`, multiplying it preserves
    /// the [`SimStats::issue_slots_total`] invariant exactly.
    pub fn ff_credit(&mut self, before: &SimStats, k: u64) {
        let after = self.fields();
        for ((name, b), (_, a)) in before.fields().into_iter().zip(after) {
            debug_assert!(a >= b, "SimStats counter {name} went backwards");
            if a != b {
                let ok = self.set_field(name, a + (a - b) * k);
                debug_assert!(ok, "unknown SimStats field {name}");
            }
        }
    }

    /// Top-down issue-slot buckets as `(name, value)` pairs, in reporting
    /// order. Every scheduler issue slot of every cycle lands in exactly
    /// one bucket; `affine` reuses [`SimStats::affine_issue_slots`].
    pub fn issue_slot_buckets(&self) -> Vec<(&'static str, u64)> {
        vec![
            ("issued", self.slot_issued),
            ("affine", self.affine_issue_slots),
            ("busy", self.slot_busy),
            ("scoreboard", self.slot_scoreboard),
            ("lsu_full", self.slot_lsu_full),
            ("barrier", self.slot_barrier),
            ("deq_empty", self.slot_deq_empty),
            ("deq_data", self.slot_deq_data),
            ("enq_full", self.slot_enq_full),
            ("idle", self.slot_idle),
        ]
    }

    /// Sum of all top-down issue-slot buckets. The accounting invariant —
    /// checked after every run — is
    /// `issue_slots_total() == cycles × schedulers × SMs`.
    pub fn issue_slots_total(&self) -> u64 {
        self.issue_slot_buckets().iter().map(|&(_, v)| v).sum()
    }

    /// Total warp instructions across both streams.
    pub fn total_instructions(&self) -> u64 {
        self.warp_instructions + self.affine_instructions
    }

    /// Fraction of loads whose addresses were produced by the affine warp
    /// (Fig. 19), in [0, 1].
    pub fn decoupled_load_fraction(&self) -> f64 {
        if self.global_loads == 0 {
            0.0
        } else {
            self.decoupled_loads as f64 / self.global_loads as f64
        }
    }

    /// Fraction of all instructions that ran on the affine stream
    /// (§5.3's 4.6%), in [0, 1].
    pub fn affine_instruction_fraction(&self) -> f64 {
        let t = self.total_instructions();
        if t == 0 {
            0.0
        } else {
            self.affine_instructions as f64 / t as f64
        }
    }

    /// Instructions per cycle (all SMs).
    pub fn ipc(&self) -> f64 {
        if self.cycles == 0 {
            0.0
        } else {
            self.total_instructions() as f64 / self.cycles as f64
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn ratios_guard_zero() {
        let s = SimStats::default();
        assert_eq!(s.decoupled_load_fraction(), 0.0);
        assert_eq!(s.affine_instruction_fraction(), 0.0);
        assert_eq!(s.ipc(), 0.0);
    }

    #[test]
    fn fractions() {
        let s = SimStats {
            warp_instructions: 95,
            affine_instructions: 5,
            global_loads: 10,
            decoupled_loads: 8,
            cycles: 50,
            ..Default::default()
        };
        assert!((s.affine_instruction_fraction() - 0.05).abs() < 1e-12);
        assert!((s.decoupled_load_fraction() - 0.8).abs() < 1e-12);
        assert!((s.ipc() - 2.0).abs() < 1e-12);
    }
}

.kernel fz12
.params 4
    mad r0, %ctaid.x, %ntid.x, %tid.x;
    and r1, %tid.x, 31;
    shr r2, r0, 5;
    and r3, r0, 1;
    setp.gt p0, r3, 1;
    @!p0 bra L0;
    and r4, r1, 63;
    setp.ge p1, r4, 6;
    sel r5, r1, r0, p1;
    add r6, r0, r2;
    and r7, r1, 7;
    setp.gt p2, r7, 6;
    @!p2 bra L1;
    mov r8, 2;
    mov r9, 0;
L3:
    setp.ge p3, r9, r8;
    @p3 bra L2;
    mad r10, r0, 1, 49;
    mad r11, r10, 4, %p0;
    ld.global.b32 r12, [r11];
    add r13, r1, 62;
    mad r14, r6, 7, 20;
    and r15, r14, 4095;
    mad r16, r15, 4, %p0;
    ld.global.b32 r17, [r16];
    add r9, r9, 1;
    bra L3;
L2:
    and r18, r9, 63;
    setp.lt p4, r18, 3;
    sel r19, r9, r5, p4;
    mov r20, 6;
    mov r21, 0;
L5:
    setp.ge p5, r21, r20;
    @p5 bra L4;
    add r22, r21, 7;
    add r21, r21, 1;
    bra L5;
L4:
    bra L6;
L1:
    and r23, r22, 3;
    setp.eq p6, r23, 1;
    @p6 bra L7;
    setp.eq p7, r23, 2;
    @p7 bra L8;
    setp.eq p8, r23, 3;
    @p8 bra L9;
    mad r24, r0, 7, 58;
    and r25, r24, 4095;
    mad r26, r25, 4, %p1;
    and r27, r5, 15;
    setp.lt p9, r27, 0;
    @p9 ld.global.b32 r28, [r26];
    mad r29, r0, 4, 51;
    mad r30, r29, 4, %p0;
    ld.global.b32 r31, [r30];
    bra L6;
L7:
    and r32, r2, 15;
    bra L6;
L8:
    add r33, r0, 1;
    xor r34, r19, 83;
    bra L6;
L9:
    and r35, r17, 255;
    mad r36, r0, 4, 7;
    mad r37, r36, 4, %p1;
    ld.global.b32 r38, [r37];
    bra L6;
L6:
    bra L10;
L0:
    and r39, r22, 15;
    setp.eq p10, r39, 12;
    @!p10 bra L11;
    shr r40, r12, 1;
    xor r41, r21, 30;
    mad r42, r0, 2, 32;
    mad r43, r42, 4, %p0;
    ld.global.b32 r44, [r43];
    bra L12;
L11:
    and r45, r5, 7;
    mov r46, 0;
L13:
    setp.ge p11, r46, r45;
    @p11 bra L12;
    mad r47, r0, 4, %p2;
    st.global.b32 [r47], r46;
    add r48, r34, 7;
    add r46, r46, 1;
    bra L13;
L12:
    and r49, r19, 1;
    setp.eq p12, r49, 1;
    @p12 bra L14;
    and r50, r5, 7;
    setp.ge p13, r50, 2;
    @!p13 bra L15;
    add r51, r32, 12;
    bra L16;
L15:
    mad r52, r0, 1, 14;
    mad r53, r52, 4, %p0;
    ld.global.b32 r54, [r53];
L16:
    mad r55, r0, 4, %p2;
    st.global.b32 [r55], r5;
    bra L10;
L14:
    mad r56, r0, 4, %p2;
    st.global.b32 [r56], r46;
    bra L10;
L10:
    and r57, r17, 3;
    setp.gt p14, r57, 1;
    sel r58, r38, r44, p14;
    mad r59, r0, 1, 5;
    mad r60, r59, 4, %p1;
    ld.global.b32 r61, [r60];
    and r62, r17, 3;
    setp.eq p15, r62, 1;
    @p15 bra L17;
    setp.eq p16, r62, 2;
    @p16 bra L18;
    setp.eq p17, r62, 3;
    @p17 bra L19;
    and r63, r17, 3;
    setp.lt p18, r63, 1;
    sel r64, r41, r21, p18;
    mov r65, 7;
    mov r66, 0;
L23:
    setp.ge p19, r66, r65;
    @p19 bra L20;
    and r67, r22, 7;
    setp.eq p20, r67, 7;
    @!p20 bra L21;
    mad r68, r0, 1, 12;
    mad r69, r68, 4, %p1;
    ld.global.b32 r70, [r69];
    shr r71, r17, 3;
    shr r72, r35, 1;
    bra L22;
L21:
    and r73, r21, 1;
    setp.lt p21, r73, 0;
    sel r74, r71, r19, p21;
    and r75, r41, 63;
    setp.ne p22, r75, 11;
    mad r76, r0, 4, %p2;
    @p22 st.global.b32 [r76], r33;
L22:
    and r77, r9, 7;
    setp.eq p23, r77, 3;
    mad r78, r0, 4, %p2;
    @p23 st.global.b32 [r78], r48;
    add r66, r66, 1;
    bra L23;
L20:
    bra L24;
L17:
    and r79, r64, 3;
    setp.lt p24, r79, 0;
    @!p24 bra L25;
    add r80, r5, 37;
    and r81, r28, 7;
    setp.gt p25, r81, 7;
    @!p25 bra L26;
    rem r82, r21, 6;
    shl r83, r32, 0;
    bra L27;
L26:
    and r84, r66, 7;
    mad r85, r84, 4, %p3;
    and r86, r70, 65535;
    atom.min r87, [r85+0], r86;
    max r58, r58, r82;
L27:
    and r88, r28, 7;
    setp.lt p26, r88, 6;
    @!p26 bra L28;
    add r89, r64, 63;
    mad r90, r0, 1, 28;
    mad r91, r90, 4, %p1;
    ld.global.b32 r92, [r91];
    bra L29;
L28:
    mul r93, r44, 2;
    and r94, r13, 15;
    setp.ne p27, r94, 8;
    mad r95, r0, 4, %p2;
    @p27 st.global.b32 [r95], r72;
L29:
    bra L25;
L25:
    and r96, r54, 3;
    setp.eq p28, r96, 1;
    @p28 bra L30;
    setp.eq p29, r96, 2;
    @p29 bra L31;
    setp.eq p30, r96, 3;
    @p30 bra L32;
    mad r97, r74, 6, 45;
    and r98, r97, 4095;
    mad r99, r98, 4, %p1;
    ld.global.b32 r100, [r99];
    bra L33;
L30:
    and r101, r22, 7;
    mad r102, r101, 4, %p3;
    and r103, r100, 65535;
    atom.min r104, [r102+0], r103;
    bra L33;
L31:
    and r105, r33, 3;
    setp.gt p31, r105, 3;
    @!p31 bra L34;
    mad r106, r0, 4, %p2;
    st.global.b32 [r106], r19;
    mad r107, r0, 1, 36;
    mad r108, r107, 4, %p1;
    ld.global.b32 r109, [r108];
    bra L35;
L34:
    mad r110, r40, 6, 18;
    and r111, r110, 4095;
    mad r112, r111, 4, %p0;
    ld.global.b32 r113, [r112];
    add r114, r0, 7;
L35:
    mad r115, r1, r113, r58;
    bra L33;
L32:
    and r116, r33, 1;
    setp.eq p32, r116, 0;
    @!p32 bra L36;
    add r117, r19, r115;
    add r118, r1, 40;
    bra L36;
L36:
    and r119, r44, 1;
    setp.eq p33, r119, 1;
    @p33 bra L37;
    mad r120, r0, 4, 24;
    mad r121, r120, 4, %p0;
    ld.global.b32 r122, [r121];
    mad r123, r32, 5, 22;
    and r124, r123, 4095;
    mad r125, r124, 4, %p0;
    ld.global.b32 r126, [r125];
    bra L38;
L37:
    and r127, r82, r117;
    sub r128, r74, 21;
    bra L38;
L38:
    bra L33;
L33:
    bra L24;
L18:
    mov r129, 6;
    mov r130, 0;
L44:
    setp.ge p34, r130, r129;
    @p34 bra L39;
    shr r131, r74, 3;
    and r132, r64, 3;
    setp.eq p35, r132, 1;
    @p35 bra L40;
    setp.eq p36, r132, 2;
    @p36 bra L41;
    setp.eq p37, r132, 3;
    @p37 bra L42;
    add r133, r44, 20;
    bra L43;
L40:
    mad r134, r19, 2, 58;
    and r135, r134, 4095;
    mad r136, r135, 4, %p0;
    ld.global.b32 r137, [r136];
    bra L43;
L41:
    mad r138, r0, 4, 31;
    mad r139, r138, 4, %p0;
    ld.global.b32 r140, [r139];
    and r141, r66, 7;
    mad r142, r141, 4, %p3;
    and r143, r35, 65535;
    atom.min r144, [r142+0], r143;
    bra L43;
L42:
    sub r145, r117, r74;
    bra L43;
L43:
    add r146, r2, 28;
    add r130, r130, 1;
    bra L44;
L39:
    bra L24;
L19:
    and r147, r122, 31;
    setp.eq p38, r147, 3;
    @!p38 bra L45;
    and r148, r115, 1;
    setp.ge p39, r148, 0;
    @!p39 bra L46;
    mad r149, r0, 4, 13;
    mad r150, r149, 4, %p0;
    ld.global.b32 r151, [r150];
    bra L47;
L46:
    mad r152, r0, 1, 61;
    mad r153, r152, 4, %p0;
    ld.global.b32 r154, [r153];
    xor r155, r114, 3;
L47:
    mad r156, r0, 4, %p2;
    st.global.b32 [r156], r72;
    bra L48;
L45:
    and r157, r109, 15;
    setp.lt p40, r157, 9;
    @!p40 bra L49;
    shr r158, r64, 1;
    bra L48;
L49:
    mad r159, r0, 1, 34;
    mad r160, r159, 4, %p0;
    ld.global.b32 r161, [r160];
    xor r162, r61, 153;
L48:
    and r163, r1, 3;
    setp.ne p41, r163, 1;
    @!p41 bra L50;
    and r164, r38, 7;
    setp.lt p42, r164, 6;
    mad r165, r0, 4, %p2;
    @p42 st.global.b32 [r165], r137;
    bra L51;
L50:
    and r166, r13, 15;
    setp.ge p43, r166, 3;
    @!p43 bra L51;
    mul r167, r1, 2;
    bra L51;
L51:
    bra L24;
L24:
    mad r168, r13, 1, 22;
    and r169, r168, 4095;
    mad r170, r169, 4, %p0;
    ld.global.b32 r171, [r170];
    max r172, r80, r82;
    add r115, r115, r158;
    mad r173, r0, 1, 63;
    mad r174, r173, 4, %p0;
    ld.global.b32 r175, [r174];
    and r176, r100, 63;
    setp.eq p44, r176, 59;
    @!p44 bra L52;
    and r177, r126, 31;
    setp.ge p45, r177, 6;
    sel r178, r127, r58, p45;
    bra L53;
L52:
    and r179, r178, 3;
    setp.ne p46, r179, 3;
    @!p46 bra L54;
    mad r180, r0, 4, %p2;
    st.global.b32 [r180], r1;
    mad r181, r31, r155, r40;
    and r182, r175, 31;
    setp.lt p47, r182, 4;
    sel r183, r48, r28, p47;
    bra L55;
L54:
    and r184, r155, 3;
    setp.gt p48, r184, 1;
    @!p48 bra L55;
    mad r185, r0, 1, 29;
    mad r186, r185, 4, %p0;
    ld.global.b32 r187, [r186];
    add r188, r31, 2;
    bra L55;
L55:
    mad r189, r0, 1, 4;
    mad r190, r189, 4, %p1;
    ld.global.b32 r191, [r190];
L53:
    and r192, r32, 7;
    setp.lt p49, r192, 4;
    @!p49 bra L56;
    min r161, r161, r151;
    bra L57;
L56:
    and r193, r48, 31;
    setp.eq p50, r193, 24;
    @!p50 bra L58;
    and r194, r31, 1;
    setp.eq p51, r194, 1;
    @p51 bra L59;
    mad r195, r0, 2, 32;
    mad r196, r195, 4, %p1;
    ld.global.b32 r197, [r196];
    mad r198, r0, 4, %p2;
    st.global.b32 [r198], r0;
    bra L60;
L59:
    sub r199, r158, r13;
    mad r200, r22, 2, 41;
    and r201, r200, 4095;
    mad r202, r201, 4, %p1;
    ld.global.b32 r203, [r202];
    bra L60;
L60:
    bra L57;
L58:
    min r204, r70, r31;
    and r205, r12, 15;
    setp.eq p52, r205, 9;
    @!p52 bra L61;
    and r206, r21, 1;
    setp.ne p53, r206, 0;
    sel r207, r80, r34, p53;
    mad r208, r0, 2, 45;
    mad r209, r208, 4, %p1;
    ld.global.b32 r210, [r209];
    mad r211, r0, 2, 51;
    mad r212, r211, 4, %p1;
    ld.global.b32 r213, [r212];
    bra L57;
L61:
    and r214, r19, r127;
    mul r215, r5, 5;
L57:
    and r216, r17, 7;
    setp.ge p54, r216, 5;
    @!p54 bra L62;
    mad r217, r167, 3, 36;
    and r218, r217, 4095;
    mad r219, r218, 4, %p0;
    ld.global.b32 r220, [r219];
    mad r221, r0, 2, 52;
    mad r222, r221, 4, %p1;
    ld.global.b32 r223, [r222];
    bra L63;
L62:
    mad r224, r0, 1, 4;
    mad r225, r224, 4, %p0;
    ld.global.b32 r226, [r225];
L63:
    and r227, r66, 15;
    setp.lt p55, r227, 15;
    @!p55 bra L64;
    and r228, r34, 1;
    setp.eq p56, r228, 1;
    @p56 bra L65;
    mad r229, r92, 8, 9;
    and r230, r229, 4095;
    mad r231, r230, 4, %p1;
    ld.global.b32 r232, [r231];
    bra L66;
L65:
    mad r233, r0, 2, 8;
    mad r234, r233, 4, %p1;
    ld.global.b32 r235, [r234];
    bra L66;
L66:
    bra L67;
L64:
    and r236, r58, 7;
    setp.eq p57, r236, 6;
    @!p57 bra L68;
    mad r237, r35, 5, 47;
    and r238, r237, 4095;
    mad r239, r238, 4, %p0;
    and r240, r213, 3;
    setp.gt p58, r240, 0;
    @p58 ld.global.b32 r241, [r239];
    rem r242, r113, 2;
    bra L69;
L68:
    mov r243, 7;
    mov r244, 0;
L70:
    setp.ge p59, r244, r243;
    @p59 bra L69;
    mad r245, r0, 2, 62;
    mad r246, r245, 4, %p0;
    ld.global.b32 r247, [r246];
    add r248, r199, 40;
    add r244, r244, 1;
    bra L70;
L69:
    and r249, r213, 63;
    setp.gt p60, r249, 38;
    @!p60 bra L71;
    and r250, r0, 1;
    mad r251, r0, 4, 62;
    mad r252, r251, 4, %p0;
    ld.global.b32 r253, [r252];
    bra L67;
L71:
    mad r254, r0, 4, %p2;
    st.global.b32 [r254], r172;
L67:
    mad r255, r0, 4, %p2;
    st.global.b32 [r255], r253;
    exit;

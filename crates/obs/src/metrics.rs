//! A registry of counters, gauges, and fixed-bucket histograms.
//!
//! Each metric **family** has a stable name (`simt_*`), help text, a kind,
//! and one **series** per distinct label set. Histograms reuse
//! `simt-profile`'s allocation-free uniform-width [`Histogram`] — widths
//! and bucket counts are supplied at the first `observe` of a family and
//! shared by every series in it.
//!
//! Two registries exist in practice: [`global()`] (harness cache counters,
//! logger event counters — anything with no service handle in scope) and a
//! per-`SweepService` registry for service metrics, so concurrent
//! in-process services in tests do not interfere. Rendering concatenates
//! snapshots from both; family names are kept disjoint.
//!
//! All mutation is behind one mutex — these are service-tier metrics
//! (per request / per point, not per simulated cycle), so contention is
//! irrelevant and determinism (BTreeMap ordering everywhere) matters more.

use simt_profile::Histogram;
use std::collections::BTreeMap;
use std::sync::{Mutex, OnceLock};

/// Metric family kind, matching Prometheus `# TYPE` names.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Kind {
    /// Monotonically increasing count.
    Counter,
    /// A value that goes up and down.
    Gauge,
    /// Fixed-bucket distribution of `u64` samples.
    Histogram,
}

impl Kind {
    /// Prometheus `# TYPE` name.
    pub fn name(self) -> &'static str {
        match self {
            Kind::Counter => "counter",
            Kind::Gauge => "gauge",
            Kind::Histogram => "histogram",
        }
    }
}

enum Series {
    Counter(u64),
    Gauge(f64),
    Hist { width: u64, hist: Histogram },
}

struct Family {
    help: &'static str,
    kind: Kind,
    series: BTreeMap<Vec<(String, String)>, Series>,
}

/// A registry of metric families. Cheap to construct; every method takes
/// `&self`.
#[derive(Default)]
pub struct Registry {
    families: Mutex<BTreeMap<&'static str, Family>>,
}

fn label_key(labels: &[(&str, &str)]) -> Vec<(String, String)> {
    let mut key: Vec<(String, String)> = labels
        .iter()
        .map(|(k, v)| (k.to_string(), v.to_string()))
        .collect();
    key.sort();
    key
}

impl Registry {
    /// A fresh, empty registry.
    pub fn new() -> Registry {
        Registry::default()
    }

    /// Add `by` to the counter series `name{labels}` (created at 0 on
    /// first touch).
    pub fn counter_add(
        &self,
        name: &'static str,
        help: &'static str,
        labels: &[(&str, &str)],
        by: u64,
    ) {
        let mut families = self.families.lock().unwrap();
        let family = families.entry(name).or_insert_with(|| Family {
            help,
            kind: Kind::Counter,
            series: BTreeMap::new(),
        });
        debug_assert_eq!(family.kind, Kind::Counter, "kind mismatch for {name}");
        match family
            .series
            .entry(label_key(labels))
            .or_insert(Series::Counter(0))
        {
            Series::Counter(n) => *n += by,
            _ => debug_assert!(false, "series kind mismatch for {name}"),
        }
    }

    /// Set the gauge series `name{labels}` to `value`.
    pub fn gauge_set(
        &self,
        name: &'static str,
        help: &'static str,
        labels: &[(&str, &str)],
        value: f64,
    ) {
        let mut families = self.families.lock().unwrap();
        let family = families.entry(name).or_insert_with(|| Family {
            help,
            kind: Kind::Gauge,
            series: BTreeMap::new(),
        });
        debug_assert_eq!(family.kind, Kind::Gauge, "kind mismatch for {name}");
        match family
            .series
            .entry(label_key(labels))
            .or_insert(Series::Gauge(0.0))
        {
            Series::Gauge(g) => *g = value,
            _ => debug_assert!(false, "series kind mismatch for {name}"),
        }
    }

    /// Record `sample` into the histogram series `name{labels}`. The
    /// series is created on first touch with `num_buckets` uniform buckets
    /// of `width` each (the last bucket absorbs the overflow tail); later
    /// calls reuse the existing buckets and ignore the sizing arguments.
    pub fn observe(
        &self,
        name: &'static str,
        help: &'static str,
        labels: &[(&str, &str)],
        width: u64,
        num_buckets: usize,
        sample: u64,
    ) {
        let mut families = self.families.lock().unwrap();
        let family = families.entry(name).or_insert_with(|| Family {
            help,
            kind: Kind::Histogram,
            series: BTreeMap::new(),
        });
        debug_assert_eq!(family.kind, Kind::Histogram, "kind mismatch for {name}");
        match family
            .series
            .entry(label_key(labels))
            .or_insert_with(|| Series::Hist {
                width: width.max(1),
                hist: Histogram::new(width, num_buckets),
            }) {
            Series::Hist { hist, .. } => hist.record(sample),
            _ => debug_assert!(false, "series kind mismatch for {name}"),
        }
    }

    /// A deterministic point-in-time copy of every family, ordered by
    /// family name then label set.
    pub fn snapshot(&self) -> Vec<FamilySnapshot> {
        let families = self.families.lock().unwrap();
        families
            .iter()
            .map(|(name, family)| FamilySnapshot {
                name,
                help: family.help,
                kind: family.kind,
                series: family
                    .series
                    .iter()
                    .map(|(labels, series)| SeriesSnapshot {
                        labels: labels.clone(),
                        value: match series {
                            Series::Counter(n) => SeriesValue::Counter(*n),
                            Series::Gauge(g) => SeriesValue::Gauge(*g),
                            Series::Hist { width, hist } => SeriesValue::Hist(HistSnapshot {
                                width: *width,
                                buckets: hist.buckets().to_vec(),
                                count: hist.count(),
                                sum: hist.sum(),
                                min: hist.min(),
                                max: hist.max(),
                                mean: hist.mean(),
                                p50: hist.p50(),
                                p90: hist.p90(),
                                p99: hist.p99(),
                            }),
                        },
                    })
                    .collect(),
            })
            .collect()
    }
}

/// The process-global registry, for instrumentation points with no
/// service handle in scope (harness cache, logger self-counters).
pub fn global() -> &'static Registry {
    static GLOBAL: OnceLock<Registry> = OnceLock::new();
    GLOBAL.get_or_init(Registry::new)
}

/// Snapshot of one family: name, help, kind, and all series.
#[derive(Debug, Clone, PartialEq)]
pub struct FamilySnapshot {
    /// Family name (`simt_*`).
    pub name: &'static str,
    /// Help text for `# HELP`.
    pub help: &'static str,
    /// Counter / gauge / histogram.
    pub kind: Kind,
    /// All series, ordered by label set.
    pub series: Vec<SeriesSnapshot>,
}

/// Snapshot of one series within a family.
#[derive(Debug, Clone, PartialEq)]
pub struct SeriesSnapshot {
    /// Sorted `(key, value)` label pairs (empty for unlabeled series).
    pub labels: Vec<(String, String)>,
    /// The recorded value.
    pub value: SeriesValue,
}

/// Snapshot value of one series.
#[derive(Debug, Clone, PartialEq)]
pub enum SeriesValue {
    /// Counter total.
    Counter(u64),
    /// Current gauge value.
    Gauge(f64),
    /// Histogram state.
    Hist(HistSnapshot),
}

/// Snapshot of one fixed-bucket histogram.
#[derive(Debug, Clone, PartialEq)]
pub struct HistSnapshot {
    /// Uniform bucket width; bucket `i` covers `[i*width, (i+1)*width)`,
    /// the last bucket absorbs the overflow tail.
    pub width: u64,
    /// Per-bucket sample counts.
    pub buckets: Vec<u64>,
    /// Total samples.
    pub count: u64,
    /// Sum of all samples.
    pub sum: u64,
    /// Smallest sample (0 when empty).
    pub min: u64,
    /// Largest sample (0 when empty).
    pub max: u64,
    /// Mean sample (0 when empty).
    pub mean: f64,
    /// Median, at bucket-edge resolution.
    pub p50: u64,
    /// 90th percentile.
    pub p90: u64,
    /// 99th percentile.
    pub p99: u64,
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn counters_accumulate_per_label_set() {
        let reg = Registry::new();
        reg.counter_add("simt_test_total", "t", &[("kind", "a")], 2);
        reg.counter_add("simt_test_total", "t", &[("kind", "a")], 3);
        reg.counter_add("simt_test_total", "t", &[("kind", "b")], 1);
        let snap = reg.snapshot();
        assert_eq!(snap.len(), 1);
        assert_eq!(snap[0].series.len(), 2);
        assert_eq!(snap[0].series[0].value, SeriesValue::Counter(5));
        assert_eq!(snap[0].series[1].value, SeriesValue::Counter(1));
    }

    #[test]
    fn label_order_is_canonicalized() {
        let reg = Registry::new();
        reg.counter_add("simt_test_total", "t", &[("b", "2"), ("a", "1")], 1);
        reg.counter_add("simt_test_total", "t", &[("a", "1"), ("b", "2")], 1);
        let snap = reg.snapshot();
        assert_eq!(
            snap[0].series.len(),
            1,
            "same labels, any order → one series"
        );
        assert_eq!(snap[0].series[0].value, SeriesValue::Counter(2));
    }

    #[test]
    fn gauges_overwrite() {
        let reg = Registry::new();
        reg.gauge_set("simt_depth", "d", &[], 4.0);
        reg.gauge_set("simt_depth", "d", &[], 1.5);
        let snap = reg.snapshot();
        assert_eq!(snap[0].series[0].value, SeriesValue::Gauge(1.5));
    }

    #[test]
    fn histograms_report_percentiles() {
        let reg = Registry::new();
        for v in 0..100u64 {
            reg.observe("simt_lat_us", "l", &[("endpoint", "GET /x")], 10, 16, v);
        }
        let snap = reg.snapshot();
        match &snap[0].series[0].value {
            SeriesValue::Hist(h) => {
                assert_eq!(h.count, 100);
                assert_eq!(h.width, 10);
                assert_eq!(h.buckets.len(), 16);
                assert_eq!(h.p50, 50);
                assert_eq!(h.p90, 90);
                assert_eq!(h.p99, 99);
            }
            other => panic!("expected histogram, got {other:?}"),
        }
    }

    #[test]
    fn snapshot_orders_families_by_name() {
        let reg = Registry::new();
        reg.counter_add("simt_zz_total", "z", &[], 1);
        reg.counter_add("simt_aa_total", "a", &[], 1);
        let names: Vec<_> = reg.snapshot().iter().map(|f| f.name).collect();
        assert_eq!(names, ["simt_aa_total", "simt_zz_total"]);
    }
}

//! Core value and operand types of the SIMT machine.
//!
//! Registers hold 64-bit values ([`Value`]). Integer arithmetic is performed
//! on the full 64 bits (wrapping); floating-point operations interpret the
//! low 32 bits as an IEEE-754 `f32`, matching the 32-bit GPU data path while
//! leaving headroom for 64-bit addresses.

use std::fmt;

/// A virtual general-purpose register index within a kernel.
pub type RegId = u16;

/// A predicate register index within a kernel.
pub type PredId = u16;

/// The raw 64-bit contents of a register.
pub type Value = u64;

/// Reinterpret the low 32 bits of a register value as `f32`.
#[inline]
pub fn value_as_f32(v: Value) -> f32 {
    f32::from_bits(v as u32)
}

/// Pack an `f32` into a register value (zero-extended).
#[inline]
pub fn f32_as_value(f: f32) -> Value {
    f.to_bits() as Value
}

/// Memory spaces of the machine, mirroring PTX state spaces.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub enum Space {
    /// Off-chip global memory, served by L1/L2/DRAM.
    Global,
    /// Per-CTA on-chip scratchpad.
    Shared,
    /// Per-thread spill space; accessed through the cache hierarchy
    /// like global memory (the paper counts "global and local" loads
    /// together).
    Local,
}

impl fmt::Display for Space {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Space::Global => write!(f, "global"),
            Space::Shared => write!(f, "shared"),
            Space::Local => write!(f, "local"),
        }
    }
}

/// Access granularity of a memory instruction.
///
/// The Address Expansion Unit's warp address records carry these
/// "granularity bits" so a single cache-line address plus a bit mask can
/// encode each thread's word, half-word, or byte access (paper §4.2).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum Width {
    /// Byte access.
    W8,
    /// Half-word (16-bit) access.
    W16,
    /// Word (32-bit) access — the common case.
    W32,
    /// Double-word (64-bit) access.
    W64,
}

impl Width {
    /// Size of the access in bytes.
    #[inline]
    pub fn bytes(self) -> u64 {
        match self {
            Width::W8 => 1,
            Width::W16 => 2,
            Width::W32 => 4,
            Width::W64 => 8,
        }
    }
}

impl fmt::Display for Width {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "b{}", self.bytes() * 8)
    }
}

/// Read-only special registers, set by the hardware at thread launch.
///
/// These are the seeds of all affine computation: `Tid*`/`CtaId*` are affine
/// in the thread index, while `NTid*`/`NCtaId*` are scalars (uniform across
/// the grid).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum SpecialReg {
    /// `threadIdx.{x,y,z}`
    TidX,
    TidY,
    TidZ,
    /// `blockIdx.{x,y,z}`
    CtaIdX,
    CtaIdY,
    CtaIdZ,
    /// `blockDim.{x,y,z}`
    NTidX,
    NTidY,
    NTidZ,
    /// `gridDim.{x,y,z}`
    NCtaIdX,
    NCtaIdY,
    NCtaIdZ,
}

impl SpecialReg {
    /// All special registers, in a stable order.
    pub const ALL: [SpecialReg; 12] = [
        SpecialReg::TidX,
        SpecialReg::TidY,
        SpecialReg::TidZ,
        SpecialReg::CtaIdX,
        SpecialReg::CtaIdY,
        SpecialReg::CtaIdZ,
        SpecialReg::NTidX,
        SpecialReg::NTidY,
        SpecialReg::NTidZ,
        SpecialReg::NCtaIdX,
        SpecialReg::NCtaIdY,
        SpecialReg::NCtaIdZ,
    ];

    /// True if the register is uniform across every thread of the grid
    /// (`blockDim`/`gridDim`).
    pub fn is_grid_uniform(self) -> bool {
        matches!(
            self,
            SpecialReg::NTidX
                | SpecialReg::NTidY
                | SpecialReg::NTidZ
                | SpecialReg::NCtaIdX
                | SpecialReg::NCtaIdY
                | SpecialReg::NCtaIdZ
        )
    }

    /// True if the register is uniform across threads of one CTA
    /// (`blockIdx` and the grid-uniform registers).
    pub fn is_cta_uniform(self) -> bool {
        self.is_grid_uniform()
            || matches!(
                self,
                SpecialReg::CtaIdX | SpecialReg::CtaIdY | SpecialReg::CtaIdZ
            )
    }
}

impl fmt::Display for SpecialReg {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let s = match self {
            SpecialReg::TidX => "tid.x",
            SpecialReg::TidY => "tid.y",
            SpecialReg::TidZ => "tid.z",
            SpecialReg::CtaIdX => "ctaid.x",
            SpecialReg::CtaIdY => "ctaid.y",
            SpecialReg::CtaIdZ => "ctaid.z",
            SpecialReg::NTidX => "ntid.x",
            SpecialReg::NTidY => "ntid.y",
            SpecialReg::NTidZ => "ntid.z",
            SpecialReg::NCtaIdX => "nctaid.x",
            SpecialReg::NCtaIdY => "nctaid.y",
            SpecialReg::NCtaIdZ => "nctaid.z",
        };
        write!(f, "%{s}")
    }
}

/// A source operand of an instruction.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum Operand {
    /// A general-purpose register.
    Reg(RegId),
    /// A sign-extended immediate.
    Imm(i64),
    /// A hardware special register.
    Special(SpecialReg),
    /// A kernel parameter slot (uniform across the grid — e.g. array base
    /// pointers and problem sizes).
    Param(u16),
}

impl Operand {
    /// The register read by this operand, if any.
    pub fn reg(self) -> Option<RegId> {
        match self {
            Operand::Reg(r) => Some(r),
            _ => None,
        }
    }
}

impl fmt::Display for Operand {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Operand::Reg(r) => write!(f, "r{r}"),
            Operand::Imm(i) => write!(f, "{i}"),
            Operand::Special(s) => write!(f, "{s}"),
            Operand::Param(p) => write!(f, "%p{p}"),
        }
    }
}

impl From<RegId> for Operand {
    fn from(r: RegId) -> Self {
        Operand::Reg(r)
    }
}

impl From<i64> for Operand {
    fn from(i: i64) -> Self {
        Operand::Imm(i)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn f32_roundtrip() {
        for f in [0.0f32, -1.5, 3.25e9, f32::MIN_POSITIVE] {
            assert_eq!(value_as_f32(f32_as_value(f)), f);
        }
    }

    #[test]
    fn width_bytes() {
        assert_eq!(Width::W8.bytes(), 1);
        assert_eq!(Width::W16.bytes(), 2);
        assert_eq!(Width::W32.bytes(), 4);
        assert_eq!(Width::W64.bytes(), 8);
    }

    #[test]
    fn special_uniformity() {
        assert!(SpecialReg::NTidX.is_grid_uniform());
        assert!(!SpecialReg::CtaIdX.is_grid_uniform());
        assert!(SpecialReg::CtaIdX.is_cta_uniform());
        assert!(!SpecialReg::TidX.is_cta_uniform());
    }

    #[test]
    fn operand_display() {
        assert_eq!(Operand::Reg(3).to_string(), "r3");
        assert_eq!(Operand::Imm(-4).to_string(), "-4");
        assert_eq!(Operand::Special(SpecialReg::TidX).to_string(), "%tid.x");
        assert_eq!(Operand::Param(1).to_string(), "%p1");
    }
}

//! `dac-core` — the Decoupled Affine Computation hardware model.
//!
//! This crate is the *hardware half* of the paper (§4): it attaches to the
//! `simt-sim` pipeline through the [`simt_sim::CoProcessor`] hooks and
//! provides:
//!
//! * the **affine warp** ([`engine`]) — a per-SM sequencer that executes
//!   the affine instruction stream on affine tuples, once per resident CTA
//!   (see DESIGN.md for why per-CTA execution matches the paper's measured
//!   9× replacement factor), sharing the SM's issue slots;
//! * the **Affine Tuple Queue**, **Per-Warp Address Queues**, and
//!   **Per-Warp Predicate Queues** ([`queues`]) with Table 1 capacities;
//! * the **Address Expansion Unit** and **Predicate Expansion Unit**
//!   ([`coproc`]) that turn enqueued tuples into per-warp cache-line
//!   address records and predicate bit vectors, issue early (L1-locking)
//!   memory requests, and respect barrier epochs (§4.2–4.3);
//! * the **two-level Affine SIMT Stack** ([`astack`]) tracking the affine
//!   warp's control flow at warp granularity with per-thread fallback
//!   (§4.5);
//! * divergent affine tuples — values that differ across limited control
//!   flow divergence, selected per thread at expansion time (§4.6).
//!
//! # Example
//!
//! ```no_run
//! use dac_core::{Dac, DacConfig};
//! use affine::{AffineAnalysis, decouple};
//! use simt_ir::{Program, LaunchConfig};
//! use simt_sim::{GpuSim, GpuConfig};
//! use simt_mem::SparseMemory;
//!
//! # fn demo(kernel: simt_ir::Kernel, launch: LaunchConfig) {
//! let analysis = AffineAnalysis::run(&kernel);
//! let dk = affine::decouple(&kernel, &analysis);
//! let program = Program::new(dk.non_affine.clone(), launch).unwrap();
//! let mut dac = Dac::new(DacConfig::default(), dk);
//! let mut mem = SparseMemory::new();
//! let report = GpuSim::new(GpuConfig::gtx480()).run_with(&program, &mut mem, &mut dac);
//! println!("{} cycles", report.cycles);
//! # }
//! ```

pub mod astack;
pub mod config;
pub mod coproc;
pub mod engine;
pub mod queues;

pub use config::DacConfig;
pub use coproc::Dac;
pub use queues::{AtqEntry, DacQueues};

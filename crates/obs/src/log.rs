//! Leveled, structured event logging (`dac-log/v1`).
//!
//! One process-global logger, configured once near `main` (level, format)
//! and written to from anywhere via the [`error!`](crate::error),
//! [`warn!`](crate::warn), [`info!`](crate::info), and
//! [`debug!`](crate::debug) macros. Every event is one line on stderr:
//!
//! * **text** format — `[warn harness.cache] evicting corrupt entry
//!   hash=00ab… count=3` — the human default;
//! * **json** format — a `dac-log/v1` record: `{"schema":"dac-log/v1",
//!   "ts_us":…, "level":"warn", "target":"harness.cache", "msg":"…",
//!   "fields":{…}}` with an optional `"span"` id — the machine form CI
//!   validates against `schemas/log_v1.schema.json`.
//!
//! The level check is a single relaxed atomic load, done *before* the
//! message or any field expression is evaluated — a disabled event
//! allocates nothing and formats nothing. Events below the configured
//! level disappear; everything else is written line-atomically.

use std::fmt::Display;
use std::fmt::Write as _;
use std::sync::atomic::{AtomicU64, AtomicU8, Ordering};
use std::sync::{Arc, Mutex};
use std::time::{SystemTime, UNIX_EPOCH};

/// Schema tag on every JSON-format log line.
pub const SCHEMA: &str = "dac-log/v1";

/// Event severity. Ordering is by urgency: `Error < Warn < Info < Debug`,
/// and the configured level admits everything at or above its urgency.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord)]
#[repr(u8)]
pub enum Level {
    /// The operation failed and was not retried.
    Error = 1,
    /// Something unexpected was recovered from (evictions, dropped data).
    Warn = 2,
    /// Lifecycle and progress events (default level).
    Info = 3,
    /// Per-item detail (one event per point, per request, …).
    Debug = 4,
}

impl Level {
    /// The lowercase name used in log lines and `SIMT_LOG`.
    pub fn name(self) -> &'static str {
        match self {
            Level::Error => "error",
            Level::Warn => "warn",
            Level::Info => "info",
            Level::Debug => "debug",
        }
    }

    /// Parse a level name (`error|warn|info|debug`).
    pub fn parse(text: &str) -> Option<Level> {
        match text.to_ascii_lowercase().as_str() {
            "error" => Some(Level::Error),
            "warn" | "warning" => Some(Level::Warn),
            "info" => Some(Level::Info),
            "debug" => Some(Level::Debug),
            _ => None,
        }
    }
}

/// Line format: human text (default) or `dac-log/v1` JSONL.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Format {
    /// `[level target] msg k=v …`
    Text,
    /// One `dac-log/v1` JSON document per line.
    Json,
}

// 0 = off; otherwise a Level discriminant. Default: info.
static MAX_LEVEL: AtomicU8 = AtomicU8::new(Level::Info as u8);
// 0 = text, 1 = json.
static FORMAT: AtomicU8 = AtomicU8::new(0);
static NEXT_SPAN: AtomicU64 = AtomicU64::new(1);
// When set, lines go to this buffer instead of stderr (tests).
static CAPTURE: Mutex<Option<Arc<Mutex<String>>>> = Mutex::new(None);

/// Set the maximum admitted level.
pub fn set_level(level: Level) {
    MAX_LEVEL.store(level as u8, Ordering::Relaxed);
}

/// Disable all logging.
pub fn set_off() {
    MAX_LEVEL.store(0, Ordering::Relaxed);
}

/// Apply a level by name (`error|warn|info|debug|off`), as accepted by
/// `SIMT_LOG` and the `--log-level` flags.
pub fn set_level_str(text: &str) -> Result<(), String> {
    if text.eq_ignore_ascii_case("off") {
        set_off();
        return Ok(());
    }
    match Level::parse(text) {
        Some(level) => {
            set_level(level);
            Ok(())
        }
        None => Err(format!(
            "unknown log level {text:?} (expected error|warn|info|debug|off)"
        )),
    }
}

/// Set the line format.
pub fn set_format(format: Format) {
    FORMAT.store(matches!(format, Format::Json) as u8, Ordering::Relaxed);
}

/// Apply a format by name (`text|json`), as accepted by `SIMT_LOG_FORMAT`
/// and the `--log-format` flags.
pub fn set_format_str(text: &str) -> Result<(), String> {
    match text.to_ascii_lowercase().as_str() {
        "text" => {
            set_format(Format::Text);
            Ok(())
        }
        "json" => {
            set_format(Format::Json);
            Ok(())
        }
        other => Err(format!("unknown log format {other:?} (expected text|json)")),
    }
}

/// Configure the logger from `SIMT_LOG` (level) and `SIMT_LOG_FORMAT`
/// (format). Unset variables leave the defaults (info, text); invalid
/// values are reported on stderr and ignored. Every binary calls this
/// first thing in `main`; CLI flags may override afterwards.
pub fn init_from_env() {
    if let Ok(level) = std::env::var("SIMT_LOG") {
        if let Err(e) = set_level_str(&level) {
            eprintln!("warning: SIMT_LOG: {e}");
        }
    }
    if let Ok(format) = std::env::var("SIMT_LOG_FORMAT") {
        if let Err(e) = set_format_str(&format) {
            eprintln!("warning: SIMT_LOG_FORMAT: {e}");
        }
    }
}

/// Is `level` admitted right now? One relaxed atomic load — the macros
/// call this before evaluating any argument.
#[inline]
pub fn enabled(level: Level) -> bool {
    level as u8 <= MAX_LEVEL.load(Ordering::Relaxed)
}

/// Allocate a fresh span id (a correlation key grouping related events,
/// e.g. every point event of one sweep).
pub fn next_span() -> u64 {
    NEXT_SPAN.fetch_add(1, Ordering::Relaxed)
}

/// A typed field value. Everything the service tier logs converts into
/// one of these via `From`.
#[derive(Debug, Clone, PartialEq)]
pub enum FieldValue {
    /// Unsigned counter / hash.
    U64(u64),
    /// Signed integer.
    I64(i64),
    /// Float (non-finite values serialize as `null`).
    F64(f64),
    /// Boolean.
    Bool(bool),
    /// Text.
    Str(String),
}

macro_rules! impl_from {
    ($($ty:ty => $variant:ident as $conv:ty),* $(,)?) => {
        $(impl From<$ty> for FieldValue {
            fn from(v: $ty) -> FieldValue { FieldValue::$variant(v as $conv) }
        })*
    };
}
impl_from!(
    u64 => U64 as u64, u32 => U64 as u64, u16 => U64 as u64, usize => U64 as u64,
    i64 => I64 as i64, i32 => I64 as i64,
    f64 => F64 as f64, f32 => F64 as f64,
);

impl From<bool> for FieldValue {
    fn from(v: bool) -> FieldValue {
        FieldValue::Bool(v)
    }
}

impl From<&str> for FieldValue {
    fn from(v: &str) -> FieldValue {
        FieldValue::Str(v.to_string())
    }
}

impl From<String> for FieldValue {
    fn from(v: String) -> FieldValue {
        FieldValue::Str(v)
    }
}

fn escape_json_into(out: &mut String, s: &str) {
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => {
                let _ = write!(out, "\\u{:04x}", c as u32);
            }
            c => out.push(c),
        }
    }
    out.push('"');
}

fn write_field_json(out: &mut String, value: &FieldValue) {
    match value {
        FieldValue::U64(n) => {
            let _ = write!(out, "{n}");
        }
        FieldValue::I64(n) => {
            let _ = write!(out, "{n}");
        }
        FieldValue::F64(x) if x.is_finite() => {
            let _ = write!(out, "{x:?}");
        }
        FieldValue::F64(_) => out.push_str("null"),
        FieldValue::Bool(b) => out.push_str(if *b { "true" } else { "false" }),
        FieldValue::Str(s) => escape_json_into(out, s),
    }
}

fn write_field_text(out: &mut String, value: &FieldValue) {
    match value {
        FieldValue::U64(n) => {
            let _ = write!(out, "{n}");
        }
        FieldValue::I64(n) => {
            let _ = write!(out, "{n}");
        }
        FieldValue::F64(x) => {
            let _ = write!(out, "{x}");
        }
        FieldValue::Bool(b) => {
            let _ = write!(out, "{b}");
        }
        FieldValue::Str(s) if s.chars().any(|c| c.is_whitespace() || c == '"') => {
            let _ = write!(out, "{s:?}");
        }
        FieldValue::Str(s) => out.push_str(s),
    }
}

/// Emit one event. Called by the macros **after** their [`enabled`] check;
/// calling it directly bypasses level filtering.
pub fn write_event(
    level: Level,
    target: &str,
    msg: &dyn Display,
    span: Option<u64>,
    fields: &[(&str, FieldValue)],
) {
    crate::metrics::global().counter_add(
        "simt_log_events_total",
        "Structured log events emitted, by level.",
        &[("level", level.name())],
        1,
    );
    let json = FORMAT.load(Ordering::Relaxed) == 1;
    let mut line = String::with_capacity(96);
    if json {
        let ts_us = SystemTime::now()
            .duration_since(UNIX_EPOCH)
            .unwrap_or_default()
            .as_micros() as u64;
        let _ = write!(line, "{{\"schema\":\"{SCHEMA}\",\"ts_us\":{ts_us}");
        let _ = write!(line, ",\"level\":\"{}\",\"target\":", level.name());
        escape_json_into(&mut line, target);
        line.push_str(",\"msg\":");
        escape_json_into(&mut line, &msg.to_string());
        if let Some(span) = span {
            let _ = write!(line, ",\"span\":{span}");
        }
        line.push_str(",\"fields\":{");
        for (i, (k, v)) in fields.iter().enumerate() {
            if i > 0 {
                line.push(',');
            }
            escape_json_into(&mut line, k);
            line.push(':');
            write_field_json(&mut line, v);
        }
        line.push_str("}}");
    } else {
        let _ = write!(line, "[{} {target}] {msg}", level.name());
        for (k, v) in fields {
            let _ = write!(line, " {k}=");
            write_field_text(&mut line, v);
        }
        if let Some(span) = span {
            let _ = write!(line, " span={span}");
        }
    }
    let capture = CAPTURE.lock().unwrap().clone();
    match capture {
        Some(buf) => {
            let mut buf = buf.lock().unwrap();
            buf.push_str(&line);
            buf.push('\n');
        }
        None => eprintln!("{line}"),
    }
}

/// Redirect log lines into an in-memory buffer until the guard drops.
/// Test-only: the logger is process-global, so tests using this must not
/// run concurrently with other capturing tests.
pub fn capture() -> CaptureGuard {
    let buf = Arc::new(Mutex::new(String::new()));
    *CAPTURE.lock().unwrap() = Some(Arc::clone(&buf));
    CaptureGuard { buf }
}

/// Guard returned by [`capture`]; restores stderr logging on drop.
pub struct CaptureGuard {
    buf: Arc<Mutex<String>>,
}

impl CaptureGuard {
    /// Take everything captured so far.
    pub fn take(&self) -> String {
        std::mem::take(&mut self.buf.lock().unwrap())
    }
}

impl Drop for CaptureGuard {
    fn drop(&mut self) {
        *CAPTURE.lock().unwrap() = None;
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::MutexGuard;

    // The logger is process-global; serialize every test that touches it.
    static TEST_LOCK: Mutex<()> = Mutex::new(());

    fn lock() -> MutexGuard<'static, ()> {
        TEST_LOCK.lock().unwrap_or_else(|e| e.into_inner())
    }

    #[test]
    fn level_parsing_round_trips() {
        for level in [Level::Error, Level::Warn, Level::Info, Level::Debug] {
            assert_eq!(Level::parse(level.name()), Some(level));
        }
        assert_eq!(Level::parse("verbose"), None);
        assert!(set_level_str("nope").is_err());
        assert!(set_format_str("xml").is_err());
    }

    #[test]
    fn disabled_levels_evaluate_nothing() {
        let _guard = lock();
        let cap = capture();
        set_level(Level::Warn);
        let mut evaluated = false;
        crate::debug!("obs.test", {
            evaluated = true;
            "should not appear"
        });
        assert!(!evaluated, "disabled event must not evaluate its message");
        crate::warn!("obs.test", "does appear");
        let out = cap.take();
        assert!(out.contains("does appear"), "{out:?}");
        assert!(!out.contains("should not appear"), "{out:?}");
        set_level(Level::Info);
    }

    #[test]
    fn json_lines_are_valid_and_escaped() {
        let _guard = lock();
        let cap = capture();
        set_level(Level::Info);
        set_format(Format::Json);
        crate::info!("obs.test", "quote \" and newline \n here";
            hash = 0xdeadbeefu64, label = "a \"b\"\nc", ok = true, rate = 0.5f64);
        set_format(Format::Text);
        let out = cap.take();
        let line = out.lines().next().expect("one line");
        assert!(line.starts_with("{\"schema\":\"dac-log/v1\",\"ts_us\":"));
        assert!(line.contains("\"level\":\"info\""));
        assert!(line.contains("\"hash\":3735928559"));
        assert!(line.contains("\"ok\":true"));
        assert!(line.contains("\"rate\":0.5"));
        assert!(line.contains("\\\"b\\\"\\nc"));
        assert!(!line[1..].contains('\n'), "JSONL lines are newline-free");
    }

    #[test]
    fn text_lines_carry_fields_and_span() {
        let _guard = lock();
        let cap = capture();
        set_level(Level::Info);
        crate::log_at!(Level::Info, Some(7), "obs.test", "point done";
            label = "LIB/dac", wall_us = 1234u64);
        let out = cap.take();
        assert_eq!(
            out.trim(),
            "[info obs.test] point done label=LIB/dac wall_us=1234 span=7"
        );
    }

    #[test]
    fn span_ids_are_unique() {
        let a = next_span();
        let b = next_span();
        assert_ne!(a, b);
    }
}

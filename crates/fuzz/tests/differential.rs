//! A broad differential window: generated kernels through all four designs
//! with every invariant checked. The CI smoke step runs a bigger window via
//! the `fuzz` binary; this keeps a meaningful slice in `cargo test`.

use simt_fuzz::diff::case_id;
use simt_fuzz::{check_workload, gen_spec, DiffConfig};

#[test]
fn differential_window_seed_1() {
    let cfg = DiffConfig::default();
    for index in 0..16u64 {
        let w = gen_spec(1, index).build_workload();
        let runs = check_workload(&w, &cfg)
            .unwrap_or_else(|f| panic!("kernel {} ({}): {f}", case_id(1, index), w.abbr));
        assert_eq!(runs.len(), 4);
        let first = &runs[0].output;
        for r in &runs[1..] {
            assert_eq!(&r.output, first, "kernel {}", case_id(1, index));
        }
    }
}

#[test]
fn differential_window_alt_seed() {
    let cfg = DiffConfig::default();
    for index in 0..10u64 {
        let w = gen_spec(0xFEED_FACE, index).build_workload();
        check_workload(&w, &cfg)
            .unwrap_or_else(|f| panic!("kernel {} ({}): {f}", case_id(0xFEED_FACE, index), w.abbr));
    }
}

/// The generated workload itself is deterministic down to the bytes the
/// harness cares about: same seed/index → same abbr, same kernel, same
/// initial memory image, same oracle digest.
#[test]
fn workload_construction_is_deterministic() {
    use simt_fuzz::diff::digest_words;
    use simt_fuzz::run_oracle;
    for index in [0u64, 3, 7] {
        let a = gen_spec(0x5EED, index).build_workload();
        let b = gen_spec(0x5EED, index).build_workload();
        assert_eq!(a.abbr, b.abbr);
        assert_eq!(a.kernel.instrs, b.kernel.instrs);
        let digest = |w: &gpu_workloads::Workload| {
            let mut m = w.fresh_memory();
            run_oracle(&w.kernel, &w.launch, &mut m).unwrap();
            digest_words(&m.read_u32_vec(w.output.0, w.output.1))
        };
        assert_eq!(digest(&a), digest(&b));
    }
}

//! Golden report test: pins one full bottleneck report byte for byte.
//!
//! The report is documented as deterministic — same simulator, same
//! workload, same bytes on any machine — and downstream tooling (CI
//! artifact diffing) relies on that. Regenerate after an intentional
//! simulator change with:
//!
//! ```sh
//! UPDATE_GOLDEN=1 cargo test -p simt-profile --test golden_report
//! ```
//!
//! and review the diff like any other golden update (and bump
//! `CACHE_VERSION` if counters moved).

use gpu_workloads::{gpu_for, Design};
use simt_harness::{DesignPoint, Job, Overrides};
use simt_profile::{report, DesignProfile, ProfileSink, WorkloadProfile};
use std::sync::Arc;

const GOLDEN_PATH: &str = "tests/golden/bfs_report.md";

/// Mirror of the profile binary's per-run setup (small 2-SM machine).
fn profile_bfs() -> WorkloadProfile {
    let overrides = Overrides {
        num_sms: Some(2),
        max_warps_per_sm: Some(16),
        ..Overrides::default()
    };
    let mut designs = Vec::new();
    for d in Design::ALL {
        let w = gpu_workloads::benchmark("BFS", 1).expect("known benchmark");
        let mut job = Job::new(Arc::new(w), 1, DesignPoint::Hw(d));
        job.overrides = overrides.clone();
        let cfg = overrides.apply_gpu(gpu_for(d));
        let cutoff = cfg.mem.l1_hit_latency.max(cfg.mem.prefetch_buffer_latency);
        let mut sink = ProfileSink::new(cutoff);
        let result = job.execute_traced(&mut sink);
        designs.push(DesignProfile::new(d.name(), &result.report, sink));
    }
    WorkloadProfile {
        bench: "BFS".into(),
        scale: 1,
        designs,
    }
}

#[test]
fn bfs_report_matches_golden_bytes() {
    let wp = profile_bfs();
    let got = report::markdown(std::slice::from_ref(&wp));
    if std::env::var_os("UPDATE_GOLDEN").is_some() {
        std::fs::write(GOLDEN_PATH, &got).expect("write golden");
        return;
    }
    let want = std::fs::read_to_string(GOLDEN_PATH)
        .expect("golden file present (run with UPDATE_GOLDEN=1 to create)");
    assert_eq!(
        got, want,
        "profile report drifted from {GOLDEN_PATH}; if intentional, \
         regenerate with UPDATE_GOLDEN=1 and review the diff"
    );
}

#[test]
fn bfs_json_report_is_stable_across_renders() {
    let wp = profile_bfs();
    let a = report::json(std::slice::from_ref(&wp));
    let b = report::json(std::slice::from_ref(&profile_bfs()));
    assert_eq!(a, b, "JSON report must be deterministic across runs");
}

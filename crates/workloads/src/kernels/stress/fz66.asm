.kernel fz66
.params 4
    mad r0, %ctaid.x, %ntid.x, %tid.x;
    and r1, %tid.x, 31;
    shr r2, r0, 5;
    mov r3, 6;
    mov r4, 0;
L3:
    setp.ge p0, r4, r3;
    @p0 bra L0;
    mad r5, r0, 4, %p2;
    st.global.b32 [r5], r1;
    mov r6, 3;
    mov r7, 0;
L2:
    setp.ge p1, r7, r6;
    @p1 bra L1;
    and r8, r2, 7;
    setp.lt p2, r8, 5;
    sel r9, r7, r2, p2;
    and r10, r7, 15;
    add r7, r7, 1;
    bra L2;
L1:
    mad r11, r10, 8, 39;
    and r12, r11, 4095;
    mad r13, r12, 4, %p1;
    ld.global.b32 r14, [r13];
    add r4, r4, 1;
    bra L3;
L0:
    add r15, r0, 13;
    and r16, r2, 3;
    setp.gt p3, r16, 1;
    @!p3 bra L4;
    mad r17, r0, 1, 43;
    mad r18, r17, 4, %p1;
    ld.global.b32 r19, [r18];
    bra L4;
L4:
    and r20, r19, 7;
    mad r21, r20, 4, %p3;
    and r22, r19, 65535;
    atom.add r23, [r21+0], r22;
    xor r19, r19, r2;
    and r24, r1, 7;
    setp.lt p4, r24, 3;
    @!p4 bra L5;
    and r25, r14, 7;
    mov r26, 0;
L11:
    setp.ge p5, r26, r25;
    @p5 bra L6;
    and r27, r19, 3;
    setp.eq p6, r27, 1;
    @p6 bra L7;
    setp.eq p7, r27, 2;
    @p7 bra L8;
    setp.eq p8, r27, 3;
    @p8 bra L9;
    mad r28, r0, 1, 47;
    mad r29, r28, 4, %p1;
    ld.global.b32 r30, [r29];
    rem r31, r10, 7;
    bra L10;
L7:
    shl r32, r15, 2;
    and r33, r10, 15;
    setp.ne p9, r33, 6;
    sel r34, r26, r9, p9;
    bra L10;
L8:
    mad r35, r31, 8, 47;
    and r36, r35, 4095;
    mad r37, r36, 4, %p0;
    ld.global.b32 r38, [r37];
    bra L10;
L9:
    mad r39, r0, 1, 38;
    mad r40, r39, 4, %p1;
    ld.global.b32 r41, [r40];
    bra L10;
L10:
    or r42, r9, r26;
    add r26, r26, 1;
    bra L11;
L6:
    and r43, r1, 1;
    setp.eq p10, r43, 1;
    @p10 bra L12;
    mov r44, 5;
    mov r45, 0;
L14:
    setp.ge p11, r45, r44;
    @p11 bra L13;
    add r46, r15, 57;
    add r45, r45, 1;
    bra L14;
L13:
    bra L15;
L12:
    mad r47, r0, 4, 54;
    mad r48, r47, 4, %p0;
    ld.global.b32 r49, [r48];
    bra L15;
L15:
    mad r50, r0, 2, 38;
    mad r51, r50, 4, %p1;
    ld.global.b32 r52, [r51];
    bra L5;
L5:
    and r53, r41, 255;
    cvt.f32.s64 r54, r53;
    mad.f32 r55, r54, 1086324736, 1077936128;
    cvt.s64.f32 r56, r55;
    mov r57, 7;
    mov r58, 0;
L21:
    setp.ge p12, r58, r57;
    @p12 bra L16;
    mov r59, 3;
    mov r60, 0;
L20:
    setp.ge p13, r60, r59;
    @p13 bra L17;
    and r61, r49, 1;
    setp.eq p14, r61, 1;
    @p14 bra L18;
    mul r62, r56, 6;
    shr r63, r14, 0;
    bra L19;
L18:
    and r64, r63, 7;
    mad r65, r64, 4, %p3;
    and r66, r10, 65535;
    atom.add r67, [r65+0], r66;
    bra L19;
L19:
    sub r68, r42, 35;
    add r69, r10, 15;
    add r60, r60, 1;
    bra L20;
L17:
    add r58, r58, 1;
    bra L21;
L16:
    and r70, r38, r26;
    mad r71, r0, 4, %p2;
    st.global.b32 [r71], r70;
    exit;

//! The affine type lattice and the per-op transfer function (paper §4.7).
//!
//! `Scalar ⊑ Affine ⊑ AffineMod ⊑ NonAffine`, joined with `max`. *Scalar*
//! means uniform across the threads of a CTA (kernel parameters, grid/block
//! dimensions, and — because the affine engine executes per CTA — block
//! indices). *Affine* is linear in the thread index; *AffineMod* is affine
//! followed by one scalar modulo (§4.4); *NonAffine* is everything else.

use simt_ir::{Op, Operand};

/// A point in the affine type lattice.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub enum AffClass {
    /// Uniform across the CTA.
    Scalar,
    /// Linear in the thread index.
    Affine,
    /// Affine followed by a scalar modulo.
    AffineMod,
    /// Not representable as an affine tuple.
    NonAffine,
}

impl AffClass {
    /// Lattice join.
    pub fn join(self, other: AffClass) -> AffClass {
        self.max(other)
    }

    /// Is the class representable by the affine engine (≤ AffineMod)?
    pub fn is_affine(self) -> bool {
        self != AffClass::NonAffine
    }
}

/// Class of a non-register operand.
pub fn operand_class(op: Operand) -> AffClass {
    match op {
        Operand::Imm(_) | Operand::Param(_) => AffClass::Scalar,
        Operand::Special(s) => {
            if s.is_cta_uniform() {
                AffClass::Scalar
            } else {
                AffClass::Affine
            }
        }
        Operand::Reg(_) => unreachable!("register classes come from dataflow"),
    }
}

/// Result of the per-op transfer.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Transfer {
    /// Class of the destination.
    pub class: AffClass,
    /// The op needed a divergence-extension slot (min/max/abs/sel with
    /// affine operands, §4.6).
    pub divergent: bool,
}

/// Transfer function: destination class of `op` given source classes.
pub fn transfer(op: Op, srcs: &[AffClass]) -> Transfer {
    use AffClass::*;
    let max = srcs.iter().copied().fold(Scalar, AffClass::join);
    // Uniform inputs compute uniformly, whatever the op.
    if max == Scalar {
        return Transfer {
            class: Scalar,
            divergent: false,
        };
    }
    let plain = |class| Transfer {
        class,
        divergent: false,
    };
    match op {
        Op::Mov | Op::Neg => plain(if srcs[0] == AffineMod && op == Op::Neg {
            NonAffine
        } else {
            srcs[0]
        }),
        Op::Add | Op::Sub => {
            let (a, b) = (srcs[0], srcs[1]);
            match (a, b) {
                (NonAffine, _) | (_, NonAffine) => plain(NonAffine),
                (AffineMod, AffineMod) => plain(NonAffine),
                (AffineMod, Scalar) => plain(AffineMod),
                (Scalar, AffineMod) => plain(if op == Op::Sub { NonAffine } else { AffineMod }),
                (AffineMod, Affine) | (Affine, AffineMod) => plain(NonAffine),
                _ => plain(a.join(b)),
            }
        }
        Op::Mul => {
            let (a, b) = (srcs[0], srcs[1]);
            if a == Scalar && b.is_affine() {
                plain(b)
            } else if b == Scalar && a.is_affine() {
                plain(a)
            } else {
                plain(NonAffine)
            }
        }
        Op::Mad => {
            let prod = transfer(Op::Mul, &srcs[0..2]);
            let sum = transfer(Op::Add, &[prod.class, srcs[2]]);
            Transfer {
                class: sum.class,
                divergent: false,
            }
        }
        Op::Shl => {
            if srcs[1] == Scalar && srcs[0].is_affine() {
                plain(srcs[0])
            } else {
                plain(NonAffine)
            }
        }
        Op::Rem => {
            if srcs[1] == Scalar && srcs[0] <= Affine {
                plain(AffineMod)
            } else {
                plain(NonAffine)
            }
        }
        Op::Min | Op::Max | Op::Abs => {
            // Divergence-extended ops (§4.6): value assignment +
            // predication folded into one instruction.
            if max <= Affine {
                Transfer {
                    class: Affine,
                    divergent: true,
                }
            } else {
                plain(NonAffine)
            }
        }
        // Everything else is not linear in tid.
        _ => plain(NonAffine),
    }
}

/// Is a comparison decoupleable by the Predicate Expansion Unit? The paper
/// requires one operand to be a scalar (§4.3).
pub fn predicate_decoupleable(a: AffClass, b: AffClass, float: bool) -> bool {
    if float {
        return a == AffClass::Scalar && b == AffClass::Scalar;
    }
    (a == AffClass::Scalar && b.is_affine()) || (b == AffClass::Scalar && a.is_affine())
}

#[cfg(test)]
mod tests {
    use super::*;
    use simt_ir::SpecialReg;
    use AffClass::*;

    #[test]
    fn lattice_order() {
        assert!(Scalar < Affine);
        assert!(Affine < AffineMod);
        assert!(AffineMod < NonAffine);
        assert_eq!(Scalar.join(Affine), Affine);
        assert_eq!(NonAffine.join(Scalar), NonAffine);
    }

    #[test]
    fn scalar_inputs_always_scalar() {
        for op in [Op::FMul, Op::Xor, Op::Div, Op::FSqrt] {
            assert_eq!(transfer(op, &[Scalar, Scalar, Scalar]).class, Scalar);
        }
    }

    #[test]
    fn add_mul_rules() {
        assert_eq!(transfer(Op::Add, &[Affine, Scalar]).class, Affine);
        assert_eq!(transfer(Op::Add, &[Affine, Affine]).class, Affine);
        assert_eq!(transfer(Op::Mul, &[Affine, Scalar]).class, Affine);
        assert_eq!(transfer(Op::Mul, &[Affine, Affine]).class, NonAffine);
        assert_eq!(transfer(Op::Mad, &[Affine, Scalar, Scalar]).class, Affine);
        assert_eq!(
            transfer(Op::Mad, &[Affine, Affine, Scalar]).class,
            NonAffine
        );
    }

    #[test]
    fn mod_rules() {
        assert_eq!(transfer(Op::Rem, &[Affine, Scalar]).class, AffineMod);
        assert_eq!(transfer(Op::Add, &[AffineMod, Scalar]).class, AffineMod);
        assert_eq!(transfer(Op::Mul, &[AffineMod, Scalar]).class, AffineMod);
        assert_eq!(transfer(Op::Add, &[AffineMod, Affine]).class, NonAffine);
        assert_eq!(transfer(Op::Rem, &[AffineMod, Scalar]).class, NonAffine);
    }

    #[test]
    fn divergence_extended_ops() {
        let t = transfer(Op::Max, &[Affine, Scalar]);
        assert_eq!(t.class, Affine);
        assert!(t.divergent);
        let t = transfer(Op::Min, &[Scalar, Scalar]);
        assert_eq!(t.class, Scalar);
        assert!(!t.divergent);
        assert_eq!(transfer(Op::Abs, &[AffineMod]).class, NonAffine);
    }

    #[test]
    fn bitwise_on_affine_is_nonaffine() {
        assert_eq!(transfer(Op::And, &[Affine, Scalar]).class, NonAffine);
        assert_eq!(transfer(Op::Shr, &[Affine, Scalar]).class, NonAffine);
        assert_eq!(transfer(Op::Shl, &[Affine, Scalar]).class, Affine);
    }

    #[test]
    fn operand_classes() {
        assert_eq!(operand_class(Operand::Imm(5)), Scalar);
        assert_eq!(operand_class(Operand::Param(0)), Scalar);
        assert_eq!(operand_class(Operand::Special(SpecialReg::TidX)), Affine);
        assert_eq!(operand_class(Operand::Special(SpecialReg::CtaIdX)), Scalar);
        assert_eq!(operand_class(Operand::Special(SpecialReg::NTidX)), Scalar);
    }

    #[test]
    fn predicate_rules() {
        assert!(predicate_decoupleable(Scalar, Affine, false));
        assert!(predicate_decoupleable(AffineMod, Scalar, false));
        assert!(!predicate_decoupleable(Affine, Affine, false));
        assert!(!predicate_decoupleable(NonAffine, Scalar, false));
        assert!(predicate_decoupleable(Scalar, Scalar, true));
        assert!(!predicate_decoupleable(Scalar, Affine, true));
    }
}

//! JSONL exporter: the `dac-trace/v1` format.
//!
//! Shape follows the harness's `dac-run/v1` artifacts: a header object on
//! the first line (schema id + run metadata), then one JSON object per
//! line. Every event line has `t` (cycle) and `ev` (event-type name)
//! first, followed by the event's own fields in a fixed order, so the
//! output is deterministic and greppable (`grep '"ev": "mem_resp"'`).

use crate::chrome::escape_json;
use crate::event::{TimedEvent, TraceEvent};
use std::fmt::Write as _;

/// Schema identifier written in the header line.
pub const SCHEMA: &str = "dac-trace/v1";

/// Render a `dac-trace/v1` document. `meta` is a list of extra
/// `(key, value)` string pairs for the header (workload, design, …);
/// `dropped` is the ring sink's eviction count.
pub fn export<'a>(
    events: impl Iterator<Item = &'a TimedEvent>,
    meta: &[(&str, &str)],
    dropped: u64,
) -> String {
    let mut out = String::new();
    let _ = write!(out, "{{\"schema\": \"{SCHEMA}\", \"dropped\": {dropped}");
    for (k, v) in meta {
        let _ = write!(out, ", \"{}\": \"{}\"", escape_json(k), escape_json(v));
    }
    out.push_str("}\n");
    for te in events {
        let t = te.cycle;
        let _ = write!(out, "{{\"t\": {t}, \"ev\": \"{}\"", te.event.kind_name());
        match te.event {
            TraceEvent::WarpIssue {
                sm,
                warp,
                pc,
                active,
            } => {
                let _ = write!(
                    out,
                    ", \"sm\": {sm}, \"warp\": {warp}, \"pc\": {pc}, \"active\": {active}"
                );
            }
            TraceEvent::WarpStall {
                sm,
                warp,
                pc,
                cause,
            } => {
                let _ = write!(
                    out,
                    ", \"sm\": {sm}, \"warp\": {warp}, \"pc\": {pc}, \"cause\": \"{}\"",
                    cause.name()
                );
            }
            TraceEvent::StackDepth {
                sm,
                warp,
                pc,
                depth,
                push,
            } => {
                let _ = write!(
                    out,
                    ", \"sm\": {sm}, \"warp\": {warp}, \"pc\": {pc}, \
                     \"depth\": {depth}, \"push\": {push}"
                );
            }
            TraceEvent::Coalesce {
                sm,
                warp,
                pc,
                lanes,
                txns,
                store,
            } => {
                let _ = write!(
                    out,
                    ", \"sm\": {sm}, \"warp\": {warp}, \"pc\": {pc}, \
                     \"lanes\": {lanes}, \"txns\": {txns}, \"store\": {store}"
                );
            }
            TraceEvent::MemReq {
                sm,
                line,
                kind,
                client,
                token,
            } => {
                let _ = write!(
                    out,
                    ", \"sm\": {sm}, \"line\": {line}, \"kind\": \"{}\", \
                     \"client\": \"{}\", \"token\": {token}",
                    kind.name(),
                    client.name()
                );
            }
            TraceEvent::MemStall {
                sm,
                line,
                client,
                cause,
            } => {
                let _ = write!(
                    out,
                    ", \"sm\": {sm}, \"line\": {line}, \"client\": \"{}\", \
                     \"cause\": \"{}\"",
                    client.name(),
                    cause.name()
                );
            }
            TraceEvent::L2Access {
                partition,
                line,
                hit,
                client,
            } => {
                let _ = write!(
                    out,
                    ", \"partition\": {partition}, \"line\": {line}, \"hit\": {hit}, \
                     \"client\": \"{}\"",
                    client.name()
                );
            }
            TraceEvent::DramAccess {
                partition,
                line,
                row_hit,
                write,
            } => {
                let _ = write!(
                    out,
                    ", \"partition\": {partition}, \"line\": {line}, \
                     \"row_hit\": {row_hit}, \"write\": {write}"
                );
            }
            TraceEvent::Fill { sm, line } => {
                let _ = write!(out, ", \"sm\": {sm}, \"line\": {line}");
            }
            TraceEvent::MemResp {
                sm,
                line,
                client,
                token,
                latency,
            } => {
                let _ = write!(
                    out,
                    ", \"sm\": {sm}, \"line\": {line}, \"client\": \"{}\", \
                     \"token\": {token}, \"latency\": {latency}",
                    client.name()
                );
            }
            TraceEvent::QueueSample {
                sm,
                atq,
                pwaq,
                pwpq,
                runahead,
            } => {
                let _ = write!(
                    out,
                    ", \"sm\": {sm}, \"atq\": {atq}, \"pwaq\": {pwaq}, \
                     \"pwpq\": {pwpq}, \"runahead\": {runahead}"
                );
            }
            TraceEvent::AffineIssue { sm, slot, pc } => {
                let _ = write!(out, ", \"sm\": {sm}, \"slot\": {slot}, \"pc\": {pc}");
            }
            TraceEvent::Expand { sm, warp, pred } => {
                let _ = write!(out, ", \"sm\": {sm}, \"warp\": {warp}, \"pred\": {pred}");
            }
            TraceEvent::CtaLaunch {
                sm,
                slot,
                kernel,
                cta,
            } => {
                let _ = write!(
                    out,
                    ", \"sm\": {sm}, \"slot\": {slot}, \"kernel\": {kernel}, \"cta\": {cta}"
                );
            }
            TraceEvent::CtaRetire { sm, slot, kernel } => {
                let _ = write!(
                    out,
                    ", \"sm\": {sm}, \"slot\": {slot}, \"kernel\": {kernel}"
                );
            }
        }
        out.push_str("}\n");
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::event::{TraceClient, TraceEvent, TraceReqKind};

    #[test]
    fn header_then_one_line_per_event() {
        let events = [
            TimedEvent {
                cycle: 1,
                event: TraceEvent::MemReq {
                    sm: 0,
                    line: 4096,
                    kind: TraceReqKind::Load,
                    client: TraceClient::Lsu,
                    token: 9,
                },
            },
            TimedEvent {
                cycle: 3,
                event: TraceEvent::QueueSample {
                    sm: 0,
                    atq: 1,
                    pwaq: 2,
                    pwpq: 3,
                    runahead: 3,
                },
            },
        ];
        let doc = export(
            events.iter(),
            &[("workload", "BFS \"q\""), ("design", "dac")],
            5,
        );
        let lines: Vec<&str> = doc.lines().collect();
        assert_eq!(lines.len(), 3);
        assert!(lines[0].contains("\"schema\": \"dac-trace/v1\""));
        assert!(lines[0].contains("\"dropped\": 5"));
        assert!(
            lines[0].contains("BFS \\\"q\\\""),
            "meta values must be escaped"
        );
        assert!(lines[1].starts_with("{\"t\": 1, \"ev\": \"mem_req\""));
        assert!(lines[1].contains("\"kind\": \"load\""));
        assert!(lines[2].contains("\"runahead\": 3"));
        // Each line is a balanced JSON object.
        for line in lines {
            assert_eq!(line.matches('{').count(), line.matches('}').count());
        }
    }
}

//! Design-space exploration beyond the paper: sweep DAC's hardware budget
//! (queue sizes, line locking) on a streaming workload and print speedup
//! per configuration.
//!
//! ```sh
//! cargo run --release --example design_space [ABBR]
//! ```

use dac_gpu::harness::{DesignPoint, Harness, Job, Overrides};
use dac_gpu::workloads::{benchmark, Design};
use std::sync::Arc;

fn main() {
    let abbr = std::env::args().nth(1).unwrap_or_else(|| "SR2".to_string());
    let w = benchmark(&abbr, 1).unwrap_or_else(|| {
        eprintln!("unknown benchmark {abbr}");
        std::process::exit(1);
    });
    let w = Arc::new(w);

    // Each configuration is an `Overrides` delta on the paper's DacConfig.
    let knobs: Vec<(&str, Vec<(&str, &str)>)> = vec![
        ("paper (ATQ 24, PWQ 192, lock)", vec![]),
        ("ATQ 4", vec![("atq_entries", "4")]),
        ("ATQ 96", vec![("atq_entries", "96")]),
        (
            "PWQ 48 (shallow run-ahead)",
            vec![("pwaq_total", "48"), ("pwpq_total", "48")],
        ),
        (
            "PWQ 768 (deep run-ahead)",
            vec![("pwaq_total", "768"), ("pwpq_total", "768")],
        ),
        ("no L1 line locking", vec![("lock_lines", "off")]),
    ];

    // Job 0 is the baseline; the rest are DAC variants. One harness batch
    // runs them all in parallel.
    let mut jobs = vec![Job::new(w.clone(), 1, DesignPoint::Hw(Design::Baseline))];
    for (_, set) in &knobs {
        let mut o = Overrides::default();
        for (k, v) in set {
            o.set(k, v).expect("sweep knobs are well-formed");
        }
        jobs.push(Job {
            overrides: o,
            ..Job::new(w.clone(), 1, DesignPoint::Hw(Design::Dac))
        });
    }
    let workers = std::thread::available_parallelism().map_or(1, |n| n.get());
    let out = Harness::new(workers).run(&jobs);

    let base = &out.results[0];
    println!("{}: baseline {} cycles\n", w.abbr, base.report.cycles);
    println!("{:<34} {:>9} {:>9}", "configuration", "cycles", "speedup");
    for ((label, _), run) in knobs.iter().zip(&out.results[1..]) {
        // Outputs must match the baseline regardless of configuration.
        assert_eq!(
            run.output_digest, base.output_digest,
            "{label}: outputs diverged"
        );
        println!(
            "{:<34} {:>9} {:>8.2}x",
            label,
            run.report.cycles,
            base.report.cycles as f64 / run.report.cycles as f64
        );
    }
}

//! Property test: disassembly round-trips through the assembler for
//! builder-generated kernels with loops, guards, and memory ops.

use proptest::prelude::*;
use simt_ir::disasm::to_asm;
use simt_ir::{asm, CmpOp, KernelBuilder, Op, Operand, Space, Width};

proptest! {
    #[test]
    fn builder_kernels_roundtrip(
        nloops in 0usize..3,
        nmem in 0usize..4,
        shift in 0i64..4,
        disp in -16i64..64,
    ) {
        let mut b = KernelBuilder::new("rt", 2);
        let tid = b.tid_linear_x();
        let off = b.alu2(Op::Shl, Operand::Reg(tid), Operand::Imm(shift));
        let addr = b.alu2(Op::Add, Operand::Param(0), Operand::Reg(off));
        for _ in 0..nmem {
            let v = b.ld(Space::Global, addr, disp, Width::W32);
            b.st(Space::Global, addr, disp + 4, Operand::Reg(v), Width::W32);
        }
        for k in 0..nloops {
            let i = b.mov(Operand::Imm(0));
            b.label(format!("l{k}"));
            b.alu_into(i, Op::Add, &[Operand::Reg(i), Operand::Imm(1)]);
            let p = b.setp(CmpOp::Lt, Operand::Reg(i), Operand::Param(1));
            b.bra_if(p, &format!("l{k}"));
        }
        b.exit();
        let k = b.build();
        let text = to_asm(&k);
        let k2 = asm::parse_kernel(&text)
            .unwrap_or_else(|e| panic!("reparse failed: {e}\n{text}"));
        prop_assert_eq!(&k.instrs, &k2.instrs, "{}", text);
        prop_assert_eq!(k.num_preds, k2.num_preds);
    }
}

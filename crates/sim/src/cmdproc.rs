//! The command processor: occupancy-limited CTA dispatch over one or more
//! kernel streams, plus the per-SM coprocessor router that lets concurrent
//! kernels each keep their own DAC/CAE/MTA instance.
//!
//! SM-granular kernel binding, as on Fermi: an SM hosts CTAs of at most
//! one kernel at a time, so concurrent kernels partition the chip rather
//! than interleave within an SM. The binding doubles as the routing key
//! for every per-SM coprocessor hook (issue gating, dequeue supply,
//! fabric responses), which is what makes per-kernel coprocessor state
//! sound without tagging every token with a kernel id.
//!
//! Determinism: dispatch visits SMs and streams in fixed, state-derived
//! orders (index order for [`PlacementPolicy::Greedy`], rotating cursors
//! for [`PlacementPolicy::RoundRobin`]), so a run is a pure function of
//! its inputs — the same tie-break discipline as the warp scheduler.

use crate::config::GpuConfig;
use crate::coproc::{AddrRecord, CoCtx, CoProcessor, IssueCost};
use crate::sm::{KernelCtx, Sm};
use crate::stats::SimStats;
use simt_ir::Instr;
use simt_mem::MemResponse;
use simt_trace::{TraceEvent, Tracer};

/// How the command processor picks SMs (and streams) when placing CTAs.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum PlacementPolicy {
    /// Fill SMs in index order; the lowest-numbered eligible stream packs
    /// first. With one kernel this reproduces the classic breadth-first
    /// one-CTA-per-SM-per-pass dispatch exactly.
    #[default]
    Greedy,
    /// Rotate both the SM starting point and the stream choice between
    /// placements, spreading concurrent kernels evenly across the chip.
    RoundRobin,
}

impl PlacementPolicy {
    /// Short name used by `--set cta_policy=...` and artifacts.
    pub fn name(self) -> &'static str {
        match self {
            PlacementPolicy::Greedy => "greedy",
            PlacementPolicy::RoundRobin => "rr",
        }
    }

    /// Parse the `--set cta_policy=...` spelling.
    pub fn parse(s: &str) -> Option<Self> {
        match s {
            "greedy" => Some(PlacementPolicy::Greedy),
            "rr" | "round-robin" | "round_robin" => Some(PlacementPolicy::RoundRobin),
            _ => None,
        }
    }
}

/// Dispatch bookkeeping for one kernel launch.
#[derive(Debug, Clone)]
pub struct LaunchState {
    /// Stream this launch belongs to.
    pub stream: usize,
    /// Position within its stream.
    pub seq: usize,
    /// Total CTAs in the grid.
    pub total_ctas: u64,
    /// Next CTA index to dispatch.
    pub next_cta: u64,
    /// CTAs fully retired.
    pub retired_ctas: u64,
    /// Cycle the first CTA was placed on an SM.
    pub first_cycle: Option<u64>,
    /// Cycle the last CTA retired.
    pub done_cycle: Option<u64>,
}

/// Owns kernel dispatch: which CTA of which kernel goes to which SM, and
/// when. Replaces the old inline `next_cta` loop in `gpu.rs`.
#[derive(Debug)]
pub struct CommandProcessor {
    policy: PlacementPolicy,
    /// Launch ids per stream, in issue order (ids are flattened
    /// stream-major: stream 0's launches first).
    streams: Vec<Vec<usize>>,
    /// Per stream: index of the launch currently at the head (in-order
    /// streams — it advances only when the head fully retires).
    head: Vec<usize>,
    states: Vec<LaunchState>,
    /// Per-SM kernel binding (launch id). An SM runs CTAs of one kernel
    /// at a time.
    bindings: Vec<Option<usize>>,
    rr_sm: usize,
    rr_stream: usize,
}

impl CommandProcessor {
    /// A command processor for `ctas_by_stream[s][i]` CTAs in launch `i`
    /// of stream `s`, dispatching onto `num_sms` SMs. Launch ids are
    /// assigned stream-major.
    pub fn new(policy: PlacementPolicy, ctas_by_stream: &[Vec<u64>], num_sms: usize) -> Self {
        let mut streams = Vec::with_capacity(ctas_by_stream.len());
        let mut states = Vec::new();
        for (s, launches) in ctas_by_stream.iter().enumerate() {
            let mut ids = Vec::with_capacity(launches.len());
            for (i, &total) in launches.iter().enumerate() {
                ids.push(states.len());
                states.push(LaunchState {
                    stream: s,
                    seq: i,
                    total_ctas: total,
                    next_cta: 0,
                    retired_ctas: 0,
                    first_cycle: None,
                    done_cycle: None,
                });
            }
            streams.push(ids);
        }
        let head = vec![0; streams.len()];
        CommandProcessor {
            policy,
            streams,
            head,
            states,
            bindings: vec![None; num_sms],
            rr_sm: 0,
            rr_stream: 0,
        }
    }

    /// Number of kernel launches across all streams.
    pub fn num_kernels(&self) -> usize {
        self.states.len()
    }

    /// The kernel currently bound to `sm`, if any.
    pub fn binding(&self, sm: usize) -> Option<usize> {
        self.bindings[sm]
    }

    /// Dispatch state of launch `k`.
    pub fn state(&self, k: usize) -> &LaunchState {
        &self.states[k]
    }

    /// Have all CTAs of all launches retired?
    pub fn all_complete(&self) -> bool {
        self.states.iter().all(|s| s.retired_ctas == s.total_ctas)
    }

    /// `count` CTAs retired on `sm` this cycle (they belong to its bound
    /// kernel). Advances the owning stream's head when the launch
    /// completes.
    pub fn note_retired(&mut self, sm: usize, count: u64, now: u64) {
        let k = self.bindings[sm].expect("CTA retired on an unbound SM");
        let st = &mut self.states[k];
        st.retired_ctas += count;
        debug_assert!(st.retired_ctas <= st.total_ctas);
        if st.retired_ctas == st.total_ctas {
            st.done_cycle = Some(now);
            self.head[st.stream] += 1;
        }
    }

    /// Pick a kernel for an unbound SM: each stream's head launch with
    /// CTAs left to dispatch is a candidate; the first whose CTA fits
    /// wins. Greedy scans streams from 0; round-robin rotates the start.
    fn pick_kernel(&mut self, cfg: &GpuConfig, sm: &Sm, kctxs: &[KernelCtx<'_>]) -> Option<usize> {
        let n = self.streams.len();
        let start = match self.policy {
            PlacementPolicy::Greedy => 0,
            PlacementPolicy::RoundRobin => self.rr_stream % n,
        };
        for i in 0..n {
            let s = (start + i) % n;
            let Some(&k) = self.streams[s].get(self.head[s]) else {
                continue;
            };
            let st = &self.states[k];
            if st.next_cta == st.total_ctas {
                continue; // head is draining; nothing left to place
            }
            if !sm.can_accept_cta(cfg, &kctxs[k]) {
                continue;
            }
            if self.policy == PlacementPolicy::RoundRobin {
                self.rr_stream = s + 1;
            }
            return Some(k);
        }
        None
    }

    /// One dispatch round, run at the top of every cycle: release SMs
    /// whose kernel has nothing left for them, then place pending CTAs
    /// breadth-first — one CTA per SM per pass, so work spreads across
    /// the chip before SMs fill up (as the hardware scheduler does).
    #[allow(clippy::too_many_arguments)]
    pub fn dispatch(
        &mut self,
        now: u64,
        cfg: &GpuConfig,
        sms: &mut [Sm],
        kctxs: &[KernelCtx<'_>],
        coproc: &mut dyn CoProcessor,
        rows: &mut [Vec<SimStats>],
        tracer: &mut dyn Tracer,
    ) {
        // Release pass (only meaningful with several kernels): an SM whose
        // bound kernel has dispatched its last CTA, holds nothing resident
        // here, and has no in-flight traffic for this SM can be handed to
        // another kernel. The `sm_quiescent` guard keeps coprocessor
        // response routing sound across the re-bind.
        if self.states.len() > 1 {
            for (sm, s) in sms.iter().enumerate() {
                let Some(k) = self.bindings[sm] else {
                    continue;
                };
                let st = &self.states[k];
                if st.next_cta == st.total_ctas
                    && s.resident_ctas() == 0
                    && s.idle()
                    && coproc.sm_quiescent(sm)
                {
                    self.bindings[sm] = None;
                    coproc.on_sm_bound(sm, None);
                }
            }
        }

        let n = sms.len();
        loop {
            let mut progressed = false;
            let start = match self.policy {
                PlacementPolicy::Greedy => 0,
                PlacementPolicy::RoundRobin => self.rr_sm % n,
            };
            for i in 0..n {
                let sm = (start + i) % n;
                let k = match self.bindings[sm] {
                    Some(k) => {
                        if self.states[k].next_cta == self.states[k].total_ctas {
                            continue;
                        }
                        k
                    }
                    None => match self.pick_kernel(cfg, &sms[sm], kctxs) {
                        Some(k) => k,
                        None => continue,
                    },
                };
                if !sms[sm].can_accept_cta(cfg, &kctxs[k]) {
                    continue;
                }
                if self.bindings[sm] != Some(k) {
                    self.bindings[sm] = Some(k);
                    coproc.on_sm_bound(sm, Some(k));
                }
                let st = &mut self.states[k];
                let cta = st.next_cta;
                st.next_cta += 1;
                if st.first_cycle.is_none() {
                    st.first_cycle = Some(now);
                }
                let slot = sms[sm].launch_cta(cfg, &kctxs[k], k, cta, coproc, &mut rows[sm][k]);
                if tracer.enabled() {
                    tracer.emit(
                        now,
                        TraceEvent::CtaLaunch {
                            sm: sm as u32,
                            slot: slot as u32,
                            kernel: k as u32,
                            cta,
                        },
                    );
                }
                if self.policy == PlacementPolicy::RoundRobin {
                    self.rr_sm = sm + 1;
                }
                progressed = true;
            }
            if !progressed {
                break;
            }
        }
    }
}

/// Routes every per-SM coprocessor hook to the child owning that SM's
/// bound kernel. One child per kernel launch; the command processor
/// maintains the bindings through [`CoProcessor::on_sm_bound`]. With a
/// single kernel the GPU loop skips the router entirely and hands the
/// child straight to the SMs.
pub struct MultiCoProcessor<'a> {
    children: Vec<&'a mut dyn CoProcessor>,
    bindings: Vec<Option<usize>>,
}

impl<'a> MultiCoProcessor<'a> {
    /// A router over one coprocessor per kernel launch (flattened
    /// stream-major, matching the command processor's launch ids).
    pub fn new(children: Vec<&'a mut dyn CoProcessor>, num_sms: usize) -> Self {
        MultiCoProcessor {
            children,
            bindings: vec![None; num_sms],
        }
    }

    fn child_for(&mut self, sm: usize) -> Option<&mut &'a mut dyn CoProcessor> {
        match self.bindings.get(sm).copied().flatten() {
            Some(k) => Some(&mut self.children[k]),
            None => None,
        }
    }
}

impl CoProcessor for MultiCoProcessor<'_> {
    fn name(&self) -> &'static str {
        "multi"
    }

    fn on_sm_bound(&mut self, sm: usize, kernel: Option<usize>) {
        self.bindings[sm] = kernel;
    }

    fn sm_quiescent(&self, sm: usize) -> bool {
        match self.bindings[sm] {
            Some(k) => self.children[k].sm_quiescent(sm),
            None => true,
        }
    }

    fn on_cta_launch(&mut self, sm: usize, slot: usize, cta_linear: u64, warps: &[usize]) {
        if let Some(c) = self.child_for(sm) {
            c.on_cta_launch(sm, slot, cta_linear, warps);
        }
    }

    fn on_cta_retire(&mut self, sm: usize, slot: usize) {
        if let Some(c) = self.child_for(sm) {
            c.on_cta_retire(sm, slot);
        }
    }

    fn on_barrier_release(&mut self, sm: usize, slot: usize) {
        if let Some(c) = self.child_for(sm) {
            c.on_barrier_release(sm, slot);
        }
    }

    fn can_issue(&mut self, sm: usize, warp: usize, instr: &Instr, stats: &mut SimStats) -> bool {
        match self.child_for(sm) {
            Some(c) => c.can_issue(sm, warp, instr, stats),
            None => true,
        }
    }

    fn issue_cost(
        &mut self,
        sm: usize,
        warp: usize,
        instr: &Instr,
        active: u32,
        stats: &mut SimStats,
    ) -> IssueCost {
        match self.child_for(sm) {
            Some(c) => c.issue_cost(sm, warp, instr, active, stats),
            None => IssueCost::Normal,
        }
    }

    fn deq_record(&mut self, sm: usize, warp: usize) -> Option<AddrRecord> {
        self.child_for(sm).and_then(|c| c.deq_record(sm, warp))
    }

    fn deq_pred_bits(&mut self, sm: usize, warp: usize) -> Option<u32> {
        self.child_for(sm).and_then(|c| c.deq_pred_bits(sm, warp))
    }

    fn observe_mem(
        &mut self,
        sm: usize,
        warp: usize,
        pc: usize,
        space: simt_ir::Space,
        is_store: bool,
        lines: &[u64],
    ) {
        if let Some(c) = self.child_for(sm) {
            c.observe_mem(sm, warp, pc, space, is_store, lines);
        }
    }

    fn on_response(&mut self, resp: &MemResponse) {
        // The re-bind guard (`sm_quiescent`) guarantees a response's SM is
        // still bound to the kernel that issued the request.
        match self.child_for(resp.sm) {
            Some(c) => c.on_response(resp),
            None => debug_assert!(false, "coprocessor response for unbound SM {}", resp.sm),
        }
    }

    fn step(&mut self, ctx: &mut CoCtx<'_>) {
        if let Some(k) = self.bindings.get(ctx.sm).copied().flatten() {
            self.children[k].step(ctx);
        }
    }

    fn pump(
        &mut self,
        sm: usize,
        now: u64,
        fabric: &mut simt_mem::MemoryFabric,
        stats: &mut SimStats,
        tracer: &mut dyn Tracer,
    ) {
        if let Some(k) = self.bindings.get(sm).copied().flatten() {
            self.children[k].pump(sm, now, fabric, stats, tracer);
        }
    }

    fn wants_pbuf_stats(&self, now: u64) -> bool {
        self.children.iter().any(|c| c.wants_pbuf_stats(now))
    }

    fn quiescent(&self) -> bool {
        self.children.iter().all(|c| c.quiescent())
    }

    fn ff_wake(&self, now: u64) -> u64 {
        self.children
            .iter()
            .map(|c| c.ff_wake(now))
            .min()
            .unwrap_or(u64::MAX)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn policy_parse_and_name() {
        assert_eq!(
            PlacementPolicy::parse("greedy"),
            Some(PlacementPolicy::Greedy)
        );
        assert_eq!(
            PlacementPolicy::parse("rr"),
            Some(PlacementPolicy::RoundRobin)
        );
        assert_eq!(
            PlacementPolicy::parse("round-robin"),
            Some(PlacementPolicy::RoundRobin)
        );
        assert_eq!(PlacementPolicy::parse("nope"), None);
        assert_eq!(PlacementPolicy::Greedy.name(), "greedy");
        assert_eq!(PlacementPolicy::RoundRobin.name(), "rr");
    }

    #[test]
    fn launch_ids_flatten_stream_major() {
        let cp = CommandProcessor::new(PlacementPolicy::Greedy, &[vec![4, 2], vec![8]], 2);
        assert_eq!(cp.num_kernels(), 3);
        assert_eq!(
            (cp.state(0).stream, cp.state(0).seq, cp.state(0).total_ctas),
            (0, 0, 4)
        );
        assert_eq!(
            (cp.state(1).stream, cp.state(1).seq, cp.state(1).total_ctas),
            (0, 1, 2)
        );
        assert_eq!(
            (cp.state(2).stream, cp.state(2).seq, cp.state(2).total_ctas),
            (1, 0, 8)
        );
        assert!(!cp.all_complete());
    }
}

//! A sweep containing a failing point must (a) record a `failed` event in
//! the journal with the panic message, (b) count it in the status
//! document, and (c) make `sweepctl tail` exit non-zero.
//!
//! The failing point is an unplaceable launch: `max_warps_per_sm: 0`
//! means no SM can ever accept a CTA, which the simulator rejects at
//! launch validation ("can never be placed"). The panic is caught by the
//! sweep worker and journaled rather than tearing the daemon down.

use simt_harness::json;
use simt_serve::client::Client;
use simt_serve::http::Server;
use simt_serve::{ServeConfig, SweepService};
use std::fs;
use std::process::Command;
use std::sync::Arc;
use std::time::{Duration, Instant};

fn u(v: &json::Value, name: &str) -> u64 {
    v.get(name).and_then(json::Value::as_u64).unwrap()
}

fn s<'a>(v: &'a json::Value, name: &str) -> &'a str {
    v.get(name).and_then(json::Value::as_str).unwrap()
}

#[test]
fn failing_point_is_journaled_and_tail_exits_nonzero() {
    let results = std::env::temp_dir().join(format!("dac-serve-test-fail-{}", std::process::id()));
    let _ = fs::remove_dir_all(&results);
    let service = Arc::new(SweepService::new(ServeConfig::new(&results, 2)));
    let server = Server::bind(Arc::clone(&service), "127.0.0.1:0").unwrap();
    let handle = server.handle();
    let addr = handle.addr().to_string();
    let serving = std::thread::spawn(move || server.serve());
    let client = Client::new(addr.clone());

    let request = json::parse(
        r#"{"benches": ["LIB"], "designs": ["baseline"],
            "overrides": {"max_warps_per_sm": 0, "num_sms": 2}}"#,
    )
    .unwrap();
    let receipt = client
        .post("/sweeps", Some(&request))
        .unwrap()
        .ok()
        .unwrap();
    let id = s(&receipt, "id").to_string();

    // Wait for completion; the single point must be counted as failed.
    let deadline = Instant::now() + Duration::from_secs(120);
    let status = loop {
        let status = client.get(&format!("/sweeps/{id}")).unwrap().ok().unwrap();
        if status.get("complete").and_then(json::Value::as_bool) == Some(true) {
            break status;
        }
        assert!(Instant::now() < deadline, "sweep did not complete");
        std::thread::sleep(Duration::from_millis(100));
    };
    assert_eq!(u(&status, "failed"), 1, "{status:?}");
    // A failed point is terminal but not "done"; nothing may be left over.
    assert_eq!(u(&status, "done"), 0);
    assert_eq!(u(&status, "queued"), 0);
    assert_eq!(u(&status, "running"), 0);

    // The journal carries a `failed` event naming the violated resource.
    let reply = client
        .get(&format!("/sweeps/{id}/events?since=0"))
        .unwrap()
        .ok()
        .unwrap();
    let events = reply.get("events").and_then(json::Value::as_arr).unwrap();
    let failed: Vec<_> = events.iter().filter(|e| s(e, "kind") == "failed").collect();
    assert_eq!(failed.len(), 1, "{events:?}");
    let error = s(failed[0], "error");
    assert!(
        error.contains("can never be placed"),
        "unexpected failure message: {error}"
    );
    assert_eq!(
        events.iter().filter(|e| s(e, "kind") == "complete").count(),
        1
    );

    // `sweepctl tail` replays the journal and exits 1 on the failure.
    let out = Command::new(env!("CARGO_BIN_EXE_sweepctl"))
        .args(["tail", "--addr", &addr, "--timeout", "60", &id])
        .output()
        .expect("run sweepctl");
    assert_eq!(
        out.status.code(),
        Some(1),
        "stdout: {}\nstderr: {}",
        String::from_utf8_lossy(&out.stdout),
        String::from_utf8_lossy(&out.stderr)
    );
    let stdout = String::from_utf8_lossy(&out.stdout);
    assert!(stdout.contains("FAILED"), "tail output: {stdout}");
    let stderr = String::from_utf8_lossy(&out.stderr);
    assert!(stderr.contains("point(s) failed"), "tail stderr: {stderr}");

    client.post("/shutdown", None).unwrap().ok().unwrap();
    serving.join().unwrap();
    let _ = fs::remove_dir_all(&results);
}

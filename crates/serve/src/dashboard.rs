//! The read-only `GET /dashboard` HTML overview.
//!
//! Rendered entirely from the same public documents the JSON endpoints
//! serve ([`SweepService::status`] and [`SweepService::metrics`]) — the
//! dashboard can never disagree with the API, and it stays read-only by
//! construction. No scripts, one meta-refresh; the first slice of the
//! roadmap's figure-rendering-over-HTTP item.

use crate::service::SweepService;
use simt_harness::json;
use std::fmt::Write as _;

fn escape(out: &mut String, s: &str) {
    for c in s.chars() {
        match c {
            '&' => out.push_str("&amp;"),
            '<' => out.push_str("&lt;"),
            '>' => out.push_str("&gt;"),
            '"' => out.push_str("&quot;"),
            c => out.push(c),
        }
    }
}

fn get_u64(doc: &json::Value, field: &str) -> u64 {
    doc.get(field).and_then(json::Value::as_u64).unwrap_or(0)
}

fn get_f64(doc: &json::Value, field: &str) -> f64 {
    doc.get(field).and_then(json::Value::as_f64).unwrap_or(0.0)
}

fn card(out: &mut String, label: &str, value: &str) {
    out.push_str("<div class=card><div class=v>");
    escape(out, value);
    out.push_str("</div><div class=l>");
    escape(out, label);
    out.push_str("</div></div>\n");
}

/// Render the dashboard HTML for the service's current state.
pub fn render(service: &SweepService) -> String {
    let status = service.status();
    let metrics = service.metrics();
    let mut out = String::with_capacity(4096);
    out.push_str(
        "<!doctype html>\n<html><head><meta charset=\"utf-8\">\n\
         <meta http-equiv=\"refresh\" content=\"5\">\n\
         <title>simt-serve dashboard</title>\n\
         <style>\n\
         body{font-family:system-ui,sans-serif;margin:2rem;color:#222}\n\
         h1{font-size:1.3rem} h2{font-size:1.05rem;margin-top:1.6rem}\n\
         .cards{display:flex;flex-wrap:wrap;gap:.8rem}\n\
         .card{border:1px solid #ddd;border-radius:.5rem;padding:.6rem 1rem;min-width:7rem}\n\
         .card .v{font-size:1.3rem;font-weight:600} .card .l{color:#666;font-size:.8rem}\n\
         table{border-collapse:collapse;margin-top:.5rem}\n\
         th,td{border:1px solid #ddd;padding:.3rem .6rem;text-align:right;font-size:.85rem}\n\
         th{background:#f5f5f5} td.id,th.id{text-align:left;font-family:monospace}\n\
         .done{color:#1a7f37} .active{color:#9a6700}\n\
         </style></head><body>\n<h1>simt-serve</h1>\n<div class=cards>\n",
    );
    let uptime = get_f64(&status, "uptime_s");
    card(&mut out, "uptime", &format!("{uptime:.0}s"));
    card(
        &mut out,
        "workers",
        &get_u64(&status, "workers").to_string(),
    );
    card(
        &mut out,
        "queue depth",
        &get_u64(&status, "queue_depth").to_string(),
    );
    card(
        &mut out,
        "running",
        &get_u64(&status, "running").to_string(),
    );
    card(
        &mut out,
        "executed",
        &get_u64(&metrics, "executed").to_string(),
    );
    card(
        &mut out,
        "cache hits",
        &get_u64(&metrics, "cache_hits").to_string(),
    );
    card(
        &mut out,
        "cache hit rate",
        &format!("{:.0}%", get_f64(&metrics, "cache_hit_rate") * 100.0),
    );
    card(
        &mut out,
        "points/sec",
        &format!("{:.2}", get_f64(&metrics, "points_per_sec")),
    );
    card(&mut out, "failed", &get_u64(&metrics, "failed").to_string());
    out.push_str("</div>\n<h2>Sweeps</h2>\n");
    let sweeps = status
        .get("sweeps")
        .and_then(json::Value::as_arr)
        .map(|s| s.to_vec())
        .unwrap_or_default();
    if sweeps.is_empty() {
        out.push_str("<p>No sweeps submitted yet.</p>\n");
    } else {
        out.push_str(
            "<table><tr><th class=id>sweep</th><th>total</th><th>done</th><th>state</th></tr>\n",
        );
        for sweep in &sweeps {
            let id = sweep.get("id").and_then(json::Value::as_str).unwrap_or("?");
            let complete = sweep
                .get("complete")
                .and_then(json::Value::as_bool)
                .unwrap_or(false);
            out.push_str("<tr><td class=id>");
            escape(&mut out, id);
            let _ = writeln!(
                out,
                "</td><td>{}</td><td>{}</td><td class={}>{}</td></tr>",
                get_u64(sweep, "total"),
                get_u64(sweep, "done"),
                if complete { "done" } else { "active" },
                if complete { "complete" } else { "active" },
            );
        }
        out.push_str("</table>\n");
    }
    out.push_str("<h2>Endpoint latency (µs)</h2>\n");
    let endpoints = metrics
        .get("endpoints")
        .and_then(json::Value::as_obj)
        .map(|o| o.to_vec())
        .unwrap_or_default();
    if endpoints.is_empty() {
        out.push_str("<p>No requests served yet.</p>\n");
    } else {
        out.push_str(
            "<table><tr><th class=id>endpoint</th><th>count</th><th>p50</th>\
             <th>p90</th><th>p99</th><th>max</th></tr>\n",
        );
        for (label, stats) in &endpoints {
            out.push_str("<tr><td class=id>");
            escape(&mut out, label);
            let _ = writeln!(
                out,
                "</td><td>{}</td><td>{}</td><td>{}</td><td>{}</td><td>{}</td></tr>",
                get_u64(stats, "count"),
                get_u64(stats, "p50_us"),
                get_u64(stats, "p90_us"),
                get_u64(stats, "p99_us"),
                get_u64(stats, "max_us"),
            );
        }
        out.push_str("</table>\n");
    }
    out.push_str("</body></html>\n");
    out
}

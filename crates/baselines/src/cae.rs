//! Compact Affine Execution (CAE) — the paper's reimplementation of Kim et
//! al.'s affine data path \[13\], provisioned with two affine units per SM
//! (§5.1.1).
//!
//! CAE tracks, *at run time and per warp*, which registers hold affine
//! values (base + per-lane stride). Warp instructions whose operands are
//! affine-compatible execute on the affine units: they occupy the scheduler
//! for one cycle instead of two and leave the SIMT lanes free. Unlike DAC,
//! every warp still executes every instruction — CAE removes intra-warp
//! redundancy only.
//!
//! Faithfully modelled limitations (paper §5.4):
//!
//! * the affine unit has a single offset ALU, so all 32 threads of a warp
//!   must follow one stride — kernels whose innermost block dimension is
//!   smaller than 32 get scalar support only;
//! * no affine computation after divergence: a partially-active write
//!   poisons the destination, and instructions issued while the warp is
//!   diverged run on the SIMT lanes;
//! * no `mod`, `min`/`max`/`abs`, or `sel` support.

use simt_ir::{Instr, Op, Operand, Program, SpecialReg};
use simt_sim::{CoProcessor, IssueCost, SimStats};
use std::collections::HashMap;

/// CAE configuration.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct CaeConfig {
    /// Affine functional units per SM (the paper grants 2 — one per
    /// scheduler).
    pub affine_units: usize,
}

impl Default for CaeConfig {
    fn default() -> Self {
        CaeConfig { affine_units: 2 }
    }
}

/// Runtime affinity tag of a register (CAE's hardware tag bits).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum Tag {
    /// Uniform across the warp.
    Scalar,
    /// base + lane · stride.
    Affine,
    /// Anything else.
    Vector,
}

impl Tag {
    fn join(self, o: Tag) -> Tag {
        use Tag::*;
        match (self, o) {
            (Vector, _) | (_, Vector) => Vector,
            (Affine, _) | (_, Affine) => Affine,
            _ => Scalar,
        }
    }
}

/// The CAE coprocessor.
#[derive(Debug, Default)]
pub struct Cae {
    #[allow(dead_code)]
    cfg: CaeConfig,
    /// Per-SM map of warp → register tags. Sharded by SM (not one global
    /// map) so `issue_cost` — which runs inside the threaded SM-compute
    /// phase — only ever touches its own SM's shard.
    sms: Vec<HashMap<usize, Vec<Tag>>>,
    num_regs: usize,
    /// Can `tid.x` be treated as one warp-wide stride? (innermost block
    /// dimension ≥ 32 and a multiple of 32.)
    tidx_affine: bool,
}

impl Cae {
    /// Build a CAE coprocessor.
    pub fn new(cfg: CaeConfig) -> Self {
        Cae {
            cfg,
            ..Default::default()
        }
    }

    /// Destination tag for an ALU op (CAE's supported subset).
    fn alu_tag(op: Op, a: Tag, b: Tag, c: Tag) -> Tag {
        use Tag::*;
        if a == Vector || b == Vector || (op.arity() == 3 && c == Vector) {
            return Vector;
        }
        let all_scalar =
            a == Scalar && (op.arity() < 2 || b == Scalar) && (op.arity() < 3 || c == Scalar);
        if all_scalar {
            // Uniform computation: any op.
            return Scalar;
        }
        match op {
            Op::Mov | Op::Neg => a,
            Op::Add | Op::Sub => a.join(b),
            Op::Mul => {
                if a == Scalar || b == Scalar {
                    a.join(b)
                } else {
                    Vector
                }
            }
            Op::Mad => {
                let p = Self::alu_tag(Op::Mul, a, b, Scalar);
                Self::alu_tag(Op::Add, p, c, Scalar)
            }
            Op::Shl => {
                if b == Scalar {
                    a
                } else {
                    Vector
                }
            }
            // No mod / min / max / abs on the CAE affine unit (§5.4).
            _ => Vector,
        }
    }
}

impl CoProcessor for Cae {
    fn name(&self) -> &'static str {
        "cae"
    }

    fn on_kernel_launch(&mut self, program: &Program, num_sms: usize) {
        self.sms.clear();
        self.sms.resize_with(num_sms, HashMap::new);
        self.num_regs = program.kernel.num_regs as usize;
        let bx = program.launch.block.x;
        self.tidx_affine = bx >= 32 && bx.is_multiple_of(32);
    }

    fn issue_cost(
        &mut self,
        sm: usize,
        warp: usize,
        instr: &Instr,
        active: u32,
        stats: &mut SimStats,
    ) -> IssueCost {
        let tidx_affine = self.tidx_affine;
        let num_regs = self.num_regs;
        if self.sms.len() <= sm {
            self.sms.resize_with(sm + 1, HashMap::new);
        }
        let tags = self.sms[sm]
            .entry(warp)
            .or_insert_with(|| vec![Tag::Vector; num_regs]);
        let diverged = active != u32::MAX;
        match instr {
            Instr::Alu {
                op,
                dst,
                srcs,
                guard,
            } => {
                let a = self_src(tags, srcs[0], tidx_affine);
                let b = self_src(tags, srcs[1], tidx_affine);
                let c = self_src(tags, srcs[2], tidx_affine);
                let mut t = Self::alu_tag(*op, a, b, c);
                // Divergence or a guard poisons affine tracking (§5.4);
                // a guarded scalar result stays scalar.
                if diverged || (guard.is_some() && t != Tag::Scalar) {
                    t = Tag::Vector;
                }
                let eligible = !diverged && guard.is_none() && t != Tag::Vector;
                if let Some(slot) = tags.get_mut(*dst as usize) {
                    *slot = t;
                }
                if eligible {
                    stats.cae_affine_instructions += 1;
                    return IssueCost::Fast;
                }
                IssueCost::Normal
            }
            Instr::SetP { a, b, guard, .. } => {
                let ta = self_src(tags, *a, tidx_affine);
                let tb = self_src(tags, *b, tidx_affine);
                let one_scalar = ta == Tag::Scalar || tb == Tag::Scalar;
                let both_ok = ta != Tag::Vector && tb != Tag::Vector;
                if !diverged && guard.is_none() && one_scalar && both_ok {
                    stats.cae_affine_instructions += 1;
                    IssueCost::Fast
                } else {
                    IssueCost::Normal
                }
            }
            Instr::Sel { dst, .. } => {
                if let Some(slot) = tags.get_mut(*dst as usize) {
                    *slot = Tag::Vector;
                }
                IssueCost::Normal
            }
            Instr::Ld { dst, .. } | Instr::Atom { dst, .. } => {
                if let Some(slot) = tags.get_mut(*dst as usize) {
                    *slot = Tag::Vector;
                }
                IssueCost::Normal
            }
            _ => IssueCost::Normal,
        }
    }
}

fn self_src(tags: &[Tag], op: Operand, tidx_affine: bool) -> Tag {
    match op {
        Operand::Imm(_) | Operand::Param(_) => Tag::Scalar,
        Operand::Reg(r) => tags.get(r as usize).copied().unwrap_or(Tag::Vector),
        Operand::Special(s) => match s {
            SpecialReg::TidX => {
                if tidx_affine {
                    Tag::Affine
                } else {
                    Tag::Vector
                }
            }
            SpecialReg::TidY | SpecialReg::TidZ => {
                if tidx_affine {
                    Tag::Scalar
                } else {
                    Tag::Vector
                }
            }
            _ => Tag::Scalar,
        },
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use simt_ir::{Dim3, KernelBuilder, LaunchConfig, Op, Operand, Program, Space, Width};
    use simt_mem::SparseMemory;
    use simt_sim::{GpuConfig, GpuSim};

    fn streaming_compute_kernel() -> simt_ir::Kernel {
        // Address math is affine, plus a chunk of scalar compute.
        let mut b = KernelBuilder::new("comp", 2);
        let tid = b.tid_linear_x();
        let off = b.alu2(Op::Shl, Operand::Reg(tid), Operand::Imm(2));
        let pa = b.alu2(Op::Add, Operand::Param(0), Operand::Reg(off));
        let v = b.ld(Space::Global, pa, 0, Width::W32);
        let mut acc = b.mov(Operand::Reg(v));
        for _ in 0..8 {
            acc = b.alu2(Op::Add, Operand::Reg(acc), Operand::Reg(v));
        }
        let pb = b.alu2(Op::Add, Operand::Param(1), Operand::Reg(off));
        b.st(Space::Global, pb, 0, Operand::Reg(acc), Width::W32);
        b.exit();
        b.build()
    }

    #[test]
    fn cae_speeds_up_affine_address_math() {
        let k = streaming_compute_kernel();
        let launch = LaunchConfig {
            grid: Dim3::x(8),
            block: Dim3::x(128),
            params: vec![0x10_0000, 0x80_0000],
        };
        let prog = Program::new(k, launch).unwrap();
        let gpu = GpuSim::new(GpuConfig::test_small());

        let mut mem1 = SparseMemory::new();
        let base = gpu.run(&prog, &mut mem1);

        let mut mem2 = SparseMemory::new();
        let mut cae = Cae::new(CaeConfig::default());
        let rep = gpu.run_with(&prog, &mut mem2, &mut cae);

        assert!(rep.stats.cae_affine_instructions > 0);
        // Same result.
        assert_eq!(
            mem1.read_u32_vec(0x80_0000, 64),
            mem2.read_u32_vec(0x80_0000, 64)
        );
        // CAE never slows things down and keeps instruction count equal
        // (it removes no instructions).
        assert!(rep.cycles <= base.cycles);
        assert_eq!(rep.stats.warp_instructions, base.stats.warp_instructions);
    }

    #[test]
    fn small_block_x_restricts_to_scalar() {
        let mut cae = Cae::new(CaeConfig::default());
        let mut b = KernelBuilder::new("k", 0);
        let _ = b.tid_linear_x();
        b.exit();
        let prog = Program::new(
            b.build(),
            LaunchConfig {
                grid: Dim3::x(1),
                block: Dim3::xy(16, 2), // innermost dim < 32
                params: vec![],
            },
        )
        .unwrap();
        cae.on_kernel_launch(&prog, 1);
        assert!(!cae.tidx_affine);
        let mut stats = SimStats::default();
        // mad r0, ctaid.x, ntid.x, tid.x — tid.x is Vector here.
        let i = Instr::Alu {
            op: Op::Mad,
            dst: 0,
            srcs: [
                Operand::Special(SpecialReg::CtaIdX),
                Operand::Special(SpecialReg::NTidX),
                Operand::Special(SpecialReg::TidX),
            ],
            guard: None,
        };
        assert_eq!(
            cae.issue_cost(0, 0, &i, u32::MAX, &mut stats),
            IssueCost::Normal
        );
        assert_eq!(stats.cae_affine_instructions, 0);
    }

    #[test]
    fn divergence_poisons_tags() {
        let mut cae = Cae::new(CaeConfig::default());
        let mut b = KernelBuilder::new("k", 0);
        let _ = b.tid_linear_x();
        b.exit();
        let prog = Program::new(b.build(), LaunchConfig::linear(1, 64, vec![])).unwrap();
        cae.on_kernel_launch(&prog, 1);
        let mut stats = SimStats::default();
        let i = Instr::Alu {
            op: Op::Mul,
            dst: 0,
            srcs: [
                Operand::Special(SpecialReg::TidX),
                Operand::Imm(4),
                Operand::Imm(0),
            ],
            guard: None,
        };
        // Full mask: affine, fast.
        assert_eq!(
            cae.issue_cost(0, 0, &i, u32::MAX, &mut stats),
            IssueCost::Fast
        );
        // Diverged warp: SIMT lanes.
        assert_eq!(
            cae.issue_cost(0, 1, &i, 0xFFFF, &mut stats),
            IssueCost::Normal
        );
        // And the destination is poisoned for later uses on that warp.
        let j = Instr::Alu {
            op: Op::Add,
            dst: 1,
            srcs: [Operand::Reg(0), Operand::Imm(1), Operand::Imm(0)],
            guard: None,
        };
        assert_eq!(
            cae.issue_cost(0, 1, &j, u32::MAX, &mut stats),
            IssueCost::Normal
        );
    }

    #[test]
    fn loads_poison_destinations() {
        let mut cae = Cae::new(CaeConfig::default());
        let mut b = KernelBuilder::new("k", 1);
        let _ = b.tid_linear_x();
        b.exit();
        let prog = Program::new(b.build(), LaunchConfig::linear(1, 32, vec![0])).unwrap();
        cae.on_kernel_launch(&prog, 1);
        let mut stats = SimStats::default();
        let ld = Instr::Ld {
            dst: 2,
            space: Space::Global,
            addr: simt_ir::AddrMode::Reg(0, 0),
            width: Width::W32,
            guard: None,
        };
        cae.issue_cost(0, 0, &ld, u32::MAX, &mut stats);
        let use_it = Instr::Alu {
            op: Op::Add,
            dst: 3,
            srcs: [Operand::Reg(2), Operand::Imm(1), Operand::Imm(0)],
            guard: None,
        };
        assert_eq!(
            cae.issue_cost(0, 0, &use_it, u32::MAX, &mut stats),
            IssueCost::Normal
        );
    }

    use simt_ir::SpecialReg;
}

//! `dac-gpu` — facade crate for the Decoupled Affine Computation (DAC)
//! reproduction (Wang & Lin, ISCA 2017).
//!
//! Re-exports every sub-crate of the workspace under one roof so examples,
//! integration tests, and downstream users can depend on a single crate:
//!
//! * [`ir`] — PTX-like kernel IR, builder, assembler, CFG analyses.
//! * [`mem`] — caches, MSHRs, DRAM, the memory fabric.
//! * [`sim`] — the cycle-level SIMT GPU simulator.
//! * [`affine`] — affine tuples, the affine type lattice, and the
//!   decoupling compiler.
//! * [`dac`] — the DAC hardware model (expansion units, queues, affine
//!   warp).
//! * [`baselines`] — CAE and MTA comparison designs.
//! * [`energy`] — the GPUWattch-style energy/area model.
//! * [`workloads`] — the 29 synthetic GPGPU benchmarks.
//! * [`harness`] — parallel experiment orchestration, result caching, and
//!   JSONL artifacts.

pub use affine;
pub use dac_core as dac;
pub use gpu_baselines as baselines;
pub use gpu_energy as energy;
pub use gpu_workloads as workloads;
pub use simt_harness as harness;
pub use simt_ir as ir;
pub use simt_mem as mem;
pub use simt_sim as sim;

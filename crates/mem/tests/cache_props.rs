//! Randomized tests (deterministic, std-only) on the cache tag array and
//! MSHR invariants. A seeded SplitMix64 stream replaces proptest so the
//! suite runs in the offline build environment with reproducible cases.

use simt_mem::{Cache, MshrTable};

/// Deterministic SplitMix64 generator (duplicated locally to keep this
/// crate dependency-free).
struct Rng(u64);

impl Rng {
    fn next_u64(&mut self) -> u64 {
        self.0 = self.0.wrapping_add(0x9E37_79B9_7F4A_7C15);
        let mut z = self.0;
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
        z ^ (z >> 31)
    }

    fn below(&mut self, n: u64) -> u64 {
        self.next_u64() % n
    }
}

#[derive(Debug, Clone, Copy)]
enum CacheOp {
    Access(u64),
    Fill(u64),
    FillLocked(u64),
    Unlock(u64),
}

/// Locked lines are never evicted, whatever the interleaving.
#[test]
fn locked_lines_survive_any_interleaving() {
    let mut rng = Rng(0x10CF_ED11);
    for _ in 0..128 {
        let ops: Vec<CacheOp> = (0..rng.below(200))
            .map(|_| {
                let line = rng.below(64) * 128;
                match rng.below(4) {
                    0 => CacheOp::Access(line),
                    1 => CacheOp::Fill(line),
                    2 => CacheOp::FillLocked(line),
                    _ => CacheOp::Unlock(line),
                }
            })
            .collect();
        let mut c = Cache::new(1024, 4, 128); // 2 sets × 4 ways
        let mut locked: std::collections::HashMap<u64, u32> = std::collections::HashMap::new();
        for op in ops {
            match op {
                CacheOp::Access(l) => {
                    let _ = c.access(l, false);
                }
                CacheOp::Fill(l) => {
                    let _ = c.fill(l, 0);
                }
                CacheOp::FillLocked(l) => {
                    // Respect the ways-1 budget like the AEU does.
                    if c.can_reserve_lock(l) {
                        c.reserve_pending_lock(l);
                        let n = c.pending_locks_for(l);
                        let _ = c.fill(l, n);
                        *locked.entry(l).or_insert(0) += n;
                    }
                }
                CacheOp::Unlock(l) => {
                    c.unlock(l);
                    if let Some(n) = locked.get_mut(&l) {
                        *n = n.saturating_sub(1);
                        if *n == 0 {
                            locked.remove(&l);
                        }
                    }
                }
            }
            // Every line with a positive lock count must be resident.
            for (&l, &n) in &locked {
                if n > 0 {
                    assert!(c.probe(l), "locked line {l:#x} was evicted");
                }
            }
        }
    }
}

/// The lock budget keeps at least one way per set unlocked.
#[test]
fn lock_budget_leaves_a_free_way() {
    let mut rng = Rng(0xB0D6_E7F1);
    for _ in 0..128 {
        let lines: Vec<u64> = (0..1 + rng.below(63)).map(|_| rng.below(32)).collect();
        let mut c = Cache::new(1024, 4, 128);
        for slot in lines {
            let line = slot * 128;
            if c.can_reserve_lock(line) {
                c.reserve_pending_lock(line);
                let n = c.pending_locks_for(line);
                let _ = c.fill(line, n);
            }
            // A fill of a brand-new unlocked line must always succeed
            // somewhere in the set (the deadlock-freedom invariant, §4.2).
            let probeline = (slot % 2) * 128 + 0xF000_0000;
            let _ = c.fill(probeline, 0);
            assert!(c.probe(probeline), "no evictable way left");
        }
    }
}

/// MSHR: releases return exactly the targets allocated, once.
#[test]
fn mshr_targets_conserved() {
    let mut rng = Rng(0x3514_AB1E);
    for _ in 0..128 {
        let reqs: Vec<(u64, u64)> = (0..1 + rng.below(99))
            .map(|_| (rng.below(16), rng.below(1000)))
            .collect();
        let mut m = MshrTable::new(8, 4);
        let mut expect: std::collections::HashMap<u64, usize> = std::collections::HashMap::new();
        for (slot, token) in reqs {
            let line = slot * 128;
            if m.can_accept(line) {
                m.allocate(line, simt_mem::mshr::MshrTarget { client: 0, token });
                *expect.entry(line).or_insert(0) += 1;
            }
        }
        let lines: Vec<u64> = expect.keys().copied().collect();
        for line in lines {
            let t = m.release(line);
            assert_eq!(t.len(), expect[&line]);
            assert!(
                m.release(line).is_empty(),
                "double release returned targets"
            );
        }
        assert_eq!(m.outstanding(), 0);
    }
}

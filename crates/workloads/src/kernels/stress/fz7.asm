.kernel fz7
.params 4
    mad r0, %ctaid.x, %ntid.x, %tid.x;
    and r1, %tid.x, 31;
    shr r2, r0, 5;
    and r3, r0, 7;
    mov r4, 0;
L1:
    setp.ge p0, r4, r3;
    @p0 bra L0;
    and r5, r0, 63;
    setp.ge p1, r5, 56;
    sel r6, r4, r1, p1;
    and r7, r6, 1;
    setp.lt p2, r7, 0;
    mad r8, r0, 4, %p2;
    @p2 st.global.b32 [r8], r0;
    min r6, r6, r1;
    add r4, r4, 1;
    bra L1;
L0:
    min r9, r6, r2;
    mad r10, r0, 1, 25;
    mad r11, r10, 4, %p0;
    ld.global.b32 r12, [r11];
    div r13, r1, r12;
    sub r14, r9, 28;
    mad r15, r0, 4, 40;
    mad r16, r15, 4, %p0;
    ld.global.b32 r17, [r16];
    mad r18, r0, 4, %p2;
    st.global.b32 [r18], r17;
    exit;

//! The per-warp SIMT reconvergence stack.
//!
//! Standard immediate-post-dominator reconvergence (what GPGPU-sim and the
//! paper's baseline use): on a divergent branch, the current entry is
//! retargeted to the reconvergence PC and one entry per outcome is pushed;
//! when a path's PC reaches its reconvergence PC, it pops. Thread exits
//! deactivate lanes across all entries.

/// One stack entry: an execution path with its own PC, reconvergence PC,
/// and active-lane mask.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct StackEntry {
    /// Current PC of this path.
    pub pc: usize,
    /// PC where the path reconverges with its parent (`usize::MAX` = thread
    /// exit).
    pub rpc: usize,
    /// Active lanes on this path.
    pub mask: u32,
}

/// The SIMT stack of one warp.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct SimtStack {
    entries: Vec<StackEntry>,
    exited: u32,
}

impl SimtStack {
    /// New stack: all lanes in `mask` start at PC 0.
    pub fn new(mask: u32) -> Self {
        SimtStack {
            entries: vec![StackEntry {
                pc: 0,
                rpc: usize::MAX,
                mask,
            }],
            exited: 0,
        }
    }

    /// Current PC (top of stack).
    ///
    /// # Panics
    ///
    /// Panics if the warp already finished ([`SimtStack::done`]).
    pub fn pc(&self) -> usize {
        self.top().pc
    }

    /// Currently active lanes (top mask minus exited lanes).
    pub fn active_mask(&self) -> u32 {
        self.top().mask & !self.exited
    }

    /// Lanes that have executed `exit`.
    pub fn exited_mask(&self) -> u32 {
        self.exited
    }

    /// Has every lane exited (or every path emptied)?
    pub fn done(&self) -> bool {
        self.entries.is_empty()
    }

    /// Current stack depth (observability / hardware sizing).
    pub fn depth(&self) -> usize {
        self.entries.len()
    }

    fn top(&self) -> &StackEntry {
        self.entries.last().expect("SIMT stack empty (warp done)")
    }

    fn top_mut(&mut self) -> &mut StackEntry {
        self.entries
            .last_mut()
            .expect("SIMT stack empty (warp done)")
    }

    /// Drop empty paths and pop reconverged ones.
    fn settle(&mut self) {
        loop {
            let Some(top) = self.entries.last() else {
                return;
            };
            if top.mask & !self.exited == 0 {
                self.entries.pop();
                continue;
            }
            if self.entries.len() > 1 && top.pc == top.rpc {
                self.entries.pop();
                continue;
            }
            return;
        }
    }

    /// Advance past a non-control instruction: `pc += 1`, then reconverge
    /// if the path reached its RPC.
    pub fn advance(&mut self) {
        self.top_mut().pc += 1;
        self.settle();
    }

    /// Execute a branch at the current PC.
    ///
    /// * `taken` — per-lane taken mask (subset of the active mask);
    /// * `target` — branch target PC;
    /// * `rpc` — reconvergence PC from CFG analysis (`usize::MAX` = exit).
    ///
    /// Returns `true` if the warp diverged.
    pub fn branch(&mut self, taken: u32, target: usize, rpc: usize) -> bool {
        let active = self.active_mask();
        let taken = taken & active;
        let not_taken = active & !taken;
        let fallthrough = self.top().pc + 1;
        if not_taken == 0 {
            self.top_mut().pc = target;
            self.settle();
            false
        } else if taken == 0 {
            self.top_mut().pc = fallthrough;
            self.settle();
            false
        } else {
            // Diverge: current entry becomes the reconvergence point.
            self.top_mut().pc = rpc;
            self.entries.push(StackEntry {
                pc: fallthrough,
                rpc,
                mask: not_taken,
            });
            self.entries.push(StackEntry {
                pc: target,
                rpc,
                mask: taken,
            });
            self.settle();
            true
        }
    }

    /// Currently active lanes execute `exit`.
    pub fn exit(&mut self) {
        let m = self.active_mask();
        self.exited |= m;
        self.settle();
        // If only the root entry remains and everything exited, finish.
        if self.entries.iter().all(|e| e.mask & !self.exited == 0) {
            self.entries.clear();
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    const FULL: u32 = u32::MAX;

    #[test]
    fn straight_line() {
        let mut s = SimtStack::new(FULL);
        assert_eq!(s.pc(), 0);
        s.advance();
        s.advance();
        assert_eq!(s.pc(), 2);
        assert_eq!(s.active_mask(), FULL);
        s.exit();
        assert!(s.done());
    }

    #[test]
    fn uniform_branch_no_divergence() {
        let mut s = SimtStack::new(FULL);
        assert!(!s.branch(FULL, 10, 20));
        assert_eq!(s.pc(), 10);
        assert_eq!(s.depth(), 1);
        // Not-taken uniform.
        assert!(!s.branch(0, 3, 20));
        assert_eq!(s.pc(), 11);
    }

    #[test]
    fn divergent_branch_and_reconvergence() {
        // Branch at pc 0, target 5, reconverge at 8.
        let mut s = SimtStack::new(FULL);
        let taken = 0x0000_FFFF;
        assert!(s.branch(taken, 5, 8));
        // Taken path runs first.
        assert_eq!(s.pc(), 5);
        assert_eq!(s.active_mask(), taken);
        s.advance(); // 6
        s.advance(); // 7
        s.advance(); // 8 == rpc → pop to not-taken path
        assert_eq!(s.pc(), 1);
        assert_eq!(s.active_mask(), !taken);
        for _ in 1..8 {
            s.advance();
        }
        // Reached 8 → pop to reconvergence entry, full mask.
        assert_eq!(s.pc(), 8);
        assert_eq!(s.active_mask(), FULL);
        assert_eq!(s.depth(), 1);
    }

    #[test]
    fn partial_exit_then_continue() {
        let mut s = SimtStack::new(FULL);
        // Diverge: half the lanes go to an exit path at pc 5, rpc MAX.
        s.branch(0xFFFF_0000, 5, usize::MAX);
        assert_eq!(s.pc(), 5);
        s.exit(); // upper half exits
                  // Lower half resumes at fallthrough.
        assert_eq!(s.pc(), 1);
        assert_eq!(s.active_mask(), 0x0000_FFFF);
        s.exit();
        assert!(s.done());
    }

    #[test]
    fn nested_divergence() {
        let mut s = SimtStack::new(0xFF);
        s.branch(0x0F, 10, 20); // outer
        assert_eq!(s.pc(), 10);
        s.branch(0x03, 15, 18); // inner among lanes 0-3
        assert_eq!(s.pc(), 15);
        assert_eq!(s.active_mask(), 0x03);
        // Entries: root-rpc(20), outer-nt, inner-rpc(18), inner-nt, inner-t.
        assert_eq!(s.depth(), 5);
        // Inner taken path reaches 18 → inner not-taken path.
        s.advance(); // 16
        s.advance(); // 17
        s.advance(); // 18 → pop
        assert_eq!(s.pc(), 11);
        assert_eq!(s.active_mask(), 0x0C);
    }

    #[test]
    fn loop_backedge_uniform() {
        let mut s = SimtStack::new(0xF);
        s.advance(); // 1
        for _ in 0..3 {
            assert!(!s.branch(0xF, 0, 2)); // all lanes loop back
            assert_eq!(s.pc(), 0);
            s.advance();
        }
        assert!(!s.branch(0, 0, 2)); // all exit loop
        assert_eq!(s.pc(), 2);
    }

    #[test]
    fn loop_with_early_finishers() {
        // Lanes leave a loop at different trip counts: branch back at pc 1
        // with shrinking mask, rpc 2.
        let mut s = SimtStack::new(0x3);
        s.advance(); // pc 1
        assert!(s.branch(0x1, 0, 2)); // lane 0 loops, lane 1 leaves
        assert_eq!(s.pc(), 0);
        assert_eq!(s.active_mask(), 0x1);
        s.advance(); // pc 1
        assert!(!s.branch(0, 0, 2)); // lane 0 leaves too → fallthrough 2 = rpc → pop
        assert_eq!(s.pc(), 2);
        assert_eq!(s.active_mask(), 0x3);
        assert_eq!(s.depth(), 1);
    }
}

//! Functional (value-carrying) memory, sparsely allocated in 4 KiB pages.

use crate::fxhash::FxHashMap;

const PAGE_BITS: u64 = 12;
const PAGE_SIZE: usize = 1 << PAGE_BITS;
const PAGE_MASK: u64 = PAGE_SIZE as u64 - 1;

/// Byte-addressable sparse memory. Unwritten bytes read as zero.
///
/// This carries the *values* of global/local memory; the timing model in
/// [`crate::fabric`] is separate (tag-only caches), so functional execution
/// can run at instruction-issue time while timing unfolds over many cycles.
///
/// The page table is an [`FxHashMap`] (never iterated — lookups only, so
/// the hasher swap cannot perturb results), and all multi-byte accessors
/// resolve their page once per access, not once per byte: functional
/// loads/stores sit on the per-issue hot path, and workload construction
/// writes whole input arrays through the slice paths.
#[derive(Debug, Default, Clone)]
pub struct SparseMemory {
    pages: FxHashMap<u64, Box<[u8; PAGE_SIZE]>>,
}

impl SparseMemory {
    /// New empty memory.
    pub fn new() -> Self {
        Self::default()
    }

    fn page_mut(&mut self, addr: u64) -> &mut [u8; PAGE_SIZE] {
        self.pages
            .entry(addr >> PAGE_BITS)
            .or_insert_with(|| Box::new([0u8; PAGE_SIZE]))
    }

    /// Read one byte.
    pub fn read_u8(&self, addr: u64) -> u8 {
        match self.pages.get(&(addr >> PAGE_BITS)) {
            Some(p) => p[(addr & PAGE_MASK) as usize],
            None => 0,
        }
    }

    /// Write one byte.
    pub fn write_u8(&mut self, addr: u64, v: u8) {
        let off = (addr & PAGE_MASK) as usize;
        self.page_mut(addr)[off] = v;
    }

    /// Read `n ≤ 8` bytes little-endian.
    pub fn read_bytes(&self, addr: u64, n: usize) -> u64 {
        debug_assert!(n <= 8);
        let off = (addr & PAGE_MASK) as usize;
        if off + n <= PAGE_SIZE {
            // Common case: the access stays within one page.
            let Some(p) = self.pages.get(&(addr >> PAGE_BITS)) else {
                return 0;
            };
            let mut v = 0u64;
            for i in 0..n {
                v |= (p[off + i] as u64) << (8 * i);
            }
            v
        } else {
            let mut v = 0u64;
            for i in 0..n {
                v |= (self.read_u8(addr + i as u64) as u64) << (8 * i);
            }
            v
        }
    }

    /// Write `n ≤ 8` bytes little-endian.
    pub fn write_bytes(&mut self, addr: u64, v: u64, n: usize) {
        debug_assert!(n <= 8);
        let off = (addr & PAGE_MASK) as usize;
        if off + n <= PAGE_SIZE {
            let p = self.page_mut(addr);
            for i in 0..n {
                p[off + i] = (v >> (8 * i)) as u8;
            }
        } else {
            for i in 0..n {
                self.write_u8(addr + i as u64, (v >> (8 * i)) as u8);
            }
        }
    }

    /// Read a 32-bit word.
    pub fn read_u32(&self, addr: u64) -> u32 {
        self.read_bytes(addr, 4) as u32
    }

    /// Write a 32-bit word.
    pub fn write_u32(&mut self, addr: u64, v: u32) {
        self.write_bytes(addr, v as u64, 4);
    }

    /// Read an `f32` stored at `addr`.
    pub fn read_f32(&self, addr: u64) -> f32 {
        f32::from_bits(self.read_u32(addr))
    }

    /// Write an `f32` at `addr`.
    pub fn write_f32(&mut self, addr: u64, v: f32) {
        self.write_u32(addr, v.to_bits());
    }

    /// Write a run of 32-bit words page-by-page: one page-table lookup per
    /// touched page instead of one per byte.
    fn write_word_run(&mut self, base: u64, words: impl Fn(usize) -> u32, len: usize) {
        let mut i = 0;
        while i < len {
            let addr = base + 4 * i as u64;
            let off = (addr & PAGE_MASK) as usize;
            let in_page = ((PAGE_SIZE - off) / 4).min(len - i);
            if in_page == 0 {
                // A word straddling the page boundary (unaligned base).
                self.write_bytes(addr, words(i) as u64, 4);
                i += 1;
                continue;
            }
            let p = self.page_mut(addr);
            for j in 0..in_page {
                let o = off + 4 * j;
                p[o..o + 4].copy_from_slice(&words(i + j).to_le_bytes());
            }
            i += in_page;
        }
    }

    /// Bulk-initialize a region with 32-bit words.
    pub fn write_u32_slice(&mut self, base: u64, data: &[u32]) {
        self.write_word_run(base, |i| data[i], data.len());
    }

    /// Bulk-initialize a region with `f32` values.
    pub fn write_f32_slice(&mut self, base: u64, data: &[f32]) {
        self.write_word_run(base, |i| data[i].to_bits(), data.len());
    }

    /// Read `len` 32-bit words starting at `base`.
    pub fn read_u32_vec(&self, base: u64, len: usize) -> Vec<u32> {
        (0..len)
            .map(|i| self.read_u32(base + 4 * i as u64))
            .collect()
    }

    /// Read `len` `f32` values starting at `base`.
    pub fn read_f32_vec(&self, base: u64, len: usize) -> Vec<f32> {
        (0..len)
            .map(|i| self.read_f32(base + 4 * i as u64))
            .collect()
    }

    /// Number of resident 4 KiB pages (observability for tests).
    pub fn resident_pages(&self) -> usize {
        self.pages.len()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn zero_default() {
        let m = SparseMemory::new();
        assert_eq!(m.read_u32(0xdead_beef), 0);
        assert_eq!(m.resident_pages(), 0);
    }

    #[test]
    fn rw_roundtrip_across_page_boundary() {
        let mut m = SparseMemory::new();
        let addr = (1 << PAGE_BITS) - 2; // straddles pages
        m.write_bytes(addr, 0xAABB_CCDD, 4);
        assert_eq!(m.read_bytes(addr, 4), 0xAABB_CCDD);
        assert_eq!(m.resident_pages(), 2);
    }

    #[test]
    fn f32_slices() {
        let mut m = SparseMemory::new();
        let data = [1.0f32, -2.5, 3.75];
        m.write_f32_slice(0x1000, &data);
        assert_eq!(m.read_f32_vec(0x1000, 3), data.to_vec());
    }

    #[test]
    fn slice_write_across_page_boundary() {
        let mut m = SparseMemory::new();
        let base = (1 << PAGE_BITS) - 6; // 6 bytes in page 0, rest in page 1
        let data: Vec<u32> = (0..1024u32).map(|i| i.wrapping_mul(2654435761)).collect();
        m.write_u32_slice(base, &data);
        assert_eq!(m.read_u32_vec(base, 1024), data);
        assert_eq!(m.resident_pages(), 2);
    }

    #[test]
    fn partial_widths() {
        let mut m = SparseMemory::new();
        m.write_u32(0x100, 0x1122_3344);
        assert_eq!(m.read_u8(0x100), 0x44);
        assert_eq!(m.read_bytes(0x101, 2), 0x2233);
        m.write_u8(0x103, 0xFF);
        assert_eq!(m.read_u32(0x100), 0xFF22_3344);
    }
}

.kernel fz11
.params 4
    mad r0, %ctaid.x, %ntid.x, %tid.x;
    and r1, %tid.x, 31;
    shr r2, r0, 5;
    mad r3, r0, 1, 50;
    mad r4, r3, 4, %p0;
    ld.global.b32 r5, [r4];
    and r6, r1, 255;
    cvt.f32.s64 r7, r6;
    mad.f32 r8, r7, 1056964608, 1065353216;
    cvt.s64.f32 r9, r8;
    and r10, r1, 3;
    setp.eq p0, r10, 1;
    @p0 bra L0;
    setp.eq p1, r10, 2;
    @p1 bra L1;
    setp.eq p2, r10, 3;
    @p2 bra L2;
    add r11, r1, 32;
    and r12, r0, 31;
    setp.eq p3, r12, 2;
    mad r13, r0, 4, %p2;
    @p3 st.global.b32 [r13], r11;
    bra L3;
L0:
    mad r14, r0, 4, 31;
    mad r15, r14, 4, %p0;
    ld.global.b32 r16, [r15];
    mad r17, r1, r11, r16;
    bra L3;
L1:
    mov r18, 2;
    mov r19, 0;
L10:
    setp.ge p4, r19, r18;
    @p4 bra L4;
    and r20, r2, 15;
    setp.le p5, r20, 6;
    sel r21, r9, r2, p5;
    and r22, r16, 63;
    setp.ne p6, r22, 32;
    @!p6 bra L5;
    mad r23, r0, 1, 13;
    mad r24, r23, 4, %p1;
    ld.global.b32 r25, [r24];
    bra L5;
L5:
    and r26, r5, 3;
    setp.eq p7, r26, 1;
    @p7 bra L6;
    setp.eq p8, r26, 2;
    @p8 bra L7;
    setp.eq p9, r26, 3;
    @p9 bra L8;
    and r27, r0, 255;
    bra L9;
L6:
    sub r28, r2, 35;
    bra L9;
L7:
    max r28, r28, r19;
    bra L9;
L8:
    min r9, r9, r25;
    bra L9;
L9:
    add r19, r19, 1;
    bra L10;
L4:
    bra L3;
L2:
    and r29, r19, 1;
    setp.eq p10, r29, 1;
    @p10 bra L11;
    xor r30, r1, r2;
    shl r31, r1, 3;
    bra L12;
L11:
    add r32, r27, 41;
    bra L12;
L12:
    bra L3;
L3:
    add r11, r11, r28;
    mad r33, r30, r17, r9;
    mad r34, r0, 4, %p2;
    st.global.b32 [r34], r33;
    mad r35, r16, 1, 8;
    and r36, r35, 4095;
    mad r37, r36, 4, %p1;
    and r38, r0, 3;
    setp.ne p11, r38, 2;
    @p11 ld.global.b32 r39, [r37];
    and r40, r27, 3;
    setp.eq p12, r40, 1;
    @p12 bra L13;
    setp.eq p13, r40, 2;
    @p13 bra L14;
    setp.eq p14, r40, 3;
    @p14 bra L15;
    and r41, r27, 1;
    setp.eq p15, r41, 1;
    @p15 bra L16;
    mad r42, r21, 8, 62;
    and r43, r42, 4095;
    mad r44, r43, 4, %p1;
    ld.global.b32 r45, [r44];
    and r46, r33, 1;
    setp.eq p16, r46, 1;
    @p16 bra L17;
    mad r47, r0, 2, 58;
    mad r48, r47, 4, %p1;
    ld.global.b32 r49, [r48];
    max r50, r5, r2;
    bra L18;
L17:
    add r51, r39, 36;
    bra L18;
L18:
    bra L19;
L16:
    and r52, r51, 3;
    setp.eq p17, r52, 1;
    @p17 bra L20;
    setp.eq p18, r52, 2;
    @p18 bra L21;
    setp.eq p19, r52, 3;
    @p19 bra L22;
    mad r53, r0, 4, %p2;
    st.global.b32 [r53], r5;
    bra L23;
L20:
    sub r54, r1, 2;
    mad r55, r0, 2, 57;
    mad r56, r55, 4, %p1;
    ld.global.b32 r57, [r56];
    bra L23;
L21:
    mad r58, r1, 6, 21;
    and r59, r58, 4095;
    mad r60, r59, 4, %p0;
    ld.global.b32 r61, [r60];
    bra L23;
L22:
    max r62, r9, r54;
    mad r63, r0, 4, 45;
    mad r64, r63, 4, %p1;
    ld.global.b32 r65, [r64];
    bra L23;
L23:
    rem r66, r33, r49;
    bra L19;
L19:
    and r67, r21, 1;
    setp.eq p20, r67, 1;
    @p20 bra L24;
    mad r68, r28, r33, r33;
    bra L25;
L24:
    and r69, r19, 3;
    setp.eq p21, r69, 1;
    @p21 bra L26;
    setp.eq p22, r69, 2;
    @p22 bra L27;
    setp.eq p23, r69, 3;
    @p23 bra L28;
    add r70, r57, 60;
    bra L29;
L26:
    mad r71, r0, 1, 17;
    mad r72, r71, 4, %p1;
    ld.global.b32 r73, [r72];
    bra L29;
L27:
    add r74, r5, 10;
    and r75, r39, 7;
    bra L29;
L28:
    add r76, r25, 63;
    bra L29;
L29:
    bra L25;
L25:
    bra L30;
L13:
    mad r77, r0, 4, 12;
    mad r78, r77, 4, %p0;
    ld.global.b32 r79, [r78];
    max r80, r79, r27;
    bra L30;
L14:
    and r81, r80, 3;
    setp.eq p24, r81, 1;
    @p24 bra L31;
    setp.eq p25, r81, 2;
    @p25 bra L32;
    setp.eq p26, r81, 3;
    @p26 bra L33;
    and r82, r70, 3;
    setp.ge p27, r82, 3;
    @!p27 bra L34;
    mad r83, r0, 2, 30;
    mad r84, r83, 4, %p0;
    ld.global.b32 r85, [r84];
    bra L35;
L34:
    mad r86, r0, 4, 18;
    mad r87, r86, 4, %p1;
    ld.global.b32 r88, [r87];
    mad r89, r68, r2, r51;
L35:
    and r90, r0, 3;
    setp.eq p28, r90, 1;
    @p28 bra L36;
    setp.eq p29, r90, 2;
    @p29 bra L37;
    setp.eq p30, r90, 3;
    @p30 bra L38;
    and r91, r88, 15;
    setp.ne p31, r91, 0;
    mad r92, r0, 4, %p2;
    @p31 st.global.b32 [r92], r27;
    bra L39;
L36:
    and r93, r79, 63;
    setp.lt p32, r93, 53;
    sel r94, r5, r50, p32;
    add r95, r51, 18;
    bra L39;
L37:
    mad r96, r0, 1, 20;
    mad r97, r96, 4, %p1;
    ld.global.b32 r98, [r97];
    bra L39;
L38:
    mad r99, r0, 4, 0;
    mad r100, r99, 4, %p0;
    ld.global.b32 r101, [r100];
    rem r102, r94, 3;
    bra L39;
L39:
    bra L40;
L31:
    and r103, r1, 3;
    setp.eq p33, r103, 1;
    @p33 bra L41;
    setp.eq p34, r103, 2;
    @p34 bra L42;
    setp.eq p35, r103, 3;
    @p35 bra L43;
    mad r104, r0, 2, 36;
    mad r105, r104, 4, %p1;
    ld.global.b32 r106, [r105];
    bra L44;
L41:
    xor r107, r9, r80;
    mad r108, r88, 3, 56;
    and r109, r108, 4095;
    mad r110, r109, 4, %p0;
    ld.global.b32 r111, [r110];
    bra L44;
L42:
    add r112, r73, 52;
    mad r113, r0, 2, 29;
    mad r114, r113, 4, %p1;
    ld.global.b32 r115, [r114];
    bra L44;
L43:
    add r116, r1, 52;
    mad r117, r107, 5, 51;
    and r118, r117, 4095;
    mad r119, r118, 4, %p1;
    ld.global.b32 r120, [r119];
    bra L44;
L44:
    rem r121, r31, 2;
    bra L40;
L32:
    add r66, r66, r5;
    mad r122, r0, 1, 45;
    mad r123, r122, 4, %p1;
    ld.global.b32 r124, [r123];
    bra L40;
L33:
    mad r125, r57, r31, r75;
    bra L40;
L40:
    bra L30;
L15:
    mad r126, r33, r62, r76;
    bra L30;
L30:
    mad r127, r31, r88, r62;
    and r128, r61, 1;
    setp.ge p36, r128, 0;
    mad r129, r0, 4, %p2;
    @p36 st.global.b32 [r129], r120;
    and r130, r106, 63;
    setp.le p37, r130, 55;
    mad r131, r0, 4, %p2;
    @p37 st.global.b32 [r131], r51;
    mad r132, r0, 4, %p2;
    st.global.b32 [r132], r127;
    exit;

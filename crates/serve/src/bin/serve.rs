//! The sweep daemon: owns a results root and serves the design-space
//! sweep API over HTTP.
//!
//! On startup it re-registers every sweep manifest under the results root,
//! so a daemon restarted over an interrupted sweep finishes it — already
//! completed points resolve from the cache, nothing re-executes.

use simt_serve::http::Server;
use simt_serve::{ServeConfig, SweepService};
use std::sync::Arc;

const USAGE: &str = "\
usage: serve [options]

Starts the sweep service daemon: a job queue with single-flight dedup over
the shared result store in --results. Submit grids with `sweepctl`.

options:
  --addr HOST          bind address (default 127.0.0.1)
  --port N             bind port; 0 picks an ephemeral port (default 7878)
  --port-file PATH     write the bound port to PATH once listening
  --results DIR        results root (default results)
  --jobs N             simulation worker threads, one point each
                       (default: available cores)
  --threads N          intra-run worker threads *inside* each simulated
                       point, sharding SMs and L2 partitions (default 1;
                       results byte-identical; unlike --jobs)
  --execute-budget N   simulate at most N fresh points this session, then
                       leave the rest queued for the next session
  --log-level LEVEL    error|warn|info|debug|off (default info; env SIMT_LOG)
  --log-format FORMAT  text|json dac-log/v1 lines (default text;
                       env SIMT_LOG_FORMAT)
  -q, --quiet          no per-point progress lines
  -h, --help           this message";

fn usage_exit(error: &str) -> ! {
    if error == "help" {
        println!("{USAGE}");
        std::process::exit(0);
    }
    eprintln!("serve: {error} (run `serve --help` for usage)");
    std::process::exit(2);
}

struct Args {
    addr: String,
    port: u16,
    port_file: Option<String>,
    results: String,
    jobs: usize,
    threads: Option<usize>,
    execute_budget: Option<usize>,
    quiet: bool,
}

fn parse_args() -> Args {
    let mut args = Args {
        addr: "127.0.0.1".into(),
        port: 7878,
        port_file: None,
        results: "results".into(),
        jobs: std::thread::available_parallelism().map_or(2, |n| n.get()),
        threads: None,
        execute_budget: None,
        quiet: false,
    };
    let raw: Vec<String> = std::env::args().skip(1).collect();
    let mut it = raw.iter();
    while let Some(flag) = it.next() {
        let mut value = |name: &str| {
            it.next()
                .cloned()
                .unwrap_or_else(|| usage_exit(&format!("{name} needs a value")))
        };
        match flag.as_str() {
            "--addr" => args.addr = value("--addr"),
            "--port" => {
                args.port = value("--port")
                    .parse()
                    .unwrap_or_else(|_| usage_exit("--port: expected a port number"))
            }
            "--port-file" => args.port_file = Some(value("--port-file")),
            "--results" => args.results = value("--results"),
            "--jobs" => {
                args.jobs = value("--jobs")
                    .parse()
                    .ok()
                    .filter(|&n: &usize| n >= 1)
                    .unwrap_or_else(|| usage_exit("--jobs: expected a positive integer"))
            }
            "--threads" => {
                args.threads = Some(
                    value("--threads")
                        .parse()
                        .ok()
                        .filter(|&n: &usize| n >= 1)
                        .unwrap_or_else(|| usage_exit("--threads: expected a positive integer")),
                )
            }
            "--execute-budget" => {
                args.execute_budget = Some(
                    value("--execute-budget")
                        .parse()
                        .unwrap_or_else(|_| usage_exit("--execute-budget: expected an integer")),
                )
            }
            "--log-level" => simt_obs::log::set_level_str(&value("--log-level"))
                .unwrap_or_else(|e| usage_exit(&format!("--log-level: {e}"))),
            "--log-format" => simt_obs::log::set_format_str(&value("--log-format"))
                .unwrap_or_else(|e| usage_exit(&format!("--log-format: {e}"))),
            "-q" | "--quiet" => args.quiet = true,
            "-h" | "--help" => usage_exit("help"),
            other => usage_exit(&format!("unknown option {other:?}")),
        }
    }
    args
}

fn main() {
    simt_obs::log::init_from_env();
    let args = parse_args();
    let service = Arc::new(SweepService::new(ServeConfig {
        results_dir: args.results.clone().into(),
        workers: args.jobs,
        threads: args.threads,
        execute_budget: args.execute_budget,
        verbose: !args.quiet,
    }));

    let resumed = service.resume();
    if !resumed.is_empty() {
        simt_obs::info!("serve.daemon", "resumed unfinished sweeps";
            count = resumed.len(), sweeps = resumed.join(", "));
    }

    let server = Server::bind(
        Arc::clone(&service),
        &format!("{}:{}", args.addr, args.port),
    )
    .unwrap_or_else(|e| usage_exit(&format!("cannot bind {}:{}: {e}", args.addr, args.port)));
    let bound = server.handle().addr();
    simt_obs::info!("serve.daemon", format!("listening on http://{bound}");
        results = args.results.clone(), workers = args.jobs);
    if let Some(path) = &args.port_file {
        // Written only after bind succeeds, so pollers that wait for this
        // file never race a half-started daemon.
        if let Err(e) = std::fs::write(path, format!("{}\n", bound.port())) {
            usage_exit(&format!("cannot write port file {path}: {e}"));
        }
    }

    server.serve();
    service.stop();
    let (executed, cache_hits, shared, failed) = service.counters();
    // CI greps serve.log for "shutting down"; the message must keep that
    // substring in both text and json log formats.
    simt_obs::info!(
        "serve.daemon",
        format!(
            "shutting down ({executed} simulated, {cache_hits} from cache, \
                 {shared} shared, {failed} failed)"
        )
    );
}

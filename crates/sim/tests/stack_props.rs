//! Property-based tests: the SIMT reconvergence stack against a reference
//! per-thread executor, and coalescer partition invariants.

use proptest::prelude::*;
use simt_sim::coalesce::coalesce;
use simt_sim::SimtStack;

/// A tiny structured program: a list of nested if/else diamonds encoded as
/// (branch-taken mask) choices, executed over a straight-line PC space.
///
/// Reference semantics: each thread independently walks the program; the
/// stack must visit every (pc, lane) pair exactly once, with lanes grouped
/// arbitrarily.
#[derive(Debug, Clone)]
struct Diamond {
    taken_mask: u32,
}

fn arb_diamonds() -> impl Strategy<Value = Vec<Diamond>> {
    prop::collection::vec(any::<u32>().prop_map(|m| Diamond { taken_mask: m }), 1..5)
}

proptest! {
    /// Executing nested diamonds through the SIMT stack touches each
    /// (pc, lane) exactly as often as the per-thread reference does, and
    /// always reconverges to the full mask.
    #[test]
    fn simt_stack_matches_per_thread_reference(ds in arb_diamonds(), init in any::<u32>()) {
        prop_assume!(init != 0);
        // PC layout per diamond d (relative): 0 = branch, 1 = else-body,
        // 2 = then-body, 3 = join. Diamonds are sequential.
        let n = ds.len();
        let mut visits = vec![[0u64; 32]; 4 * n + 1];
        let mut s = SimtStack::new(init);
        let mut fuel = 10_000;
        while !s.done() {
            fuel -= 1;
            prop_assert!(fuel > 0, "stack did not terminate");
            let pc = s.pc();
            let active = s.active_mask();
            for lane in 0..32 {
                if active & (1 << lane) != 0 {
                    visits[pc][lane] += 1;
                }
            }
            let d = pc / 4;
            match pc % 4 {
                0 => {
                    // Branch to then-body (pc+2), else falls to pc+1;
                    // reconverge at pc+3.
                    let t = ds[d].taken_mask;
                    s.branch(t, pc + 2, pc + 3);
                }
                1 => {
                    // else-body: skip over then-body to the join.
                    s.branch(u32::MAX, pc + 2, pc + 2);
                }
                2 => s.advance(), // then-body → join
                3 => {
                    // join: all initial lanes must be back together.
                    prop_assert_eq!(s.active_mask(), init, "lost lanes at join {}", pc);
                    if d + 1 == n {
                        s.exit();
                    } else {
                        s.advance();
                    }
                }
                _ => unreachable!(),
            }
        }
        // Reference: each live thread visits branch + exactly one body +
        // join of every diamond, exactly once.
        for (d, diamond) in ds.iter().enumerate() {
            for lane in 0..32 {
                let live = (init >> lane) & 1 == 1;
                let taken = (diamond.taken_mask >> lane) & 1 == 1;
                let expect = |on: bool| u64::from(live && on);
                prop_assert_eq!(visits[4 * d][lane], expect(true), "branch d{} lane{}", d, lane);
                prop_assert_eq!(visits[4 * d + 1][lane], expect(!taken), "else d{} lane{}", d, lane);
                prop_assert_eq!(visits[4 * d + 2][lane], expect(taken), "then d{} lane{}", d, lane);
                prop_assert_eq!(visits[4 * d + 3][lane], expect(true), "join d{} lane{}", d, lane);
            }
        }
    }

    /// Coalescing partitions the active lanes: every active lane appears in
    /// exactly one transaction, lines are unique and aligned, and each
    /// lane's address falls inside its transaction's line.
    #[test]
    fn coalesce_partitions_lanes(addrs in prop::collection::vec(
        prop::option::of(0u64..0x10000), 32
    )) {
        let txns = coalesce(&addrs, 128);
        let mut seen = 0u32;
        let mut lines = std::collections::HashSet::new();
        for t in &txns {
            prop_assert_eq!(t.line % 128, 0, "unaligned line");
            prop_assert!(lines.insert(t.line), "duplicate line");
            prop_assert_ne!(t.lanes, 0, "empty transaction");
            prop_assert_eq!(seen & t.lanes, 0, "lane in two transactions");
            seen |= t.lanes;
            for lane in 0..32 {
                if t.lanes & (1 << lane) != 0 {
                    let a = addrs[lane].expect("inactive lane in transaction");
                    prop_assert_eq!(a & !127, t.line);
                }
            }
        }
        let active: u32 = addrs
            .iter()
            .enumerate()
            .filter(|(_, a)| a.is_some())
            .fold(0, |m, (i, _)| m | (1 << i));
        prop_assert_eq!(seen, active, "coalescing lost or invented lanes");
    }
}

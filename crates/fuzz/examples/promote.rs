//! Corpus-promotion helper: scan a generated window for divergence-stress
//! candidates and dump chosen kernels as `.asm` text for freezing into
//! `gpu-workloads`' stress registry.
//!
//! ```text
//! cargo run --release -p simt-fuzz --example promote -- scan 1 200
//! cargo run --release -p simt-fuzz --example promote -- dump 1 7 23 42
//! ```

use gpu_workloads::Design;
use simt_fuzz::diff::{run_one, small_overrides};
use simt_fuzz::gen::gen_spec;
use simt_fuzz::spec::Stmt;

fn count(body: &[Stmt], c: &mut [u32; 4]) {
    for s in body {
        match s {
            Stmt::If { then, els, .. } => {
                c[0] += 1;
                count(then, c);
                count(els, c);
            }
            Stmt::Loop { body, .. } => {
                c[1] += 1;
                count(body, c);
            }
            Stmt::Switch { arms, .. } => {
                c[2] += 1;
                for a in arms {
                    count(a, c);
                }
            }
            Stmt::Atomic { .. } => c[3] += 1,
            _ => {}
        }
    }
}

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let ov = small_overrides();
    match args.first().map(String::as_str) {
        Some("scan") => {
            let seed: u64 = args[1].parse().unwrap();
            let n: u64 = args[2].parse().unwrap();
            println!(
                "{:>5} {:>4}x{:<4} {:>6} {:>3} {:>3} {:>3} {:>3} {:>9} {:>9} {:>6} {:>5} {:>5}",
                "idx",
                "grid",
                "blk",
                "instrs",
                "if",
                "lp",
                "sw",
                "at",
                "base",
                "dac",
                "ratio",
                "aff%",
                "dec%"
            );
            for i in 0..n {
                let spec = gen_spec(seed, i);
                let mut c = [0u32; 4];
                count(&spec.body, &mut c);
                let w = spec.build_workload();
                let base = run_one(&w, Design::Baseline, &ov);
                let dac = run_one(&w, Design::Dac, &ov);
                let s = &dac.report.stats;
                println!(
                    "{:>5} {:>4}x{:<4} {:>6} {:>3} {:>3} {:>3} {:>3} {:>9} {:>9} {:>6.3} {:>5.1} {:>5.1}",
                    i,
                    spec.grid,
                    spec.block,
                    w.kernel.instrs.len(),
                    c[0],
                    c[1],
                    c[2],
                    c[3],
                    base.report.cycles,
                    dac.report.cycles,
                    base.report.cycles as f64 / dac.report.cycles as f64,
                    100.0 * s.affine_instruction_fraction(),
                    100.0 * s.decoupled_load_fraction(),
                );
            }
        }
        Some("dump") => {
            let seed: u64 = args[1].parse().unwrap();
            for a in &args[2..] {
                let i: u64 = a.parse().unwrap();
                let spec = gen_spec(seed, i);
                let w = spec.build_workload();
                println!("// ---- seed {seed} index {i} ----");
                println!(
                    "// grid {} block {} slots {} abbr {}",
                    spec.grid, spec.block, spec.slots, w.abbr
                );
                for d in Design::ALL {
                    let r = run_one(&w, d, &ov);
                    println!(
                        "// {}: cycles {} instrs {}",
                        d.name(),
                        r.report.cycles,
                        r.report.stats.warp_instructions
                    );
                }
                println!("{}", simt_ir::disasm::to_asm(&w.kernel));
            }
        }
        _ => {
            eprintln!("usage: promote scan <seed> <count> | promote dump <seed> <idx>...");
            std::process::exit(2);
        }
    }
}

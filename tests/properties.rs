//! Property-based tests on the reproduction's core invariants.

use dac_gpu::affine::tuple::tuple_op;
use dac_gpu::affine::{decouple, AffineAnalysis, AffineTuple};
use dac_gpu::dac::{Dac, DacConfig};
use dac_gpu::ir::{asm, eval, CmpOp, KernelBuilder, LaunchConfig, Op, Operand, Program, Space, Width};
use dac_gpu::mem::SparseMemory;
use dac_gpu::sim::{GpuConfig, GpuSim};
use proptest::prelude::*;

// ---------- affine tuple algebra vs. per-thread scalar evaluation ----------

/// A random affine expression: leaves are tid dimensions, immediates, or
/// "parameters" (scalars); inner nodes are the affine-supported ops.
#[derive(Debug, Clone)]
enum Expr {
    Tid(usize),
    Imm(i64),
    Add(Box<Expr>, Box<Expr>),
    Sub(Box<Expr>, Box<Expr>),
    MulScalar(Box<Expr>, i64),
    Shl(Box<Expr>, i64),
    Rem(Box<Expr>, i64),
}

impl Expr {
    /// Per-thread ground truth via the shared functional ALU semantics.
    fn eval_thread(&self, t: (u32, u32, u32)) -> u64 {
        match self {
            Expr::Tid(d) => [t.0, t.1, t.2][*d] as u64,
            Expr::Imm(i) => *i as u64,
            Expr::Add(a, b) => eval::eval(Op::Add, a.eval_thread(t), b.eval_thread(t), 0),
            Expr::Sub(a, b) => eval::eval(Op::Sub, a.eval_thread(t), b.eval_thread(t), 0),
            Expr::MulScalar(a, s) => eval::eval(Op::Mul, a.eval_thread(t), *s as u64, 0),
            Expr::Shl(a, s) => eval::eval(Op::Shl, a.eval_thread(t), *s as u64, 0),
            Expr::Rem(a, s) => eval::eval(Op::Rem, a.eval_thread(t), *s as u64, 0),
        }
    }

    /// Tuple-algebra evaluation; `None` when a combination is outside the
    /// affine domain (e.g. rem of a mod-tuple).
    fn eval_tuple(&self) -> Option<AffineTuple> {
        match self {
            Expr::Tid(d) => Some(AffineTuple::tid(*d)),
            Expr::Imm(i) => Some(AffineTuple::scalar(*i as u64)),
            Expr::Add(a, b) => tuple_op(Op::Add, &[a.eval_tuple()?, b.eval_tuple()?]),
            Expr::Sub(a, b) => tuple_op(Op::Sub, &[a.eval_tuple()?, b.eval_tuple()?]),
            Expr::MulScalar(a, s) => {
                tuple_op(Op::Mul, &[a.eval_tuple()?, AffineTuple::scalar(*s as u64)])
            }
            Expr::Shl(a, s) => tuple_op(Op::Shl, &[a.eval_tuple()?, AffineTuple::scalar(*s as u64)]),
            Expr::Rem(a, s) => tuple_op(Op::Rem, &[a.eval_tuple()?, AffineTuple::scalar(*s as u64)]),
        }
    }
}

fn arb_expr() -> impl Strategy<Value = Expr> {
    let leaf = prop_oneof![
        (0usize..3).prop_map(Expr::Tid),
        (-1000i64..1000).prop_map(Expr::Imm),
    ];
    leaf.prop_recursive(4, 24, 3, |inner| {
        prop_oneof![
            (inner.clone(), inner.clone()).prop_map(|(a, b)| Expr::Add(a.into(), b.into())),
            (inner.clone(), inner.clone()).prop_map(|(a, b)| Expr::Sub(a.into(), b.into())),
            (inner.clone(), -64i64..64).prop_map(|(a, s)| Expr::MulScalar(a.into(), s)),
            (inner.clone(), 0i64..8).prop_map(|(a, s)| Expr::Shl(a.into(), s)),
            (inner, 1i64..512).prop_map(|(a, s)| Expr::Rem(a.into(), s)),
        ]
    })
}

proptest! {
    /// The headline invariant: whenever the affine algebra can represent an
    /// expression, evaluating the tuple per thread equals the scalar
    /// per-thread computation, bit for bit. (Decoupling is an optimization,
    /// never an approximation.)
    #[test]
    fn tuple_algebra_matches_per_thread_eval(e in arb_expr()) {
        if let Some(t) = e.eval_tuple() {
            for &(x, y, z) in &[(0u32, 0u32, 0u32), (1, 0, 0), (31, 0, 0), (5, 3, 1), (127, 7, 2)] {
                let got = t.eval((x, y, z));
                let expect = e.eval_thread((x, y, z));
                prop_assert_eq!(got, expect, "thread ({}, {}, {})", x, y, z);
            }
        }
    }

    /// Scalar subsumption: any op over uniform inputs stays uniform and
    /// matches the functional ALU exactly.
    #[test]
    fn scalar_subsumption_matches_alu(a in any::<u64>(), b in any::<u64>(), op in prop_oneof![
        Just(Op::Add), Just(Op::Sub), Just(Op::Mul), Just(Op::And), Just(Op::Or),
        Just(Op::Xor), Just(Op::Shr), Just(Op::Min), Just(Op::Max), Just(Op::Div),
        Just(Op::FAdd), Just(Op::FMul),
    ]) {
        let r = tuple_op(op, &[AffineTuple::scalar(a), AffineTuple::scalar(b)])
            .expect("scalar inputs always evaluate");
        prop_assert_eq!(r.as_scalar().unwrap(), eval::eval(op, a, b, 0));
    }
}

// ---------- decoupling preserves semantics on random streaming kernels ----------

proptest! {
    #![proptest_config(ProptestConfig::with_cases(6))]
    /// Random strided-loop kernels: the decoupled program writes exactly
    /// the bytes the original wrote.
    #[test]
    fn decoupling_preserves_streaming_semantics(
        iters in 1u64..5,
        stride_elems in 1u64..600,
        addend in 0u32..1000,
        ctas in 1u32..4,
    ) {
        let mut b = KernelBuilder::new("prop", 4);
        let tid = b.tid_linear_x();
        let off = b.alu2(Op::Shl, Operand::Reg(tid), Operand::Imm(2));
        let a0 = b.alu2(Op::Add, Operand::Param(0), Operand::Reg(off));
        let o0 = b.alu2(Op::Add, Operand::Param(1), Operand::Reg(off));
        let step = b.alu2(Op::Shl, Operand::Param(3), Operand::Imm(2));
        let i = b.mov(Operand::Imm(0));
        b.label("loop");
        let v = b.ld(Space::Global, a0, 0, Width::W32);
        let r = b.alu2(Op::Add, Operand::Reg(v), Operand::Imm(addend as i64));
        b.st(Space::Global, o0, 0, Operand::Reg(r), Width::W32);
        b.alu_into(a0, Op::Add, &[Operand::Reg(a0), Operand::Reg(step)]);
        b.alu_into(o0, Op::Add, &[Operand::Reg(o0), Operand::Reg(step)]);
        b.alu_into(i, Op::Add, &[Operand::Reg(i), Operand::Imm(1)]);
        let p = b.setp(CmpOp::Lt, Operand::Reg(i), Operand::Param(2));
        b.bra_if(p, "loop");
        b.exit();
        let kernel = b.build();
        let launch = LaunchConfig::linear(
            ctas, 64, vec![0x10_0000, 0x200_0000, iters, stride_elems],
        );
        let span = (stride_elems * iters) as usize + 64 * ctas as usize;
        let input: Vec<u32> = (0..span as u32).map(|i| i ^ 0xA5A5).collect();

        let gpu = GpuSim::new(GpuConfig::test_small());
        let program = Program::new(kernel.clone(), launch.clone()).unwrap();
        let mut m1 = SparseMemory::new();
        m1.write_u32_slice(0x10_0000, &input);
        gpu.run(&program, &mut m1);

        let analysis = AffineAnalysis::run(&kernel);
        let dk = decouple(&kernel, &analysis);
        prop_assert!(dk.any_decoupled);
        let dprog = Program::new(dk.non_affine.clone(), launch).unwrap();
        let mut dac = Dac::new(DacConfig::paper(), dk);
        let mut m2 = SparseMemory::new();
        m2.write_u32_slice(0x10_0000, &input);
        gpu.run_with(&dprog, &mut m2, &mut dac);

        prop_assert_eq!(
            m1.read_u32_vec(0x200_0000, span),
            m2.read_u32_vec(0x200_0000, span)
        );
    }
}

// ---------- assembler total on printable kernels ----------

proptest! {
    /// The assembler accepts everything the builder can produce for a
    /// simple ALU/branch subset after disassembly-style printing of the
    /// same structure (labels regenerated).
    #[test]
    fn builder_kernels_always_validate(nops in 1usize..40, nloops in 0usize..3) {
        let mut b = KernelBuilder::new("gen", 1);
        let mut last = b.mov(Operand::Imm(1));
        for k in 0..nloops {
            let i = b.mov(Operand::Imm(0));
            b.label(format!("l{k}"));
            last = b.alu2(Op::Add, Operand::Reg(last), Operand::Reg(i));
            b.alu_into(i, Op::Add, &[Operand::Reg(i), Operand::Imm(1)]);
            let p = b.setp(CmpOp::Lt, Operand::Reg(i), Operand::Imm(3));
            b.bra_if(p, &format!("l{k}"));
        }
        for _ in 0..nops {
            last = b.alu2(Op::Xor, Operand::Reg(last), Operand::Imm(3));
        }
        b.exit();
        let k = b.build();
        prop_assert!(k.validate().is_ok());
        // CFG + reconvergence analysis must succeed on anything valid.
        let cfg = dac_gpu::ir::Cfg::build(&k);
        prop_assert!(cfg.len() >= 1);
    }
}

// ---------- the assembler rejects garbage without panicking ----------

proptest! {
    #[test]
    fn assembler_never_panics(s in "[ -~\n]{0,200}") {
        let _ = asm::parse_kernel(&s);
    }
}

//! Golden pins for the promoted divergence-stress corpus
//! (`gpu_workloads::divergence_stress`) — every design's cycle count and
//! headline counters on the standard fuzzing machine shape (2 SMs ×
//! 16 warps, the same shape `simt-fuzz` differentials run on).
//!
//! Any drift here means simulator behaviour changed on fuzzer-discovered
//! control-flow/divergence patterns; if intentional, update the table AND
//! bump `CACHE_VERSION` in `simt_harness::job`.

use gpu_workloads::divergence_stress;
use simt_harness::{suite_jobs, DesignPoint, Harness, Overrides};

/// (bench, design, cycles, warp_instructions, decoupled_loads).
const GOLDEN: &[(&str, &str, u64, u64, u64)] = &[
    ("FZS05", "baseline", 673, 309, 0),
    ("FZS05", "cae", 673, 309, 0),
    ("FZS05", "mta", 672, 309, 0),
    ("FZS05", "dac", 427, 293, 4),
    ("FZS07", "baseline", 1194, 206, 0),
    ("FZS07", "cae", 1194, 206, 0),
    ("FZS07", "mta", 1194, 206, 0),
    ("FZS07", "dac", 616, 196, 4),
    ("FZS11", "baseline", 1608, 528, 0),
    ("FZS11", "cae", 1608, 528, 0),
    ("FZS11", "mta", 1572, 528, 0),
    ("FZS11", "dac", 1854, 516, 3),
    ("FZS12", "baseline", 1488, 892, 0),
    ("FZS12", "cae", 1487, 892, 0),
    ("FZS12", "mta", 1486, 892, 0),
    ("FZS12", "dac", 1488, 892, 0),
    ("FZS22", "baseline", 454, 24, 0),
    ("FZS22", "cae", 454, 24, 0),
    ("FZS22", "mta", 454, 24, 0),
    ("FZS22", "dac", 417, 14, 3),
    ("FZS66", "baseline", 5941, 2267, 0),
    ("FZS66", "cae", 5920, 2267, 0),
    ("FZS66", "mta", 5941, 2267, 0),
    ("FZS66", "dac", 5751, 1817, 18),
    ("FZS77", "baseline", 524, 46, 0),
    ("FZS77", "cae", 524, 46, 0),
    ("FZS77", "mta", 524, 46, 0),
    ("FZS77", "dac", 767, 36, 4),
    ("FZS85", "baseline", 1391, 980, 0),
    ("FZS85", "cae", 1379, 980, 0),
    ("FZS85", "mta", 1380, 980, 0),
    ("FZS85", "dac", 1433, 962, 6),
];

#[test]
fn stress_corpus_counters_match_golden_values() {
    let overrides = Overrides {
        num_sms: Some(2),
        max_warps_per_sm: Some(16),
        ..Overrides::default()
    };
    let jobs = suite_jobs(divergence_stress(), 1, &DesignPoint::HW_ALL, &overrides);
    let out = Harness::serial().run(&jobs);
    if jobs.len() != GOLDEN.len() {
        let mut table = String::new();
        for (job, result) in jobs.iter().zip(&out.results) {
            let s = &result.report.stats;
            table.push_str(&format!(
                "    (\"{}\", \"{}\", {}, {}, {}),\n",
                job.bench(),
                job.point.name(),
                result.report.cycles,
                s.warp_instructions,
                s.decoupled_loads
            ));
        }
        panic!("golden table out of date; actual values:\n{table}");
    }
    for ((job, result), &(bench, design, cycles, warp_instructions, decoupled_loads)) in
        jobs.iter().zip(&out.results).zip(GOLDEN)
    {
        assert_eq!(job.bench(), bench);
        assert_eq!(job.point.name(), design);
        let s = &result.report.stats;
        assert_eq!(
            (result.report.cycles, s.warp_instructions, s.decoupled_loads),
            (cycles, warp_instructions, decoupled_loads),
            "{bench}/{design}: counters drifted from golden values"
        );
    }
}

/// All four designs agree bit-for-bit on every stress workload's output
/// region (per-thread words + atomic slots).
#[test]
fn stress_corpus_outputs_agree_across_designs() {
    let overrides = Overrides {
        num_sms: Some(2),
        max_warps_per_sm: Some(16),
        ..Overrides::default()
    };
    for w in divergence_stress() {
        let jobs = suite_jobs(vec![w.clone()], 1, &DesignPoint::HW_ALL, &overrides);
        let out = Harness::serial().run(&jobs);
        let digests: Vec<u64> = out.results.iter().map(|r| r.output_digest).collect();
        assert!(
            digests.windows(2).all(|p| p[0] == p[1]),
            "{}: designs disagree: {digests:x?}",
            w.abbr
        );
    }
}

//! The DAC coprocessor: glues the affine engine, the Address/Predicate
//! Expansion Units, and the per-warp queues into the SM pipeline via the
//! [`simt_sim::CoProcessor`] hooks (paper Figure 9).

use crate::config::DacConfig;
use crate::engine::{AffineCtx, ExecOutcome, PeuClass};
use crate::queues::DacQueues;
use affine::DecoupledKernel;
use simt_ir::{AddrMode, Cfg, Instr, PredSrc, Program, QueueKind};
use simt_mem::{AccessOutcome, Client, FxHashSet, MemRequest, MemResponse, ReqKind};
use simt_sim::{AddrRecord, CoCtx, CoProcessor, RecordKind, SimStats};
use simt_trace::TraceEvent;
use std::collections::{HashMap, VecDeque};

/// Per-SM DAC state.
struct SmDac {
    queues: DacQueues,
    slots: Vec<Option<AffineCtx>>,
    /// Warp slots per CTA slot (for retire-time cleanup).
    slot_warps: Vec<Vec<usize>>,
    /// Barriers passed by each CTA slot's non-affine warps (gates the
    /// expansion units, §4.2).
    nonaffine_epoch: Vec<u32>,
    /// Pending early line requests `(record id, line)` awaiting fabric
    /// acceptance.
    pending_lines: VecDeque<(u64, u64)>,
    /// Front of `pending_lines` captured by [`Dac`]'s `step` (compute
    /// phase), submitted to the fabric by `pump` (replay phase). Captured
    /// before the expansion units push new lines, so the request submitted
    /// each cycle is exactly the one the serial single-phase code chose.
    pump_capture: Option<(u64, u64)>,
    /// PEU cost classification counters (per-SM so the compute phase never
    /// writes shared coprocessor state).
    peu_scalar: u64,
    peu_two_compare: u64,
    peu_full: u64,
    /// Round-robin pointer over CTA slots for the affine warp.
    rr: usize,
}

/// The Decoupled Affine Computation hardware, attached to every SM.
pub struct Dac {
    cfg: DacConfig,
    dk: DecoupledKernel,
    /// Reconvergence PCs of the affine stream.
    affine_reconv: HashMap<usize, usize>,
    launch: Option<simt_ir::LaunchConfig>,
    sms: Vec<SmDac>,
    /// Queue items discarded at CTA retire (should stay 0 for matched
    /// streams; nonzero indicates a decoupling bug).
    pub dropped_at_retire: u64,
}

impl Dac {
    /// Build the coprocessor for a decoupled kernel.
    pub fn new(cfg: DacConfig, dk: DecoupledKernel) -> Self {
        let affine_reconv = Cfg::build(&dk.affine).reconvergence;
        Dac {
            cfg,
            dk,
            affine_reconv,
            launch: None,
            sms: Vec::new(),
            dropped_at_retire: 0,
        }
    }

    /// The decoupled kernel this coprocessor runs.
    pub fn decoupled(&self) -> &DecoupledKernel {
        &self.dk
    }

    /// Scalar PEU cost classifications across all SMs (§4.3: 64% scalar,
    /// 93% ≤ 2 cmp).
    pub fn peu_scalar(&self) -> u64 {
        self.sms.iter().map(|s| s.peu_scalar).sum()
    }

    /// Two-comparison (warp-uniform) predicate expansions across all SMs.
    pub fn peu_two_compare(&self) -> u64 {
        self.sms.iter().map(|s| s.peu_two_compare).sum()
    }

    /// Full 32-lane predicate expansions across all SMs.
    pub fn peu_full(&self) -> u64 {
        self.sms.iter().map(|s| s.peu_full).sum()
    }

    fn active(&self) -> bool {
        self.dk.any_decoupled
    }

    /// Repartition the per-warp queues among currently-resident warps
    /// (the 192 PWAQ/PWPQ entries are a shared pool, Table 1).
    fn repartition(&mut self, sm: usize) {
        let s = &mut self.sms[sm];
        let resident: usize = s.slot_warps.iter().map(|w| w.len()).sum();
        s.queues.set_per_warp_caps(
            DacConfig::per_warp_cap(self.cfg.pwaq_total, resident),
            DacConfig::per_warp_cap(self.cfg.pwpq_total, resident),
        );
    }

    /// One Address Expansion Unit work unit: expand one warp record of the
    /// oldest expandable Data/Addr tuple (per-CTA accumulators let the AEU
    /// skip tuples of blocked CTAs, §4.2).
    fn aeu_step(&mut self, sm: usize, ctx: &mut CoCtx<'_>) {
        let line_bytes = ctx.line_bytes;
        let s = &mut self.sms[sm];
        // CTA slots are per-SM hardware resources (far fewer than 64), so a
        // bitmask replaces the per-cycle HashSet this loop used to allocate.
        let mut blocked_slots = 0u64;
        let mut chosen: Option<usize> = None;
        for (i, e) in s.queues.atq.iter().enumerate() {
            if e.kind == QueueKind::Pred {
                continue;
            }
            debug_assert!(e.slot < 64);
            if blocked_slots & (1 << e.slot) != 0 {
                continue;
            }
            if e.epoch > s.nonaffine_epoch[e.slot] {
                blocked_slots |= 1 << e.slot;
                continue;
            }
            let warp = e.per_warp[e.next].warp_global;
            if !s.queues.pwaq_has_space(warp) {
                blocked_slots |= 1 << e.slot;
                continue;
            }
            chosen = Some(i);
            break;
        }
        let Some(i) = chosen else { return };
        let entry = &mut s.queues.atq[i];
        let w = entry.per_warp[entry.next].clone();
        let kind = entry.kind;
        let width = entry.width;
        let space = entry.space;
        entry.next += 1;
        let finished = entry.next == entry.per_warp.len();
        if finished {
            s.queues.atq.remove(i);
        }
        // Coalesce the warp's lanes into unique lines.
        let mut lines: Vec<u64> = Vec::new();
        for a in w.addrs.iter().flatten() {
            let line = a & !(line_bytes - 1);
            if !lines.contains(&line) {
                lines.push(line);
            }
        }
        let prefetch = kind == QueueKind::Data;
        let record = AddrRecord {
            kind: if prefetch {
                RecordKind::Data
            } else {
                RecordKind::Addr
            },
            thread_addrs: w.addrs,
            lines: lines.clone(),
            space,
            width,
        };
        let pending = if prefetch { lines.len() } else { 0 };
        let id = s.queues.push_record(w.warp_global, record, pending);
        if prefetch {
            for line in lines {
                s.pending_lines.push_back((id, line));
            }
        }
        ctx.stats.aeu_records += 1;
        if ctx.tracer.enabled() {
            ctx.tracer.emit(
                ctx.now,
                TraceEvent::Expand {
                    sm: sm as u32,
                    warp: w.warp_global as u32,
                    pred: false,
                },
            );
        }
    }

    /// One Predicate Expansion Unit work unit. Returns whether it did any.
    fn peu_step(&mut self, sm: usize, ctx: &mut CoCtx<'_>) -> bool {
        let s = &mut self.sms[sm];
        // Bitmask, not HashSet — see aeu_step.
        let mut blocked_slots = 0u64;
        let mut chosen: Option<usize> = None;
        for (i, e) in s.queues.atq.iter().enumerate() {
            if e.kind != QueueKind::Pred {
                continue;
            }
            debug_assert!(e.slot < 64);
            if blocked_slots & (1 << e.slot) != 0 {
                continue;
            }
            if e.epoch > s.nonaffine_epoch[e.slot] {
                blocked_slots |= 1 << e.slot;
                continue;
            }
            let warp = e.per_warp[e.next].warp_global;
            if !s.queues.pwpq_has_space(warp) {
                blocked_slots |= 1 << e.slot;
                continue;
            }
            chosen = Some(i);
            break;
        }
        let Some(i) = chosen else { return false };
        let entry = &mut s.queues.atq[i];
        let w = entry.per_warp[entry.next].clone();
        entry.next += 1;
        let finished = entry.next == entry.per_warp.len();
        if finished {
            s.queues.atq.remove(i);
        }
        s.queues.push_pred(w.warp_global, w.bits);
        ctx.stats.peu_records += 1;
        if ctx.tracer.enabled() {
            ctx.tracer.emit(
                ctx.now,
                TraceEvent::Expand {
                    sm: sm as u32,
                    warp: w.warp_global as u32,
                    pred: true,
                },
            );
        }
        true
    }

    /// One affine-warp issue: round-robin across CTA slots; consumes the
    /// SM's issue slot when an instruction executes (§4.4).
    fn affine_issue(&mut self, sm: usize, ctx: &mut CoCtx<'_>) {
        if !*ctx.issue_slot {
            return;
        }
        let launch = self.launch.as_ref().expect("kernel not launched");
        let s = &mut self.sms[sm];
        let nslots = s.slots.len();
        if nslots == 0 {
            return;
        }
        for k in 0..nslots {
            let slot = (s.rr + k) % nslots;
            let Some(actx) = s.slots[slot].as_mut() else {
                continue;
            };
            if actx.done() {
                continue;
            }
            let pc = actx.stack.pc();
            let (outcome, peu) =
                actx.exec_one(&self.dk.affine, &self.affine_reconv, launch, &mut s.queues);
            match outcome {
                ExecOutcome::Executed => {
                    ctx.stats.affine_instructions += 1;
                    if ctx.tracer.enabled() {
                        ctx.tracer.emit(
                            ctx.now,
                            TraceEvent::AffineIssue {
                                sm: sm as u32,
                                slot: slot as u32,
                                pc: pc as u32,
                            },
                        );
                    }
                    match peu {
                        Some(PeuClass::Scalar) => s.peu_scalar += 1,
                        Some(PeuClass::TwoCompare) => s.peu_two_compare += 1,
                        Some(PeuClass::Full) => s.peu_full += 1,
                        None => {}
                    }
                    *ctx.issue_slot = false;
                    s.rr = (slot + 1) % nslots;
                    return;
                }
                ExecOutcome::AtqFull => {
                    ctx.stats.enq_full_stalls += 1;
                    // Try another CTA slot's context.
                }
                ExecOutcome::Done => {}
            }
        }
    }
}

impl CoProcessor for Dac {
    fn name(&self) -> &'static str {
        "dac"
    }

    fn on_kernel_launch(&mut self, program: &Program, num_sms: usize) {
        self.launch = Some(program.launch.clone());
        self.sms = (0..num_sms)
            .map(|_| SmDac {
                queues: DacQueues::new(
                    0,
                    self.cfg.atq_entries,
                    self.cfg.pwaq_total,
                    self.cfg.pwpq_total,
                ),
                slots: Vec::new(),
                slot_warps: Vec::new(),
                nonaffine_epoch: Vec::new(),
                pending_lines: VecDeque::new(),
                pump_capture: None,
                peu_scalar: 0,
                peu_two_compare: 0,
                peu_full: 0,
                rr: 0,
            })
            .collect();
    }

    fn on_cta_launch(&mut self, sm: usize, slot: usize, cta_linear: u64, warps: &[usize]) {
        if !self.active() {
            return;
        }
        let launch = self.launch.as_ref().expect("kernel not launched").clone();
        let s = &mut self.sms[sm];
        if s.slots.len() <= slot {
            s.slots.resize_with(slot + 1, || None);
            s.slot_warps.resize_with(slot + 1, Vec::new);
            s.nonaffine_epoch.resize(slot + 1, 0);
        }
        if let Some(&maxw) = warps.iter().max() {
            s.queues.ensure_warps(maxw + 1);
        }
        let threads = launch.threads_per_cta() as u64;
        let masks: Vec<u32> = (0..warps.len())
            .map(|w| {
                let live = threads.saturating_sub(w as u64 * 32).min(32) as u32;
                if live == 32 {
                    u32::MAX
                } else {
                    (1u32 << live) - 1
                }
            })
            .collect();
        s.slots[slot] = Some(AffineCtx::new(
            slot,
            cta_linear,
            launch.grid.unflatten(cta_linear),
            warps.to_vec(),
            masks,
            &self.dk.affine,
        ));
        s.slot_warps[slot] = warps.to_vec();
        s.nonaffine_epoch[slot] = 0;
        self.repartition(sm);
    }

    fn on_cta_retire(&mut self, sm: usize, slot: usize) {
        if !self.active() {
            return;
        }
        let s = &mut self.sms[sm];
        if slot >= s.slots.len() {
            return;
        }
        s.slots[slot] = None;
        let warps = std::mem::take(&mut s.slot_warps[slot]);
        let dropped = s.queues.drop_warps(slot, &warps);
        self.dropped_at_retire += dropped as u64;
        // Drop pending line requests for discarded records.
        if dropped > 0 {
            let live: FxHashSet<u64> = s.queues.records.keys().copied().collect();
            s.pending_lines.retain(|(id, _)| live.contains(id));
        }
        self.repartition(sm);
    }

    fn on_barrier_release(&mut self, sm: usize, slot: usize) {
        if !self.active() {
            return;
        }
        let s = &mut self.sms[sm];
        if slot < s.nonaffine_epoch.len() {
            s.nonaffine_epoch[slot] += 1;
        }
    }

    fn can_issue(&mut self, sm: usize, warp: usize, instr: &Instr, stats: &mut SimStats) -> bool {
        if !self.active() {
            return true;
        }
        let q = &self.sms[sm].queues;
        match instr {
            Instr::Ld {
                addr: AddrMode::DeqData,
                ..
            } => match q.pwaq_front_kind(warp) {
                None => {
                    stats.deq_empty_stalls += 1;
                    false
                }
                Some((kind, ready)) => {
                    debug_assert_eq!(kind, RecordKind::Data, "stream misalignment");
                    if !ready {
                        stats.deq_data_stalls += 1;
                    }
                    ready
                }
            },
            Instr::Ld {
                addr: AddrMode::DeqAddr,
                ..
            }
            | Instr::St {
                addr: AddrMode::DeqAddr,
                ..
            } => match q.pwaq_front_kind(warp) {
                None => {
                    stats.deq_empty_stalls += 1;
                    false
                }
                Some((kind, _)) => {
                    debug_assert_eq!(kind, RecordKind::Addr, "stream misalignment");
                    true
                }
            },
            Instr::Bra {
                pred: Some(PredSrc::Deq { .. }),
                ..
            } => {
                let ok = q.pred_available(warp);
                if !ok {
                    stats.deq_empty_stalls += 1;
                }
                ok
            }
            _ => true,
        }
    }

    fn deq_record(&mut self, sm: usize, warp: usize) -> Option<AddrRecord> {
        self.sms[sm].queues.pop_record(warp)
    }

    fn deq_pred_bits(&mut self, sm: usize, warp: usize) -> Option<u32> {
        self.sms[sm].queues.pop_pred(warp)
    }

    fn on_response(&mut self, resp: &MemResponse) {
        if resp.client == Client::Dac {
            self.sms[resp.sm].queues.record_response(resp.token);
        }
    }

    fn step(&mut self, ctx: &mut CoCtx<'_>) {
        if !self.active() || self.sms.is_empty() {
            return;
        }
        let sm = ctx.sm;
        // Latch the line request the fabric will see this cycle (submitted
        // by `pump` in the replay phase). Captured before the expansion
        // units can push new lines, matching the serial issue order.
        self.sms[sm].pump_capture = self.sms[sm].pending_lines.front().copied();
        // Two expansion ALUs per SM (§4.8). The PEU claims one when it has
        // predicate work; otherwise both serve address expansion.
        let did_pred = self.peu_step(sm, ctx);
        self.aeu_step(sm, ctx);
        if !did_pred {
            self.aeu_step(sm, ctx);
        }
        self.affine_issue(sm, ctx);
        // Sample queue occupancy and run-ahead distance every cycle the DAC
        // is live. The sums feed mean-occupancy stats; the trace event feeds
        // the Chrome counter track. Counted unconditionally so a traced run
        // reports identical statistics to an untraced one.
        let s = &self.sms[sm];
        let atq = s.queues.atq.len() as u64;
        let pwaq = s.queues.records.len() as u64;
        let pwpq: u64 = s.queues.pwpq.iter().map(|q| q.len() as u64).sum();
        ctx.stats.atq_occupancy_sum += atq;
        ctx.stats.pwaq_occupancy_sum += pwaq;
        ctx.stats.pwpq_occupancy_sum += pwpq;
        // Run-ahead distance: affine-stream products not yet consumed by the
        // non-affine stream (ATQ tuples + expanded records in flight).
        let runahead = atq + pwaq;
        ctx.stats.affine_runahead_sum += runahead;
        if ctx.tracer.enabled() {
            ctx.tracer.emit(
                ctx.now,
                TraceEvent::QueueSample {
                    sm: sm as u32,
                    atq: atq as u32,
                    pwaq: pwaq as u32,
                    pwpq: pwpq as u32,
                    runahead: runahead as u32,
                },
            );
        }
    }

    /// Issue the early line request latched by `step`: one per cycle
    /// reaches the L1 (the AEU shares the cache port, §4.2). Retries on
    /// structural stalls — lock-budget stalls included.
    fn pump(
        &mut self,
        sm: usize,
        now: u64,
        fabric: &mut simt_mem::MemoryFabric,
        _stats: &mut SimStats,
        tracer: &mut dyn simt_trace::Tracer,
    ) {
        if !self.active() || self.sms.is_empty() {
            return;
        }
        let s = &mut self.sms[sm];
        let Some((id, line)) = s.pump_capture.take() else {
            return;
        };
        let kind = if self.cfg.lock_lines {
            ReqKind::PrefetchLock
        } else {
            ReqKind::Load
        };
        let req = MemRequest {
            sm,
            line,
            kind,
            client: Client::Dac,
            token: id,
        };
        match fabric.access_traced(now, req, tracer) {
            AccessOutcome::Accepted => {
                debug_assert_eq!(s.pending_lines.front(), Some(&(id, line)));
                s.pending_lines.pop_front();
            }
            AccessOutcome::Stall(_) => {}
        }
    }

    fn quiescent(&self) -> bool {
        self.sms.iter().all(|s| {
            s.slots.iter().all(|c| c.is_none()) && s.queues.empty() && s.pending_lines.is_empty()
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use affine::{decouple, AffineAnalysis};
    use simt_ir::{Dim3, Kernel, LaunchConfig};
    use simt_mem::SparseMemory;
    use simt_sim::{GpuConfig, GpuSim};

    fn figure4_kernel() -> Kernel {
        simt_ir::asm::parse_kernel(
            r#"
.kernel example
.params 4
    mul r0, %ctaid.x, %ntid.x;
    add r1, r0, %tid.x;
    shl r2, r1, 2;
    add r3, %p0, r2;
    add r4, %p1, r2;
    mov r5, 0;
LOOP:
    ld.global r6, [r3];
    add r7, r6, 1;
    st.global [r4], r7;
    add r5, r5, 1;
    mul r8, %p3, 4;
    add r3, r8, r3;
    add r4, r8, r4;
    setp.ne p0, %p2, r5;
    @p0 bra LOOP;
    exit;
"#,
        )
        .unwrap()
    }

    /// Full end-to-end: DAC must produce the same memory contents as the
    /// baseline and run faster on this memory-bound kernel.
    #[test]
    fn figure4_dac_correct_and_faster() {
        let k = figure4_kernel();
        let dim = 8u64; // loop iterations
        let num = 256u64; // row stride (elements)
        let n = (dim * num) as usize;
        let a_base = 0x10_0000u64;
        let b_base = 0x80_0000u64;
        let launch = LaunchConfig {
            grid: Dim3::x(4),
            block: Dim3::x(64),
            params: vec![a_base, b_base, dim, num],
        };
        let input: Vec<u32> = (0..n as u32).map(|i| i * 3 + 7).collect();

        // Baseline.
        let base_prog = simt_ir::Program::new(k.clone(), launch.clone()).unwrap();
        let mut mem_b = SparseMemory::new();
        mem_b.write_u32_slice(a_base, &input);
        let gpu = GpuSim::new(GpuConfig::test_small());
        let base = gpu.run(&base_prog, &mut mem_b);

        // DAC.
        let analysis = AffineAnalysis::run(&k);
        let dk = decouple(&k, &analysis);
        assert!(dk.any_decoupled);
        let dac_prog = simt_ir::Program::new(dk.non_affine.clone(), launch.clone()).unwrap();
        let mut dac = Dac::new(DacConfig::paper(), dk);
        let mut mem_d = SparseMemory::new();
        mem_d.write_u32_slice(a_base, &input);
        let rep = gpu.run_with(&dac_prog, &mut mem_d, &mut dac);

        // Functional equivalence.
        assert_eq!(
            mem_b.read_u32_vec(b_base, n),
            mem_d.read_u32_vec(b_base, n),
            "DAC changed program semantics"
        );
        // Every thread wrote input + 1.
        // (The kernel writes B[i*num+tid] = A[i*num+tid] + 1 for tid in
        // the first 256 linear ids.)
        assert_eq!(mem_d.read_u32(b_base), input[0] + 1);

        // Decoupling happened and hid latency.
        assert!(rep.stats.decoupled_loads > 0);
        assert!(rep.stats.affine_instructions > 0);
        assert!(
            rep.stats.decoupled_load_fraction() > 0.9,
            "decoupled fraction {}",
            rep.stats.decoupled_load_fraction()
        );
        assert!(
            rep.cycles < base.cycles,
            "DAC {} !< baseline {}",
            rep.cycles,
            base.cycles
        );
        assert_eq!(dac.dropped_at_retire, 0, "streams misaligned at retire");
        // Instruction count shrinks (Fig. 17): non-affine stream is 5/16
        // of the original per iteration.
        assert!(
            rep.stats.warp_instructions < base.stats.warp_instructions,
            "dynamic warp instructions must drop"
        );
    }

    /// DAC on a kernel with nothing to decouple degenerates to baseline.
    #[test]
    fn inactive_dac_is_transparent() {
        let k = simt_ir::asm::parse_kernel(
            ".kernel n\n.params 1\n mov r0, 1;\n add r1, r0, r0;\n exit;",
        )
        .unwrap();
        let analysis = AffineAnalysis::run(&k);
        let dk = decouple(&k, &analysis);
        assert!(!dk.any_decoupled);
        let launch = LaunchConfig::linear(1, 32, vec![0]);
        let prog = simt_ir::Program::new(dk.non_affine.clone(), launch).unwrap();
        let mut dac = Dac::new(DacConfig::paper(), dk);
        let mut mem = SparseMemory::new();
        let rep = GpuSim::new(GpuConfig::test_small()).run_with(&prog, &mut mem, &mut dac);
        assert_eq!(rep.stats.affine_instructions, 0);
        assert_eq!(rep.stats.decoupled_loads, 0);
    }

    /// Divergent-boundary kernel: guarded loads after a tid-dependent
    /// branch must stay correct under DAC.
    #[test]
    fn boundary_divergence_correct() {
        let k = simt_ir::asm::parse_kernel(
            r#"
.kernel bound
.params 3
    mul r0, %ctaid.x, %ntid.x;
    add r1, r0, %tid.x;
    setp.ge p0, r1, %p2;
    @p0 bra DONE;
    shl r2, r1, 2;
    add r3, %p0, r2;
    ld.global r4, [r3];
    add r5, r4, 10;
    add r6, %p1, r2;
    st.global [r6], r5;
DONE:
    exit;
"#,
        )
        .unwrap();
        let n = 100u64; // not a multiple of 32: real divergence in last warp
        let launch = LaunchConfig {
            grid: Dim3::x(2),
            block: Dim3::x(64),
            params: vec![0x4000, 0x9000, n],
        };
        let input: Vec<u32> = (0..128).map(|i| i + 1).collect();

        let base_prog = simt_ir::Program::new(k.clone(), launch.clone()).unwrap();
        let mut mem_b = SparseMemory::new();
        mem_b.write_u32_slice(0x4000, &input);
        let gpu = GpuSim::new(GpuConfig::test_small());
        gpu.run(&base_prog, &mut mem_b);

        let analysis = AffineAnalysis::run(&k);
        let dk = decouple(&k, &analysis);
        assert!(dk.any_decoupled, "boundary kernel should decouple");
        let prog = simt_ir::Program::new(dk.non_affine.clone(), launch).unwrap();
        let mut dac = Dac::new(DacConfig::paper(), dk);
        let mut mem_d = SparseMemory::new();
        mem_d.write_u32_slice(0x4000, &input);
        let rep = gpu.run_with(&prog, &mut mem_d, &mut dac);

        assert_eq!(
            mem_b.read_u32_vec(0x9000, 128),
            mem_d.read_u32_vec(0x9000, 128)
        );
        // Elements ≥ n untouched.
        assert_eq!(mem_d.read_u32(0x9000 + 4 * n), 0);
        assert_eq!(mem_d.read_u32(0x9000), 11);
        assert_eq!(dac.dropped_at_retire, 0);
        assert!(rep.stats.decoupled_loads > 0);
    }

    /// Lock counters keep early lines resident: with tiny queues and many
    /// warps the kernel still completes and stays correct.
    #[test]
    fn small_queues_still_correct() {
        let k = figure4_kernel();
        let launch = LaunchConfig {
            grid: Dim3::x(8),
            block: Dim3::x(128),
            params: vec![0x10_0000, 0x80_0000, 4, 1024],
        };
        let n = 4 * 1024usize;
        let input: Vec<u32> = (0..n as u32).collect();
        let analysis = AffineAnalysis::run(&k);
        let dk = decouple(&k, &analysis);
        let prog = simt_ir::Program::new(dk.non_affine.clone(), launch).unwrap();
        let cfg = DacConfig {
            atq_entries: 2,
            pwaq_total: 16,
            pwpq_total: 16,
            ..DacConfig::paper()
        };
        let mut dac = Dac::new(cfg, dk);
        let mut mem = SparseMemory::new();
        mem.write_u32_slice(0x10_0000, &input);
        let rep = GpuSim::new(GpuConfig::test_small()).run_with(&prog, &mut mem, &mut dac);
        for i in 0..n {
            assert_eq!(mem.read_u32(0x80_0000 + 4 * i as u64), i as u32 + 1);
        }
        assert!(rep.stats.enq_full_stalls > 0, "tiny ATQ must back-pressure");
    }
}

//! The sweep service core: a job queue with **single-flight semantics**
//! over the shared result store.
//!
//! Every submitted grid lowers to harness jobs and canonicalizes each
//! point to its cache key. The key's hash is the point's identity in a
//! service-wide registry: the first sweep to name a point *owns* it (the
//! service enqueues it once), and every later sweep naming the same point
//! — concurrently or after the fact — **shares** the one run. Combined
//! with the on-disk content-addressed cache this gives the three regimes
//! the north star asks for:
//!
//! * cold point → simulated once, stored, served to everyone;
//! * point in flight → second submitter attaches to the running job;
//! * warm point → resolved from the store, zero execution.
//!
//! Execution happens on a [`WorkerPool`] (non-blocking submission), so
//! the daemon keeps accepting requests while earlier grids simulate.
//! Progress is durable without any progress file: a point is done iff its
//! result is in the cache, so a restarted daemon re-enqueues manifest
//! points and the finished ones resolve instantly as cache hits.

use crate::grid::GridRequest;
use crate::manifest;
use simt_harness::{json, Job, ResultCache, WorkerPool};
use std::collections::{BTreeMap, HashMap};
use std::panic::{catch_unwind, AssertUnwindSafe};
use std::path::PathBuf;
use std::sync::{Arc, Condvar, Mutex};
use std::time::{Duration, Instant};

/// Schema tag on every status/metrics/receipt document the service emits.
pub const SCHEMA: &str = "dac-serve/v1";

/// Daemon configuration.
#[derive(Debug, Clone)]
pub struct ServeConfig {
    /// Results root: the cache lives in `<results>/cache`, manifests in
    /// `<results>/sweeps` — the same layout the CLI tools use, so the
    /// daemon warms up from (and feeds) every prior one-shot sweep.
    pub results_dir: PathBuf,
    /// Simulation worker threads.
    pub workers: usize,
    /// Execute at most this many *fresh* simulations this session (cache
    /// hits are free). When the budget runs out, remaining points stay
    /// queued and resume on the next session — time-boxed incremental
    /// warming for CI, and a deterministic way to stop a daemon
    /// mid-sweep.
    pub execute_budget: Option<usize>,
    /// Per-point progress lines on stderr.
    pub verbose: bool,
}

impl ServeConfig {
    /// A daemon over `results/` with `workers` threads and no budget.
    pub fn new(results_dir: impl Into<PathBuf>, workers: usize) -> Self {
        ServeConfig {
            results_dir: results_dir.into(),
            workers,
            execute_budget: None,
            verbose: false,
        }
    }
}

/// How a completed point got its result.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum Resolution {
    /// Simulated fresh by this daemon session.
    Executed,
    /// Served from the on-disk result store.
    CacheHit,
}

#[derive(Debug, Clone)]
enum PointStatus {
    Queued,
    Running,
    Done { cycles: u64, resolution: Resolution },
    Failed(String),
}

impl PointStatus {
    fn is_terminal(&self) -> bool {
        matches!(self, PointStatus::Done { .. } | PointStatus::Failed(_))
    }

    fn name(&self) -> &'static str {
        match self {
            PointStatus::Queued => "queued",
            PointStatus::Running => "running",
            PointStatus::Done { .. } => "done",
            PointStatus::Failed(_) => "failed",
        }
    }
}

/// One entry in the single-flight registry.
struct PointEntry {
    job: Job,
    label: String,
    /// The sweep that first named this point (and thus enqueued it).
    owner: String,
    status: PointStatus,
}

struct SweepState {
    hashes: Vec<u64>,
    submitted: Instant,
    /// Wall seconds from submission to the last point completing.
    done_wall_s: Option<f64>,
}

#[derive(Default)]
struct Latency {
    count: u64,
    total_us: u64,
    max_us: u64,
}

struct State {
    points: HashMap<u64, PointEntry>,
    sweeps: BTreeMap<String, SweepState>,
    /// Fresh simulations this session.
    executed: u64,
    /// Points resolved from the on-disk store this session.
    cache_hits: u64,
    /// Submitted points that attached to an existing entry (single-flight
    /// shares plus resubmissions).
    shared_submissions: u64,
    failed: u64,
    budget_left: Option<usize>,
    /// Dispatched pool tasks not yet finished (for idle detection).
    pending: usize,
    stopping: bool,
    endpoints: BTreeMap<String, Latency>,
}

/// What a submission did, point-count wise, **at submission time**.
#[derive(Debug, Clone)]
pub struct Receipt {
    /// Content-addressed sweep id.
    pub id: String,
    /// True when this exact grid was already registered (the receipt then
    /// describes the existing sweep; nothing was enqueued).
    pub resubmitted: bool,
    /// Points in the grid.
    pub total: usize,
    /// Points newly enqueued by this submission.
    pub new: usize,
    /// Points already complete when this submission arrived.
    pub already_done: usize,
    /// Points owned by another sweep and still in flight — this
    /// submission shares their (single) run.
    pub inflight_shared: usize,
}

impl Receipt {
    /// The receipt as a `dac-serve/v1` JSON document.
    pub fn to_json(&self) -> json::Value {
        json::Value::Obj(vec![
            ("schema".into(), json::Value::Str(SCHEMA.into())),
            ("id".into(), json::Value::Str(self.id.clone())),
            ("resubmitted".into(), json::Value::Bool(self.resubmitted)),
            ("total".into(), json::Value::Int(self.total as u64)),
            ("new".into(), json::Value::Int(self.new as u64)),
            (
                "already_done".into(),
                json::Value::Int(self.already_done as u64),
            ),
            (
                "inflight_shared".into(),
                json::Value::Int(self.inflight_shared as u64),
            ),
        ])
    }
}

/// The long-lived sweep service. Cheap to share: wrap it in an [`Arc`]
/// and hand clones to the HTTP layer and to tests.
pub struct SweepService {
    cfg: ServeConfig,
    cache: ResultCache,
    state: Arc<(Mutex<State>, Condvar)>,
    pool: WorkerPool,
    started: Instant,
}

impl SweepService {
    /// Start a service session: workers up, nothing submitted yet. Call
    /// [`SweepService::resume`] to pick up prior sessions' manifests.
    pub fn new(cfg: ServeConfig) -> Self {
        let cache = ResultCache::new(cfg.results_dir.join("cache"));
        let state = Arc::new((
            Mutex::new(State {
                points: HashMap::new(),
                sweeps: BTreeMap::new(),
                executed: 0,
                cache_hits: 0,
                shared_submissions: 0,
                failed: 0,
                budget_left: cfg.execute_budget,
                pending: 0,
                stopping: false,
                endpoints: BTreeMap::new(),
            }),
            Condvar::new(),
        ));
        let pool = WorkerPool::new(cfg.workers);
        SweepService {
            cfg,
            cache,
            state,
            pool,
            started: Instant::now(),
        }
    }

    /// The configuration this session runs under.
    pub fn config(&self) -> &ServeConfig {
        &self.cfg
    }

    /// The shared result store.
    pub fn cache(&self) -> &ResultCache {
        &self.cache
    }

    /// Re-register every sweep manifest under the results root. Completed
    /// points resolve as cache hits; unfinished ones execute. Returns the
    /// ids of the sweeps that resumed with simulation work left to do
    /// (fully warm sweeps re-register silently — their points resolve from
    /// the store without executing anything).
    pub fn resume(&self) -> Vec<String> {
        let mut resumed = Vec::new();
        for m in manifest::load_all(&self.cfg.results_dir) {
            // Done-ness across a restart lives on disk, not in memory: a
            // point is finished iff its cache entry exists.
            let unfinished = m
                .request
                .jobs()
                .iter()
                .filter(|j| !self.cache.entry_path_for_hash(j.cache_hash()).exists())
                .count();
            let receipt = match self.submit(m.request.clone()) {
                Ok(r) => r,
                Err(e) => {
                    eprintln!("warning: cannot resume {}: {e}", m.id);
                    continue;
                }
            };
            if receipt.id != m.id {
                // Keys changed under us (e.g. a CACHE_VERSION bump): the
                // grid resumes under its new identity.
                eprintln!(
                    "warning: manifest {} re-registered as {} (cache keys changed)",
                    m.id, receipt.id
                );
            }
            if unfinished > 0 {
                resumed.push(receipt.id);
            }
        }
        resumed
    }

    /// Submit a grid: register its points (single-flight), persist its
    /// manifest, and enqueue whatever is not already owned. Non-blocking —
    /// poll [`SweepService::sweep_status`] or wait on
    /// [`SweepService::wait_for_sweep`] for completion.
    pub fn submit(&self, request: GridRequest) -> Result<Receipt, String> {
        let jobs = request.jobs();
        if jobs.is_empty() {
            return Err("empty grid".into());
        }
        let id = GridRequest::sweep_id(&jobs);
        let mut to_enqueue: Vec<u64> = Vec::new();
        let receipt = {
            let (lock, _) = &*self.state;
            let mut st = lock.lock().unwrap();
            if st.stopping {
                return Err("service is shutting down".into());
            }
            if st.sweeps.contains_key(&id) {
                let receipt = Self::resubmission_receipt(&st, &id);
                st.shared_submissions += receipt.total as u64;
                return Ok(receipt);
            }
            let mut receipt = Receipt {
                id: id.clone(),
                resubmitted: false,
                total: 0,
                new: 0,
                already_done: 0,
                inflight_shared: 0,
            };
            let mut hashes = Vec::with_capacity(jobs.len());
            for job in &jobs {
                let hash = job.cache_hash();
                if hashes.contains(&hash) {
                    continue; // duplicate point inside one grid
                }
                hashes.push(hash);
                receipt.total += 1;
                match st.points.get(&hash) {
                    Some(entry) => {
                        if entry.status.is_terminal() {
                            receipt.already_done += 1;
                        } else {
                            receipt.inflight_shared += 1;
                        }
                        st.shared_submissions += 1;
                    }
                    None => {
                        st.points.insert(
                            hash,
                            PointEntry {
                                label: job.label(),
                                job: job.clone(),
                                owner: id.clone(),
                                status: PointStatus::Queued,
                            },
                        );
                        receipt.new += 1;
                        to_enqueue.push(hash);
                    }
                }
            }
            st.pending += to_enqueue.len();
            // A grid whose every point is already terminal (e.g. a subset
            // of a completed sweep) enqueues nothing, so `complete` never
            // fires for it — close it out at submission time instead.
            let already_complete = to_enqueue.is_empty()
                && hashes.iter().all(|h| st.points[h].status.is_terminal());
            st.sweeps.insert(
                id.clone(),
                SweepState {
                    hashes,
                    submitted: Instant::now(),
                    done_wall_s: if already_complete { Some(0.0) } else { None },
                },
            );
            receipt
        };
        if let Err(e) = manifest::store(&self.cfg.results_dir, &id, &request, &jobs) {
            // Non-fatal: the sweep still runs, it just won't survive a
            // restart (mirrors the cache's read-only-checkout behaviour).
            eprintln!("warning: manifest write for {id} failed: {e}");
        }
        for hash in to_enqueue {
            self.dispatch(hash);
        }
        Ok(receipt)
    }

    fn resubmission_receipt(st: &State, id: &str) -> Receipt {
        let sweep = &st.sweeps[id];
        let mut receipt = Receipt {
            id: id.to_string(),
            resubmitted: true,
            total: sweep.hashes.len(),
            new: 0,
            already_done: 0,
            inflight_shared: 0,
        };
        for hash in &sweep.hashes {
            if st.points[hash].status.is_terminal() {
                receipt.already_done += 1;
            } else {
                receipt.inflight_shared += 1;
            }
        }
        receipt
    }

    /// Run one registered point on the pool: cache first, simulate on a
    /// miss (budget permitting), store, publish.
    fn dispatch(&self, hash: u64) {
        let state = Arc::clone(&self.state);
        let cache = self.cache.clone();
        let verbose = self.cfg.verbose;
        self.pool.submit(move || {
            let (lock, cvar) = &*state;
            let job = {
                let mut st = lock.lock().unwrap();
                if st.stopping {
                    // Leave the point queued: the manifest resumes it next
                    // session. The task still counts down `pending`.
                    st.pending -= 1;
                    cvar.notify_all();
                    return;
                }
                st.points[&hash].job.clone()
            };

            // Store lookup outside the lock — it reads the filesystem.
            if let Some(hit) = cache.load(&job) {
                let mut st = lock.lock().unwrap();
                st.cache_hits += 1;
                Self::complete(
                    &mut st,
                    hash,
                    PointStatus::Done {
                        cycles: hit.report.cycles,
                        resolution: Resolution::CacheHit,
                    },
                );
                if verbose {
                    eprintln!("  {:<24} cached", job.label());
                }
                cvar.notify_all();
                return;
            }

            {
                let mut st = lock.lock().unwrap();
                if st.stopping {
                    st.pending -= 1;
                    cvar.notify_all();
                    return;
                }
                if let Some(budget) = &mut st.budget_left {
                    if *budget == 0 {
                        // Out of budget: the point stays queued for the
                        // next session.
                        st.pending -= 1;
                        cvar.notify_all();
                        return;
                    }
                    *budget -= 1;
                }
                if let Some(entry) = st.points.get_mut(&hash) {
                    entry.status = PointStatus::Running;
                }
            }

            let outcome = catch_unwind(AssertUnwindSafe(|| job.execute()));
            let mut st = lock.lock().unwrap();
            match outcome {
                Ok(result) => {
                    cache.store(&job, &result);
                    st.executed += 1;
                    Self::complete(
                        &mut st,
                        hash,
                        PointStatus::Done {
                            cycles: result.report.cycles,
                            resolution: Resolution::Executed,
                        },
                    );
                    if verbose {
                        eprintln!("  {:<24} ok ({:.1}s)", job.label(), result.wall_ms / 1e3);
                    }
                }
                Err(p) => {
                    let msg = p
                        .downcast_ref::<&str>()
                        .map(|s| s.to_string())
                        .or_else(|| p.downcast_ref::<String>().cloned())
                        .unwrap_or_else(|| "simulation panicked".into());
                    st.failed += 1;
                    Self::complete(&mut st, hash, PointStatus::Failed(msg.clone()));
                    eprintln!("warning: {} failed: {msg}", job.label());
                }
            }
            cvar.notify_all();
        });
    }

    /// Publish a terminal status for a point and close out any sweep this
    /// completes. Called with the state lock held.
    fn complete(st: &mut State, hash: u64, status: PointStatus) {
        if let Some(entry) = st.points.get_mut(&hash) {
            entry.status = status;
        }
        st.pending -= 1;
        // Close out sweeps whose last point this was. O(sweeps × points),
        // fine at service scale and only on completions.
        let done_sweeps: Vec<(String, f64)> = st
            .sweeps
            .iter()
            .filter(|(_, sw)| sw.done_wall_s.is_none() && sw.hashes.contains(&hash))
            .filter(|(_, sw)| sw.hashes.iter().all(|h| st.points[h].status.is_terminal()))
            .map(|(id, sw)| (id.clone(), sw.submitted.elapsed().as_secs_f64()))
            .collect();
        for (id, wall_s) in done_sweeps {
            if let Some(sw) = st.sweeps.get_mut(&id) {
                sw.done_wall_s = Some(wall_s);
            }
        }
    }

    /// Stop accepting work and stop starting simulations; queued points
    /// stay queued (their manifests resume them next session). Running
    /// simulations finish. Dropping the service calls this implicitly.
    pub fn stop(&self) {
        let (lock, cvar) = &*self.state;
        lock.lock().unwrap().stopping = true;
        cvar.notify_all();
    }

    /// Block until the sweep has no unfinished points, the service stalls
    /// (budget exhausted / stopping), or the timeout elapses. Returns true
    /// iff the sweep completed.
    pub fn wait_for_sweep(&self, id: &str, timeout: Duration) -> bool {
        let deadline = Instant::now() + timeout;
        let (lock, cvar) = &*self.state;
        let mut st = lock.lock().unwrap();
        loop {
            let Some(sweep) = st.sweeps.get(id) else {
                return false;
            };
            if sweep.done_wall_s.is_some() {
                return true;
            }
            if st.pending == 0 {
                return false; // stalled: budget ran out or stopping
            }
            let now = Instant::now();
            if now >= deadline {
                return false;
            }
            let (guard, _) = cvar.wait_timeout(st, deadline - now).unwrap();
            st = guard;
        }
    }

    /// Block until no dispatched work remains (completed or stalled), or
    /// the timeout elapses. Returns true iff the service went idle.
    pub fn wait_idle(&self, timeout: Duration) -> bool {
        let deadline = Instant::now() + timeout;
        let (lock, cvar) = &*self.state;
        let mut st = lock.lock().unwrap();
        while st.pending > 0 {
            let now = Instant::now();
            if now >= deadline {
                return false;
            }
            let (guard, _) = cvar.wait_timeout(st, deadline - now).unwrap();
            st = guard;
        }
        true
    }

    /// Record one served HTTP request for `/metrics` latency accounting.
    pub fn record_endpoint(&self, label: &str, micros: u64) {
        let (lock, _) = &*self.state;
        let mut st = lock.lock().unwrap();
        let lat = st.endpoints.entry(label.to_string()).or_default();
        lat.count += 1;
        lat.total_us += micros;
        lat.max_us = lat.max_us.max(micros);
    }

    /// The status document for one sweep (`GET /sweeps/:id`), or `None`
    /// for an unknown id.
    pub fn sweep_status(&self, id: &str) -> Option<json::Value> {
        let (lock, _) = &*self.state;
        let st = lock.lock().unwrap();
        let sweep = st.sweeps.get(id)?;
        let mut by_status = BTreeMap::<&str, u64>::new();
        let (mut executed, mut cache_hits, mut shared) = (0u64, 0u64, 0u64);
        let mut points = Vec::new();
        for hash in &sweep.hashes {
            let entry = &st.points[hash];
            *by_status.entry(entry.status.name()).or_default() += 1;
            if entry.owner == id {
                if let PointStatus::Done { resolution, .. } = entry.status {
                    match resolution {
                        Resolution::Executed => executed += 1,
                        Resolution::CacheHit => cache_hits += 1,
                    }
                }
            } else {
                shared += 1;
            }
            let mut fields = vec![
                ("label".into(), json::Value::Str(entry.label.clone())),
                ("run".into(), json::Value::Str(format!("{hash:016x}"))),
                (
                    "status".into(),
                    json::Value::Str(entry.status.name().into()),
                ),
            ];
            match &entry.status {
                PointStatus::Done { cycles, .. } => {
                    fields.push(("cycles".into(), json::Value::Int(*cycles)));
                }
                PointStatus::Failed(msg) => {
                    fields.push(("error".into(), json::Value::Str(msg.clone())));
                }
                _ => {}
            }
            points.push(json::Value::Obj(fields));
        }
        let total = sweep.hashes.len() as u64;
        let done = by_status.get("done").copied().unwrap_or(0);
        let failed = by_status.get("failed").copied().unwrap_or(0);
        let complete = sweep.done_wall_s.is_some();
        let wall_s = sweep
            .done_wall_s
            .unwrap_or_else(|| sweep.submitted.elapsed().as_secs_f64());
        let mut fields = vec![
            ("schema".into(), json::Value::Str(SCHEMA.into())),
            ("id".into(), json::Value::Str(id.into())),
            ("complete".into(), json::Value::Bool(complete)),
            ("total".into(), json::Value::Int(total)),
            ("done".into(), json::Value::Int(done)),
            (
                "queued".into(),
                json::Value::Int(by_status.get("queued").copied().unwrap_or(0)),
            ),
            (
                "running".into(),
                json::Value::Int(by_status.get("running").copied().unwrap_or(0)),
            ),
            ("failed".into(), json::Value::Int(failed)),
            ("executed".into(), json::Value::Int(executed)),
            ("cache_hits".into(), json::Value::Int(cache_hits)),
            ("shared".into(), json::Value::Int(shared)),
            ("wall_s".into(), json::Value::Float(wall_s)),
        ];
        if complete && wall_s > 0.0 {
            fields.push((
                "points_per_sec".into(),
                json::Value::Float(total as f64 / wall_s),
            ));
        }
        fields.push(("points".into(), json::Value::Arr(points)));
        Some(json::Value::Obj(fields))
    }

    /// The service overview document (`GET /status`).
    pub fn status(&self) -> json::Value {
        let (lock, _) = &*self.state;
        let st = lock.lock().unwrap();
        let queued = st
            .points
            .values()
            .filter(|p| matches!(p.status, PointStatus::Queued))
            .count() as u64;
        let running = st
            .points
            .values()
            .filter(|p| matches!(p.status, PointStatus::Running))
            .count() as u64;
        let paused = st.budget_left == Some(0) && queued > 0;
        let sweeps = st
            .sweeps
            .iter()
            .map(|(id, sw)| {
                let done = sw
                    .hashes
                    .iter()
                    .filter(|h| st.points[h].status.is_terminal())
                    .count() as u64;
                json::Value::Obj(vec![
                    ("id".into(), json::Value::Str(id.clone())),
                    ("total".into(), json::Value::Int(sw.hashes.len() as u64)),
                    ("done".into(), json::Value::Int(done)),
                    (
                        "complete".into(),
                        json::Value::Bool(sw.done_wall_s.is_some()),
                    ),
                ])
            })
            .collect();
        json::Value::Obj(vec![
            ("schema".into(), json::Value::Str(SCHEMA.into())),
            (
                "uptime_s".into(),
                json::Value::Float(self.started.elapsed().as_secs_f64()),
            ),
            (
                "workers".into(),
                json::Value::Int(self.pool.workers() as u64),
            ),
            (
                "budget_left".into(),
                match st.budget_left {
                    Some(n) => json::Value::Int(n as u64),
                    None => json::Value::Null,
                },
            ),
            ("paused".into(), json::Value::Bool(paused)),
            ("queue_depth".into(), json::Value::Int(queued)),
            ("running".into(), json::Value::Int(running)),
            ("sweeps".into(), json::Value::Arr(sweeps)),
        ])
    }

    /// The service counters document (`GET /metrics`): queue depth,
    /// in-flight, cache hit rate, points/sec, per-endpoint latency.
    pub fn metrics(&self) -> json::Value {
        let (lock, _) = &*self.state;
        let st = lock.lock().unwrap();
        let queued = st
            .points
            .values()
            .filter(|p| matches!(p.status, PointStatus::Queued))
            .count() as u64;
        let running = st
            .points
            .values()
            .filter(|p| matches!(p.status, PointStatus::Running))
            .count() as u64;
        let resolved = st.executed + st.cache_hits;
        let hit_rate = if resolved > 0 {
            st.cache_hits as f64 / resolved as f64
        } else {
            0.0
        };
        let uptime = self.started.elapsed().as_secs_f64();
        let endpoints = st
            .endpoints
            .iter()
            .map(|(label, lat)| {
                (
                    label.clone(),
                    json::Value::Obj(vec![
                        ("count".into(), json::Value::Int(lat.count)),
                        ("total_us".into(), json::Value::Int(lat.total_us)),
                        ("max_us".into(), json::Value::Int(lat.max_us)),
                        (
                            "mean_us".into(),
                            json::Value::Float(if lat.count > 0 {
                                lat.total_us as f64 / lat.count as f64
                            } else {
                                0.0
                            }),
                        ),
                    ]),
                )
            })
            .collect();
        json::Value::Obj(vec![
            ("schema".into(), json::Value::Str(SCHEMA.into())),
            ("uptime_s".into(), json::Value::Float(uptime)),
            ("queue_depth".into(), json::Value::Int(queued)),
            ("in_flight".into(), json::Value::Int(running)),
            ("executed".into(), json::Value::Int(st.executed)),
            ("cache_hits".into(), json::Value::Int(st.cache_hits)),
            (
                "shared_submissions".into(),
                json::Value::Int(st.shared_submissions),
            ),
            ("failed".into(), json::Value::Int(st.failed)),
            ("cache_hit_rate".into(), json::Value::Float(hit_rate)),
            (
                "points_per_sec".into(),
                json::Value::Float(if uptime > 0.0 {
                    resolved as f64 / uptime
                } else {
                    0.0
                }),
            ),
            ("endpoints".into(), json::Value::Obj(endpoints)),
        ])
    }

    /// (executed, cache_hits, shared_submissions, failed) session counters
    /// — the accounting the tests assert single-flight semantics with.
    pub fn counters(&self) -> (u64, u64, u64, u64) {
        let (lock, _) = &*self.state;
        let st = lock.lock().unwrap();
        (st.executed, st.cache_hits, st.shared_submissions, st.failed)
    }
}

impl Drop for SweepService {
    fn drop(&mut self) {
        // Stop starting new simulations; the pool's own Drop then joins
        // the workers (queued tasks see `stopping` and return instantly).
        self.stop();
    }
}

//! A minimal JSON value, writer, and parser.
//!
//! The build environment is offline, so the harness cannot depend on serde;
//! this module implements the small subset of JSON the artifact schema
//! needs. Objects keep insertion order, which makes serialized artifacts
//! deterministic — the determinism test compares them byte for byte.

use std::fmt::Write as _;

/// A JSON value. Integers are kept separate from floats so 64-bit counters
/// round-trip exactly (an `f64` mantissa would silently truncate them).
#[derive(Debug, Clone, PartialEq)]
pub enum Value {
    /// `null`.
    Null,
    /// `true` / `false`.
    Bool(bool),
    /// A non-negative integer (all harness counters are `u64`).
    Int(u64),
    /// Any other number.
    Float(f64),
    /// A string.
    Str(String),
    /// An array.
    Arr(Vec<Value>),
    /// An object, in insertion order.
    Obj(Vec<(String, Value)>),
}

impl Value {
    /// Object field lookup (first match).
    pub fn get(&self, key: &str) -> Option<&Value> {
        match self {
            Value::Obj(fields) => fields.iter().find(|(k, _)| k == key).map(|(_, v)| v),
            _ => None,
        }
    }

    /// The value as `u64` (exact integers only).
    pub fn as_u64(&self) -> Option<u64> {
        match self {
            Value::Int(n) => Some(*n),
            _ => None,
        }
    }

    /// The value as `f64` (integers widen).
    pub fn as_f64(&self) -> Option<f64> {
        match self {
            Value::Int(n) => Some(*n as f64),
            Value::Float(x) => Some(*x),
            _ => None,
        }
    }

    /// The value as `&str`.
    pub fn as_str(&self) -> Option<&str> {
        match self {
            Value::Str(s) => Some(s),
            _ => None,
        }
    }

    /// The value as `bool`.
    pub fn as_bool(&self) -> Option<bool> {
        match self {
            Value::Bool(b) => Some(*b),
            _ => None,
        }
    }

    /// The array's items.
    pub fn as_arr(&self) -> Option<&[Value]> {
        match self {
            Value::Arr(items) => Some(items),
            _ => None,
        }
    }

    /// The value as an object's fields.
    pub fn as_obj(&self) -> Option<&[(String, Value)]> {
        match self {
            Value::Obj(fields) => Some(fields),
            _ => None,
        }
    }

    /// Compact one-line serialization (JSONL-safe: no raw newlines).
    pub fn to_json(&self) -> String {
        let mut out = String::new();
        self.write(&mut out);
        out
    }

    fn write(&self, out: &mut String) {
        match self {
            Value::Null => out.push_str("null"),
            Value::Bool(b) => out.push_str(if *b { "true" } else { "false" }),
            Value::Int(n) => {
                let _ = write!(out, "{n}");
            }
            Value::Float(x) => {
                if x.is_finite() {
                    // `{:?}` prints the shortest representation that
                    // round-trips, and always includes a '.' or 'e'.
                    let _ = write!(out, "{x:?}");
                } else {
                    out.push_str("null"); // JSON has no NaN/Inf
                }
            }
            Value::Str(s) => write_str(out, s),
            Value::Arr(items) => {
                out.push('[');
                for (i, v) in items.iter().enumerate() {
                    if i > 0 {
                        out.push(',');
                    }
                    v.write(out);
                }
                out.push(']');
            }
            Value::Obj(fields) => {
                out.push('{');
                for (i, (k, v)) in fields.iter().enumerate() {
                    if i > 0 {
                        out.push(',');
                    }
                    write_str(out, k);
                    out.push(':');
                    v.write(out);
                }
                out.push('}');
            }
        }
    }
}

fn write_str(out: &mut String, s: &str) {
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => {
                let _ = write!(out, "\\u{:04x}", c as u32);
            }
            c => out.push(c),
        }
    }
    out.push('"');
}

/// Validate `value` against a minimal JSON-Schema subset: `type`,
/// `required`, `properties`, `items`, `const`, `minItems`, `enum`, the
/// numeric bounds `minimum`/`maximum`, and draft-07 `if`/`then`/`else`
/// conditionals — enough to pin artifact shapes (the checked-in
/// `schemas/*.schema.json`) without an external schema library.
/// Appends one message per violation to `errors`, with `at` as the
/// JSONPath-style location prefix (pass `"$"` at the root). Shared by
/// `perf --check-bench`, `sweepctl check-bench`, and `sweepctl check-log`.
pub fn validate(value: &Value, schema: &Value, at: &str, errors: &mut Vec<String>) {
    // `if`/`then`/`else`: the conditional branch's violations are real
    // errors; the `if` subschema itself only selects which branch applies
    // (its probe errors are discarded, per draft-07).
    if let Some(cond) = schema.get("if") {
        let mut probe = Vec::new();
        validate(value, cond, at, &mut probe);
        let branch = if probe.is_empty() {
            schema.get("then")
        } else {
            schema.get("else")
        };
        if let Some(branch) = branch {
            validate(value, branch, at, errors);
        }
    }
    if let Some(expected) = schema.get("const") {
        let matches = match (expected, value) {
            (Value::Str(a), Value::Str(b)) => a == b,
            _ => match (expected.as_f64(), value.as_f64()) {
                (Some(a), Some(b)) => a == b,
                _ => false,
            },
        };
        if !matches {
            errors.push(format!("{at}: expected const {expected:?}"));
        }
    }
    if let Some(allowed) = schema.get("enum").and_then(Value::as_arr) {
        let matches = allowed.iter().any(|e| match (e, value) {
            (Value::Str(a), Value::Str(b)) => a == b,
            _ => match (e.as_f64(), value.as_f64()) {
                (Some(a), Some(b)) => a == b,
                _ => false,
            },
        });
        if !matches {
            errors.push(format!("{at}: value not in enum"));
        }
    }
    if let Some(v) = value.as_f64() {
        if let Some(min) = schema.get("minimum").and_then(Value::as_f64) {
            if v < min {
                errors.push(format!("{at}: {v} below minimum {min}"));
            }
        }
        if let Some(max) = schema.get("maximum").and_then(Value::as_f64) {
            if v > max {
                errors.push(format!("{at}: {v} above maximum {max}"));
            }
        }
    }
    if let Some(t) = schema.get("type").and_then(Value::as_str) {
        let ok = match t {
            "object" => value.as_obj().is_some(),
            "array" => value.as_arr().is_some(),
            "string" => value.as_str().is_some(),
            "number" => value.as_f64().is_some(),
            "integer" => value.as_u64().is_some(),
            "boolean" => value.as_bool().is_some(),
            _ => true,
        };
        if !ok {
            errors.push(format!("{at}: expected type {t}"));
            return;
        }
    }
    if let Some(obj) = value.as_obj() {
        if let Some(required) = schema.get("required").and_then(Value::as_arr) {
            for name in required.iter().filter_map(Value::as_str) {
                if !obj.iter().any(|(k, _)| k == name) {
                    errors.push(format!("{at}: missing required field {name:?}"));
                }
            }
        }
        if let Some(props) = schema.get("properties").and_then(Value::as_obj) {
            for (name, sub) in props {
                if let Some((_, v)) = obj.iter().find(|(k, _)| k == name) {
                    validate(v, sub, &format!("{at}.{name}"), errors);
                }
            }
        }
    }
    if let Some(arr) = value.as_arr() {
        if let Some(min) = schema.get("minItems").and_then(Value::as_u64) {
            if (arr.len() as u64) < min {
                errors.push(format!(
                    "{at}: expected at least {min} items, got {}",
                    arr.len()
                ));
            }
        }
        if let Some(items) = schema.get("items") {
            for (i, v) in arr.iter().enumerate() {
                validate(v, items, &format!("{at}[{i}]"), errors);
            }
        }
    }
}

/// Parse one JSON document. Trailing whitespace is allowed; trailing
/// content is an error.
pub fn parse(text: &str) -> Result<Value, String> {
    let mut p = Parser {
        bytes: text.as_bytes(),
        pos: 0,
    };
    p.skip_ws();
    let v = p.value()?;
    p.skip_ws();
    if p.pos != p.bytes.len() {
        return Err(format!("trailing content at byte {}", p.pos));
    }
    Ok(v)
}

struct Parser<'a> {
    bytes: &'a [u8],
    pos: usize,
}

impl Parser<'_> {
    fn skip_ws(&mut self) {
        while matches!(self.bytes.get(self.pos), Some(b' ' | b'\t' | b'\n' | b'\r')) {
            self.pos += 1;
        }
    }

    fn peek(&self) -> Option<u8> {
        self.bytes.get(self.pos).copied()
    }

    fn expect(&mut self, b: u8) -> Result<(), String> {
        if self.peek() == Some(b) {
            self.pos += 1;
            Ok(())
        } else {
            Err(format!(
                "expected '{}' at byte {}, found {:?}",
                b as char,
                self.pos,
                self.peek().map(|c| c as char)
            ))
        }
    }

    fn literal(&mut self, word: &str, v: Value) -> Result<Value, String> {
        if self.bytes[self.pos..].starts_with(word.as_bytes()) {
            self.pos += word.len();
            Ok(v)
        } else {
            Err(format!("bad literal at byte {}", self.pos))
        }
    }

    fn value(&mut self) -> Result<Value, String> {
        match self.peek() {
            Some(b'n') => self.literal("null", Value::Null),
            Some(b't') => self.literal("true", Value::Bool(true)),
            Some(b'f') => self.literal("false", Value::Bool(false)),
            Some(b'"') => Ok(Value::Str(self.string()?)),
            Some(b'[') => self.array(),
            Some(b'{') => self.object(),
            Some(c) if c == b'-' || c.is_ascii_digit() => self.number(),
            other => Err(format!(
                "unexpected {:?} at byte {}",
                other.map(|c| c as char),
                self.pos
            )),
        }
    }

    fn array(&mut self) -> Result<Value, String> {
        self.expect(b'[')?;
        let mut items = Vec::new();
        self.skip_ws();
        if self.peek() == Some(b']') {
            self.pos += 1;
            return Ok(Value::Arr(items));
        }
        loop {
            self.skip_ws();
            items.push(self.value()?);
            self.skip_ws();
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b']') => {
                    self.pos += 1;
                    return Ok(Value::Arr(items));
                }
                _ => return Err(format!("expected ',' or ']' at byte {}", self.pos)),
            }
        }
    }

    fn object(&mut self) -> Result<Value, String> {
        self.expect(b'{')?;
        let mut fields = Vec::new();
        self.skip_ws();
        if self.peek() == Some(b'}') {
            self.pos += 1;
            return Ok(Value::Obj(fields));
        }
        loop {
            self.skip_ws();
            let key = self.string()?;
            self.skip_ws();
            self.expect(b':')?;
            self.skip_ws();
            let val = self.value()?;
            fields.push((key, val));
            self.skip_ws();
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b'}') => {
                    self.pos += 1;
                    return Ok(Value::Obj(fields));
                }
                _ => return Err(format!("expected ',' or '}}' at byte {}", self.pos)),
            }
        }
    }

    fn string(&mut self) -> Result<String, String> {
        self.expect(b'"')?;
        let mut s = String::new();
        loop {
            match self.peek() {
                None => return Err("unterminated string".into()),
                Some(b'"') => {
                    self.pos += 1;
                    return Ok(s);
                }
                Some(b'\\') => {
                    self.pos += 1;
                    match self.peek() {
                        Some(b'"') => s.push('"'),
                        Some(b'\\') => s.push('\\'),
                        Some(b'/') => s.push('/'),
                        Some(b'b') => s.push('\u{8}'),
                        Some(b'f') => s.push('\u{c}'),
                        Some(b'n') => s.push('\n'),
                        Some(b'r') => s.push('\r'),
                        Some(b't') => s.push('\t'),
                        Some(b'u') => {
                            let hex = self
                                .bytes
                                .get(self.pos + 1..self.pos + 5)
                                .ok_or("truncated \\u escape")?;
                            let code = u32::from_str_radix(
                                std::str::from_utf8(hex).map_err(|_| "bad \\u escape")?,
                                16,
                            )
                            .map_err(|e| format!("bad \\u escape: {e}"))?;
                            // Surrogates are not paired: artifacts never
                            // contain them, so map to the replacement char.
                            s.push(char::from_u32(code).unwrap_or('\u{fffd}'));
                            self.pos += 4;
                        }
                        other => {
                            return Err(format!("bad escape {:?}", other.map(|c| c as char)));
                        }
                    }
                    self.pos += 1;
                }
                Some(b) if b < 0x80 => {
                    s.push(b as char);
                    self.pos += 1;
                }
                Some(b) => {
                    // Consume one multi-byte UTF-8 scalar. Decoding only
                    // the scalar's own bytes keeps string parsing O(n) —
                    // validating the whole remaining input per character
                    // is quadratic and never finishes on megabyte traces.
                    let len = match b {
                        0xc0..=0xdf => 2,
                        0xe0..=0xef => 3,
                        _ => 4,
                    };
                    let chunk = self
                        .bytes
                        .get(self.pos..self.pos + len)
                        .ok_or("invalid utf-8")?;
                    let c = std::str::from_utf8(chunk)
                        .map_err(|_| "invalid utf-8")?
                        .chars()
                        .next()
                        .unwrap();
                    s.push(c);
                    self.pos += len;
                }
            }
        }
    }

    fn number(&mut self) -> Result<Value, String> {
        let start = self.pos;
        if self.peek() == Some(b'-') {
            self.pos += 1;
        }
        let mut float = false;
        while let Some(c) = self.peek() {
            match c {
                b'0'..=b'9' => self.pos += 1,
                b'.' | b'e' | b'E' | b'+' | b'-' => {
                    float = true;
                    self.pos += 1;
                }
                _ => break,
            }
        }
        let text = std::str::from_utf8(&self.bytes[start..self.pos]).unwrap();
        if !float {
            if let Ok(n) = text.parse::<u64>() {
                return Ok(Value::Int(n));
            }
        }
        text.parse::<f64>()
            .map(Value::Float)
            .map_err(|e| format!("bad number {text:?}: {e}"))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn roundtrip_object() {
        let v = Value::Obj(vec![
            ("a".into(), Value::Int(u64::MAX)),
            ("b".into(), Value::Float(1.5)),
            ("c".into(), Value::Str("x\"\\\n\u{1}é".into())),
            (
                "d".into(),
                Value::Arr(vec![Value::Null, Value::Bool(true), Value::Int(0)]),
            ),
            ("e".into(), Value::Obj(vec![])),
        ]);
        let text = v.to_json();
        assert!(!text.contains('\n'), "JSONL lines must be newline-free");
        assert_eq!(parse(&text).unwrap(), v);
    }

    #[test]
    fn u64_counters_are_exact() {
        let big = (1u64 << 63) + 12345;
        let text = Value::Int(big).to_json();
        assert_eq!(parse(&text).unwrap().as_u64(), Some(big));
    }

    #[test]
    fn parses_whitespace_and_nesting() {
        let v = parse(" { \"x\" : [ 1 , 2.5 , { \"y\" : null } ] } ").unwrap();
        assert_eq!(v.get("x").unwrap().as_obj(), None);
        let Value::Arr(items) = v.get("x").unwrap() else {
            panic!("not an array");
        };
        assert_eq!(items[0].as_u64(), Some(1));
        assert_eq!(items[1].as_f64(), Some(2.5));
        assert_eq!(items[2].get("y"), Some(&Value::Null));
    }

    #[test]
    fn rejects_garbage() {
        for bad in ["", "{", "[1,", "\"abc", "{\"a\" 1}", "12 34", "nul", "+5"] {
            assert!(parse(bad).is_err(), "{bad:?} should not parse");
        }
    }

    #[test]
    fn validate_checks_shape_and_reports_paths() {
        let schema = parse(
            r#"{"type":"object","required":["schema","runs"],
                "properties":{
                  "schema":{"type":"string","const":"x/v1"},
                  "runs":{"type":"array","minItems":2,
                          "items":{"type":"object","required":["n"],
                                   "properties":{"n":{"type":"integer"}}}}}}"#,
        )
        .unwrap();
        let good = parse(r#"{"schema":"x/v1","runs":[{"n":1},{"n":2}]}"#).unwrap();
        let mut errors = Vec::new();
        validate(&good, &schema, "$", &mut errors);
        assert!(errors.is_empty(), "{errors:?}");

        let bad = parse(r#"{"schema":"x/v2","runs":[{"n":"one"}]}"#).unwrap();
        let mut errors = Vec::new();
        validate(&bad, &schema, "$", &mut errors);
        assert!(
            errors.iter().any(|e| e.starts_with("$.schema")),
            "{errors:?}"
        );
        assert!(
            errors.iter().any(|e| e.contains("at least 2")),
            "{errors:?}"
        );
        assert!(
            errors.iter().any(|e| e.starts_with("$.runs[0].n")),
            "{errors:?}"
        );
    }

    #[test]
    fn validate_checks_bounds_and_enums() {
        let schema = parse(
            r#"{"type":"object","properties":{
                  "ratio":{"type":"number","minimum":0.97,"maximum":2.0},
                  "level":{"type":"string","enum":["warn","info"]}}}"#,
        )
        .unwrap();
        let mut errors = Vec::new();
        validate(
            &parse(r#"{"ratio":1.0,"level":"info"}"#).unwrap(),
            &schema,
            "$",
            &mut errors,
        );
        assert!(errors.is_empty(), "{errors:?}");
        validate(
            &parse(r#"{"ratio":0.5,"level":"loud"}"#).unwrap(),
            &schema,
            "$",
            &mut errors,
        );
        assert!(
            errors.iter().any(|e| e.contains("below minimum")),
            "{errors:?}"
        );
        assert!(
            errors.iter().any(|e| e.contains("not in enum")),
            "{errors:?}"
        );
        errors.clear();
        validate(
            &parse("3.5").unwrap(),
            &parse(r#"{"maximum":2}"#).unwrap(),
            "$",
            &mut errors,
        );
        assert_eq!(errors.len(), 1, "{errors:?}");
    }

    #[test]
    fn validate_applies_conditional_branches() {
        // The shape BENCH_pr10.json uses: the 4-thread speedup floor only
        // binds on hosts with enough cores to express parallelism.
        let schema = parse(
            r#"{"type":"object",
                "if":{"properties":{"host_cpus":{"minimum":4}}},
                "then":{"properties":{"speedup_4t":{"minimum":1.5}}},
                "else":{"properties":{"speedup_4t":{"minimum":0.0}}}}"#,
        )
        .unwrap();
        let cases = [
            (r#"{"host_cpus":8,"speedup_4t":2.1}"#, true),
            (r#"{"host_cpus":8,"speedup_4t":1.2}"#, false),
            (r#"{"host_cpus":1,"speedup_4t":0.8}"#, true),
            (r#"{"host_cpus":1,"speedup_4t":-0.5}"#, false),
        ];
        for (text, ok) in cases {
            let mut errors = Vec::new();
            validate(&parse(text).unwrap(), &schema, "$", &mut errors);
            assert_eq!(errors.is_empty(), ok, "{text}: {errors:?}");
        }
    }

    #[test]
    fn float_roundtrip_shortest() {
        let x = 0.798_123_456_f64;
        let text = Value::Float(x).to_json();
        assert_eq!(parse(&text).unwrap().as_f64(), Some(x));
    }
}

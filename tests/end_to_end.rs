//! Cross-crate integration tests: assemble → analyze → decouple → simulate
//! under every design, checking functional equivalence and the paper's
//! qualitative claims on a small GPU.

use dac_gpu::affine::{decouple, AffineAnalysis};
use dac_gpu::baselines::{Cae, CaeConfig, Mta, MtaConfig};
use dac_gpu::dac::{Dac, DacConfig};
use dac_gpu::ir::{asm, Kernel, LaunchConfig, Program};
use dac_gpu::mem::{MemConfig, SparseMemory};
use dac_gpu::sim::{GpuConfig, GpuSim};

fn small_gpu() -> GpuSim {
    GpuSim::new(GpuConfig::test_small())
}

fn small_gpu_with_pbuf() -> GpuSim {
    GpuSim::new(GpuConfig {
        mem: MemConfig::gtx480_with_prefetch_buffer(),
        ..GpuConfig::test_small()
    })
}

/// Run `kernel` under all four designs and assert the output region is
/// bit-identical; returns (baseline cycles, dac cycles, dac stats).
fn race_all_designs(
    kernel: &Kernel,
    launch: &LaunchConfig,
    init: impl Fn(&mut SparseMemory),
    out: (u64, usize),
) -> (u64, u64, dac_gpu::sim::SimStats) {
    let program = Program::new(kernel.clone(), launch.clone()).unwrap();
    let mut mem_base = SparseMemory::new();
    init(&mut mem_base);
    let base = small_gpu().run(&program, &mut mem_base);
    let golden = mem_base.read_u32_vec(out.0, out.1);

    let mut mem_cae = SparseMemory::new();
    init(&mut mem_cae);
    let mut cae = Cae::new(CaeConfig::default());
    small_gpu().run_with(&program, &mut mem_cae, &mut cae);
    assert_eq!(mem_cae.read_u32_vec(out.0, out.1), golden, "CAE diverged");

    let mut mem_mta = SparseMemory::new();
    init(&mut mem_mta);
    let mut mta = Mta::new(MtaConfig::default());
    small_gpu_with_pbuf().run_with(&program, &mut mem_mta, &mut mta);
    assert_eq!(mem_mta.read_u32_vec(out.0, out.1), golden, "MTA diverged");

    let analysis = AffineAnalysis::run(kernel);
    let dk = decouple(kernel, &analysis);
    let dac_prog = Program::new(dk.non_affine.clone(), launch.clone()).unwrap();
    let mut dac = Dac::new(DacConfig::paper(), dk);
    let mut mem_dac = SparseMemory::new();
    init(&mut mem_dac);
    let rep = small_gpu().run_with(&dac_prog, &mut mem_dac, &mut dac);
    assert_eq!(mem_dac.read_u32_vec(out.0, out.1), golden, "DAC diverged");

    (base.cycles, rep.cycles, rep.stats)
}

#[test]
fn paper_figure4_kernel_all_designs_agree() {
    let kernel = asm::parse_kernel(
        r#"
.kernel example
.params 4
    mul r0, %ctaid.x, %ntid.x;
    add r1, r0, %tid.x;
    shl r2, r1, 2;
    add r3, %p0, r2;
    add r4, %p1, r2;
    mov r5, 0;
LOOP:
    ld.global r6, [r3];
    add r7, r6, 1;
    st.global [r4], r7;
    add r5, r5, 1;
    mul r8, %p3, 4;
    add r3, r8, r3;
    add r4, r8, r4;
    setp.ne p0, %p2, r5;
    @p0 bra LOOP;
    exit;
"#,
    )
    .unwrap();
    let (dim, num) = (6u64, 512u64);
    let launch = LaunchConfig::linear(4, 128, vec![0x10_0000, 0x80_0000, dim, num]);
    let n = (dim * num) as usize;
    let (base, dac, stats) = race_all_designs(
        &kernel,
        &launch,
        |m| m.write_u32_slice(0x10_0000, &(0..n as u32).collect::<Vec<_>>()),
        (0x80_0000, n),
    );
    assert!(dac < base, "DAC {dac} !< baseline {base}");
    assert!(stats.decoupled_load_fraction() > 0.9);
    // §5.3: DAC executes fewer warp instructions; the affine stream is a
    // small share of the total.
    assert!(stats.affine_instruction_fraction() < 0.5);
}

#[test]
fn mod_addressed_kernel_is_decoupled_and_correct() {
    let kernel = asm::parse_kernel(
        r#"
.kernel modk
.params 3
    mul r0, %ctaid.x, %ntid.x;
    add r1, r0, %tid.x;
    add r2, r1, 397;
    rem r3, r2, %p2;
    shl r4, r3, 2;
    add r5, %p0, r4;
    ld.global r6, [r5];
    shl r7, r1, 2;
    add r8, %p1, r7;
    st.global [r8], r6;
    exit;
"#,
    )
    .unwrap();
    let n = 512u64;
    let launch = LaunchConfig::linear(4, 128, vec![0x10_0000, 0x80_0000, n]);
    let analysis = AffineAnalysis::run(&kernel);
    assert!(
        analysis
            .candidates
            .iter()
            .any(|c| c.kind == dac_gpu::affine::CandidateKind::LoadData),
        "mod-typed address must be a candidate (§4.4)"
    );
    let (_, _, stats) = race_all_designs(
        &kernel,
        &launch,
        |m| m.write_u32_slice(0x10_0000, &(0..n as u32).map(|i| i * 7).collect::<Vec<_>>()),
        (0x80_0000, n as usize),
    );
    assert!(stats.decoupled_loads > 0);
}

#[test]
fn divergent_boundary_kernel_all_designs_agree() {
    let kernel = asm::parse_kernel(
        r#"
.kernel bound
.params 3
    mul r0, %ctaid.x, %ntid.x;
    add r1, r0, %tid.x;
    setp.ge p0, r1, %p2;
    @p0 bra DONE;
    shl r2, r1, 2;
    add r3, %p0, r2;
    ld.global r4, [r3];
    add r5, r4, 100;
    add r6, %p1, r2;
    st.global [r6], r5;
DONE:
    exit;
"#,
    )
    .unwrap();
    let bound = 300u64; // not warp-aligned: real intra-warp divergence
    let launch = LaunchConfig::linear(4, 128, vec![0x10_0000, 0x80_0000, bound]);
    let (_, _, stats) = race_all_designs(
        &kernel,
        &launch,
        |m| m.write_u32_slice(0x10_0000, &vec![5u32; 512]),
        (0x80_0000, 512),
    );
    assert!(stats.decoupled_loads > 0, "boundary kernel should decouple");
}

#[test]
fn barrier_kernel_all_designs_agree() {
    // Shared-memory neighbour exchange with a barrier, then a decoupled
    // streaming store (exercises the AEU's barrier-epoch gating, §4.2).
    let kernel = asm::parse_kernel(
        r#"
.kernel barrier
.params 2
    mul r0, %ctaid.x, %ntid.x;
    add r1, r0, %tid.x;
    shl r2, r1, 2;
    add r3, %p0, r2;
    ld.global r4, [r3];
    shl r5, %tid.x, 2;
    st.shared [r5], r4;
    bar.sync;
    add r6, %tid.x, 1;
    rem r7, r6, 128;
    shl r8, r7, 2;
    ld.shared r9, [r8];
    add r10, %p1, r2;
    st.global [r10], r9;
    exit;
"#,
    )
    .unwrap();
    let mut kernel = kernel;
    kernel.shared_bytes = 128 * 4;
    let launch = LaunchConfig::linear(4, 128, vec![0x10_0000, 0x80_0000]);
    let n = 512usize;
    let (_, _, _stats) = race_all_designs(
        &kernel,
        &launch,
        |m| m.write_u32_slice(0x10_0000, &(0..n as u32).collect::<Vec<_>>()),
        (0x80_0000, n),
    );
}

#[test]
fn indirect_kernel_is_untouched_but_correct() {
    // Pointer-chasing: nothing decoupleable; DAC must degrade gracefully.
    let kernel = asm::parse_kernel(
        r#"
.kernel chase
.params 2
    mul r0, %ctaid.x, %ntid.x;
    add r1, r0, %tid.x;
    shl r2, r1, 2;
    add r3, %p0, r2;
    ld.global r4, [r3];
    shl r5, r4, 2;
    add r6, %p0, r5;
    ld.global r7, [r6];
    add r8, %p1, r2;
    st.global [r8], r7;
    exit;
"#,
    )
    .unwrap();
    let n = 256u32;
    let launch = LaunchConfig::linear(2, 128, vec![0x10_0000, 0x80_0000]);
    let (_, _, stats) = race_all_designs(
        &kernel,
        &launch,
        |m| {
            let idx: Vec<u32> = (0..n).map(|i| (i * 37 + 5) % n).collect();
            m.write_u32_slice(0x10_0000, &idx);
        },
        (0x80_0000, n as usize),
    );
    // The second load is indirect — only the first decouples.
    assert!(stats.decoupled_load_fraction() <= 0.51);
}

#[test]
fn whole_suite_smoke_at_tiny_scale() {
    // Every one of the 29 benchmarks runs baseline + DAC on the small GPU
    // with identical outputs. (The full-GPU versions run in the harness.)
    for w in dac_gpu::workloads::all_benchmarks(1) {
        let gpu = small_gpu();
        let base = {
            let mut m = w.fresh_memory();
            let r = gpu.run(&w.program(), &mut m);
            (m, r)
        };
        let analysis = AffineAnalysis::run(&w.kernel);
        let dk = decouple(&w.kernel, &analysis);
        let prog = Program::new(dk.non_affine.clone(), w.launch.clone()).unwrap();
        let mut dac = Dac::new(DacConfig::paper(), dk);
        let mut m2 = w.fresh_memory();
        gpu.run_with(&prog, &mut m2, &mut dac);
        assert_eq!(
            base.0.read_u32_vec(w.output.0, w.output.1),
            m2.read_u32_vec(w.output.0, w.output.1),
            "{}: DAC output mismatch",
            w.abbr
        );
    }
}

#[test]
fn dac_is_deterministic() {
    let w = dac_gpu::workloads::benchmark("LIB", 1).unwrap();
    let analysis = AffineAnalysis::run(&w.kernel);
    let run = |gpu: &GpuSim| {
        let dk = decouple(&w.kernel, &analysis);
        let prog = Program::new(dk.non_affine.clone(), w.launch.clone()).unwrap();
        let mut dac = Dac::new(DacConfig::paper(), dk);
        let mut m = w.fresh_memory();
        gpu.run_with(&prog, &mut m, &mut dac).cycles
    };
    let gpu = small_gpu();
    assert_eq!(run(&gpu), run(&gpu));
}

//! Deterministic bottleneck reports: one markdown document and one JSON
//! document comparing designs side by side per workload.
//!
//! Everything here is derived from counters and online aggregates — no
//! wall-clock values — so report bytes are identical across runs and
//! machines (pinned by a golden test).

use crate::cpi::CpiStack;
use crate::hist::Histogram;
use crate::sink::{ProfileSink, CLIENT_NAMES};
use simt_mem::MemStats;
use simt_sim::{SimReport, SimStats};
use std::fmt::Write as _;

/// Schema identifier for the JSON report.
pub const SCHEMA: &str = "dac-profile/v1";

/// The profile of one (workload, design) run.
#[derive(Debug, Clone)]
pub struct DesignProfile {
    /// Design name ("baseline", "cae", "mta", "dac").
    pub design: String,
    /// Total cycles.
    pub cycles: u64,
    /// Core counters.
    pub stats: SimStats,
    /// Memory counters.
    pub mem: MemStats,
    /// The top-down issue-slot stack.
    pub cpi: CpiStack,
    /// Online event aggregates (histograms, per-client tallies).
    pub sink: ProfileSink,
}

impl DesignProfile {
    /// Build a profile from a finished run and its profiling sink.
    pub fn new(design: &str, report: &SimReport, sink: ProfileSink) -> Self {
        DesignProfile {
            design: design.to_string(),
            cycles: report.cycles,
            stats: report.stats.clone(),
            mem: report.mem.clone(),
            cpi: CpiStack::from_stats(&report.stats),
            sink,
        }
    }

    /// Warp instructions simulated (both streams).
    pub fn total_instructions(&self) -> u64 {
        self.stats.total_instructions()
    }
}

/// One workload profiled across several designs.
#[derive(Debug, Clone)]
pub struct WorkloadProfile {
    /// Benchmark abbreviation (e.g. "BFS").
    pub bench: String,
    /// Scale factor the workload ran at.
    pub scale: u32,
    /// Per-design profiles, in run order (baseline first by convention).
    pub designs: Vec<DesignProfile>,
}

impl WorkloadProfile {
    fn baseline(&self) -> Option<&DesignProfile> {
        self.designs.iter().find(|d| d.design == "baseline")
    }

    fn design(&self, name: &str) -> Option<&DesignProfile> {
        self.designs.iter().find(|d| d.design == name)
    }

    /// Issue slots lost to memory back-pressure: scoreboard hazards plus
    /// the DAC dequeue buckets (the cycles §5 of the paper says DAC
    /// converts into run-ahead).
    fn stall_slots(d: &DesignProfile) -> u64 {
        d.cpi.get("scoreboard") + d.cpi.get("deq_empty") + d.cpi.get("deq_data")
    }

    /// Human-readable one-line findings for this workload (deterministic).
    pub fn headlines(&self) -> Vec<String> {
        let mut out = Vec::new();
        let Some(base) = self.baseline() else {
            return out;
        };
        for d in &self.designs {
            if d.design != "baseline" {
                out.push(format!(
                    "{} runs {} in {} cycles, {} over baseline",
                    d.design,
                    self.bench,
                    d.cycles,
                    fmt_speedup(base.cycles as f64 / d.cycles as f64),
                ));
            }
        }
        if let Some(dac) = self.design("dac") {
            let before = Self::stall_slots(base);
            let after = Self::stall_slots(dac);
            if before > 0 {
                let delta = 100.0 * (after as f64 - before as f64) / before as f64;
                let verb = if after <= before { "removes" } else { "adds" };
                out.push(format!(
                    "dac {verb} {:.1}% of baseline scoreboard + dequeue stall \
                     slots on {} ({} -> {})",
                    delta.abs(),
                    self.bench,
                    before,
                    after
                ));
            }
        }
        if let Some(mta) = self.design("mta") {
            let hits = mta.sink.l2_hits[2];
            let total = hits + mta.sink.l2_misses[2];
            if total > 0 {
                out.push(format!(
                    "mta prefetches hit L2 {:.1}% of the time on {} ({} of {})",
                    100.0 * hits as f64 / total as f64,
                    self.bench,
                    hits,
                    total
                ));
            }
        }
        out
    }
}

fn fmt_speedup(x: f64) -> String {
    format!("{x:.2}x")
}

fn hist_cell(h: &Histogram) -> String {
    if h.count() == 0 {
        "-".to_string()
    } else {
        format!("{}/{}/{} (n={})", h.p50(), h.p90(), h.p99(), h.count())
    }
}

fn pct(x: f64) -> String {
    format!("{:.1}%", 100.0 * x)
}

/// Render the markdown bottleneck report.
pub fn markdown(profiles: &[WorkloadProfile]) -> String {
    let mut out = String::new();
    out.push_str("# Bottleneck report\n\n");
    out.push_str(
        "Top-down issue-slot accounting: every scheduler issue slot of every \
         cycle is attributed to exactly one bucket (the buckets sum to \
         `cycles x schedulers x SMs`, checked by the simulator). Histogram \
         cells are `p50/p90/p99 (n=samples)` in cycles or entries.\n",
    );
    for wp in profiles {
        let _ = writeln!(out, "\n## {} (scale {})\n", wp.bench, wp.scale);
        let names: Vec<&str> = wp.designs.iter().map(|d| d.design.as_str()).collect();

        // CPI stack table: one row per bucket, one column per design.
        out.push_str("### Issue-slot CPI stack (% of all slots)\n\n");
        let _ = writeln!(out, "| bucket | {} |", names.join(" | "));
        let _ = writeln!(out, "|---|{}", "---|".repeat(names.len()));
        let buckets: Vec<&'static str> = wp.designs[0]
            .cpi
            .buckets()
            .iter()
            .map(|&(n, _)| n)
            .collect();
        for b in buckets {
            let cells: Vec<String> = wp.designs.iter().map(|d| pct(d.cpi.fraction(b))).collect();
            let _ = writeln!(out, "| {b} | {} |", cells.join(" | "));
        }
        let totals: Vec<String> = wp
            .designs
            .iter()
            .map(|d| d.cpi.total().to_string())
            .collect();
        let _ = writeln!(out, "| total slots | {} |", totals.join(" | "));
        let cycles: Vec<String> = wp.designs.iter().map(|d| d.cycles.to_string()).collect();
        let _ = writeln!(out, "| cycles | {} |", cycles.join(" | "));
        let ipcs: Vec<String> = wp
            .designs
            .iter()
            .map(|d| format!("{:.3}", d.stats.ipc()))
            .collect();
        let _ = writeln!(out, "| ipc | {} |", ipcs.join(" | "));

        // Memory metrics.
        out.push_str("\n### Memory\n\n");
        let _ = writeln!(out, "| metric | {} |", names.join(" | "));
        let _ = writeln!(out, "|---|{}", "---|".repeat(names.len()));
        type MetricRow = (&'static str, Box<dyn Fn(&DesignProfile) -> String>);
        let rows: [MetricRow; 9] = [
            ("L1 hit rate", Box::new(|d| pct(d.mem.l1_hit_rate()))),
            ("L2 hit rate", Box::new(|d| pct(d.mem.l2_hit_rate()))),
            (
                "DRAM row-buffer hit rate",
                Box::new(|d| pct(d.mem.row_hit_rate())),
            ),
            (
                "miss latency (lsu)",
                Box::new(|d| hist_cell(&d.sink.miss_latency[0])),
            ),
            (
                "miss latency (dac)",
                Box::new(|d| hist_cell(&d.sink.miss_latency[1])),
            ),
            (
                "coalesced txns per access",
                Box::new(|d| hist_cell(&d.sink.coalesce_txns)),
            ),
            ("ATQ occupancy", Box::new(|d| hist_cell(&d.sink.atq))),
            ("PWAQ occupancy", Box::new(|d| hist_cell(&d.sink.pwaq))),
            ("PWPQ occupancy", Box::new(|d| hist_cell(&d.sink.pwpq))),
        ];
        for (label, cell) in &rows {
            let cells: Vec<String> = wp.designs.iter().map(cell).collect();
            let _ = writeln!(out, "| {label} | {} |", cells.join(" | "));
        }

        let heads = wp.headlines();
        if !heads.is_empty() {
            out.push_str("\n### Headlines\n\n");
            for h in heads {
                let _ = writeln!(out, "- {h}");
            }
        }
    }
    out
}

fn esc(s: &str) -> String {
    s.replace('\\', "\\\\").replace('"', "\\\"")
}

fn hist_json(h: &Histogram) -> String {
    format!(
        "{{\"count\": {}, \"mean\": {:.4}, \"min\": {}, \"max\": {}, \
         \"p50\": {}, \"p90\": {}, \"p99\": {}}}",
        h.count(),
        h.mean(),
        h.min(),
        h.max(),
        h.p50(),
        h.p90(),
        h.p99()
    )
}

/// Render the JSON bottleneck report (`dac-profile/v1`).
pub fn json(profiles: &[WorkloadProfile]) -> String {
    let mut out = String::new();
    let _ = write!(out, "{{\"schema\": \"{SCHEMA}\", \"workloads\": [");
    for (wi, wp) in profiles.iter().enumerate() {
        if wi > 0 {
            out.push_str(", ");
        }
        let _ = write!(
            out,
            "{{\"bench\": \"{}\", \"scale\": {}, \"designs\": [",
            esc(&wp.bench),
            wp.scale
        );
        let base_cycles = wp.baseline().map(|b| b.cycles);
        for (di, d) in wp.designs.iter().enumerate() {
            if di > 0 {
                out.push_str(", ");
            }
            let _ = write!(
                out,
                "{{\"design\": \"{}\", \"cycles\": {}, \"warp_instructions\": {}, \
                 \"total_instructions\": {}, \"ipc\": {:.4}",
                esc(&d.design),
                d.cycles,
                d.stats.warp_instructions,
                d.total_instructions(),
                d.stats.ipc()
            );
            if let Some(bc) = base_cycles {
                let _ = write!(
                    out,
                    ", \"speedup_over_baseline\": {:.4}",
                    bc as f64 / d.cycles as f64
                );
            }
            out.push_str(", \"cpi_stack\": {");
            for (i, (name, v)) in d.cpi.buckets().iter().enumerate() {
                if i > 0 {
                    out.push_str(", ");
                }
                let _ = write!(out, "\"{name}\": {v}");
            }
            out.push_str("}, \"cpi_fractions\": {");
            for (i, (name, _)) in d.cpi.buckets().iter().enumerate() {
                if i > 0 {
                    out.push_str(", ");
                }
                let _ = write!(out, "\"{name}\": {:.4}", d.cpi.fraction(name));
            }
            let _ = write!(
                out,
                "}}, \"l1_hit_rate\": {:.4}, \"l2_hit_rate\": {:.4}, \
                 \"dram_row_hit_rate\": {:.4}",
                d.mem.l1_hit_rate(),
                d.mem.l2_hit_rate(),
                d.mem.row_hit_rate()
            );
            out.push_str(", \"miss_latency\": {");
            for (c, name) in CLIENT_NAMES.iter().enumerate() {
                if c > 0 {
                    out.push_str(", ");
                }
                let _ = write!(out, "\"{name}\": {}", hist_json(&d.sink.miss_latency[c]));
            }
            out.push_str("}, \"l2_client_hit_rates\": {");
            for (c, name) in CLIENT_NAMES.iter().enumerate() {
                if c > 0 {
                    out.push_str(", ");
                }
                let _ = write!(out, "\"{name}\": {:.4}", d.sink.l2_hit_rate(c));
            }
            let _ = write!(
                out,
                "}}, \"coalesce_txns\": {}, \"queues\": {{\"atq\": {}, \"pwaq\": {}, \
                 \"pwpq\": {}, \"runahead\": {}}}}}",
                hist_json(&d.sink.coalesce_txns),
                hist_json(&d.sink.atq),
                hist_json(&d.sink.pwaq),
                hist_json(&d.sink.pwpq),
                hist_json(&d.sink.runahead)
            );
        }
        out.push_str("], \"headlines\": [");
        for (i, h) in wp.headlines().iter().enumerate() {
            if i > 0 {
                out.push_str(", ");
            }
            let _ = write!(out, "\"{}\"", esc(h));
        }
        out.push_str("]}");
    }
    out.push_str("]}\n");
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    fn profile(design: &str, cycles: u64) -> DesignProfile {
        let stats = SimStats {
            cycles,
            warp_instructions: 100,
            slot_issued: 100,
            slot_scoreboard: 60,
            slot_idle: 40,
            ..Default::default()
        };
        let report = SimReport {
            kernel: "k".into(),
            coproc: design.into(),
            cycles,
            stats,
            mem: MemStats {
                l1_hits: 3,
                l1_misses: 1,
                ..Default::default()
            },
        };
        DesignProfile::new(design, &report, ProfileSink::new(30))
    }

    #[test]
    fn markdown_and_json_are_deterministic_and_balanced() {
        let wp = WorkloadProfile {
            bench: "BFS".into(),
            scale: 1,
            designs: vec![profile("baseline", 200), profile("dac", 100)],
        };
        let md1 = markdown(std::slice::from_ref(&wp));
        let md2 = markdown(std::slice::from_ref(&wp));
        assert_eq!(md1, md2);
        assert!(md1.contains("## BFS (scale 1)"));
        assert!(md1.contains("| scoreboard |"));
        assert!(md1.contains("L1 hit rate"));

        let j1 = json(std::slice::from_ref(&wp));
        let j2 = json(std::slice::from_ref(&wp));
        assert_eq!(j1, j2);
        assert_eq!(j1.matches('{').count(), j1.matches('}').count());
        assert_eq!(j1.matches('[').count(), j1.matches(']').count());
        assert!(j1.contains("\"schema\": \"dac-profile/v1\""));
        assert!(j1.contains("\"speedup_over_baseline\": 2.0000"));
    }

    #[test]
    fn headlines_quantify_dac_stall_removal() {
        let wp = WorkloadProfile {
            bench: "BFS".into(),
            scale: 1,
            designs: vec![profile("baseline", 200), profile("dac", 100)],
        };
        let heads = wp.headlines();
        assert!(heads.iter().any(|h| h.contains("2.00x")));
        assert!(heads.iter().any(|h| h.contains("stall slots")));
    }
}

//! The intra-run parallelism guarantee: `--threads N` produces
//! byte-identical artifacts to the serial simulator, for every N. The
//! worker pool shards SMs and L2 partitions across threads with
//! barrier-separated phases (see `simt_sim::par` and DESIGN.md
//! "Intra-run parallelism"); these tests pin that the sharding is an
//! optimization, never an approximation, across the whole behaviour
//! surface: the full 29-workload suite, every multi-kernel scenario,
//! and the promoted divergence-stress corpus, under all four designs.
//!
//! `Overrides::threads` is excluded from the serialized artifact
//! precisely because of this guarantee, so runs compare as raw bytes.

use gpu_workloads::{all_benchmarks, all_scenarios, benchmark, divergence_stress};
use simt_harness::{artifact, scenario_jobs, suite_jobs, DesignPoint, Job, Overrides};

/// The standard affordable machine shape for debug-mode CI (the same
/// 2-SM × 16-warp shape the fuzz differentials and stress goldens use).
/// Two SMs and two threads is the smallest genuinely-sharded pool: each
/// worker owns one SM and three of the six L2 partitions.
fn small(threads: Option<usize>) -> Overrides {
    Overrides {
        num_sms: Some(2),
        max_warps_per_sm: Some(16),
        threads,
        ..Overrides::default()
    }
}

/// Execute every job serially (we are testing intra-run threads, not the
/// harness's job pool) and serialize through the artifact schema minus
/// the per-invocation fields — the same byte surface sweeps ship.
fn artifact_bytes(jobs: &[Job]) -> Vec<u8> {
    let mut out = Vec::new();
    for job in jobs {
        let result = job.execute();
        out.extend_from_slice(
            artifact::to_json(job, &result, None, None)
                .to_json()
                .as_bytes(),
        );
        out.push(b'\n');
    }
    out
}

/// All 29 benchmarks under all four designs: a 2-shard run must produce
/// byte-identical artifacts (cycles, every counter, memory stats, energy,
/// output digest) to the serial path.
#[test]
fn threaded_suite_is_byte_identical_to_serial() {
    let jobs = |t| suite_jobs(all_benchmarks(1), 1, &DesignPoint::HW_ALL, &small(t));
    let serial = jobs(None);
    assert_eq!(serial.len(), 116, "29 benchmarks x 4 designs");
    let bytes = artifact_bytes(&serial);
    assert_eq!(
        bytes,
        artifact_bytes(&jobs(Some(2))),
        "--threads 2 changed an artifact somewhere in the suite"
    );
}

/// Four-way sharding needs at least four SMs (the pool clamps to
/// `num_sms`), so this runs corner-of-the-suite workloads on a 4-SM
/// machine: serial, 2 shards, 4 shards, and an over-provisioned pool
/// (64 threads, clamped to 4) must all agree byte-for-byte.
#[test]
fn four_way_sharding_is_byte_identical_to_serial() {
    let jobs = |t: Option<usize>| {
        let overrides = Overrides {
            num_sms: Some(4),
            ..small(t)
        };
        suite_jobs(
            ["LIB", "MQ", "ST", "BFS"]
                .iter()
                .map(|a| benchmark(a, 1).expect("known benchmark"))
                .collect(),
            1,
            &DesignPoint::HW_ALL,
            &overrides,
        )
    };
    let bytes = artifact_bytes(&jobs(None));
    for threads in [2, 4, 64] {
        assert_eq!(
            bytes,
            artifact_bytes(&jobs(Some(threads))),
            "--threads {threads} changed an artifact on the 4-SM machine"
        );
    }
}

/// The three multi-kernel stream scenarios: concurrent kernels share the
/// fabric and the command processor rebinds SMs mid-run, so per-kernel
/// attribution bins and dispatch ordering must survive sharding.
#[test]
fn threaded_scenarios_are_byte_identical_to_serial() {
    let jobs = |t| scenario_jobs(all_scenarios(1), 1, &DesignPoint::HW_ALL, &small(t));
    let serial = jobs(None);
    assert_eq!(serial.len(), 12, "3 scenarios x 4 designs");
    let bytes = artifact_bytes(&serial);
    assert_eq!(
        bytes,
        artifact_bytes(&jobs(Some(2))),
        "--threads 2 changed a multi-kernel scenario artifact"
    );
}

/// The promoted divergence-stress corpus: fuzzer-discovered control-flow
/// patterns that historically exposed reconvergence and replay bugs.
#[test]
fn threaded_stress_corpus_is_byte_identical_to_serial() {
    let jobs = |t| suite_jobs(divergence_stress(), 1, &DesignPoint::HW_ALL, &small(t));
    let bytes = artifact_bytes(&jobs(None));
    assert_eq!(
        bytes,
        artifact_bytes(&jobs(Some(2))),
        "--threads 2 changed a stress-corpus artifact"
    );
}

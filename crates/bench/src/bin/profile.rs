//! Cross-design bottleneck profiling.
//!
//! Runs each selected benchmark under each selected design with a
//! [`simt_profile::ProfileSink`] attached, then emits:
//!
//! * `report.md` + `profile.json` — the deterministic bottleneck report
//!   (top-down CPI stacks, hit rates, latency/occupancy percentiles, and
//!   headline comparisons). Byte-identical across runs and machines.
//! * `BENCH_pr3.json` — wall-clock simulation-throughput record
//!   (warp-instructions/sec, cycles/sec per run). Machine-dependent by
//!   nature, so it is kept out of the report files.
//!
//! `--debug DESIGN` replaces the old `debug_dac` / `debug_mta` /
//! `trace_loop` binaries: a per-benchmark diagnostic dump comparing one
//! design against the baseline. `--check-bench FILE` validates a
//! `BENCH_pr3.json` against the checked-in schema (used by CI).

use dac_bench::cli::{CommonArgs, COMMON_USAGE};
use simt_harness::{json, DesignPoint, Job};
use simt_profile::{report, DesignProfile, ProfileSink, WorkloadProfile};
use std::path::{Path, PathBuf};
use std::sync::Arc;

const USAGE: &str = "\
usage: profile [options]
       profile --debug DESIGN [options]
       profile --check-bench FILE

Runs every selected benchmark (default: BFS,LIB,MQ,SPV) under every
selected design (default: baseline,cae,mta,dac) with the profiling sink
attached, and writes a deterministic bottleneck report (report.md +
profile.json) to --out (default results/profile) plus a wall-clock
throughput record to --bench-json (default BENCH_pr3.json). Profiled runs
always simulate; the result cache is not consulted.

profile options:
  --debug DESIGN     print a per-benchmark diagnostic dump comparing
                     DESIGN against baseline, instead of writing reports
  --bench-json FILE  where to write the throughput record
  --check-bench FILE validate FILE against schemas/bench_pr3.schema.json
                     and exit (0 = valid)";

/// The default profiling suite: two memory-intensive benchmarks where DAC's
/// dequeue story shows (BFS irregular, LIB streaming), one compute-intensive
/// control (MQ), and one sparse workload exercising the coalescer (SPV).
const DEFAULT_BENCHES: &str = "BFS,LIB,MQ,SPV";

fn usage_exit(error: &str) -> ! {
    if error == "help" {
        println!("{USAGE}\n\n{COMMON_USAGE}");
        std::process::exit(0);
    }
    eprintln!("profile: {error}\n\n{USAGE}\n\n{COMMON_USAGE}");
    std::process::exit(2);
}

fn main() {
    simt_obs::log::init_from_env();
    let raw: Vec<String> = std::env::args().skip(1).collect();

    // Strip profile-only flags before handing the rest to CommonArgs.
    let mut debug: Option<String> = None;
    let mut bench_json = PathBuf::from("BENCH_pr3.json");
    let mut check_bench: Option<PathBuf> = None;
    let mut rest: Vec<String> = Vec::new();
    let mut it = raw.into_iter();
    while let Some(arg) = it.next() {
        match arg.as_str() {
            "--debug" => match it.next() {
                Some(v) => debug = Some(v),
                None => usage_exit("--debug requires a design name"),
            },
            "--bench-json" => match it.next() {
                Some(v) => bench_json = PathBuf::from(v),
                None => usage_exit("--bench-json requires a path"),
            },
            "--check-bench" => match it.next() {
                Some(v) => check_bench = Some(PathBuf::from(v)),
                None => usage_exit("--check-bench requires a path"),
            },
            _ => rest.push(arg),
        }
    }
    let mut args = CommonArgs::parse(&rest).unwrap_or_else(|e| usage_exit(&e));
    if let Some(stray) = args.positional.first() {
        usage_exit(&format!("unexpected argument {stray:?}"));
    }

    if let Some(path) = check_bench {
        std::process::exit(check_bench_file(&path));
    }

    if args.bench_filter.is_none() {
        args.bench_filter = Some(DEFAULT_BENCHES.split(',').map(|s| s.to_string()).collect());
    }
    let benches = args.benchmarks().unwrap_or_else(|e| usage_exit(&e));
    let points: Vec<DesignPoint> = args
        .designs
        .clone()
        .unwrap_or_else(|| DesignPoint::HW_ALL.to_vec());

    if let Some(design) = debug {
        let point = DesignPoint::parse(&design)
            .unwrap_or_else(|| usage_exit(&format!("--debug: unknown design {design:?}")));
        run_debug(&args, &benches, point);
        return;
    }

    run_profile(&args, benches, &points, &bench_json);
}

/// One profiled execution: the job runs with a fresh [`ProfileSink`]
/// attached (never cached — the sink's aggregates come from the live event
/// stream) and reports its wall time.
fn profiled_run(args: &CommonArgs, abbr: &str, point: DesignPoint) -> (DesignProfile, f64) {
    let workload = gpu_workloads::benchmark(abbr, args.scale)
        .unwrap_or_else(|| usage_exit(&format!("unknown benchmark {abbr:?}")));
    let mut job = Job::new(Arc::new(workload), args.scale, point);
    job.overrides = args.overrides.clone();
    let cfg = job.overrides.apply_gpu(gpu_workloads::gpu_for(match point {
        DesignPoint::Hw(d) => d,
        DesignPoint::PerfectMem => gpu_workloads::Design::Baseline,
    }));
    let cutoff = cfg.mem.l1_hit_latency.max(cfg.mem.prefetch_buffer_latency);
    let mut sink = ProfileSink::new(cutoff);
    let result = job.execute_traced(&mut sink);
    let wall_s = result.wall_ms / 1e3;
    (
        DesignProfile::new(point.name(), &result.report, sink),
        wall_s,
    )
}

fn run_profile(
    args: &CommonArgs,
    benches: Vec<gpu_workloads::Workload>,
    points: &[DesignPoint],
    bench_json: &Path,
) {
    let out_dir = args
        .out
        .clone()
        .unwrap_or_else(|| PathBuf::from("results/profile"));
    eprintln!(
        "profile: {} benchmarks x {} designs (scale {})",
        benches.len(),
        points.len(),
        args.scale
    );

    let mut workloads: Vec<WorkloadProfile> = Vec::new();
    // (bench, design, cycles, warp_instructions, wall_s) per run.
    let mut timings: Vec<(String, String, u64, u64, f64)> = Vec::new();
    for w in &benches {
        let mut designs = Vec::new();
        for &point in points {
            if !args.quiet {
                eprintln!("  {}/{} ...", w.abbr, point.name());
            }
            let (profile, wall_s) = profiled_run(args, w.abbr, point);
            timings.push((
                w.abbr.to_string(),
                point.name().to_string(),
                profile.cycles,
                profile.stats.warp_instructions,
                wall_s,
            ));
            designs.push(profile);
        }
        workloads.push(WorkloadProfile {
            bench: w.abbr.to_string(),
            scale: args.scale,
            designs,
        });
    }

    if let Err(e) = std::fs::create_dir_all(&out_dir) {
        eprintln!("profile: cannot create {}: {e}", out_dir.display());
        std::process::exit(1);
    }
    let md_path = out_dir.join("report.md");
    let json_path = out_dir.join("profile.json");
    let md = report::markdown(&workloads);
    let js = report::json(&workloads);
    // The JSON report must round-trip through the project parser.
    if let Err(e) = json::parse(&js) {
        panic!("profile.json is invalid JSON: {e}");
    }
    for (path, text) in [(&md_path, &md), (&json_path, &js)] {
        if let Err(e) = std::fs::write(path, text) {
            eprintln!("profile: cannot write {}: {e}", path.display());
            std::process::exit(1);
        }
    }

    // Print the headline findings to stdout as well.
    for wp in &workloads {
        for h in wp.headlines() {
            println!("{}: {h}", wp.bench);
        }
    }

    let bench_text = bench_pr3_json(args, &timings);
    if let Err(e) = json::parse(&bench_text) {
        panic!("BENCH_pr3.json is invalid JSON: {e}");
    }
    if let Err(e) = std::fs::write(bench_json, &bench_text) {
        eprintln!("profile: cannot write {}: {e}", bench_json.display());
        std::process::exit(1);
    }
    println!(
        "profile: report -> {} / {}, throughput -> {}",
        md_path.display(),
        json_path.display(),
        bench_json.display()
    );
}

/// Render the `BENCH_pr3.json` throughput record: wall-clock simulation
/// speed per run. Deliberately separate from the report — these numbers
/// depend on the machine.
fn bench_pr3_json(args: &CommonArgs, timings: &[(String, String, u64, u64, f64)]) -> String {
    use std::fmt::Write as _;
    let mut out = String::from("{\"schema\": \"dac-bench-pr3/v1\"");
    let _ = write!(out, ", \"scale\": {}", args.scale);
    out.push_str(", \"overrides\": {");
    let mut first = true;
    for (k, v) in args
        .overrides
        .relevant(DesignPoint::Hw(gpu_workloads::Design::Dac))
    {
        if !first {
            out.push_str(", ");
        }
        first = false;
        let _ = write!(out, "\"{k}\": {v}");
    }
    out.push_str("}, \"runs\": [");
    let mut total_wall = 0.0;
    let mut total_instr = 0u64;
    for (i, (bench, design, cycles, instrs, wall_s)) in timings.iter().enumerate() {
        if i > 0 {
            out.push_str(", ");
        }
        total_wall += wall_s;
        total_instr += instrs;
        let rate = |n: u64| {
            if *wall_s > 0.0 {
                n as f64 / wall_s
            } else {
                0.0
            }
        };
        let _ = write!(
            out,
            "{{\"bench\": \"{bench}\", \"design\": \"{design}\", \"cycles\": {cycles}, \
             \"warp_instructions\": {instrs}, \"wall_s\": {wall_s:.4}, \
             \"warp_instr_per_sec\": {:.1}, \"cycles_per_sec\": {:.1}}}",
            rate(*instrs),
            rate(*cycles)
        );
    }
    let _ = writeln!(
        out,
        "], \"totals\": {{\"runs\": {}, \"wall_s\": {:.4}, \"warp_instr_per_sec\": {:.1}}}}}",
        timings.len(),
        total_wall,
        if total_wall > 0.0 {
            total_instr as f64 / total_wall
        } else {
            0.0
        }
    );
    out
}

/// `--debug DESIGN`: per-benchmark diagnostic dump against baseline
/// (subsumes the old `debug_dac` / `debug_mta` binaries).
fn run_debug(args: &CommonArgs, benches: &[gpu_workloads::Workload], point: DesignPoint) {
    for w in benches {
        let (base, _) = profiled_run(args, w.abbr, DesignPoint::parse("baseline").unwrap());
        let (d, _) = profiled_run(args, w.abbr, point);
        println!("== {} ==", w.abbr);
        println!(
            "cycles: base {} {} {} speedup {:.3}",
            base.cycles,
            d.design,
            d.cycles,
            base.cycles as f64 / d.cycles as f64
        );
        println!(
            "warp instrs: base {} {} {} (+affine {})",
            base.stats.warp_instructions,
            d.design,
            d.stats.warp_instructions,
            d.stats.affine_instructions
        );
        println!(
            "loads: {} decoupled {} ({:.1}%); prefetches issued {}",
            d.stats.global_loads,
            d.stats.decoupled_loads,
            100.0 * d.stats.decoupled_load_fraction(),
            d.stats.prefetches_issued
        );
        println!(
            "dac queues: aeu {} peu {} enq_full {} deq_empty {} deq_data {}",
            d.stats.aeu_records,
            d.stats.peu_records,
            d.stats.enq_full_stalls,
            d.stats.deq_empty_stalls,
            d.stats.deq_data_stalls
        );
        println!(
            "mem: L1 base {:.2} {} {:.2} | L2 base {:.2} {} {:.2} | row base {:.2} {} {:.2}",
            base.mem.l1_hit_rate(),
            d.design,
            d.mem.l1_hit_rate(),
            base.mem.l2_hit_rate(),
            d.design,
            d.mem.l2_hit_rate(),
            base.mem.row_hit_rate(),
            d.design,
            d.mem.row_hit_rate()
        );
        println!(
            "mta buffer: pbuf_hits {} pbuf_fills {} unused_evictions {} redundant {}",
            d.mem.pbuf_hits,
            d.mem.pbuf_fills,
            d.mem.pbuf_unused_evictions,
            d.mem.redundant_prefetches
        );
        for p in [&base, &d] {
            let cells: Vec<String> = p
                .cpi
                .buckets()
                .iter()
                .filter(|&&(_, v)| v > 0)
                .map(|&(n, _)| format!("{n} {:.1}%", 100.0 * p.cpi.fraction(n)))
                .collect();
            println!("cpi stack ({}): {}", p.design, cells.join(", "));
        }
    }
}

/// `--check-bench FILE`: validate a throughput record against the
/// checked-in schema (`schemas/bench_pr3.schema.json`). Returns the
/// process exit code.
fn check_bench_file(path: &Path) -> i32 {
    let schema_path = Path::new("schemas/bench_pr3.schema.json");
    let schema_text = match std::fs::read_to_string(schema_path) {
        Ok(t) => t,
        Err(e) => {
            eprintln!("profile: cannot read {}: {e}", schema_path.display());
            return 2;
        }
    };
    let schema = match json::parse(&schema_text) {
        Ok(v) => v,
        Err(e) => {
            eprintln!("profile: schema is invalid JSON: {e}");
            return 2;
        }
    };
    let text = match std::fs::read_to_string(path) {
        Ok(t) => t,
        Err(e) => {
            eprintln!("profile: cannot read {}: {e}", path.display());
            return 2;
        }
    };
    let value = match json::parse(&text) {
        Ok(v) => v,
        Err(e) => {
            eprintln!("profile: {} is invalid JSON: {e}", path.display());
            return 1;
        }
    };
    let mut errors = Vec::new();
    validate(&value, &schema, "$", &mut errors);
    if errors.is_empty() {
        println!("profile: {} conforms to dac-bench-pr3/v1", path.display());
        0
    } else {
        for e in &errors {
            eprintln!("profile: {e}");
        }
        eprintln!(
            "profile: {} FAILED validation ({} errors)",
            path.display(),
            errors.len()
        );
        1
    }
}

/// Minimal JSON-Schema-subset validator: `type`, `required`, `properties`,
/// `items`, `const`, `minItems`. Enough to pin the artifact shape without
/// an external schema library.
fn validate(value: &json::Value, schema: &json::Value, at: &str, errors: &mut Vec<String>) {
    use json::Value;
    if let Some(expected) = schema.get("const") {
        let matches = match (expected, value) {
            (Value::Str(a), Value::Str(b)) => a == b,
            _ => false,
        };
        if !matches {
            errors.push(format!("{at}: expected const {expected:?}"));
        }
    }
    if let Some(t) = schema.get("type").and_then(Value::as_str) {
        let ok = match t {
            "object" => value.as_obj().is_some(),
            "array" => value.as_arr().is_some(),
            "string" => value.as_str().is_some(),
            "number" => value.as_f64().is_some(),
            "integer" => value.as_u64().is_some(),
            "boolean" => value.as_bool().is_some(),
            _ => true,
        };
        if !ok {
            errors.push(format!("{at}: expected type {t}"));
            return;
        }
    }
    if let Some(obj) = value.as_obj() {
        if let Some(required) = schema.get("required").and_then(Value::as_arr) {
            for name in required.iter().filter_map(Value::as_str) {
                if !obj.iter().any(|(k, _)| k == name) {
                    errors.push(format!("{at}: missing required field {name:?}"));
                }
            }
        }
        if let Some(props) = schema.get("properties").and_then(Value::as_obj) {
            for (name, sub) in props {
                if let Some((_, v)) = obj.iter().find(|(k, _)| k == name) {
                    validate(v, sub, &format!("{at}.{name}"), errors);
                }
            }
        }
    }
    if let Some(arr) = value.as_arr() {
        if let Some(min) = schema.get("minItems").and_then(Value::as_u64) {
            if (arr.len() as u64) < min {
                errors.push(format!(
                    "{at}: expected at least {min} items, got {}",
                    arr.len()
                ));
            }
        }
        if let Some(items) = schema.get("items") {
            for (i, v) in arr.iter().enumerate() {
                validate(v, items, &format!("{at}[{i}]"), errors);
            }
        }
    }
}

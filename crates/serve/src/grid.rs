//! Design-space grid requests: the unit of submission to the sweep
//! service.
//!
//! A grid is `workloads × designs × configuration` (plus optional
//! multi-kernel scenarios), exactly the cross product the CLI `sweep`
//! binary runs — but expressed as data so it can arrive over the wire,
//! persist in a manifest, and canonicalize to a stable identity. Every
//! point of a grid lowers to an ordinary harness [`Job`], so its cache
//! key (and therefore its result) is **identical** to what the CLI
//! computes: the daemon and one-shot sweeps share one result store.

use simt_harness::{fnv1a64, json, scenario_jobs, suite_jobs, DesignPoint, Job, Overrides};

/// A parsed, validated grid request.
#[derive(Debug, Clone)]
pub struct GridRequest {
    /// Benchmark abbreviations (Table 2), upper-cased, in request order.
    pub benches: Vec<String>,
    /// Multi-kernel scenario names, lower-cased, in request order.
    pub scenarios: Vec<String>,
    /// Design points to run each workload under.
    pub designs: Vec<DesignPoint>,
    /// Workload scale factor.
    pub scale: u32,
    /// Configuration overrides applied to every point.
    pub overrides: Overrides,
    /// The override knobs exactly as submitted (`key=value` string pairs
    /// accepted by [`Overrides::set`]) — kept so manifests round-trip the
    /// request without a reverse serializer for every knob.
    pub override_pairs: Vec<(String, String)>,
}

impl GridRequest {
    /// Parse a request from its JSON form:
    ///
    /// ```json
    /// {"benches": ["LIB", "MQ"], "designs": ["baseline", "dac"],
    ///  "scale": 1, "overrides": {"num_sms": 2, "max_warps_per_sm": 16},
    ///  "scenarios": ["pipeline"]}
    /// ```
    ///
    /// Every field is optional except that at least one workload (bench or
    /// scenario) must be named; `designs` defaults to the four hardware
    /// designs. Unknown benchmarks, scenarios, designs, and override knobs
    /// are rejected with the list of valid names — a daemon must turn a
    /// bad request into a 400, never into a panic.
    pub fn from_json(v: &json::Value) -> Result<GridRequest, String> {
        if v.as_obj().is_none() {
            return Err("request body must be a JSON object".into());
        }
        let mut req = GridRequest {
            benches: Vec::new(),
            scenarios: Vec::new(),
            designs: DesignPoint::HW_ALL.to_vec(),
            scale: 1,
            overrides: Overrides::default(),
            override_pairs: Vec::new(),
        };
        if let Some(scale) = v.get("scale") {
            req.scale = scale
                .as_u64()
                .filter(|&n| n >= 1)
                .ok_or("scale: expected a positive integer")? as u32;
        }
        if let Some(benches) = v.get("benches") {
            let items = benches.as_arr().ok_or("benches: expected an array")?;
            for b in items {
                let abbr = b
                    .as_str()
                    .ok_or("benches: expected an array of strings")?
                    .to_uppercase();
                if !gpu_workloads::ALL_ABBRS.contains(&abbr.as_str()) {
                    return Err(format!(
                        "benches: unknown benchmark {abbr:?} (expected one of: {})",
                        gpu_workloads::ALL_ABBRS.join(", ")
                    ));
                }
                if !req.benches.contains(&abbr) {
                    req.benches.push(abbr);
                }
            }
        }
        if let Some(scenarios) = v.get("scenarios") {
            let items = scenarios.as_arr().ok_or("scenarios: expected an array")?;
            for s in items {
                let name = s
                    .as_str()
                    .ok_or("scenarios: expected an array of strings")?
                    .to_ascii_lowercase();
                if !gpu_workloads::ALL_SCENARIOS.contains(&name.as_str()) {
                    return Err(format!(
                        "scenarios: unknown scenario {name:?} (expected one of: {})",
                        gpu_workloads::ALL_SCENARIOS.join(", ")
                    ));
                }
                if !req.scenarios.contains(&name) {
                    req.scenarios.push(name);
                }
            }
        }
        if let Some(designs) = v.get("designs") {
            let items = designs.as_arr().ok_or("designs: expected an array")?;
            let mut points = Vec::new();
            for d in items {
                let name = d.as_str().ok_or("designs: expected an array of strings")?;
                let point = DesignPoint::parse(name).ok_or_else(|| {
                    format!(
                        "designs: unknown design {name:?} \
                         (expected baseline, cae, mta, dac, or perfect)"
                    )
                })?;
                if !points.contains(&point) {
                    points.push(point);
                }
            }
            if points.is_empty() {
                return Err("designs: at least one design required".into());
            }
            req.designs = points;
        }
        if let Some(overrides) = v.get("overrides") {
            let fields = overrides.as_obj().ok_or("overrides: expected an object")?;
            for (key, val) in fields {
                let text = match val {
                    json::Value::Bool(b) => b.to_string(),
                    json::Value::Int(n) => n.to_string(),
                    json::Value::Str(s) => s.clone(),
                    other => {
                        return Err(format!(
                            "overrides.{key}: expected a number, boolean, or string, got {other:?}"
                        ))
                    }
                };
                req.set_override(key, &text)?;
            }
        }
        if req.benches.is_empty() && req.scenarios.is_empty() {
            return Err("empty grid: name at least one benchmark or scenario".into());
        }
        Ok(req)
    }

    /// Apply one `key=value` override, routing the `streams` knob into the
    /// scenario list (over the API, scenarios are first-class rather than
    /// a config knob — but CLI-shaped requests still work).
    pub fn set_override(&mut self, key: &str, value: &str) -> Result<(), String> {
        self.overrides.set(key, value)?;
        if key == "streams" {
            let name = self.overrides.streams.take().unwrap_or_default();
            if !self.scenarios.contains(&name) {
                self.scenarios.push(name);
            }
        } else {
            self.override_pairs.push((key.into(), value.into()));
        }
        Ok(())
    }

    /// The grid lowered to harness jobs: benches in request order × designs,
    /// then scenarios × designs — the same deterministic order a serial CLI
    /// sweep would run.
    ///
    /// # Panics
    ///
    /// Never for a request built by [`GridRequest::from_json`] /
    /// [`GridRequest::set_override`], which validate every name.
    pub fn jobs(&self) -> Vec<Job> {
        let benches = self
            .benches
            .iter()
            .map(|abbr| gpu_workloads::benchmark(abbr, self.scale).expect("validated benchmark"))
            .collect();
        let mut jobs = suite_jobs(benches, self.scale, &self.designs, &self.overrides);
        let scenarios = self
            .scenarios
            .iter()
            .map(|name| gpu_workloads::scenario(name, self.scale).expect("validated scenario"))
            .collect::<Vec<_>>();
        jobs.extend(scenario_jobs(
            scenarios,
            self.scale,
            &self.designs,
            &self.overrides,
        ));
        jobs
    }

    /// The grid's content-addressed identity: `sweep-` plus the FNV-1a
    /// hash of its points' **sorted** canonical cache keys. Two requests
    /// naming the same set of points get the same id regardless of
    /// listing order, so a re-submitted grid resumes/joins its prior
    /// sweep instead of spawning a duplicate.
    pub fn sweep_id(jobs: &[Job]) -> String {
        let mut keys: Vec<String> = jobs.iter().map(Job::cache_key).collect();
        keys.sort();
        keys.dedup();
        format!("sweep-{:016x}", fnv1a64(keys.join("\n").as_bytes()))
    }

    /// The request's canonical JSON form (manifests, status endpoints).
    /// Round-trips exactly through [`GridRequest::from_json`].
    pub fn to_json(&self) -> json::Value {
        let strs = |items: &[String]| {
            json::Value::Arr(items.iter().map(|s| json::Value::Str(s.clone())).collect())
        };
        let mut overrides = Vec::new();
        for (k, v) in &self.override_pairs {
            let val = match v.as_str() {
                "true" => json::Value::Bool(true),
                "false" => json::Value::Bool(false),
                _ => match v.parse::<u64>() {
                    Ok(n) => json::Value::Int(n),
                    Err(_) => json::Value::Str(v.clone()),
                },
            };
            overrides.push((k.clone(), val));
        }
        json::Value::Obj(vec![
            ("benches".into(), strs(&self.benches)),
            ("scenarios".into(), strs(&self.scenarios)),
            (
                "designs".into(),
                json::Value::Arr(
                    self.designs
                        .iter()
                        .map(|p| json::Value::Str(p.name().into()))
                        .collect(),
                ),
            ),
            ("scale".into(), json::Value::Int(self.scale as u64)),
            ("overrides".into(), json::Value::Obj(overrides)),
        ])
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn parse(text: &str) -> Result<GridRequest, String> {
        GridRequest::from_json(&json::parse(text).unwrap())
    }

    #[test]
    fn parses_and_lowers_a_small_grid() {
        let req = parse(
            r#"{"benches": ["lib", "MQ"], "designs": ["baseline", "dac"],
                "overrides": {"num_sms": 2, "max_warps_per_sm": 16}}"#,
        )
        .unwrap();
        assert_eq!(req.benches, vec!["LIB", "MQ"]);
        let jobs = req.jobs();
        assert_eq!(jobs.len(), 4);
        assert_eq!(jobs[0].bench(), "LIB");
        assert_eq!(jobs[0].overrides.num_sms, Some(2));
        assert_eq!(jobs[3].bench(), "MQ");
    }

    #[test]
    fn rejects_bad_requests_with_valid_names() {
        let err = parse(r#"{"benches": ["WARP9"]}"#).unwrap_err();
        assert!(err.contains("LIB"), "lists valid names: {err}");
        let err = parse(r#"{"benches": ["LIB"], "designs": ["quantum"]}"#).unwrap_err();
        assert!(err.contains("baseline"), "{err}");
        let err = parse(r#"{"scenarios": ["warp9"]}"#).unwrap_err();
        assert!(err.contains("smem_pressure"), "{err}");
        let err = parse(r#"{"benches": ["LIB"], "overrides": {"warp_speed": 9}}"#).unwrap_err();
        assert!(err.contains("unknown config knob"), "{err}");
        assert!(parse(r#"{}"#).unwrap_err().contains("empty grid"));
        assert!(parse(r#"{"benches": ["LIB"], "scale": 0}"#).is_err());
    }

    #[test]
    fn sweep_id_is_order_independent_and_content_addressed() {
        let a = parse(r#"{"benches": ["LIB", "MQ"], "designs": ["baseline"]}"#).unwrap();
        let b = parse(r#"{"benches": ["MQ", "LIB"], "designs": ["baseline"]}"#).unwrap();
        let c = parse(r#"{"benches": ["LIB", "MQ"], "designs": ["dac"]}"#).unwrap();
        assert_eq!(
            GridRequest::sweep_id(&a.jobs()),
            GridRequest::sweep_id(&b.jobs())
        );
        assert_ne!(
            GridRequest::sweep_id(&a.jobs()),
            GridRequest::sweep_id(&c.jobs())
        );
        assert!(GridRequest::sweep_id(&a.jobs()).starts_with("sweep-"));
    }

    #[test]
    fn request_roundtrips_through_manifest_json() {
        let req = parse(
            r#"{"benches": ["LIB"], "scenarios": ["pipeline"], "designs": ["dac"],
                "scale": 2, "overrides": {"num_sms": 2, "lock_lines": false,
                "cta_policy": "rr"}}"#,
        )
        .unwrap();
        let text = req.to_json().to_json();
        let back = parse(&text).unwrap();
        assert_eq!(back.benches, req.benches);
        assert_eq!(back.scenarios, req.scenarios);
        assert_eq!(back.scale, req.scale);
        assert_eq!(back.overrides, req.overrides);
        let (ja, jb) = (req.jobs(), back.jobs());
        assert_eq!(
            ja.iter().map(Job::cache_key).collect::<Vec<_>>(),
            jb.iter().map(Job::cache_key).collect::<Vec<_>>()
        );
    }

    #[test]
    fn streams_knob_routes_to_scenarios() {
        let req = parse(r#"{"overrides": {"streams": "pipeline"}}"#).unwrap();
        assert_eq!(req.scenarios, vec!["pipeline"]);
        assert!(req.overrides.streams.is_none());
        assert_eq!(req.jobs().len(), 4);
    }
}

//! DAC hardware-mechanism integration tests: barrier-epoch gating of the
//! expansion units (§4.2), divergent affine tuples through real control
//! flow (§4.6), and queue back-pressure under adversarial sizing.

use affine::{decouple, AffineAnalysis};
use dac_core::{Dac, DacConfig};
use simt_ir::{asm, LaunchConfig, Program};
use simt_mem::SparseMemory;
use simt_sim::{GpuConfig, GpuSim};

fn run_both(
    text: &str,
    launch: LaunchConfig,
    init: impl Fn(&mut SparseMemory),
    out: (u64, usize),
    cfg: DacConfig,
) -> (Vec<u32>, Vec<u32>, simt_sim::SimStats, Dac) {
    let kernel = asm::parse_kernel(text).unwrap();
    let gpu = GpuSim::new(GpuConfig::test_small());
    let program = Program::new(kernel.clone(), launch.clone()).unwrap();
    let mut m1 = SparseMemory::new();
    init(&mut m1);
    gpu.run(&program, &mut m1);

    let analysis = AffineAnalysis::run(&kernel);
    let dk = decouple(&kernel, &analysis);
    assert!(dk.any_decoupled, "kernel must decouple");
    let dprog = Program::new(dk.non_affine.clone(), launch).unwrap();
    let mut dac = Dac::new(cfg, dk);
    let mut m2 = SparseMemory::new();
    init(&mut m2);
    let rep = gpu.run_with(&dprog, &mut m2, &mut dac);
    (
        m1.read_u32_vec(out.0, out.1),
        m2.read_u32_vec(out.0, out.1),
        rep.stats,
        dac,
    )
}

/// Producer/consumer across a barrier: thread t writes X[t], barrier, then
/// every thread reads its neighbour's slot and stores it — the decoupled
/// post-barrier loads must not be expanded (and certainly not issued)
/// before the CTA passes the barrier, or they would read stale data.
#[test]
fn barrier_epoch_gates_early_requests() {
    let text = r#"
.kernel prodcons
.params 2
    mul r0, %ctaid.x, %ntid.x;
    add r1, r0, %tid.x;
    shl r2, r1, 2;
    add r3, %p0, r2;
    mul r4, r1, 3;
    st.global [r3], r4;
    bar.sync;
    add r5, %tid.x, 1;
    rem r6, r5, 128;
    add r7, r0, r6;
    shl r8, r7, 2;
    add r9, %p0, r8;
    ld.global r10, [r9];
    add r11, %p1, r2;
    st.global [r11], r10;
    exit;
"#;
    let launch = LaunchConfig::linear(4, 128, vec![0x10_0000, 0x80_0000]);
    let (base, dacv, stats, dac) =
        run_both(text, launch, |_| {}, (0x80_0000, 512), DacConfig::paper());
    assert_eq!(base, dacv, "barrier ordering violated");
    // The neighbour load value is thread-dependent: out[t] = 3*(neighbour).
    assert_eq!(dacv[0], 3);
    assert_eq!(dacv[127], 0, "wraps to tid 0 of the CTA, so 3*0");
    assert!(stats.decoupled_loads > 0, "post-barrier load must decouple");
    assert_eq!(dac.dropped_at_retire, 0);
}

/// Figure 14 (right): a boundary condition selects between two affine
/// tuples for the same register; the expansion unit must pick per thread.
#[test]
fn divergent_affine_tuples_expand_per_thread() {
    let text = r#"
.kernel fig14
.params 3
    mul r0, %ctaid.x, %ntid.x;
    add r1, r0, %tid.x;
    setp.lt p0, r1, %p2;
    mov r2, 0;
    @p0 bra JOIN;
    shl r2, r1, 2;
JOIN:
    add r3, %p0, r2;
    ld.global r4, [r3];
    shl r5, r1, 2;
    add r6, %p1, r5;
    st.global [r6], r4;
    exit;
"#;
    // Threads below 40 read element 0; the rest read element tid.
    let launch = LaunchConfig::linear(2, 64, vec![0x10_0000, 0x80_0000, 40]);
    let input: Vec<u32> = (0..128).map(|i| 1000 + i).collect();
    let (base, dacv, stats, _dac) = run_both(
        text,
        launch,
        |m| m.write_u32_slice(0x10_0000, &input),
        (0x80_0000, 128),
        DacConfig::paper(),
    );
    assert_eq!(base, dacv);
    assert_eq!(dacv[10], 1000, "below-bound thread reads element 0");
    assert_eq!(dacv[77], 1077, "above-bound thread reads its own element");
    assert!(
        stats.decoupled_loads > 0,
        "divergent-tuple load must decouple"
    );
}

/// Adversarial queue sizing: 1-entry everything still completes correctly
/// (back-pressure, not deadlock).
#[test]
fn minimal_queues_never_deadlock() {
    let text = r#"
.kernel tiny
.params 3
    mul r0, %ctaid.x, %ntid.x;
    add r1, r0, %tid.x;
    shl r2, r1, 2;
    add r3, %p0, r2;
    add r4, %p1, r2;
    mov r5, 0;
L:
    ld.global r6, [r3];
    add r7, r6, 2;
    st.global [r4], r7;
    add r3, r3, 2048;
    add r4, r4, 2048;
    add r5, r5, 1;
    setp.lt p0, r5, %p2;
    @p0 bra L;
    exit;
"#;
    let launch = LaunchConfig::linear(4, 128, vec![0x10_0000, 0x80_0000, 4]);
    let cfg = DacConfig {
        atq_entries: 1,
        pwaq_total: 1,
        pwpq_total: 1,
        ..DacConfig::paper()
    };
    let n = 4 * 512;
    let input: Vec<u32> = (0..n as u32).collect();
    let (base, dacv, stats, _d) = run_both(
        text,
        launch,
        |m| m.write_u32_slice(0x10_0000, &input),
        (0x80_0000, n),
        cfg,
    );
    assert_eq!(base, dacv);
    assert!(stats.enq_full_stalls > 0, "1-entry ATQ must back-pressure");
}

/// Disabling line locking (ablation) stays functionally correct even under
/// cache thrash that evicts the early-requested lines.
#[test]
fn no_locking_ablation_is_correct() {
    let text = r#"
.kernel thrash
.params 3
    mul r0, %ctaid.x, %ntid.x;
    add r1, r0, %tid.x;
    mul r2, r1, 49152;
    add r3, %p0, r2;
    ld.global r4, [r3];
    shl r5, r1, 2;
    add r6, %p1, r5;
    st.global [r6], r4;
    exit;
"#;
    // 48 KB-strided loads: every access maps to the same L1 set family and
    // thrashes; without locking the early lines may be evicted before use.
    let launch = LaunchConfig::linear(2, 64, vec![0x10_0000, 0x8000_0000, 0]);
    let cfg = DacConfig {
        lock_lines: false,
        ..DacConfig::paper()
    };
    let (base, dacv, _stats, _d) = run_both(
        text,
        launch,
        |m| {
            for t in 0..128u64 {
                m.write_u32(0x10_0000 + t * 49152, 7000 + t as u32);
            }
        },
        (0x8000_0000, 128),
        cfg,
    );
    assert_eq!(base, dacv);
    assert_eq!(dacv[5], 7005);
}

/// The affine-instruction share stays small (§5.3's "only 4.6%... showing
/// that DAC does not require a dedicated affine functional unit") — our
/// per-CTA model runs higher but must stay well under half.
#[test]
fn affine_stream_is_minor_share() {
    let text = r#"
.kernel share
.params 3
    mul r0, %ctaid.x, %ntid.x;
    add r1, r0, %tid.x;
    shl r2, r1, 2;
    add r3, %p0, r2;
    add r4, %p1, r2;
    mov r5, 0;
L:
    ld.global r6, [r3];
    mul.f32 r7, r6, r6;
    add.f32 r8, r7, r6;
    mul.f32 r9, r8, r8;
    add.f32 r10, r9, r8;
    st.global [r4], r10;
    add r3, r3, 4096;
    add r4, r4, 4096;
    add r5, r5, 1;
    setp.lt p0, r5, %p2;
    @p0 bra L;
    exit;
"#;
    let launch = LaunchConfig::linear(4, 128, vec![0x10_0000, 0x80_0000, 8]);
    let (_b, _d, stats, _) = run_both(
        text,
        launch,
        |m| m.write_u32_slice(0x10_0000, &vec![0x3f80_0000u32; 8 * 1024]),
        (0x80_0000, 512),
        DacConfig::paper(),
    );
    let share = stats.affine_instruction_fraction();
    assert!(share > 0.0 && share < 0.5, "affine share {share}");
}

//! A deterministic, dependency-free FxHash (the Firefox/rustc hash):
//! multiply-and-rotate over machine words. Several times faster than the
//! standard library's SipHash for the small integer keys the hot path uses
//! (cache lines, tokens, DRAM request ids), at the cost of no HashDoS
//! resistance — irrelevant here, since every key is simulator-generated.
//!
//! Determinism note: swapping hashers changes `HashMap` iteration order,
//! so [`FxHashMap`] is reserved for maps that are never iterated (lookup /
//! insert / remove only). That keeps simulation results bit-identical to
//! the SipHash build by construction.

use std::collections::HashMap;
use std::hash::{BuildHasherDefault, Hasher};

/// The multiplier from rustc's FxHasher (64-bit golden-ratio constant).
const SEED: u64 = 0x51_7c_c1_b7_27_22_0a_95;

/// Word-at-a-time multiply-rotate hasher.
#[derive(Default)]
pub struct FxHasher {
    hash: u64,
}

impl FxHasher {
    #[inline]
    fn add(&mut self, word: u64) {
        self.hash = (self.hash.rotate_left(5) ^ word).wrapping_mul(SEED);
    }
}

impl Hasher for FxHasher {
    #[inline]
    fn write(&mut self, bytes: &[u8]) {
        for &b in bytes {
            self.add(b as u64);
        }
    }

    #[inline]
    fn write_u8(&mut self, v: u8) {
        self.add(v as u64);
    }

    #[inline]
    fn write_u16(&mut self, v: u16) {
        self.add(v as u64);
    }

    #[inline]
    fn write_u32(&mut self, v: u32) {
        self.add(v as u64);
    }

    #[inline]
    fn write_u64(&mut self, v: u64) {
        self.add(v);
    }

    #[inline]
    fn write_usize(&mut self, v: usize) {
        self.add(v as u64);
    }

    #[inline]
    fn finish(&self) -> u64 {
        self.hash
    }
}

/// `BuildHasher` for [`FxHasher`] (stateless, so hashes are identical
/// across maps, runs, and machines).
pub type FxBuildHasher = BuildHasherDefault<FxHasher>;

/// A `HashMap` keyed by the deterministic [`FxHasher`].
pub type FxHashMap<K, V> = HashMap<K, V, FxBuildHasher>;

/// A `HashSet` keyed by the deterministic [`FxHasher`]. The same
/// never-iterated rule applies (membership queries only).
pub type FxHashSet<T> = std::collections::HashSet<T, FxBuildHasher>;

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn deterministic_across_instances() {
        let mut a = FxHasher::default();
        let mut b = FxHasher::default();
        a.write_u64(0xdead_beef);
        b.write_u64(0xdead_beef);
        assert_eq!(a.finish(), b.finish());
        assert_ne!(a.finish(), 0);
    }

    #[test]
    fn map_round_trips() {
        let mut m: FxHashMap<u64, u64> = FxHashMap::default();
        for i in 0..1000u64 {
            m.insert(i * 128, i);
        }
        for i in 0..1000u64 {
            assert_eq!(m.get(&(i * 128)), Some(&i));
        }
        assert_eq!(m.remove(&0), Some(0));
        assert_eq!(m.len(), 999);
    }

    #[test]
    fn distinct_keys_rarely_collide() {
        use std::collections::HashSet;
        let mut seen = HashSet::new();
        for i in 0..4096u64 {
            let mut h = FxHasher::default();
            h.write_u64(i * 128);
            seen.insert(h.finish());
        }
        assert_eq!(seen.len(), 4096);
    }
}

//! `gpu-baselines` — the two comparison designs from the paper's
//! evaluation (§5.1.1), both generously provisioned exactly as the paper
//! provisions them:
//!
//! * [`Cae`] — **Compact Affine Execution** after Kim et al. \[13\]: runtime
//!   affine-operand tagging plus *two* affine functional units per SM (one
//!   per scheduler), so affine-eligible warp instructions issue with
//!   initiation interval 1 and leave the SIMT lanes free.
//! * [`Mta`] — **Many-Thread Aware prefetching** after Lee et al. \[15\]:
//!   per-PC inter-warp/intra-warp stride detection, speculative prefetches
//!   into a dedicated 16 KB per-SM prefetch buffer, and eviction-based
//!   throttling.

pub mod cae;
pub mod mta;

pub use cae::{Cae, CaeConfig};
pub use mta::{Mta, MtaConfig};

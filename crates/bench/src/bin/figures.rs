//! Regenerate every table and figure of the paper.
//!
//! ```text
//! figures <experiment> [--scale N] [--bench ABBR[,ABBR...]]
//!
//! experiments:
//!   table1   simulator configuration
//!   table2   benchmark list + measured compute/memory classification
//!   fig6     % static instructions that are potentially affine
//!   fig16    speedups of CAE / MTA / DAC over baseline
//!   fig17    DAC warp-instruction count normalized to baseline
//!   fig18    affine coverage, DAC vs CAE (compute-intensive set)
//!   fig19    % of loads issued by the affine warp (memory-intensive set)
//!   fig20    MTA prefetcher coverage (memory-intensive set)
//!   fig21    energy normalized to baseline
//!   area     DAC area overhead (§4.8)
//!   ablate   queue-size / locking / divergence ablations (beyond paper)
//!   all      everything above
//! ```

use dac_bench::{evaluate, geomean, FullRow};
use dac_core::DacConfig;
use gpu_energy::EnergyModel;
use gpu_workloads::{all_benchmarks, gpu_for, run_dac, run_design, Design, Workload};
use simt_sim::{GpuConfig, GpuSim};

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let mut cmd = String::from("all");
    let mut scale = 1u32;
    let mut filter: Option<Vec<String>> = None;
    let mut i = 0;
    while i < args.len() {
        match args[i].as_str() {
            "--scale" => {
                scale = args[i + 1].parse().expect("bad --scale");
                i += 1;
            }
            "--bench" => {
                filter = Some(
                    args[i + 1]
                        .split(',')
                        .map(|s| s.to_uppercase())
                        .collect(),
                );
                i += 1;
            }
            c => cmd = c.to_string(),
        }
        i += 1;
    }

    let mut benches = all_benchmarks(scale);
    if let Some(f) = &filter {
        benches.retain(|w| f.contains(&w.abbr.to_uppercase()));
    }

    match cmd.as_str() {
        "table1" => table1(),
        "area" => area(),
        _ => {
            eprintln!("running {} benchmarks at scale {scale}...", benches.len());
            let rows: Vec<FullRow> = benches
                .iter()
                .map(|w| {
                    eprint!("  {:4} ", w.abbr);
                    let t = std::time::Instant::now();
                    let r = evaluate(w);
                    eprintln!("ok ({:.1?})", t.elapsed());
                    r
                })
                .collect();
            match cmd.as_str() {
                "table2" => table2(&rows),
                "fig6" => fig6(&rows),
                "fig16" => fig16(&rows),
                "fig17" => fig17(&rows),
                "fig18" => fig18(&rows),
                "fig19" => fig19(&rows),
                "fig20" => fig20(&rows),
                "fig21" => fig21(&rows),
                "ablate" => ablate(&benches),
                "all" => {
                    table1();
                    table2(&rows);
                    fig6(&rows);
                    fig16(&rows);
                    fig17(&rows);
                    fig18(&rows);
                    fig19(&rows);
                    fig20(&rows);
                    fig21(&rows);
                    area();
                    ablate(&benches);
                }
                other => {
                    eprintln!("unknown experiment {other}");
                    std::process::exit(1);
                }
            }
        }
    }
}

fn hdr(title: &str) {
    println!("\n=== {title} ===");
}

fn table1() {
    hdr("Table 1: Simulation Parameters");
    let g = GpuConfig::gtx480();
    println!("Baseline GPU");
    println!(
        "  GPU        Fermi (GTX480), {} SMs, {} warps/SM",
        g.num_sms, g.max_warps_per_sm
    );
    println!("  SM         {} SIMT lanes, {} schedulers (two-level active)", g.lanes, g.schedulers);
    println!(
        "  L1         {} KB/SM, {} ways, {} MSHRs",
        g.mem.l1_size / 1024,
        g.mem.l1_ways,
        g.mem.mshr_entries
    );
    println!(
        "  L2         {} KB total, {} partitions, {} ways",
        g.mem.l2_size_per_partition * g.mem.num_partitions as u64 / 1024,
        g.mem.num_partitions,
        g.mem.l2_ways
    );
    println!("GPU Prefetcher (MTA)");
    println!(
        "  Buffer     {} KB/SM (in addition to L1)",
        gpu_for(Design::Mta).mem.prefetch_buffer_size / 1024
    );
    println!("Compact Affine Execution (CAE)");
    println!("  Units      2 affine units per SM (one per scheduler)");
    let d = DacConfig::paper();
    println!("Decoupled Affine Computation (DAC)");
    println!("  ATQ        {} entries/SM", d.atq_entries);
    println!(
        "  PWAQ       {} entries/SM, partitioned among resident warps ({}/warp at max occupancy)",
        d.pwaq_total,
        d.pwaq_total / g.max_warps_per_sm
    );
    println!(
        "  PWPQ       {} entries/SM, partitioned among resident warps ({}/warp at max occupancy)",
        d.pwpq_total,
        d.pwpq_total / g.max_warps_per_sm
    );
}

fn table2(rows: &[FullRow]) {
    hdr("Table 2: Benchmarks and measured classification (perfect-mem speedup ≥ 1.5 ⇒ memory-intensive)");
    println!("{:<6} {:<18} {:<6} {:>9} {:<10}", "Abbr", "Name", "Suite", "PerfSpd", "Class");
    for r in rows {
        println!(
            "{:<6} {:<18} {:<6} {:>8.2}x {:<10}",
            r.abbr,
            r.name,
            r.suite,
            r.perfect_speedup,
            if r.memory_intensive { "memory" } else { "compute" }
        );
    }
    let mem = rows.iter().filter(|r| r.memory_intensive).count();
    println!("-> {} memory-intensive, {} compute-intensive (paper: 18 / 11)", mem, rows.len() - mem);
}

fn fig6(rows: &[FullRow]) {
    hdr("Figure 6: % of static instructions that are potentially affine");
    println!(
        "{:<6} {:>7} {:>7} {:>7} {:>8}",
        "Bench", "Arith", "Mem", "Branch", "Total%"
    );
    let mut fracs = Vec::new();
    for r in rows {
        let t = r.mix.total as f64;
        println!(
            "{:<6} {:>6.1}% {:>6.1}% {:>6.1}% {:>7.1}%",
            r.abbr,
            100.0 * r.mix.affine_arithmetic as f64 / t,
            100.0 * r.mix.affine_memory as f64 / t,
            100.0 * r.mix.affine_branch as f64 / t,
            100.0 * r.mix.potential_affine_fraction()
        );
        fracs.push(r.mix.potential_affine_fraction());
    }
    let mean = fracs.iter().sum::<f64>() / fracs.len().max(1) as f64;
    println!("MEAN   potential affine = {:.1}% (paper: ~50%)", 100.0 * mean);
}

fn fig16(rows: &[FullRow]) {
    hdr("Figure 16: Speedup of CAE, MTA, and DAC over the baseline GTX 480");
    println!(
        "{:<6} {:<8} {:>7} {:>7} {:>7}",
        "Bench", "Class", "CAE", "MTA", "DAC"
    );
    let (mut mem_rows, mut cmp_rows) = (Vec::new(), Vec::new());
    for r in rows {
        println!(
            "{:<6} {:<8} {:>6.2}x {:>6.2}x {:>6.2}x",
            r.abbr,
            if r.memory_intensive { "memory" } else { "compute" },
            r.speedup(Design::Cae),
            r.speedup(Design::Mta),
            r.speedup(Design::Dac)
        );
        if r.memory_intensive {
            mem_rows.push(r);
        } else {
            cmp_rows.push(r);
        }
    }
    for (label, set, paper) in [
        ("memory-intensive", &mem_rows, "MTA 1.16x / DAC 1.44x"),
        ("compute-intensive", &cmp_rows, "CAE 1.15x / DAC 1.34x"),
    ] {
        if set.is_empty() {
            continue;
        }
        println!(
            "GEOMEAN {label:<18} CAE {:.2}x  MTA {:.2}x  DAC {:.2}x   (paper: {paper})",
            geomean(set.iter().map(|r| r.speedup(Design::Cae))),
            geomean(set.iter().map(|r| r.speedup(Design::Mta))),
            geomean(set.iter().map(|r| r.speedup(Design::Dac))),
        );
    }
    println!(
        "GEOMEAN all                DAC {:.2}x   (paper: 1.40x)",
        geomean(rows.iter().map(|r| r.speedup(Design::Dac)))
    );
}

fn fig17(rows: &[FullRow]) {
    hdr("Figure 17: DAC warp instructions normalized to baseline (non-affine + affine streams)");
    println!("{:<6} {:>10} {:>9} {:>8}", "Bench", "NonAffine", "Affine", "Total");
    let mut totals = Vec::new();
    let mut aff_fracs = Vec::new();
    for r in rows {
        let (na, aff) = r.instr_ratio();
        println!("{:<6} {:>9.3} {:>9.3} {:>8.3}", r.abbr, na, aff, na + aff);
        totals.push(na + aff);
        let s = &r.runs[3].report.stats;
        aff_fracs.push(s.affine_instruction_fraction());
    }
    let mean = totals.iter().sum::<f64>() / totals.len().max(1) as f64;
    let afrac = aff_fracs.iter().sum::<f64>() / aff_fracs.len().max(1) as f64;
    println!("MEAN   total ratio = {mean:.3} (paper: 0.74), affine share = {:.1}% (paper: 4.6%)", 100.0 * afrac);
}

fn fig18(rows: &[FullRow]) {
    hdr("Figure 18: Affine instruction coverage, DAC vs CAE (compute-intensive set)");
    println!("{:<6} {:>7} {:>7}", "Bench", "CAE", "DAC");
    let set: Vec<&FullRow> = rows.iter().filter(|r| !r.memory_intensive).collect();
    for r in &set {
        println!(
            "{:<6} {:>6.1}% {:>6.1}%",
            r.abbr,
            100.0 * r.cae_coverage(),
            100.0 * r.dac_coverage()
        );
    }
    if !set.is_empty() {
        println!(
            "GEOMEAN  CAE {:.1}%  DAC {:.1}%   (paper: CAE 25% / DAC 34%)",
            100.0 * geomean(set.iter().map(|r| r.cae_coverage().max(1e-6))),
            100.0 * geomean(set.iter().map(|r| r.dac_coverage().max(1e-6)))
        );
    }
}

fn fig19(rows: &[FullRow]) {
    hdr("Figure 19: % of global/local load requests issued by the affine warp (memory-intensive set)");
    println!("{:<6} {:>8}", "Bench", "Affine%");
    let set: Vec<&FullRow> = rows.iter().filter(|r| r.memory_intensive).collect();
    let mut fr = Vec::new();
    for r in &set {
        println!("{:<6} {:>7.1}%", r.abbr, 100.0 * r.decoupled_load_fraction());
        fr.push(r.decoupled_load_fraction());
    }
    let mean = fr.iter().sum::<f64>() / fr.len().max(1) as f64;
    println!("MEAN   {:.1}% (paper: 79.8%)", 100.0 * mean);
}

fn fig20(rows: &[FullRow]) {
    hdr("Figure 20: MTA prefetcher coverage (memory-intensive set)");
    println!("{:<6} {:>9}", "Bench", "Coverage");
    let set: Vec<&FullRow> = rows.iter().filter(|r| r.memory_intensive).collect();
    let mut cov = Vec::new();
    for r in &set {
        println!("{:<6} {:>8.1}%", r.abbr, 100.0 * r.mta_coverage());
        cov.push(r.mta_coverage());
    }
    let mean = cov.iter().sum::<f64>() / cov.len().max(1) as f64;
    println!("MEAN   {:.1}%", 100.0 * mean);
}

fn fig21(rows: &[FullRow]) {
    hdr("Figure 21: DAC energy normalized to baseline");
    let model = EnergyModel::gtx480();
    println!(
        "{:<6} {:>7} {:>7} {:>7} {:>9} {:>8} {:>7}",
        "Bench", "ALU", "RF", "OtherD", "DACovhd", "Static", "Total"
    );
    let mut totals = Vec::new();
    for r in rows {
        let base = r.energy(Design::Baseline, &model);
        let dac = r.energy(Design::Dac, &model);
        let bt = base.total();
        println!(
            "{:<6} {:>7.3} {:>7.3} {:>7.3} {:>9.4} {:>8.3} {:>7.3}",
            r.abbr,
            dac.alu / bt,
            dac.regfile / bt,
            dac.other_dynamic / bt,
            dac.dac_overhead / bt,
            dac.static_ / bt,
            dac.total() / bt
        );
        totals.push(dac.total() / bt);
    }
    println!(
        "GEOMEAN total = {:.3} (paper: 0.798)",
        geomean(totals.iter().copied())
    );
}

fn area() {
    hdr("Section 4.8: DAC area overhead");
    let sms = GpuConfig::gtx480().num_sms;
    println!(
        "SRAM {} B/SM ≈ {:.2} mm²/SM; 2 ALUs ≈ {:.2} mm²/SM",
        gpu_energy::area::SRAM_BYTES_PER_SM,
        gpu_energy::area::SRAM_MM2_PER_SM,
        gpu_energy::area::ALU_MM2_PER_SM
    );
    println!(
        "total {:.2} mm² on a {:.0} mm² die = {:.2}% (paper: 1.06%)",
        gpu_energy::area::dac_area_mm2(sms),
        gpu_energy::area::GTX480_DIE_MM2,
        100.0 * gpu_energy::area::dac_area_overhead(sms)
    );
}

/// Design-space ablations beyond the paper: queue depth, line locking,
/// divergent-tuple support.
fn ablate(benches: &[Workload]) {
    hdr("Ablations (beyond the paper): DAC speedup vs design knobs");
    // A representative memory-bound subset keeps this affordable.
    let subset: Vec<&Workload> = benches
        .iter()
        .filter(|w| ["LIB", "ST", "CS", "SR2", "LBM"].contains(&w.abbr))
        .collect();
    if subset.is_empty() {
        println!("(no matching benchmarks in filter)");
        return;
    }
    let gpu = GpuSim::new(gpu_for(Design::Dac));
    println!("{:<28} {}", "config", "geomean speedup over baseline");
    let base_cycles: Vec<(f64, &Workload)> = subset
        .iter()
        .map(|w| {
            let b = run_design(w, Design::Baseline, &GpuSim::new(gpu_for(Design::Baseline)));
            (b.report.cycles as f64, *w)
        })
        .collect();
    let run_cfg = |label: &str, cfg: DacConfig| {
        let speedups: Vec<f64> = base_cycles
            .iter()
            .map(|(bc, w)| {
                let r = run_dac(w, &gpu, cfg.clone());
                bc / r.report.cycles as f64
            })
            .collect();
        println!("{:<28} {:.3}x", label, geomean(speedups));
    };
    run_cfg("paper (ATQ24, PWQ192, lock)", DacConfig::paper());
    run_cfg(
        "shallow queues (PWQ48)",
        DacConfig {
            pwaq_total: 48,
            pwpq_total: 48,
            ..DacConfig::paper()
        },
    );
    run_cfg(
        "deep queues (PWQ768)",
        DacConfig {
            pwaq_total: 768,
            pwpq_total: 768,
            ..DacConfig::paper()
        },
    );
    run_cfg(
        "no line locking",
        DacConfig {
            lock_lines: false,
            ..DacConfig::paper()
        },
    );
    run_cfg(
        "tiny ATQ (4)",
        DacConfig {
            atq_entries: 4,
            ..DacConfig::paper()
        },
    );
}

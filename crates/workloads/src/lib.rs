//! `gpu-workloads` — the 29 synthetic GPGPU benchmarks (paper Table 2).
//!
//! The paper evaluates CUDA benchmarks from the GPGPU-sim distribution,
//! Rodinia, the CUDA SDK, and Parboil. Those binaries cannot run on a
//! from-scratch Rust simulator, so each benchmark here is a *synthetic
//! equivalent written in our IR* that reproduces the property DAC actually
//! responds to: the benchmark's **address-computation structure** (affine
//! streaming, tiled shared-memory, modulo-mapped, indirect/pointer-chasing,
//! atomic histogramming, …) and its **compute-to-memory balance**. Table 2's
//! compute/memory classification is reproduced by measurement — a benchmark
//! is memory-intensive when perfect memory speeds it up ≥ 1.5× (§5.1.2) —
//! not by fiat.
//!
//! Every workload also carries an output region so the test suite can prove
//! that DAC/CAE/MTA preserve program semantics bit-for-bit.

pub mod kernels;
pub mod runner;
pub mod scenarios;

use simt_ir::{Kernel, LaunchConfig, Program};
use simt_mem::SparseMemory;

pub use runner::{
    classify, gpu_for, run_dac, run_dac_traced, run_design, run_design_traced, run_scenario_design,
    run_scenario_design_traced, BenchRun, Design, ScenarioRun,
};
pub use scenarios::{all_scenarios, scenario, Scenario, ScenarioKernel, ALL_SCENARIOS};

/// Benchmark suite of origin (Table 2).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Suite {
    /// GPGPU-sim distribution.
    GpgpuSim,
    /// Rodinia.
    Rodinia,
    /// CUDA SDK.
    CudaSdk,
    /// Parboil.
    Parboil,
}

impl Suite {
    /// One-letter tag used in Table 2.
    pub fn tag(self) -> char {
        match self {
            Suite::GpgpuSim => 'G',
            Suite::Rodinia => 'R',
            Suite::CudaSdk => 'C',
            Suite::Parboil => 'P',
        }
    }
}

/// The paper's classification (Table 2), used to check our measured split.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum PaperClass {
    /// Compute-intensive in Table 2.
    Compute,
    /// Memory-intensive in Table 2.
    Memory,
}

/// A fully-specified benchmark instance.
#[derive(Clone)]
pub struct Workload {
    /// Full name (Table 2 "Name").
    pub name: &'static str,
    /// Abbreviation (Table 2 "Abbr.").
    pub abbr: &'static str,
    /// Suite of origin.
    pub suite: Suite,
    /// Table 2 classification.
    pub paper_class: PaperClass,
    /// The kernel.
    pub kernel: Kernel,
    /// Launch geometry and parameters.
    pub launch: LaunchConfig,
    /// Initial memory image.
    pub memory: SparseMemory,
    /// Output region `(base, words)` compared across designs for
    /// correctness.
    pub output: (u64, usize),
}

impl Workload {
    /// The program (validated kernel + launch).
    ///
    /// # Panics
    ///
    /// Panics if the kernel is malformed — workload constructors are tested.
    pub fn program(&self) -> Program {
        Program::new(self.kernel.clone(), self.launch.clone()).expect("invalid workload")
    }

    /// A fresh copy of the initial memory image.
    pub fn fresh_memory(&self) -> SparseMemory {
        self.memory.clone()
    }
}

/// Build every benchmark at `scale` (1 = the default evaluation size; the
/// harness uses larger scales for longer, more stable runs).
pub fn all_benchmarks(scale: u32) -> Vec<Workload> {
    kernels::all(scale)
}

/// Look up one benchmark by abbreviation (case-insensitive).
pub fn benchmark(abbr: &str, scale: u32) -> Option<Workload> {
    all_benchmarks(scale)
        .into_iter()
        .find(|w| w.abbr.eq_ignore_ascii_case(abbr))
}

/// The eight divergence-stress workloads promoted from the fuzz corpus —
/// a validation suite, deliberately *not* part of [`all_benchmarks`] (the
/// 29-benchmark registry mirrors the paper's Table 2).
pub fn divergence_stress() -> Vec<Workload> {
    kernels::stress::divergence_stress()
}

/// Abbreviations of all 29 benchmarks in Table 2 order
/// (compute-intensive first).
pub const ALL_ABBRS: [&str; 29] = [
    // Compute-intensive (11).
    "CP", "STO", "AES", "MQ", "TP", "FFT", "BP", "SR1", "HS", "PF", "BS",
    // Memory-intensive (18).
    "LIB", "SG", "ST", "IMG", "HI", "LBM", "SPV", "BT", "LUD", "SR2", "SC", "KM", "BFS", "CFD",
    "MC", "MT", "SP", "CS",
];

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn registry_has_29_benchmarks() {
        let all = all_benchmarks(1);
        assert_eq!(all.len(), 29);
        let abbrs: Vec<&str> = all.iter().map(|w| w.abbr).collect();
        for a in ALL_ABBRS {
            assert!(abbrs.contains(&a), "missing benchmark {a}");
        }
    }

    #[test]
    fn all_kernels_validate() {
        for w in all_benchmarks(1) {
            w.kernel
                .validate()
                .unwrap_or_else(|e| panic!("{}: {e}", w.abbr));
            assert_eq!(
                w.launch.params.len(),
                w.kernel.num_params as usize,
                "{}: param count",
                w.abbr
            );
            assert!(w.output.1 > 0, "{}: empty output region", w.abbr);
        }
    }

    #[test]
    fn paper_split_is_11_and_18() {
        let all = all_benchmarks(1);
        let compute = all
            .iter()
            .filter(|w| w.paper_class == PaperClass::Compute)
            .count();
        assert_eq!(compute, 11);
        assert_eq!(all.len() - compute, 18);
    }

    #[test]
    fn lookup_by_abbr() {
        assert!(benchmark("bfs", 1).is_some());
        assert!(benchmark("CP", 1).is_some());
        assert!(benchmark("nope", 1).is_none());
    }
}

//! `simt-mem` — the GPU memory system substrate.
//!
//! The paper's evaluation modifies GPGPU-sim "to better model the memory
//! system"; this crate is our from-scratch equivalent. It provides:
//!
//! * [`SparseMemory`] — functional byte-addressable global/local memory;
//! * [`Cache`] — a set-associative tag array with LRU replacement and the
//!   per-line **lock counters** DAC adds to keep early requests resident
//!   until their demand access (paper §4.2);
//! * [`MshrTable`] — miss-status holding registers with request merging;
//! * [`DramPartition`] — banked DRAM with row-buffer hit/miss timing and a
//!   bandwidth-limited data bus;
//! * [`MemoryFabric`] — the full hierarchy: per-SM L1 (plus an optional
//!   dedicated prefetch buffer for the MTA baseline), address-interleaved L2
//!   partitions, and per-partition DRAM, advanced one cycle at a time.
//!
//! All timing is expressed in core clock cycles (a single clock domain; see
//! DESIGN.md). The fabric is deterministic: identical request sequences
//! produce identical timings.

pub mod cache;
pub mod config;
pub mod dram;
pub mod fabric;
pub mod fxhash;
pub mod mshr;
pub mod sparse;
pub mod stats;

pub use cache::{Cache, CacheOutcome};
pub use config::MemConfig;
pub use dram::DramPartition;
pub use fabric::{
    AccessOutcome, Client, FabricGrid, MemRequest, MemResponse, MemoryFabric, ReqKind, SmPortView,
};
pub use fxhash::{FxBuildHasher, FxHashMap, FxHashSet, FxHasher};
pub use mshr::MshrTable;
pub use sparse::SparseMemory;
pub use stats::MemStats;

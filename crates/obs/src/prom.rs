//! Prometheus text exposition (format 0.0.4) and a scrape parser.
//!
//! [`render`] turns registry snapshots into the classic text format —
//! `# HELP` / `# TYPE` headers, one sample per line, histogram families
//! expanded into cumulative `_bucket{le=…}` series plus `_sum` and
//! `_count`. Output is byte-deterministic: families in name order, series
//! in label order, buckets ascending. [`parse`] is the inverse used by the
//! round-trip tests and the CI smoke — it reads every sample line back
//! into `(name, labels, value)` triples.

use crate::metrics::{FamilySnapshot, SeriesValue};
use std::fmt::Write as _;

fn escape_help(out: &mut String, s: &str) {
    for c in s.chars() {
        match c {
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            c => out.push(c),
        }
    }
}

fn escape_label_value(out: &mut String, s: &str) {
    for c in s.chars() {
        match c {
            '\\' => out.push_str("\\\\"),
            '"' => out.push_str("\\\""),
            '\n' => out.push_str("\\n"),
            c => out.push(c),
        }
    }
}

/// Render `{labels}` (with an optional extra `le` label appended last in
/// sorted-key order would be wrong — Prometheus does not require label
/// ordering, but determinism does, so `le` is merged and sorted too).
fn write_labels(out: &mut String, labels: &[(String, String)], le: Option<&str>) {
    let mut pairs: Vec<(&str, &str)> = labels
        .iter()
        .map(|(k, v)| (k.as_str(), v.as_str()))
        .collect();
    if let Some(le) = le {
        pairs.push(("le", le));
        pairs.sort();
    }
    if pairs.is_empty() {
        return;
    }
    out.push('{');
    for (i, (k, v)) in pairs.iter().enumerate() {
        if i > 0 {
            out.push(',');
        }
        out.push_str(k);
        out.push_str("=\"");
        escape_label_value(out, v);
        out.push('"');
    }
    out.push('}');
}

fn write_f64(out: &mut String, v: f64) {
    if v.is_nan() {
        out.push_str("NaN");
    } else if v == f64::INFINITY {
        out.push_str("+Inf");
    } else if v == f64::NEG_INFINITY {
        out.push_str("-Inf");
    } else if v == v.trunc() && v.abs() < 1e15 {
        let _ = write!(out, "{}", v as i64);
    } else {
        let _ = write!(out, "{v}");
    }
}

/// Render family snapshots as Prometheus text exposition. Accepts the
/// concatenation of several registries' snapshots; families must not
/// repeat across them.
pub fn render(families: &[FamilySnapshot]) -> String {
    let mut out = String::with_capacity(1024);
    for family in families {
        out.push_str("# HELP ");
        out.push_str(family.name);
        out.push(' ');
        escape_help(&mut out, family.help);
        out.push('\n');
        out.push_str("# TYPE ");
        out.push_str(family.name);
        out.push(' ');
        out.push_str(family.kind.name());
        out.push('\n');
        for series in &family.series {
            match &series.value {
                SeriesValue::Counter(n) => {
                    out.push_str(family.name);
                    write_labels(&mut out, &series.labels, None);
                    let _ = writeln!(out, " {n}");
                }
                SeriesValue::Gauge(g) => {
                    out.push_str(family.name);
                    write_labels(&mut out, &series.labels, None);
                    out.push(' ');
                    write_f64(&mut out, *g);
                    out.push('\n');
                }
                SeriesValue::Hist(h) => {
                    // Cumulative buckets; the overflow tail folds into +Inf.
                    let mut cumulative = 0u64;
                    for (i, &c) in h.buckets.iter().enumerate() {
                        if i == h.buckets.len() - 1 {
                            break;
                        }
                        cumulative += c;
                        let mut le = String::new();
                        let _ = write!(le, "{}", (i as u64 + 1) * h.width);
                        out.push_str(family.name);
                        out.push_str("_bucket");
                        write_labels(&mut out, &series.labels, Some(&le));
                        let _ = writeln!(out, " {cumulative}");
                    }
                    out.push_str(family.name);
                    out.push_str("_bucket");
                    write_labels(&mut out, &series.labels, Some("+Inf"));
                    let _ = writeln!(out, " {}", h.count);
                    out.push_str(family.name);
                    out.push_str("_sum");
                    write_labels(&mut out, &series.labels, None);
                    let _ = writeln!(out, " {}", h.sum);
                    out.push_str(family.name);
                    out.push_str("_count");
                    write_labels(&mut out, &series.labels, None);
                    let _ = writeln!(out, " {}", h.count);
                }
            }
        }
    }
    out
}

/// One parsed sample line.
#[derive(Debug, Clone, PartialEq)]
pub struct Sample {
    /// Metric name as scraped (`_bucket`/`_sum`/`_count` suffixes intact).
    pub name: String,
    /// Label pairs in scrape order.
    pub labels: Vec<(String, String)>,
    /// Sample value.
    pub value: f64,
}

fn is_name_char(c: char, first: bool) -> bool {
    c.is_ascii_alphabetic() || c == '_' || c == ':' || (!first && c.is_ascii_digit())
}

/// Parsed label set plus the unconsumed remainder of the line.
type ParsedLabels<'a> = (Vec<(String, String)>, &'a str);

fn parse_labels(s: &str) -> Result<ParsedLabels<'_>, String> {
    let mut labels = Vec::new();
    let mut rest = &s[1..]; // past '{'
    loop {
        rest = rest.trim_start();
        if let Some(tail) = rest.strip_prefix('}') {
            return Ok((labels, tail));
        }
        let name_end = rest
            .char_indices()
            .find(|&(i, c)| !is_name_char(c, i == 0))
            .map(|(i, _)| i)
            .unwrap_or(rest.len());
        if name_end == 0 {
            return Err(format!("expected label name at {rest:?}"));
        }
        let name = rest[..name_end].to_string();
        rest = rest[name_end..].trim_start();
        rest = rest
            .strip_prefix('=')
            .ok_or_else(|| format!("expected '=' after label {name}"))?
            .trim_start();
        rest = rest
            .strip_prefix('"')
            .ok_or_else(|| format!("expected '\"' opening value of {name}"))?;
        let mut value = String::new();
        let mut chars = rest.char_indices();
        let close = loop {
            let (i, c) = chars
                .next()
                .ok_or_else(|| format!("unterminated value for label {name}"))?;
            match c {
                '"' => break i,
                '\\' => {
                    let (_, esc) = chars
                        .next()
                        .ok_or_else(|| format!("dangling escape in label {name}"))?;
                    match esc {
                        '\\' => value.push('\\'),
                        '"' => value.push('"'),
                        'n' => value.push('\n'),
                        other => return Err(format!("bad escape \\{other} in label {name}")),
                    }
                }
                c => value.push(c),
            }
        };
        labels.push((name, value));
        rest = rest[close + 1..].trim_start();
        if let Some(tail) = rest.strip_prefix(',') {
            rest = tail;
        }
    }
}

/// Parse text exposition back into samples. Comment (`#`) and blank lines
/// are skipped; every remaining line must be a well-formed sample.
pub fn parse(text: &str) -> Result<Vec<Sample>, String> {
    let mut samples = Vec::new();
    for (lineno, line) in text.lines().enumerate() {
        let line = line.trim();
        if line.is_empty() || line.starts_with('#') {
            continue;
        }
        let err = |what: &str| format!("line {}: {what}: {line:?}", lineno + 1);
        let name_end = line
            .char_indices()
            .find(|&(i, c)| !is_name_char(c, i == 0))
            .map(|(i, _)| i)
            .unwrap_or(line.len());
        if name_end == 0 {
            return Err(err("expected metric name"));
        }
        let name = line[..name_end].to_string();
        let rest = &line[name_end..];
        let (labels, rest) = if rest.starts_with('{') {
            parse_labels(rest).map_err(|e| err(&e))?
        } else {
            (Vec::new(), rest)
        };
        let value_text = rest.split_whitespace().next().unwrap_or("");
        let value = match value_text {
            "+Inf" | "Inf" => f64::INFINITY,
            "-Inf" => f64::NEG_INFINITY,
            "NaN" => f64::NAN,
            v => v.parse::<f64>().map_err(|_| err("bad sample value"))?,
        };
        samples.push(Sample {
            name,
            labels,
            value,
        });
    }
    Ok(samples)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::metrics::Registry;

    #[test]
    fn render_is_deterministic_and_ordered() {
        let mk = || {
            let reg = Registry::new();
            reg.counter_add("simt_z_total", "z", &[("b", "2")], 1);
            reg.counter_add("simt_z_total", "z", &[("a", "1")], 2);
            reg.gauge_set("simt_a_depth", "queue depth", &[], 3.0);
            reg.observe("simt_m_us", "lat", &[], 10, 4, 5);
            reg.observe("simt_m_us", "lat", &[], 10, 4, 95);
            render(&reg.snapshot())
        };
        let text = mk();
        assert_eq!(text, mk(), "same inputs render byte-identically");
        let a = text.find("simt_a_depth").unwrap();
        let m = text.find("simt_m_us").unwrap();
        let z = text.find("simt_z_total").unwrap();
        assert!(a < m && m < z, "families in name order:\n{text}");
        // Cumulative buckets + overflow folded into +Inf.
        assert!(text.contains("simt_m_us_bucket{le=\"10\"} 1\n"), "{text}");
        assert!(text.contains("simt_m_us_bucket{le=\"+Inf\"} 2\n"), "{text}");
        assert!(text.contains("simt_m_us_sum 100\n"), "{text}");
        assert!(text.contains("simt_m_us_count 2\n"), "{text}");
    }

    #[test]
    fn escaping_round_trips() {
        let reg = Registry::new();
        reg.counter_add(
            "simt_esc_total",
            "help with \\ and\nnewline",
            &[("path", "a\"b\\c\nd")],
            7,
        );
        let text = render(&reg.snapshot());
        assert!(text.contains("# HELP simt_esc_total help with \\\\ and\\nnewline\n"));
        assert!(text.contains("path=\"a\\\"b\\\\c\\nd\""), "{text}");
        let samples = parse(&text).unwrap();
        assert_eq!(samples.len(), 1);
        assert_eq!(samples[0].name, "simt_esc_total");
        assert_eq!(
            samples[0].labels,
            vec![("path".to_string(), "a\"b\\c\nd".to_string())]
        );
        assert_eq!(samples[0].value, 7.0);
    }

    #[test]
    fn parse_rejects_garbage() {
        assert!(parse("123bad 1").is_err());
        assert!(parse("simt_x{unterminated=\"v} 1").is_err());
        assert!(parse("simt_x notanumber").is_err());
    }

    #[test]
    fn every_family_kind_round_trips() {
        let reg = Registry::new();
        reg.counter_add("simt_c_total", "c", &[("k", "v")], 3);
        reg.gauge_set("simt_g", "g", &[], 2.5);
        for v in [1u64, 15, 999] {
            reg.observe("simt_h_us", "h", &[("e", "x")], 10, 3, v);
        }
        let snap = reg.snapshot();
        let samples = parse(&render(&snap)).unwrap();
        let find = |name: &str, label: Option<(&str, &str)>| -> f64 {
            samples
                .iter()
                .find(|s| {
                    s.name == name
                        && label
                            .is_none_or(|(k, v)| s.labels.iter().any(|(lk, lv)| lk == k && lv == v))
                })
                .unwrap_or_else(|| panic!("missing {name}"))
                .value
        };
        assert_eq!(find("simt_c_total", Some(("k", "v"))), 3.0);
        assert_eq!(find("simt_g", None), 2.5);
        assert_eq!(find("simt_h_us_count", None), 3.0);
        assert_eq!(find("simt_h_us_sum", None), 1015.0);
        assert_eq!(find("simt_h_us_bucket", Some(("le", "10"))), 1.0);
        assert_eq!(find("simt_h_us_bucket", Some(("le", "20"))), 2.0);
        assert_eq!(find("simt_h_us_bucket", Some(("le", "+Inf"))), 3.0);
    }
}

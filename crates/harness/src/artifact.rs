//! The artifact schema: hand-rolled (de)serialization between
//! [`JobResult`]s and the JSON records stored in `results/runs/*.jsonl`
//! and `results/cache/*.json`.
//!
//! One record per simulation, one JSON object per line:
//!
//! ```json
//! {"schema":"dac-run/v1","bench":"LIB","name":"LIBOR Monte Carlo",
//!  "suite":"G","scale":1,"design":"dac","overrides":{"atq_entries":24},
//!  "kernel":"lib","coproc":"dac","cycles":81234,
//!  "stats":{"cycles":81234,"warp_instructions":...},
//!  "mem":{"l1_hits":...},"energy":{"alu":...,"total":...},
//!  "output_digest":"89abcdef01234567","job":3,"wall_ms":412.7,
//!  "cached":false}
//! ```
//!
//! Counter names inside `stats`/`mem` come from `SimStats::fields` /
//! `MemStats::fields` and are part of the schema. Cache entries are the
//! same record with a `"key"` field (the canonical [`Job::cache_key`]) and
//! without the per-invocation `job`/`wall_ms`/`cached` fields.

use crate::job::{DesignPoint, Job, JobResult, Overrides};
use crate::json::Value;
use gpu_energy::{energy_of, EnergyModel};
use simt_mem::MemStats;
use simt_sim::{KernelReport, SimReport, SimStats};

/// Schema tag on every record; loaders reject anything else.
pub const SCHEMA: &str = "dac-run/v1";

/// The overrides relevant at `point`, as a typed JSON object.
fn overrides_to_json(o: &Overrides, point: DesignPoint) -> Value {
    let fields = o
        .relevant(point)
        .into_iter()
        .map(|(k, v)| {
            let val = match v.as_str() {
                "true" => Value::Bool(true),
                "false" => Value::Bool(false),
                _ => Value::Int(v.parse::<u64>().expect("numeric override")),
            };
            (k.to_string(), val)
        })
        .collect();
    Value::Obj(fields)
}

fn counters_to_json(fields: Vec<(&'static str, u64)>) -> Value {
    Value::Obj(
        fields
            .into_iter()
            .map(|(k, v)| (k.to_string(), Value::Int(v)))
            .collect(),
    )
}

/// Derived profiling view attached to every record: top-down issue-slot
/// fractions plus cache and DRAM hit rates. Purely a function of the raw
/// `stats`/`mem` counters — [`from_json`] ignores it, so old readers and
/// the cache loader are unaffected.
fn profile_to_json(report: &SimReport) -> Value {
    let total = report.stats.issue_slots_total();
    let frac = |v: u64| {
        if total == 0 {
            0.0
        } else {
            v as f64 / total as f64
        }
    };
    let stack = report
        .stats
        .issue_slot_buckets()
        .into_iter()
        .map(|(k, v)| (k.to_string(), Value::Float(frac(v))))
        .collect();
    Value::Obj(vec![
        ("issue_slots".into(), Value::Int(total)),
        ("cpi_stack".into(), Value::Obj(stack)),
        ("l1_hit_rate".into(), Value::Float(report.mem.l1_hit_rate())),
        ("l2_hit_rate".into(), Value::Float(report.mem.l2_hit_rate())),
        (
            "dram_row_hit_rate".into(),
            Value::Float(report.mem.row_hit_rate()),
        ),
    ])
}

/// One per-kernel attribution record of a scenario run. `stats.cycles`
/// is the kernel's residency span (first CTA launch to last retire), not
/// the chip-wide cycle count.
fn kernel_to_json(k: &KernelReport) -> Value {
    Value::Obj(vec![
        ("label".into(), Value::Str(k.label.clone())),
        ("kernel".into(), Value::Str(k.kernel.clone())),
        ("coproc".into(), Value::Str(k.coproc.clone())),
        ("stream".into(), Value::Int(k.stream as u64)),
        ("seq".into(), Value::Int(k.seq as u64)),
        ("ctas".into(), Value::Int(k.ctas)),
        ("first_cycle".into(), Value::Int(k.first_cycle)),
        ("done_cycle".into(), Value::Int(k.done_cycle)),
        ("stats".into(), counters_to_json(k.stats.fields())),
    ])
}

fn kernel_from_json(v: &Value) -> Result<KernelReport, String> {
    let str_field = |name: &str| -> Result<String, String> {
        Ok(v.get(name)
            .and_then(Value::as_str)
            .ok_or_else(|| format!("kernels[]: missing field {name:?}"))?
            .to_string())
    };
    let int_field = |name: &str| -> Result<u64, String> {
        v.get(name)
            .and_then(Value::as_u64)
            .ok_or_else(|| format!("kernels[]: missing field {name:?}"))
    };
    let mut stats = SimStats::default();
    for (name, val) in v
        .get("stats")
        .and_then(Value::as_obj)
        .ok_or("kernels[]: missing field \"stats\"")?
    {
        let n = val
            .as_u64()
            .ok_or_else(|| format!("kernels[].stats.{name} not a u64"))?;
        if !stats.set_field(name, n) {
            return Err(format!("unknown stats counter {name:?}"));
        }
    }
    Ok(KernelReport {
        label: str_field("label")?,
        kernel: str_field("kernel")?,
        coproc: str_field("coproc")?,
        stream: int_field("stream")? as usize,
        seq: int_field("seq")? as usize,
        ctas: int_field("ctas")?,
        first_cycle: int_field("first_cycle")?,
        done_cycle: int_field("done_cycle")?,
        stats,
    })
}

/// Serialize one result. `invocation` attaches the per-invocation fields
/// (job index within this run, wall time, cache-hit flag) used in run
/// artifacts but omitted from cache entries; `cache_key` attaches the
/// canonical key used in cache entries.
pub fn to_json(
    job: &Job,
    result: &JobResult,
    invocation: Option<usize>,
    cache_key: Option<&str>,
) -> Value {
    let energy = energy_of(&result.report, &EnergyModel::gtx480());
    let mut fields = vec![("schema".to_string(), Value::Str(SCHEMA.into()))];
    if let Some(key) = cache_key {
        fields.push(("key".into(), Value::Str(key.into())));
    }
    fields.extend([
        ("bench".to_string(), Value::Str(job.bench().into())),
        ("name".to_string(), Value::Str(job.display_name().into())),
        ("suite".to_string(), Value::Str(job.suite_tag().to_string())),
        ("scale".to_string(), Value::Int(job.scale as u64)),
        ("design".to_string(), Value::Str(job.point.name().into())),
        (
            "overrides".to_string(),
            overrides_to_json(&job.overrides, job.point),
        ),
        (
            "kernel".to_string(),
            Value::Str(result.report.kernel.clone()),
        ),
        (
            "coproc".to_string(),
            Value::Str(result.report.coproc.clone()),
        ),
        ("cycles".to_string(), Value::Int(result.report.cycles)),
        (
            "stats".to_string(),
            counters_to_json(result.report.stats.fields()),
        ),
        (
            "mem".to_string(),
            counters_to_json(result.report.mem.fields()),
        ),
        ("profile".to_string(), profile_to_json(&result.report)),
        (
            "energy".to_string(),
            Value::Obj(vec![
                ("alu".into(), Value::Float(energy.alu)),
                ("regfile".into(), Value::Float(energy.regfile)),
                ("other_dynamic".into(), Value::Float(energy.other_dynamic)),
                ("dac_overhead".into(), Value::Float(energy.dac_overhead)),
                ("static".into(), Value::Float(energy.static_)),
                ("total".into(), Value::Float(energy.total())),
            ]),
        ),
        (
            "output_digest".to_string(),
            Value::Str(format!("{:016x}", result.output_digest)),
        ),
    ]);
    if job.scenario().is_some() {
        fields.push(("cta_policy".into(), Value::Str(job.policy().name().into())));
    }
    if !result.per_kernel.is_empty() {
        fields.push((
            "kernels".into(),
            Value::Arr(result.per_kernel.iter().map(kernel_to_json).collect()),
        ));
    }
    if let Some(index) = invocation {
        fields.push(("job".into(), Value::Int(index as u64)));
        fields.push(("wall_ms".into(), Value::Float(result.wall_ms)));
        fields.push(("cached".into(), Value::Bool(result.cached)));
    }
    Value::Obj(fields)
}

/// Re-hydrate a result from a stored record. Returns the record's `"key"`
/// field (empty for run artifacts) alongside the result; rejects unknown
/// schemas and unknown counter names so stale caches read as misses.
pub fn from_json(v: &Value) -> Result<(String, JobResult), String> {
    if v.get("schema").and_then(Value::as_str) != Some(SCHEMA) {
        return Err(format!(
            "unknown artifact schema {:?}",
            v.get("schema").and_then(Value::as_str)
        ));
    }
    let key = v
        .get("key")
        .and_then(Value::as_str)
        .unwrap_or_default()
        .to_string();
    let str_field = |name: &str| -> Result<String, String> {
        Ok(v.get(name)
            .and_then(Value::as_str)
            .ok_or_else(|| format!("missing field {name:?}"))?
            .to_string())
    };
    let cycles = v
        .get("cycles")
        .and_then(Value::as_u64)
        .ok_or("missing field \"cycles\"")?;

    let mut stats = SimStats::default();
    for (name, val) in v
        .get("stats")
        .and_then(Value::as_obj)
        .ok_or("missing field \"stats\"")?
    {
        let n = val
            .as_u64()
            .ok_or_else(|| format!("stats.{name} not a u64"))?;
        if !stats.set_field(name, n) {
            return Err(format!("unknown stats counter {name:?}"));
        }
    }
    let mut mem = MemStats::default();
    for (name, val) in v
        .get("mem")
        .and_then(Value::as_obj)
        .ok_or("missing field \"mem\"")?
    {
        let n = val
            .as_u64()
            .ok_or_else(|| format!("mem.{name} not a u64"))?;
        if !mem.set_field(name, n) {
            return Err(format!("unknown mem counter {name:?}"));
        }
    }
    let digest = u64::from_str_radix(&str_field("output_digest")?, 16)
        .map_err(|e| format!("bad output_digest: {e}"))?;
    let per_kernel = match v.get("kernels").and_then(Value::as_arr) {
        None => Vec::new(),
        Some(items) => items
            .iter()
            .map(kernel_from_json)
            .collect::<Result<Vec<_>, _>>()?,
    };

    Ok((
        key,
        JobResult {
            report: SimReport {
                kernel: str_field("kernel")?,
                coproc: str_field("coproc")?,
                cycles,
                stats,
                mem,
            },
            per_kernel,
            output_digest: digest,
            wall_ms: 0.0,
            cached: true,
        },
    ))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::json;
    use gpu_workloads::{benchmark, Design};
    use std::sync::Arc;

    fn small_job(point: DesignPoint) -> Job {
        let mut job = Job::new(Arc::new(benchmark("LIB", 1).unwrap()), 1, point);
        job.overrides.num_sms = Some(2);
        job.overrides.max_warps_per_sm = Some(16);
        job
    }

    #[test]
    fn record_roundtrips_exactly() {
        let job = small_job(DesignPoint::Hw(Design::Dac));
        let result = job.execute();
        let key = job.cache_key();
        let text = to_json(&job, &result, None, Some(&key)).to_json();
        let (loaded_key, loaded) = from_json(&json::parse(&text).unwrap()).unwrap();
        assert_eq!(loaded_key, key);
        assert_eq!(loaded.report.cycles, result.report.cycles);
        assert_eq!(loaded.report.stats, result.report.stats);
        assert_eq!(loaded.report.mem, result.report.mem);
        assert_eq!(loaded.report.kernel, result.report.kernel);
        assert_eq!(loaded.report.coproc, result.report.coproc);
        assert_eq!(loaded.output_digest, result.output_digest);
        assert!(loaded.cached);
    }

    #[test]
    fn run_record_carries_invocation_fields() {
        let job = small_job(DesignPoint::Hw(Design::Baseline));
        let result = job.execute();
        let v = to_json(&job, &result, Some(7), None);
        assert_eq!(v.get("job").and_then(Value::as_u64), Some(7));
        assert!(v.get("wall_ms").and_then(Value::as_f64).is_some());
        assert_eq!(v.get("cached").and_then(Value::as_bool), Some(false));
        assert!(v.get("key").is_none());
        // Still loadable (key comes back empty).
        let (key, _) = from_json(&v).unwrap();
        assert!(key.is_empty());
    }

    #[test]
    fn profile_section_is_derived_and_loader_safe() {
        let job = small_job(DesignPoint::Hw(Design::Baseline));
        let result = job.execute();
        let v = to_json(&job, &result, None, None);
        let profile = v.get("profile").expect("profile section present");
        let slots = profile
            .get("issue_slots")
            .and_then(Value::as_u64)
            .expect("issue_slots");
        assert_eq!(slots, result.report.stats.issue_slots_total());
        let stack = profile
            .get("cpi_stack")
            .and_then(Value::as_obj)
            .expect("cpi_stack");
        let sum: f64 = stack.iter().filter_map(|(_, v)| v.as_f64()).sum();
        assert!((sum - 1.0).abs() < 1e-9, "fractions sum to 1, got {sum}");
        assert!(profile.get("l1_hit_rate").and_then(Value::as_f64).is_some());
        // The loader ignores the derived section entirely.
        let (_, loaded) = from_json(&v).unwrap();
        assert_eq!(loaded.report.stats, result.report.stats);
    }

    #[test]
    fn unknown_schema_and_counters_rejected() {
        let job = small_job(DesignPoint::PerfectMem);
        let result = job.execute();
        let mut v = to_json(&job, &result, None, None);
        if let Value::Obj(fields) = &mut v {
            fields[0].1 = Value::Str("dac-run/v999".into());
        }
        assert!(from_json(&v).is_err());

        let mut v2 = to_json(&job, &result, None, None);
        if let Value::Obj(fields) = &mut v2 {
            for (k, val) in fields.iter_mut() {
                if k == "stats" {
                    if let Value::Obj(stats) = val {
                        stats.push(("warp_speed".into(), Value::Int(9)));
                    }
                }
            }
        }
        assert!(from_json(&v2).is_err());
    }
}

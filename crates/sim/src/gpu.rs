//! The top-level GPU: the main cycle loop and reports. CTA dispatch is
//! owned by the command processor (`cmdproc.rs`); single-kernel runs are
//! one-stream, one-launch multi-stream runs, so they reduce to the
//! classic behaviour by construction.

use crate::cmdproc::{CommandProcessor, MultiCoProcessor, PlacementPolicy};
use crate::config::GpuConfig;
use crate::coproc::{CoProcessor, NullCoProcessor};
use crate::sm::{KernelCtx, Sm};
use crate::stats::SimStats;
use crate::stream::{Stream, StreamLaunch};
use simt_ir::{Cfg, Program};
use simt_mem::{MemStats, MemoryFabric, SparseMemory};
use simt_trace::{NullTracer, Tracer};

/// Everything a run produced: timing, core events, memory events.
#[derive(Debug, Clone)]
pub struct SimReport {
    /// Kernel name.
    pub kernel: String,
    /// Coprocessor used ("baseline", "dac", "cae", "mta").
    pub coproc: String,
    /// Total cycles to completion.
    pub cycles: u64,
    /// Core-side statistics.
    pub stats: SimStats,
    /// Memory-side statistics.
    pub mem: MemStats,
}

impl SimReport {
    /// Speedup of this run relative to `baseline` (cycles ratio).
    pub fn speedup_over(&self, baseline: &SimReport) -> f64 {
        baseline.cycles as f64 / self.cycles as f64
    }
}

/// Per-kernel slice of a multi-stream run.
#[derive(Debug, Clone)]
pub struct KernelReport {
    /// Attribution label (from the stream launch).
    pub label: String,
    /// Kernel name.
    pub kernel: String,
    /// Coprocessor driving this kernel.
    pub coproc: String,
    /// Stream index.
    pub stream: usize,
    /// Position within the stream.
    pub seq: usize,
    /// CTAs in the kernel's grid.
    pub ctas: u64,
    /// Cycle the first CTA was placed on an SM.
    pub first_cycle: u64,
    /// Cycle the last CTA retired.
    pub done_cycle: u64,
    /// Core-side counters attributed to this kernel. Its `cycles` field
    /// holds the residency span `done_cycle - first_cycle + 1`.
    pub stats: SimStats,
}

/// Report of a multi-stream run: chip-wide totals plus a per-kernel
/// attribution slice for every launch.
#[derive(Debug, Clone)]
pub struct StreamReport {
    /// Total cycles to completion of all streams.
    pub cycles: u64,
    /// Chip-wide core statistics (exact field-wise sum of all per-kernel
    /// bins plus the unbound-SM bin).
    pub stats: SimStats,
    /// Memory-side statistics (shared hierarchy, not attributed).
    pub mem: MemStats,
    /// One entry per kernel launch, flattened stream-major.
    pub per_kernel: Vec<KernelReport>,
}

/// Progress fingerprint over the per-SM attribution rows (a handful of
/// u64 sums): any issue slot, coprocessor record, or CTA launch shows up
/// here, so "fingerprint unchanged" means the cycle was quiet.
fn fingerprint(rows: &[Vec<SimStats>]) -> (u64, u64, u64, u64, u64) {
    rows.iter().flatten().fold((0, 0, 0, 0, 0), |a, s| {
        (
            a.0 + s.slot_issued,
            a.1 + s.affine_issue_slots,
            a.2 + s.aeu_records,
            a.3 + s.peu_records,
            a.4 + s.ctas_launched,
        )
    })
}

/// Build the deadlock-guard panic message: the stalled cycle, every
/// unit's progress counter, and every unit's pending wake deadline, so a
/// hang is diagnosable from the panic alone (which SM/partition stopped
/// moving, and what each one claims it is waiting for).
fn deadlock_report(
    now: u64,
    cfg: &GpuConfig,
    sms: &[Sm],
    fabric: &MemoryFabric,
    coproc: &dyn CoProcessor,
    cmdproc: &CommandProcessor,
    flat: &[(usize, usize, &StreamLaunch)],
) -> String {
    use std::fmt::Write as _;
    let fmt_wake = |w: u64| -> String {
        if w == u64::MAX {
            "never".to_string()
        } else {
            w.to_string()
        }
    };
    let mut r = format!(
        "simulation exceeded {} cycles — deadlock? stalled at cycle {} \
         (first kernel={} coproc={} threads={})\n",
        cfg.max_cycles,
        now,
        flat[0].2.program.kernel.name,
        coproc.name(),
        cfg.threads.max(1),
    );
    let _ = writeln!(
        r,
        "  dispatch: {}",
        (0..cmdproc.num_kernels())
            .map(|k| {
                let st = cmdproc.state(k);
                format!(
                    "k{}[{}/{} dispatched, {} retired]",
                    k, st.next_cta, st.total_ctas, st.retired_ctas
                )
            })
            .collect::<Vec<_>>()
            .join(" ")
    );
    for s in sms {
        let _ = writeln!(
            r,
            "  sm{}: progress={} wake={} idle={}",
            s.id,
            s.progress_count(),
            fmt_wake(s.next_event_time(now)),
            s.idle()
        );
    }
    let (residue, parts, ports) = fabric.progress_breakdown();
    let _ = writeln!(
        r,
        "  fabric: residue={} wake={} quiescent={}",
        residue,
        fmt_wake(fabric.next_event_time(now)),
        fabric.quiescent()
    );
    let _ = writeln!(
        r,
        "  fabric partitions progress: [{}]",
        parts
            .iter()
            .map(|p| p.to_string())
            .collect::<Vec<_>>()
            .join(", ")
    );
    let _ = writeln!(
        r,
        "  fabric sm-ports progress: [{}]",
        ports
            .iter()
            .map(|p| p.to_string())
            .collect::<Vec<_>>()
            .join(", ")
    );
    let _ = write!(
        r,
        "  coproc: wake={} quiescent={}",
        fmt_wake(coproc.ff_wake(now)),
        coproc.quiescent()
    );
    r
}

/// The per-SM coprocessor view of a run: a single child is handed
/// straight to the SMs (no routing overhead on the classic path); two or
/// more go through the [`MultiCoProcessor`] router.
enum Router<'a> {
    Single(&'a mut dyn CoProcessor),
    Multi(MultiCoProcessor<'a>),
}

/// The whole GPU.
#[derive(Debug, Clone)]
pub struct GpuSim {
    cfg: GpuConfig,
}

impl GpuSim {
    /// A GPU with the given configuration.
    pub fn new(cfg: GpuConfig) -> Self {
        GpuSim { cfg }
    }

    /// The configuration.
    pub fn config(&self) -> &GpuConfig {
        &self.cfg
    }

    /// Run `program` on the baseline GPU (no coprocessor).
    ///
    /// # Panics
    ///
    /// Panics if the program is malformed or the run exceeds
    /// `cfg.max_cycles` (deadlock guard).
    pub fn run(&self, program: &Program, mem: &mut SparseMemory) -> SimReport {
        let mut null = NullCoProcessor;
        self.run_with(program, mem, &mut null)
    }

    /// Run `program` with a coprocessor attached (DAC / CAE / MTA).
    ///
    /// # Panics
    ///
    /// Panics if the program is malformed or the run exceeds
    /// `cfg.max_cycles` (deadlock guard).
    pub fn run_with(
        &self,
        program: &Program,
        mem: &mut SparseMemory,
        coproc: &mut dyn CoProcessor,
    ) -> SimReport {
        self.run_traced(program, mem, coproc, &mut NullTracer)
    }

    /// [`GpuSim::run_with`] with a tracer attached. Tracing is pure
    /// observation: the returned [`SimReport`] is identical to an untraced
    /// run (the harness determinism test asserts this).
    ///
    /// # Panics
    ///
    /// Panics if the program is malformed or the run exceeds
    /// `cfg.max_cycles` (deadlock guard).
    pub fn run_traced(
        &self,
        program: &Program,
        mem: &mut SparseMemory,
        coproc: &mut dyn CoProcessor,
        tracer: &mut dyn Tracer,
    ) -> SimReport {
        let kernel = program.kernel.name.clone();
        let coproc_name = coproc.name().to_string();
        let streams = [Stream::single(StreamLaunch::new(program.clone()))];
        let rep =
            self.run_streams_traced(&streams, mem, vec![coproc], PlacementPolicy::Greedy, tracer);
        SimReport {
            kernel,
            coproc: coproc_name,
            cycles: rep.cycles,
            stats: rep.stats,
            mem: rep.mem,
        }
    }

    /// Run multiple kernel streams concurrently (untraced). See
    /// [`GpuSim::run_streams_traced`].
    ///
    /// # Panics
    ///
    /// Panics if any program is malformed, `coprocs` does not hold one
    /// coprocessor per launch, or the run exceeds `cfg.max_cycles`.
    pub fn run_streams(
        &self,
        streams: &[Stream],
        mem: &mut SparseMemory,
        coprocs: Vec<&mut dyn CoProcessor>,
        policy: PlacementPolicy,
    ) -> StreamReport {
        self.run_streams_traced(streams, mem, coprocs, policy, &mut NullTracer)
    }

    /// Run multiple kernel streams concurrently. The command processor
    /// dispatches CTAs of each stream's head launch onto SMs under the
    /// full occupancy model (CTA slots, warp slots, shared memory,
    /// register file); streams are in-order internally and compete for
    /// SMs against each other. `coprocs` holds one coprocessor per kernel
    /// launch, flattened stream-major; per-SM hooks route to the owning
    /// kernel's instance. Deterministic by construction — no host-order
    /// or timing dependence anywhere.
    ///
    /// # Panics
    ///
    /// Panics if any program is malformed, `coprocs` does not hold one
    /// coprocessor per launch, or the run exceeds `cfg.max_cycles`
    /// (deadlock guard).
    pub fn run_streams_traced(
        &self,
        streams: &[Stream],
        mem: &mut SparseMemory,
        mut coprocs: Vec<&mut dyn CoProcessor>,
        policy: PlacementPolicy,
        tracer: &mut dyn Tracer,
    ) -> StreamReport {
        let cfg = &self.cfg;
        // Flatten launches stream-major; position = kernel/launch id.
        let flat: Vec<(usize, usize, &StreamLaunch)> = streams
            .iter()
            .enumerate()
            .flat_map(|(s, st)| st.launches.iter().enumerate().map(move |(i, l)| (s, i, l)))
            .collect();
        assert!(!flat.is_empty(), "no kernel launches");
        assert_eq!(
            coprocs.len(),
            flat.len(),
            "need one coprocessor per kernel launch"
        );
        for (_, _, l) in &flat {
            l.program.kernel.validate().expect("invalid kernel");
            // A CTA whose static footprint exceeds an *empty* SM can never
            // be placed; without this check the command processor would
            // retry every cycle until the deadlock guard fires at
            // `max_cycles`. Fail fast with the violated resource instead.
            let kernel = &l.program.kernel;
            let warps = l.program.launch.warps_per_cta();
            let cta_regs = warps * 32 * kernel.regs_per_thread as u32;
            assert!(
                warps as usize <= cfg.max_warps_per_sm,
                "kernel {} can never be placed: CTA needs {} warps, SM has {} slots",
                kernel.name,
                warps,
                cfg.max_warps_per_sm
            );
            assert!(
                cta_regs <= cfg.regfile_per_sm,
                "kernel {} can never be placed: CTA needs {} registers \
                 ({} warps x 32 lanes x {} regs/thread), SM regfile holds {}",
                kernel.name,
                cta_regs,
                warps,
                kernel.regs_per_thread,
                cfg.regfile_per_sm
            );
            assert!(
                kernel.shared_bytes <= cfg.shared_mem_per_sm,
                "kernel {} can never be placed: CTA needs {} shared bytes, SM has {}",
                kernel.name,
                kernel.shared_bytes,
                cfg.shared_mem_per_sm
            );
        }
        let cfgraphs: Vec<Cfg> = flat
            .iter()
            .map(|(_, _, l)| Cfg::build(&l.program.kernel))
            .collect();
        let kctxs: Vec<KernelCtx<'_>> = flat
            .iter()
            .zip(&cfgraphs)
            .map(|((_, _, l), g)| KernelCtx {
                program: &l.program,
                reconvergence: &g.reconvergence,
            })
            .collect();

        let mut fabric = MemoryFabric::new(cfg.mem.clone(), cfg.num_sms);
        let mut sms: Vec<Sm> = (0..cfg.num_sms).map(|i| Sm::new(i, cfg)).collect();
        let nk = flat.len();
        // Per-SM attribution rows: one bin per kernel plus one for
        // unbound-SM cycles, so the issue-slot invariant holds on the fold.
        // Sharded by SM so the threaded compute phase writes only its own
        // rows; all reports are sums over rows, which are placement- and
        // thread-count-invariant (u64 addition is associative).
        let mut rows: Vec<Vec<SimStats>> = vec![vec![SimStats::default(); nk + 1]; cfg.num_sms];
        let coproc_names: Vec<String> = coprocs.iter().map(|c| c.name().to_string()).collect();
        for (k, c) in coprocs.iter_mut().enumerate() {
            c.on_kernel_launch(&flat[k].2.program, cfg.num_sms);
        }

        let ctas_by_stream: Vec<Vec<u64>> = streams
            .iter()
            .map(|st| {
                st.launches
                    .iter()
                    .map(|l| l.program.launch.num_ctas())
                    .collect()
            })
            .collect();
        let mut cmdproc = CommandProcessor::new(policy, &ctas_by_stream, cfg.num_sms);

        let mut router = if nk == 1 {
            Router::Single(coprocs.pop().unwrap())
        } else {
            Router::Multi(MultiCoProcessor::new(coprocs, cfg.num_sms))
        };
        let coproc: &mut dyn CoProcessor = match &mut router {
            Router::Single(c) => &mut **c,
            Router::Multi(m) => m,
        };

        // Idle-cycle fast-forward (probe-and-multiply): after a cycle in
        // which nothing progressed, jump straight to the next cycle at
        // which anything *can* progress, crediting the skipped cycles'
        // per-cycle counters in bulk. Exact by construction — a
        // no-progress cycle is a pure function of state that does not
        // change, so each skipped cycle would have repeated it verbatim.
        // Disabled while tracing (skipped cycles would drop their per-cycle
        // stall events from the trace).
        let ff_enabled = cfg.fast_forward && !tracer.enabled();
        // The threaded runner is only engaged for untraced runs (like
        // fast-forward, tracing byte-layout depends on per-cycle event
        // order within a phase, which a worker pool does not preserve).
        // More threads than SMs would only add idle barrier participants.
        let threads = cfg.threads.max(1).min(cfg.num_sms);
        let mut pool = if threads > 1 && !tracer.enabled() {
            Some(crate::par::WorkerPool::new(threads))
        } else {
            None
        };
        // Per-SM routing snapshots, refreshed after each dispatch round:
        // which attribution bin and which kernel context each SM uses this
        // cycle. Stable for the whole cycle (bindings only change during
        // dispatch), so the compute phase can read them from any thread.
        let mut bins_of: Vec<usize> = vec![nk; cfg.num_sms];
        let mut kctx_of: Vec<usize> = vec![0; cfg.num_sms];
        let mut prev_quiet = false;
        let mut now = 0u64;

        loop {
            cmdproc.dispatch(now, cfg, &mut sms, &kctxs, coproc, &mut rows, tracer);
            for i in 0..cfg.num_sms {
                bins_of[i] = cmdproc.binding(i).unwrap_or(nk);
                kctx_of[i] = cmdproc.binding(i).unwrap_or(0);
            }

            // Cheap progress fingerprint (a handful of u64 reads). The full
            // statistics snapshot needed to credit skipped cycles is only
            // taken when the *previous* cycle was already quiet: a quiet
            // cycle is a pure function of state that did not change, so the
            // cycle after it repeats it verbatim and can serve as the
            // measured template. Busy phases therefore pay almost nothing
            // for the probe; idle stretches pay one extra stepped cycle.
            let prog_before =
                fabric.progress_count() + sms.iter().map(Sm::progress_count).sum::<u64>();
            let fp_before = fingerprint(&rows);
            let ff_probe = if ff_enabled && prev_quiet {
                Some((rows.clone(), fabric.stats()))
            } else {
                None
            };

            let need_pbuf = coproc.wants_pbuf_stats(now);
            if let Some(pool) = &mut pool {
                // Threaded cycle: partitions, then ports, then SM compute,
                // each phase sharded across the pool with a barrier between
                // (the coordinator works its own shard too). Determinism:
                // each phase touches only per-unit state, and the fabric
                // merge walks partitions in index order regardless of which
                // thread ran them.
                pool.cycle(
                    now,
                    need_pbuf,
                    cfg,
                    &mut sms,
                    &mut rows,
                    &bins_of,
                    &kctx_of,
                    &kctxs,
                    &mut fabric,
                    coproc,
                );
            } else {
                fabric.cycle_traced(now, tracer);
                let pbuf = need_pbuf.then(|| fabric.pbuf_stats());
                for i in 0..cfg.num_sms {
                    let mut port = fabric.port_view(i);
                    sms[i].cycle_compute(
                        now,
                        cfg,
                        &kctxs[kctx_of[i]],
                        &mut port,
                        coproc,
                        &mut rows[i][bins_of[i]],
                        pbuf,
                        tracer,
                    );
                }
            }
            // Replay phase: single-threaded, SM-index order — the only
            // point where SMs touch shared state (fabric admission, the
            // global memory image), so request order is the serial order.
            for i in 0..cfg.num_sms {
                sms[i].cycle_replay(
                    now,
                    mem,
                    &mut fabric,
                    coproc,
                    &mut rows[i][bins_of[i]],
                    tracer,
                );
            }
            for (i, s) in sms.iter_mut().enumerate() {
                let retired = s.retire_ctas(coproc, tracer, now);
                if retired > 0 {
                    cmdproc.note_retired(i, retired as u64, now);
                }
            }

            let done = cmdproc.all_complete()
                && sms.iter().all(|s| s.idle())
                && fabric.quiescent()
                && coproc.quiescent();
            if done {
                break;
            }

            // "Quiet" = no SM/fabric progress event and no coprocessor work
            // (issue slots, AEU/PEU expansions, CTA launches all surface as
            // stats deltas).
            let quiet = ff_enabled
                && prog_before
                    == fabric.progress_count() + sms.iter().map(Sm::progress_count).sum::<u64>()
                && fp_before == fingerprint(&rows);
            if quiet {
                if let Some((rows_before, mem_before)) = ff_probe {
                    let wake = sms
                        .iter()
                        .map(|s| s.next_event_time(now))
                        .chain([fabric.next_event_time(now), coproc.ff_wake(now)])
                        .min()
                        .unwrap()
                        .min(cfg.max_cycles);
                    // Jump so the `now += 1` below lands exactly on `wake`;
                    // clamping at `max_cycles` preserves the deadlock guard
                    // (a wake of `u64::MAX` means nothing can ever happen).
                    if wake > now + 1 {
                        let k = wake - 1 - now;
                        for (row, before) in rows.iter_mut().zip(&rows_before) {
                            for (b, bb) in row.iter_mut().zip(before) {
                                b.ff_credit(bb, k);
                            }
                        }
                        fabric.ff_credit(&mem_before, k);
                        now += k;
                    }
                }
            }
            prev_quiet = quiet;

            now += 1;
            if now >= cfg.max_cycles {
                drop(pool);
                panic!(
                    "{}",
                    deadlock_report(now, cfg, &sms, &fabric, coproc, &cmdproc, &flat)
                );
            }
        }
        drop(pool);

        // The loop above executed SM cycles for now = 0..=now inclusive.
        let mut stats = SimStats::default();
        for b in rows.iter().flatten() {
            stats.accumulate(b);
        }
        stats.cycles = now + 1;
        let expected_slots = stats.cycles * cfg.schedulers as u64 * cfg.num_sms as u64;
        assert_eq!(
            stats.issue_slots_total(),
            expected_slots,
            "issue-slot accounting broken: buckets {:?} must sum to \
             cycles({}) x schedulers({}) x SMs({}) for kernel={} coproc={}",
            stats.issue_slot_buckets(),
            stats.cycles,
            cfg.schedulers,
            cfg.num_sms,
            flat[0].2.program.kernel.name,
            coproc.name()
        );
        let per_kernel = flat
            .iter()
            .enumerate()
            .map(|(k, (s, i, l))| {
                let st = cmdproc.state(k);
                let first = st.first_cycle.unwrap_or(0);
                let done = st.done_cycle.unwrap_or(first);
                let mut kstats = SimStats::default();
                for row in &rows {
                    kstats.accumulate(&row[k]);
                }
                kstats.cycles = done - first + 1;
                KernelReport {
                    label: l.label.clone(),
                    kernel: l.program.kernel.name.clone(),
                    coproc: coproc_names[k].clone(),
                    stream: *s,
                    seq: *i,
                    ctas: st.total_ctas,
                    first_cycle: first,
                    done_cycle: done,
                    stats: kstats,
                }
            })
            .collect();
        StreamReport {
            cycles: stats.cycles,
            stats,
            mem: fabric.stats(),
            per_kernel,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use simt_ir::{AtomOp, CmpOp, KernelBuilder, LaunchConfig, Op, Operand, Space, Width};

    fn small_gpu() -> GpuSim {
        GpuSim::new(GpuConfig::test_small())
    }

    /// B[i] = A[i] + 1 over n elements.
    fn add_one_program(n: u32, a: u64, b: u64) -> Program {
        let mut k = KernelBuilder::new("add_one", 3);
        let tid = k.tid_linear_x();
        let p = k.setp(CmpOp::Ge, Operand::Reg(tid), Operand::Param(2));
        k.bra_if(p, "done");
        let off = k.alu2(Op::Shl, Operand::Reg(tid), Operand::Imm(2));
        let pa = k.alu2(Op::Add, Operand::Param(0), Operand::Reg(off));
        let pb = k.alu2(Op::Add, Operand::Param(1), Operand::Reg(off));
        let v = k.ld(Space::Global, pa, 0, Width::W32);
        let v1 = k.alu2(Op::Add, Operand::Reg(v), Operand::Imm(1));
        k.st(Space::Global, pb, 0, Operand::Reg(v1), Width::W32);
        k.label("done");
        k.exit();
        let kernel = k.build();
        let blocks = n.div_ceil(128);
        Program::new(
            kernel,
            LaunchConfig::linear(blocks, 128, vec![a, b, n as u64]),
        )
        .unwrap()
    }

    #[test]
    fn add_one_end_to_end() {
        let n = 1000u32;
        let a = 0x10_000u64;
        let b = 0x80_000u64;
        let mut mem = SparseMemory::new();
        let input: Vec<u32> = (0..n).collect();
        mem.write_u32_slice(a, &input);
        let prog = add_one_program(n, a, b);
        let report = small_gpu().run(&prog, &mut mem);
        assert!(report.cycles > 100);
        let out = mem.read_u32_vec(b, n as usize);
        for (i, &v) in out.iter().enumerate() {
            assert_eq!(v, i as u32 + 1, "element {i}");
        }
        assert_eq!(report.stats.ctas_launched, 8);
        assert!(report.stats.global_loads > 0);
        assert!(report.stats.warp_instructions > 0);
    }

    #[test]
    fn partial_warp_masks_out_of_range_threads() {
        // n = 40 with 128-thread blocks: only 40 threads do work.
        let n = 40u32;
        let a = 0x1000u64;
        let b = 0x9000u64;
        let mut mem = SparseMemory::new();
        mem.write_u32_slice(a, &vec![7u32; 64]);
        let prog = add_one_program(n, a, b);
        small_gpu().run(&prog, &mut mem);
        let out = mem.read_u32_vec(b, 64);
        for (i, &v) in out.iter().enumerate() {
            if i < 40 {
                assert_eq!(v, 8, "element {i}");
            } else {
                assert_eq!(v, 0, "element {i} must be untouched");
            }
        }
    }

    /// Divergent kernel: odd threads write 1, even threads write 2.
    #[test]
    fn divergent_branches_reconverge() {
        let mut k = KernelBuilder::new("diverge", 1);
        let tid = k.tid_linear_x();
        let bit = k.alu2(Op::And, Operand::Reg(tid), Operand::Imm(1));
        let p = k.setp(CmpOp::Ne, Operand::Reg(bit), Operand::Imm(0));
        let off = k.alu2(Op::Shl, Operand::Reg(tid), Operand::Imm(2));
        let pa = k.alu2(Op::Add, Operand::Param(0), Operand::Reg(off));
        let val = k.reg();
        k.bra_if(p, "odd");
        k.alu_into(val, Op::Mov, &[Operand::Imm(2)]);
        k.bra("store");
        k.label("odd");
        k.alu_into(val, Op::Mov, &[Operand::Imm(1)]);
        k.label("store");
        k.st(Space::Global, pa, 0, Operand::Reg(val), Width::W32);
        k.exit();
        let prog = Program::new(k.build(), LaunchConfig::linear(1, 64, vec![0x4000])).unwrap();
        let mut mem = SparseMemory::new();
        small_gpu().run(&prog, &mut mem);
        let out = mem.read_u32_vec(0x4000, 64);
        for (i, &v) in out.iter().enumerate() {
            assert_eq!(v, if i % 2 == 1 { 1 } else { 2 }, "thread {i}");
        }
    }

    /// Loop kernel: each thread sums i for i in 0..reps.
    #[test]
    fn loop_executes_correct_trip_count() {
        let reps = 10u64;
        let mut k = KernelBuilder::new("loop", 2);
        let tid = k.tid_linear_x();
        let acc = k.mov(Operand::Imm(0));
        let i = k.mov(Operand::Imm(0));
        k.label("top");
        k.alu_into(acc, Op::Add, &[Operand::Reg(acc), Operand::Reg(i)]);
        k.alu_into(i, Op::Add, &[Operand::Reg(i), Operand::Imm(1)]);
        let p = k.setp(CmpOp::Lt, Operand::Reg(i), Operand::Param(1));
        k.bra_if(p, "top");
        let off = k.alu2(Op::Shl, Operand::Reg(tid), Operand::Imm(2));
        let pa = k.alu2(Op::Add, Operand::Param(0), Operand::Reg(off));
        k.st(Space::Global, pa, 0, Operand::Reg(acc), Width::W32);
        k.exit();
        let prog =
            Program::new(k.build(), LaunchConfig::linear(1, 32, vec![0x4000, reps])).unwrap();
        let mut mem = SparseMemory::new();
        small_gpu().run(&prog, &mut mem);
        let expect: u32 = (0..reps as u32).sum();
        for (i, v) in mem.read_u32_vec(0x4000, 32).iter().enumerate() {
            assert_eq!(*v, expect, "thread {i}");
        }
    }

    /// Shared-memory reversal within a block, with a barrier.
    #[test]
    fn shared_memory_and_barrier() {
        let mut k = KernelBuilder::new("reverse", 2);
        k.shared(128 * 4);
        let tid = k.tid_linear_x();
        let off = k.alu2(Op::Shl, Operand::Reg(tid), Operand::Imm(2));
        let pa = k.alu2(Op::Add, Operand::Param(0), Operand::Reg(off));
        let v = k.ld(Space::Global, pa, 0, Width::W32);
        // shared[tid] = v
        let soff = k.alu2(
            Op::Shl,
            Operand::Special(simt_ir::SpecialReg::TidX),
            Operand::Imm(2),
        );
        k.st(Space::Shared, soff, 0, Operand::Reg(v), Width::W32);
        k.bar();
        // v2 = shared[127 - tid]
        let rev = k.alu2(
            Op::Sub,
            Operand::Imm(127),
            Operand::Special(simt_ir::SpecialReg::TidX),
        );
        let roff = k.alu2(Op::Shl, Operand::Reg(rev), Operand::Imm(2));
        let v2 = k.ld(Space::Shared, roff, 0, Width::W32);
        let pb = k.alu2(Op::Add, Operand::Param(1), Operand::Reg(off));
        k.st(Space::Global, pb, 0, Operand::Reg(v2), Width::W32);
        k.exit();
        let prog = Program::new(
            k.build(),
            LaunchConfig::linear(2, 128, vec![0x4000, 0x8000]),
        )
        .unwrap();
        let mut mem = SparseMemory::new();
        let input: Vec<u32> = (0..256).collect();
        mem.write_u32_slice(0x4000, &input);
        let report = small_gpu().run(&prog, &mut mem);
        assert!(report.stats.barriers > 0);
        let out = mem.read_u32_vec(0x8000, 256);
        for blk in 0..2usize {
            for t in 0..128usize {
                assert_eq!(
                    out[blk * 128 + t] as usize,
                    blk * 128 + (127 - t),
                    "block {blk} thread {t}"
                );
            }
        }
    }

    /// Histogram with atomics: counts must be exact.
    #[test]
    fn atomic_histogram() {
        let mut k = KernelBuilder::new("hist", 2);
        let tid = k.tid_linear_x();
        let off = k.alu2(Op::Shl, Operand::Reg(tid), Operand::Imm(2));
        let pa = k.alu2(Op::Add, Operand::Param(0), Operand::Reg(off));
        let v = k.ld(Space::Global, pa, 0, Width::W32);
        let bin = k.alu2(Op::And, Operand::Reg(v), Operand::Imm(7));
        let boff = k.alu2(Op::Shl, Operand::Reg(bin), Operand::Imm(2));
        let pb = k.alu2(Op::Add, Operand::Param(1), Operand::Reg(boff));
        let _old = k.atom(AtomOp::Add, pb, 0, Operand::Imm(1));
        k.exit();
        let prog = Program::new(
            k.build(),
            LaunchConfig::linear(2, 128, vec![0x4000, 0x8000]),
        )
        .unwrap();
        let mut mem = SparseMemory::new();
        let input: Vec<u32> = (0..256).map(|i| i * 37 + 11).collect();
        mem.write_u32_slice(0x4000, &input);
        let report = small_gpu().run(&prog, &mut mem);
        assert!(report.stats.atomic_instructions > 0);
        let hist = mem.read_u32_vec(0x8000, 8);
        let mut expect = [0u32; 8];
        for &x in &input {
            expect[(x & 7) as usize] += 1;
        }
        assert_eq!(hist, expect.to_vec());
        assert_eq!(hist.iter().sum::<u32>(), 256);
    }

    #[test]
    fn perfect_memory_is_faster() {
        let n = 4096u32;
        let a = 0x10_000u64;
        let b = 0x200_000u64;
        let prog = add_one_program(n, a, b);
        let mut mem1 = SparseMemory::new();
        mem1.write_u32_slice(a, &vec![1u32; n as usize]);
        let base = small_gpu().run(&prog, &mut mem1);
        let mut mem2 = SparseMemory::new();
        mem2.write_u32_slice(a, &vec![1u32; n as usize]);
        let gpu_perfect = GpuSim::new(GpuConfig {
            mem: simt_mem::MemConfig::perfect(),
            ..GpuConfig::test_small()
        });
        let perf = gpu_perfect.run(&prog, &mut mem2);
        assert!(
            perf.cycles < base.cycles,
            "perfect {} !< base {}",
            perf.cycles,
            base.cycles
        );
        // A streaming kernel should be strongly memory-bound.
        assert!(base.cycles as f64 / perf.cycles as f64 > 1.5);
    }

    #[test]
    fn issue_slot_buckets_sum_to_total_slots() {
        let n = 1000u32;
        let a = 0x10_000u64;
        let b = 0x80_000u64;
        let mut mem = SparseMemory::new();
        mem.write_u32_slice(a, &(0..n).collect::<Vec<u32>>());
        let prog = add_one_program(n, a, b);
        let report = small_gpu().run(&prog, &mut mem);
        let cfg = GpuConfig::test_small();
        assert_eq!(
            report.stats.issue_slots_total(),
            report.cycles * cfg.schedulers as u64 * cfg.num_sms as u64
        );
        assert!(report.stats.slot_issued > 0);
        // A memory-bound streaming kernel must show scoreboard pressure.
        assert!(report.stats.slot_scoreboard > 0);
        // No coprocessor: the DAC-only buckets stay empty.
        assert_eq!(report.stats.slot_deq_empty, 0);
        assert_eq!(report.stats.slot_deq_data, 0);
        assert_eq!(report.stats.slot_enq_full, 0);
    }

    #[test]
    fn deterministic_across_runs() {
        let prog = add_one_program(512, 0x1000, 0x40_000);
        let mut m1 = SparseMemory::new();
        let mut m2 = SparseMemory::new();
        let r1 = small_gpu().run(&prog, &mut m1);
        let r2 = small_gpu().run(&prog, &mut m2);
        assert_eq!(r1.cycles, r2.cycles);
        assert_eq!(r1.stats, r2.stats);
    }

    #[test]
    fn guarded_instructions_respect_predicates() {
        // if tid < 16: out[tid] = 5 else out[tid] = 9, via guards not branches.
        let mut k = KernelBuilder::new("guard", 1);
        let tid = k.tid_linear_x();
        let p = k.setp(CmpOp::Lt, Operand::Reg(tid), Operand::Imm(16));
        let off = k.alu2(Op::Shl, Operand::Reg(tid), Operand::Imm(2));
        let pa = k.alu2(Op::Add, Operand::Param(0), Operand::Reg(off));
        k.st_guard(
            Space::Global,
            pa,
            0,
            Operand::Imm(5),
            Width::W32,
            simt_ir::instr::Guard::pos(p),
        );
        k.st_guard(
            Space::Global,
            pa,
            0,
            Operand::Imm(9),
            Width::W32,
            simt_ir::instr::Guard::neg(p),
        );
        k.exit();
        let prog = Program::new(k.build(), LaunchConfig::linear(1, 32, vec![0x4000])).unwrap();
        let mut mem = SparseMemory::new();
        small_gpu().run(&prog, &mut mem);
        let out = mem.read_u32_vec(0x4000, 32);
        for (i, &v) in out.iter().enumerate() {
            assert_eq!(v, if i < 16 { 5 } else { 9 }, "thread {i}");
        }
    }
}

//! Dev helper: scan a seed window and print any differential failures.
fn main() {
    let args: Vec<String> = std::env::args().collect();
    let seed: u64 = args.get(1).map(|s| s.parse().unwrap()).unwrap_or(1);
    let count: u64 = args.get(2).map(|s| s.parse().unwrap()).unwrap_or(100);
    let cfg = simt_fuzz::DiffConfig::default();
    let mut failures = 0;
    for index in 0..count {
        let w = simt_fuzz::gen_spec(seed, index).build_workload();
        if let Err(f) = simt_fuzz::check_workload(&w, &cfg) {
            eprintln!("index {index}: FAIL {f}");
            failures += 1;
        }
    }
    eprintln!("done: {failures}/{count} failed (seed {seed})");
    std::process::exit(if failures > 0 { 1 } else { 0 });
}

//! Run a subset of the paper's 29-benchmark suite under all four designs
//! (baseline / CAE / MTA / DAC) in parallel and print a Figure-16-style
//! comparison.
//!
//! ```sh
//! cargo run --release --example benchmark_sweep [ABBR ...]
//! ```
//!
//! With no arguments, runs a representative mix: one streaming kernel
//! (LIB), one stencil (ST), one indirect graph kernel (BFS — DAC's worst
//! case), and one compute kernel (MQ).

use dac_gpu::harness::{suite_jobs, DesignPoint, Harness, Overrides};
use dac_gpu::workloads::{benchmark, Design};

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let abbrs: Vec<String> = if args.is_empty() {
        ["LIB", "ST", "BFS", "MQ"]
            .iter()
            .map(|s| s.to_string())
            .collect()
    } else {
        args
    };

    let mut workloads = Vec::new();
    for abbr in &abbrs {
        match benchmark(abbr, 1) {
            Some(w) => workloads.push(w),
            None => eprintln!("unknown benchmark {abbr} (see Table 2 for abbreviations)"),
        }
    }

    // One job per (workload, design); the harness runs them across all
    // cores and returns results in job order.
    let jobs = suite_jobs(workloads, 1, &DesignPoint::HW_ALL, &Overrides::default());
    let workers = std::thread::available_parallelism().map_or(1, |n| n.get());
    let out = Harness::new(workers).run(&jobs);

    println!(
        "{:<6} {:>10} {:>8} {:>8} {:>8}  {:>8}",
        "bench", "base(cyc)", "CAE", "MTA", "DAC", "decoup%"
    );
    for (chunk, results) in jobs.chunks(4).zip(out.results.chunks(4)) {
        let w = chunk[0].workload().expect("suite_jobs builds bench jobs");
        let base = &results[0];
        // The output digest must match across designs — decoupling may
        // reorder work but never change what the program computes.
        for (job, r) in chunk.iter().zip(results).skip(1) {
            assert_eq!(
                r.output_digest,
                base.output_digest,
                "{}: {} changed outputs",
                w.abbr,
                job.point.name()
            );
        }
        let speedup = |i: usize| base.report.cycles as f64 / results[i].report.cycles as f64;
        let dac = Design::ALL.iter().position(|&d| d == Design::Dac).unwrap();
        println!(
            "{:<6} {:>10} {:>7.2}x {:>7.2}x {:>7.2}x  {:>7.1}%",
            w.abbr,
            base.report.cycles,
            speedup(1),
            speedup(2),
            speedup(3),
            100.0 * results[dac].report.stats.decoupled_load_fraction()
        );
    }
    println!("\n(all outputs verified bit-identical across designs)");
}

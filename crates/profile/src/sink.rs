//! An online-aggregating tracer: histograms and per-client tallies are
//! updated as events arrive, so profiling never retains (and never drops)
//! events regardless of run length.

use crate::hist::Histogram;
use simt_trace::{TraceClient, TraceEvent, Tracer};

fn client_idx(c: TraceClient) -> usize {
    match c {
        TraceClient::Lsu => 0,
        TraceClient::Dac => 1,
        TraceClient::Mta => 2,
    }
}

/// Reporting names for the per-client arrays, in index order.
pub const CLIENT_NAMES: [&str; 3] = ["lsu", "dac", "mta"];

/// A [`Tracer`] that folds the event stream into fixed-size metric
/// aggregates on the fly.
#[derive(Debug, Clone)]
pub struct ProfileSink {
    /// Latencies at or below this threshold are L1/prefetch-buffer hits
    /// (their latency is a configured constant); they are tallied in
    /// [`ProfileSink::fast_returns`] instead of the miss histograms.
    l1_cutoff: u64,
    /// Request→response latency per client, misses only (see `l1_cutoff`).
    pub miss_latency: [Histogram; 3],
    /// Responses that returned within the L1/pbuf hit window, per client.
    pub fast_returns: [u64; 3],
    /// Coalescer transactions per warp memory access.
    pub coalesce_txns: Histogram,
    /// ATQ occupancy per (cycle, SM) sample.
    pub atq: Histogram,
    /// PWAQ (expanded address records) occupancy per sample.
    pub pwaq: Histogram,
    /// PWPQ (predicate bit-vectors) occupancy per sample.
    pub pwpq: Histogram,
    /// Affine run-ahead distance per sample.
    pub runahead: Histogram,
    /// L2 hits by requesting client.
    pub l2_hits: [u64; 3],
    /// L2 misses by requesting client.
    pub l2_misses: [u64; 3],
    /// DRAM row-buffer hits observed.
    pub dram_row_hits: u64,
    /// DRAM row-buffer misses observed.
    pub dram_row_misses: u64,
    /// Total events consumed.
    pub events: u64,
}

impl ProfileSink {
    /// A sink whose L1-hit cutoff is `l1_cutoff` cycles (responses faster
    /// than or equal to this count as cache hits, not misses).
    pub fn new(l1_cutoff: u64) -> Self {
        ProfileSink {
            l1_cutoff,
            miss_latency: [
                Histogram::new(32, 64),
                Histogram::new(32, 64),
                Histogram::new(32, 64),
            ],
            fast_returns: [0; 3],
            coalesce_txns: Histogram::new(1, 33),
            atq: Histogram::new(1, 64),
            pwaq: Histogram::new(2, 64),
            pwpq: Histogram::new(2, 64),
            runahead: Histogram::new(4, 64),
            l2_hits: [0; 3],
            l2_misses: [0; 3],
            dram_row_hits: 0,
            dram_row_misses: 0,
            events: 0,
        }
    }

    /// L2 hit rate for one client (by [`CLIENT_NAMES`] index), in [0, 1].
    pub fn l2_hit_rate(&self, client: usize) -> f64 {
        let total = self.l2_hits[client] + self.l2_misses[client];
        if total == 0 {
            0.0
        } else {
            self.l2_hits[client] as f64 / total as f64
        }
    }
}

impl Tracer for ProfileSink {
    fn enabled(&self) -> bool {
        true
    }

    fn emit(&mut self, _cycle: u64, event: TraceEvent) {
        self.events += 1;
        match event {
            TraceEvent::MemResp {
                client, latency, ..
            } => {
                let c = client_idx(client);
                if latency <= self.l1_cutoff {
                    self.fast_returns[c] += 1;
                } else {
                    self.miss_latency[c].record(latency);
                }
            }
            TraceEvent::Coalesce { txns, .. } => self.coalesce_txns.record(txns as u64),
            TraceEvent::QueueSample {
                atq,
                pwaq,
                pwpq,
                runahead,
                ..
            } => {
                self.atq.record(atq as u64);
                self.pwaq.record(pwaq as u64);
                self.pwpq.record(pwpq as u64);
                self.runahead.record(runahead as u64);
            }
            TraceEvent::L2Access { hit, client, .. } => {
                let c = client_idx(client);
                if hit {
                    self.l2_hits[c] += 1;
                } else {
                    self.l2_misses[c] += 1;
                }
            }
            TraceEvent::DramAccess { row_hit, .. } => {
                if row_hit {
                    self.dram_row_hits += 1;
                } else {
                    self.dram_row_misses += 1;
                }
            }
            _ => {}
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn sink_aggregates_by_event_kind() {
        let mut s = ProfileSink::new(30);
        s.emit(
            1,
            TraceEvent::MemResp {
                sm: 0,
                line: 0,
                client: TraceClient::Lsu,
                token: 0,
                latency: 20, // within cutoff: an L1 hit
            },
        );
        s.emit(
            2,
            TraceEvent::MemResp {
                sm: 0,
                line: 0,
                client: TraceClient::Lsu,
                token: 1,
                latency: 400,
            },
        );
        s.emit(
            3,
            TraceEvent::Coalesce {
                sm: 0,
                warp: 0,
                pc: 0,
                lanes: 32,
                txns: 5,
                store: false,
            },
        );
        s.emit(
            4,
            TraceEvent::L2Access {
                partition: 0,
                line: 0,
                hit: true,
                client: TraceClient::Mta,
            },
        );
        s.emit(
            4,
            TraceEvent::L2Access {
                partition: 0,
                line: 128,
                hit: false,
                client: TraceClient::Mta,
            },
        );
        s.emit(
            5,
            TraceEvent::DramAccess {
                partition: 0,
                line: 128,
                row_hit: false,
                write: false,
            },
        );
        assert_eq!(s.fast_returns[0], 1);
        assert_eq!(s.miss_latency[0].count(), 1);
        assert_eq!(s.miss_latency[0].max(), 400);
        assert_eq!(s.coalesce_txns.p50(), 5);
        assert!((s.l2_hit_rate(2) - 0.5).abs() < 1e-12);
        assert_eq!(s.dram_row_misses, 1);
        assert_eq!(s.events, 6);
    }
}

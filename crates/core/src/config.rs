//! DAC hardware configuration (paper Table 1 and §4.8).

/// Sizes and costs of DAC's added hardware.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct DacConfig {
    /// Affine Tuple Queue entries per SM (Table 1: 24).
    pub atq_entries: usize,
    /// Per-Warp Address Queue entries per SM, partitioned among *resident*
    /// warps (Table 1: 192 entries — 4 per warp at the 48-warp maximum).
    pub pwaq_total: usize,
    /// Per-Warp Predicate Queue entries per SM, partitioned like the PWAQ
    /// (Table 1: 192).
    pub pwpq_total: usize,
    /// Support divergent affine tuples (§4.6) — disabling is the ablation
    /// that degrades DAC to convergent-only decoupling.
    pub divergent_tuples: bool,
    /// Lock early-requested lines in L1 (§4.2) — disabling turns early
    /// requests into plain (evictable) requests, an ablation knob.
    pub lock_lines: bool,
}

impl DacConfig {
    /// The paper's configuration.
    pub fn paper() -> Self {
        DacConfig {
            atq_entries: 24,
            pwaq_total: 192,
            pwpq_total: 192,
            divergent_tuples: true,
            lock_lines: true,
        }
    }

    /// Per-warp queue capacity when `resident` warps occupy the SM.
    pub fn per_warp_cap(total: usize, resident: usize) -> usize {
        (total / resident.max(1)).max(1)
    }
}

impl Default for DacConfig {
    fn default() -> Self {
        Self::paper()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn paper_sizes_match_table1() {
        let c = DacConfig::paper();
        assert_eq!(c.atq_entries, 24);
        assert_eq!(c.pwaq_total, 192);
        assert_eq!(c.pwpq_total, 192);
        // At the 48-warp maximum the partition is Table 1's 4 per warp.
        assert_eq!(DacConfig::per_warp_cap(c.pwaq_total, 48), 4);
        assert!(c.divergent_tuples);
        assert!(c.lock_lines);
    }

    #[test]
    fn partition_adapts_to_occupancy() {
        assert_eq!(DacConfig::per_warp_cap(192, 16), 12);
        assert_eq!(DacConfig::per_warp_cap(192, 0), 192);
        assert_eq!(DacConfig::per_warp_cap(2, 48), 1);
    }
}

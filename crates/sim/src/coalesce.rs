//! The memory-access coalescer: per-lane addresses → unique line
//! transactions.

/// One coalesced transaction: a cache line and the lanes it serves.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Transaction {
    /// Line-aligned address.
    pub line: u64,
    /// Lanes whose accesses fall in this line.
    pub lanes: u32,
}

/// Coalesce per-lane byte addresses (`None` = inactive lane) into unique
/// line transactions, in first-appearance order (deterministic).
pub fn coalesce(addrs: &[Option<u64>], line_bytes: u64) -> Vec<Transaction> {
    let mut out = Vec::new();
    coalesce_into(addrs, line_bytes, &mut out);
    out
}

/// [`coalesce`] into a caller-owned buffer (cleared first), so the hot
/// path can reuse one allocation across instructions.
pub fn coalesce_into(addrs: &[Option<u64>], line_bytes: u64, out: &mut Vec<Transaction>) {
    debug_assert!(line_bytes.is_power_of_two());
    out.clear();
    for (lane, addr) in addrs.iter().enumerate() {
        let Some(a) = addr else { continue };
        let line = a & !(line_bytes - 1);
        match out.iter_mut().find(|t| t.line == line) {
            Some(t) => t.lanes |= 1 << lane,
            None => out.push(Transaction {
                line,
                lanes: 1 << lane,
            }),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn unit_stride_coalesces_to_one_line() {
        let addrs: Vec<Option<u64>> = (0..32).map(|i| Some(0x1000 + 4 * i)).collect();
        let t = coalesce(&addrs, 128);
        assert_eq!(t.len(), 1);
        assert_eq!(t[0].line, 0x1000);
        assert_eq!(t[0].lanes, u32::MAX);
    }

    #[test]
    fn stride_two_touches_two_lines() {
        let addrs: Vec<Option<u64>> = (0..32).map(|i| Some(0x1000 + 8 * i)).collect();
        let t = coalesce(&addrs, 128);
        assert_eq!(t.len(), 2);
        assert_eq!(t[0].line, 0x1000);
        assert_eq!(t[1].line, 0x1080);
        assert_eq!(t[0].lanes, 0x0000_FFFF);
        assert_eq!(t[1].lanes, 0xFFFF_0000);
    }

    #[test]
    fn scattered_accesses_one_line_each() {
        let addrs: Vec<Option<u64>> = (0..32).map(|i| Some(0x10_0000 * i)).collect();
        let t = coalesce(&addrs, 128);
        assert_eq!(t.len(), 32);
    }

    #[test]
    fn inactive_lanes_skipped() {
        let mut addrs: Vec<Option<u64>> = vec![None; 32];
        addrs[3] = Some(0x80);
        addrs[9] = Some(0x84);
        let t = coalesce(&addrs, 128);
        assert_eq!(t.len(), 1);
        assert_eq!(t[0].lanes, (1 << 3) | (1 << 9));
    }

    #[test]
    fn empty_when_all_inactive() {
        let addrs = vec![None; 32];
        assert!(coalesce(&addrs, 128).is_empty());
    }

    #[test]
    fn misaligned_same_line_merges() {
        let addrs = vec![Some(0x100u64), Some(0x17F), Some(0x180)];
        let t = coalesce(&addrs, 128);
        assert_eq!(t.len(), 2);
        assert_eq!(t[0].line, 0x100);
        assert_eq!(t[0].lanes, 0b011);
        assert_eq!(t[1].line, 0x180);
    }
}

//! Chrome `trace_event` JSON exporter.
//!
//! Produces the "JSON Object Format" understood by `chrome://tracing` and
//! Perfetto: `{"traceEvents": [...], ...}`. Mapping:
//!
//! * one simulated cycle = one microsecond of trace time (`ts` is the raw
//!   cycle number — timeline positions read directly as cycles);
//! * `pid` = SM index (L2 partitions use `pid = 1000 + partition` so they
//!   get their own process lane);
//! * `tid` = warp slot for pipeline events, a per-client lane for memory
//!   lifecycle events;
//! * request lifecycles ([`TraceEvent::MemResp`] with its latency) become
//!   duration events (`ph:"X"`) spanning acceptance → delivery; counters
//!   ([`TraceEvent::QueueSample`]) become counter events (`ph:"C"`);
//!   everything else is an instant (`ph:"i"`).

use crate::event::{TimedEvent, TraceEvent};
use std::fmt::Write as _;

/// Escape `s` as the *contents* of a JSON string literal (no surrounding
/// quotes). Handles quotes, backslashes, and all control characters; any
/// non-ASCII scalar passes through as UTF-8 (valid JSON).
pub fn escape_json(s: &str) -> String {
    let mut out = String::with_capacity(s.len());
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            '\u{08}' => out.push_str("\\b"),
            '\u{0c}' => out.push_str("\\f"),
            c if (c as u32) < 0x20 => {
                let _ = write!(out, "\\u{:04x}", c as u32);
            }
            c => out.push(c),
        }
    }
    out
}

// Memory-lane tids: keep warp tids (0..max_warps) clear of lifecycle lanes.
fn client_tid(client: crate::event::TraceClient) -> u32 {
    match client {
        crate::event::TraceClient::Lsu => 900,
        crate::event::TraceClient::Dac => 901,
        crate::event::TraceClient::Mta => 902,
    }
}

fn push_event(out: &mut String, fields: std::fmt::Arguments) {
    if out.ends_with('}') {
        out.push_str(",\n");
    }
    let _ = write!(out, "{fields}");
}

/// Render retained events as a complete Chrome trace JSON document.
/// `dropped` (from the ring sink) is recorded in metadata so a truncated
/// timeline is visibly truncated.
pub fn export<'a>(events: impl Iterator<Item = &'a TimedEvent>, dropped: u64) -> String {
    let mut out = String::new();
    out.push_str("{\"traceEvents\": [\n");
    for te in events {
        let ts = te.cycle;
        match te.event {
            TraceEvent::WarpIssue {
                sm,
                warp,
                pc,
                active,
            } => push_event(
                &mut out,
                format_args!(
                    "{{\"name\": \"issue pc={pc}\", \"cat\": \"warp\", \"ph\": \"i\", \
                     \"s\": \"t\", \"ts\": {ts}, \"pid\": {sm}, \"tid\": {warp}, \
                     \"args\": {{\"pc\": {pc}, \"active\": {active}}}}}"
                ),
            ),
            TraceEvent::WarpStall {
                sm,
                warp,
                pc,
                cause,
            } => push_event(
                &mut out,
                format_args!(
                    "{{\"name\": \"stall:{}\", \"cat\": \"warp\", \"ph\": \"i\", \
                     \"s\": \"t\", \"ts\": {ts}, \"pid\": {sm}, \"tid\": {warp}, \
                     \"args\": {{\"pc\": {pc}}}}}",
                    cause.name()
                ),
            ),
            TraceEvent::StackDepth {
                sm,
                warp,
                pc,
                depth,
                push,
            } => push_event(
                &mut out,
                format_args!(
                    "{{\"name\": \"simt-stack {}\", \"cat\": \"warp\", \"ph\": \"i\", \
                     \"s\": \"t\", \"ts\": {ts}, \"pid\": {sm}, \"tid\": {warp}, \
                     \"args\": {{\"pc\": {pc}, \"depth\": {depth}}}}}",
                    if push { "push" } else { "pop" }
                ),
            ),
            TraceEvent::Coalesce {
                sm,
                warp,
                pc,
                lanes,
                txns,
                store,
            } => push_event(
                &mut out,
                format_args!(
                    "{{\"name\": \"coalesce {}\", \"cat\": \"mem\", \"ph\": \"i\", \
                     \"s\": \"t\", \"ts\": {ts}, \"pid\": {sm}, \"tid\": {warp}, \
                     \"args\": {{\"pc\": {pc}, \"lanes\": {lanes}, \"txns\": {txns}}}}}",
                    if store { "st" } else { "ld" }
                ),
            ),
            TraceEvent::MemReq {
                sm,
                line,
                kind,
                client,
                token,
            } => push_event(
                &mut out,
                format_args!(
                    "{{\"name\": \"req {}\", \"cat\": \"mem\", \"ph\": \"i\", \
                     \"s\": \"t\", \"ts\": {ts}, \"pid\": {sm}, \"tid\": {tid}, \
                     \"args\": {{\"line\": {line}, \"client\": \"{client}\", \
                     \"token\": {token}}}}}",
                    kind.name(),
                    tid = client_tid(client),
                    client = client.name(),
                ),
            ),
            TraceEvent::MemStall {
                sm,
                line,
                client,
                cause,
            } => push_event(
                &mut out,
                format_args!(
                    "{{\"name\": \"port-stall:{}\", \"cat\": \"mem\", \"ph\": \"i\", \
                     \"s\": \"t\", \"ts\": {ts}, \"pid\": {sm}, \"tid\": {tid}, \
                     \"args\": {{\"line\": {line}, \"client\": \"{client}\"}}}}",
                    cause.name(),
                    tid = client_tid(client),
                    client = client.name(),
                ),
            ),
            TraceEvent::L2Access {
                partition,
                line,
                hit,
                client,
            } => push_event(
                &mut out,
                format_args!(
                    "{{\"name\": \"l2-{}\", \"cat\": \"mem\", \"ph\": \"i\", \
                     \"s\": \"t\", \"ts\": {ts}, \"pid\": {pid}, \"tid\": 0, \
                     \"args\": {{\"line\": {line}, \"client\": \"{client}\"}}}}",
                    if hit { "hit" } else { "miss" },
                    pid = 1000 + partition,
                    client = client.name(),
                ),
            ),
            TraceEvent::DramAccess {
                partition,
                line,
                row_hit,
                write,
            } => push_event(
                &mut out,
                format_args!(
                    "{{\"name\": \"dram-row-{}\", \"cat\": \"mem\", \"ph\": \"i\", \
                     \"s\": \"t\", \"ts\": {ts}, \"pid\": {pid}, \"tid\": 1, \
                     \"args\": {{\"line\": {line}, \"write\": {write}}}}}",
                    if row_hit { "hit" } else { "miss" },
                    pid = 1000 + partition,
                ),
            ),
            TraceEvent::Fill { sm, line } => push_event(
                &mut out,
                format_args!(
                    "{{\"name\": \"fill\", \"cat\": \"mem\", \"ph\": \"i\", \
                     \"s\": \"t\", \"ts\": {ts}, \"pid\": {sm}, \"tid\": 950, \
                     \"args\": {{\"line\": {line}}}}}"
                ),
            ),
            TraceEvent::MemResp {
                sm,
                line,
                client,
                token,
                latency,
            } => push_event(
                &mut out,
                // A duration event spanning the request's whole lifecycle:
                // starts at acceptance (ts - latency), ends at delivery.
                format_args!(
                    "{{\"name\": \"{client} line={line:#x}\", \"cat\": \"mem\", \
                     \"ph\": \"X\", \"ts\": {t0}, \"dur\": {dur}, \"pid\": {sm}, \
                     \"tid\": {tid}, \"args\": {{\"token\": {token}, \
                     \"latency\": {latency}}}}}",
                    client = client.name(),
                    t0 = ts.saturating_sub(latency),
                    dur = latency.max(1),
                    tid = client_tid(client),
                ),
            ),
            TraceEvent::QueueSample {
                sm,
                atq,
                pwaq,
                pwpq,
                runahead,
            } => {
                push_event(
                    &mut out,
                    format_args!(
                        "{{\"name\": \"dac-queues\", \"cat\": \"dac\", \"ph\": \"C\", \
                         \"ts\": {ts}, \"pid\": {sm}, \
                         \"args\": {{\"atq\": {atq}, \"pwaq\": {pwaq}, \
                         \"pwpq\": {pwpq}}}}}"
                    ),
                );
                push_event(
                    &mut out,
                    format_args!(
                        "{{\"name\": \"dac-runahead\", \"cat\": \"dac\", \"ph\": \"C\", \
                         \"ts\": {ts}, \"pid\": {sm}, \
                         \"args\": {{\"runahead\": {runahead}}}}}"
                    ),
                );
            }
            TraceEvent::AffineIssue { sm, slot, pc } => push_event(
                &mut out,
                format_args!(
                    "{{\"name\": \"affine pc={pc}\", \"cat\": \"dac\", \"ph\": \"i\", \
                     \"s\": \"t\", \"ts\": {ts}, \"pid\": {sm}, \"tid\": 903, \
                     \"args\": {{\"slot\": {slot}}}}}"
                ),
            ),
            TraceEvent::Expand { sm, warp, pred } => push_event(
                &mut out,
                format_args!(
                    "{{\"name\": \"{}\", \"cat\": \"dac\", \"ph\": \"i\", \
                     \"s\": \"t\", \"ts\": {ts}, \"pid\": {sm}, \"tid\": 904, \
                     \"args\": {{\"warp\": {warp}}}}}",
                    if pred { "peu-expand" } else { "aeu-expand" }
                ),
            ),
            TraceEvent::CtaLaunch {
                sm,
                slot,
                kernel,
                cta,
            } => push_event(
                &mut out,
                format_args!(
                    "{{\"name\": \"cta-launch\", \"cat\": \"cta\", \"ph\": \"i\", \
                     \"s\": \"t\", \"ts\": {ts}, \"pid\": {sm}, \"tid\": 905, \
                     \"args\": {{\"slot\": {slot}, \"kernel\": {kernel}, \
                     \"cta\": {cta}}}}}"
                ),
            ),
            TraceEvent::CtaRetire { sm, slot, kernel } => push_event(
                &mut out,
                format_args!(
                    "{{\"name\": \"cta-retire\", \"cat\": \"cta\", \"ph\": \"i\", \
                     \"s\": \"t\", \"ts\": {ts}, \"pid\": {sm}, \"tid\": 905, \
                     \"args\": {{\"slot\": {slot}, \"kernel\": {kernel}}}}}"
                ),
            ),
        }
    }
    let _ = write!(
        out,
        "\n], \"displayTimeUnit\": \"ns\", \
         \"otherData\": {{\"schema\": \"{}\", \"dropped\": {dropped}}}}}\n",
        escape_json("dac-trace/v1 (chrome)"),
    );
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::event::{StallCause, TraceClient, TraceEvent, TraceReqKind};

    #[test]
    fn escaping_covers_specials_and_controls() {
        assert_eq!(escape_json("plain"), "plain");
        assert_eq!(escape_json("a\"b"), "a\\\"b");
        assert_eq!(escape_json("back\\slash"), "back\\\\slash");
        assert_eq!(escape_json("nl\ncr\rtab\t"), "nl\\ncr\\rtab\\t");
        assert_eq!(escape_json("\u{08}\u{0c}"), "\\b\\f");
        assert_eq!(escape_json("\u{01}\u{1f}"), "\\u0001\\u001f");
        // Non-ASCII passes through unescaped (valid JSON as UTF-8).
        assert_eq!(escape_json("µops"), "µops");
    }

    #[test]
    fn export_produces_balanced_json() {
        let events = [
            TimedEvent {
                cycle: 5,
                event: TraceEvent::WarpIssue {
                    sm: 0,
                    warp: 3,
                    pc: 7,
                    active: 32,
                },
            },
            TimedEvent {
                cycle: 6,
                event: TraceEvent::WarpStall {
                    sm: 0,
                    warp: 4,
                    pc: 8,
                    cause: StallCause::Scoreboard,
                },
            },
            TimedEvent {
                cycle: 9,
                event: TraceEvent::MemResp {
                    sm: 1,
                    line: 0x1000,
                    client: TraceClient::Dac,
                    token: 42,
                    latency: 120,
                },
            },
            TimedEvent {
                cycle: 10,
                event: TraceEvent::MemReq {
                    sm: 1,
                    line: 0x1080,
                    kind: TraceReqKind::PrefetchLock,
                    client: TraceClient::Dac,
                    token: 43,
                },
            },
            TimedEvent {
                cycle: 10,
                event: TraceEvent::QueueSample {
                    sm: 1,
                    atq: 3,
                    pwaq: 9,
                    pwpq: 2,
                    runahead: 12,
                },
            },
        ];
        let json = export(events.iter(), 7);
        // Structural sanity: balanced braces/brackets, key strings present.
        let opens = json.matches('{').count();
        let closes = json.matches('}').count();
        assert_eq!(opens, closes, "unbalanced braces in:\n{json}");
        assert_eq!(json.matches('[').count(), json.matches(']').count());
        assert!(json.starts_with("{\"traceEvents\": ["));
        assert!(
            json.contains("\"ph\": \"X\""),
            "lifecycle duration event missing"
        );
        assert!(json.contains("\"ph\": \"C\""), "counter event missing");
        assert!(json.contains("\"dropped\": 7"));
        // The duration event back-dates its start by the latency.
        assert!(json.contains("\"ts\": 0, \"dur\": 120") || json.contains("\"dur\": 120"));
    }

    #[test]
    fn export_empty_is_valid() {
        let json = export([].iter(), 0);
        assert!(json.contains("\"traceEvents\": [\n\n]"));
        assert_eq!(json.matches('{').count(), json.matches('}').count());
    }
}

//! Randomized reconvergence properties of the per-warp SIMT stack over
//! *arbitrarily nested* structured control flow (the companion
//! `stack_props.rs` suite covers sequential diamonds against a per-thread
//! reference executor).
//!
//! Programs are generated as random nests of if/else diamonds with optional
//! early exits, then executed on a [`SimtStack`]. The properties:
//!
//! * lanes are never lost or duplicated — every live lane visits every
//!   straight-line instruction on its path exactly once;
//! * after each top-level diamond the stack reconverges to the full
//!   top-level mask;
//! * the stack always terminates with every launched lane exited.

use simt_sim::SimtStack;

/// Deterministic SplitMix64 generator (same construction as
/// `gpu_workloads::kernels::SplitMix64`, duplicated to keep this crate's
/// dev-dependency graph empty).
struct Rng(u64);

impl Rng {
    fn next_u64(&mut self) -> u64 {
        self.0 = self.0.wrapping_add(0x9E37_79B9_7F4A_7C15);
        let mut z = self.0;
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
        z ^ (z >> 31)
    }

    fn next_u32(&mut self) -> u32 {
        (self.next_u64() >> 32) as u32
    }

    fn below(&mut self, n: u64) -> u64 {
        self.next_u64() % n
    }
}

/// One instruction of a generated structured program.
#[derive(Debug, Clone, Copy)]
enum I {
    /// Straight-line work; `join_of_top_level` marks the instruction right
    /// after a top-level diamond, where the full mask must be restored.
    Work { top_level_join: bool },
    /// Conditional branch: lanes in `taken` go to `t`, the rest fall
    /// through; reconvergence at `rpc`.
    Br { taken: u32, t: usize, rpc: usize },
    /// Unconditional jump (ends the not-taken block of a diamond).
    Jmp(usize),
    /// Currently active lanes terminate.
    Exit,
}

/// Emit one block of `n` statements at `depth`; diamonds recurse.
fn gen_block(prog: &mut Vec<I>, rng: &mut Rng, depth: usize, allow_exit: bool) {
    let n = 1 + rng.below(3) as usize;
    for _ in 0..n {
        let roll = rng.below(10);
        if depth < 5 && roll < 4 {
            // Diamond: branch / else-block / jmp-to-join / then-block / join.
            let br = prog.len();
            prog.push(I::Work {
                top_level_join: false,
            }); // placeholder
            gen_block(prog, rng, depth + 1, allow_exit); // not-taken (fallthrough)
            let jmp = prog.len();
            prog.push(I::Work {
                top_level_join: false,
            }); // placeholder
            let then_start = prog.len();
            gen_block(prog, rng, depth + 1, allow_exit); // taken (target)
            let join = prog.len();
            prog[br] = I::Br {
                taken: rng.next_u32(),
                t: then_start,
                rpc: join,
            };
            prog[jmp] = I::Jmp(join);
            prog.push(I::Work {
                top_level_join: depth == 0,
            });
        } else if allow_exit && roll == 9 {
            prog.push(I::Exit);
        } else {
            prog.push(I::Work {
                top_level_join: false,
            });
        }
    }
}

struct Run {
    /// Per-(pc, lane) visit counts.
    visits: Vec<[u32; 32]>,
    /// Lanes that executed some `Exit`.
    exited: u32,
}

/// Execute `prog` from a full stack and check step invariants.
fn run(prog: &[I], init: u32) -> Run {
    let mut s = SimtStack::new(init);
    let mut visits = vec![[0u32; 32]; prog.len()];
    let mut exited = 0u32;
    let mut fuel = 100_000;
    while !s.done() {
        fuel -= 1;
        assert!(fuel > 0, "stack did not terminate");
        let pc = s.pc();
        let active = s.active_mask();
        assert_ne!(active, 0, "active path with no lanes");
        assert_eq!(active & !init, 0, "lanes appeared out of thin air");
        assert_eq!(
            active & s.exited_mask(),
            0,
            "exited lanes still marked active"
        );
        for (lane, count) in visits[pc].iter_mut().enumerate() {
            if active & (1 << lane) != 0 {
                *count += 1;
            }
        }
        match prog[pc] {
            I::Work { top_level_join } => {
                if top_level_join {
                    assert_eq!(
                        active | exited,
                        init,
                        "pc {pc}: top-level join did not reconverge to the launch mask"
                    );
                }
                s.advance();
            }
            I::Br { taken, t, rpc } => {
                s.branch(taken, t, rpc);
            }
            I::Jmp(t) => {
                s.branch(u32::MAX, t, t);
            }
            I::Exit => {
                exited |= active;
                s.exit();
            }
        }
    }
    assert_eq!(s.exited_mask(), init, "some launched lanes never exited");
    Run { visits, exited }
}

/// Build a random program (final `Exit` appended) for one scenario.
fn gen_program(rng: &mut Rng, allow_exit: bool) -> Vec<I> {
    let mut prog = Vec::new();
    gen_block(&mut prog, rng, 0, allow_exit);
    prog.push(I::Exit);
    prog
}

/// Without early exits: every launched lane walks its unique path — each
/// (pc, lane) visited at most once, the final `Exit` visited by *all*
/// lanes, and full reconvergence after every top-level diamond (asserted
/// inside `run`).
#[test]
fn nested_diamonds_conserve_lanes() {
    let mut rng = Rng(0x57AC_0001);
    for case in 0..400 {
        let prog = gen_program(&mut rng, false);
        let init = match case % 3 {
            0 => u32::MAX,
            1 => 0x0000_FFFF, // partial warp
            _ => {
                let m = rng.next_u32();
                if m == 0 {
                    1
                } else {
                    m
                }
            }
        };
        let r = run(&prog, init);
        for (pc, row) in r.visits.iter().enumerate() {
            for (lane, &count) in row.iter().enumerate() {
                assert!(
                    count <= 1,
                    "case {case}: lane {lane} visited pc {pc} {count} times"
                );
                if init & (1 << lane) == 0 {
                    assert_eq!(count, 0, "case {case}: ghost lane {lane} executed pc {pc}");
                }
            }
        }
        // The final Exit is the program's unique sink: every launched lane
        // must reach it (no lane lost in a diamond).
        let last = prog.len() - 1;
        for lane in 0..32 {
            if init & (1 << lane) != 0 {
                assert_eq!(
                    r.visits[last][lane], 1,
                    "case {case}: lane {lane} never reached the final exit"
                );
            }
        }
    }
}

/// With random early exits: lanes may leave at different depths, but the
/// stack still terminates with every lane exited exactly once and no
/// (pc, lane) pair executed twice.
#[test]
fn random_early_exits_never_leak_lanes() {
    let mut rng = Rng(0x57AC_0002);
    for case in 0..400 {
        let prog = gen_program(&mut rng, true);
        let init = if case % 2 == 0 {
            u32::MAX
        } else {
            let m = rng.next_u32();
            if m == 0 {
                1
            } else {
                m
            }
        };
        let r = run(&prog, init);
        for (pc, row) in r.visits.iter().enumerate() {
            for (lane, &count) in row.iter().enumerate() {
                assert!(
                    count <= 1,
                    "case {case}: lane {lane} visited pc {pc} {count} times"
                );
            }
        }
        // Each launched lane executed exactly one Exit.
        let mut exit_visits = [0u32; 32];
        for (pc, row) in r.visits.iter().enumerate() {
            if matches!(prog[pc], I::Exit) {
                for (lane, &count) in row.iter().enumerate() {
                    exit_visits[lane] += count;
                }
            }
        }
        for (lane, &visits) in exit_visits.iter().enumerate() {
            let want = u32::from(init & (1 << lane) != 0);
            assert_eq!(
                visits, want,
                "case {case}: lane {lane} executed {visits} exits"
            );
        }
        assert_eq!(r.exited, init);
    }
}

/// Stack depth never exceeds nesting + 1 — structured control flow cannot
/// blow the hardware's entry budget.
#[test]
fn depth_tracks_nesting() {
    let mut rng = Rng(0x57AC_0003);
    for _ in 0..100 {
        let prog = gen_program(&mut rng, false);
        let mut s = SimtStack::new(u32::MAX);
        let mut fuel = 100_000;
        let mut max_depth = 0;
        while !s.done() {
            fuel -= 1;
            assert!(fuel > 0);
            max_depth = max_depth.max(s.depth());
            match prog[s.pc()] {
                I::Work { .. } => s.advance(),
                I::Br { taken, t, rpc } => {
                    s.branch(taken, t, rpc);
                }
                I::Jmp(t) => {
                    s.branch(u32::MAX, t, t);
                }
                I::Exit => s.exit(),
            }
        }
        // Generator nests at most 6 deep (depth < 5 recursion guard + top);
        // each divergent diamond adds at most 2 entries above its parent.
        assert!(
            max_depth <= 13,
            "depth {max_depth} exceeds structured bound"
        );
    }
}

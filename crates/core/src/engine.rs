//! The affine warp: per-CTA execution of the affine instruction stream on
//! affine tuples (paper §4.4–§4.6).
//!
//! One [`AffineCtx`] exists per resident CTA; the [`crate::Dac`]
//! coprocessor round-robins one instruction per cycle across contexts,
//! consuming an SM issue slot (the affine warp runs on the SIMT lanes,
//! §4.4). Values are [`AffineVal`]s: single tuples, or divergent tuple
//! sets selected per thread (§4.6). All evaluation is bit-exact with the
//! vector path.

use crate::astack::AffineStack;
use crate::queues::{AtqEntry, DacQueues, WarpExpansion};
use affine::value::DivergentVal;
use affine::{tuple::tuple_op, AffineTuple, AffineVal, PredVal};
use simt_ir::{Instr, Kernel, LaunchConfig, Op, Operand, PredSrc, QueueKind, Space, SpecialReg};
use simt_sim::sm::{LOCAL_BASE, LOCAL_STRIDE};

/// How the PEU would have produced a predicate (drives Figure-level stats:
/// 64% scalar, 93% ≤ two comparisons in the paper §4.3).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum PeuClass {
    /// Both operands scalar: one comparison for the whole CTA.
    Scalar,
    /// Warp-uniform outcome: two comparisons per warp.
    TwoCompare,
    /// Mixed within a warp: full 32-lane comparison on the SIMT lanes.
    Full,
}

/// Result of executing one affine-stream instruction.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ExecOutcome {
    /// Instruction issued and executed.
    Executed,
    /// Blocked: the ATQ is full (scoreboard gate, Figure 9 ⑨).
    AtqFull,
    /// The context already finished.
    Done,
}

/// The affine warp's architectural state for one CTA.
#[derive(Debug)]
pub struct AffineCtx {
    /// CTA slot on the SM.
    pub slot: usize,
    /// Linear CTA id.
    pub cta_linear: u64,
    /// Grid coordinates of the CTA.
    pub cta_coords: (u32, u32, u32),
    /// SM warp slots owned by the CTA (index = warp-in-CTA).
    pub warps: Vec<usize>,
    /// Control-flow stack over the CTA's warps.
    pub stack: AffineStack,
    /// Affine barrier epoch (§4.2): incremented when the affine warp
    /// passes a `bar.sync`.
    pub epoch: u32,
    /// Per-warp launch masks: which lanes hold live threads (the last warp
    /// of a ragged block is partial). Lanes outside these masks carry no
    /// architectural state.
    exist: Vec<u32>,
    regs: Vec<Option<AffineVal>>,
    preds: Vec<Option<PredVal>>,
}

impl AffineCtx {
    /// Create the context for a CTA with per-warp launch masks.
    pub fn new(
        slot: usize,
        cta_linear: u64,
        cta_coords: (u32, u32, u32),
        warps: Vec<usize>,
        launch_masks: Vec<u32>,
        kernel: &Kernel,
    ) -> Self {
        AffineCtx {
            slot,
            cta_linear,
            cta_coords,
            warps,
            exist: launch_masks.clone(),
            stack: AffineStack::new(launch_masks),
            epoch: 0,
            regs: vec![None; kernel.num_regs as usize],
            preds: vec![None; kernel.num_preds as usize],
        }
    }

    /// Has the affine stream finished for this CTA?
    pub fn done(&self) -> bool {
        self.stack.done()
    }

    fn num_warps(&self) -> usize {
        self.warps.len()
    }

    fn thread_coords(&self, warp: usize, lane: usize, launch: &LaunchConfig) -> (u32, u32, u32) {
        launch.block.unflatten(warp as u64 * 32 + lane as u64)
    }

    fn operand_val(&self, op: Operand, launch: &LaunchConfig) -> AffineVal {
        match op {
            Operand::Reg(r) => self
                .regs
                .get(r as usize)
                .and_then(|v| v.clone())
                .unwrap_or_else(|| AffineVal::scalar(0)),
            Operand::Imm(i) => AffineVal::scalar(i as u64),
            Operand::Param(p) => AffineVal::scalar(launch.params[p as usize]),
            Operand::Special(s) => match s {
                SpecialReg::TidX => AffineVal::Tuple(AffineTuple::tid(0)),
                SpecialReg::TidY => AffineVal::Tuple(AffineTuple::tid(1)),
                SpecialReg::TidZ => AffineVal::Tuple(AffineTuple::tid(2)),
                SpecialReg::CtaIdX => AffineVal::scalar(self.cta_coords.0 as u64),
                SpecialReg::CtaIdY => AffineVal::scalar(self.cta_coords.1 as u64),
                SpecialReg::CtaIdZ => AffineVal::scalar(self.cta_coords.2 as u64),
                SpecialReg::NTidX => AffineVal::scalar(launch.block.x as u64),
                SpecialReg::NTidY => AffineVal::scalar(launch.block.y as u64),
                SpecialReg::NTidZ => AffineVal::scalar(launch.block.z as u64),
                SpecialReg::NCtaIdX => AffineVal::scalar(launch.grid.x as u64),
                SpecialReg::NCtaIdY => AffineVal::scalar(launch.grid.y as u64),
                SpecialReg::NCtaIdZ => AffineVal::scalar(launch.grid.z as u64),
            },
        }
    }

    fn guard_bits(&self, g: Option<simt_ir::instr::Guard>, warp: usize) -> u32 {
        match g {
            None => u32::MAX,
            Some(g) => {
                let bits = self
                    .preds
                    .get(g.pred as usize)
                    .and_then(|p| p.as_ref())
                    .map(|p| p.warp_bits(warp))
                    .unwrap_or(0);
                if g.negate {
                    !bits
                } else {
                    bits
                }
            }
        }
    }

    /// Per-lane tuple index combination for divergent sources.
    fn lane_tuple<'a>(&self, v: &'a AffineVal, warp: usize, lane: usize) -> &'a AffineTuple {
        match v {
            AffineVal::Tuple(t) => t,
            AffineVal::Divergent(d) => &d.tuples[d.select[warp][lane] as usize],
        }
    }

    /// Evaluate an ALU op over affine values, producing a (possibly
    /// divergent) affine value.
    ///
    /// # Panics
    ///
    /// Panics if the combination is not representable — the decoupling
    /// compiler's eligibility rules are supposed to prevent that, so a
    /// panic here is a compiler bug, not a workload property.
    fn eval_alu(&self, op: Op, vals: &[AffineVal], launch: &LaunchConfig) -> AffineVal {
        let all_single = vals.iter().all(|v| matches!(v, AffineVal::Tuple(_)));
        if all_single {
            let tuples: Vec<AffineTuple> = vals.iter().map(|v| *v.as_tuple().unwrap()).collect();
            if let Some(t) = tuple_op(op, &tuples) {
                return AffineVal::Tuple(t);
            }
            if matches!(op, Op::Min | Op::Max | Op::Abs) {
                return self.eval_select_op(op, vals, launch);
            }
            panic!("affine engine: op {op} not representable on tuples {tuples:?}");
        }
        if matches!(op, Op::Min | Op::Max | Op::Abs) {
            return self.eval_select_op(op, vals, launch);
        }
        // Linear op over divergent sources: combine per-lane tuple picks.
        let nw = self.num_warps();
        let mut tuples: Vec<AffineTuple> = Vec::new();
        let mut select = vec![[0u8; 32]; nw];
        for (w, sel) in select.iter_mut().enumerate() {
            for (lane, s) in sel.iter_mut().enumerate() {
                let srcs: Vec<AffineTuple> =
                    vals.iter().map(|v| *self.lane_tuple(v, w, lane)).collect();
                let t = tuple_op(op, &srcs)
                    .unwrap_or_else(|| panic!("affine engine: divergent {op} unrepresentable"));
                let idx = match tuples.iter().position(|x| *x == t) {
                    Some(i) => i,
                    None => {
                        assert!(
                            tuples.len() < 8,
                            "affine engine: divergent tuple explosion on {op}"
                        );
                        tuples.push(t);
                        tuples.len() - 1
                    }
                };
                *s = idx as u8;
            }
        }
        if tuples.len() == 1 {
            AffineVal::Tuple(tuples[0])
        } else {
            AffineVal::Divergent(DivergentVal { tuples, select })
        }
    }

    /// Divergence-extended ops (§4.6): `min`/`max`/`abs` pick one of the
    /// source tuples per thread.
    fn eval_select_op(&self, op: Op, vals: &[AffineVal], launch: &LaunchConfig) -> AffineVal {
        let nw = self.num_warps();
        let mut tuples: Vec<AffineTuple> = Vec::new();
        let mut select = vec![[0u8; 32]; nw];
        let neg_tuple = |t: &AffineTuple| t.neg().expect("abs of mod tuple");
        for (w, sel) in select.iter_mut().enumerate() {
            for (lane, s) in sel.iter_mut().enumerate() {
                let coords = self.thread_coords(w, lane, launch);
                let pick: AffineTuple = match op {
                    Op::Min | Op::Max => {
                        let ta = *self.lane_tuple(&vals[0], w, lane);
                        let tb = *self.lane_tuple(&vals[1], w, lane);
                        let (va, vb) = (ta.eval(coords) as i64, tb.eval(coords) as i64);
                        let a_wins = if op == Op::Min { va <= vb } else { va >= vb };
                        if a_wins {
                            ta
                        } else {
                            tb
                        }
                    }
                    Op::Abs => {
                        let t = *self.lane_tuple(&vals[0], w, lane);
                        if (t.eval(coords) as i64) < 0 {
                            neg_tuple(&t)
                        } else {
                            t
                        }
                    }
                    _ => unreachable!(),
                };
                let idx = match tuples.iter().position(|x| *x == pick) {
                    Some(i) => i,
                    None => {
                        assert!(tuples.len() < 8, "divergent tuple explosion on {op}");
                        tuples.push(pick);
                        tuples.len() - 1
                    }
                };
                *s = idx as u8;
            }
        }
        if tuples.len() == 1 {
            AffineVal::Tuple(tuples[0])
        } else {
            AffineVal::Divergent(DivergentVal { tuples, select })
        }
    }

    fn write_reg(&mut self, r: u16, v: AffineVal, write_masks: &[u32]) {
        let nw = self.num_warps();
        let merged = match &v {
            AffineVal::Tuple(t) => AffineVal::merge_masked(
                self.regs[r as usize].as_ref(),
                *t,
                write_masks,
                &self.exist,
                nw,
            )
            .expect("divergent tuple limit exceeded (compiler bug)"),
            // Divergent results under partial masks: merge tuple by tuple.
            AffineVal::Divergent(d) => {
                let mut cur = self.regs[r as usize].clone();
                for (i, t) in d.tuples.iter().enumerate() {
                    let masks: Vec<u32> = (0..nw)
                        .map(|w| {
                            let mut m = 0u32;
                            for lane in 0..32 {
                                if d.select[w][lane] as usize == i
                                    && write_masks[w] & (1 << lane) != 0
                                {
                                    m |= 1 << lane;
                                }
                            }
                            m
                        })
                        .collect();
                    if masks.iter().all(|&m| m == 0) {
                        continue;
                    }
                    cur = Some(
                        AffineVal::merge_masked(cur.as_ref(), *t, &masks, &self.exist, nw)
                            .expect("divergent tuple limit exceeded (compiler bug)"),
                    );
                }
                cur.unwrap_or(v)
            }
        };
        self.regs[r as usize] = Some(merged);
    }

    /// Evaluate a `setp` into a predicate value, with its PEU cost class.
    fn eval_setp(
        &self,
        cmp: simt_ir::CmpOp,
        a: &AffineVal,
        b: &AffineVal,
        float: bool,
        launch: &LaunchConfig,
    ) -> (PredVal, PeuClass) {
        let scalar_ab = match (a, b) {
            (AffineVal::Tuple(ta), AffineVal::Tuple(tb)) => ta.as_scalar().zip(tb.as_scalar()),
            _ => None,
        };
        if let Some((va, vb)) = scalar_ab {
            let r = if float {
                cmp.eval_f32(f32::from_bits(va as u32), f32::from_bits(vb as u32))
            } else {
                cmp.eval_i64(va as i64, vb as i64)
            };
            return (PredVal::Uniform(r), PeuClass::Scalar);
        }
        let nw = self.num_warps();
        let mut per_warp = Vec::with_capacity(nw);
        let mut all_uniform = true;
        for w in 0..nw {
            let mut bits = 0u32;
            for lane in 0..32 {
                let coords = self.thread_coords(w, lane, launch);
                let va = self.lane_tuple(a, w, lane).eval(coords);
                let vb = self.lane_tuple(b, w, lane).eval(coords);
                let r = if float {
                    cmp.eval_f32(f32::from_bits(va as u32), f32::from_bits(vb as u32))
                } else {
                    cmp.eval_i64(va as i64, vb as i64)
                };
                if r {
                    bits |= 1 << lane;
                }
            }
            if bits != 0 && bits != u32::MAX {
                all_uniform = false;
            }
            per_warp.push(bits);
        }
        let class = if all_uniform {
            PeuClass::TwoCompare
        } else {
            PeuClass::Full
        };
        (PredVal::PerWarp(per_warp), class)
    }

    /// Execute one instruction of the affine stream. `reconv` maps branch
    /// PCs to reconvergence PCs in the *affine* kernel.
    pub fn exec_one(
        &mut self,
        kernel: &Kernel,
        reconv: &std::collections::HashMap<usize, usize>,
        launch: &LaunchConfig,
        queues: &mut DacQueues,
    ) -> (ExecOutcome, Option<PeuClass>) {
        if self.done() {
            return (ExecOutcome::Done, None);
        }
        let pc = self.stack.pc();
        let instr = &kernel.instrs[pc];
        let mut peu_class = None;

        match instr {
            Instr::Enq { .. } if !queues.atq_has_space() => {
                return (ExecOutcome::AtqFull, None);
            }
            _ => {}
        }

        match instr {
            Instr::Alu {
                op,
                dst,
                srcs,
                guard,
            } => {
                let vals: Vec<AffineVal> = srcs[..op.arity()]
                    .iter()
                    .map(|&s| self.operand_val(s, launch))
                    .collect();
                let v = self.eval_alu(*op, &vals, launch);
                let masks: Vec<u32> = (0..self.num_warps())
                    .map(|w| self.stack.active(w) & self.guard_bits(*guard, w))
                    .collect();
                self.write_reg(*dst, v, &masks);
                self.stack.advance();
            }
            Instr::Sel { dst, pred, a, b } => {
                let va = self.operand_val(*a, launch);
                let vb = self.operand_val(*b, launch);
                let nw = self.num_warps();
                let mut tuples: Vec<AffineTuple> = Vec::new();
                let mut select = vec![[0u8; 32]; nw];
                for (w, sel) in select.iter_mut().enumerate() {
                    let bits = self.guard_bits(Some(*pred), w);
                    for (lane, s) in sel.iter_mut().enumerate() {
                        let pick = if bits & (1 << lane) != 0 {
                            *self.lane_tuple(&va, w, lane)
                        } else {
                            *self.lane_tuple(&vb, w, lane)
                        };
                        let idx = match tuples.iter().position(|x| *x == pick) {
                            Some(i) => i,
                            None => {
                                assert!(tuples.len() < 8, "sel tuple explosion");
                                tuples.push(pick);
                                tuples.len() - 1
                            }
                        };
                        *s = idx as u8;
                    }
                }
                let v = if tuples.len() == 1 {
                    AffineVal::Tuple(tuples[0])
                } else {
                    AffineVal::Divergent(DivergentVal { tuples, select })
                };
                let masks = self.stack.active_masks();
                self.write_reg(*dst, v, &masks);
                self.stack.advance();
            }
            Instr::SetP {
                dst,
                cmp,
                a,
                b,
                float,
                ..
            } => {
                let va = self.operand_val(*a, launch);
                let vb = self.operand_val(*b, launch);
                let (p, class) = self.eval_setp(*cmp, &va, &vb, *float, launch);
                peu_class = Some(class);
                self.preds[*dst as usize] = Some(p);
                self.stack.advance();
            }
            Instr::Enq {
                kind,
                src,
                pred,
                width,
                space,
                guard,
            } => {
                let entry =
                    self.build_enq(*kind, *src, *pred, *width, *space, *guard, launch, kernel);
                queues.push_atq(entry);
                self.stack.advance();
            }
            Instr::Bra { target, pred } => {
                let rpc = reconv.get(&pc).copied().unwrap_or(usize::MAX);
                let taken: Vec<u32> = match pred {
                    None => vec![u32::MAX; self.num_warps()],
                    Some(PredSrc::Reg(g)) => (0..self.num_warps())
                        .map(|w| self.guard_bits(Some(*g), w))
                        .collect(),
                    Some(PredSrc::Deq { .. }) => {
                        unreachable!("affine stream cannot dequeue")
                    }
                };
                self.stack.branch(&taken, *target, rpc);
            }
            Instr::Bar => {
                // §4.2: the affine warp does not block at barriers; the AEU
                // gates expansion by epoch instead.
                self.epoch += 1;
                self.stack.advance();
            }
            Instr::Exit => {
                self.stack.exit();
            }
            Instr::Ld { .. } | Instr::St { .. } | Instr::Atom { .. } => {
                unreachable!("memory instructions cannot be in the affine stream");
            }
        }
        (ExecOutcome::Executed, peu_class)
    }

    /// Build the ATQ entry for an enqueue: per-warp concrete expansions.
    #[allow(clippy::too_many_arguments)]
    fn build_enq(
        &self,
        kind: QueueKind,
        src: Option<u16>,
        pred: Option<u16>,
        width: simt_ir::Width,
        space: Space,
        guard: Option<simt_ir::instr::Guard>,
        launch: &LaunchConfig,
        _kernel: &Kernel,
    ) -> AtqEntry {
        let nw = self.num_warps();
        let mut per_warp = Vec::new();
        let tpc = launch.threads_per_cta() as u64;
        for w in 0..nw {
            let active = self.stack.active(w);
            if active == 0 {
                continue; // the non-affine warp never reaches this enq
            }
            match kind {
                QueueKind::Data | QueueKind::Addr => {
                    let val = self
                        .regs
                        .get(src.unwrap() as usize)
                        .and_then(|v| v.clone())
                        .unwrap_or_else(|| AffineVal::scalar(0));
                    let gbits = self.guard_bits(guard, w);
                    let eff = active & gbits;
                    let addrs: Vec<Option<u64>> = (0..32)
                        .map(|lane| {
                            (eff & (1 << lane) != 0).then(|| {
                                let coords = self.thread_coords(w, lane, launch);
                                let a = val.eval(w, lane, coords);
                                if space == Space::Local {
                                    let gtid =
                                        self.cta_linear * tpc + (w as u64 * 32 + lane as u64);
                                    LOCAL_BASE + gtid * LOCAL_STRIDE + (a % LOCAL_STRIDE)
                                } else {
                                    a
                                }
                            })
                        })
                        .collect();
                    per_warp.push(WarpExpansion {
                        warp_global: self.warps[w],
                        addrs,
                        bits: 0,
                        active,
                    });
                }
                QueueKind::Pred => {
                    let bits = self
                        .preds
                        .get(pred.unwrap() as usize)
                        .and_then(|p| p.as_ref())
                        .map(|p| p.warp_bits(w))
                        .unwrap_or(0);
                    per_warp.push(WarpExpansion {
                        warp_global: self.warps[w],
                        addrs: Vec::new(),
                        bits,
                        active,
                    });
                }
            }
        }
        AtqEntry {
            slot: self.slot,
            kind,
            width,
            space,
            per_warp,
            next: 0,
            epoch: self.epoch,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use affine::{decouple, AffineAnalysis};
    use simt_ir::Dim3;

    fn figure4_affine() -> (Kernel, LaunchConfig) {
        let k = simt_ir::asm::parse_kernel(
            r#"
.kernel example
.params 4
    mul r0, %ctaid.x, %ntid.x;
    add r1, r0, %tid.x;
    shl r2, r1, 2;
    add r3, %p0, r2;
    add r4, %p1, r2;
    mov r5, 0;
LOOP:
    ld.global r6, [r3];
    add r7, r6, 1;
    st.global [r4], r7;
    add r5, r5, 1;
    mul r8, %p3, 4;
    add r3, r8, r3;
    add r4, r8, r4;
    setp.ne p0, %p2, r5;
    @p0 bra LOOP;
    exit;
"#,
        )
        .unwrap();
        let a = AffineAnalysis::run(&k);
        let d = decouple(&k, &a);
        assert!(d.any_decoupled);
        // params: A=0x10000, B=0x20000, dim=3, num=64
        let launch = LaunchConfig {
            grid: Dim3::x(4),
            block: Dim3::x(64),
            params: vec![0x10000, 0x20000, 3, 64],
        };
        (d.affine, launch)
    }

    fn run_ctx(kernel: &Kernel, launch: &LaunchConfig, cta: u64) -> (AffineCtx, DacQueues) {
        let cfg = simt_ir::Cfg::build(kernel);
        let mut queues = DacQueues::new(16, 64, 64, 64);
        let nw = launch.warps_per_cta() as usize;
        let mut ctx = AffineCtx::new(
            0,
            cta,
            launch.grid.unflatten(cta),
            (0..nw).collect(),
            vec![u32::MAX; nw],
            kernel,
        );
        let mut fuel = 10_000;
        while !ctx.done() {
            let (o, _) = ctx.exec_one(kernel, &cfg.reconvergence, launch, &mut queues);
            assert_eq!(o, ExecOutcome::Executed);
            fuel -= 1;
            assert!(fuel > 0, "affine stream did not terminate");
        }
        (ctx, queues)
    }

    #[test]
    fn figure4_affine_stream_enqueues_expected_records() {
        let (kernel, launch) = figure4_affine();
        let (_ctx, queues) = run_ctx(&kernel, &launch, 1);
        // dim=3 iterations × (1 data + 1 addr + 1 pred) enqueues.
        let data: Vec<&AtqEntry> = queues
            .atq
            .iter()
            .filter(|e| e.kind == QueueKind::Data)
            .collect();
        let addr = queues
            .atq
            .iter()
            .filter(|e| e.kind == QueueKind::Addr)
            .count();
        let pred = queues
            .atq
            .iter()
            .filter(|e| e.kind == QueueKind::Pred)
            .count();
        assert_eq!(data.len(), 3);
        assert_eq!(addr, 3);
        assert_eq!(pred, 3);
        // First data enq: addresses A + (cta*64 + tid)*4 — for CTA 1,
        // warp 0 lane 0 → 0x10000 + 64*4.
        let e0 = data[0];
        assert_eq!(e0.per_warp.len(), 2); // 64 threads = 2 warps
        assert_eq!(e0.per_warp[0].addrs[0], Some(0x10000 + 256));
        assert_eq!(e0.per_warp[0].addrs[5], Some(0x10000 + 256 + 20));
        assert_eq!(e0.per_warp[1].addrs[0], Some(0x10000 + 256 + 128));
        // Second iteration advances by num*4 = 256 bytes.
        let e1 = data[1];
        assert_eq!(e1.per_warp[0].addrs[0], Some(0x10000 + 512));
    }

    #[test]
    fn figure4_pred_bits_are_loop_conditions() {
        let (kernel, launch) = figure4_affine();
        let (_ctx, queues) = run_ctx(&kernel, &launch, 0);
        let preds: Vec<&AtqEntry> = queues
            .atq
            .iter()
            .filter(|e| e.kind == QueueKind::Pred)
            .collect();
        // dim=3: p = (dim != i+1) → true, true, false.
        assert_eq!(preds[0].per_warp[0].bits, u32::MAX);
        assert_eq!(preds[1].per_warp[0].bits, u32::MAX);
        assert_eq!(preds[2].per_warp[0].bits, 0);
    }

    #[test]
    fn divergent_value_merges_per_thread() {
        // offset = (tid < 40) ? 0 : tid*4, then addr = base + offset.
        let k = simt_ir::asm::parse_kernel(
            r#"
.kernel div
.params 2
    mul r0, %tid.x, 4;
    setp.lt p0, %tid.x, %p1;
    @p0 bra SMALL;
    mov r1, r0;
    bra JOIN;
SMALL:
    mov r1, 0;
JOIN:
    add r2, %p0, r1;
    enq.data r2;
    exit;
"#,
        )
        .unwrap();
        let launch = LaunchConfig {
            grid: Dim3::x(1),
            block: Dim3::x(64),
            params: vec![0x1000, 40],
        };
        let (_ctx, queues) = run_ctx(&k, &launch, 0);
        let e = &queues.atq[0];
        // Lanes 0..32 (warp 0): tid < 40 ⇒ addr = base.
        assert_eq!(e.per_warp[0].addrs[3], Some(0x1000));
        // Warp 1 lane 7 → tid 39 < 40 ⇒ base; lane 8 → tid 40 ⇒ base+160.
        assert_eq!(e.per_warp[1].addrs[7], Some(0x1000));
        assert_eq!(e.per_warp[1].addrs[8], Some(0x1000 + 160));
    }

    #[test]
    fn setp_classes() {
        let (kernel, launch) = figure4_affine();
        let cfg = simt_ir::Cfg::build(&kernel);
        let mut queues = DacQueues::new(16, 64, 64, 64);
        let mut ctx = AffineCtx::new(0, 0, (0, 0, 0), vec![0, 1], vec![u32::MAX; 2], &kernel);
        let mut classes = Vec::new();
        while !ctx.done() {
            let (o, c) = ctx.exec_one(&kernel, &cfg.reconvergence, &launch, &mut queues);
            assert_eq!(o, ExecOutcome::Executed);
            if let Some(c) = c {
                classes.push(c);
            }
        }
        // The loop condition is scalar vs scalar.
        assert!(classes.iter().all(|&c| c == PeuClass::Scalar));
        assert_eq!(classes.len(), 3);
    }

    #[test]
    fn atq_full_blocks_enq() {
        let (kernel, launch) = figure4_affine();
        let cfg = simt_ir::Cfg::build(&kernel);
        let mut queues = DacQueues::new(16, 2, 64, 64); // tiny ATQ
        let mut ctx = AffineCtx::new(0, 0, (0, 0, 0), vec![0, 1], vec![u32::MAX; 2], &kernel);
        let mut outcomes = Vec::new();
        for _ in 0..64 {
            let (o, _) = ctx.exec_one(&kernel, &cfg.reconvergence, &launch, &mut queues);
            outcomes.push(o);
            if o == ExecOutcome::AtqFull {
                break;
            }
        }
        assert!(outcomes.contains(&ExecOutcome::AtqFull));
        assert_eq!(queues.atq.len(), 2);
    }

    #[test]
    fn barrier_increments_epoch_without_blocking() {
        let k = simt_ir::asm::parse_kernel(
            ".kernel b\n.params 1\n mul r0, %tid.x, 4;\n add r1, %p0, r0;\n bar.sync;\n enq.data r1;\n exit;",
        )
        .unwrap();
        let launch = LaunchConfig {
            grid: Dim3::x(1),
            block: Dim3::x(32),
            params: vec![0x2000],
        };
        let (ctx, queues) = run_ctx(&k, &launch, 0);
        assert_eq!(ctx.epoch, 1);
        assert_eq!(queues.atq[0].epoch, 1);
    }
}

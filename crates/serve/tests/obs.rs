//! End-to-end observability tests over a real socket: the per-sweep event
//! journal long-poll (`GET /sweeps/:id/events`) and the Prometheus text
//! exposition (`GET /metrics?format=prom`) plus the HTML dashboard.

use simt_harness::json;
use simt_serve::client::Client;
use simt_serve::http::Server;
use simt_serve::{ServeConfig, SweepService};
use std::fs;
use std::sync::Arc;
use std::time::{Duration, Instant};

fn u(v: &json::Value, name: &str) -> u64 {
    v.get(name).and_then(json::Value::as_u64).unwrap()
}

fn s<'a>(v: &'a json::Value, name: &str) -> &'a str {
    v.get(name).and_then(json::Value::as_str).unwrap()
}

fn start(tag: &str) -> (Arc<SweepService>, std::thread::JoinHandle<()>, Client) {
    let results = std::env::temp_dir().join(format!("dac-serve-test-{tag}-{}", std::process::id()));
    let _ = fs::remove_dir_all(&results);
    let service = Arc::new(SweepService::new(ServeConfig::new(&results, 2)));
    let server = Server::bind(Arc::clone(&service), "127.0.0.1:0").unwrap();
    let handle = server.handle();
    let serving = std::thread::spawn(move || server.serve());
    let client = Client::new(handle.addr().to_string());
    (service, serving, client)
}

fn submit_grid(client: &Client) -> String {
    let request = json::parse(
        r#"{"benches": ["LIB"], "designs": ["baseline", "dac"],
            "overrides": {"num_sms": 2, "max_warps_per_sm": 16}}"#,
    )
    .unwrap();
    let receipt = client
        .post("/sweeps", Some(&request))
        .unwrap()
        .ok()
        .unwrap();
    s(&receipt, "id").to_string()
}

#[test]
fn events_long_poll_streams_in_order_and_since_resumes() {
    let (_service, serving, client) = start("events");
    assert_eq!(
        client.get("/sweeps/sweep-zzz/events").unwrap().status,
        404,
        "unknown sweep id"
    );
    let id = submit_grid(&client);

    // Tail the journal with a since cursor until the sweep completes.
    let deadline = Instant::now() + Duration::from_secs(300);
    let mut since = 0u64;
    let mut events = Vec::new();
    loop {
        let reply = client
            .get(&format!(
                "/sweeps/{id}/events?since={since}&timeout_ms=2000"
            ))
            .unwrap()
            .ok()
            .unwrap();
        assert_eq!(s(&reply, "schema"), "dac-sweep-events/v1");
        assert_eq!(u(&reply, "since"), since);
        assert_eq!(u(&reply, "dropped"), 0, "journal must not overflow here");
        let batch = reply.get("events").and_then(json::Value::as_arr).unwrap();
        for e in batch {
            assert!(u(e, "seq") >= since, "no events before the cursor");
            events.push(e.clone());
        }
        let next = u(&reply, "next");
        assert!(next >= since);
        since = next;
        if reply.get("complete").and_then(json::Value::as_bool) == Some(true) {
            break;
        }
        assert!(Instant::now() < deadline, "tail timed out");
    }

    // Seqs are dense and in order; the stream replays the whole sweep:
    // 2 started + 2 finished + 1 complete.
    for (i, e) in events.iter().enumerate() {
        assert_eq!(u(e, "seq"), i as u64, "events arrive in order");
    }
    assert_eq!(events.len(), 5, "{events:?}");
    let kinds: Vec<&str> = events.iter().map(|e| s(e, "kind")).collect();
    assert_eq!(kinds.iter().filter(|k| **k == "started").count(), 2);
    assert_eq!(kinds.iter().filter(|k| **k == "finished").count(), 2);
    assert_eq!(*kinds.last().unwrap(), "complete");
    for e in &events {
        if s(e, "kind") == "finished" {
            assert_eq!(s(e, "resolution"), "executed");
            assert_eq!(s(e, "run").len(), 16, "run key is 16 hex");
            assert!(u(e, "cycles") > 0);
        }
    }

    // A since cursor in the middle resumes without loss or duplication.
    let reply = client
        .get(&format!("/sweeps/{id}/events?since=3"))
        .unwrap()
        .ok()
        .unwrap();
    let resumed = reply.get("events").and_then(json::Value::as_arr).unwrap();
    assert_eq!(resumed.len(), 2);
    assert_eq!(u(&resumed[0], "seq"), 3);
    assert_eq!(u(&resumed[1], "seq"), 4);
    assert_eq!(
        reply.get("complete").and_then(json::Value::as_bool),
        Some(true)
    );

    // since == next on a complete sweep returns immediately with no events.
    let reply = client
        .get(&format!("/sweeps/{id}/events?since=5"))
        .unwrap()
        .ok()
        .unwrap();
    assert!(reply
        .get("events")
        .and_then(json::Value::as_arr)
        .unwrap()
        .is_empty());

    client.post("/shutdown", None).unwrap().ok().unwrap();
    serving.join().unwrap();
}

#[test]
fn prom_exposition_and_dashboard_over_http() {
    let (_service, serving, client) = start("prom");
    let id = submit_grid(&client);
    let deadline = Instant::now() + Duration::from_secs(300);
    loop {
        let status = client.get(&format!("/sweeps/{id}")).unwrap().ok().unwrap();
        if status.get("complete").and_then(json::Value::as_bool) == Some(true) {
            break;
        }
        assert!(Instant::now() < deadline, "sweep timed out");
        std::thread::sleep(Duration::from_millis(100));
    }

    // The JSON document reports p50/p90/p99 for every endpoint seen so far.
    let metrics = client.get("/metrics").unwrap().ok().unwrap();
    let endpoints = metrics.get("endpoints").unwrap();
    for label in ["POST /sweeps", "GET /sweeps/:id"] {
        let e = endpoints.get(label).unwrap_or_else(|| panic!("no {label}"));
        assert!(u(e, "count") >= 1);
        for q in ["p50_us", "p90_us", "p99_us", "max_us"] {
            assert!(e.get(q).is_some(), "{label} missing {q}");
        }
        assert!(u(e, "p50_us") <= u(e, "p99_us"));
        assert!(u(e, "p99_us") <= u(e, "max_us"));
    }

    // The Prometheus rendering scrapes with the right content type and
    // parses back; the families the smoke relies on are all present.
    let (status, text) = client.get_text("/metrics?format=prom").unwrap();
    assert_eq!(status, 200);
    let samples = simt_obs::prom::parse(&text).unwrap();
    assert!(!samples.is_empty());
    let names: Vec<&str> = samples.iter().map(|s| s.name.as_str()).collect();
    for family in [
        "simt_http_request_duration_us_bucket",
        "simt_http_request_duration_us_sum",
        "simt_http_request_duration_us_count",
        "simt_point_wall_us_count",
        "simt_points_resolved_total",
        "simt_queue_depth",
        "simt_uptime_seconds",
    ] {
        assert!(names.contains(&family), "missing {family} in:\n{text}");
    }
    let executed = samples
        .iter()
        .find(|s| {
            s.name == "simt_points_resolved_total"
                && s.labels
                    .iter()
                    .any(|(k, v)| k == "resolution" && v == "executed")
        })
        .expect("resolution counter");
    assert_eq!(executed.value, 2.0);
    // An unknown format is a 400, not silent JSON.
    assert_eq!(client.get_text("/metrics?format=xml").unwrap().0, 400);

    // The dashboard renders HTML from the same documents.
    let (status, html) = client.get_text("/dashboard").unwrap();
    assert_eq!(status, 200);
    assert!(html.starts_with("<!doctype html>"));
    assert!(html.contains("simt-serve"));
    assert!(html.contains(&id), "dashboard lists the sweep");

    client.post("/shutdown", None).unwrap().ok().unwrap();
    serving.join().unwrap();
}

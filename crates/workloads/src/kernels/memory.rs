//! The 18 memory-intensive benchmarks (paper Table 2, right column).
//!
//! Streaming kernels with little arithmetic per byte (LIB/LBM/ST/SR2/CS),
//! tiled shared-memory GEMM (SG), atomic histogramming (IMG/HI), sparse and
//! graph kernels whose indirect accesses defeat affine decoupling
//! (SPV/BT/BFS/CFD — the paper's low-gain cases), clustering loops
//! (SC/KM), RNG-state updates with modulo addressing (MC/MT), and a
//! reduction with shared memory and barriers (SP).

use super::{init_f32, init_u32, tid_elem_addr, ARR_A, ARR_B, ARR_C, ARR_D};
use crate::{PaperClass, Suite, Workload};
use simt_ir::{
    AtomOp, CmpOp, Dim3, KernelBuilder, LaunchConfig, Op, Operand, Space, SpecialReg, Width,
};
use simt_mem::SparseMemory;

fn f32imm(v: f32) -> Operand {
    Operand::Imm(v.to_bits() as i64)
}

fn wl(
    name: &'static str,
    abbr: &'static str,
    suite: Suite,
    b: KernelBuilder,
    launch: LaunchConfig,
    memory: SparseMemory,
    output: (u64, usize),
) -> Workload {
    Workload {
        name,
        abbr,
        suite,
        paper_class: PaperClass::Memory,
        kernel: b.build(),
        launch,
        memory,
        output,
    }
}

/// LIB — streaming SAXPY-style kernel over several iterations.
pub fn lib(scale: u32) -> Workload {
    let ctas = 30 * scale;
    let block = 128u32;
    let iters = 14u64;
    let n = (ctas * block) as usize;
    let mut b = KernelBuilder::new("lib", 4);
    let (_tid, a0) = tid_elem_addr(&mut b, 0, 2);
    let tid = b.tid_linear_x();
    let off = b.alu2(Op::Shl, Operand::Reg(tid), Operand::Imm(2));
    let b0 = b.alu2(Op::Add, Operand::Param(1), Operand::Reg(off));
    let o0 = b.alu2(Op::Add, Operand::Param(2), Operand::Reg(off));
    let step = b.alu2(Op::Shl, Operand::Param(3), Operand::Imm(2));
    let i = b.mov(Operand::Imm(0));
    b.label("loop");
    let va = b.ld(Space::Global, a0, 0, Width::W32);
    let vb = b.ld(Space::Global, b0, 0, Width::W32);
    let r = b.alu3(Op::FMad, Operand::Reg(va), f32imm(1.5), Operand::Reg(vb));
    b.st(Space::Global, o0, 0, Operand::Reg(r), Width::W32);
    b.alu_into(a0, Op::Add, &[Operand::Reg(a0), Operand::Reg(step)]);
    b.alu_into(b0, Op::Add, &[Operand::Reg(b0), Operand::Reg(step)]);
    b.alu_into(o0, Op::Add, &[Operand::Reg(o0), Operand::Reg(step)]);
    b.alu_into(i, Op::Add, &[Operand::Reg(i), Operand::Imm(1)]);
    let p = b.setp(CmpOp::Lt, Operand::Reg(i), Operand::Imm(iters as i64));
    b.bra_if(p, "loop");
    b.exit();
    let total = n * iters as usize;
    let mut memory = SparseMemory::new();
    init_f32(&mut memory, ARR_A, total, 201, -1.0, 1.0);
    init_f32(&mut memory, ARR_B, total, 202, -1.0, 1.0);
    wl(
        "LIB",
        "LIB",
        Suite::GpgpuSim,
        b,
        LaunchConfig::linear(
            ctas,
            block,
            vec![ARR_A, ARR_B, ARR_C, (ctas * block) as u64],
        ),
        memory,
        (ARR_C, total),
    )
}

/// SG — sgemm: 16×16-tiled matrix multiply through shared memory.
pub fn sg(scale: u32) -> Workload {
    let tiles = 5 * scale; // grid is tiles × tiles
    let dim = 16u32;
    let k = 64u64; // inner dimension
    let n_out = (tiles * dim) as usize * (tiles * dim) as usize;
    let row_elems = (tiles * dim) as u64;
    let mut b = KernelBuilder::new("sg", 5);
    b.shared(2 * 16 * 16 * 4);
    // Global row/col of this thread's output element.
    let row = b.alu3(
        Op::Mad,
        Operand::Special(SpecialReg::CtaIdY),
        Operand::Imm(16),
        Operand::Special(SpecialReg::TidY),
    );
    let col = b.alu3(
        Op::Mad,
        Operand::Special(SpecialReg::CtaIdX),
        Operand::Imm(16),
        Operand::Special(SpecialReg::TidX),
    );
    let acc = b.mov(f32imm(0.0));
    let t = b.mov(Operand::Imm(0));
    // Shared tile offsets for this thread.
    let sa_off = b.alu3(
        Op::Mad,
        Operand::Special(SpecialReg::TidY),
        Operand::Imm(64),
        Operand::Imm(0),
    );
    let sa_mine = b.alu3(
        Op::Mad,
        Operand::Special(SpecialReg::TidX),
        Operand::Imm(4),
        Operand::Reg(sa_off),
    );
    let sb_mine = b.alu2(Op::Add, Operand::Reg(sa_mine), Operand::Imm(1024));
    b.label("tiles");
    // Cooperative loads: A[row][t*16+tx], B[t*16+ty][col].
    let acol = b.alu3(
        Op::Mad,
        Operand::Reg(t),
        Operand::Imm(16),
        Operand::Special(SpecialReg::TidX),
    );
    let aidx = b.alu3(
        Op::Mad,
        Operand::Reg(row),
        Operand::Param(3),
        Operand::Reg(acol),
    );
    let aoff = b.alu2(Op::Shl, Operand::Reg(aidx), Operand::Imm(2));
    let aaddr = b.alu2(Op::Add, Operand::Param(0), Operand::Reg(aoff));
    let av = b.ld(Space::Global, aaddr, 0, Width::W32);
    b.st(Space::Shared, sa_mine, 0, Operand::Reg(av), Width::W32);
    let brow = b.alu3(
        Op::Mad,
        Operand::Reg(t),
        Operand::Imm(16),
        Operand::Special(SpecialReg::TidY),
    );
    let bidx = b.alu3(
        Op::Mad,
        Operand::Reg(brow),
        Operand::Param(4),
        Operand::Reg(col),
    );
    let boff = b.alu2(Op::Shl, Operand::Reg(bidx), Operand::Imm(2));
    let baddr = b.alu2(Op::Add, Operand::Param(1), Operand::Reg(boff));
    let bv = b.ld(Space::Global, baddr, 0, Width::W32);
    b.st(Space::Shared, sb_mine, 0, Operand::Reg(bv), Width::W32);
    b.bar();
    // Inner product: A from the shared tile, B streamed from global (the
    // bandwidth-bound variant — Table 2 classifies sgemm memory-intensive).
    let kk = b.mov(Operand::Imm(0));
    let sa_row = b.mov(Operand::Reg(sa_off));
    let bstride = b.alu2(Op::Shl, Operand::Param(4), Operand::Imm(2));
    let gb = b.mov(Operand::Reg(baddr));
    b.label("inner");
    let x = b.ld(Space::Shared, sa_row, 0, Width::W32);
    let y = b.ld(Space::Global, gb, 0, Width::W32);
    b.alu_into(
        acc,
        Op::FMad,
        &[Operand::Reg(x), Operand::Reg(y), Operand::Reg(acc)],
    );
    b.alu_into(sa_row, Op::Add, &[Operand::Reg(sa_row), Operand::Imm(4)]);
    b.alu_into(gb, Op::Add, &[Operand::Reg(gb), Operand::Reg(bstride)]);
    b.alu_into(kk, Op::Add, &[Operand::Reg(kk), Operand::Imm(1)]);
    let pi = b.setp(CmpOp::Lt, Operand::Reg(kk), Operand::Imm(8));
    b.bra_if(pi, "inner");
    b.bar();
    b.alu_into(t, Op::Add, &[Operand::Reg(t), Operand::Imm(1)]);
    let pt = b.setp(CmpOp::Lt, Operand::Reg(t), Operand::Imm((k / 16) as i64));
    b.bra_if(pt, "tiles");
    let oidx = b.alu3(
        Op::Mad,
        Operand::Reg(row),
        Operand::Param(4),
        Operand::Reg(col),
    );
    let ooff = b.alu2(Op::Shl, Operand::Reg(oidx), Operand::Imm(2));
    let oaddr = b.alu2(Op::Add, Operand::Param(2), Operand::Reg(ooff));
    b.st(Space::Global, oaddr, 0, Operand::Reg(acc), Width::W32);
    b.exit();
    let mut memory = SparseMemory::new();
    init_f32(&mut memory, ARR_A, (row_elems * k) as usize, 203, -1.0, 1.0);
    init_f32(&mut memory, ARR_B, (k * row_elems) as usize, 204, -1.0, 1.0);
    wl(
        "sgemm",
        "SG",
        Suite::Rodinia,
        b,
        LaunchConfig {
            grid: Dim3::xy(tiles, tiles),
            block: Dim3::xy(16, 16),
            params: vec![ARR_A, ARR_B, ARR_C, k, row_elems],
        },
        memory,
        (ARR_C, n_out),
    )
}

/// ST — 3-D 7-point stencil (interior sweep, displacement addressing).
pub fn st(scale: u32) -> Workload {
    let ctas = 30 * scale;
    let block = 128u32;
    let plane = 2048i64; // bytes between z-planes
    let n = (ctas * block) as usize;
    let zplanes = 14u64;
    let mut b = KernelBuilder::new("st", 3);
    let (_tid, center) = tid_elem_addr(&mut b, 0, 2);
    let tid2 = b.tid_linear_x();
    let off = b.alu2(Op::Shl, Operand::Reg(tid2), Operand::Imm(2));
    let out = b.alu2(Op::Add, Operand::Param(1), Operand::Reg(off));
    let ostride = b.alu2(Op::Shl, Operand::Param(2), Operand::Imm(2));
    let z = b.mov(Operand::Imm(0));
    b.label("planes");
    // Displacement addressing exercises enq with non-zero offsets.
    let c = b.ld(Space::Global, center, plane, Width::W32);
    let w = b.ld(Space::Global, center, plane - 4, Width::W32);
    let e = b.ld(Space::Global, center, plane + 4, Width::W32);
    let up = b.ld(Space::Global, center, 0, Width::W32);
    let dn = b.ld(Space::Global, center, 2 * plane, Width::W32);
    let s1 = b.alu2(Op::FAdd, Operand::Reg(w), Operand::Reg(e));
    let s2 = b.alu2(Op::FAdd, Operand::Reg(up), Operand::Reg(dn));
    let s3 = b.alu2(Op::FAdd, Operand::Reg(s1), Operand::Reg(s2));
    let r = b.alu3(Op::FMad, Operand::Reg(c), f32imm(-4.0), Operand::Reg(s3));
    b.st(Space::Global, out, 0, Operand::Reg(r), Width::W32);
    b.alu_into(
        center,
        Op::Add,
        &[Operand::Reg(center), Operand::Reg(ostride)],
    );
    b.alu_into(out, Op::Add, &[Operand::Reg(out), Operand::Reg(ostride)]);
    b.alu_into(z, Op::Add, &[Operand::Reg(z), Operand::Imm(1)]);
    let pz = b.setp(CmpOp::Lt, Operand::Reg(z), Operand::Imm(zplanes as i64));
    b.bra_if(pz, "planes");
    b.exit();
    let total = n * zplanes as usize;
    let mut memory = SparseMemory::new();
    init_f32(
        &mut memory,
        ARR_A,
        total + (3 * plane as usize) / 4,
        205,
        -1.0,
        1.0,
    );
    wl(
        "stencil",
        "ST",
        Suite::Rodinia,
        b,
        LaunchConfig::linear(ctas, block, vec![ARR_A, ARR_B, (ctas * block) as u64]),
        memory,
        (ARR_B, total),
    )
}

/// IMG — imghisto: pixel loads are affine; the histogram update is a
/// data-dependent global atomic.
pub fn img(scale: u32) -> Workload {
    let ctas = 30 * scale;
    let block = 128u32;
    let n = (ctas * block) as usize;
    let batches = 14u64;
    let mut b = KernelBuilder::new("img", 3);
    let (_tid, addr) = tid_elem_addr(&mut b, 0, 2);
    let stride = b.alu2(Op::Shl, Operand::Param(2), Operand::Imm(2));
    let i = b.mov(Operand::Imm(0));
    b.label("pixels");
    let v = b.ld(Space::Global, addr, 0, Width::W32);
    let bin = b.alu2(Op::And, Operand::Reg(v), Operand::Imm(255));
    let boff = b.alu2(Op::Shl, Operand::Reg(bin), Operand::Imm(2));
    let haddr = b.alu2(Op::Add, Operand::Param(1), Operand::Reg(boff));
    let _old = b.atom(AtomOp::Add, haddr, 0, Operand::Imm(1));
    b.alu_into(addr, Op::Add, &[Operand::Reg(addr), Operand::Reg(stride)]);
    b.alu_into(i, Op::Add, &[Operand::Reg(i), Operand::Imm(1)]);
    let pi = b.setp(CmpOp::Lt, Operand::Reg(i), Operand::Imm(batches as i64));
    b.bra_if(pi, "pixels");
    b.exit();
    let mut memory = SparseMemory::new();
    init_u32(&mut memory, ARR_A, n * batches as usize, 206, u32::MAX);
    wl(
        "imghisto",
        "IMG",
        Suite::GpgpuSim,
        b,
        LaunchConfig::linear(ctas, block, vec![ARR_A, ARR_B, (ctas * block) as u64]),
        memory,
        (ARR_B, 256),
    )
}

/// HI — histogram with a per-CTA shared-memory stage merged by atomics.
pub fn hi(scale: u32) -> Workload {
    let ctas = 30 * scale;
    let block = 256u32;
    let n = (ctas * block) as usize;
    let mut b = KernelBuilder::new("hi", 2);
    b.shared(block * 4);
    // Stage pixels through shared memory (the real kernel's per-CTA
    // staging, kept deterministic), then count with global atomics.
    let tx = b.mov(Operand::Special(SpecialReg::TidX));
    let soff = b.alu2(Op::Shl, Operand::Reg(tx), Operand::Imm(2));
    let (_tid, addr) = tid_elem_addr(&mut b, 0, 2);
    let v = b.ld(Space::Global, addr, 0, Width::W32);
    b.st(Space::Shared, soff, 0, Operand::Reg(v), Width::W32);
    b.bar();
    // Each thread bins its neighbour's pixel (forces the shared stage to
    // matter).
    let nx = b.alu2(Op::Add, Operand::Reg(tx), Operand::Imm(1));
    let nwrap = b.alu2(Op::Rem, Operand::Reg(nx), Operand::Imm(block as i64));
    let noff = b.alu2(Op::Shl, Operand::Reg(nwrap), Operand::Imm(2));
    let pix = b.ld(Space::Shared, noff, 0, Width::W32);
    let bin = b.alu2(Op::And, Operand::Reg(pix), Operand::Imm(255));
    let boff = b.alu2(Op::Shl, Operand::Reg(bin), Operand::Imm(2));
    let gaddr = b.alu2(Op::Add, Operand::Param(1), Operand::Reg(boff));
    let _old = b.atom(AtomOp::Add, gaddr, 0, Operand::Imm(1));
    b.exit();
    let mut memory = SparseMemory::new();
    init_u32(&mut memory, ARR_A, n, 207, u32::MAX);
    wl(
        "histogram",
        "HI",
        Suite::Rodinia,
        b,
        LaunchConfig::linear(ctas, block, vec![ARR_A, ARR_B]),
        memory,
        (ARR_B, 256),
    )
}

/// LBM — lattice-Boltzmann: stream eight distribution arrays with a light
/// collision step.
pub fn lbm(scale: u32) -> Workload {
    let ctas = 30 * scale;
    let block = 128u32;
    let n = (ctas * block) as usize;
    let nf = 8u64;
    let mut b = KernelBuilder::new("lbm", 3);
    let (_tid, base) = tid_elem_addr(&mut b, 0, 2);
    let arr_stride = b.alu2(Op::Shl, Operand::Param(2), Operand::Imm(2));
    // Load 8 distributions f_i from consecutive arrays.
    let mut fs = Vec::new();
    let fa = b.mov(Operand::Reg(base));
    for _ in 0..nf {
        let f = b.ld(Space::Global, fa, 0, Width::W32);
        fs.push(f);
        b.alu_into(fa, Op::Add, &[Operand::Reg(fa), Operand::Reg(arr_stride)]);
    }
    // Collision: relax toward the mean.
    let mut sum = b.mov(Operand::Reg(fs[0]));
    for &f in &fs[1..] {
        sum = b.alu2(Op::FAdd, Operand::Reg(sum), Operand::Reg(f));
    }
    let mean = b.alu2(Op::FMul, Operand::Reg(sum), f32imm(0.125));
    // Store 8 relaxed distributions into the output arrays.
    let tid2 = b.tid_linear_x();
    let off = b.alu2(Op::Shl, Operand::Reg(tid2), Operand::Imm(2));
    let oa = b.alu2(Op::Add, Operand::Param(1), Operand::Reg(off));
    for &f in &fs {
        let d = b.alu2(Op::FSub, Operand::Reg(mean), Operand::Reg(f));
        let nv = b.alu3(Op::FMad, Operand::Reg(d), f32imm(0.6), Operand::Reg(f));
        b.st(Space::Global, oa, 0, Operand::Reg(nv), Width::W32);
        b.alu_into(oa, Op::Add, &[Operand::Reg(oa), Operand::Reg(arr_stride)]);
    }
    b.exit();
    let total = n * nf as usize;
    let mut memory = SparseMemory::new();
    init_f32(&mut memory, ARR_A, total, 208, 0.0, 1.0);
    wl(
        "LBM",
        "LBM",
        Suite::Rodinia,
        b,
        LaunchConfig::linear(ctas, block, vec![ARR_A, ARR_B, (ctas * block) as u64]),
        memory,
        (ARR_B, total),
    )
}

/// SPV — CSR sparse matrix-vector: affine row-pointer loads, then a
/// data-dependent inner loop with indirect column accesses.
pub fn spv(scale: u32) -> Workload {
    let ctas = 30 * scale;
    let block = 128u32;
    let rows = (ctas * block) as usize;
    let nnz_per_row = 6usize;
    let mut b = KernelBuilder::new("spv", 5);
    let tid = b.tid_linear_x();
    let roff = b.alu2(Op::Shl, Operand::Reg(tid), Operand::Imm(2));
    let rp = b.alu2(Op::Add, Operand::Param(0), Operand::Reg(roff));
    let start = b.ld(Space::Global, rp, 0, Width::W32);
    let end = b.ld(Space::Global, rp, 4, Width::W32);
    let acc = b.mov(f32imm(0.0));
    let j = b.mov(Operand::Reg(start));
    b.label("nz");
    let pj = b.setp(CmpOp::Ge, Operand::Reg(j), Operand::Reg(end));
    b.bra_if(pj, "done");
    let joff = b.alu2(Op::Shl, Operand::Reg(j), Operand::Imm(2));
    let ca = b.alu2(Op::Add, Operand::Param(1), Operand::Reg(joff));
    let col = b.ld(Space::Global, ca, 0, Width::W32);
    let va = b.alu2(Op::Add, Operand::Param(2), Operand::Reg(joff));
    let val = b.ld(Space::Global, va, 0, Width::W32);
    let xoff = b.alu2(Op::Shl, Operand::Reg(col), Operand::Imm(2));
    let xa = b.alu2(Op::Add, Operand::Param(3), Operand::Reg(xoff));
    let x = b.ld(Space::Global, xa, 0, Width::W32);
    b.alu_into(
        acc,
        Op::FMad,
        &[Operand::Reg(val), Operand::Reg(x), Operand::Reg(acc)],
    );
    b.alu_into(j, Op::Add, &[Operand::Reg(j), Operand::Imm(1)]);
    b.bra("nz");
    b.label("done");
    let out = b.alu2(Op::Add, Operand::Param(4), Operand::Reg(roff));
    b.st(Space::Global, out, 0, Operand::Reg(acc), Width::W32);
    b.exit();
    let mut memory = SparseMemory::new();
    // Row pointers: uniform nnz per row.
    let rp_data: Vec<u32> = (0..=rows as u32).map(|r| r * nnz_per_row as u32).collect();
    memory.write_u32_slice(ARR_A, &rp_data);
    init_u32(&mut memory, ARR_B, rows * nnz_per_row, 209, rows as u32);
    init_f32(&mut memory, ARR_C, rows * nnz_per_row, 210, -1.0, 1.0);
    init_f32(&mut memory, ARR_D, rows, 211, -1.0, 1.0);
    wl(
        "SPMV",
        "SPV",
        Suite::Rodinia,
        b,
        LaunchConfig::linear(
            ctas,
            block,
            vec![ARR_A, ARR_B, ARR_C, ARR_D, ARR_D + 0x40_0000],
        ),
        memory,
        (ARR_D + 0x40_0000, rows),
    )
}

/// BT — b+tree: pointer-chasing traversal; indirect loads dominate and
/// DAC finds almost nothing to decouple (the paper's low-gain case).
pub fn bt(scale: u32) -> Workload {
    let ctas = 30 * scale;
    let block = 128u32;
    let n = (ctas * block) as usize;
    let nodes = 4096u32;
    let mut b = KernelBuilder::new("bt", 3);
    let (_tid, kaddr) = tid_elem_addr(&mut b, 0, 2);
    let key = b.ld(Space::Global, kaddr, 0, Width::W32);
    let node = b.mov(Operand::Imm(0));
    let lvl = b.mov(Operand::Imm(0));
    b.label("walk");
    // child = tree[node*8 + (key >> level) & 7]
    let kshift = b.alu2(Op::Shr, Operand::Reg(key), Operand::Reg(lvl));
    let slot = b.alu2(Op::And, Operand::Reg(kshift), Operand::Imm(7));
    let nidx = b.alu3(
        Op::Mad,
        Operand::Reg(node),
        Operand::Imm(8),
        Operand::Reg(slot),
    );
    let noff = b.alu2(Op::Shl, Operand::Reg(nidx), Operand::Imm(2));
    let naddr = b.alu2(Op::Add, Operand::Param(1), Operand::Reg(noff));
    let child = b.ld(Space::Global, naddr, 0, Width::W32);
    b.alu_into(node, Op::Mov, &[Operand::Reg(child)]);
    b.alu_into(lvl, Op::Add, &[Operand::Reg(lvl), Operand::Imm(3)]);
    let p = b.setp(CmpOp::Lt, Operand::Reg(lvl), Operand::Imm(12));
    b.bra_if(p, "walk");
    let tid2 = b.tid_linear_x();
    let ooff = b.alu2(Op::Shl, Operand::Reg(tid2), Operand::Imm(2));
    let out = b.alu2(Op::Add, Operand::Param(2), Operand::Reg(ooff));
    b.st(Space::Global, out, 0, Operand::Reg(node), Width::W32);
    b.exit();
    let mut memory = SparseMemory::new();
    init_u32(&mut memory, ARR_A, n, 212, u32::MAX);
    init_u32(&mut memory, ARR_B, nodes as usize * 8, 213, nodes / 2);
    wl(
        "b+tree",
        "BT",
        Suite::CudaSdk,
        b,
        LaunchConfig::linear(ctas, block, vec![ARR_A, ARR_B, ARR_C]),
        memory,
        (ARR_C, n),
    )
}

/// LUD — LU decomposition row update: strided 2-D affine accesses.
pub fn lud(scale: u32) -> Workload {
    let ctas = 30 * scale;
    let block = 128u32;
    let n = (ctas * block) as usize;
    let steps = 12u64;
    let mut b = KernelBuilder::new("lud", 4);
    let (_tid, own) = tid_elem_addr(&mut b, 0, 2);
    let v = b.ld(Space::Global, own, 0, Width::W32);
    let cur = b.mov(Operand::Reg(v));
    let k = b.mov(Operand::Imm(0));
    let pivot_a = b.mov(Operand::Param(2));
    let rowstride = b.alu2(Op::Shl, Operand::Param(3), Operand::Imm(2));
    b.label("elim");
    // Pivot element for this step (scalar load).
    let piv = b.ld(Space::Global, pivot_a, 0, Width::W32);
    let scaled = b.alu2(Op::FMul, Operand::Reg(piv), f32imm(0.25));
    b.alu_into(cur, Op::FSub, &[Operand::Reg(cur), Operand::Reg(scaled)]);
    b.alu_into(
        pivot_a,
        Op::Add,
        &[Operand::Reg(pivot_a), Operand::Reg(rowstride)],
    );
    b.alu_into(k, Op::Add, &[Operand::Reg(k), Operand::Imm(1)]);
    let p = b.setp(CmpOp::Lt, Operand::Reg(k), Operand::Imm(steps as i64));
    b.bra_if(p, "elim");
    let tid2 = b.tid_linear_x();
    let ooff = b.alu2(Op::Shl, Operand::Reg(tid2), Operand::Imm(2));
    let out = b.alu2(Op::Add, Operand::Param(1), Operand::Reg(ooff));
    b.st(Space::Global, out, 0, Operand::Reg(cur), Width::W32);
    b.exit();
    let mut memory = SparseMemory::new();
    init_f32(&mut memory, ARR_A, n, 214, -2.0, 2.0);
    init_f32(&mut memory, ARR_C, n, 215, -2.0, 2.0);
    wl(
        "LUD",
        "LUD",
        Suite::CudaSdk,
        b,
        LaunchConfig::linear(ctas, block, vec![ARR_A, ARR_B, ARR_C, 64]),
        memory,
        (ARR_B, n),
    )
}

/// SR2 — srad v2: interior 3-point stencil, streaming with light compute.
pub fn sr2(scale: u32) -> Workload {
    let ctas = 30 * scale;
    let block = 128u32;
    let n = (ctas * block) as usize;
    let rows = 14u64;
    let mut b = KernelBuilder::new("sr2", 3);
    let (_tid, c) = tid_elem_addr(&mut b, 0, 2);
    let tid2 = b.tid_linear_x();
    let off = b.alu2(Op::Shl, Operand::Reg(tid2), Operand::Imm(2));
    let out = b.alu2(Op::Add, Operand::Param(1), Operand::Reg(off));
    let stride = b.alu2(Op::Shl, Operand::Param(2), Operand::Imm(2));
    let row = b.mov(Operand::Imm(0));
    b.label("rows");
    let mid = b.ld(Space::Global, c, 4, Width::W32);
    let l = b.ld(Space::Global, c, 0, Width::W32);
    let r = b.ld(Space::Global, c, 8, Width::W32);
    let s = b.alu2(Op::FAdd, Operand::Reg(l), Operand::Reg(r));
    let upd = b.alu3(Op::FMad, Operand::Reg(mid), f32imm(-1.9), Operand::Reg(s));
    b.st(Space::Global, out, 0, Operand::Reg(upd), Width::W32);
    b.alu_into(c, Op::Add, &[Operand::Reg(c), Operand::Reg(stride)]);
    b.alu_into(out, Op::Add, &[Operand::Reg(out), Operand::Reg(stride)]);
    b.alu_into(row, Op::Add, &[Operand::Reg(row), Operand::Imm(1)]);
    let pr = b.setp(CmpOp::Lt, Operand::Reg(row), Operand::Imm(rows as i64));
    b.bra_if(pr, "rows");
    b.exit();
    let total = n * rows as usize;
    let mut memory = SparseMemory::new();
    init_f32(&mut memory, ARR_A, total + 2, 216, 0.0, 1.0);
    wl(
        "sradv2",
        "SR2",
        Suite::CudaSdk,
        b,
        LaunchConfig::linear(ctas, block, vec![ARR_A, ARR_B, (ctas * block) as u64]),
        memory,
        (ARR_B, total),
    )
}

/// SC — streamcluster: distance evaluation of each point against a scalar
/// loop of centers, re-loading point coordinates each round.
pub fn sc(scale: u32) -> Workload {
    let ctas = 30 * scale;
    let block = 128u32;
    let n = (ctas * block) as usize;
    let dims = 4u64;
    let centers = 6u64;
    let mut b = KernelBuilder::new("sc", 4);
    let tid = b.tid_linear_x();
    let best = b.mov(f32imm(1e30));
    let cidx = b.mov(Operand::Imm(0));
    let ca = b.mov(Operand::Param(1));
    b.label("centers");
    // Distance over dims: reload the point's coordinates (strided affine).
    let dist = b.mov(f32imm(0.0));
    let d = b.mov(Operand::Imm(0));
    let pidx = b.alu3(
        Op::Mad,
        Operand::Reg(tid),
        Operand::Imm(dims as i64),
        Operand::Imm(0),
    );
    let poff = b.alu2(Op::Shl, Operand::Reg(pidx), Operand::Imm(2));
    let pa = b.alu2(Op::Add, Operand::Param(0), Operand::Reg(poff));
    b.label("dims");
    let pv = b.ld(Space::Global, pa, 0, Width::W32);
    let cv = b.ld(Space::Global, ca, 0, Width::W32);
    let diff = b.alu2(Op::FSub, Operand::Reg(pv), Operand::Reg(cv));
    b.alu_into(
        dist,
        Op::FMad,
        &[Operand::Reg(diff), Operand::Reg(diff), Operand::Reg(dist)],
    );
    b.alu_into(pa, Op::Add, &[Operand::Reg(pa), Operand::Imm(4)]);
    b.alu_into(ca, Op::Add, &[Operand::Reg(ca), Operand::Imm(4)]);
    b.alu_into(d, Op::Add, &[Operand::Reg(d), Operand::Imm(1)]);
    let pd = b.setp(CmpOp::Lt, Operand::Reg(d), Operand::Imm(dims as i64));
    b.bra_if(pd, "dims");
    b.alu_into(best, Op::FMin, &[Operand::Reg(best), Operand::Reg(dist)]);
    b.alu_into(cidx, Op::Add, &[Operand::Reg(cidx), Operand::Imm(1)]);
    let pc = b.setp(CmpOp::Lt, Operand::Reg(cidx), Operand::Imm(centers as i64));
    b.bra_if(pc, "centers");
    let ooff = b.alu2(Op::Shl, Operand::Reg(tid), Operand::Imm(2));
    let out = b.alu2(Op::Add, Operand::Param(2), Operand::Reg(ooff));
    b.st(Space::Global, out, 0, Operand::Reg(best), Width::W32);
    b.exit();
    let mut memory = SparseMemory::new();
    init_f32(&mut memory, ARR_A, n * dims as usize, 217, -1.0, 1.0);
    init_f32(
        &mut memory,
        ARR_B,
        (centers * dims) as usize,
        218,
        -1.0,
        1.0,
    );
    wl(
        "stream cluster",
        "SC",
        Suite::CudaSdk,
        b,
        LaunchConfig::linear(ctas, block, vec![ARR_A, ARR_B, ARR_C, 0]),
        memory,
        (ARR_C, n),
    )
}

/// KM — kmeans membership assignment: like SC plus an argmin index store.
pub fn km(scale: u32) -> Workload {
    let ctas = 30 * scale;
    let block = 128u32;
    let n = (ctas * block) as usize;
    let clusters = 5u64;
    let mut b = KernelBuilder::new("km", 4);
    let tid = b.tid_linear_x();
    let poff = b.alu2(Op::Shl, Operand::Reg(tid), Operand::Imm(2));
    let pa = b.alu2(Op::Add, Operand::Param(0), Operand::Reg(poff));
    let best = b.mov(f32imm(1e30));
    let bestc = b.mov(Operand::Imm(0));
    let c = b.mov(Operand::Imm(0));
    let ca = b.mov(Operand::Param(1));
    let feat = b.alu2(Op::Shl, Operand::Param(3), Operand::Imm(2));
    b.label("cl");
    // The real kernel re-reads the (multi-dimensional) feature vector per
    // cluster; model that with a strided reload.
    let point = b.ld(Space::Global, pa, 0, Width::W32);
    b.alu_into(pa, Op::Add, &[Operand::Reg(pa), Operand::Reg(feat)]);
    let cv = b.ld(Space::Global, ca, 0, Width::W32);
    let diff = b.alu2(Op::FSub, Operand::Reg(point), Operand::Reg(cv));
    let d2 = b.alu2(Op::FMul, Operand::Reg(diff), Operand::Reg(diff));
    let better = b.setp_f(CmpOp::Lt, Operand::Reg(d2), Operand::Reg(best));
    let nb = b.sel(better, Operand::Reg(d2), Operand::Reg(best));
    b.alu_into(best, Op::Mov, &[Operand::Reg(nb)]);
    let nc = b.sel(better, Operand::Reg(c), Operand::Reg(bestc));
    b.alu_into(bestc, Op::Mov, &[Operand::Reg(nc)]);
    b.alu_into(ca, Op::Add, &[Operand::Reg(ca), Operand::Imm(4)]);
    b.alu_into(c, Op::Add, &[Operand::Reg(c), Operand::Imm(1)]);
    let p = b.setp(CmpOp::Lt, Operand::Reg(c), Operand::Imm(clusters as i64));
    b.bra_if(p, "cl");
    let out = b.alu2(Op::Add, Operand::Param(2), Operand::Reg(poff));
    b.st(Space::Global, out, 0, Operand::Reg(bestc), Width::W32);
    b.exit();
    let mut memory = SparseMemory::new();
    init_f32(
        &mut memory,
        ARR_A,
        n * (clusters as usize + 1),
        219,
        -4.0,
        4.0,
    );
    init_f32(&mut memory, ARR_B, clusters as usize, 220, -4.0, 4.0);
    wl(
        "KMEANS",
        "KM",
        Suite::CudaSdk,
        b,
        LaunchConfig::linear(
            ctas,
            block,
            vec![ARR_A, ARR_B, ARR_C, (ctas * block) as u64],
        ),
        memory,
        (ARR_C, n),
    )
}

/// BFS — frontier expansion with data-dependent control flow and indirect
/// neighbour loads (nothing for DAC here — the paper's worst case).
pub fn bfs(scale: u32) -> Workload {
    let ctas = 30 * scale;
    let block = 128u32;
    let n = (ctas * block) as usize;
    let deg = 4usize;
    let mut b = KernelBuilder::new("bfs", 5);
    let tid = b.tid_linear_x();
    let foff = b.alu2(Op::Shl, Operand::Reg(tid), Operand::Imm(2));
    let fa = b.alu2(Op::Add, Operand::Param(0), Operand::Reg(foff));
    let active = b.ld(Space::Global, fa, 0, Width::W32);
    let pskip = b.setp(CmpOp::Eq, Operand::Reg(active), Operand::Imm(0));
    b.bra_if(pskip, "skip");
    // Visit neighbours: indices from the edge list (indirect).
    let e = b.mov(Operand::Imm(0));
    let eidx = b.alu3(
        Op::Mad,
        Operand::Reg(tid),
        Operand::Imm(deg as i64),
        Operand::Imm(0),
    );
    let eoff = b.alu2(Op::Shl, Operand::Reg(eidx), Operand::Imm(2));
    let ea = b.alu2(Op::Add, Operand::Param(1), Operand::Reg(eoff));
    b.label("edges");
    let nbr = b.ld(Space::Global, ea, 0, Width::W32);
    let noff = b.alu2(Op::Shl, Operand::Reg(nbr), Operand::Imm(2));
    let costa = b.alu2(Op::Add, Operand::Param(2), Operand::Reg(noff));
    let cost = b.ld(Space::Global, costa, 0, Width::W32);
    let newc = b.alu2(Op::Add, Operand::Reg(cost), Operand::Imm(1));
    let outa = b.alu2(Op::Add, Operand::Param(3), Operand::Reg(noff));
    b.st(Space::Global, outa, 0, Operand::Reg(newc), Width::W32);
    b.alu_into(ea, Op::Add, &[Operand::Reg(ea), Operand::Imm(4)]);
    b.alu_into(e, Op::Add, &[Operand::Reg(e), Operand::Imm(1)]);
    let pe = b.setp(CmpOp::Lt, Operand::Reg(e), Operand::Imm(deg as i64));
    b.bra_if(pe, "edges");
    b.label("skip");
    b.exit();
    let mut memory = SparseMemory::new();
    init_u32(&mut memory, ARR_A, n, 221, 2); // ~half the frontier active
    init_u32(&mut memory, ARR_B, n * deg, 222, n as u32);
    init_u32(&mut memory, ARR_C, n, 223, 30);
    wl(
        "BFS",
        "BFS",
        Suite::CudaSdk,
        b,
        LaunchConfig::linear(ctas, block, vec![ARR_A, ARR_B, ARR_C, ARR_D, 0]),
        memory,
        (ARR_D, n),
    )
}

/// CFD — unstructured-mesh flux: affine neighbour-index loads followed by
/// indirect value gathers (partially decoupleable).
pub fn cfd(scale: u32) -> Workload {
    let ctas = 30 * scale;
    let block = 128u32;
    let n = (ctas * block) as usize;
    let mut b = KernelBuilder::new("cfd", 4);
    let (_tid, nbra) = tid_elem_addr(&mut b, 0, 4); // 4 neighbour ids/cell
    let tid = b.tid_linear_x();
    let coff = b.alu2(Op::Shl, Operand::Reg(tid), Operand::Imm(2));
    let va = b.alu2(Op::Add, Operand::Param(1), Operand::Reg(coff));
    let own = b.ld(Space::Global, va, 0, Width::W32);
    let flux = b.mov(f32imm(0.0));
    for k in 0..4i64 {
        let nid = b.ld(Space::Global, nbra, 4 * k, Width::W32);
        let noff = b.alu2(Op::Shl, Operand::Reg(nid), Operand::Imm(2));
        let na = b.alu2(Op::Add, Operand::Param(1), Operand::Reg(noff));
        let nv = b.ld(Space::Global, na, 0, Width::W32);
        let d = b.alu2(Op::FSub, Operand::Reg(nv), Operand::Reg(own));
        b.alu_into(
            flux,
            Op::FMad,
            &[Operand::Reg(d), f32imm(0.25), Operand::Reg(flux)],
        );
    }
    let out = b.alu2(Op::Add, Operand::Param(2), Operand::Reg(coff));
    b.st(Space::Global, out, 0, Operand::Reg(flux), Width::W32);
    b.exit();
    let mut memory = SparseMemory::new();
    init_u32(&mut memory, ARR_A, n * 4, 224, n as u32);
    init_f32(&mut memory, ARR_B, n, 225, -1.0, 1.0);
    wl(
        "CFD",
        "CFD",
        Suite::CudaSdk,
        b,
        LaunchConfig::linear(ctas, block, vec![ARR_A, ARR_B, ARR_C, 0]),
        memory,
        (ARR_C, n),
    )
}

/// MC — monte carlo: per-thread RNG walk storing every path sample.
pub fn mc(scale: u32) -> Workload {
    let ctas = 30 * scale;
    let block = 128u32;
    let n = (ctas * block) as usize;
    let steps = 12u64;
    let mut b = KernelBuilder::new("mc", 4);
    let (_tid, sa) = tid_elem_addr(&mut b, 0, 2);
    let seed = b.ld(Space::Global, sa, 0, Width::W32);
    let state = b.mov(Operand::Reg(seed));
    let i = b.mov(Operand::Imm(0));
    let tid2 = b.tid_linear_x();
    let poff = b.alu2(Op::Shl, Operand::Reg(tid2), Operand::Imm(2));
    let path = b.alu2(Op::Add, Operand::Param(1), Operand::Reg(poff));
    let stride = b.alu2(Op::Shl, Operand::Param(3), Operand::Imm(2));
    b.label("walk");
    // LCG step on data.
    let m1 = b.alu3(
        Op::Mad,
        Operand::Reg(state),
        Operand::Imm(1664525),
        Operand::Imm(1013904223),
    );
    let m2 = b.alu2(Op::And, Operand::Reg(m1), Operand::Imm(0xFFFF_FFFF));
    b.alu_into(state, Op::Mov, &[Operand::Reg(m2)]);
    b.st(Space::Global, path, 0, Operand::Reg(state), Width::W32);
    b.alu_into(path, Op::Add, &[Operand::Reg(path), Operand::Reg(stride)]);
    b.alu_into(i, Op::Add, &[Operand::Reg(i), Operand::Imm(1)]);
    let p = b.setp(CmpOp::Lt, Operand::Reg(i), Operand::Param(2));
    b.bra_if(p, "walk");
    b.exit();
    let mut memory = SparseMemory::new();
    init_u32(&mut memory, ARR_A, n, 226, u32::MAX);
    wl(
        "monte carlo",
        "MC",
        Suite::Parboil,
        b,
        LaunchConfig::linear(
            ctas,
            block,
            vec![ARR_A, ARR_B, steps, (ctas * block) as u64],
        ),
        memory,
        (ARR_B, n * steps as usize),
    )
}

/// MT — mersenne twister: state mixing with a modulo-mapped partner index
/// (affine-mod loads) and streaming output.
pub fn mt(scale: u32) -> Workload {
    let ctas = 30 * scale;
    let block = 128u32;
    let n = (ctas * block) as usize;
    let period = 397i64;
    let segs = 14u64;
    let mut b = KernelBuilder::new("mt", 3);
    let tid = b.tid_linear_x();
    // partner = (tid + 397) mod n  — mod-type affine tuple.
    let shifted = b.alu2(Op::Add, Operand::Reg(tid), Operand::Imm(period));
    let partner = b.alu2(Op::Rem, Operand::Reg(shifted), Operand::Imm(n as i64));
    let so = b.alu2(Op::Shl, Operand::Reg(tid), Operand::Imm(2));
    let po = b.alu2(Op::Shl, Operand::Reg(partner), Operand::Imm(2));
    let sa = b.alu2(Op::Add, Operand::Param(0), Operand::Reg(so));
    let pa = b.alu2(Op::Add, Operand::Param(0), Operand::Reg(po));
    let out = b.alu2(Op::Add, Operand::Param(1), Operand::Reg(so));
    let stride = b.alu2(Op::Shl, Operand::Param(2), Operand::Imm(2));
    let seg = b.mov(Operand::Imm(0));
    b.label("segs");
    let s = b.ld(Space::Global, sa, 0, Width::W32);
    let q = b.ld(Space::Global, pa, 0, Width::W32);
    // Tempering (data ops).
    let x = b.alu2(Op::Xor, Operand::Reg(s), Operand::Reg(q));
    let sh = b.alu2(Op::Shr, Operand::Reg(x), Operand::Imm(11));
    let y = b.alu2(Op::Xor, Operand::Reg(x), Operand::Reg(sh));
    let sl = b.alu2(Op::Shl, Operand::Reg(y), Operand::Imm(7));
    let z = b.alu2(Op::Xor, Operand::Reg(y), Operand::Reg(sl));
    b.st(Space::Global, out, 0, Operand::Reg(z), Width::W32);
    b.alu_into(sa, Op::Add, &[Operand::Reg(sa), Operand::Reg(stride)]);
    b.alu_into(pa, Op::Add, &[Operand::Reg(pa), Operand::Reg(stride)]);
    b.alu_into(out, Op::Add, &[Operand::Reg(out), Operand::Reg(stride)]);
    b.alu_into(seg, Op::Add, &[Operand::Reg(seg), Operand::Imm(1)]);
    let ps = b.setp(CmpOp::Lt, Operand::Reg(seg), Operand::Imm(segs as i64));
    b.bra_if(ps, "segs");
    b.exit();
    let total = n * segs as usize;
    let mut memory = SparseMemory::new();
    init_u32(&mut memory, ARR_A, total, 227, u32::MAX);
    wl(
        "mersenne twister",
        "MT",
        Suite::Parboil,
        b,
        LaunchConfig::linear(ctas, block, vec![ARR_A, ARR_B, n as u64]),
        memory,
        (ARR_B, total),
    )
}

/// SP — scalar product: streaming multiply + shared-memory tree reduction
/// with affine `tid < s` predicates, finished by one atomic per CTA.
pub fn sp(scale: u32) -> Workload {
    let ctas = 30 * scale;
    let block = 128u32;
    let n = (ctas * block) as usize;
    let mut b = KernelBuilder::new("sp", 4);
    b.shared(block * 4);
    let (_tid, aa) = tid_elem_addr(&mut b, 0, 2);
    let tid = b.tid_linear_x();
    let off = b.alu2(Op::Shl, Operand::Reg(tid), Operand::Imm(2));
    let ba = b.alu2(Op::Add, Operand::Param(1), Operand::Reg(off));
    // Stream four strided element pairs per thread (grid-stride loop).
    let stride = b.alu2(Op::Shl, Operand::Param(3), Operand::Imm(2));
    let prod = b.mov(f32imm(0.0));
    let seg = b.mov(Operand::Imm(0));
    b.label("stream");
    let x = b.ld(Space::Global, aa, 0, Width::W32);
    let y = b.ld(Space::Global, ba, 0, Width::W32);
    b.alu_into(
        prod,
        Op::FMad,
        &[Operand::Reg(x), Operand::Reg(y), Operand::Reg(prod)],
    );
    b.alu_into(aa, Op::Add, &[Operand::Reg(aa), Operand::Reg(stride)]);
    b.alu_into(ba, Op::Add, &[Operand::Reg(ba), Operand::Reg(stride)]);
    b.alu_into(seg, Op::Add, &[Operand::Reg(seg), Operand::Imm(1)]);
    let pseg = b.setp(CmpOp::Lt, Operand::Reg(seg), Operand::Imm(4));
    b.bra_if(pseg, "stream");
    let tx = b.mov(Operand::Special(SpecialReg::TidX));
    let soff = b.alu2(Op::Shl, Operand::Reg(tx), Operand::Imm(2));
    b.st(Space::Shared, soff, 0, Operand::Reg(prod), Width::W32);
    // Tree reduction: s = 64, 32, ..., 1.
    let s = b.mov(Operand::Imm(block as i64 / 2));
    b.label("reduce");
    b.bar();
    let pin = b.setp(CmpOp::Ge, Operand::Reg(tx), Operand::Reg(s));
    b.bra_if(pin, "skip_add");
    let mine = b.ld(Space::Shared, soff, 0, Width::W32);
    let partner_off = b.alu3(
        Op::Mad,
        Operand::Reg(s),
        Operand::Imm(4),
        Operand::Reg(soff),
    );
    let theirs = b.ld(Space::Shared, partner_off, 0, Width::W32);
    let sum = b.alu2(Op::FAdd, Operand::Reg(mine), Operand::Reg(theirs));
    b.st(Space::Shared, soff, 0, Operand::Reg(sum), Width::W32);
    b.label("skip_add");
    b.alu_into(s, Op::Shr, &[Operand::Reg(s), Operand::Imm(1)]);
    let pmore = b.setp(CmpOp::Gt, Operand::Reg(s), Operand::Imm(0));
    b.bra_if(pmore, "reduce");
    b.bar();
    // Thread 0 publishes the CTA's partial sum.
    let p0 = b.setp(CmpOp::Ne, Operand::Reg(tx), Operand::Imm(0));
    b.bra_if(p0, "done");
    let total = b.ld(Space::Shared, soff, 0, Width::W32);
    let coff = b.alu2(
        Op::Shl,
        Operand::Special(SpecialReg::CtaIdX),
        Operand::Imm(2),
    );
    let outa = b.alu2(Op::Add, Operand::Param(2), Operand::Reg(coff));
    b.st(Space::Global, outa, 0, Operand::Reg(total), Width::W32);
    b.label("done");
    b.exit();
    let mut memory = SparseMemory::new();
    init_f32(&mut memory, ARR_A, n * 4, 228, -1.0, 1.0);
    init_f32(&mut memory, ARR_B, n * 4, 229, -1.0, 1.0);
    wl(
        "Scalar Product",
        "SP",
        Suite::Parboil,
        b,
        LaunchConfig::linear(
            ctas,
            block,
            vec![ARR_A, ARR_B, ARR_C, (ctas * block) as u64],
        ),
        memory,
        (ARR_C, ctas as usize),
    )
}

/// CS — separable convolution: nine displaced affine loads per output.
pub fn cs(scale: u32) -> Workload {
    let ctas = 30 * scale;
    let block = 128u32;
    let n = (ctas * block) as usize;
    let radius = 4i64;
    let segs = 12u64;
    let mut b = KernelBuilder::new("cs", 3);
    let (_tid, center) = tid_elem_addr(&mut b, 0, 2);
    let tid2 = b.tid_linear_x();
    let off = b.alu2(Op::Shl, Operand::Reg(tid2), Operand::Imm(2));
    let out = b.alu2(Op::Add, Operand::Param(1), Operand::Reg(off));
    let stride = b.alu2(Op::Shl, Operand::Param(2), Operand::Imm(2));
    let seg = b.mov(Operand::Imm(0));
    b.label("segs");
    let acc = b.mov(f32imm(0.0));
    for k in -radius..=radius {
        let v = b.ld(Space::Global, center, (radius + k) * 4, Width::W32);
        let w = 1.0f32 / (1.0 + k.unsigned_abs() as f32);
        b.alu_into(
            acc,
            Op::FMad,
            &[Operand::Reg(v), f32imm(w), Operand::Reg(acc)],
        );
    }
    b.st(Space::Global, out, 0, Operand::Reg(acc), Width::W32);
    b.alu_into(
        center,
        Op::Add,
        &[Operand::Reg(center), Operand::Reg(stride)],
    );
    b.alu_into(out, Op::Add, &[Operand::Reg(out), Operand::Reg(stride)]);
    b.alu_into(seg, Op::Add, &[Operand::Reg(seg), Operand::Imm(1)]);
    let ps = b.setp(CmpOp::Lt, Operand::Reg(seg), Operand::Imm(segs as i64));
    b.bra_if(ps, "segs");
    b.exit();
    let total = n * segs as usize;
    let mut memory = SparseMemory::new();
    init_f32(
        &mut memory,
        ARR_A,
        total + 2 * radius as usize + 1,
        230,
        -1.0,
        1.0,
    );
    wl(
        "Convolution Sep.",
        "CS",
        Suite::Parboil,
        b,
        LaunchConfig::linear(ctas, block, vec![ARR_A, ARR_B, (ctas * block) as u64]),
        memory,
        (ARR_B, total),
    )
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn all_memory_kernels_build_and_validate() {
        for w in [
            lib(1),
            sg(1),
            st(1),
            img(1),
            hi(1),
            lbm(1),
            spv(1),
            bt(1),
            lud(1),
            sr2(1),
            sc(1),
            km(1),
            bfs(1),
            cfd(1),
            mc(1),
            mt(1),
            sp(1),
            cs(1),
        ] {
            w.kernel
                .validate()
                .unwrap_or_else(|e| panic!("{}: {e}", w.abbr));
            let _ = w.program();
        }
    }
}

//! `gpu-energy` — a GPUWattch-style event-based energy model and a
//! CACTI-style area model for DAC's added hardware (paper §4.8, §5.6).
//!
//! The simulator counts events (lane-level ALU ops, register-file accesses,
//! cache and DRAM accesses, DAC queue traffic); this crate converts them to
//! energy with per-event constants. The constants are plausible 40 nm-class
//! values — Figure 21 is a *relative* comparison, so only the ratios between
//! components matter, and those are dominated by the event counts the
//! simulator measures exactly. DAC's added-SRAM energies are the paper's
//! Table 1 numbers.

use simt_sim::SimStats;

/// Per-event energy constants in picojoules.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct EnergyModel {
    /// One integer/float ALU lane-operation.
    pub alu_pj: f64,
    /// One SFU (transcendental) lane-operation.
    pub sfu_pj: f64,
    /// One register-file lane access (read or write).
    pub regfile_pj: f64,
    /// Front-end overhead per warp instruction (fetch/decode/schedule).
    pub issue_pj: f64,
    /// One L1 access (demand hit or miss probe).
    pub l1_pj: f64,
    /// One shared-memory warp access.
    pub shared_pj: f64,
    /// One L2 access.
    pub l2_pj: f64,
    /// One DRAM line transfer.
    pub dram_pj: f64,
    /// DAC Affine Tuple Queue access (Table 1: 5.3 pJ).
    pub atq_pj: f64,
    /// DAC Per-Warp Address Queue access (Table 1: 3.4 pJ).
    pub pwaq_pj: f64,
    /// DAC Per-Warp Predicate Queue access (Table 1: 1.5 pJ).
    pub pwpq_pj: f64,
    /// DAC Per-Warp Stack access (Table 1: 2.7 pJ).
    pub pws_pj: f64,
    /// Whole-GPU static energy per cycle.
    pub static_pj_per_cycle: f64,
}

impl EnergyModel {
    /// The model used throughout the reproduction.
    pub fn gtx480() -> Self {
        EnergyModel {
            alu_pj: 7.0,
            sfu_pj: 30.0,
            regfile_pj: 2.8,
            issue_pj: 250.0,
            l1_pj: 160.0,
            shared_pj: 110.0,
            l2_pj: 320.0,
            dram_pj: 4600.0,
            atq_pj: 5.3,
            pwaq_pj: 3.4,
            pwpq_pj: 1.5,
            pws_pj: 2.7,
            static_pj_per_cycle: 35_000.0,
        }
    }
}

impl Default for EnergyModel {
    fn default() -> Self {
        Self::gtx480()
    }
}

/// Energy totals by component, in picojoules (Figure 21's stack).
#[derive(Debug, Clone, Copy, Default, PartialEq)]
pub struct EnergyBreakdown {
    /// ALU + SFU dynamic energy.
    pub alu: f64,
    /// Register-file dynamic energy.
    pub regfile: f64,
    /// Other dynamic energy (front end, caches, DRAM).
    pub other_dynamic: f64,
    /// DAC's added-hardware overhead (queues, expansion, stacks).
    pub dac_overhead: f64,
    /// Leakage over the run.
    pub static_: f64,
}

impl EnergyBreakdown {
    /// Total energy.
    pub fn total(&self) -> f64 {
        self.alu + self.regfile + self.other_dynamic + self.dac_overhead + self.static_
    }

    /// Dynamic energy only.
    pub fn dynamic(&self) -> f64 {
        self.total() - self.static_
    }

    /// This run's total relative to a baseline run (Figure 21 bar height).
    pub fn normalized_to(&self, baseline: &EnergyBreakdown) -> f64 {
        self.total() / baseline.total()
    }
}

/// Convert a run's statistics into an energy breakdown.
pub fn energy_of(report: &simt_sim::SimReport, model: &EnergyModel) -> EnergyBreakdown {
    let s: &SimStats = &report.stats;
    let m = &report.mem;
    let alu = s.alu_lane_ops as f64 * model.alu_pj + s.sfu_lane_ops as f64 * model.sfu_pj;
    let regfile = s.regfile_accesses as f64 * model.regfile_pj;
    let issue = s.total_instructions() as f64 * model.issue_pj;
    let l1 = (m.l1_hits + m.l1_misses + m.pbuf_hits + m.pbuf_fills) as f64 * model.l1_pj;
    let shared = s.shared_accesses as f64 * model.shared_pj;
    let l2 = (m.l2_hits + m.l2_misses) as f64 * model.l2_pj;
    let dram = m.dram_serviced as f64 * model.dram_pj;
    let other_dynamic = issue + l1 + shared + l2 + dram;
    // DAC overhead: every enqueue touches the ATQ; every expansion writes a
    // per-warp queue and the consumer reads it (×2); stack traffic per
    // expansion-unit record. Affine-warp instructions carry half the
    // front-end cost of a full warp instruction (no 32-lane operand reads).
    let dac_overhead = s.aeu_records as f64 * (model.atq_pj + 2.0 * model.pwaq_pj + model.pws_pj)
        + s.peu_records as f64 * (model.atq_pj + 2.0 * model.pwpq_pj)
        + s.affine_instructions as f64 * model.issue_pj * 0.5;
    let static_ = report.cycles as f64 * model.static_pj_per_cycle;
    EnergyBreakdown {
        alu,
        regfile,
        other_dynamic,
        dac_overhead,
        static_,
    }
}

/// CACTI/GPUWattch-style area estimate for DAC's additions (paper §4.8).
pub mod area {
    /// Per-SM SRAM added by DAC, in bytes (Table 1 + §4.8: ATQ 392 B,
    /// PWAQ 1560 B, PWPQ 768 B, Affine SIMT Stack 224 + 1536 B, DCRF
    /// mirror 1760 B ≈ 6 KB).
    pub const SRAM_BYTES_PER_SM: u64 = 392 + 1560 + 768 + 224 + 1536 + 1760;

    /// Estimated SRAM area per SM in mm² (the paper's CACTI result).
    pub const SRAM_MM2_PER_SM: f64 = 0.21;

    /// Estimated area of the two expansion-unit ALUs per SM in mm²
    /// (GPUWattch model, §4.8).
    pub const ALU_MM2_PER_SM: f64 = 0.16;

    /// GTX 480 die size in mm² \[10\].
    pub const GTX480_DIE_MM2: f64 = 520.0;

    /// Total DAC area for `num_sms` SMs, in mm².
    pub fn dac_area_mm2(num_sms: usize) -> f64 {
        num_sms as f64 * (SRAM_MM2_PER_SM + ALU_MM2_PER_SM)
    }

    /// DAC area as a fraction of the GTX 480 die (paper: 1.06 %).
    pub fn dac_area_overhead(num_sms: usize) -> f64 {
        dac_area_mm2(num_sms) / GTX480_DIE_MM2
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use simt_mem::MemStats;
    use simt_sim::{SimReport, SimStats};

    fn report(cycles: u64, stats: SimStats, mem: MemStats) -> SimReport {
        SimReport {
            kernel: "t".into(),
            coproc: "baseline".into(),
            cycles,
            stats,
            mem,
        }
    }

    #[test]
    fn fewer_instructions_means_less_energy() {
        let a = SimStats {
            warp_instructions: 1000,
            alu_lane_ops: 32_000,
            regfile_accesses: 96_000,
            ..Default::default()
        };
        let b = SimStats {
            warp_instructions: 700,
            alu_lane_ops: 20_000,
            regfile_accesses: 60_000,
            ..Default::default()
        };
        let m = EnergyModel::gtx480();
        let ea = energy_of(&report(10_000, a, MemStats::default()), &m);
        let eb = energy_of(&report(8_000, b, MemStats::default()), &m);
        assert!(eb.total() < ea.total());
        assert!(eb.normalized_to(&ea) < 1.0);
        assert!(eb.static_ < ea.static_, "shorter runs save leakage");
    }

    #[test]
    fn dac_overhead_is_small() {
        // A DAC run with realistic proportions: overhead ≈ 1% of dynamic.
        let s = SimStats {
            warp_instructions: 100_000,
            affine_instructions: 5_000,
            alu_lane_ops: 2_000_000,
            regfile_accesses: 6_000_000,
            aeu_records: 10_000,
            peu_records: 5_000,
            ..Default::default()
        };
        let mem = MemStats {
            l1_hits: 50_000,
            l1_misses: 10_000,
            l2_hits: 5_000,
            l2_misses: 5_000,
            dram_serviced: 5_000,
            ..Default::default()
        };
        let e = energy_of(&report(200_000, s, mem), &EnergyModel::gtx480());
        let frac = e.dac_overhead / e.dynamic();
        assert!(frac < 0.05, "overhead fraction {frac}");
        assert!(frac > 0.0);
    }

    #[test]
    #[allow(clippy::assertions_on_constants)] // documents the SRAM budget
    fn area_overhead_matches_paper() {
        let f = area::dac_area_overhead(15);
        assert!((f - 0.0106).abs() < 0.0005, "area fraction {f}");
        assert!(area::SRAM_BYTES_PER_SM < 8 * 1024, "≈6 KB per SM");
    }

    #[test]
    fn breakdown_totals_are_consistent() {
        let e = EnergyBreakdown {
            alu: 1.0,
            regfile: 2.0,
            other_dynamic: 3.0,
            dac_overhead: 0.5,
            static_: 4.0,
        };
        assert_eq!(e.total(), 10.5);
        assert_eq!(e.dynamic(), 6.5);
    }
}

//! The instruction set.
//!
//! A kernel is a flat vector of [`Instr`]; branch targets are instruction
//! indices (PCs). The set mirrors the subset of PTX/SASS that the paper's
//! examples and mechanisms exercise, plus the decoupling instructions
//! `enq.data` / `enq.addr` / `enq.pred` and the dequeue operand forms used by
//! the non-affine stream (paper Figure 7).

use crate::types::{Operand, PredId, RegId, Space, Width};
use std::fmt;

/// Arithmetic/logic operations on general-purpose registers.
///
/// Integer ops act on the full 64-bit register (wrapping); `F*` ops act on
/// the low 32 bits as `f32`.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum Op {
    // Integer.
    Add,
    Sub,
    Mul,
    /// Multiply-add: `dst = a * b + c`.
    Mad,
    Div,
    /// Remainder (the paper's `mod` support, §4.4).
    Rem,
    Min,
    Max,
    Abs,
    Neg,
    And,
    Or,
    Xor,
    Not,
    Shl,
    /// Logical shift right.
    Shr,
    /// Arithmetic shift right.
    Sar,
    Mov,
    // Float (f32 on low 32 bits).
    FAdd,
    FSub,
    FMul,
    /// Float multiply-add: `dst = a * b + c`.
    FMad,
    FDiv,
    FMin,
    FMax,
    FAbs,
    FNeg,
    FSqrt,
    /// Reciprocal (SFU).
    FRcp,
    /// Base-2 exponential (SFU).
    FExp2,
    /// Base-2 logarithm (SFU).
    FLog2,
    /// Sine (SFU).
    FSin,
    /// Cosine (SFU).
    FCos,
    /// Convert signed integer to f32.
    I2F,
    /// Convert f32 to signed integer (truncating).
    F2I,
}

impl Op {
    /// Number of source operands the op consumes.
    pub fn arity(self) -> usize {
        match self {
            Op::Mad | Op::FMad => 3,
            Op::Abs
            | Op::Neg
            | Op::Not
            | Op::Mov
            | Op::FAbs
            | Op::FNeg
            | Op::FSqrt
            | Op::FRcp
            | Op::FExp2
            | Op::FLog2
            | Op::FSin
            | Op::FCos
            | Op::I2F
            | Op::F2I => 1,
            _ => 2,
        }
    }

    /// True for transcendental ops executed on the special function units.
    pub fn is_sfu(self) -> bool {
        matches!(
            self,
            Op::FSqrt | Op::FRcp | Op::FExp2 | Op::FLog2 | Op::FSin | Op::FCos | Op::FDiv
        )
    }

    /// True for floating-point ops (including conversions' float side).
    pub fn is_float(self) -> bool {
        matches!(
            self,
            Op::FAdd
                | Op::FSub
                | Op::FMul
                | Op::FMad
                | Op::FDiv
                | Op::FMin
                | Op::FMax
                | Op::FAbs
                | Op::FNeg
                | Op::FSqrt
                | Op::FRcp
                | Op::FExp2
                | Op::FLog2
                | Op::FSin
                | Op::FCos
                | Op::I2F
                | Op::F2I
        )
    }
}

impl fmt::Display for Op {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let s = match self {
            Op::Add => "add",
            Op::Sub => "sub",
            Op::Mul => "mul",
            Op::Mad => "mad",
            Op::Div => "div",
            Op::Rem => "rem",
            Op::Min => "min",
            Op::Max => "max",
            Op::Abs => "abs",
            Op::Neg => "neg",
            Op::And => "and",
            Op::Or => "or",
            Op::Xor => "xor",
            Op::Not => "not",
            Op::Shl => "shl",
            Op::Shr => "shr",
            Op::Sar => "sar",
            Op::Mov => "mov",
            Op::FAdd => "add.f32",
            Op::FSub => "sub.f32",
            Op::FMul => "mul.f32",
            Op::FMad => "mad.f32",
            Op::FDiv => "div.f32",
            Op::FMin => "min.f32",
            Op::FMax => "max.f32",
            Op::FAbs => "abs.f32",
            Op::FNeg => "neg.f32",
            Op::FSqrt => "sqrt.f32",
            Op::FRcp => "rcp.f32",
            Op::FExp2 => "ex2.f32",
            Op::FLog2 => "lg2.f32",
            Op::FSin => "sin.f32",
            Op::FCos => "cos.f32",
            Op::I2F => "cvt.f32.s64",
            Op::F2I => "cvt.s64.f32",
        };
        write!(f, "{s}")
    }
}

/// Comparison operators for `setp`.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum CmpOp {
    Eq,
    Ne,
    Lt,
    Le,
    Gt,
    Ge,
}

impl CmpOp {
    /// Evaluate the comparison on signed 64-bit values.
    #[inline]
    pub fn eval_i64(self, a: i64, b: i64) -> bool {
        match self {
            CmpOp::Eq => a == b,
            CmpOp::Ne => a != b,
            CmpOp::Lt => a < b,
            CmpOp::Le => a <= b,
            CmpOp::Gt => a > b,
            CmpOp::Ge => a >= b,
        }
    }

    /// Evaluate the comparison on `f32` values.
    #[inline]
    pub fn eval_f32(self, a: f32, b: f32) -> bool {
        match self {
            CmpOp::Eq => a == b,
            CmpOp::Ne => a != b,
            CmpOp::Lt => a < b,
            CmpOp::Le => a <= b,
            CmpOp::Gt => a > b,
            CmpOp::Ge => a >= b,
        }
    }

    /// The comparison with operands swapped (`a op b` ⇔ `b op.swap() a`).
    pub fn swapped(self) -> CmpOp {
        match self {
            CmpOp::Eq => CmpOp::Eq,
            CmpOp::Ne => CmpOp::Ne,
            CmpOp::Lt => CmpOp::Gt,
            CmpOp::Le => CmpOp::Ge,
            CmpOp::Gt => CmpOp::Lt,
            CmpOp::Ge => CmpOp::Le,
        }
    }
}

impl fmt::Display for CmpOp {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let s = match self {
            CmpOp::Eq => "eq",
            CmpOp::Ne => "ne",
            CmpOp::Lt => "lt",
            CmpOp::Le => "le",
            CmpOp::Gt => "gt",
            CmpOp::Ge => "ge",
        };
        write!(f, "{s}")
    }
}

/// Atomic read-modify-write operations (global space only).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum AtomOp {
    Add,
    Min,
    Max,
    Exch,
}

impl fmt::Display for AtomOp {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let s = match self {
            AtomOp::Add => "add",
            AtomOp::Min => "min",
            AtomOp::Max => "max",
            AtomOp::Exch => "exch",
        };
        write!(f, "{s}")
    }
}

/// Guard predicate on an instruction: `@p` or `@!p`.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct Guard {
    /// The predicate register tested.
    pub pred: PredId,
    /// If true, the guard is `@!p`.
    pub negate: bool,
}

impl Guard {
    /// A positive guard `@p`.
    pub fn pos(pred: PredId) -> Self {
        Guard {
            pred,
            negate: false,
        }
    }

    /// A negated guard `@!p`.
    pub fn neg(pred: PredId) -> Self {
        Guard { pred, negate: true }
    }
}

impl fmt::Display for Guard {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        if self.negate {
            write!(f, "@!p{}", self.pred)
        } else {
            write!(f, "@p{}", self.pred)
        }
    }
}

/// How a memory instruction obtains its effective address.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum AddrMode {
    /// `[reg + disp]` — ordinary register-indirect addressing.
    Reg(RegId, i64),
    /// `[deq.data]` — pop a warp address record from this warp's PWAQ; the
    /// data was already requested (and L1-locked) by the Address Expansion
    /// Unit. Loads only.
    DeqData,
    /// `[deq.addr]` — pop a warp address record from the PWAQ without an
    /// early data request. Stores (and loads the compiler chose not to
    /// prefetch).
    DeqAddr,
}

impl AddrMode {
    /// The register read by the address computation, if any.
    pub fn reg(self) -> Option<RegId> {
        match self {
            AddrMode::Reg(r, _) => Some(r),
            _ => None,
        }
    }

    /// True for the dequeue forms used by the non-affine stream.
    pub fn is_deq(self) -> bool {
        !matches!(self, AddrMode::Reg(..))
    }
}

/// Where a branch obtains its predicate.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum PredSrc {
    /// An ordinary predicate register (optionally negated).
    Reg(Guard),
    /// `@deq.pred` — pop a predicate bit from this warp's PWPQ (the bit
    /// vector was produced by the Predicate Expansion Unit).
    Deq { negate: bool },
}

/// Which decoupling queue an `enq` instruction feeds.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum QueueKind {
    /// Address destined for a load; the AEU issues the memory request early.
    Data,
    /// Address destined for a store (no early request).
    Addr,
    /// Predicate bit vector.
    Pred,
}

impl fmt::Display for QueueKind {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            QueueKind::Data => write!(f, "data"),
            QueueKind::Addr => write!(f, "addr"),
            QueueKind::Pred => write!(f, "pred"),
        }
    }
}

/// A single machine instruction.
#[derive(Debug, Clone, PartialEq, Eq, Hash)]
pub enum Instr {
    /// ALU operation: `dst = op(srcs...)`, with up to three sources.
    Alu {
        op: Op,
        dst: RegId,
        srcs: [Operand; 3],
        guard: Option<Guard>,
    },
    /// Set predicate: `dst = a cmp b`, integer or float compare.
    SetP {
        dst: PredId,
        cmp: CmpOp,
        a: Operand,
        b: Operand,
        float: bool,
        guard: Option<Guard>,
    },
    /// Predicate-select: `dst = guard_pred ? a : b`.
    Sel {
        dst: RegId,
        pred: Guard,
        a: Operand,
        b: Operand,
    },
    /// Load `dst = space[addr]`.
    Ld {
        dst: RegId,
        space: Space,
        addr: AddrMode,
        width: Width,
        guard: Option<Guard>,
    },
    /// Store `space[addr] = src`.
    St {
        space: Space,
        addr: AddrMode,
        src: Operand,
        width: Width,
        guard: Option<Guard>,
    },
    /// Atomic read-modify-write on global memory; `dst` gets the old value.
    Atom {
        op: AtomOp,
        dst: RegId,
        addr: AddrMode,
        src: Operand,
        guard: Option<Guard>,
    },
    /// Conditional or unconditional branch to instruction index `target`.
    Bra {
        target: usize,
        pred: Option<PredSrc>,
    },
    /// CTA-wide barrier (`bar.sync`).
    Bar,
    /// Thread exit.
    Exit,
    /// DAC: enqueue an affine value to the Affine Tuple Queue for expansion
    /// (affine stream only). For `kind != Pred`, `src` is the register
    /// holding the affine address and `width` its access granularity; for
    /// `Pred`, `pred` names the affine predicate being decoupled.
    Enq {
        kind: QueueKind,
        src: Option<RegId>,
        pred: Option<PredId>,
        width: Width,
        /// Memory space of the decoupled access (local addresses need the
        /// per-thread window applied during expansion).
        space: Space,
        guard: Option<Guard>,
    },
}

/// Coarse classification used by the Figure 6 "potentially affine" analysis.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum InstrClass {
    /// ALU / setp / sel.
    Arithmetic,
    /// Loads, stores, atomics.
    Memory,
    /// Branches.
    Branch,
    /// Barriers, exits, enqueues.
    Other,
}

impl Instr {
    /// Classify the instruction for static-mix statistics.
    pub fn class(&self) -> InstrClass {
        match self {
            Instr::Alu { .. } | Instr::SetP { .. } | Instr::Sel { .. } => InstrClass::Arithmetic,
            Instr::Ld { .. } | Instr::St { .. } | Instr::Atom { .. } => InstrClass::Memory,
            Instr::Bra { .. } => InstrClass::Branch,
            Instr::Bar | Instr::Exit | Instr::Enq { .. } => InstrClass::Other,
        }
    }

    /// The general-purpose register written by this instruction, if any.
    pub fn def_reg(&self) -> Option<RegId> {
        match self {
            Instr::Alu { dst, .. }
            | Instr::Sel { dst, .. }
            | Instr::Ld { dst, .. }
            | Instr::Atom { dst, .. } => Some(*dst),
            _ => None,
        }
    }

    /// The predicate register written by this instruction, if any.
    pub fn def_pred(&self) -> Option<PredId> {
        match self {
            Instr::SetP { dst, .. } => Some(*dst),
            _ => None,
        }
    }

    /// All source operands (registers, immediates, specials, params).
    pub fn src_operands(&self) -> Vec<Operand> {
        match self {
            Instr::Alu { op, srcs, .. } => srcs[..op.arity()].to_vec(),
            Instr::SetP { a, b, .. } => vec![*a, *b],
            Instr::Sel { a, b, .. } => vec![*a, *b],
            Instr::Ld { addr, .. } => addr.reg().map(Operand::Reg).into_iter().collect(),
            Instr::St { addr, src, .. } => {
                let mut v: Vec<Operand> = addr.reg().map(Operand::Reg).into_iter().collect();
                v.push(*src);
                v
            }
            Instr::Atom { addr, src, .. } => {
                let mut v: Vec<Operand> = addr.reg().map(Operand::Reg).into_iter().collect();
                v.push(*src);
                v
            }
            Instr::Enq { src, .. } => src.map(Operand::Reg).into_iter().collect(),
            Instr::Bra { .. } | Instr::Bar | Instr::Exit => Vec::new(),
        }
    }

    /// All general-purpose registers read by this instruction (including the
    /// guard's predicate register — which is a *predicate*, so excluded here).
    pub fn src_regs(&self) -> Vec<RegId> {
        let (regs, n) = self.src_regs_inline();
        regs[..n].to_vec()
    }

    /// [`Instr::src_regs`] without allocating: a fixed array plus the live
    /// count. No instruction reads more than three general-purpose
    /// registers (ALU arity caps at 3). This is the scoreboard's per-cycle
    /// hot path — the `Vec` variants stay for the cold analysis passes.
    pub fn src_regs_inline(&self) -> ([RegId; 3], usize) {
        let mut out = [0; 3];
        let mut n = 0;
        let mut push = |o: Option<RegId>| {
            if let Some(r) = o {
                out[n] = r;
                n += 1;
            }
        };
        match self {
            Instr::Alu { op, srcs, .. } => {
                for s in &srcs[..op.arity()] {
                    push(s.reg());
                }
            }
            Instr::SetP { a, b, .. } | Instr::Sel { a, b, .. } => {
                push(a.reg());
                push(b.reg());
            }
            Instr::Ld { addr, .. } => push(addr.reg()),
            Instr::St { addr, src, .. } | Instr::Atom { addr, src, .. } => {
                push(addr.reg());
                push(src.reg());
            }
            Instr::Enq { src, .. } => push(*src),
            Instr::Bra { .. } | Instr::Bar | Instr::Exit => {}
        }
        (out, n)
    }

    /// Predicate registers read (guard + setp-like sources + branch preds).
    pub fn src_preds(&self) -> Vec<PredId> {
        let (preds, n) = self.src_preds_inline();
        preds[..n].to_vec()
    }

    /// [`Instr::src_preds`] without allocating: at most a guard plus one
    /// instruction-specific predicate source.
    pub fn src_preds_inline(&self) -> ([PredId; 2], usize) {
        let mut out = [0; 2];
        let mut n = 0;
        if let Some(g) = self.guard() {
            out[n] = g.pred;
            n += 1;
        }
        match self {
            Instr::Sel { pred, .. } => {
                out[n] = pred.pred;
                n += 1;
            }
            Instr::Bra {
                pred: Some(PredSrc::Reg(g)),
                ..
            } => {
                out[n] = g.pred;
                n += 1;
            }
            Instr::Enq {
                kind: QueueKind::Pred,
                pred: Some(p),
                ..
            } => {
                out[n] = *p;
                n += 1;
            }
            _ => {}
        }
        (out, n)
    }

    /// The instruction's guard, if any (branches use [`PredSrc`] instead).
    pub fn guard(&self) -> Option<Guard> {
        match self {
            Instr::Alu { guard, .. }
            | Instr::SetP { guard, .. }
            | Instr::Ld { guard, .. }
            | Instr::St { guard, .. }
            | Instr::Atom { guard, .. }
            | Instr::Enq { guard, .. } => *guard,
            _ => None,
        }
    }

    /// True if the instruction can transfer control (branch or exit).
    pub fn is_control(&self) -> bool {
        matches!(self, Instr::Bra { .. } | Instr::Exit)
    }

    /// True if this is a memory access through the LSU (ld/st/atom).
    pub fn is_mem(&self) -> bool {
        matches!(
            self,
            Instr::Ld { .. } | Instr::St { .. } | Instr::Atom { .. }
        )
    }
}

impl fmt::Display for Instr {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        fn g(guard: &Option<Guard>) -> String {
            guard.map(|g| format!("{g} ")).unwrap_or_default()
        }
        match self {
            Instr::Alu {
                op,
                dst,
                srcs,
                guard,
            } => {
                let args: Vec<String> = srcs[..op.arity()].iter().map(|s| s.to_string()).collect();
                write!(f, "{}{} r{}, {};", g(guard), op, dst, args.join(", "))
            }
            Instr::SetP {
                dst,
                cmp,
                a,
                b,
                float,
                guard,
            } => {
                let suffix = if *float { ".f32" } else { "" };
                write!(
                    f,
                    "{}setp.{}{} p{}, {}, {};",
                    g(guard),
                    cmp,
                    suffix,
                    dst,
                    a,
                    b
                )
            }
            Instr::Sel { dst, pred, a, b } => {
                let bang = if pred.negate { "!" } else { "" };
                write!(f, "sel r{}, {}, {}, {}p{};", dst, a, b, bang, pred.pred)
            }
            Instr::Ld {
                dst,
                space,
                addr,
                width,
                guard,
            } => match addr {
                AddrMode::Reg(r, d) => {
                    write!(
                        f,
                        "{}ld.{}.{} r{}, [r{}+{}];",
                        g(guard),
                        space,
                        width,
                        dst,
                        r,
                        d
                    )
                }
                AddrMode::DeqData => {
                    write!(f, "{}ld.{}.{} r{}, deq.data;", g(guard), space, width, dst)
                }
                AddrMode::DeqAddr => {
                    write!(f, "{}ld.{}.{} r{}, deq.addr;", g(guard), space, width, dst)
                }
            },
            Instr::St {
                space,
                addr,
                src,
                width,
                guard,
            } => match addr {
                AddrMode::Reg(r, d) => {
                    write!(
                        f,
                        "{}st.{}.{} [r{}+{}], {};",
                        g(guard),
                        space,
                        width,
                        r,
                        d,
                        src
                    )
                }
                _ => write!(f, "{}st.{}.{} [deq.addr], {};", g(guard), space, width, src),
            },
            Instr::Atom {
                op,
                dst,
                addr,
                src,
                guard,
            } => match addr {
                AddrMode::Reg(r, d) => {
                    write!(
                        f,
                        "{}atom.{} r{}, [r{}+{}], {};",
                        g(guard),
                        op,
                        dst,
                        r,
                        d,
                        src
                    )
                }
                _ => write!(f, "{}atom.{} r{}, [deq.addr], {};", g(guard), op, dst, src),
            },
            Instr::Bra { target, pred } => match pred {
                Some(PredSrc::Reg(gd)) => write!(f, "{gd} bra {target};"),
                Some(PredSrc::Deq { negate }) => {
                    write!(
                        f,
                        "@{}deq.pred bra {target};",
                        if *negate { "!" } else { "" }
                    )
                }
                None => write!(f, "bra {target};"),
            },
            Instr::Bar => write!(f, "bar.sync;"),
            Instr::Exit => write!(f, "exit;"),
            Instr::Enq {
                kind,
                src,
                pred,
                width,
                space,
                guard,
            } => match kind {
                QueueKind::Pred => write!(f, "{}enq.pred p{};", g(guard), pred.unwrap_or(0)),
                _ => {
                    let sp = if *space == Space::Local { ".local" } else { "" };
                    let w = if *width == Width::W32 {
                        String::new()
                    } else {
                        format!(".{width}")
                    };
                    write!(
                        f,
                        "{}enq.{}{}{} r{};",
                        g(guard),
                        kind,
                        sp,
                        w,
                        src.unwrap_or(0)
                    )
                }
            },
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn arity_and_classes() {
        assert_eq!(Op::Mad.arity(), 3);
        assert_eq!(Op::Mov.arity(), 1);
        assert_eq!(Op::Add.arity(), 2);
        assert!(Op::FSqrt.is_sfu());
        assert!(!Op::Add.is_sfu());
        assert!(Op::FAdd.is_float());
        assert!(!Op::Shl.is_float());
    }

    #[test]
    fn cmp_eval() {
        assert!(CmpOp::Lt.eval_i64(-1, 0));
        assert!(!CmpOp::Lt.eval_i64(0, 0));
        assert!(CmpOp::Ge.eval_f32(1.5, 1.5));
        assert_eq!(CmpOp::Lt.swapped(), CmpOp::Gt);
        assert_eq!(CmpOp::Eq.swapped(), CmpOp::Eq);
    }

    #[test]
    fn def_and_src_extraction() {
        let i = Instr::Alu {
            op: Op::Mad,
            dst: 5,
            srcs: [Operand::Reg(1), Operand::Reg(2), Operand::Imm(3)],
            guard: None,
        };
        assert_eq!(i.def_reg(), Some(5));
        assert_eq!(i.src_regs(), vec![1, 2]);
        assert_eq!(i.class(), InstrClass::Arithmetic);

        let st = Instr::St {
            space: Space::Global,
            addr: AddrMode::Reg(7, 0),
            src: Operand::Reg(8),
            width: Width::W32,
            guard: Some(Guard::pos(2)),
        };
        assert_eq!(st.src_regs(), vec![7, 8]);
        assert_eq!(st.src_preds(), vec![2]);
        assert_eq!(st.class(), InstrClass::Memory);
    }

    #[test]
    fn display_round() {
        let i = Instr::Ld {
            dst: 1,
            space: Space::Global,
            addr: AddrMode::Reg(2, 4),
            width: Width::W32,
            guard: None,
        };
        assert_eq!(i.to_string(), "ld.global.b32 r1, [r2+4];");
        let b = Instr::Bra {
            target: 9,
            pred: Some(PredSrc::Deq { negate: false }),
        };
        assert_eq!(b.to_string(), "@deq.pred bra 9;");
    }
}

//! The 29 benchmark kernels, plus shared construction helpers.

pub mod compute;
pub mod memory;
pub mod stress;

use crate::Workload;
use simt_ir::{KernelBuilder, Op, Operand, RegId};
use simt_mem::SparseMemory;

/// Deterministic SplitMix64 stream (Steele et al.), used for input
/// generation so the crate needs no external PRNG: the build environment is
/// offline, and the exact stream is pinned by the golden-stats tests.
#[derive(Debug, Clone)]
pub struct SplitMix64(u64);

impl SplitMix64 {
    /// Seeded generator; equal seeds yield equal streams forever.
    pub fn new(seed: u64) -> Self {
        SplitMix64(seed)
    }

    /// Next raw 64-bit value.
    pub fn next_u64(&mut self) -> u64 {
        self.0 = self.0.wrapping_add(0x9E37_79B9_7F4A_7C15);
        let mut z = self.0;
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
        z ^ (z >> 31)
    }

    /// Uniform in `[0, n)` (n > 0). Multiply-shift keeps it unbiased enough
    /// for synthetic inputs while staying branch-free and portable.
    pub fn below(&mut self, n: u32) -> u32 {
        ((self.next_u64() >> 32).wrapping_mul(n as u64) >> 32) as u32
    }

    /// Uniform `f32` in `[lo, hi)`.
    pub fn f32_range(&mut self, lo: f32, hi: f32) -> f32 {
        let unit = (self.next_u64() >> 40) as f32 / (1u64 << 24) as f32;
        lo + unit * (hi - lo)
    }
}

/// Standard array base addresses, 16 MiB apart.
pub const ARR_A: u64 = 0x0100_0000;
/// Second array.
pub const ARR_B: u64 = 0x0200_0000;
/// Third array.
pub const ARR_C: u64 = 0x0300_0000;
/// Fourth array.
pub const ARR_D: u64 = 0x0400_0000;

/// Build every benchmark at `scale`.
pub fn all(scale: u32) -> Vec<Workload> {
    vec![
        compute::cp(scale),
        compute::sto(scale),
        compute::aes(scale),
        compute::mq(scale),
        compute::tp(scale),
        compute::fft(scale),
        compute::bp(scale),
        compute::sr1(scale),
        compute::hs(scale),
        compute::pf(scale),
        compute::bs(scale),
        memory::lib(scale),
        memory::sg(scale),
        memory::st(scale),
        memory::img(scale),
        memory::hi(scale),
        memory::lbm(scale),
        memory::spv(scale),
        memory::bt(scale),
        memory::lud(scale),
        memory::sr2(scale),
        memory::sc(scale),
        memory::km(scale),
        memory::bfs(scale),
        memory::cfd(scale),
        memory::mc(scale),
        memory::mt(scale),
        memory::sp(scale),
        memory::cs(scale),
    ]
}

/// Emit `tid = ctaid.x * ntid.x + tid.x` plus the guarded byte address
/// `base_param + (tid << shift)`.
pub(crate) fn tid_elem_addr(b: &mut KernelBuilder, param: u16, shift: i64) -> (RegId, RegId) {
    let tid = b.tid_linear_x();
    let off = b.alu2(Op::Shl, Operand::Reg(tid), Operand::Imm(shift));
    let addr = b.alu2(Op::Add, Operand::Param(param), Operand::Reg(off));
    (tid, addr)
}

/// Deterministic pseudo-random `f32` inputs in (lo, hi).
pub(crate) fn init_f32(mem: &mut SparseMemory, base: u64, n: usize, seed: u64, lo: f32, hi: f32) {
    let mut rng = SplitMix64::new(seed);
    let data: Vec<f32> = (0..n).map(|_| rng.f32_range(lo, hi)).collect();
    mem.write_f32_slice(base, &data);
}

/// Deterministic pseudo-random `u32` inputs in `[0, modulo)`.
pub(crate) fn init_u32(mem: &mut SparseMemory, base: u64, n: usize, seed: u64, modulo: u32) {
    let mut rng = SplitMix64::new(seed);
    let data: Vec<u32> = (0..n).map(|_| rng.below(modulo)).collect();
    mem.write_u32_slice(base, &data);
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn init_helpers_are_deterministic() {
        let mut m1 = SparseMemory::new();
        let mut m2 = SparseMemory::new();
        init_f32(&mut m1, 0x1000, 64, 42, -1.0, 1.0);
        init_f32(&mut m2, 0x1000, 64, 42, -1.0, 1.0);
        assert_eq!(m1.read_u32_vec(0x1000, 64), m2.read_u32_vec(0x1000, 64));
        init_u32(&mut m1, 0x9000, 16, 7, 100);
        for v in m1.read_u32_vec(0x9000, 16) {
            assert!(v < 100);
        }
    }
}

//! GPU core configuration (Table 1 of the paper).

use simt_mem::MemConfig;

/// Core-side configuration. Memory-system parameters live in
/// [`MemConfig`].
#[derive(Debug, Clone, PartialEq)]
pub struct GpuConfig {
    /// Number of streaming multiprocessors.
    pub num_sms: usize,
    /// Maximum resident warps per SM.
    pub max_warps_per_sm: usize,
    /// Maximum resident CTAs per SM.
    pub max_ctas_per_sm: usize,
    /// SIMT lanes per SM.
    pub lanes: usize,
    /// Warp schedulers per SM (each owns `lanes / schedulers` lanes).
    pub schedulers: usize,
    /// Active-pool size per scheduler (two-level scheduling).
    pub active_pool: usize,
    /// Cycles a normal 32-thread warp instruction occupies its scheduler
    /// (32 threads over 16 lanes ⇒ 2 on Fermi).
    pub issue_interval: u64,
    /// Integer/float ALU writeback latency.
    pub alu_latency: u64,
    /// Special-function-unit (transcendental) latency.
    pub sfu_latency: u64,
    /// Shared-memory access latency (no bank-conflict model; see DESIGN.md).
    pub shared_latency: u64,
    /// Shared memory capacity per SM (bounds concurrent CTAs).
    pub shared_mem_per_sm: u32,
    /// 32-bit registers in the SM register file (bounds concurrent CTAs
    /// by `threads_per_cta * regs_per_thread`; 32 K = 128 KB on Fermi).
    pub regfile_per_sm: u32,
    /// Outstanding memory transactions the per-SM LSU queue can hold.
    pub lsu_queue: usize,
    /// Hard cap on simulated cycles (deadlock guard).
    pub max_cycles: u64,
    /// Fast-forward across stretches of cycles in which nothing can make
    /// progress (see DESIGN.md "Simulator performance"). Cycle-exact by
    /// construction; disable with `--no-fast-forward` to cross-check.
    pub fast_forward: bool,
    /// Worker threads sharding SMs and L2 partitions *within* one run
    /// (see DESIGN.md "Intra-run parallelism"). Every artifact is
    /// byte-identical for any value; 1 (or 0) means the serial path.
    /// Clamped to `num_sms`. Distinct from the harness `--jobs`
    /// run-level parallelism.
    pub threads: usize,
    /// The memory hierarchy.
    pub mem: MemConfig,
}

impl GpuConfig {
    /// The paper's baseline: Fermi GTX 480 (Table 1) — 15 SMs, 48 warps/SM,
    /// 32 lanes, 2 schedulers, two-level active scheduling.
    pub fn gtx480() -> Self {
        GpuConfig {
            num_sms: 15,
            max_warps_per_sm: 48,
            max_ctas_per_sm: 8,
            lanes: 32,
            schedulers: 2,
            active_pool: 8,
            issue_interval: 2,
            alu_latency: 8,
            sfu_latency: 20,
            shared_latency: 24,
            shared_mem_per_sm: 48 * 1024,
            regfile_per_sm: 32 * 1024,
            lsu_queue: 16,
            max_cycles: 200_000_000,
            fast_forward: true,
            threads: 1,
            mem: MemConfig::gtx480(),
        }
    }

    /// A small configuration for fast unit tests: 2 SMs, 16 warps.
    pub fn test_small() -> Self {
        GpuConfig {
            num_sms: 2,
            max_warps_per_sm: 16,
            max_ctas_per_sm: 4,
            max_cycles: 5_000_000,
            ..Self::gtx480()
        }
    }

    /// Baseline with a perfect memory system (compute/memory
    /// classification, §5.1.2).
    pub fn gtx480_perfect_mem() -> Self {
        GpuConfig {
            mem: MemConfig::perfect(),
            ..Self::gtx480()
        }
    }

    /// Threads per warp (fixed at 32 — the IR's masks are `u32`).
    pub const WARP_SIZE: usize = 32;
}

impl Default for GpuConfig {
    fn default() -> Self {
        Self::gtx480()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn gtx480_matches_table1() {
        let c = GpuConfig::gtx480();
        assert_eq!(c.num_sms, 15);
        assert_eq!(c.max_warps_per_sm, 48);
        assert_eq!(c.lanes, 32);
        assert_eq!(c.schedulers, 2);
        assert_eq!(c.mem.l1_size, 48 * 1024);
        assert_eq!(c.mem.num_partitions, 6);
        assert_eq!(c.regfile_per_sm, 32 * 1024);
    }

    #[test]
    fn issue_interval_models_16_wide_pipes() {
        assert_eq!(GpuConfig::gtx480().issue_interval, 2);
    }
}

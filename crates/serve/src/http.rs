//! A dependency-free HTTP/1.1 front end for the sweep service.
//!
//! Deliberately minimal: thread-per-connection, `Connection: close`, JSON
//! bodies only. That is all a lab daemon needs, and it keeps the build
//! offline-clean (no async runtime, no TLS, no frameworks).
//!
//! | Method | Path                 | Body         | Response                      |
//! |--------|----------------------|--------------|-------------------------------|
//! | POST   | `/sweeps`            | grid request | submission receipt            |
//! | GET    | `/sweeps/:id`        | —            | sweep status + per-point list |
//! | GET    | `/sweeps/:id/events` | —            | event journal (long-poll; `?since=N&timeout_ms=M`) |
//! | GET    | `/runs/:key`         | —            | raw `dac-run/v1` artifact     |
//! | GET    | `/status`            | —            | service overview              |
//! | GET    | `/metrics`           | —            | counters + p50/p90/p99 endpoint latency (`?format=prom` for Prometheus text) |
//! | GET    | `/dashboard`         | —            | read-only HTML overview       |
//! | POST   | `/shutdown`          | —            | ack, then the daemon exits    |

use crate::grid::GridRequest;
use crate::service::SweepService;
use simt_harness::json;
use std::io::{BufRead, BufReader, Read, Write};
use std::net::{SocketAddr, TcpListener, TcpStream};
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::Arc;
use std::time::{Duration, Instant};

/// Largest request body we accept (a grid request is a few hundred bytes;
/// this is purely a safety bound against garbage input).
const MAX_BODY: usize = 1 << 20;

/// Largest request line + header block we accept; a client streaming
/// endless headers gets a 400, not an ever-growing buffer.
const MAX_HEAD: u64 = 16 << 10;

/// Per-connection read timeout: a client that connects and goes silent
/// must not pin a handler thread forever.
const READ_TIMEOUT: Duration = Duration::from_secs(10);

/// Default `/sweeps/:id/events` long-poll hold when the request names no
/// `timeout_ms`.
const DEFAULT_POLL_MS: u64 = 10_000;

/// Hard cap on the long-poll hold — kept under the 30s read timeout
/// [`crate::client::Client`] uses, so a well-behaved client never times
/// out waiting for an intentionally-empty reply.
const MAX_POLL_MS: u64 = 25_000;

/// A bound, not-yet-serving HTTP server over a [`SweepService`].
pub struct Server {
    service: Arc<SweepService>,
    listener: TcpListener,
    stop: Arc<AtomicBool>,
}

/// Handle for stopping a running [`Server`] from another thread.
#[derive(Clone)]
pub struct ServerHandle {
    addr: SocketAddr,
    stop: Arc<AtomicBool>,
}

impl ServerHandle {
    /// The address the server is listening on.
    pub fn addr(&self) -> SocketAddr {
        self.addr
    }

    /// Ask the accept loop to exit after the connection in flight (the
    /// self-connect below unblocks `accept` immediately).
    pub fn shutdown(&self) {
        self.stop.store(true, Ordering::SeqCst);
        let _ = TcpStream::connect(self.addr);
    }
}

impl Server {
    /// Bind to `addr` (use port 0 for an ephemeral port) without serving
    /// yet. The bound address is available via [`Server::handle`].
    pub fn bind(service: Arc<SweepService>, addr: &str) -> std::io::Result<Server> {
        let listener = TcpListener::bind(addr)?;
        Ok(Server {
            service,
            listener,
            stop: Arc::new(AtomicBool::new(false)),
        })
    }

    /// The control handle (address + remote shutdown).
    pub fn handle(&self) -> ServerHandle {
        ServerHandle {
            addr: self.listener.local_addr().expect("bound listener"),
            stop: Arc::clone(&self.stop),
        }
    }

    /// Serve until [`ServerHandle::shutdown`] (or `POST /shutdown`).
    /// Blocks the calling thread; connections are handled on short-lived
    /// threads so a slow client never blocks a status poll.
    pub fn serve(self) {
        for conn in self.listener.incoming() {
            if self.stop.load(Ordering::SeqCst) {
                break;
            }
            let Ok(stream) = conn else { continue };
            let service = Arc::clone(&self.service);
            let handle = self.handle();
            std::thread::spawn(move || {
                let _ = handle_connection(stream, &service, &handle);
            });
        }
    }
}

struct Request {
    method: String,
    path: String,
    /// Raw query string (no leading `?`; empty when absent).
    query: String,
    body: String,
}

impl Request {
    /// The value of `name` in the query string, if present. No percent
    /// decoding — the service's parameters are plain integers and tokens.
    fn query_param(&self, name: &str) -> Option<&str> {
        self.query.split('&').find_map(|pair| {
            let (k, v) = pair.split_once('=').unwrap_or((pair, ""));
            (k == name).then_some(v)
        })
    }
}

struct Response {
    status: u16,
    content_type: &'static str,
    body: String,
}

impl Response {
    fn json(status: u16, value: &json::Value) -> Response {
        Response {
            status,
            content_type: "application/json",
            body: value.to_json(),
        }
    }

    fn text(status: u16, body: String) -> Response {
        Response {
            status,
            content_type: "text/plain; version=0.0.4; charset=utf-8",
            body,
        }
    }

    fn html(status: u16, body: String) -> Response {
        Response {
            status,
            content_type: "text/html; charset=utf-8",
            body,
        }
    }

    fn error(status: u16, message: &str) -> Response {
        Response::json(
            status,
            &json::Value::Obj(vec![("error".into(), json::Value::Str(message.into()))]),
        )
    }
}

fn handle_connection(
    mut stream: TcpStream,
    service: &SweepService,
    handle: &ServerHandle,
) -> std::io::Result<()> {
    let request = match read_request(&mut stream) {
        Ok(r) => r,
        Err(msg) => {
            return write_response(&mut stream, &Response::error(400, &msg));
        }
    };
    let started = Instant::now();
    let (label, response) = route(&request, service);
    service.record_endpoint(label, started.elapsed().as_micros() as u64);
    let written = write_response(&mut stream, &response);
    if label == "POST /shutdown" {
        // Signal only after the ack is on the wire, so the client never
        // sees a torn response when the process exits right behind us.
        service.stop();
        handle.shutdown();
    }
    written
}

/// Dispatch one request. Returns the endpoint label used for latency
/// accounting (the route shape, not the concrete path, so `/sweeps/:id`
/// aggregates across ids).
fn route(req: &Request, service: &SweepService) -> (&'static str, Response) {
    match (req.method.as_str(), req.path.as_str()) {
        ("POST", "/sweeps") => ("POST /sweeps", post_sweeps(req, service)),
        ("GET", "/status") => ("GET /status", Response::json(200, &service.status())),
        ("GET", "/metrics") => {
            let response = match req.query_param("format") {
                Some("prom") => Response::text(200, service.prom_metrics()),
                Some(other) => Response::error(400, &format!("unknown metrics format {other:?}")),
                None => Response::json(200, &service.metrics()),
            };
            ("GET /metrics", response)
        }
        ("GET", "/dashboard") => (
            "GET /dashboard",
            Response::html(200, crate::dashboard::render(service)),
        ),
        ("POST", "/shutdown") => (
            // The caller triggers the actual stop after the response is
            // written; here we only acknowledge.
            "POST /shutdown",
            Response::json(
                200,
                &json::Value::Obj(vec![("stopping".into(), json::Value::Bool(true))]),
            ),
        ),
        ("GET", path) if path.starts_with("/sweeps/") && path.ends_with("/events") => {
            let id = &path["/sweeps/".len()..path.len() - "/events".len()];
            let since = req
                .query_param("since")
                .and_then(|v| v.parse::<u64>().ok())
                .unwrap_or(0);
            // Long-poll hold time, clamped below the client's own read
            // timeout so a quiet sweep yields an empty reply, not a
            // client-side timeout.
            let timeout_ms = req
                .query_param("timeout_ms")
                .and_then(|v| v.parse::<u64>().ok())
                .unwrap_or(DEFAULT_POLL_MS)
                .min(MAX_POLL_MS);
            let response = match service.sweep_events(id, since, Duration::from_millis(timeout_ms))
            {
                Some(events) => Response::json(200, &events),
                None => Response::error(404, &format!("unknown sweep {id:?}")),
            };
            ("GET /sweeps/:id/events", response)
        }
        ("GET", path) if path.starts_with("/sweeps/") => {
            let id = &path["/sweeps/".len()..];
            let response = match service.sweep_status(id) {
                Some(status) => Response::json(200, &status),
                None => Response::error(404, &format!("unknown sweep {id:?}")),
            };
            ("GET /sweeps/:id", response)
        }
        ("GET", path) if path.starts_with("/runs/") => {
            let key = &path["/runs/".len()..];
            let response = match parse_run_key(key) {
                Some(hash) => match service.cache().load_raw_by_hash(hash) {
                    Some(raw) => Response {
                        status: 200,
                        content_type: "application/json",
                        body: raw,
                    },
                    None => Response::error(404, &format!("no result for run {key}")),
                },
                None => Response::error(400, "run key must be 16 hex digits"),
            };
            ("GET /runs/:key", response)
        }
        _ => (
            "other",
            Response::error(404, &format!("no route {} {}", req.method, req.path)),
        ),
    }
}

/// A run key is exactly 16 ASCII hex digits — stricter than
/// `from_str_radix`, which also accepts a leading `+`.
fn parse_run_key(key: &str) -> Option<u64> {
    if key.len() != 16 || !key.bytes().all(|b| b.is_ascii_hexdigit()) {
        return None;
    }
    u64::from_str_radix(key, 16).ok()
}

fn post_sweeps(req: &Request, service: &SweepService) -> Response {
    let parsed = json::parse(&req.body)
        .map_err(|e| format!("invalid JSON body: {e}"))
        .and_then(|v| GridRequest::from_json(&v));
    match parsed {
        Ok(grid) => match service.submit(grid) {
            Ok(receipt) => Response::json(200, &receipt.to_json()),
            Err(e) => Response::error(503, &e),
        },
        Err(e) => Response::error(400, &e),
    }
}

fn read_request(stream: &mut TcpStream) -> Result<Request, String> {
    stream
        .set_read_timeout(Some(READ_TIMEOUT))
        .map_err(|e| format!("cannot set read timeout: {e}"))?;
    let mut reader = BufReader::new(stream);
    // The head (request line + headers) reads through a byte-capped
    // handle; once the cap is hit, read_line returns Ok(0) and we bail.
    let mut head = (&mut reader).take(MAX_HEAD);
    let mut line = String::new();
    head.read_line(&mut line)
        .map_err(|e| format!("bad request line: {e}"))?;
    let mut parts = line.split_whitespace();
    let method = parts.next().ok_or("empty request line")?.to_string();
    let target = parts.next().ok_or("missing request path")?;
    let (path, query) = match target.split_once('?') {
        Some((p, q)) => (p.to_string(), q.to_string()),
        None => (target.to_string(), String::new()),
    };
    let mut content_length = 0usize;
    loop {
        let mut header = String::new();
        let n = head
            .read_line(&mut header)
            .map_err(|e| format!("bad header: {e}"))?;
        if n == 0 {
            return Err("headers truncated or too large".into());
        }
        let header = header.trim();
        if header.is_empty() {
            break;
        }
        if let Some(value) = header
            .to_ascii_lowercase()
            .strip_prefix("content-length:")
            .map(str::trim)
            .and_then(|v| v.parse::<usize>().ok())
        {
            content_length = value;
        }
    }
    if content_length > MAX_BODY {
        return Err(format!("body too large ({content_length} bytes)"));
    }
    let mut body = vec![0u8; content_length];
    if content_length > 0 {
        reader
            .read_exact(&mut body)
            .map_err(|e| format!("short body: {e}"))?;
    }
    Ok(Request {
        method,
        path,
        query,
        body: String::from_utf8_lossy(&body).into_owned(),
    })
}

fn write_response(stream: &mut TcpStream, response: &Response) -> std::io::Result<()> {
    let reason = match response.status {
        200 => "OK",
        400 => "Bad Request",
        404 => "Not Found",
        503 => "Service Unavailable",
        _ => "Error",
    };
    write!(
        stream,
        "HTTP/1.1 {} {}\r\nContent-Type: {}\r\nContent-Length: {}\r\nConnection: close\r\n\r\n{}",
        response.status,
        reason,
        response.content_type,
        response.body.len(),
        response.body
    )?;
    stream.flush()
}

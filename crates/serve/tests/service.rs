//! Service-level integration tests: single-flight dedup under concurrent
//! overlapping submissions, and resumable sweeps across a daemon restart.
//!
//! Everything runs on the small 2-SM machine so the whole file stays in
//! test-suite time budget.

use simt_harness::json;
use simt_serve::{GridRequest, ServeConfig, SweepService};
use std::collections::BTreeMap;
use std::fs;
use std::path::{Path, PathBuf};
use std::sync::Arc;
use std::time::Duration;

const WAIT: Duration = Duration::from_secs(300);

fn tmp_dir(tag: &str) -> PathBuf {
    let dir = std::env::temp_dir().join(format!("dac-serve-test-{tag}-{}", std::process::id()));
    let _ = fs::remove_dir_all(&dir);
    dir
}

/// A small grid request: `benches × {baseline, dac}` on the 2-SM machine.
fn grid(benches: &[&str]) -> GridRequest {
    let list = benches
        .iter()
        .map(|b| format!("{b:?}"))
        .collect::<Vec<_>>()
        .join(", ");
    let text = format!(
        r#"{{"benches": [{list}], "designs": ["baseline", "dac"],
            "overrides": {{"num_sms": 2, "max_warps_per_sm": 16}}}}"#
    );
    GridRequest::from_json(&json::parse(&text).unwrap()).unwrap()
}

/// Map of cache file name → raw bytes under a results root.
fn cache_entries(results: &Path) -> BTreeMap<String, Vec<u8>> {
    let mut entries = BTreeMap::new();
    let dir = results.join("cache");
    for e in fs::read_dir(&dir).expect("cache dir exists") {
        let path = e.unwrap().path();
        entries.insert(
            path.file_name().unwrap().to_string_lossy().into_owned(),
            fs::read(&path).unwrap(),
        );
    }
    entries
}

fn field(status: &json::Value, name: &str) -> u64 {
    status.get(name).and_then(json::Value::as_u64).unwrap()
}

/// Two overlapping grids submitted concurrently must produce artifacts
/// byte-identical to running them serially, with every shared point
/// executed exactly once (the overlap resolves by single-flight sharing,
/// not duplicate simulation).
#[test]
fn concurrent_overlapping_grids_share_work_and_match_serial() {
    let concurrent_dir = tmp_dir("concurrent");
    let serial_dir = tmp_dir("serial");
    // Grids share MQ: |A| = 4, |B| = 4, |A ∪ B| = 6.
    let grid_a = grid(&["LIB", "MQ"]);
    let grid_b = grid(&["MQ", "SPV"]);

    let service = Arc::new(SweepService::new(ServeConfig::new(&concurrent_dir, 3)));
    let (svc_a, svc_b) = (Arc::clone(&service), Arc::clone(&service));
    let (req_a, req_b) = (grid_a.clone(), grid_b.clone());
    let submit_a = std::thread::spawn(move || svc_a.submit(req_a).unwrap());
    let submit_b = std::thread::spawn(move || svc_b.submit(req_b).unwrap());
    let receipt_a = submit_a.join().unwrap();
    let receipt_b = submit_b.join().unwrap();
    assert!(service.wait_for_sweep(&receipt_a.id, WAIT), "sweep A done");
    assert!(service.wait_for_sweep(&receipt_b.id, WAIT), "sweep B done");

    // Exactly |A ∪ B| simulations ran, nothing twice, nothing from disk.
    let (executed, cache_hits, shared, failed) = service.counters();
    assert_eq!(executed, 6, "each unique point executes exactly once");
    assert_eq!(cache_hits, 0, "cold store: nothing resolved from disk");
    assert_eq!(shared, 2, "the two MQ points were shared, not re-run");
    assert_eq!(failed, 0);

    // Per-sweep accounting agrees: the 6 executions split between the two
    // sweeps by ownership, and the 2 shared points belong to exactly one.
    let status_a = service.sweep_status(&receipt_a.id).unwrap();
    let status_b = service.sweep_status(&receipt_b.id).unwrap();
    assert_eq!(field(&status_a, "total"), 4);
    assert_eq!(field(&status_b, "total"), 4);
    assert_eq!(
        field(&status_a, "executed") + field(&status_b, "executed"),
        6
    );
    assert_eq!(field(&status_a, "shared") + field(&status_b, "shared"), 2);
    assert_eq!(field(&status_a, "done"), 4);
    assert_eq!(field(&status_b, "done"), 4);
    drop(service);

    // Serial reference: same grids, one worker, one after the other.
    let serial = SweepService::new(ServeConfig::new(&serial_dir, 1));
    let r1 = serial.submit(grid_a).unwrap();
    assert!(serial.wait_for_sweep(&r1.id, WAIT));
    let r2 = serial.submit(grid_b).unwrap();
    assert!(serial.wait_for_sweep(&r2.id, WAIT));
    drop(serial);

    let concurrent = cache_entries(&concurrent_dir);
    let serial_entries = cache_entries(&serial_dir);
    assert_eq!(concurrent.len(), 6);
    assert_eq!(
        concurrent, serial_entries,
        "concurrent artifacts must be byte-identical to serial"
    );

    let _ = fs::remove_dir_all(&concurrent_dir);
    let _ = fs::remove_dir_all(&serial_dir);
}

/// A brand-new sweep whose points are all already terminal — a subset of
/// a grid completed earlier in the same session — enqueues nothing, so
/// nothing ever transitions; it must still report complete immediately
/// (regression: it used to stay `complete: false` forever and hang
/// `wait_for_sweep`).
#[test]
fn subset_of_completed_sweep_is_complete_at_submission() {
    let results = tmp_dir("subset");
    let service = SweepService::new(ServeConfig::new(&results, 2));
    let superset = service.submit(grid(&["LIB", "MQ"])).unwrap();
    assert!(service.wait_for_sweep(&superset.id, WAIT), "superset done");

    // The subset is a different grid (different sweep id), not a
    // resubmission, and every one of its points is already terminal.
    let subset = service.submit(grid(&["MQ"])).unwrap();
    assert_ne!(subset.id, superset.id);
    assert!(!subset.resubmitted);
    assert_eq!(subset.new, 0);
    assert_eq!(subset.already_done, 2);
    assert!(
        service.wait_for_sweep(&subset.id, Duration::from_millis(100)),
        "all-terminal subset sweep must be complete at submission"
    );
    let status = service.sweep_status(&subset.id).unwrap();
    assert_eq!(
        status.get("complete").and_then(json::Value::as_bool),
        Some(true)
    );
    assert_eq!(field(&status, "done"), 2);

    let _ = fs::remove_dir_all(&results);
}

/// Kill the daemon mid-sweep (in-process: stop after a bounded number of
/// executions), restart over the same results root, and the sweep
/// completes without re-executing any finished point.
#[test]
fn restarted_daemon_resumes_sweep_without_reexecution() {
    let results = tmp_dir("resume");
    let request = grid(&["LIB", "MQ"]); // 4 points

    // Session 1: one worker, budget of 2 fresh simulations — a
    // deterministic stand-in for "killed mid-sweep": exactly 2 of the 4
    // points finish, the manifest is on disk, the rest stay queued.
    {
        let service = SweepService::new(ServeConfig {
            results_dir: results.clone(),
            workers: 1,
            threads: None,
            execute_budget: Some(2),
            verbose: false,
        });
        let receipt = service.submit(request.clone()).unwrap();
        assert_eq!(receipt.new, 4);
        assert!(service.wait_idle(WAIT), "session 1 drains");
        assert!(
            !service.wait_for_sweep(&receipt.id, Duration::from_millis(10)),
            "sweep must NOT be complete in session 1"
        );
        let (executed, cache_hits, _, failed) = service.counters();
        assert_eq!(executed, 2, "budget caps session 1 at 2 simulations");
        assert_eq!(cache_hits, 0);
        assert_eq!(failed, 0);
    } // drop = daemon killed

    assert_eq!(
        cache_entries(&results).len(),
        2,
        "two finished points persisted before the kill"
    );

    // Session 2: fresh daemon over the same results root. resume() picks
    // the manifest up; the 2 finished points come back as cache hits and
    // only the 2 unfinished ones execute.
    {
        let service = SweepService::new(ServeConfig {
            results_dir: results.clone(),
            workers: 2,
            threads: None,
            execute_budget: None,
            verbose: false,
        });
        let resumed = service.resume();
        assert_eq!(resumed.len(), 1, "one unfinished sweep to resume");
        assert!(service.wait_for_sweep(&resumed[0], WAIT), "sweep completes");
        let (executed, cache_hits, _, failed) = service.counters();
        assert_eq!(executed, 2, "only the unfinished points execute");
        assert_eq!(cache_hits, 2, "finished points served from the store");
        assert_eq!(failed, 0);
        let status = service.sweep_status(&resumed[0]).unwrap();
        assert_eq!(field(&status, "done"), 4);
        assert_eq!(
            status.get("complete").and_then(json::Value::as_bool),
            Some(true)
        );
    }

    // Session 3: everything is warm — resume() reports nothing to do, and
    // an explicit re-submission is answered instantly from the store.
    {
        let service = SweepService::new(ServeConfig::new(&results, 2));
        assert!(service.resume().is_empty(), "nothing unfinished remains");
        let receipt = service.submit(request).unwrap();
        assert!(service.wait_for_sweep(&receipt.id, WAIT));
        let (executed, cache_hits, _, _) = service.counters();
        assert_eq!(executed, 0, "warm store: zero re-executions");
        assert_eq!(cache_hits, 4);
    }

    let _ = fs::remove_dir_all(&results);
}
